// Container fast path example (paper Figure 5 path C): the XDP program on
// the NIC redirects known container MACs straight to their veth, bypassing
// OVS userspace; unknown traffic falls through to the AF_XDP socket.
// Compare the per-packet CPU cost of the two paths.
package main

import (
	"fmt"

	"ovsxdp/internal/containersim"
	"ovsxdp/internal/costmodel"
	"ovsxdp/internal/ebpf"
	"ovsxdp/internal/kernelsim"
	"ovsxdp/internal/nicsim"
	"ovsxdp/internal/packet"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/sim"
	"ovsxdp/internal/vdev"
	"ovsxdp/internal/xdp"
)

func main() {
	eng := sim.NewEngine(1)
	nic := nicsim.New(eng, nicsim.Config{Name: "eth0", Ifindex: 1, Queues: 1})

	// A container behind a veth pair.
	veth := vdev.NewVethPair("veth0")
	containersim.New(eng, containersim.Config{Name: "c0", Veth: veth,
		OnPacket: func(c *containersim.Container, p *packet.Packet) { containerRx++ }})
	ctMAC := hdr.MAC{0x02, 0xc0, 0, 0, 0, 1}

	// XDP maps: L2 table routes the container MAC to devmap slot 0.
	l2 := ebpf.NewHashMap(8, 4, 128)
	dev := ebpf.NewDevMap(8)
	xsk := ebpf.NewXskMap(8)
	check(dev.SetTarget(0, 3))
	check(xsk.SetTarget(0, 0))
	check(l2.Update(xdp.MACKey([6]byte(ctMAC)), []byte{0, 0, 0, 0}))

	prog := xdp.NewRedirectToVeth(l2, dev, xsk)
	check(prog.Load())
	check(nic.Hook.Attach(prog))
	fmt.Printf("attached %q (%d insns) to eth0\n\n", prog.Name, len(prog.Insns))

	// Softirq actor: driver receive through the XDP program.
	softirq := eng.NewCPU("softirq")
	redirected, toUserspace := 0, 0
	(&kernelsim.NAPIActor{Eng: eng, CPU: softirq,
		Src: kernelsim.NICQueueSource{Q: nic.Queue(0)},
		Handler: func(cpu *sim.CPU, pkts []*packet.Packet) {
			for _, p := range pkts {
				cpu.Consume(sim.Softirq, costmodel.XDPDriverOverhead)
				res, cost, err := nic.Hook.Run(0, p.Data, 1)
				check(err)
				cpu.Consume(sim.Softirq, cost)
				if res.Action == ebpf.XDPRedirect {
					if res.RedirectMap.Type() == ebpf.MapTypeDevMap {
						cpu.Consume(sim.Softirq, costmodel.XDPRedirectVeth)
						veth.AtoB.Push(p)
						redirected++
					} else {
						toUserspace++
					}
				}
			}
		}}).Start()

	// Traffic: 1,000 packets to the container, 200 to an unknown MAC,
	// spaced 1 us apart (a burst larger than the RX ring would drop).
	src := hdr.MAC{0x02, 0xaa, 0, 0, 0, 9}
	for i := 0; i < 1200; i++ {
		i := i
		eng.Schedule(sim.Time(i)*sim.Microsecond, func() {
			dst := ctMAC
			if i%6 == 5 {
				dst = hdr.MAC{0x02, 0xdd, 0, 0, 0, 9}
			}
			nic.Receive(packet.New(frameTo(src, dst, uint16(i))))
		})
	}
	eng.Run()

	perPkt := float64(softirq.Busy(sim.Softirq)) / float64(redirected+toUserspace)
	fmt.Printf("redirected to veth (path C): %4d packets\n", redirected)
	fmt.Printf("handed to AF_XDP socket:     %4d packets\n", toUserspace)
	fmt.Printf("softirq cost: %.0f ns/packet — no userspace hop for container traffic\n", perPkt)
	fmt.Printf("container received %d packets through its namespace stack\n", containerRx)
}

var containerRx int

func frameTo(src, dst hdr.MAC, sport uint16) []byte {
	return hdr.NewBuilder().Eth(src, dst).
		IPv4H(hdr.MakeIP4(10, 0, 0, 1), hdr.MakeIP4(10, 0, 0, 2), 64).
		UDPH(sport, 8080).PayloadLen(18).PadTo(64).Build()
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
