// XDP load balancer example (paper Section 3.5): extend the OVS XDP
// program with an L4 load balancer that rewrites and forwards matching
// VIP traffic entirely at the driver level, passing everything else to
// OVS userspace through the AF_XDP socket — "these examples benefit from
// avoiding the latency of extra hops between userspace and the kernel."
package main

import (
	"fmt"

	"ovsxdp/internal/ebpf"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/xdp"
)

func main() {
	// Backend pool: 4 servers, selected by hashing the client IP.
	backends := ebpf.NewArrayMap(4, 4)
	for i := 0; i < 4; i++ {
		ip := hdr.MakeIP4(10, 0, 1, byte(10+i))
		key := []byte{byte(i), 0, 0, 0}
		val := []byte{byte(ip), byte(ip >> 8), byte(ip >> 16), byte(ip >> 24)} // LE
		check(backends.Update(key, val))
	}
	xsk := ebpf.NewXskMap(4)
	check(xsk.SetTarget(0, 0))

	vip := hdr.MakeIP4(10, 0, 0, 100)
	prog := xdp.NewL4LoadBalancer(xdp.LBConfig{
		VIP: uint32(vip), Port: 80, Backends: backends, NumMask: 3, Xsk: xsk})

	// Figure 4 workflow: assemble -> verify -> attach.
	check(prog.Load())
	fmt.Printf("program %q: %d instructions, passed the verifier\n\n", prog.Name, len(prog.Insns))

	run := func(label string, frame []byte) {
		res, err := prog.Run(&ebpf.Context{Packet: frame})
		check(err)
		switch res.Action {
		case ebpf.XDPTx:
			ip, _ := hdr.ParseIPv4(frame[14:])
			fmt.Printf("%-34s -> rewritten to backend %s, XDP_TX at the driver\n", label, ip.Dst)
		case ebpf.XDPRedirect:
			fmt.Printf("%-34s -> AF_XDP socket (OVS userspace decides)\n", label)
		default:
			fmt.Printf("%-34s -> action %d\n", label, res.Action)
		}
	}

	cli := func(srcLast byte, dst hdr.IP4, port uint16) []byte {
		return hdr.NewBuilder().
			Eth(hdr.MAC{2, 0, 0, 0, 0, 1}, hdr.MAC{2, 0, 0, 0, 0, 2}).
			IPv4H(hdr.MakeIP4(192, 0, 2, srcLast), dst, 64).
			TCPH(40000, port, 1, 0, hdr.TCPSyn).PadTo(64).Build()
	}

	// Four clients hit the VIP: spread across backends, no userspace hop.
	for i := byte(1); i <= 4; i++ {
		run(fmt.Sprintf("client %d -> VIP:80", i), cli(i, vip, 80))
	}
	// Non-VIP traffic and other ports go up to OVS.
	run("client 1 -> 10.0.0.9:80 (not VIP)", cli(1, hdr.MakeIP4(10, 0, 0, 9), 80))
	run("client 1 -> VIP:443 (other port)", cli(1, vip, 443))
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
