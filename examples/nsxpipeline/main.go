// NSX pipeline example: generate the Table 3-scale production rule set
// (103,302 OpenFlow rules, 40 tables, 291 Geneve tunnels), install it, and
// walk a packet through the paper's three datapath passes — classification,
// conntrack recirculation, and L2 forwarding into a Geneve tunnel.
package main

import (
	"fmt"

	"ovsxdp/internal/flow"
	"ovsxdp/internal/nsx"
	"ovsxdp/internal/ofproto"
	"ovsxdp/internal/packet/hdr"
)

func main() {
	cfg := nsx.DefaultConfig()
	fmt.Println("generating the NSX rule set (Table 3 scale)...")
	rs := nsx.Generate(cfg)
	fmt.Printf("  %s\n\n", rs.Stats())

	pl := ofproto.NewPipeline()
	rs.Install(pl)

	// A TCP SYN from the first VM interface to a workload behind tunnel 7.
	vif := rs.VIFs[0]
	remote := nsx.RemoteMAC(7)
	key := (&flow.Fields{
		InPort: vif.Port, EthSrc: vif.MAC, EthDst: remote,
		EthType: hdr.EtherTypeIPv4, IPProto: hdr.IPProtoTCP, IPTTL: 64,
		IP4Src: vif.IP, IP4Dst: hdr.MakeIP4(10, 99, 0, 7),
		TPSrc: 33000, TPDst: 443,
	}).Pack()

	fmt.Println("pass 1: classification -> distributed firewall -> conntrack")
	mf, err := pl.Translate(key)
	check(err)
	fmt.Printf("  megaflow: %d mask bits, actions %v\n", mf.Mask.Bits(), mf.Actions)

	fmt.Println("pass 2: recirculated as a new connection, walking the DFW tables")
	f := key.Unpack()
	f.RecircID = mf.Actions[0].RecircID
	f.CtState = 0x03 // trk|new
	mf2, err := pl.Translate(f.Pack())
	check(err)
	fmt.Printf("  megaflow: %d mask bits, actions %v\n", mf2.Mask.Bits(), mf2.Actions)

	fmt.Println("pass 2': the same flow once established skips the firewall walk")
	f.CtState = 0x05 // trk|est
	mf3, err := pl.Translate(f.Pack())
	check(err)
	fmt.Printf("  megaflow: %d mask bits, actions %v\n", mf3.Mask.Bits(), mf3.Actions)

	if mf3.Actions[0].Type == ofproto.DPTunnelPush {
		t := mf3.Actions[0].Tunnel
		fmt.Printf("\nresult: Geneve encap to VTEP %s (VNI %d), then output uplink port %d\n",
			t.RemoteIP, t.VNI, mf3.Actions[1].Port)
	}
	fmt.Printf("pipeline translations performed: %d\n", pl.Translations)
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
