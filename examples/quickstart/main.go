// Quickstart: build a two-port AF_XDP switch, install a flow, and forward
// packets — the minimal end-to-end use of the public API.
package main

import (
	"fmt"
	"time"

	"ovsxdp/internal/packet/hdr"
	"ovsxdp/ovs"
)

func main() {
	sw := ovs.New()
	br := sw.AddBridge("br0")

	// Two simulated NICs attached via AF_XDP: an XDP program is compiled
	// (assembled), verified, and attached under the hood; the kernel
	// keeps the device, so ip/ping-style tooling would keep working.
	eth0, err := br.AddAFXDPPort("eth0", 1)
	check(err)
	eth1, err := br.AddAFXDPPort("eth1", 1)
	check(err)

	// ovs-ofctl-style flows, both directions.
	br.MustAddFlow("in_port=" + eth0.IDString() + ",actions=output:" + eth1.IDString())
	br.MustAddFlow("in_port=" + eth1.IDString() + ",actions=output:" + eth0.IDString())

	// Watch eth1's wire.
	received := 0
	eth1.OnOutput(func(frame []byte) {
		received++
		if received == 1 {
			eth, _ := hdr.ParseEthernet(frame)
			fmt.Printf("first frame out eth1: %s -> %s, %d bytes\n",
				eth.Src, eth.Dst, len(frame))
		}
	})

	// Inject 1,000 64-byte UDP packets into eth0.
	src := hdr.MAC{0x02, 0, 0, 0, 0, 0x0a}
	dst := hdr.MAC{0x02, 0, 0, 0, 0, 0x0b}
	for i := 0; i < 1000; i++ {
		frame := hdr.NewBuilder().Eth(src, dst).
			IPv4H(hdr.MakeIP4(10, 0, 0, 1), hdr.MakeIP4(10, 0, 0, 2), 64).
			UDPH(uint16(1000+i%50), 80).PayloadLen(18).PadTo(64).Build()
		eth0.Inject(frame)
	}

	// Advance virtual time; everything is deterministic.
	sw.Run(10 * time.Millisecond)

	st := sw.Stats()
	fmt.Printf("forwarded %d/1000 frames in %v of virtual time\n", received, sw.Now())
	fmt.Printf("datapath: %d processed, %d EMC hits, %d megaflow hits, %d upcalls\n",
		st.Processed, st.EMCHits, st.MegaflowHits, st.Upcalls)
	fmt.Printf("cpu (hyperthreads): %+v\n", sw.CPUReport())
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
