// Command ovsbench regenerates the paper's tables and figures.
//
// Usage:
//
//	ovsbench list                 # show available experiments
//	ovsbench all                  # run everything (full profile)
//	ovsbench fig9a table2 ...     # run selected experiments
//	ovsbench -quick fig8a         # CI-sized windows
//
// Each experiment prints measured values next to the paper's anchors with
// the measured/paper ratio, matching the per-experiment index in DESIGN.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"ovsxdp/internal/api"
	"ovsxdp/internal/dpif"
	"ovsxdp/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "use shortened measurement windows")
	perfStages := flag.Bool("perf", false, "add per-stage cycle attribution rows (fig9, table4)")
	scenario := flag.String("scenario", "", "run a robustness scenario instead of an experiment (e.g. restart, cachesweep)")
	smcOn := flag.Bool("smc", false, "enable the signature match cache on userspace-datapath beds")
	emcProb := flag.Int("emc-prob", 1, "inverse EMC insertion probability (1 = always insert)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	simspeedOut := flag.String("simspeed-out", "BENCH_simspeed.json", "where -scenario simspeed writes its JSON result")
	simspeedBaseline := flag.String("simspeed-baseline", "", "compare the simspeed run against this committed JSON; exit nonzero on >20% regression")
	simspeedPoints := flag.String("simspeed-points", "", "comma-separated simspeed points to run (default: all)")
	churnscaleOut := flag.String("churnscale-out", "BENCH_churnscale.json", "where -scenario churnscale writes its JSON result")
	churnscalePoints := flag.String("churnscale-points", "", "comma-separated churnscale points to run (default: all)")
	connscaleOut := flag.String("connscale-out", "BENCH_connscale.json", "where -scenario connscale writes its JSON result")
	connscalePoints := flag.String("connscale-points", "", "comma-separated connscale points to run (default: all)")
	offloadOut := flag.String("offload-out", "BENCH_offload.json", "where -scenario offload writes its JSON result")
	offloadPoints := flag.String("offload-points", "", "comma-separated offload points to run (default: all)")
	flag.Func("o", "other_config key=value applied to every bed (repeatable, e.g. -o pmd-rxq-assign=cycles)", func(s string) error {
		k, v, err := api.ParseConfigArg(s)
		if err != nil {
			return err
		}
		if experiments.DefaultOther == nil {
			experiments.DefaultOther = map[string]string{}
		}
		experiments.DefaultOther[k] = v
		return nil
	})
	flag.Usage = usage
	flag.Parse()

	if err := dpif.CheckConfig(experiments.DefaultOther); err != nil {
		fmt.Fprintln(os.Stderr, "ovsbench:", err)
		os.Exit(1)
	}

	profile := experiments.Full
	if *quick {
		profile = experiments.Quick
	}
	profile.PerfStages = *perfStages
	experiments.DefaultCache.SMC = *smcOn
	experiments.DefaultCache.EMCInsertInvProb = *emcProb

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ovsbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "ovsbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ovsbench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ovsbench:", err)
			}
		}()
	}

	if *scenario != "" {
		s, ok := experiments.GetScenario(*scenario)
		if !ok {
			fmt.Fprintf(os.Stderr, "ovsbench: unknown scenario %q; have:\n", *scenario)
			for _, s := range experiments.Scenarios() {
				fmt.Fprintf(os.Stderr, "  %-8s %s\n", s.ID, s.Title)
			}
			os.Exit(1)
		}
		if s.ID == "simspeed" {
			experiments.SimspeedJSONPath = *simspeedOut
			if *simspeedPoints != "" {
				experiments.SimspeedOnly = map[string]bool{}
				for _, p := range strings.Split(*simspeedPoints, ",") {
					experiments.SimspeedOnly[strings.TrimSpace(p)] = true
				}
			}
		}
		if s.ID == "churnscale" {
			experiments.ChurnscaleJSONPath = *churnscaleOut
			if *churnscalePoints != "" {
				experiments.ChurnscaleOnly = map[string]bool{}
				for _, p := range strings.Split(*churnscalePoints, ",") {
					experiments.ChurnscaleOnly[strings.TrimSpace(p)] = true
				}
			}
		}
		if s.ID == "connscale" {
			experiments.ConnscaleJSONPath = *connscaleOut
			if *connscalePoints != "" {
				experiments.ConnscaleOnly = map[string]bool{}
				for _, p := range strings.Split(*connscalePoints, ",") {
					experiments.ConnscaleOnly[strings.TrimSpace(p)] = true
				}
			}
		}
		if s.ID == "offload" {
			experiments.OffloadJSONPath = *offloadOut
			if *offloadPoints != "" {
				experiments.OffloadOnly = map[string]bool{}
				for _, p := range strings.Split(*offloadPoints, ",") {
					experiments.OffloadOnly[strings.TrimSpace(p)] = true
				}
			}
		}
		start := time.Now()
		rep := s.Run(profile)
		fmt.Print(rep)
		fmt.Printf("  (%s in %.1fs)\n", s.ID, time.Since(start).Seconds())
		if s.ID == "simspeed" && *simspeedBaseline != "" {
			cur, err := experiments.LoadSimspeedJSON(*simspeedOut)
			if err == nil {
				var base experiments.SimspeedResult
				base, err = experiments.LoadSimspeedJSON(*simspeedBaseline)
				if err == nil {
					err = experiments.CompareSimspeed(cur, base, 0.20)
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "ovsbench:", err)
				os.Exit(3)
			}
		}
		return
	}

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	if args[0] == "list" {
		for _, e := range experiments.All() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		for _, s := range experiments.Scenarios() {
			fmt.Printf("  %-8s %s (scenario; run with -scenario %s)\n", s.ID, s.Title, s.ID)
		}
		return
	}

	var ids []string
	if args[0] == "all" {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = args
	}

	exit := 0
	for _, id := range ids {
		e, ok := experiments.Get(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "ovsbench: unknown experiment %q (try 'ovsbench list')\n", id)
			exit = 1
			continue
		}
		start := time.Now()
		rep := e.Run(profile)
		fmt.Print(rep)
		fmt.Printf("  (%s in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
	os.Exit(exit)
}

func usage() {
	fmt.Fprintf(os.Stderr, `ovsbench — regenerate the paper's evaluation

usage:
  ovsbench [-quick] [-perf] [-smc] [-emc-prob N] [-o key=value]... list | all | <experiment>...
  ovsbench [-quick] [-cpuprofile f] [-memprofile f] -scenario <scenario>
  ovsbench [-quick] -scenario simspeed [-simspeed-out f] [-simspeed-baseline f] [-simspeed-points a,b]
  ovsbench [-quick] -scenario churnscale [-churnscale-out f] [-churnscale-points a,b]
  ovsbench [-quick] -scenario connscale [-connscale-out f] [-connscale-points a,b]
  ovsbench [-quick] -scenario offload [-offload-out f] [-offload-points a,b]
  ovsbench [-quick] -scenario soak

experiments: fig1 fig2 fig8a fig8b fig8c fig9a fig9b fig9c fig10 fig11 fig12
             table1 table2 table3 table4 table5
scenarios:   restart cachesweep churnscale connscale corescale offload simspeed soak
`)
	flag.PrintDefaults()
}
