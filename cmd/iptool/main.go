// Command iptool demonstrates Table 1: the ip(8)-style operations work
// against a NIC the kernel still manages (the AF_XDP deployment model) and
// fail against a NIC handed to DPDK.
//
// Usage:
//
//	iptool demo
package main

import (
	"fmt"
	"os"

	"ovsxdp/internal/netlinksim"
	"ovsxdp/internal/packet/hdr"
)

func main() {
	if len(os.Args) < 2 || os.Args[1] != "demo" {
		fmt.Fprintln(os.Stderr, "usage: iptool demo")
		os.Exit(2)
	}

	kern := netlinksim.NewKernel()
	idx, err := kern.AddLink("eth0", "mlx5_core", hdr.MAC{0x02, 0, 0, 0, 0, 1}, 1500)
	if err != nil {
		fatal(err)
	}
	if err := kern.AddAddr("eth0", hdr.MakeIP4(10, 0, 0, 1), 24); err != nil {
		fatal(err)
	}
	if err := kern.AddNeigh(netlinksim.Neigh{IP: hdr.MakeIP4(10, 0, 0, 2),
		MAC: hdr.MAC{0x02, 0, 0, 0, 0, 2}, LinkIndex: idx}); err != nil {
		fatal(err)
	}
	if err := kern.SetLinkState("eth0", netlinksim.LinkUp); err != nil {
		fatal(err)
	}

	fmt.Println("== NIC managed by the kernel (AF_XDP deployment) ==")
	show(kern)

	fmt.Println("\n== after dpdk-devbind: the kernel driver is unbound ==")
	if _, err := kern.BindDPDK("eth0"); err != nil {
		fatal(err)
	}
	show(kern)
}

func show(k *netlinksim.Kernel) {
	// $ ip link
	if l, err := k.LinkByName("eth0"); err == nil {
		fmt.Printf("$ ip link show eth0\n  %d: eth0: <%s> mtu %d link/ether %s driver %s\n",
			l.Index, l.State, l.MTU, l.MAC, l.Driver)
	} else {
		fmt.Printf("$ ip link show eth0\n  %v\n", err)
	}
	// $ ip address
	if addrs, err := k.Addrs("eth0"); err == nil {
		fmt.Print("$ ip address show eth0\n")
		for _, a := range addrs {
			fmt.Printf("  inet %s/%d\n", a.IP, a.PrefixLen)
		}
	} else {
		fmt.Printf("$ ip address show eth0\n  %v\n", err)
	}
	// $ ip route
	fmt.Print("$ ip route\n")
	routes := k.Routes()
	if len(routes) == 0 {
		fmt.Println("  (no routes)")
	}
	for _, r := range routes {
		if r.Gateway != 0 {
			fmt.Printf("  %s/%d via %s dev ifindex %d\n", r.Dst, r.PrefixLen, r.Gateway, r.LinkIndex)
		} else {
			fmt.Printf("  %s/%d dev ifindex %d\n", r.Dst, r.PrefixLen, r.LinkIndex)
		}
	}
	// $ ip neigh
	fmt.Print("$ ip neigh\n")
	neighs := k.Neighs()
	if len(neighs) == 0 {
		fmt.Println("  (no neighbors)")
	}
	for _, n := range neighs {
		fmt.Printf("  %s lladdr %s\n", n.IP, n.MAC)
	}
	// $ ping (next-hop resolution)
	fmt.Print("$ ping 10.0.0.2 (route + ARP resolution)\n")
	if rt, ok := k.LookupRoute(hdr.MakeIP4(10, 0, 0, 2)); ok {
		if n, ok := k.LookupNeigh(hdr.MakeIP4(10, 0, 0, 2)); ok {
			fmt.Printf("  reachable via ifindex %d, lladdr %s\n", rt.LinkIndex, n.MAC)
		} else {
			fmt.Println("  no ARP entry")
		}
	} else {
		fmt.Println("  connect: Network is unreachable")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "iptool:", err)
	os.Exit(1)
}
