package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"ovsxdp/internal/dpif"
)

// captureStdout runs fn with os.Stdout redirected into a buffer. The CLI
// renders through fmt.Print*, so this is the full user-visible output.
func captureStdout(t *testing.T, fn func() error) []byte {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan []byte)
	go func() {
		data, _ := io.ReadAll(r)
		done <- data
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if ferr != nil {
		t.Fatalf("subcommand failed: %v", ferr)
	}
	return out
}

// TestGoldenOutputs pins the CLI's byte-exact rendering across the api view
// layer: every subcommand output below was captured before the typed-DTO
// refactor and must never drift. The simulation is virtual-time, so these
// bytes are deterministic on every machine.
func TestGoldenOutputs(t *testing.T) {
	base := func() cliConfig {
		return cliConfig{cc: dpif.CacheConfig{EMCInsertInvProb: 1}, other: map[string]string{}}
	}
	smc := base()
	smc.cc.SMC = true

	cases := []struct {
		golden string
		dpType string
		cfg    cliConfig
		run    func(string, cliConfig) error
	}{
		{"dpctl-netdev.txt", "netdev", base(), dpctlStats},
		{"dpctl-netlink.txt", "netlink", base(), dpctlStats},
		{"dpctl-ebpf.txt", "ebpf", base(), dpctlStats},
		{"dpctl-smc.txt", "netdev", smc, dpctlStats},
		{"perf-netdev.txt", "netdev", base(), pmdPerfShow},
		{"perf-netlink.txt", "netlink", base(), pmdPerfShow},
		{"perf-ebpf.txt", "ebpf", base(), pmdPerfShow},
	}
	for _, c := range cases {
		t.Run(c.golden, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", c.golden))
			if err != nil {
				t.Fatal(err)
			}
			got := captureStdout(t, func() error { return c.run(c.dpType, c.cfg) })
			if !bytes.Equal(got, want) {
				t.Fatalf("output drifted from golden %s:\n--- got ---\n%s\n--- want ---\n%s", c.golden, got, want)
			}
		})
	}
}
