// Command ovsctl demonstrates the control plane end to end over real TCP:
// it starts an in-process vswitchd with OVSDB and OpenFlow listeners, then
// acts as the management client — creating a bridge and ports through
// OVSDB and installing flows through OpenFlow, exactly the two protocols
// the NSX agent drives OVS with (Section 4).
//
// Usage:
//
//	ovsctl demo
package main

import (
	"fmt"
	"net"
	"os"

	"ovsxdp/internal/core"
	"ovsxdp/internal/flow"
	"ovsxdp/internal/nicsim"
	"ovsxdp/internal/ofproto"
	"ovsxdp/internal/openflow"
	"ovsxdp/internal/ovsdb"
	"ovsxdp/internal/sim"
	"ovsxdp/internal/vdev"
	"ovsxdp/internal/vswitchd"
)

func main() {
	if len(os.Args) < 2 || os.Args[1] != "demo" {
		fmt.Fprintln(os.Stderr, "usage: ovsctl demo")
		os.Exit(2)
	}
	if err := demo(); err != nil {
		fmt.Fprintln(os.Stderr, "ovsctl:", err)
		os.Exit(1)
	}
}

func demo() error {
	// --- the switch side ---------------------------------------------------
	eng := sim.NewEngine(1)
	dp := core.NewDatapath(eng, ofproto.NewPipeline(), core.DefaultOptions())
	db := ovsdb.NewServer()
	daemon := vswitchd.New(db, dp)
	daemon.Factory = func(ifType, name string, options map[string]string) (core.Port, error) {
		id := daemon.NextPortID()
		switch ifType {
		case "afxdp":
			nic := nicsim.New(eng, nicsim.Config{Name: name, Ifindex: id, Queues: 1})
			if _, err := core.AttachDefaultProgram(nic); err != nil {
				return nil, err
			}
			return core.NewAFXDPPort(core.AFXDPPortConfig{ID: id, NIC: nic, Eng: eng}), nil
		case "tap":
			return core.NewTapPort(id, vdev.NewTap(name)), nil
		default:
			return nil, fmt.Errorf("unsupported interface type %q", ifType)
		}
	}

	dbAddr, err := db.ListenAndServe("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer db.Close()
	ofAddr, err := daemon.ServeOpenFlow("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer daemon.Close()
	fmt.Printf("vswitchd up: ovsdb %s, openflow %s\n\n", dbAddr, ofAddr)

	// --- the management client over OVSDB ----------------------------------
	client, err := ovsdb.Dial(dbAddr)
	if err != nil {
		return err
	}
	defer client.Close()
	if err := client.Echo(); err != nil {
		return err
	}
	fmt.Println("$ ovs-vsctl add-br br-int")
	if _, err := client.Transact([]ovsdb.Op{
		{Op: "insert", Table: ovsdb.TableBridge, Row: ovsdb.Row{"name": "br-int"}},
	}); err != nil {
		return err
	}
	fmt.Println("$ ovs-vsctl add-port br-int eth0 -- set interface eth0 type=afxdp")
	fmt.Println("$ ovs-vsctl add-port br-int tap0 -- set interface tap0 type=tap")
	if _, err := client.Transact([]ovsdb.Op{
		{Op: "insert", Table: ovsdb.TableInterface,
			Row: ovsdb.Row{"name": "eth0", "type": "afxdp", "bridge": "br-int"}},
		{Op: "insert", Table: ovsdb.TableInterface,
			Row: ovsdb.Row{"name": "tap0", "type": "tap", "bridge": "br-int"}},
	}); err != nil {
		return err
	}
	sel, err := client.Transact([]ovsdb.Op{{Op: "select", Table: ovsdb.TableInterface}})
	if err != nil {
		return err
	}
	fmt.Printf("interfaces in the database: %d\n\n", sel[0].Count)

	// --- the controller side over OpenFlow ----------------------------------
	conn, err := net.Dial("tcp", ofAddr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := openflow.WriteMessage(conn, openflow.Hello(1)); err != nil {
		return err
	}
	if _, err := openflow.ReadMessage(conn); err != nil { // server hello
		return err
	}
	openflow.WriteMessage(conn, openflow.Message{Type: openflow.TypeFeaturesReq, Xid: 2})
	reply, err := openflow.ReadMessage(conn)
	if err != nil {
		return err
	}
	dpid, _ := openflow.ParseFeaturesReply(reply)
	fmt.Printf("$ ovs-ofctl show br-int\n  datapath id %#x\n", dpid)

	fmt.Println("$ ovs-ofctl add-flow br-int in_port=1,actions=output:2")
	fm := openflow.EncodeFlowMod(openflow.FlowMod{
		Command: openflow.FlowModAdd, TableID: 0, Priority: 10,
		Match: ofproto.NewMatch(flow.Fields{InPort: 1},
			flow.NewMaskBuilder().InPort().Build()),
		Actions: []ofproto.Action{ofproto.Output(2)},
	})
	fm.Xid = 3
	if err := openflow.WriteMessage(conn, fm); err != nil {
		return err
	}
	// Barrier-by-echo: once echoed, the flow mod was applied.
	openflow.WriteMessage(conn, openflow.EchoRequest(4, nil))
	if _, err := openflow.ReadMessage(conn); err != nil {
		return err
	}

	fmt.Printf("\npipeline now holds %d rule(s); bridge %v has %d port(s)\n",
		daemon.Pipeline.RuleCount(), daemon.Bridges(), dp.Ports())
	return nil
}
