// Command ovsctl demonstrates the control plane end to end over real TCP:
// it starts an in-process vswitchd with OVSDB and OpenFlow listeners, then
// acts as the management client — creating a bridge and ports through
// OVSDB and installing flows through OpenFlow, exactly the two protocols
// the NSX agent drives OVS with (Section 4).
//
// The daemon reaches its datapath only through the dpif provider layer, so
// every subcommand works identically against the userspace ("netdev"),
// kernel-module ("netlink"), and eBPF ("ebpf") datapaths.
//
// Usage:
//
//	ovsctl [-datapath netdev|netlink|ebpf] demo
//	ovsctl [-datapath ...] show           # bridge/port summary (ovs-vsctl show)
//	ovsctl [-datapath ...] dump-flows     # installed megaflows (dpctl/dump-flows)
//	ovsctl [-datapath ...] dpctl-stats    # datapath counters (ovs-dpctl show)
//	ovsctl [-datapath ...] pmd-perf-show  # per-thread stage cycles (dpif-netdev/pmd-perf-show)
//	ovsctl [-datapath ...] pmd-perf-trace # last packet lifecycles through the fast path
//	ovsctl [-datapath ...] fault-demo     # bounded upcall queue + injected slow-path fault
//
// The -upcall-queue and -upcall-svc-ns flags bound the slow path on any
// subcommand: with a nonzero queue cap, flow-table misses park packets in a
// bounded per-thread queue serviced at the given interval, and overflow is
// counted as queue drops (the kernel's ENOBUFS analog) instead of growing
// without limit.
//
// The -smc and -emc-prob flags shape the userspace cache hierarchy (the
// other-config:smc-enable and emc-insert-inv-prob analogs): -smc enables
// the signature match cache between the EMC and the megaflow classifier,
// and -emc-prob N inserts into the EMC with probability 1/N. Both reach
// only the netdev datapath, exactly as in OVS.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"sort"

	"ovsxdp/internal/api"
	"ovsxdp/internal/core"
	"ovsxdp/internal/dpif"
	"ovsxdp/internal/faultinject"
	"ovsxdp/internal/flow"
	"ovsxdp/internal/nicsim"
	"ovsxdp/internal/ofproto"
	"ovsxdp/internal/openflow"
	"ovsxdp/internal/ovsdb"
	"ovsxdp/internal/packet"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/sim"
	"ovsxdp/internal/vdev"
	"ovsxdp/internal/vswitchd"
)

func usage() {
	fmt.Fprintf(os.Stderr, "usage: ovsctl [-datapath %v] [-upcall-queue N] [-upcall-svc-ns N] [-smc] [-emc-prob N] [-o key=value]... demo|show|dump-flows|dpctl-stats|pmd-perf-show|pmd-perf-trace|pmd-rxq-show|fault-demo|set key=value...|get [key]\n",
		dpif.Types())
}

// cliConfig carries the flag-selected datapath tunables into every
// subcommand: the bounded slow path, the cache hierarchy shape, and the
// other_config key/value overlay.
type cliConfig struct {
	uc    dpif.UpcallConfig
	cc    dpif.CacheConfig
	other map[string]string
}

func main() {
	dpType := flag.String("datapath", "netdev", "dpif provider type")
	upcallQueue := flag.Int("upcall-queue", 0, "bounded upcall queue capacity (0 = legacy unbounded inline upcalls)")
	upcallSvcNs := flag.Int64("upcall-svc-ns", 0, "upcall handler service interval in virtual ns (0 = default)")
	smcOn := flag.Bool("smc", false, "enable the signature match cache (other-config:smc-enable analog, netdev only)")
	emcProb := flag.Int("emc-prob", 1, "inverse EMC insertion probability: insert with probability 1/N (emc-insert-inv-prob analog)")
	other := map[string]string{}
	flag.Func("o", "other_config key=value applied at open (repeatable; `ovsctl get` lists keys)", func(s string) error {
		k, v, err := api.ParseConfigArg(s)
		if err != nil {
			return err
		}
		other[k] = v
		return nil
	})
	flag.Usage = usage
	flag.Parse()

	cfg := cliConfig{
		uc: dpif.UpcallConfig{
			QueueCap:        *upcallQueue,
			ServiceInterval: sim.Time(*upcallSvcNs),
		},
		cc: dpif.CacheConfig{
			SMC:              *smcOn,
			EMCInsertInvProb: *emcProb,
		},
		other: other,
	}

	var err error
	switch flag.Arg(0) {
	case "demo":
		err = demo(*dpType, cfg)
	case "show":
		err = show(*dpType, cfg)
	case "dump-flows":
		err = dumpFlows(*dpType, cfg)
	case "dpctl-stats":
		err = dpctlStats(*dpType, cfg)
	case "pmd-perf-show":
		err = pmdPerfShow(*dpType, cfg)
	case "pmd-perf-trace":
		err = pmdPerfTrace(*dpType, cfg)
	case "pmd-rxq-show":
		err = pmdRxqShow(*dpType, cfg)
	case "fault-demo":
		err = faultDemo(*dpType, cfg)
	case "set":
		err = setConfig(*dpType, cfg, flag.Args()[1:])
	case "get":
		err = getConfig(*dpType, cfg, flag.Args()[1:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ovsctl:", err)
		os.Exit(1)
	}
}

// env is the in-process switch: engine, datapath (via the dpif registry),
// database, and daemon.
type env struct {
	eng    *sim.Engine
	dp     dpif.Dpif
	db     *ovsdb.Server
	daemon *vswitchd.VSwitchd
}

func newEnv(dpType string, cfg cliConfig) (*env, error) {
	eng := sim.NewEngine(1)
	pl := ofproto.NewPipeline()
	d, err := dpif.Open(dpType, dpif.Config{Eng: eng, Pipeline: pl, Upcall: cfg.uc, Cache: cfg.cc, Other: cfg.other})
	if err != nil {
		return nil, err
	}
	db := ovsdb.NewServer()
	daemon := vswitchd.New(db, pl, d)
	daemon.Factory = portFactory(eng, d, daemon)
	return &env{eng: eng, dp: d, db: db, daemon: daemon}, nil
}

// portFactory builds datapath ports for Interface rows. The userspace
// datapath gets real simulated devices (AF_XDP NICs, taps); the kernel
// datapaths attach vports, modeled as transmit functions.
func portFactory(eng *sim.Engine, d dpif.Dpif, daemon *vswitchd.VSwitchd) vswitchd.PortFactory {
	return func(ifType, name string, options map[string]string) (dpif.Port, error) {
		id := daemon.NextPortID()
		if d.Type() != "netdev" {
			return dpif.TxPort{PortID: id, PortName: name,
				Deliver: func(*packet.Packet) {}}, nil
		}
		switch ifType {
		case "afxdp":
			nic := nicsim.New(eng, nicsim.Config{Name: name, Ifindex: id, Queues: 1})
			if _, err := core.AttachDefaultProgram(nic); err != nil {
				return nil, err
			}
			return core.NewAFXDPPort(core.AFXDPPortConfig{ID: id, NIC: nic, Eng: eng}), nil
		case "tap":
			return core.NewTapPort(id, vdev.NewTap(name)), nil
		default:
			return nil, fmt.Errorf("unsupported interface type %q", ifType)
		}
	}
}

// configure creates the canonical demo topology through OVSDB: bridge
// br-int with an AF_XDP uplink (port 1) and a tap (port 2), then installs
// the port 1 -> port 2 rule.
func (e *env) configure() error {
	e.db.Transact([]ovsdb.Op{
		{Op: "insert", Table: ovsdb.TableBridge, Row: ovsdb.Row{"name": "br-int"}},
		{Op: "insert", Table: ovsdb.TableInterface,
			Row: ovsdb.Row{"name": "p0", "type": "afxdp", "bridge": "br-int"}},
		{Op: "insert", Table: ovsdb.TableInterface,
			Row: ovsdb.Row{"name": "p1", "type": "tap", "bridge": "br-int"}},
	})
	if e.dp.PortCount() != 2 {
		return fmt.Errorf("expected 2 datapath ports, have %d", e.dp.PortCount())
	}
	e.daemon.ApplyFlowMod(openflow.FlowMod{
		Command: openflow.FlowModAdd, TableID: 0, Priority: 10,
		Match: ofproto.NewMatch(flow.Fields{InPort: 1},
			flow.NewMaskBuilder().InPort().Build()),
		Actions: []ofproto.Action{ofproto.Output(2)},
	})
	return nil
}

// inject pushes n copies of one UDP flow into port 1 through the dpif
// Execute path (the dpctl-style packet injection) and runs the engine.
func (e *env) inject(n int) {
	frame := hdr.NewBuilder().
		Eth(hdr.MAC{0x02, 0xaa, 0, 0, 0, 1}, hdr.MAC{0x02, 0xbb, 0, 0, 0, 1}).
		IPv4H(hdr.MakeIP4(10, 0, 0, 1), hdr.MakeIP4(10, 0, 0, 2), 64).
		UDPH(1000, 2000).PadTo(64).Build()
	for i := 0; i < n; i++ {
		p := packet.New(frame)
		p.InPort = 1
		e.dp.Execute(p)
	}
	e.eng.RunUntil(e.eng.Now() + sim.Millisecond)
}

// show prints the ovs-vsctl show analog: bridges, their ports, and the
// datapath type behind them.
func show(dpType string, cfg cliConfig) error {
	e, err := newEnv(dpType, cfg)
	if err != nil {
		return err
	}
	if err := e.configure(); err != nil {
		return err
	}
	for _, name := range e.daemon.Bridges() {
		b, _ := e.daemon.Bridge(name)
		fmt.Printf("bridge %s\n", name)
		fmt.Printf("    datapath type: %s\n", e.dp.Type())
		ports := make([]string, 0, len(b.Ports))
		for p := range b.Ports {
			ports = append(ports, p)
		}
		sort.Strings(ports)
		for _, p := range ports {
			fmt.Printf("    port %s: id %d\n", p, b.Ports[p])
		}
	}
	return nil
}

// dumpFlows prints the installed megaflows after injecting traffic — the
// ovs-appctl dpctl/dump-flows analog.
func dumpFlows(dpType string, cfg cliConfig) error {
	e, err := newEnv(dpType, cfg)
	if err != nil {
		return err
	}
	if err := e.configure(); err != nil {
		return err
	}
	e.inject(8)
	views := api.NewFlowViews(e.dp.FlowDump())
	fmt.Printf("%d flow(s) in datapath %s:\n", len(views), e.dp.Type())
	for _, v := range views {
		fmt.Println("  " + v.Text)
	}
	return nil
}

// dpctlStats prints the unified datapath counters — the ovs-dpctl show
// analog (lookups hit/missed/lost plus the megaflow count).
func dpctlStats(dpType string, cfg cliConfig) error {
	e, err := newEnv(dpType, cfg)
	if err != nil {
		return err
	}
	if err := e.configure(); err != nil {
		return err
	}
	e.inject(8)
	v := api.NewStatsView(e.dp.Type(), e.dp.Stats(), e.dp.PerfStats(), e.dp.PortCount())
	fmt.Print(v.FormatDpctl(fmt.Sprintf("%s@br-int", v.Type)))
	return nil
}

// faultDemo bounds the upcall queue, injects a transient slow-path fault
// window, and drives traffic through it: the first misses park in the
// bounded queue, the overflow is dropped and counted (ENOBUFS analog), the
// handler's failed translations retry with exponential backoff, and once
// the fault window closes the flow installs and traffic cuts through.
func faultDemo(dpType string, cfg cliConfig) error {
	if cfg.uc.QueueCap == 0 {
		cfg.uc = dpif.UpcallConfig{QueueCap: 4, ServiceInterval: 20 * sim.Microsecond,
			RetryBase: 25 * sim.Microsecond, MaxRetries: 3}
	}
	e, err := newEnv(dpType, cfg)
	if err != nil {
		return err
	}
	if err := e.configure(); err != nil {
		return err
	}

	inj := faultinject.New(e.eng)
	gate := inj.Gate(faultinject.KindUpcallFailure, "upcall")
	translate := e.daemon.Pipeline.Translate
	e.dp.SetUpcall(func(key flow.Key) (ofproto.Megaflow, error) {
		if gate() {
			return ofproto.Megaflow{}, inj.Err(faultinject.KindUpcallFailure, "upcall")
		}
		return translate(key)
	})
	// The slow path is down for the first 200us of virtual time.
	inj.Window(faultinject.KindUpcallFailure, "upcall", 0, 200*sim.Microsecond, nil)

	e.inject(16)

	st := e.dp.Stats()
	fmt.Printf("%s@br-int after 16 packets through a 200us slow-path outage:\n", e.dp.Type())
	fmt.Printf("  lookups: hit:%d missed:%d lost:%d\n", st.Hits, st.Missed, st.Lost)
	fmt.Printf("  slow path: processed:%d queue-drops:%d malformed:%d\n",
		st.Processed, st.UpcallQueueDrops, st.MalformedDrops)
	var retries uint64
	switch v := e.dp.(type) {
	case *dpif.Netdev:
		retries = v.Datapath().UpcallRetries
	case *dpif.Netlink:
		retries = v.Kernel().UpcallRetries
	}
	fmt.Printf("  upcall retries (exponential backoff): %d\n", retries)
	fmt.Printf("  flows: %d\n", st.Flows)
	fmt.Print(inj.Report())
	return nil
}

// pmdPerfShow prints the per-thread performance counters after injecting
// traffic — the ovs-appctl dpif-netdev/pmd-perf-show analog: cycles per
// stage, packets-per-batch mean, upcall latency percentiles.
func pmdPerfShow(dpType string, cfg cliConfig) error {
	e, err := newEnv(dpType, cfg)
	if err != nil {
		return err
	}
	if err := e.configure(); err != nil {
		return err
	}
	e.inject(64)
	fmt.Print(e.daemon.PmdPerfShow())
	return nil
}

// pmdRxqShow prints the rxq-to-thread placement after injecting traffic —
// the ovs-appctl dpif-netdev/pmd-rxq-show analog. Kernel-side datapaths
// report their softirq rx contexts instead of PMD threads.
func pmdRxqShow(dpType string, cfg cliConfig) error {
	e, err := newEnv(dpType, cfg)
	if err != nil {
		return err
	}
	if err := e.configure(); err != nil {
		return err
	}
	e.inject(64)
	fmt.Print(e.daemon.PmdRxqShow())
	return nil
}

// setConfig applies other_config key=value pairs through the daemon — the
// ovs-vsctl set Open_vSwitch . other_config:key=value analog — then echoes
// the effective values back. Validation is all-or-nothing.
func setConfig(dpType string, cfg cliConfig, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("set: need at least one key=value argument")
	}
	kv, err := api.ParseConfigArgs(args)
	if err != nil {
		return err
	}
	e, err := newEnv(dpType, cfg)
	if err != nil {
		return err
	}
	if err := e.daemon.SetOtherConfig(kv); err != nil {
		return err
	}
	eff := e.daemon.OtherConfig()
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("%s=%s\n", k, eff[k])
	}
	return nil
}

// getConfig reads the effective other_config back: every key (sorted) with
// no argument, or just the named keys.
func getConfig(dpType string, cfg cliConfig, args []string) error {
	e, err := newEnv(dpType, cfg)
	if err != nil {
		return err
	}
	eff := e.daemon.OtherConfig()
	if len(args) == 0 {
		fmt.Print(api.NewConfigView(eff).Format())
		return nil
	}
	for _, k := range args {
		v, ok := eff[k]
		if !ok {
			return fmt.Errorf("get: unknown other_config key %q", k)
		}
		fmt.Printf("%s=%s\n", k, v)
	}
	return nil
}

// pmdPerfTrace arms lifecycle tracing, injects traffic, and prints the
// retained packet lifecycles (portin -> cache level -> portout, virtual time).
func pmdPerfTrace(dpType string, cfg cliConfig) error {
	e, err := newEnv(dpType, cfg)
	if err != nil {
		return err
	}
	if err := e.configure(); err != nil {
		return err
	}
	e.dp.EnableTrace(16)
	e.inject(8)
	fmt.Print(e.daemon.PmdPerfTrace())
	return nil
}

func demo(dpType string, cfg cliConfig) error {
	// --- the switch side ---------------------------------------------------
	e, err := newEnv(dpType, cfg)
	if err != nil {
		return err
	}
	dbAddr, err := e.db.ListenAndServe("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer e.db.Close()
	ofAddr, err := e.daemon.ServeOpenFlow("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer e.daemon.Close()
	fmt.Printf("vswitchd up (datapath %s): ovsdb %s, openflow %s\n\n",
		e.dp.Type(), dbAddr, ofAddr)

	// --- the management client over OVSDB ----------------------------------
	client, err := ovsdb.Dial(dbAddr)
	if err != nil {
		return err
	}
	defer client.Close()
	if err := client.Echo(); err != nil {
		return err
	}
	fmt.Println("$ ovs-vsctl add-br br-int")
	if _, err := client.Transact([]ovsdb.Op{
		{Op: "insert", Table: ovsdb.TableBridge, Row: ovsdb.Row{"name": "br-int"}},
	}); err != nil {
		return err
	}
	fmt.Println("$ ovs-vsctl add-port br-int eth0 -- set interface eth0 type=afxdp")
	fmt.Println("$ ovs-vsctl add-port br-int tap0 -- set interface tap0 type=tap")
	if _, err := client.Transact([]ovsdb.Op{
		{Op: "insert", Table: ovsdb.TableInterface,
			Row: ovsdb.Row{"name": "eth0", "type": "afxdp", "bridge": "br-int"}},
		{Op: "insert", Table: ovsdb.TableInterface,
			Row: ovsdb.Row{"name": "tap0", "type": "tap", "bridge": "br-int"}},
	}); err != nil {
		return err
	}
	sel, err := client.Transact([]ovsdb.Op{{Op: "select", Table: ovsdb.TableInterface}})
	if err != nil {
		return err
	}
	fmt.Printf("interfaces in the database: %d\n\n", sel[0].Count)

	// --- the controller side over OpenFlow ----------------------------------
	conn, err := net.Dial("tcp", ofAddr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := openflow.WriteMessage(conn, openflow.Hello(1)); err != nil {
		return err
	}
	if _, err := openflow.ReadMessage(conn); err != nil { // server hello
		return err
	}
	openflow.WriteMessage(conn, openflow.Message{Type: openflow.TypeFeaturesReq, Xid: 2})
	reply, err := openflow.ReadMessage(conn)
	if err != nil {
		return err
	}
	dpid, _ := openflow.ParseFeaturesReply(reply)
	fmt.Printf("$ ovs-ofctl show br-int\n  datapath id %#x\n", dpid)

	fmt.Println("$ ovs-ofctl add-flow br-int in_port=1,actions=output:2")
	fm := openflow.EncodeFlowMod(openflow.FlowMod{
		Command: openflow.FlowModAdd, TableID: 0, Priority: 10,
		Match: ofproto.NewMatch(flow.Fields{InPort: 1},
			flow.NewMaskBuilder().InPort().Build()),
		Actions: []ofproto.Action{ofproto.Output(2)},
	})
	fm.Xid = 3
	if err := openflow.WriteMessage(conn, fm); err != nil {
		return err
	}
	// Barrier-by-echo: once echoed, the flow mod was applied.
	openflow.WriteMessage(conn, openflow.EchoRequest(4, nil))
	if _, err := openflow.ReadMessage(conn); err != nil {
		return err
	}

	fmt.Printf("\npipeline now holds %d rule(s); bridge %v has %d port(s)\n",
		e.daemon.Pipeline.RuleCount(), e.daemon.Bridges(), e.dp.PortCount())
	return nil
}
