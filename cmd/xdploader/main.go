// Command xdploader exercises the Figure 4 workflow: assemble one of the
// library XDP programs, run it through the in-kernel-style verifier, and
// dump the instruction listing — the moral equivalent of
// clang/llvm -> bpf syscall -> verifier -> attach.
//
// Usage:
//
//	xdploader list
//	xdploader dump <program>
//	xdploader verify <program>
//	xdploader verify-bad        # demonstrate verifier rejections
package main

import (
	"fmt"
	"os"

	"ovsxdp/internal/ebpf"
	"ovsxdp/internal/xdp"
)

func programs() map[string]func() *ebpf.Program {
	l2 := ebpf.NewHashMap(8, 4, 1024)
	dev := ebpf.NewDevMap(64)
	xsk := ebpf.NewXskMap(64)
	lb := ebpf.NewArrayMap(4, 4)
	return map[string]func() *ebpf.Program{
		"pass-to-xsk":   func() *ebpf.Program { return xdp.NewPassToXsk(xsk) },
		"drop":          xdp.NewDropAll,
		"parse-drop":    xdp.NewParseDrop,
		"parse-lookup":  func() *ebpf.Program { return xdp.NewParseLookupDrop(l2) },
		"parse-fwd":     xdp.NewParseSwapForward,
		"redirect-veth": func() *ebpf.Program { return xdp.NewRedirectToVeth(l2, dev, xsk) },
		"l4lb": func() *ebpf.Program {
			return xdp.NewL4LoadBalancer(xdp.LBConfig{
				VIP: 0x0a000002, Port: 80, Backends: lb, NumMask: 3, Xsk: xsk})
		},
	}
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	progs := programs()
	switch os.Args[1] {
	case "list":
		for name := range progs {
			fmt.Println(" ", name)
		}
	case "dump", "verify":
		if len(os.Args) < 3 {
			usage()
			os.Exit(2)
		}
		mk, ok := progs[os.Args[2]]
		if !ok {
			fmt.Fprintf(os.Stderr, "xdploader: unknown program %q\n", os.Args[2])
			os.Exit(1)
		}
		p := mk()
		if err := p.Load(); err != nil {
			fmt.Fprintf(os.Stderr, "xdploader: verifier rejected %s: %v\n", p.Name, err)
			os.Exit(1)
		}
		fmt.Printf("%s: %d instructions, verifier OK\n", p.Name, len(p.Insns))
		if os.Args[1] == "dump" {
			fmt.Print(p.Disassemble())
		}
	case "verify-bad":
		demoBad()
	default:
		usage()
		os.Exit(2)
	}
}

// demoBad shows the sandbox rejecting the classic mistakes the paper's
// Section 2.2.2 describes.
func demoBad() {
	cases := []struct {
		name string
		prog *ebpf.Program
	}{
		{"loop (back-edge)", ebpf.NewProgram("loop",
			ebpf.MovImm(ebpf.R0, 0),
			ebpf.AddImm(ebpf.R0, 1),
			ebpf.Ja(-2),
			ebpf.Exit())},
		{"unchecked packet access", ebpf.NewProgram("unchecked",
			ebpf.Ldx(ebpf.SizeW, ebpf.R2, ebpf.R1, ebpf.CtxData),
			ebpf.Ldx(ebpf.SizeH, ebpf.R3, ebpf.R2, 12),
			ebpf.MovImm(ebpf.R0, 2),
			ebpf.Exit())},
		{"uninitialized register", ebpf.NewProgram("uninit",
			ebpf.Mov(ebpf.R0, ebpf.R5),
			ebpf.Exit())},
	}
	for _, c := range cases {
		err := c.prog.Load()
		if err == nil {
			fmt.Printf("UNEXPECTED: %s passed the verifier\n", c.name)
			continue
		}
		fmt.Printf("rejected %-28s %v\n", c.name+":", err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: xdploader list | dump <prog> | verify <prog> | verify-bad")
}
