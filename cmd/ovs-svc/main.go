// Command ovs-svc is the live management and observability daemon: it runs
// a simulation bed on the virtual-time engine while serving a REST +
// Prometheus control plane over real HTTP. Where ovsctl and ovsbench are
// batch tools — open a datapath, print, exit — ovs-svc keeps the datapath
// alive so it can be inspected and reconfigured *while it runs*: flip the
// SMC, enable hw-offload, schedule a fault window, or watch the conntrack
// ledger move, all mid-run.
//
// The wall-clock HTTP world and the virtual-time simulation meet at the
// core.Controller seam: handlers submit operations that execute on the
// simulation goroutine between events, so API access never tears counters
// and — with the API idle — never perturbs determinism.
//
// Usage:
//
//	ovs-svc [-addr 127.0.0.1:8866] [-bed afxdp|kernel|ebpf] [-flows N]
//	        [-queues N] [-pmds N] [-rate PPS] [-duration-ms N] [-pace X]
//	        [-o key=value]...
//
// Endpoints (see svc.RouteTable):
//
//	GET  /v1/datapaths                  list datapaths
//	GET  /v1/datapaths/{name}/stats     unified stats (conntrack, offload)
//	GET  /v1/pmd/perf                   pmd-perf-show as JSON
//	GET  /v1/flows                      paged megaflow dump
//	GET  /v1/config                     effective other_config
//	PUT  /v1/config                     typed other_config mutation
//	POST /v1/faults                     schedule a fault window
//	GET  /metrics                       Prometheus text format
//
// -duration-ms bounds the traffic window in virtual time; after it the
// daemon idles with the bed intact, still serving the API, until SIGINT or
// SIGTERM. -pace slows the run to X wall seconds per virtual second
// (0 = free-running).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"

	"ovsxdp/internal/api"
	"ovsxdp/internal/core"
	"ovsxdp/internal/dpif"
	"ovsxdp/internal/experiments"
	"ovsxdp/internal/faultinject"
	"ovsxdp/internal/flow"
	"ovsxdp/internal/ofproto"
	"ovsxdp/internal/sim"
	"ovsxdp/internal/svc"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8866", "HTTP listen address (use :0 for an ephemeral port)")
	bedKind := flag.String("bed", "afxdp", "bed datapath kind: afxdp, kernel, or ebpf")
	name := flag.String("name", "bed0", "datapath name in the API")
	flows := flag.Int("flows", 256, "distinct flows offered by the generator")
	queues := flag.Int("queues", 2, "NIC receive queues")
	pmds := flag.Int("pmds", 0, "PMD threads (0 = one per queue)")
	rate := flag.Float64("rate", 1e6, "offered load in packets per second")
	durationMs := flag.Int64("duration-ms", 100, "traffic window in virtual milliseconds")
	pace := flag.Float64("pace", 0, "wall seconds per virtual second (0 = free-running)")
	stepUs := flag.Int64("step-us", 100, "virtual-time slice between API drains, in microseconds")
	other := map[string]string{}
	flag.Func("o", "other_config key=value applied at open (repeatable)", func(s string) error {
		k, v, err := api.ParseConfigArg(s)
		if err != nil {
			return err
		}
		other[k] = v
		return nil
	})
	flag.Parse()

	if err := run(*addr, *bedKind, *name, *flows, *queues, *pmds, *rate,
		*durationMs, *pace, *stepUs, other); err != nil {
		fmt.Fprintln(os.Stderr, "ovs-svc:", err)
		os.Exit(1)
	}
}

// forwardPipeline is the bed's OpenFlow program: port 1 <-> port 2.
func forwardPipeline() *ofproto.Pipeline {
	pl := ofproto.NewPipeline()
	m := flow.NewMaskBuilder().InPort().Build()
	pl.AddRule(&ofproto.Rule{TableID: 0, Priority: 1,
		Match:   ofproto.NewMatch(flow.Fields{InPort: 1}, m),
		Actions: []ofproto.Action{ofproto.Output(2)}})
	pl.AddRule(&ofproto.Rule{TableID: 0, Priority: 1,
		Match:   ofproto.NewMatch(flow.Fields{InPort: 2}, m),
		Actions: []ofproto.Action{ofproto.Output(1)}})
	return pl
}

func run(addr, bedKind, name string, flows, queues, pmds int, rate float64,
	durationMs int64, pace float64, stepUs int64, other map[string]string) error {
	var kind experiments.DPKind
	switch bedKind {
	case "afxdp":
		kind = experiments.KindAFXDP
	case "kernel":
		kind = experiments.KindKernel
	case "ebpf":
		kind = experiments.KindEBPF
	default:
		return fmt.Errorf("unknown bed kind %q (want afxdp, kernel, or ebpf)", bedKind)
	}
	if err := dpif.CheckConfig(other); err != nil {
		return err
	}

	cfg := experiments.DefaultBed(kind, flows)
	cfg.Queues = queues
	cfg.PMDs = pmds
	if len(other) > 0 {
		merged := map[string]string{}
		for k, v := range cfg.Other {
			merged[k] = v
		}
		for k, v := range other {
			merged[k] = v
		}
		cfg.Other = merged
	}
	pl := forwardPipeline()
	cfg.Pipeline = pl
	bed := experiments.NewP2PBed(cfg)

	ctl := core.NewController(bed.Eng)
	ctl.Step = sim.Time(stepUs) * sim.Microsecond
	ctl.Pace = pace

	// Fault injection: the upcall gate wraps the slow path; the offload
	// clamp actuator reaches the NIC table through the netdev datapath.
	inj := faultinject.New(bed.Eng)
	gate := inj.Gate(faultinject.KindUpcallFailure, "upcall")
	bed.DP.SetUpcall(func(key flow.Key) (ofproto.Megaflow, error) {
		if gate() {
			return ofproto.Megaflow{}, inj.Err(faultinject.KindUpcallFailure, "upcall")
		}
		return pl.Translate(key)
	})

	server := svc.NewServer(ctl, svc.Target{Name: name, DP: bed.DP})
	server.SetInjector(inj)
	if nd, ok := bed.DP.(*dpif.Netdev); ok {
		server.RegisterActuator(faultinject.KindOffloadTablePressure, "nic", func(active bool) {
			if active {
				size, _ := strconv.Atoi(nd.GetConfig()["hw-offload-table-size"])
				nd.Datapath().OffloadClamp(size/4 + 1)
			} else {
				nd.Datapath().OffloadClamp(0)
			}
		})
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: server.Handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- httpSrv.Serve(ln) }()
	fmt.Printf("ovs-svc: serving %s (datapath %s/%s) on http://%s\n",
		api.SchemaAPI, name, bed.DP.Type(), ln.Addr())

	// Clean shutdown: stop the run loop (releasing any holds), then drain
	// in-flight handlers — they may be parked in controller ops, so the
	// idle server keeps serving until Shutdown returns.
	stop := make(chan struct{})
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sigs
		ctl.Stop()
		httpSrv.Shutdown(context.Background())
		close(stop)
	}()

	if durationMs > 0 {
		until := sim.Time(durationMs) * sim.Millisecond
		bed.Gen.Run(rate, until)
		ctl.Run(until)
		fmt.Printf("ovs-svc: traffic window complete at t=%v (sent %d, delivered %d, drops %d); API stays live\n",
			bed.Eng.Now(), bed.Gen.Sent, bed.Delivered, bed.Drops())
	}
	ctl.ServeIdle(stop)
	fmt.Println("ovs-svc: shut down cleanly")
	return nil
}
