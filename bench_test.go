// Package ovsxdp's root-level benchmarks regenerate every table and figure
// of the paper's evaluation (one testing.B benchmark per exhibit, running
// the same experiment code as cmd/ovsbench) plus microbenchmarks of the
// datapath hot path and the ablations DESIGN.md calls out.
//
//	go test -bench=. -benchmem
//
// Each Fig*/Table* benchmark reports the headline measurement as a custom
// metric alongside ns/op, so the paper-vs-measured comparison is visible in
// benchmark output; EXPERIMENTS.md holds the full table.
package ovsxdp

import (
	"testing"

	"ovsxdp/internal/afxdp"
	"ovsxdp/internal/core"
	"ovsxdp/internal/dpif"
	"ovsxdp/internal/experiments"
	"ovsxdp/internal/flow"
	"ovsxdp/internal/measure"
	"ovsxdp/internal/nicsim"
	"ovsxdp/internal/ofproto"
	"ovsxdp/internal/packet"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/sim"
)

// runExperiment executes a registered experiment b.N times, reporting the
// first row's measurement as a metric.
func runExperiment(b *testing.B, id, metricRow, metricName string) {
	e, ok := experiments.Get(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	b.ReportAllocs()
	var val float64
	for i := 0; i < b.N; i++ {
		rep := e.Run(experiments.Quick)
		for _, row := range rep.Rows {
			if row.Name == metricRow {
				val = row.Measured
			}
		}
	}
	if metricName != "" {
		b.ReportMetric(val, metricName)
	}
}

func BenchmarkFig1Churn(b *testing.B) { runExperiment(b, "fig1", "2018 backports", "LoC") }
func BenchmarkFig2SingleCore(b *testing.B) {
	runExperiment(b, "fig2", "kernel", "kernel-Mpps")
}
func BenchmarkTable1Compat(b *testing.B) {
	runExperiment(b, "table1", "ip link on afxdp", "works")
}
func BenchmarkTable2Ladder(b *testing.B) {
	runExperiment(b, "table2", "O1..O5", "Mpps")
}
func BenchmarkTable3Ruleset(b *testing.B) {
	runExperiment(b, "table3", "OpenFlow rules", "rules")
}
func BenchmarkTable4CPU(b *testing.B) {
	runExperiment(b, "table4", "P2P afxdp user", "HT")
}
func BenchmarkTable5XDPTasks(b *testing.B) {
	runExperiment(b, "table5", "A: drop only", "Mpps")
}
func BenchmarkFig8aCrossHostTCP(b *testing.B) {
	runExperiment(b, "fig8a", "afxdp + vhost (csum offload)", "Gbps")
}
func BenchmarkFig8bIntraHostTCP(b *testing.B) {
	runExperiment(b, "fig8b", "afxdp + vhost (csum+TSO)", "Gbps")
}
func BenchmarkFig8cContainerTCP(b *testing.B) {
	runExperiment(b, "fig8c", "afxdp XDP redirect", "Gbps")
}
func BenchmarkFig9aP2P(b *testing.B) {
	runExperiment(b, "fig9a", "afxdp 1-flow", "Mpps")
}
func BenchmarkFig9bPVP(b *testing.B) {
	runExperiment(b, "fig9b", "afxdp+vhostuser 1-flow", "Mpps")
}
func BenchmarkFig9cPCP(b *testing.B) {
	runExperiment(b, "fig9c", "afxdp-xdp-redirect 1-flow", "Mpps")
}
func BenchmarkFig10VMLatency(b *testing.B) {
	runExperiment(b, "fig10", "afxdp P50", "P50-us")
}
func BenchmarkFig11ContainerLatency(b *testing.B) {
	runExperiment(b, "fig11", "dpdk P99", "P99-us")
}
func BenchmarkFig12MultiQueue(b *testing.B) {
	runExperiment(b, "fig12", "afxdp-1518B-6q", "Gbps")
}

// --- Hot-path microbenchmarks --------------------------------------------------

// benchP2PPerPacket measures virtual per-packet PMD cost of a P2P forward.
func benchP2PPerPacket(b *testing.B, kind experiments.DPKind, flows int) {
	cfg := experiments.DefaultBed(kind, flows)
	bed := experiments.NewP2PBed(cfg)
	res := experiments.RunProbe(bed, 1e6, 2*sim.Millisecond, 10*sim.Millisecond)
	if res.Delivered == 0 {
		b.Fatal("nothing delivered")
	}
	b.ReportMetric(res.Usage.Total(), "HT")
	// The Go-level work: re-run the packet path b.N times through a fresh
	// bed at small scale to exercise allocation behaviour.
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.RunProbe(experiments.NewP2PBed(cfg), 1e5, sim.Millisecond, sim.Millisecond)
	}
}

func BenchmarkMicroP2PAFXDP(b *testing.B)  { benchP2PPerPacket(b, experiments.KindAFXDP, 1) }
func BenchmarkMicroP2PDPDK(b *testing.B)   { benchP2PPerPacket(b, experiments.KindDPDK, 1) }
func BenchmarkMicroP2PKernel(b *testing.B) { benchP2PPerPacket(b, experiments.KindKernel, 1) }

// BenchmarkDpifExecute measures the per-packet Go-level cost of the dpif
// Execute path — one sub-benchmark per registered provider, all driving the
// identical single-flow forward through the provider seam.
func BenchmarkDpifExecute(b *testing.B) {
	frame := hdr.NewBuilder().
		Eth(hdr.MAC{0x02, 0xaa, 0, 0, 0, 1}, hdr.MAC{0x02, 0xbb, 0, 0, 0, 1}).
		IPv4H(hdr.MakeIP4(10, 0, 0, 1), hdr.MakeIP4(10, 0, 0, 2), 64).
		UDPH(1000, 2000).PadTo(64).Build()
	for _, name := range dpif.Types() {
		b.Run(name, func(b *testing.B) {
			eng := sim.NewEngine(1)
			pl := ofproto.NewPipeline()
			pl.AddRule(&ofproto.Rule{TableID: 0, Priority: 1,
				Match: ofproto.NewMatch(flow.Fields{InPort: 1},
					flow.NewMaskBuilder().InPort().Build()),
				Actions: []ofproto.Action{ofproto.Output(2)}})
			d, err := dpif.Open(name, dpif.Config{Eng: eng, Pipeline: pl})
			if err != nil {
				b.Fatal(err)
			}
			var delivered uint64
			if err := d.PortAdd(dpif.TxPort{PortID: 2, PortName: "p1",
				Deliver: func(*packet.Packet) { delivered++ }}); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := packet.New(frame)
				p.InPort = 1
				d.Execute(p)
			}
			b.StopTimer()
			if delivered != uint64(b.N) {
				b.Fatalf("delivered %d of %d", delivered, b.N)
			}
			st := d.Stats()
			b.ReportMetric(float64(st.Flows), "flows")
		})
	}
}

// --- Ablations (DESIGN.md section 5) -------------------------------------------

// ablationRate finds the lossless rate under a tweaked configuration.
func ablationRate(b *testing.B, mutate func(*experiments.BedConfig)) float64 {
	b.ReportAllocs()
	cfg := experiments.DefaultBed(experiments.KindAFXDP, 1)
	mutate(&cfg)
	rate, _, _ := measure.LosslessRate(
		measure.SearchConfig{LoPPS: 5e4, HiPPS: 20e6, LossTolerance: 0.002, Iterations: 8},
		func(r float64) measure.ProbeResult {
			bed := experiments.NewP2PBed(cfg)
			return experiments.RunProbe(bed, r, 2*sim.Millisecond, 8*sim.Millisecond)
		})
	return rate
}

func BenchmarkAblationEMCOn(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		rate = ablationRate(b, func(*experiments.BedConfig) {})
	}
	b.ReportMetric(measure.Mpps(rate), "Mpps")
}

func BenchmarkAblationEMCOff(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		rate = ablationRate(b, func(c *experiments.BedConfig) { c.Opts.EMC = false })
	}
	b.ReportMetric(measure.Mpps(rate), "Mpps")
}

func BenchmarkAblationBatch8(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		rate = ablationRate(b, func(c *experiments.BedConfig) { c.Opts.BatchSize = 8 })
	}
	b.ReportMetric(measure.Mpps(rate), "Mpps")
}

func BenchmarkAblationBatch128(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		rate = ablationRate(b, func(c *experiments.BedConfig) { c.Opts.BatchSize = 128 })
	}
	b.ReportMetric(measure.Mpps(rate), "Mpps")
}

func BenchmarkAblationMutexLocking(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		rate = ablationRate(b, func(c *experiments.BedConfig) { c.Lock = afxdp.LockMutex })
	}
	b.ReportMetric(measure.Mpps(rate), "Mpps")
}

func BenchmarkAblationNoWildcarding(b *testing.B) {
	// The eBPF datapath's exact-match-only restriction, measured on the
	// kernel path (Section 2.2.2 footnote: megaflows as eBPF maps were
	// rejected).
	b.ReportAllocs()
	var rate float64
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultBed(experiments.KindEBPF, 1000)
		cfg.KernelQueues = 1
		rate, _, _ = func() (float64, measure.ProbeResult, bool) {
			return measure.LosslessRate(
				measure.SearchConfig{LoPPS: 5e4, HiPPS: 10e6, LossTolerance: 0.002, Iterations: 7},
				func(r float64) measure.ProbeResult {
					bed := experiments.NewP2PBed(cfg)
					return experiments.RunProbe(bed, r, 2*sim.Millisecond, 8*sim.Millisecond)
				})
		}()
	}
	b.ReportMetric(measure.Mpps(rate), "Mpps")
}

func BenchmarkAblationZeroCopy(b *testing.B) {
	// Zero-copy AF_XDP relieves the softirq side; the lossless rate moves
	// only if softirq was the bottleneck (Outcome #2's optimization
	// pipeline).
	var rate float64
	for i := 0; i < b.N; i++ {
		rate = ablationRate(b, func(c *experiments.BedConfig) { c.ZeroCopy = true })
	}
	b.ReportMetric(measure.Mpps(rate), "Mpps")
}

// BenchmarkVerifier measures eBPF program verification (the per-port-add
// cost vswitchd pays when loading the XDP program).
func BenchmarkVerifier(b *testing.B) {
	eng := sim.NewEngine(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		nic := nicsim.New(eng, nicsim.Config{Name: "bench", Ifindex: uint32(i + 1), Queues: 4})
		if _, err := core.AttachDefaultProgram(nic); err != nil {
			b.Fatal(err)
		}
	}
}
