package ovs

import (
	"fmt"
	"strconv"
	"strings"

	"ovsxdp/internal/conntrack"
	"ovsxdp/internal/flow"
	"ovsxdp/internal/ofproto"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/tunnel"
)

// ParseFlow parses an ovs-ofctl-style flow specification into a rule.
//
// Matches (comma separated, before "actions="):
//
//	table=N priority=N in_port=N dl_src=MAC dl_dst=MAC dl_type=0xNNNN
//	dl_vlan=N ip tcp udp arp icmp nw_src=a.b.c.d[/len] nw_dst=a.b.c.d[/len]
//	nw_proto=N tp_src=N tp_dst=N ct_state=+trk+est-new ct_zone=N
//	ct_mark=N tun_id=N tun_src=IP tun_dst=IP
//
// Actions (comma separated after "actions="):
//
//	output:N drop goto_table:N meter:N push_vlan:VID pop_vlan
//	mod_dl_src:MAC mod_dl_dst:MAC dec_ttl
//	ct(commit,zone=N,table=N[,nat(snat=IP[:port])|nat(dnat=IP[:port])])
//	set_tunnel(kind=geneve,vni=N,local=IP,remote=IP) tnl_pop:N
//
// Example:
//
//	"table=0,priority=100,in_port=1,ip,tcp,tp_dst=80,actions=ct(commit,zone=5,table=10)"
func ParseFlow(spec string) (*ofproto.Rule, error) {
	matchPart, actionPart, ok := strings.Cut(spec, "actions=")
	if !ok {
		return nil, fmt.Errorf("ovs: flow %q has no actions=", spec)
	}
	matchPart = strings.TrimSuffix(strings.TrimSpace(matchPart), ",")

	rule := &ofproto.Rule{Priority: 1}
	var fields flow.Fields
	mb := flow.NewMaskBuilder()
	var extraMask flow.Mask

	for _, tok := range splitTop(matchPart) {
		if tok == "" {
			continue
		}
		key, val, hasVal := strings.Cut(tok, "=")
		switch key {
		case "table":
			n, err := parseUint(val, 8)
			if err != nil {
				return nil, err
			}
			rule.TableID = uint8(n)
		case "priority":
			n, err := parseUint(val, 16)
			if err != nil {
				return nil, err
			}
			rule.Priority = int(n)
		case "cookie":
			n, err := strconv.ParseUint(strings.TrimPrefix(val, "0x"), 16, 64)
			if err != nil {
				return nil, fmt.Errorf("ovs: bad cookie %q", val)
			}
			rule.Cookie = n
		case "in_port":
			n, err := parseUint(val, 32)
			if err != nil {
				return nil, err
			}
			fields.InPort = uint32(n)
			mb.InPort()
		case "dl_src":
			mac, err := parseMAC(val)
			if err != nil {
				return nil, err
			}
			fields.EthSrc = mac
			mb.EthSrc()
		case "dl_dst":
			mac, err := parseMAC(val)
			if err != nil {
				return nil, err
			}
			fields.EthDst = mac
			mb.EthDst()
		case "dl_type":
			n, err := strconv.ParseUint(strings.TrimPrefix(val, "0x"), 16, 16)
			if err != nil {
				return nil, fmt.Errorf("ovs: bad dl_type %q", val)
			}
			fields.EthType = hdr.EtherType(n)
			mb.EthType()
		case "dl_vlan":
			n, err := parseUint(val, 12)
			if err != nil {
				return nil, err
			}
			fields.VLANTCI = flow.VLANPresent | uint16(n)
			mb.VLAN()
		case "ip":
			fields.EthType = hdr.EtherTypeIPv4
			mb.EthType()
		case "arp":
			fields.EthType = hdr.EtherTypeARP
			mb.EthType()
		case "tcp", "udp", "icmp":
			fields.EthType = hdr.EtherTypeIPv4
			mb.EthType().IPProto()
			switch key {
			case "tcp":
				fields.IPProto = hdr.IPProtoTCP
			case "udp":
				fields.IPProto = hdr.IPProtoUDP
			case "icmp":
				fields.IPProto = hdr.IPProtoICMP
			}
		case "nw_proto":
			n, err := parseUint(val, 8)
			if err != nil {
				return nil, err
			}
			fields.IPProto = hdr.IPProto(n)
			mb.IPProto()
		case "nw_src", "nw_dst":
			ip, plen, err := parseCIDR(val)
			if err != nil {
				return nil, err
			}
			if key == "nw_src" {
				fields.IP4Src = ip
				mb.IP4Src(plen)
			} else {
				fields.IP4Dst = ip
				mb.IP4Dst(plen)
			}
		case "nw_ttl":
			n, err := parseUint(val, 8)
			if err != nil {
				return nil, err
			}
			fields.IPTTL = uint8(n)
			mb.IPTTL()
		case "tp_src":
			n, err := parseUint(val, 16)
			if err != nil {
				return nil, err
			}
			fields.TPSrc = uint16(n)
			mb.TPSrc()
		case "tp_dst":
			n, err := parseUint(val, 16)
			if err != nil {
				return nil, err
			}
			fields.TPDst = uint16(n)
			mb.TPDst()
		case "ct_state":
			state, bits, err := parseCtState(val)
			if err != nil {
				return nil, err
			}
			fields.CtState = state
			extraMask = extraMask.Union(flow.NewMaskBuilder().CtState(bits).Build())
		case "ct_zone":
			n, err := parseUint(val, 16)
			if err != nil {
				return nil, err
			}
			fields.CtZone = uint16(n)
			mb.CtZone()
		case "ct_mark":
			n, err := parseUint(val, 32)
			if err != nil {
				return nil, err
			}
			fields.CtMark = uint32(n)
			mb.CtMark()
		case "tun_id":
			n, err := parseUint(val, 32)
			if err != nil {
				return nil, err
			}
			fields.TunVNI = uint32(n)
			mb.TunVNI()
		case "tun_src":
			ip, err := parseIP(val)
			if err != nil {
				return nil, err
			}
			fields.TunSrc = ip
			mb.TunSrc()
		case "tun_dst":
			ip, err := parseIP(val)
			if err != nil {
				return nil, err
			}
			fields.TunDst = ip
			mb.TunDst()
		default:
			if !hasVal {
				return nil, fmt.Errorf("ovs: unknown match keyword %q", key)
			}
			return nil, fmt.Errorf("ovs: unknown match field %q", key)
		}
	}
	rule.Match = ofproto.NewMatch(fields, mb.Build().Union(extraMask))

	actions, err := parseActions(actionPart)
	if err != nil {
		return nil, err
	}
	rule.Actions = actions
	return rule, nil
}

// parseActions parses the action list.
func parseActions(s string) ([]ofproto.Action, error) {
	var out []ofproto.Action
	for _, tok := range splitTop(strings.TrimSpace(s)) {
		if tok == "" {
			continue
		}
		switch {
		case tok == "drop":
			out = append(out, ofproto.Drop())
		case tok == "pop_vlan":
			out = append(out, ofproto.PopVLAN())
		case tok == "dec_ttl":
			out = append(out, ofproto.DecTTL())
		case strings.HasPrefix(tok, "output:"):
			n, err := parseUint(tok[len("output:"):], 32)
			if err != nil {
				return nil, err
			}
			out = append(out, ofproto.Output(uint32(n)))
		case strings.HasPrefix(tok, "goto_table:"):
			n, err := parseUint(tok[len("goto_table:"):], 8)
			if err != nil {
				return nil, err
			}
			out = append(out, ofproto.GotoTable(uint8(n)))
		case strings.HasPrefix(tok, "meter:"):
			n, err := parseUint(tok[len("meter:"):], 32)
			if err != nil {
				return nil, err
			}
			out = append(out, ofproto.Meter(uint32(n)))
		case strings.HasPrefix(tok, "push_vlan:"):
			n, err := parseUint(tok[len("push_vlan:"):], 12)
			if err != nil {
				return nil, err
			}
			out = append(out, ofproto.PushVLAN(uint16(n), 0))
		case strings.HasPrefix(tok, "mod_dl_src:"):
			mac, err := parseMAC(tok[len("mod_dl_src:"):])
			if err != nil {
				return nil, err
			}
			out = append(out, ofproto.SetEthSrc(mac))
		case strings.HasPrefix(tok, "mod_dl_dst:"):
			mac, err := parseMAC(tok[len("mod_dl_dst:"):])
			if err != nil {
				return nil, err
			}
			out = append(out, ofproto.SetEthDst(mac))
		case strings.HasPrefix(tok, "tnl_pop:"):
			n, err := parseUint(tok[len("tnl_pop:"):], 32)
			if err != nil {
				return nil, err
			}
			out = append(out, ofproto.TunnelPop(uint32(n)))
		case strings.HasPrefix(tok, "ct(") && strings.HasSuffix(tok, ")"):
			a, err := parseCtAction(tok[3 : len(tok)-1])
			if err != nil {
				return nil, err
			}
			out = append(out, a)
		case strings.HasPrefix(tok, "set_tunnel(") && strings.HasSuffix(tok, ")"):
			a, err := parseSetTunnel(tok[len("set_tunnel(") : len(tok)-1])
			if err != nil {
				return nil, err
			}
			out = append(out, a)
		default:
			return nil, fmt.Errorf("ovs: unknown action %q", tok)
		}
	}
	return out, nil
}

func parseCtAction(body string) (ofproto.Action, error) {
	a := ofproto.Action{Type: ofproto.ActionCT}
	for _, part := range splitTop(body) {
		key, val, _ := strings.Cut(part, "=")
		switch {
		case part == "commit":
			a.Commit = true
		case key == "zone":
			n, err := parseUint(val, 16)
			if err != nil {
				return a, err
			}
			a.Zone = uint16(n)
		case key == "table":
			n, err := parseUint(val, 8)
			if err != nil {
				return a, err
			}
			a.Table = uint8(n)
		case strings.HasPrefix(part, "nat(") && strings.HasSuffix(part, ")"):
			nat, err := parseNat(part[4 : len(part)-1])
			if err != nil {
				return a, err
			}
			a.NAT = nat
		default:
			return a, fmt.Errorf("ovs: unknown ct() argument %q", part)
		}
	}
	return a, nil
}

func parseNat(body string) (conntrack.NAT, error) {
	var nat conntrack.NAT
	key, val, ok := strings.Cut(body, "=")
	if !ok {
		return nat, fmt.Errorf("ovs: bad nat spec %q", body)
	}
	switch key {
	case "snat":
		nat.Kind = conntrack.SNAT
	case "dnat":
		nat.Kind = conntrack.DNAT
	default:
		return nat, fmt.Errorf("ovs: nat kind %q", key)
	}
	addr, portStr, hasPort := strings.Cut(val, ":")
	ip, err := parseIP(addr)
	if err != nil {
		return nat, err
	}
	nat.Addr = ip
	if hasPort {
		if loStr, hiStr, isRange := strings.Cut(portStr, "-"); isRange {
			// "lo-hi" selects dynamic allocation from the range.
			lo, err := parseUint(loStr, 16)
			if err != nil {
				return nat, err
			}
			hi, err := parseUint(hiStr, 16)
			if err != nil {
				return nat, err
			}
			if lo == 0 || hi < lo {
				return nat, fmt.Errorf("ovs: bad nat port range %q", portStr)
			}
			nat.PortLo, nat.PortHi = uint16(lo), uint16(hi)
			return nat, nil
		}
		n, err := parseUint(portStr, 16)
		if err != nil {
			return nat, err
		}
		nat.Port = uint16(n)
	}
	return nat, nil
}

func parseSetTunnel(body string) (ofproto.Action, error) {
	cfg := tunnel.Config{Kind: tunnel.Geneve}
	for _, part := range splitTop(body) {
		key, val, _ := strings.Cut(part, "=")
		switch key {
		case "kind":
			switch val {
			case "geneve":
				cfg.Kind = tunnel.Geneve
			case "vxlan":
				cfg.Kind = tunnel.VXLAN
			case "gre":
				cfg.Kind = tunnel.GRE
			default:
				return ofproto.Action{}, fmt.Errorf("ovs: tunnel kind %q", val)
			}
		case "vni":
			n, err := parseUint(val, 32)
			if err != nil {
				return ofproto.Action{}, err
			}
			cfg.VNI = uint32(n)
		case "local":
			ip, err := parseIP(val)
			if err != nil {
				return ofproto.Action{}, err
			}
			cfg.LocalIP = ip
		case "remote":
			ip, err := parseIP(val)
			if err != nil {
				return ofproto.Action{}, err
			}
			cfg.RemoteIP = ip
		default:
			return ofproto.Action{}, fmt.Errorf("ovs: unknown set_tunnel argument %q", part)
		}
	}
	return ofproto.SetTunnel(cfg), nil
}

// parseCtState parses "+trk+est-new" into value and mask bits.
func parseCtState(s string) (value uint8, bits uint8, err error) {
	names := map[string]uint8{
		"trk": 0x01, "new": 0x02, "est": 0x04, "rel": 0x08, "rpl": 0x10, "inv": 0x20,
	}
	i := 0
	for i < len(s) {
		sign := s[i]
		if sign != '+' && sign != '-' {
			return 0, 0, fmt.Errorf("ovs: ct_state must be +flag/-flag sequences, got %q", s)
		}
		i++
		j := i
		for j < len(s) && s[j] != '+' && s[j] != '-' {
			j++
		}
		bit, ok := names[s[i:j]]
		if !ok {
			return 0, 0, fmt.Errorf("ovs: unknown ct_state flag %q", s[i:j])
		}
		bits |= bit
		if sign == '+' {
			value |= bit
		}
		i = j
	}
	return value, bits, nil
}

// splitTop splits on commas not inside parentheses.
func splitTop(s string) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

func parseUint(s string, bits int) (uint64, error) {
	n, err := strconv.ParseUint(s, 10, bits)
	if err != nil {
		return 0, fmt.Errorf("ovs: bad number %q", s)
	}
	return n, nil
}

func parseMAC(s string) (hdr.MAC, error) {
	var m hdr.MAC
	parts := strings.Split(s, ":")
	if len(parts) != 6 {
		return m, fmt.Errorf("ovs: bad MAC %q", s)
	}
	for i, p := range parts {
		b, err := strconv.ParseUint(p, 16, 8)
		if err != nil {
			return m, fmt.Errorf("ovs: bad MAC %q", s)
		}
		m[i] = byte(b)
	}
	return m, nil
}

func parseIP(s string) (hdr.IP4, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("ovs: bad IPv4 address %q", s)
	}
	var octets [4]byte
	for i, p := range parts {
		b, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("ovs: bad IPv4 address %q", s)
		}
		octets[i] = byte(b)
	}
	return hdr.MakeIP4(octets[0], octets[1], octets[2], octets[3]), nil
}

func parseCIDR(s string) (hdr.IP4, int, error) {
	addr, lenStr, hasLen := strings.Cut(s, "/")
	ip, err := parseIP(addr)
	if err != nil {
		return 0, 0, err
	}
	plen := 32
	if hasLen {
		n, err := parseUint(lenStr, 8)
		if err != nil || n > 32 {
			return 0, 0, fmt.Errorf("ovs: bad prefix length %q", lenStr)
		}
		plen = int(n)
	}
	return ip, plen, nil
}
