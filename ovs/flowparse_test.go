package ovs

import (
	"testing"

	"ovsxdp/internal/conntrack"
	"ovsxdp/internal/flow"
	"ovsxdp/internal/ofproto"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/tunnel"
)

func TestParseFlowBasic(t *testing.T) {
	r, err := ParseFlow("table=3,priority=200,in_port=7,actions=output:9")
	if err != nil {
		t.Fatal(err)
	}
	if r.TableID != 3 || r.Priority != 200 {
		t.Fatalf("header = %+v", r)
	}
	if len(r.Actions) != 1 || r.Actions[0].Type != ofproto.ActionOutput || r.Actions[0].Port != 9 {
		t.Fatalf("actions = %v", r.Actions)
	}
	key := (&flow.Fields{InPort: 7, TPDst: 999}).Pack()
	if !r.Match.Matches(key) {
		t.Fatal("in_port match must accept the key")
	}
	if r.Match.Matches((&flow.Fields{InPort: 8}).Pack()) {
		t.Fatal("in_port match must reject other ports")
	}
}

func TestParseFlowFiveTuple(t *testing.T) {
	r, err := ParseFlow("ip,tcp,nw_src=10.1.0.0/16,nw_dst=10.2.3.4,tp_dst=443,actions=drop")
	if err != nil {
		t.Fatal(err)
	}
	match := func(src, dst hdr.IP4, dport uint16) bool {
		return r.Match.Matches((&flow.Fields{
			EthType: hdr.EtherTypeIPv4, IPProto: hdr.IPProtoTCP,
			IP4Src: src, IP4Dst: dst, TPDst: dport}).Pack())
	}
	if !match(hdr.MakeIP4(10, 1, 99, 99), hdr.MakeIP4(10, 2, 3, 4), 443) {
		t.Fatal("in-prefix 5-tuple must match")
	}
	if match(hdr.MakeIP4(10, 9, 0, 1), hdr.MakeIP4(10, 2, 3, 4), 443) {
		t.Fatal("out-of-prefix source must not match")
	}
	if match(hdr.MakeIP4(10, 1, 0, 1), hdr.MakeIP4(10, 2, 3, 4), 80) {
		t.Fatal("other port must not match")
	}
	if r.Actions[0].Type != ofproto.ActionDrop {
		t.Fatalf("actions = %v", r.Actions)
	}
}

func TestParseFlowCtStateAndAction(t *testing.T) {
	r, err := ParseFlow("table=10,ct_state=+trk+est-new,ct_zone=9,actions=goto_table:20")
	if err != nil {
		t.Fatal(err)
	}
	est := (&flow.Fields{CtState: 0x05, CtZone: 9}).Pack() // trk|est
	if !r.Match.Matches(est) {
		t.Fatal("trk+est must match")
	}
	newConn := (&flow.Fields{CtState: 0x03, CtZone: 9}).Pack() // trk|new
	if r.Match.Matches(newConn) {
		t.Fatal("-new must reject new connections")
	}

	r2, err := ParseFlow("ip,actions=ct(commit,zone=4,table=11,nat(snat=192.0.2.1:40000))")
	if err != nil {
		t.Fatal(err)
	}
	a := r2.Actions[0]
	if a.Type != ofproto.ActionCT || !a.Commit || a.Zone != 4 || a.Table != 11 {
		t.Fatalf("ct = %+v", a)
	}
	if a.NAT.Kind != conntrack.SNAT || a.NAT.Addr != hdr.MakeIP4(192, 0, 2, 1) || a.NAT.Port != 40000 {
		t.Fatalf("nat = %+v", a.NAT)
	}
}

func TestParseFlowTunnelActions(t *testing.T) {
	r, err := ParseFlow("dl_dst=02:20:00:00:00:01,actions=set_tunnel(kind=geneve,vni=5000,local=172.16.0.1,remote=172.16.0.2),output:1")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Actions) != 2 {
		t.Fatalf("actions = %v", r.Actions)
	}
	st := r.Actions[0]
	if st.Type != ofproto.ActionSetTunnel || st.Tunnel.Kind != tunnel.Geneve ||
		st.Tunnel.VNI != 5000 || st.Tunnel.RemoteIP != hdr.MakeIP4(172, 16, 0, 2) {
		t.Fatalf("set_tunnel = %+v", st.Tunnel)
	}

	r2, err := ParseFlow("in_port=1,udp,tp_dst=6081,actions=tnl_pop:100")
	if err != nil {
		t.Fatal(err)
	}
	if r2.Actions[0].Type != ofproto.ActionTunnelPop || r2.Actions[0].Port != 100 {
		t.Fatalf("tnl_pop = %+v", r2.Actions[0])
	}
}

func TestParseFlowRewriteActions(t *testing.T) {
	r, err := ParseFlow("ip,actions=mod_dl_dst:02:00:00:00:00:99,dec_ttl,push_vlan:100,output:2")
	if err != nil {
		t.Fatal(err)
	}
	want := []ofproto.ActionType{ofproto.ActionSetEthDst, ofproto.ActionDecTTL,
		ofproto.ActionPushVLAN, ofproto.ActionOutput}
	if len(r.Actions) != len(want) {
		t.Fatalf("actions = %v", r.Actions)
	}
	for i, w := range want {
		if r.Actions[i].Type != w {
			t.Fatalf("action %d = %v, want %v", i, r.Actions[i], w)
		}
	}
	if r.Actions[0].MAC != (hdr.MAC{2, 0, 0, 0, 0, 0x99}) {
		t.Fatalf("mac = %v", r.Actions[0].MAC)
	}
	if r.Actions[2].VLAN != 100 {
		t.Fatalf("vlan = %d", r.Actions[2].VLAN)
	}
}

func TestParseFlowErrors(t *testing.T) {
	bad := []string{
		"in_port=1",                             // no actions
		"in_port=abc,actions=drop",              // bad number
		"frobnicate=1,actions=drop",             // unknown field
		"in_port=1,actions=explode",             // unknown action
		"in_port=1,actions=output:notanum",      // bad action arg
		"dl_src=zz:00:00:00:00:00,actions=drop", // bad MAC
		"nw_src=1.2.3,actions=drop",             // bad IP
		"nw_src=1.2.3.4/99,actions=drop",        // bad prefix
		"ct_state=trk,actions=drop",             // missing +/-
		"ct_state=+bogus,actions=drop",          // unknown flag
		"ip,actions=ct(warp=9)",                 // unknown ct arg
	}
	for _, spec := range bad {
		if _, err := ParseFlow(spec); err == nil {
			t.Errorf("spec %q must fail to parse", spec)
		}
	}
}

func TestParseFlowMeterAndCookie(t *testing.T) {
	r, err := ParseFlow("cookie=0xfeed,ip,actions=meter:3,output:1")
	if err != nil {
		t.Fatal(err)
	}
	if r.Cookie != 0xfeed {
		t.Fatalf("cookie = %#x", r.Cookie)
	}
	if r.Actions[0].Type != ofproto.ActionMeter || r.Actions[0].MeterID != 3 {
		t.Fatalf("meter = %+v", r.Actions[0])
	}
}

func TestSplitTopRespectsParens(t *testing.T) {
	got := splitTop("a,ct(commit,zone=1),b")
	if len(got) != 3 || got[1] != "ct(commit,zone=1)" {
		t.Fatalf("splitTop = %q", got)
	}
}
