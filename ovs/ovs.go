// Package ovs is the public API of the OVS AF_XDP reproduction: a
// deterministic, simulated Open vSwitch you can build bridges on, attach
// ports to (AF_XDP, DPDK, tap, vhostuser, veth), program with
// ovs-ofctl-style flow rules, and drive with packets — all on a virtual
// clock, so results are exactly reproducible.
//
// The fast path is the paper's architecture (Section 3): an XDP program on
// each AF_XDP port redirects packets into per-queue AF_XDP sockets, PMD
// threads poll the rings in userspace, and a per-thread exact-match cache
// plus megaflow classifier shortcut the OpenFlow pipeline.
//
// Quick start:
//
//	sw := ovs.New()
//	br := sw.AddBridge("br0")
//	p1, _ := br.AddAFXDPPort("eth0", 1)
//	p2, _ := br.AddAFXDPPort("eth1", 1)
//	br.MustAddFlow("in_port=" + p1.IDString() + ",actions=output:" + p2.IDString())
//	p2.OnOutput(func(frame []byte) { ... })
//	p1.Inject(frame)
//	sw.Run(10 * time.Millisecond)
package ovs

import (
	"fmt"
	"time"

	"ovsxdp/internal/core"
	"ovsxdp/internal/netlinksim"
	"ovsxdp/internal/nicsim"
	"ovsxdp/internal/ofproto"
	"ovsxdp/internal/packet"
	"ovsxdp/internal/sim"
	"ovsxdp/internal/tunnel"
	"ovsxdp/internal/vdev"
)

// Switch is one simulated vSwitch instance: an event engine, a userspace
// datapath, and the OpenFlow pipeline behind it.
type Switch struct {
	eng      *sim.Engine
	dp       *core.Datapath
	pipeline *ofproto.Pipeline
	kernel   *netlinksim.Kernel
	bridges  map[string]*Bridge
	nextPort uint32
	pmd      *core.PMD
}

// Option configures New.
type Option func(*config)

type config struct {
	seed    uint64
	opts    core.Options
	pmdMode core.Mode
}

// WithSeed fixes the randomness seed (default 1).
func WithSeed(seed uint64) Option { return func(c *config) { c.seed = seed } }

// WithoutEMC disables the exact-match cache (ablation).
func WithoutEMC() Option { return func(c *config) { c.opts.EMC = false } }

// WithCsumOffloadEstimate enables the paper's O5 estimated checksum
// offload.
func WithCsumOffloadEstimate() Option {
	return func(c *config) { c.opts.AssumeCsumOffload = true }
}

// WithInterruptMode runs the PMD interrupt-driven instead of busy-polling.
func WithInterruptMode() Option { return func(c *config) { c.pmdMode = core.ModeInterrupt } }

// New builds a switch with one PMD thread.
func New(options ...Option) *Switch {
	cfg := config{seed: 1, opts: core.DefaultOptions(), pmdMode: core.ModePoll}
	for _, o := range options {
		o(&cfg)
	}
	eng := sim.NewEngine(cfg.seed)
	kern := netlinksim.NewKernel()
	pl := ofproto.NewPipeline()
	dp := core.NewDatapath(eng, pl, cfg.opts)
	dp.Encapper = tunnel.NewEncapper(netlinksim.NewCache(kern))
	s := &Switch{
		eng:      eng,
		dp:       dp,
		pipeline: pl,
		kernel:   kern,
		bridges:  make(map[string]*Bridge),
		nextPort: 1,
	}
	s.pmd = dp.NewPMD(cfg.pmdMode, nil)
	s.pmd.Start()
	return s
}

// Run advances virtual time by d (mapped 1:1 from wall-clock units to
// simulated time).
func (s *Switch) Run(d time.Duration) {
	s.eng.RunUntil(s.eng.Now() + sim.Time(d.Nanoseconds()))
}

// Now returns the current virtual time since start.
func (s *Switch) Now() time.Duration {
	return time.Duration(int64(s.eng.Now()))
}

// AddBridge creates a bridge.
func (s *Switch) AddBridge(name string) *Bridge {
	b := &Bridge{sw: s, Name: name, ports: make(map[string]*Port)}
	s.bridges[name] = b
	return b
}

// Bridge returns a bridge by name.
func (s *Switch) Bridge(name string) (*Bridge, bool) {
	b, ok := s.bridges[name]
	return b, ok
}

// Stats reports datapath counters.
type Stats struct {
	Processed      uint64
	EMCHits        uint64
	MegaflowHits   uint64
	Upcalls        uint64
	Drops          uint64
	Recirculations uint64
	FlowRules      int
}

// Stats returns a snapshot of datapath counters.
func (s *Switch) Stats() Stats {
	return Stats{
		Processed:      s.dp.Processed,
		EMCHits:        s.dp.EMCHits,
		MegaflowHits:   s.dp.MegaflowHits,
		Upcalls:        s.dp.Upcalls,
		Drops:          s.dp.Drops,
		Recirculations: s.dp.Recirculations,
		FlowRules:      s.pipeline.RuleCount(),
	}
}

// CPUReport returns per-category CPU consumption in hyperthread units for
// the elapsed virtual time, like the paper's Table 4 rows.
func (s *Switch) CPUReport() map[string]float64 {
	u := s.eng.CPUReport(s.eng.Now())
	return map[string]float64{
		"user":    u[sim.User],
		"system":  u[sim.System],
		"softirq": u[sim.Softirq],
		"guest":   u[sim.Guest],
	}
}

// Bridge is a named group of ports sharing the switch's pipeline.
type Bridge struct {
	sw    *Switch
	Name  string
	ports map[string]*Port
}

// Port is one datapath port.
type Port struct {
	sw   *Switch
	id   uint32
	name string
	kind string

	nic  *nicsim.NIC
	tap  *vdev.Tap
	vh   *vdev.VhostUser
	veth *vdev.VethPair

	onOutput func([]byte)
}

// ID returns the datapath port number (usable in flow specs).
func (p *Port) ID() uint32 { return p.id }

// IDString formats the port number for flow specs.
func (p *Port) IDString() string { return fmt.Sprint(p.id) }

// Name returns the port name.
func (p *Port) Name() string { return p.name }

// Kind returns the transport kind ("afxdp", "dpdk", "tap", "vhostuser",
// "veth").
func (p *Port) Kind() string { return p.kind }

// AddAFXDPPort attaches a simulated NIC via AF_XDP: the kernel keeps the
// device (netlink tooling keeps working), an XDP program is loaded through
// the verifier and attached, and per-queue AF_XDP sockets feed the PMD.
func (b *Bridge) AddAFXDPPort(name string, queues int) (*Port, error) {
	if queues <= 0 {
		queues = 1
	}
	s := b.sw
	id := s.nextPort
	s.nextPort++
	nic := nicsim.New(s.eng, nicsim.Config{Name: name, Ifindex: id, Queues: queues})
	if _, err := core.AttachDefaultProgram(nic); err != nil {
		return nil, fmt.Errorf("ovs: %w", err)
	}
	if _, err := s.kernel.AddLink(name, "simnic", macFor(id), 1500); err != nil {
		return nil, fmt.Errorf("ovs: %w", err)
	}
	port := core.NewAFXDPPort(core.AFXDPPortConfig{ID: id, NIC: nic, Eng: s.eng})
	s.dp.AddPort(port)
	for q := 0; q < queues; q++ {
		s.pmd.AssignRxQueue(port, q)
	}
	p := &Port{sw: s, id: id, name: name, kind: "afxdp", nic: nic}
	nic.ConnectWire(func(pk *packet.Packet) {
		if p.onOutput != nil {
			p.onOutput(pk.Data)
		}
	})
	b.ports[name] = p
	return p, nil
}

// AddDPDKPort attaches a NIC via DPDK: the device is unbound from the
// kernel (netlink tooling on it stops working, as Table 1 documents).
func (b *Bridge) AddDPDKPort(name string, queues int) (*Port, error) {
	if queues <= 0 {
		queues = 1
	}
	s := b.sw
	id := s.nextPort
	s.nextPort++
	nic := nicsim.New(s.eng, nicsim.Config{Name: name, Ifindex: id, Queues: queues,
		Offloads: nicsim.Offloads{RxCsum: true, TxCsum: true, TSO: true, RSSHashDeliver: true}})
	// Register then immediately unbind, mirroring dpdk-devbind.
	if _, err := s.kernel.AddLink(name, "simnic", macFor(id), 1500); err != nil {
		return nil, fmt.Errorf("ovs: %w", err)
	}
	if _, err := s.kernel.BindDPDK(name); err != nil {
		return nil, fmt.Errorf("ovs: %w", err)
	}
	port := core.NewDPDKPort(id, nic)
	s.dp.AddPort(port)
	for q := 0; q < queues; q++ {
		s.pmd.AssignRxQueue(port, q)
	}
	p := &Port{sw: s, id: id, name: name, kind: "dpdk", nic: nic}
	nic.ConnectWire(func(pk *packet.Packet) {
		if p.onOutput != nil {
			p.onOutput(pk.Data)
		}
	})
	b.ports[name] = p
	return p, nil
}

// AddTapPort attaches a kernel tap device (VM via QEMU relay).
func (b *Bridge) AddTapPort(name string) (*Port, error) {
	s := b.sw
	id := s.nextPort
	s.nextPort++
	tap := vdev.NewTap(name)
	s.dp.AddPort(core.NewTapPort(id, tap))
	s.pmd.AssignRxQueue(s.dp.Port(id), 0)
	p := &Port{sw: s, id: id, name: name, kind: "tap", tap: tap}
	tap.ToKernel.SetWakeup(func() { p.drainTap() })
	tap.ToKernel.ArmWakeup()
	b.ports[name] = p
	return p, nil
}

func (p *Port) drainTap() {
	for _, pk := range p.tap.ToKernel.Pop(64) {
		if p.onOutput != nil {
			p.onOutput(pk.Data)
		}
	}
	p.tap.ToKernel.ArmWakeup()
}

// AddVhostUserPort attaches a vhostuser device (VM via shared-memory
// virtio rings).
func (b *Bridge) AddVhostUserPort(name string) (*Port, error) {
	s := b.sw
	id := s.nextPort
	s.nextPort++
	dev := vdev.NewVhostUser(name)
	s.dp.AddPort(core.NewVhostPort(id, dev))
	s.pmd.AssignRxQueue(s.dp.Port(id), 0)
	p := &Port{sw: s, id: id, name: name, kind: "vhostuser", vh: dev}
	dev.ToGuest.SetWakeup(func() { p.drainVhost() })
	dev.ToGuest.ArmWakeup()
	b.ports[name] = p
	return p, nil
}

func (p *Port) drainVhost() {
	for _, pk := range p.vh.ToGuest.Pop(64) {
		if p.onOutput != nil {
			p.onOutput(pk.Data)
		}
	}
	p.vh.ToGuest.ArmWakeup()
}

// Inject delivers a frame into the switch through this port, as if it
// arrived from the wire (AF_XDP/DPDK), the guest (tap/vhostuser), or the
// peer namespace (veth).
func (p *Port) Inject(frame []byte) {
	pk := packet.New(append([]byte(nil), frame...))
	switch p.kind {
	case "afxdp", "dpdk":
		p.nic.Receive(pk)
	case "tap":
		p.tap.FromKernel.Push(pk)
	case "vhostuser":
		p.vh.FromGuest.Push(pk)
	case "veth":
		p.veth.SendB(pk)
	}
}

// OnOutput registers the callback receiving frames the switch sends out
// this port.
func (p *Port) OnOutput(fn func(frame []byte)) { p.onOutput = fn }

// AddVethPort attaches the host end of a veth pair via AF_XDP generic
// mode (Figure 5 path A): Inject delivers frames from the container side,
// OnOutput sees frames the switch sends toward the container.
func (b *Bridge) AddVethPort(name string) (*Port, error) {
	s := b.sw
	id := s.nextPort
	s.nextPort++
	pair := vdev.NewVethPair(name)
	softirq := s.eng.NewCPU("softirq-" + name)
	s.dp.AddPort(core.NewVethPort(id, s.eng, pair, softirq))
	s.pmd.AssignRxQueue(s.dp.Port(id), 0)
	if _, err := s.kernel.AddLink(name, "veth", macFor(id), 1500); err != nil {
		return nil, fmt.Errorf("ovs: %w", err)
	}
	p := &Port{sw: s, id: id, name: name, kind: "veth", veth: pair}
	pair.AtoB.SetWakeup(func() { p.drainVeth() })
	pair.AtoB.ArmWakeup()
	b.ports[name] = p
	return p, nil
}

func (p *Port) drainVeth() {
	for _, pk := range p.veth.AtoB.Pop(64) {
		if p.onOutput != nil {
			p.onOutput(pk.Data)
		}
	}
	p.veth.AtoB.ArmWakeup()
}

// AddFlow parses an ovs-ofctl-style flow specification and installs it.
// See ParseFlow for the supported syntax.
func (b *Bridge) AddFlow(spec string) error {
	rule, err := ParseFlow(spec)
	if err != nil {
		return err
	}
	b.sw.pipeline.AddRule(rule)
	b.sw.dp.FlushFlows() // revalidate cached megaflows
	return nil
}

// MustAddFlow is AddFlow, panicking on parse errors (static flow tables).
func (b *Bridge) MustAddFlow(spec string) {
	if err := b.AddFlow(spec); err != nil {
		panic(err)
	}
}

// FlowRuleCount returns installed OpenFlow rules across all tables.
func (s *Switch) FlowRuleCount() int { return s.pipeline.RuleCount() }

// SetMeterPPS installs (or replaces) meter id as a packet-rate limiter, for
// use with the "meter:N" flow action — the rate-limiting stopgap Section 6
// describes while real QoS is reimplemented in userspace.
func (s *Switch) SetMeterPPS(id uint32, packetsPerSec, burst float64) {
	s.pipeline.SetMeter(id, &ofproto.TokenBucket{
		RatePerSec: packetsPerSec, Burst: burst, PerPacket: true})
}

// SetMeterBPS installs meter id as a bit-rate limiter.
func (s *Switch) SetMeterBPS(id uint32, bitsPerSec, burstBits float64) {
	s.pipeline.SetMeter(id, &ofproto.TokenBucket{
		RatePerSec: bitsPerSec, Burst: burstBits})
}

func macFor(id uint32) [6]byte {
	return [6]byte{0x02, 0x00, 0x5e, byte(id >> 16), byte(id >> 8), byte(id)}
}
