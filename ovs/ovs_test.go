package ovs

import (
	"testing"
	"time"

	"ovsxdp/internal/packet/hdr"
)

var (
	macA = hdr.MAC{0x02, 0, 0, 0, 0, 0x0a}
	macB = hdr.MAC{0x02, 0, 0, 0, 0, 0x0b}
)

func udpFrame(dport uint16) []byte {
	return hdr.NewBuilder().Eth(macA, macB).
		IPv4H(hdr.MakeIP4(10, 0, 0, 1), hdr.MakeIP4(10, 0, 0, 2), 64).
		UDPH(1234, dport).PayloadLen(18).PadTo(64).Build()
}

func TestSwitchForwardsBetweenAFXDPPorts(t *testing.T) {
	sw := New()
	br := sw.AddBridge("br0")
	p1, err := br.AddAFXDPPort("eth0", 1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := br.AddAFXDPPort("eth1", 1)
	if err != nil {
		t.Fatal(err)
	}
	br.MustAddFlow("in_port=" + p1.IDString() + ",actions=output:" + p2.IDString())

	var got [][]byte
	p2.OnOutput(func(frame []byte) { got = append(got, append([]byte(nil), frame...)) })

	for i := 0; i < 10; i++ {
		p1.Inject(udpFrame(uint16(1000 + i)))
	}
	sw.Run(5 * time.Millisecond)

	if len(got) != 10 {
		t.Fatalf("forwarded %d/10 frames", len(got))
	}
	st := sw.Stats()
	if st.Processed < 10 || st.Upcalls == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if sw.Now() != 5*time.Millisecond {
		t.Fatalf("clock = %v", sw.Now())
	}
	// CPU report has user (PMD) and softirq (XDP) time.
	rep := sw.CPUReport()
	if rep["user"] <= 0 || rep["softirq"] <= 0 {
		t.Fatalf("cpu report = %v", rep)
	}
}

func TestSwitchDropsUnmatchedTraffic(t *testing.T) {
	sw := New()
	br := sw.AddBridge("br0")
	p1, _ := br.AddAFXDPPort("eth0", 1)
	// No flows installed.
	p1.Inject(udpFrame(1))
	sw.Run(2 * time.Millisecond)
	if sw.Stats().Drops != 1 {
		t.Fatalf("drops = %d, want 1", sw.Stats().Drops)
	}
}

func TestSwitchVhostAndTapPorts(t *testing.T) {
	sw := New()
	br := sw.AddBridge("br0")
	vh, err := br.AddVhostUserPort("vhost0")
	if err != nil {
		t.Fatal(err)
	}
	tap, err := br.AddTapPort("tap0")
	if err != nil {
		t.Fatal(err)
	}
	br.MustAddFlow("in_port=" + vh.IDString() + ",actions=output:" + tap.IDString())
	br.MustAddFlow("in_port=" + tap.IDString() + ",actions=output:" + vh.IDString())

	gotTap, gotVh := 0, 0
	tap.OnOutput(func([]byte) { gotTap++ })
	vh.OnOutput(func([]byte) { gotVh++ })

	vh.Inject(udpFrame(1))
	tap.Inject(udpFrame(2))
	sw.Run(2 * time.Millisecond)
	if gotTap != 1 || gotVh != 1 {
		t.Fatalf("tap=%d vhost=%d", gotTap, gotVh)
	}
}

func TestSwitchConntrackPipeline(t *testing.T) {
	sw := New()
	br := sw.AddBridge("br0")
	p1, _ := br.AddAFXDPPort("eth0", 1)
	p2, _ := br.AddAFXDPPort("eth1", 1)
	br.MustAddFlow("table=0,in_port=" + p1.IDString() + ",ip,actions=ct(commit,zone=3,table=10)")
	br.MustAddFlow("table=10,priority=100,ct_state=+trk+est,actions=output:" + p2.IDString())
	br.MustAddFlow("table=10,priority=90,ct_state=+trk+new,actions=output:" + p2.IDString())

	got := 0
	p2.OnOutput(func([]byte) { got++ })
	tcp := hdr.NewBuilder().Eth(macA, macB).
		IPv4H(hdr.MakeIP4(10, 0, 0, 1), hdr.MakeIP4(10, 0, 0, 2), 64).
		TCPH(1000, 80, 1, 0, hdr.TCPSyn).PadTo(64).Build()
	p1.Inject(tcp)
	sw.Run(2 * time.Millisecond)
	if got != 1 {
		t.Fatalf("ct pipeline forwarded %d", got)
	}
	if sw.Stats().Recirculations != 1 {
		t.Fatalf("recirculations = %d", sw.Stats().Recirculations)
	}
}

func TestSwitchEMCAblationOption(t *testing.T) {
	run := func(opts ...Option) Stats {
		sw := New(opts...)
		br := sw.AddBridge("br0")
		p1, _ := br.AddAFXDPPort("eth0", 1)
		p2, _ := br.AddAFXDPPort("eth1", 1)
		br.MustAddFlow("in_port=" + p1.IDString() + ",actions=output:" + p2.IDString())
		p2.OnOutput(func([]byte) {})
		for i := 0; i < 20; i++ {
			p1.Inject(udpFrame(7))
		}
		sw.Run(3 * time.Millisecond)
		return sw.Stats()
	}
	with := run()
	without := run(WithoutEMC())
	if with.EMCHits == 0 {
		t.Fatal("EMC must hit by default")
	}
	if without.EMCHits != 0 {
		t.Fatal("WithoutEMC must disable the cache")
	}
	if without.MegaflowHits == 0 {
		t.Fatal("megaflow classifier must carry the load without the EMC")
	}
}

func TestSwitchDPDKPortWorksButUnbindsKernel(t *testing.T) {
	sw := New()
	br := sw.AddBridge("br0")
	p1, err := br.AddDPDKPort("dpdk0", 1)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := br.AddDPDKPort("dpdk1", 1)
	br.MustAddFlow("in_port=" + p1.IDString() + ",actions=output:" + p2.IDString())
	got := 0
	p2.OnOutput(func([]byte) { got++ })
	p1.Inject(udpFrame(1))
	sw.Run(2 * time.Millisecond)
	if got != 1 {
		t.Fatal("dpdk forwarding failed")
	}
	// The kernel lost sight of the device (Table 1).
	if _, err := sw.kernel.LinkByName("dpdk0"); err == nil {
		t.Fatal("DPDK-bound device must vanish from the kernel tables")
	}
	// AF_XDP devices stay visible.
	br.AddAFXDPPort("eth9", 1)
	if _, err := sw.kernel.LinkByName("eth9"); err != nil {
		t.Fatal("AF_XDP device must stay in the kernel tables")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() (Stats, time.Duration) {
		sw := New(WithSeed(42))
		br := sw.AddBridge("br0")
		p1, _ := br.AddAFXDPPort("eth0", 1)
		p2, _ := br.AddAFXDPPort("eth1", 1)
		br.MustAddFlow("in_port=" + p1.IDString() + ",actions=output:" + p2.IDString())
		p2.OnOutput(func([]byte) {})
		for i := 0; i < 50; i++ {
			p1.Inject(udpFrame(uint16(i)))
		}
		sw.Run(3 * time.Millisecond)
		return sw.Stats(), sw.Now()
	}
	s1, t1 := run()
	s2, t2 := run()
	if s1 != s2 || t1 != t2 {
		t.Fatalf("runs diverged: %+v vs %+v", s1, s2)
	}
}

func TestSwitchVethPort(t *testing.T) {
	sw := New()
	br := sw.AddBridge("br0")
	v1, err := br.AddVethPort("veth-c1")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := br.AddVethPort("veth-c2")
	if err != nil {
		t.Fatal(err)
	}
	br.MustAddFlow("in_port=" + v1.IDString() + ",actions=output:" + v2.IDString())
	got := 0
	v2.OnOutput(func([]byte) { got++ })
	for i := 0; i < 5; i++ {
		v1.Inject(udpFrame(uint16(i)))
	}
	sw.Run(2 * time.Millisecond)
	if got != 5 {
		t.Fatalf("veth forwarding: %d/5", got)
	}
	// veth devices remain kernel-visible (AF_XDP generic mode).
	if _, err := sw.kernel.LinkByName("veth-c1"); err != nil {
		t.Fatal("veth must stay in the kernel tables")
	}
}

func TestSwitchMeterAPI(t *testing.T) {
	sw := New()
	sw.SetMeterPPS(1, 1000, 3)
	br := sw.AddBridge("br0")
	p1, _ := br.AddAFXDPPort("eth0", 1)
	p2, _ := br.AddAFXDPPort("eth1", 1)
	br.MustAddFlow("in_port=" + p1.IDString() + ",actions=meter:1,output:" + p2.IDString())
	got := 0
	p2.OnOutput(func([]byte) { got++ })
	for i := 0; i < 50; i++ {
		p1.Inject(udpFrame(uint16(i)))
	}
	sw.Run(2 * time.Millisecond)
	if got < 2 || got > 6 {
		t.Fatalf("meter passed %d packets, want ~3 (burst)", got)
	}
}
