module ovsxdp

go 1.22
