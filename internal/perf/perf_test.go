package perf

import (
	"strings"
	"testing"

	"ovsxdp/internal/sim"
)

func TestStageAndResultNames(t *testing.T) {
	want := map[Stage]string{
		StageRx: "rx", StageEMC: "emc", StageDpcls: "dpcls",
		StageUpcall: "upcall", StageActions: "actions", StageIdle: "idle",
	}
	for st, name := range want {
		if st.String() != name {
			t.Fatalf("Stage(%d) = %q, want %q", st, st.String(), name)
		}
	}
	if ResultEMC.String() != "emc" || ResultMegaflow.String() != "megaflow" ||
		ResultUpcall.String() != "upcall" || ResultNone.String() != "-" {
		t.Fatal("Result names wrong")
	}
}

func TestCycleAccounting(t *testing.T) {
	s := NewStats()
	s.Add(StageRx, 100)
	s.Add(StageEMC, 50)
	s.Add(StageActions, 30)
	s.Add(StageIdle, 1000)
	if s.BusyCycles() != 180 {
		t.Fatalf("busy = %d, want 180 (idle excluded)", s.BusyCycles())
	}
	if s.TotalCycles() != 1180 {
		t.Fatalf("total = %d, want 1180", s.TotalCycles())
	}
	s.Packets = 10
	if got := s.CyclesPerPacket(StageRx); got != 10 {
		t.Fatalf("rx/pkt = %v, want 10", got)
	}
	if (&Stats{}).CyclesPerPacket(StageRx) != 0 {
		t.Fatal("zero packets must not divide by zero")
	}
}

func TestBatchHistogram(t *testing.T) {
	s := NewStats()
	s.AddBatch(2)
	s.AddBatch(4)
	if m := s.BatchMean(); m != 3 {
		t.Fatalf("batch mean = %v, want 3", m)
	}
}

func TestUpcallHistogram(t *testing.T) {
	s := NewStats()
	for i := 1; i <= 100; i++ {
		s.AddUpcall(sim.Time(i) * sim.Microsecond)
	}
	if s.Upcalls != 100 || s.UpcallCount() != 100 {
		t.Fatalf("upcalls = %d/%d, want 100", s.Upcalls, s.UpcallCount())
	}
	sum := s.UpcallLatency()
	if sum.P50 <= 0 || sum.P99 < sum.P50 {
		t.Fatalf("latency summary %+v not ordered", sum)
	}
}

func TestTracerRingEvictsOldest(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.Add(TraceRecord{InPort: uint32(i)})
	}
	if tr.Seen() != 5 {
		t.Fatalf("seen = %d, want 5", tr.Seen())
	}
	recs := tr.Records()
	if len(recs) != 3 {
		t.Fatalf("retained %d, want 3", len(recs))
	}
	for i, r := range recs {
		if want := uint64(i + 2); r.Seq != want || r.InPort != uint32(want) {
			t.Fatalf("record %d = seq %d in %d, want oldest-first starting at 2", i, r.Seq, r.InPort)
		}
	}
}

func TestEnableTraceToggle(t *testing.T) {
	s := NewStats()
	if s.Tracer() != nil || s.Trace() != nil {
		t.Fatal("tracing must be off by default")
	}
	s.EnableTrace(4)
	if s.Tracer() == nil {
		t.Fatal("tracer not armed")
	}
	s.Tracer().Add(TraceRecord{InPort: 1})
	if len(s.Trace()) != 1 {
		t.Fatal("trace record lost")
	}
	s.EnableTrace(0)
	if s.Tracer() != nil {
		t.Fatal("EnableTrace(0) must disable")
	}
}

func TestFormatTrace(t *testing.T) {
	s := NewStats()
	s.EnableTrace(2)
	s.Tracer().Add(TraceRecord{InPort: 1, OutPort: 2, Result: ResultEMC,
		Start: 0, End: 700})
	out := FormatTrace([]ThreadStats{{Name: "pmd0", Stats: s}})
	for _, want := range []string{"pmd0: 1 traced", "in:1", "out:2", "via:emc"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q:\n%s", want, out)
		}
	}
	off := NewStats()
	if FormatTrace([]ThreadStats{{Name: "x", Stats: off}}) != "tracing not enabled\n" {
		t.Fatal("tracing-off sentinel wrong")
	}
}
