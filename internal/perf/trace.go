package perf

import (
	"fmt"
	"strings"

	"ovsxdp/internal/sim"
)

// Result is the caching layer that resolved a traced packet, the levels of
// the paper's Figure 9 cost analysis.
type Result int

// Resolution levels.
const (
	ResultNone Result = iota // not resolved (still in flight / dropped early)
	ResultOffload
	ResultEMC
	ResultSMC
	ResultMegaflow
	ResultUpcall
	ResultDrop
)

// String names the level.
func (r Result) String() string {
	switch r {
	case ResultOffload:
		return "offload"
	case ResultEMC:
		return "emc"
	case ResultSMC:
		return "smc"
	case ResultMegaflow:
		return "megaflow"
	case ResultUpcall:
		return "upcall"
	case ResultDrop:
		return "drop"
	default:
		return "-"
	}
}

// TraceRecord is one packet lifecycle through the fast path, in virtual
// time: where it entered, which caching level resolved it, where it left,
// and the busy span its processing occupied on the thread's CPU.
type TraceRecord struct {
	// Seq is the global arrival order on this thread (monotonic).
	Seq uint64
	// InPort / OutPort are datapath port numbers; OutPort 0 means the
	// packet was not output (dropped or consumed).
	InPort  uint32
	OutPort uint32
	// Result is the first caching level that resolved the packet.
	Result Result
	// Recircs counts recirculations (conntrack, tunnel pop).
	Recircs int
	// Start / End bracket the processing span in virtual time.
	Start, End sim.Time
}

// Tracer is a fixed-size ring of the most recent packet lifecycles.
type Tracer struct {
	buf  []TraceRecord
	seen uint64
}

// NewTracer returns a tracer keeping the last n records (n >= 1).
func NewTracer(n int) *Tracer {
	if n < 1 {
		n = 1
	}
	return &Tracer{buf: make([]TraceRecord, 0, n)}
}

// Add appends one lifecycle, evicting the oldest when full, and stamps the
// record's sequence number.
func (t *Tracer) Add(r TraceRecord) {
	r.Seq = t.seen
	t.seen++
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, r)
		return
	}
	copy(t.buf, t.buf[1:])
	t.buf[len(t.buf)-1] = r
}

// Seen returns how many lifecycles were ever recorded.
func (t *Tracer) Seen() uint64 { return t.seen }

// Records returns the retained lifecycles, oldest first.
func (t *Tracer) Records() []TraceRecord {
	out := make([]TraceRecord, len(t.buf))
	copy(out, t.buf)
	return out
}

// FormatTrace renders the `pmd-perf-trace` listing: per thread, one line
// per retained packet lifecycle.
func FormatTrace(threads []ThreadStats) string {
	var b strings.Builder
	for _, t := range threads {
		recs := t.Trace()
		if t.Tracer() == nil {
			continue
		}
		fmt.Fprintf(&b, "%s: %d traced (showing last %d)\n",
			t.Name, t.Tracer().Seen(), len(recs))
		for _, r := range recs {
			fmt.Fprintf(&b, "  #%-4d in:%-3d out:%-3d via:%-8s recirc:%d  %s -> %s (%.2fus)\n",
				r.Seq, r.InPort, r.OutPort, r.Result, r.Recircs,
				r.Start, r.End, (r.End - r.Start).Micros())
		}
	}
	if b.Len() == 0 {
		return "tracing not enabled\n"
	}
	return b.String()
}
