// Package perf is the per-PMD performance-counter and tracing layer, the
// analog of OVS's lib/dpif-netdev-perf (surfaced by `ovs-appctl
// dpif-netdev/pmd-perf-show`). Each packet-processing thread — a userspace
// PMD or a kernel/eBPF softirq context — owns one Stats block that buckets
// the virtual cycles it charges by datapath stage (rx, EMC lookup, dpcls
// lookup, upcall, actions/tx, idle spin), tallies cache hit levels, and
// keeps packets-per-batch and upcall-latency histograms.
//
// Everything here is pure accounting: recording copies the cost a caller
// has already charged to its sim.CPU, so enabling the counters (they are
// always on) or the optional packet-lifecycle trace never perturbs virtual
// time, and measured experiment outputs stay byte-identical.
package perf

import (
	"fmt"

	"ovsxdp/internal/sim"
)

// Stage is one bucket of datapath fast-path work. The buckets mirror the
// dpif-netdev-perf counters: rx covers device receive plus metadata and
// flow-key extraction (miniflow_extract); EMC and Dpcls are the two caching
// layers; Upcall is the slow-path translation of a miss; Actions covers
// action execution and transmit; Idle is the busy-poll spin on empty
// iterations (PMD_CYCLES_ITER_IDLE).
type Stage int

// Datapath stages.
const (
	StageRx Stage = iota
	// StageOffload is the hardware-offload short-circuit: packets the NIC
	// forwarded from its flow table, charged only the near-zero host-side
	// bookkeeping. Zero unless hw-offload is enabled.
	StageOffload
	StageEMC
	StageSMC
	StageDpcls
	StageUpcall
	StageActions
	StageIdle
	NumStages
)

// String names the stage as printed by pmd-perf-show.
func (s Stage) String() string {
	switch s {
	case StageRx:
		return "rx"
	case StageOffload:
		return "offload"
	case StageEMC:
		return "emc"
	case StageSMC:
		return "smc"
	case StageDpcls:
		return "dpcls"
	case StageUpcall:
		return "upcall"
	case StageActions:
		return "actions"
	case StageIdle:
		return "idle"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// Stats is one thread's performance-counter block. Cycle counters are
// virtual time (sim.Time) charged by the thread, bucketed by stage; the
// hit counters split packets by the caching layer that resolved them,
// exactly the EMC-hit / megaflow-hit / miss triple of Figure 9's analysis.
type Stats struct {
	// Cycles accumulates charged virtual time per stage.
	Cycles [NumStages]sim.Time

	// Iterations counts poll-loop passes (PMD) or NAPI batches (kernel).
	Iterations uint64
	// Packets counts packets processed.
	Packets uint64
	// EMCHits / SMCHits / MegaflowHits / Upcalls split Packets by
	// resolution level. SMCHits stays zero unless the signature match
	// cache is enabled.
	EMCHits      uint64
	SMCHits      uint64
	MegaflowHits uint64
	Upcalls      uint64
	// OffloadHits counts packets the NIC forwarded from its hardware flow
	// table — resolved above every software cache. Zero unless hw-offload
	// is enabled.
	OffloadHits uint64

	// UpcallQueueDrops counts packets this thread dropped because its
	// bounded upcall queue was full (the netdev analog of the kernel's
	// ENOBUFS on the netlink socket); UpcallQueuePeak is the deepest the
	// queue got. Both stay zero when the queue is unbounded (legacy
	// inline upcalls).
	UpcallQueueDrops uint64
	UpcallQueuePeak  uint64

	// TxContended counts packets this thread transmitted over a shared
	// tx queue (XPS: more PMD threads than the egress port has txqs);
	// TxLockCycles is the virtual time the shared-txq lock cost — per
	// packet under the mutex option, per flush under the default batched
	// spinlock. Both stay zero while every thread owns its tx queues.
	TxContended  uint64
	TxLockCycles sim.Time

	// CtEvictions counts connections this thread's conntrack commits
	// displaced under pressure (early-dropped embryonic or LRU-evicted);
	// stays zero until a zone limit ladder engages.
	CtEvictions uint64

	batch  *sim.Histogram // packets per non-empty rx batch
	upcall *sim.Histogram // upcall handling latency (virtual ns)
	tracer *Tracer        // optional packet-lifecycle ring
}

// NewStats returns an empty counter block (tracing disabled).
func NewStats() *Stats {
	return &Stats{batch: sim.NewHistogram(), upcall: sim.NewHistogram()}
}

// Add charges d virtual cycles to a stage. Callers invoke it alongside the
// sim.CPU charge the cost belongs to; Add itself never touches the clock.
func (s *Stats) Add(st Stage, d sim.Time) { s.Cycles[st] += d }

// AddIteration counts one poll-loop pass.
func (s *Stats) AddIteration() { s.Iterations++ }

// AddBatch records one non-empty receive batch of n packets in the batch
// histogram. Packets itself is counted where packets are processed, so
// injected (Execute) packets are counted even though they skip the rx path.
func (s *Stats) AddBatch(n int) {
	s.batch.Record(float64(n))
}

// AddUpcall counts one slow-path miss and its handling latency.
func (s *Stats) AddUpcall(lat sim.Time) {
	s.Upcalls++
	s.upcall.RecordTime(lat)
}

// BatchMean returns the mean packets per non-empty batch.
func (s *Stats) BatchMean() float64 { return s.batch.Mean() }

// UpcallLatency summarizes upcall handling latency (P50/P90/P99).
func (s *Stats) UpcallLatency() sim.Summary { return s.upcall.Summarize() }

// UpcallCount returns the number of latency samples recorded.
func (s *Stats) UpcallCount() int { return s.upcall.Count() }

// BusyCycles sums every stage except the idle spin.
func (s *Stats) BusyCycles() sim.Time {
	var t sim.Time
	for st := StageRx; st < StageIdle; st++ {
		t += s.Cycles[st]
	}
	return t
}

// TotalCycles sums every stage including idle.
func (s *Stats) TotalCycles() sim.Time { return s.BusyCycles() + s.Cycles[StageIdle] }

// CyclesPerPacket returns a stage's cost amortized over processed packets.
func (s *Stats) CyclesPerPacket(st Stage) float64 {
	if s.Packets == 0 {
		return 0
	}
	return float64(s.Cycles[st]) / float64(s.Packets)
}

// EnableTrace arms packet-lifecycle tracing with a ring of n records;
// n <= 0 disables it.
func (s *Stats) EnableTrace(n int) {
	if n <= 0 {
		s.tracer = nil
		return
	}
	s.tracer = NewTracer(n)
}

// Tracer returns the trace ring, or nil when tracing is off.
func (s *Stats) Tracer() *Tracer { return s.tracer }

// Trace returns the captured lifecycles, oldest first (nil when off).
func (s *Stats) Trace() []TraceRecord {
	if s.tracer == nil {
		return nil
	}
	return s.tracer.Records()
}

// ThreadStats names one thread's counter block for reporting: the dpif
// providers return one per PMD (netdev) or one for the softirq context
// (netlink/ebpf).
type ThreadStats struct {
	Name string
	*Stats
}
