// Package afxdp implements the AF_XDP data structures of Section 3: umem
// buffer regions, the four single-producer/single-consumer descriptor rings
// (fill, completion, rx, tx), XSK sockets, and the umempool buffer manager
// whose locking strategy optimizations O2 and O3 are about.
//
// The structures are real — descriptors circulate through actual ring
// buffers, packet bytes live in actual umem chunks — while the *costs* of
// operating them (syscalls, driver work) are charged by the layers above
// from the cost model. Packet loss emerges naturally: when the fill ring is
// empty or the rx ring is full, the driver has nowhere to put a packet and
// drops it, which is exactly the lossless-rate cliff the paper's Figure 9
// binary-searches for.
package afxdp

import "fmt"

// DefaultRingSize matches XSK_RING_{PROD,CONS}__DEFAULT_NUM_DESCS.
const DefaultRingSize = 2048

// Desc is one ring descriptor: a umem address and frame length.
type Desc struct {
	Addr uint64
	Len  uint32
}

// Ring is a bounded single-producer single-consumer descriptor ring. Size
// must be a power of two.
type Ring struct {
	desc []Desc
	mask uint64
	prod uint64
	cons uint64
}

// NewRing builds a ring with the given size (rounded up to a power of two).
func NewRing(size int) *Ring {
	n := 1
	for n < size {
		n <<= 1
	}
	return &Ring{desc: make([]Desc, n), mask: uint64(n - 1)}
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.desc) }

// Len returns the number of descriptors currently queued.
func (r *Ring) Len() int { return int(r.prod - r.cons) }

// Free returns the remaining capacity.
func (r *Ring) Free() int { return r.Cap() - r.Len() }

// Push enqueues one descriptor; it reports false when the ring is full.
func (r *Ring) Push(d Desc) bool {
	if r.Len() == r.Cap() {
		return false
	}
	r.desc[r.prod&r.mask] = d
	r.prod++
	return true
}

// Pop dequeues one descriptor; ok is false when the ring is empty.
func (r *Ring) Pop() (Desc, bool) {
	if r.Len() == 0 {
		return Desc{}, false
	}
	d := r.desc[r.cons&r.mask]
	r.cons++
	return d, true
}

// PopBatch dequeues up to n descriptors into out and returns the count.
func (r *Ring) PopBatch(out []Desc, n int) int {
	if n > len(out) {
		n = len(out)
	}
	got := 0
	for got < n {
		d, ok := r.Pop()
		if !ok {
			break
		}
		out[got] = d
		got++
	}
	return got
}

// String summarizes ring occupancy.
func (r *Ring) String() string {
	return fmt.Sprintf("ring{%d/%d}", r.Len(), r.Cap())
}
