package afxdp

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRingPushPop(t *testing.T) {
	r := NewRing(4)
	if r.Cap() != 4 || r.Len() != 0 || r.Free() != 4 {
		t.Fatalf("fresh ring: %s", r)
	}
	for i := 0; i < 4; i++ {
		if !r.Push(Desc{Addr: uint64(i)}) {
			t.Fatalf("push %d failed", i)
		}
	}
	if r.Push(Desc{}) {
		t.Fatal("full ring must reject push")
	}
	for i := 0; i < 4; i++ {
		d, ok := r.Pop()
		if !ok || d.Addr != uint64(i) {
			t.Fatalf("pop %d = %+v, %v", i, d, ok)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("empty ring must reject pop")
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	for cycle := 0; cycle < 10; cycle++ {
		for i := 0; i < 3; i++ {
			if !r.Push(Desc{Addr: uint64(cycle*10 + i)}) {
				t.Fatal("push failed during wraparound")
			}
		}
		for i := 0; i < 3; i++ {
			d, ok := r.Pop()
			if !ok || d.Addr != uint64(cycle*10+i) {
				t.Fatalf("wraparound FIFO violated: %+v", d)
			}
		}
	}
}

func TestRingSizeRounding(t *testing.T) {
	if NewRing(5).Cap() != 8 {
		t.Fatal("size must round up to a power of two")
	}
}

func TestRingPopBatch(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 5; i++ {
		r.Push(Desc{Addr: uint64(i)})
	}
	out := make([]Desc, 8)
	if n := r.PopBatch(out, 3); n != 3 {
		t.Fatalf("batch = %d, want 3", n)
	}
	if n := r.PopBatch(out, 8); n != 2 {
		t.Fatalf("drain = %d, want 2", n)
	}
}

func TestRingFIFOProperty(t *testing.T) {
	f := func(vals []uint64) bool {
		r := NewRing(DefaultRingSize)
		if len(vals) > r.Cap() {
			vals = vals[:r.Cap()]
		}
		for _, v := range vals {
			r.Push(Desc{Addr: v})
		}
		for _, v := range vals {
			d, ok := r.Pop()
			if !ok || d.Addr != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUmemBuffer(t *testing.T) {
	u := NewUmem(4, 256)
	b := u.Buffer(u.ChunkAddr(2), 16)
	b[0] = 0xaa
	if u.Buffer(u.ChunkAddr(2), 1)[0] != 0xaa {
		t.Fatal("buffer must alias the umem area")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range access must panic")
		}
	}()
	u.Buffer(u.ChunkAddr(3), 512)
}

// Regression: Buffer only checked the area end, so an access longer than
// the chunk silently returned bytes of the *next* chunk (cross-chunk
// packet corruption). It must panic instead.
func TestUmemBufferCrossChunkPanics(t *testing.T) {
	u := NewUmem(4, 256)
	// Mark the start of chunk 2; a buggy Buffer would expose it through a
	// long access rooted in chunk 1.
	u.Buffer(u.ChunkAddr(2), 1)[0] = 0x5a
	defer func() {
		if recover() == nil {
			t.Fatal("access crossing a chunk boundary must panic")
		}
	}()
	u.Buffer(u.ChunkAddr(1), 257)
}

func TestUmemBufferCrossChunkOffsetPanics(t *testing.T) {
	u := NewUmem(4, 256)
	defer func() {
		if recover() == nil {
			t.Fatal("offset access running past the chunk end must panic")
		}
	}()
	// Within the area, within one chunk length, but crossing into chunk 1.
	u.Buffer(u.ChunkAddr(0)+200, 100)
}

func TestUmemBufferWholeChunkAllowed(t *testing.T) {
	u := NewUmem(4, 256)
	if got := len(u.Buffer(u.ChunkAddr(1), 256)); got != 256 {
		t.Fatalf("whole-chunk access returned %d bytes", got)
	}
}

func TestUmemBufferNegativeLengthPanics(t *testing.T) {
	u := NewUmem(4, 256)
	defer func() {
		if recover() == nil {
			t.Fatal("negative length must panic, not alias earlier memory")
		}
	}()
	u.Buffer(u.ChunkAddr(1), -1)
}

func TestPoolAllocRelease(t *testing.T) {
	u := NewUmem(8, 128)
	p := NewPool(u, LockSpin)
	if p.Free() != 8 {
		t.Fatalf("free = %d", p.Free())
	}
	seen := map[uint64]bool{}
	for i := 0; i < 8; i++ {
		a, ok := p.Alloc()
		if !ok {
			t.Fatal("alloc failed with free chunks")
		}
		if seen[a] {
			t.Fatal("double allocation of a chunk")
		}
		seen[a] = true
	}
	if _, ok := p.Alloc(); ok {
		t.Fatal("exhausted pool must fail")
	}
	for a := range seen {
		p.Release(a)
	}
	if p.Free() != 8 {
		t.Fatal("release must return chunks")
	}
}

func TestPoolLockAccounting(t *testing.T) {
	u := NewUmem(64, 128)

	perPkt := NewPool(u, LockSpin)
	out := make([]uint64, 32)
	perPkt.AllocBatch(out, 32)
	if perPkt.LockAcquisitions != 32 {
		t.Fatalf("per-packet locking: %d acquisitions, want 32", perPkt.LockAcquisitions)
	}

	batched := NewPool(NewUmem(64, 128), LockSpinBatched)
	batched.AllocBatch(out, 32)
	if batched.LockAcquisitions != 1 {
		t.Fatalf("batched locking: %d acquisitions, want 1", batched.LockAcquisitions)
	}
	batched.ReleaseBatch(out[:32])
	if batched.LockAcquisitions != 2 {
		t.Fatalf("batched release: %d acquisitions, want 2", batched.LockAcquisitions)
	}
}

func TestXSKReceivePath(t *testing.T) {
	u := NewUmem(16, 256)
	p := NewPool(u, LockSpinBatched)
	x := NewXSK(1, 0, u)
	x.RefillFill(p, 8)
	if u.Fill.Len() != 8 {
		t.Fatalf("fill ring = %d", u.Fill.Len())
	}

	frame := bytes.Repeat([]byte{0x5a}, 64)
	if !x.KernelDeliver(frame) {
		t.Fatal("deliver failed with fill buffers available")
	}
	out := make([]Desc, 4)
	n := x.UserReceive(out, 4)
	if n != 1 {
		t.Fatalf("received %d", n)
	}
	got := u.Buffer(out[0].Addr, int(out[0].Len))
	if !bytes.Equal(got, frame) {
		t.Fatal("frame bytes corrupted through umem")
	}
	if x.RxDelivered != 1 {
		t.Fatalf("stats: %d delivered", x.RxDelivered)
	}
}

func TestXSKDropWhenFillEmpty(t *testing.T) {
	u := NewUmem(16, 256)
	x := NewXSK(1, 0, u)
	// No refill: fill ring empty.
	if x.KernelDeliver(make([]byte, 64)) {
		t.Fatal("deliver must fail with empty fill ring")
	}
	if x.RxDropFill != 1 {
		t.Fatalf("drop not counted: %+v", x)
	}
}

func TestXSKDropWhenRxFull(t *testing.T) {
	u := NewUmem(DefaultRingSize*2+64, 64)
	p := NewPool(u, LockSpinBatched)
	x := NewXSK(1, 0, u)
	// Keep the fill ring topped up and never consume rx.
	frame := make([]byte, 60)
	delivered := 0
	for i := 0; i < DefaultRingSize+10; i++ {
		x.RefillFill(p, 4)
		if x.KernelDeliver(frame) {
			delivered++
		}
	}
	if delivered != DefaultRingSize {
		t.Fatalf("delivered %d, want %d (rx ring bound)", delivered, DefaultRingSize)
	}
	if x.RxDropRing == 0 {
		t.Fatal("rx-full drops must be counted")
	}
}

func TestXSKTransmitPath(t *testing.T) {
	u := NewUmem(16, 256)
	p := NewPool(u, LockSpinBatched)
	x := NewXSK(1, 0, u)

	addr, _ := p.Alloc()
	copy(u.Buffer(addr, 4), []byte{1, 2, 3, 4})
	if !x.UserTransmit(Desc{Addr: addr, Len: 4}) {
		t.Fatal("transmit enqueue failed")
	}

	// NeedWakeup: no drain before the kick.
	var sent [][]byte
	emit := func(f []byte) { sent = append(sent, append([]byte(nil), f...)) }
	if n := x.KernelDrainTx(8, emit); n != 0 {
		t.Fatalf("drained %d before kick", n)
	}
	if !x.Kick() {
		t.Fatal("kick must be needed")
	}
	if n := x.KernelDrainTx(8, emit); n != 1 {
		t.Fatalf("drained %d after kick", n)
	}
	if len(sent) != 1 || !bytes.Equal(sent[0], []byte{1, 2, 3, 4}) {
		t.Fatalf("emitted %v", sent)
	}

	// Completion ring now holds the buffer; reclaim it.
	free := p.Free()
	if got := x.ReclaimCompletions(p, 8); got != 1 {
		t.Fatalf("reclaimed %d", got)
	}
	if p.Free() != free+1 {
		t.Fatal("completion reclaim must return the chunk")
	}
}

func TestXSKNoWakeupMode(t *testing.T) {
	u := NewUmem(16, 256)
	p := NewPool(u, LockSpinBatched)
	x := NewXSK(1, 0, u)
	x.NeedWakeup = false
	addr, _ := p.Alloc()
	x.UserTransmit(Desc{Addr: addr, Len: 8})
	if x.Kick() {
		t.Fatal("kick must be unnecessary in no-wakeup mode")
	}
	if n := x.KernelDrainTx(8, func([]byte) {}); n != 1 {
		t.Fatalf("no-wakeup drain = %d", n)
	}
}

func TestXSKRefillBoundedByFillRing(t *testing.T) {
	u := NewUmem(DefaultRingSize*4, 64)
	p := NewPool(u, LockSpinBatched)
	x := NewXSK(1, 0, u)
	n := x.RefillFill(p, DefaultRingSize*2)
	if n != DefaultRingSize {
		t.Fatalf("refill = %d, want fill-ring capacity %d", n, DefaultRingSize)
	}
}

func TestRoundTripForwarding(t *testing.T) {
	// Simulate the forwarding loop: receive, process, transmit the same
	// buffer, reclaim, refill — chunk count must stay conserved.
	u := NewUmem(64, 256)
	p := NewPool(u, LockSpinBatched)
	x := NewXSK(1, 0, u)
	x.RefillFill(p, 32)

	total := func() int { return p.Free() + u.Fill.Len() + x.Rx.Len() + x.Tx.Len() + u.Completion.Len() }
	start := total()

	frame := make([]byte, 60)
	for round := 0; round < 100; round++ {
		if !x.KernelDeliver(frame) {
			t.Fatalf("round %d: deliver failed", round)
		}
		out := make([]Desc, 1)
		if x.UserReceive(out, 1) != 1 {
			t.Fatalf("round %d: receive failed", round)
		}
		if !x.UserTransmit(out[0]) {
			t.Fatalf("round %d: transmit failed", round)
		}
		x.Kick()
		x.KernelDrainTx(1, func([]byte) {})
		x.ReclaimCompletions(p, 4)
		x.RefillFill(p, 1)
		if got := total(); got != start {
			t.Fatalf("round %d: chunk leak: %d != %d", round, got, start)
		}
	}
	if x.TxCompleted != 100 || x.RxDelivered != 100 {
		t.Fatalf("stats: rx=%d tx=%d", x.RxDelivered, x.TxCompleted)
	}
}
