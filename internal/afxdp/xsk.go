package afxdp

// XSK is an AF_XDP socket: the user/kernel interface of Figure 4. Each XSK
// binds to one (device, queue) pair and owns an rx and a tx descriptor
// ring; packet memory comes from the shared Umem.
type XSK struct {
	// ID is the value stored in the xskmap that routes XDP redirects
	// here.
	ID uint32
	// Queue is the NIC receive queue this socket is bound to.
	Queue int

	Umem *Umem
	Rx   *Ring
	Tx   *Ring

	// NeedWakeup models the XDP_USE_NEED_WAKEUP optimization: when set,
	// the kernel only drains the tx ring after a sendto() kick; when
	// clear the driver polls it. OVS uses the kick model, which is one
	// of the two overheads Section 5.5 measures.
	NeedWakeup bool
	kicked     bool

	// Stall, when set and returning true, freezes the ring pair: the
	// kernel neither delivers to rx nor drains tx — the fault-injection
	// hook for an XSK ring stall (e.g. a wedged driver queue). Tx drains
	// are retried with backoff by the port, so a transient stall recovers.
	Stall func() bool

	// addrScratch is reused by ReclaimCompletions and RefillFill so the
	// per-batch address staging allocates nothing in steady state.
	addrScratch []uint64

	// Stats.
	RxDelivered uint64 // packets the kernel delivered to the rx ring
	RxDropFill  uint64 // drops: fill ring empty
	RxDropRing  uint64 // drops: rx ring full
	RxDropStall uint64 // drops: injected ring stall
	TxSubmitted uint64 // descriptors userspace queued
	TxCompleted uint64 // descriptors the kernel transmitted
	Kicks       uint64 // tx wakeup syscalls issued
}

// Stalled reports whether an injected ring stall is active right now.
func (x *XSK) Stalled() bool { return x.Stall != nil && x.Stall() }

// NewXSK builds a socket bound to queue, sharing umem.
func NewXSK(id uint32, queue int, umem *Umem) *XSK {
	return &XSK{
		ID:         id,
		Queue:      queue,
		Umem:       umem,
		Rx:         NewRing(DefaultRingSize),
		Tx:         NewRing(DefaultRingSize),
		NeedWakeup: true,
	}
}

// KernelDeliver is the kernel-side receive path (Figure 4 paths 2-4): pop a
// buffer from the fill ring, copy the frame into it, push an rx descriptor.
// It reports whether the packet was delivered; a false return is a drop,
// with the reason counted.
func (x *XSK) KernelDeliver(frame []byte) bool {
	if x.Stalled() {
		x.RxDropStall++
		return false
	}
	if x.Rx.Free() == 0 {
		x.RxDropRing++
		return false
	}
	d, ok := x.Umem.Fill.Pop()
	if !ok {
		x.RxDropFill++
		return false
	}
	n := len(frame)
	if n > x.Umem.ChunkSize() {
		n = x.Umem.ChunkSize()
	}
	copy(x.Umem.Buffer(d.Addr, n), frame[:n])
	x.Rx.Push(Desc{Addr: d.Addr, Len: uint32(n)})
	x.RxDelivered++
	return true
}

// UserReceive is the userspace receive path (Figure 4 paths 5-6): pop up to
// n rx descriptors. The caller owns the returned buffers until it returns
// them to the pool (for rx refill) or requeues them for tx.
func (x *XSK) UserReceive(out []Desc, n int) int {
	return x.Rx.PopBatch(out, n)
}

// UserTransmit queues one tx descriptor; it reports false when the tx ring
// is full (backpressure).
func (x *XSK) UserTransmit(d Desc) bool {
	if !x.Tx.Push(d) {
		return false
	}
	x.TxSubmitted++
	return true
}

// Kick is the sendto() wakeup telling the kernel to drain the tx ring. It
// reports whether a kick was actually needed (cost is only charged then).
func (x *XSK) Kick() bool {
	if !x.NeedWakeup {
		return false
	}
	x.Kicks++
	x.kicked = true
	return true
}

// KernelDrainTx is the kernel-side transmit path: pop up to n descriptors
// from the tx ring, handing each frame to emit (the NIC transmit function)
// and pushing the buffer onto the completion ring. With NeedWakeup set it
// drains only after a kick.
func (x *XSK) KernelDrainTx(n int, emit func(frame []byte)) int {
	// The stall check precedes the kick handshake so a retried drain still
	// finds the kick pending once the stall window closes.
	if x.Stalled() {
		return 0
	}
	if x.NeedWakeup && !x.kicked {
		return 0
	}
	x.kicked = false
	sent := 0
	for sent < n {
		d, ok := x.Tx.Pop()
		if !ok {
			break
		}
		emit(x.Umem.Buffer(d.Addr, int(d.Len)))
		if !x.Umem.Completion.Push(d) {
			// Completion ring full: the kernel would stall the
			// queue; we surface it as a hard error because the
			// pool sizing makes it impossible.
			panic("afxdp: completion ring overflow")
		}
		x.TxCompleted++
		sent++
	}
	return sent
}

// ReclaimCompletions returns transmitted buffers from the completion ring
// to the pool, up to n, and returns the count reclaimed.
func (x *XSK) ReclaimCompletions(pool *Pool, n int) int {
	addrs := x.addrScratch[:0]
	for len(addrs) < n {
		d, ok := x.Umem.Completion.Pop()
		if !ok {
			break
		}
		addrs = append(addrs, d.Addr)
	}
	if len(addrs) > 0 {
		pool.ReleaseBatch(addrs)
	}
	x.addrScratch = addrs
	return len(addrs)
}

// RefillFill moves up to n free buffers from the pool to the fill ring so
// the kernel can receive into them. It returns the number refilled.
func (x *XSK) RefillFill(pool *Pool, n int) int {
	if free := x.Umem.Fill.Free(); n > free {
		n = free
	}
	if cap(x.addrScratch) < n {
		x.addrScratch = make([]uint64, n)
	}
	addrs := x.addrScratch[:n]
	got := pool.AllocBatch(addrs, n)
	for _, a := range addrs[:got] {
		x.Umem.Fill.Push(Desc{Addr: a})
	}
	return got
}
