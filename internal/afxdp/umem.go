package afxdp

import "fmt"

// DefaultChunkSize is the umem chunk (frame slot) size, matching
// XSK_UMEM__DEFAULT_FRAME_SIZE.
const DefaultChunkSize = 2048

// DefaultChunks is the default number of umem chunks.
const DefaultChunks = 4096

// Umem is the shared user memory region packets live in: a contiguous byte
// area divided into fixed-size chunks, addressed by byte offset, plus the
// fill and completion rings the kernel and userspace exchange ownership
// through.
type Umem struct {
	area      []byte
	chunkSize int
	chunks    int

	// Fill carries empty buffers from userspace to the kernel (rx path
	// 1 in Figure 4); Completion returns transmitted buffers from the
	// kernel to userspace.
	Fill       *Ring
	Completion *Ring
}

// NewUmem builds a umem with the given chunk count and size.
func NewUmem(chunks, chunkSize int) *Umem {
	return &Umem{
		area:       make([]byte, chunks*chunkSize),
		chunkSize:  chunkSize,
		chunks:     chunks,
		Fill:       NewRing(DefaultRingSize),
		Completion: NewRing(DefaultRingSize),
	}
}

// ChunkSize returns the chunk size in bytes.
func (u *Umem) ChunkSize() int { return u.chunkSize }

// Chunks returns the number of chunks.
func (u *Umem) Chunks() int { return u.chunks }

// Buffer returns the memory of the chunk containing addr, trimmed to n
// bytes. It panics on an out-of-range or cross-chunk access: verified
// producers only hand out addresses from the pool and frames never exceed
// the chunk size, so either is a simulation bug — and an access running
// past the chunk end would silently alias the next chunk's packet bytes.
func (u *Umem) Buffer(addr uint64, n int) []byte {
	if n < 0 {
		panic(fmt.Sprintf("afxdp: negative umem access length %d", n))
	}
	if addr >= uint64(len(u.area)) {
		panic(fmt.Sprintf("afxdp: umem address %d beyond area %d", addr, len(u.area)))
	}
	off := addr % uint64(u.chunkSize)
	if uint64(n) > uint64(u.chunkSize)-off {
		panic(fmt.Sprintf("afxdp: umem access [%d,+%d) crosses chunk boundary (chunk size %d, offset %d)",
			addr, n, u.chunkSize, off))
	}
	return u.area[addr : addr+uint64(n)]
}

// ChunkAddr returns the base address of chunk i.
func (u *Umem) ChunkAddr(i int) uint64 { return uint64(i * u.chunkSize) }

// LockMode selects the umempool synchronization strategy, the subject of
// optimizations O2 and O3.
type LockMode int

// Lock modes, in the order the paper improved them.
const (
	// LockMutex guards every pool operation with a pthread-style mutex
	// (pre-O2: ~5% of CPU in pthread_mutex_lock, possible context
	// switch).
	LockMutex LockMode = iota
	// LockSpin uses a spinlock per operation (O2).
	LockSpin
	// LockSpinBatched uses one spinlock acquisition per batch of
	// operations (O3).
	LockSpinBatched
)

// String names the mode.
func (m LockMode) String() string {
	switch m {
	case LockMutex:
		return "mutex"
	case LockSpin:
		return "spinlock"
	default:
		return "spinlock-batched"
	}
}

// Pool is the umempool of Section 3.2: the allocator that tracks which umem
// chunks are free. Any thread may need to return buffers to any pool (a
// packet received on one queue may be transmitted via another), which is
// why the pool is lock-protected in OVS; here the lock *cost* is charged by
// the PMD according to Mode, while the accounting below counts how many
// acquisitions each strategy would have performed.
type Pool struct {
	umem *Umem
	free []uint64
	// Mode is the locking strategy in force.
	Mode LockMode
	// LockAcquisitions counts lock round-trips the strategy implies.
	LockAcquisitions uint64
	// Ops counts pool operations (alloc or free of one buffer).
	Ops uint64
	// FaultExhausted, when set and returning true, makes allocations fail
	// as if every chunk were in flight — the fault-injection hook for
	// umem/chunk exhaustion. Frees still succeed, so the pool recovers the
	// moment the window closes.
	FaultExhausted func() bool
	// ExhaustionFailures counts allocations refused by the injected fault
	// (natural exhaustion shows up in the callers' fill/alloc drop
	// counters instead).
	ExhaustionFailures uint64
}

// NewPool builds a pool owning every chunk of umem.
func NewPool(umem *Umem, mode LockMode) *Pool {
	p := &Pool{umem: umem, Mode: mode, free: make([]uint64, 0, umem.Chunks())}
	for i := umem.Chunks() - 1; i >= 0; i-- {
		p.free = append(p.free, umem.ChunkAddr(i))
	}
	return p
}

// Free returns the number of free chunks.
func (p *Pool) Free() int { return len(p.free) }

// Alloc takes one chunk; ok is false when the pool is exhausted.
func (p *Pool) Alloc() (uint64, bool) {
	p.chargeLock(1)
	p.Ops++
	if p.FaultExhausted != nil && p.FaultExhausted() {
		p.ExhaustionFailures++
		return 0, false
	}
	if len(p.free) == 0 {
		return 0, false
	}
	a := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return a, true
}

// AllocBatch takes up to n chunks under a single (batched) lock round-trip.
func (p *Pool) AllocBatch(out []uint64, n int) int {
	if n > len(out) {
		n = len(out)
	}
	p.chargeLock(n)
	if p.FaultExhausted != nil && p.FaultExhausted() {
		p.ExhaustionFailures++
		return 0
	}
	got := 0
	for got < n && len(p.free) > 0 {
		out[got] = p.free[len(p.free)-1]
		p.free = p.free[:len(p.free)-1]
		got++
		p.Ops++
	}
	return got
}

// Release returns one chunk to the pool.
func (p *Pool) Release(addr uint64) {
	p.chargeLock(1)
	p.Ops++
	p.free = append(p.free, addr)
}

// ReleaseBatch returns several chunks under a single lock round-trip.
func (p *Pool) ReleaseBatch(addrs []uint64) {
	p.chargeLock(len(addrs))
	for _, a := range addrs {
		p.free = append(p.free, a)
		p.Ops++
	}
}

// chargeLock accounts the number of lock acquisitions an n-operation step
// costs under the current mode: one per operation for the per-packet modes,
// one per batch for the batched mode.
func (p *Pool) chargeLock(n int) {
	if n <= 0 {
		return
	}
	if p.Mode == LockSpinBatched {
		p.LockAcquisitions++
	} else {
		p.LockAcquisitions += uint64(n)
	}
}
