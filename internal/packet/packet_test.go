package packet

import (
	"testing"

	"ovsxdp/internal/packet/hdr"
)

func TestNewPacketDefaults(t *testing.T) {
	p := New(make([]byte, 64))
	if p.Len() != 64 {
		t.Fatalf("len = %d", p.Len())
	}
	if p.L3Offset != -1 || p.L4Offset != -1 {
		t.Fatal("header offsets must start unset")
	}
	if p.InPort != 0 || p.RecircID != 0 || p.CtState != 0 {
		t.Fatal("metadata must start zero")
	}
}

func TestResetMetadata(t *testing.T) {
	p := New(make([]byte, 10))
	p.InPort = 3
	p.RecircID = 2
	p.CtState = CtTracked | CtEstablished
	p.L3Offset = 14
	p.Tunnel = &TunnelInfo{VNI: 9}
	p.ResetMetadata()
	if p.InPort != 0 || p.RecircID != 0 || p.CtState != 0 || p.L3Offset != -1 || p.Tunnel != nil {
		t.Fatalf("reset incomplete: %+v", p.Metadata)
	}
	if p.Len() != 10 {
		t.Fatal("reset must keep the buffer")
	}
}

func TestClone(t *testing.T) {
	p := New([]byte{1, 2, 3})
	p.InPort = 7
	p.Tunnel = &TunnelInfo{VNI: 5, DstIP: hdr.MakeIP4(1, 2, 3, 4)}
	c := p.Clone()
	c.Data[0] = 99
	c.Tunnel.VNI = 6
	if p.Data[0] != 1 {
		t.Fatal("clone must not share data")
	}
	if p.Tunnel.VNI != 5 {
		t.Fatal("clone must not share tunnel info")
	}
	if c.InPort != 7 {
		t.Fatal("clone must copy metadata")
	}
}

func TestBatch(t *testing.T) {
	b := NewBatch(4)
	if b.Len() != 0 || b.Full() {
		t.Fatal("new batch must be empty")
	}
	for i := 0; i < 4; i++ {
		b.Add(New(nil))
	}
	if !b.Full() || b.Len() != 4 {
		t.Fatal("batch should be full")
	}
	defer func() {
		if recover() == nil {
			t.Error("overflow must panic")
		}
	}()
	b.Add(New(nil))
}

func TestBatchClear(t *testing.T) {
	b := NewBatch(8)
	b.Add(New(nil))
	b.Clear()
	if b.Len() != 0 {
		t.Fatal("clear failed")
	}
	if cap(b.Pkts) != 8 {
		t.Fatal("clear must retain capacity")
	}
}

func TestPoolPreallocated(t *testing.T) {
	pool := NewPool(4, 2048, true)
	if pool.Available() != 4 {
		t.Fatalf("available = %d", pool.Available())
	}
	buf := []byte{0xaa, 0xbb}
	p := pool.Get(buf)
	if pool.Available() != 3 {
		t.Fatal("get must take from the pool")
	}
	if p.Len() != 2 || p.Data[0] != 0xaa {
		t.Fatal("get must carry the data")
	}
	if pool.Allocs != 0 {
		t.Fatal("preallocated get must not heap-allocate")
	}
	p.Release()
	if pool.Available() != 4 {
		t.Fatal("release must return to the pool")
	}
}

func TestPoolDoubleReleaseSafe(t *testing.T) {
	pool := NewPool(2, 64, true)
	p := pool.Get([]byte{1})
	p.Release()
	p.Release()
	if pool.Available() != 2 {
		t.Fatalf("double release corrupted the pool: %d", pool.Available())
	}
}

func TestPoolExhaustionFallsBackToHeap(t *testing.T) {
	pool := NewPool(1, 64, true)
	a := pool.Get([]byte{1})
	b := pool.Get([]byte{2})
	if pool.Allocs != 1 {
		t.Fatalf("allocs = %d, want 1", pool.Allocs)
	}
	b.Release() // heap packet: no-op
	if pool.Available() != 0 {
		t.Fatal("heap packet must not enter the pool")
	}
	a.Release()
	if pool.Available() != 1 {
		t.Fatal("pooled packet must return")
	}
}

func TestPoolNotPreallocated(t *testing.T) {
	pool := NewPool(16, 64, false)
	p := pool.Get([]byte{5})
	if pool.Allocs != 1 {
		t.Fatal("non-preallocated pool must heap-allocate")
	}
	p.Release() // must not panic
}

func TestPoolGetResetsMetadata(t *testing.T) {
	pool := NewPool(1, 64, true)
	p := pool.Get([]byte{1})
	p.InPort = 9
	p.CtState = CtTracked
	p.Release()
	q := pool.Get([]byte{2})
	if q.InPort != 0 || q.CtState != 0 || q.L3Offset != -1 {
		t.Fatalf("reused packet metadata not reset: %+v", q.Metadata)
	}
}

func TestPoolOversizedBuffer(t *testing.T) {
	pool := NewPool(1, 8, true)
	big := make([]byte, 64)
	big[63] = 7
	p := pool.Get(big)
	if p.Len() != 64 || p.Data[63] != 7 {
		t.Fatal("oversized buffer must still be carried")
	}
}

func TestCtStateString(t *testing.T) {
	if s := (CtTracked | CtEstablished).String(); s != "trk,est" {
		t.Fatalf("ct state string = %q", s)
	}
	if s := CtStateFlags(0).String(); s != "-" {
		t.Fatalf("empty ct state string = %q", s)
	}
}

func TestPacketString(t *testing.T) {
	p := New(make([]byte, 60))
	p.InPort = 2
	if p.String() == "" {
		t.Fatal("String must produce something")
	}
}
