package hdr

import "encoding/binary"

// TCP flag bits.
const (
	TCPFin = 1 << 0
	TCPSyn = 1 << 1
	TCPRst = 1 << 2
	TCPPsh = 1 << 3
	TCPAck = 1 << 4
	TCPUrg = 1 << 5
)

// TCP is a decoded TCP header.
type TCP struct {
	SrcPort   uint16
	DstPort   uint16
	Seq       uint32
	Ack       uint32
	Flags     uint8
	Window    uint16
	Checksum  uint16
	HeaderLen int // 20..60
}

// ParseTCP decodes a TCP header from b.
func ParseTCP(b []byte) (TCP, error) {
	var h TCP
	if len(b) < TCPMinSize {
		return h, ErrTruncated{"tcp", TCPMinSize, len(b)}
	}
	off := int(b[12]>>4) * 4
	if off < TCPMinSize {
		return h, ErrMalformed{"tcp", "data offset below minimum"}
	}
	if len(b) < off {
		return h, ErrTruncated{"tcp options", off, len(b)}
	}
	h.SrcPort = binary.BigEndian.Uint16(b[0:2])
	h.DstPort = binary.BigEndian.Uint16(b[2:4])
	h.Seq = binary.BigEndian.Uint32(b[4:8])
	h.Ack = binary.BigEndian.Uint32(b[8:12])
	h.Flags = b[13] & 0x3f
	h.Window = binary.BigEndian.Uint16(b[14:16])
	h.Checksum = binary.BigEndian.Uint16(b[16:18])
	h.HeaderLen = off
	return h, nil
}

// SerializedLen returns the encoded header length (no options: 20).
func (h *TCP) SerializedLen() int { return TCPMinSize }

// SerializeTo writes a 20-byte TCP header into b with a zero checksum field
// (call FinishTCPChecksum afterwards) and returns the bytes written.
func (h *TCP) SerializeTo(b []byte) int {
	_ = b[TCPMinSize-1]
	binary.BigEndian.PutUint16(b[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], h.DstPort)
	binary.BigEndian.PutUint32(b[4:8], h.Seq)
	binary.BigEndian.PutUint32(b[8:12], h.Ack)
	b[12] = 5 << 4
	b[13] = h.Flags & 0x3f
	binary.BigEndian.PutUint16(b[14:16], h.Window)
	b[16], b[17] = 0, 0
	b[18], b[19] = 0, 0 // urgent pointer
	return TCPMinSize
}

// UDP is a decoded UDP header.
type UDP struct {
	SrcPort  uint16
	DstPort  uint16
	Length   uint16
	Checksum uint16
}

// ParseUDP decodes a UDP header from b.
func ParseUDP(b []byte) (UDP, error) {
	var h UDP
	if len(b) < UDPSize {
		return h, ErrTruncated{"udp", UDPSize, len(b)}
	}
	h.SrcPort = binary.BigEndian.Uint16(b[0:2])
	h.DstPort = binary.BigEndian.Uint16(b[2:4])
	h.Length = binary.BigEndian.Uint16(b[4:6])
	if h.Length < UDPSize {
		return h, ErrMalformed{"udp", "length below header size"}
	}
	h.Checksum = binary.BigEndian.Uint16(b[6:8])
	return h, nil
}

// SerializeTo writes the UDP header into b with a zero checksum field and
// returns the bytes written.
func (h *UDP) SerializeTo(b []byte) int {
	_ = b[UDPSize-1]
	binary.BigEndian.PutUint16(b[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], h.DstPort)
	binary.BigEndian.PutUint16(b[4:6], h.Length)
	b[6], b[7] = 0, 0
	return UDPSize
}

// ICMP echo types.
const (
	ICMPEchoReply   = 0
	ICMPEchoRequest = 8
)

// ICMP is a decoded ICMPv4 header (echo-oriented).
type ICMP struct {
	Type     uint8
	Code     uint8
	Checksum uint16
	ID       uint16
	Seq      uint16
}

// ParseICMP decodes an ICMP header from b.
func ParseICMP(b []byte) (ICMP, error) {
	var h ICMP
	if len(b) < ICMPSize {
		return h, ErrTruncated{"icmp", ICMPSize, len(b)}
	}
	h.Type = b[0]
	h.Code = b[1]
	h.Checksum = binary.BigEndian.Uint16(b[2:4])
	h.ID = binary.BigEndian.Uint16(b[4:6])
	h.Seq = binary.BigEndian.Uint16(b[6:8])
	return h, nil
}

// SerializeTo writes the ICMP header into b, computing the checksum over the
// header only (callers appending payload must recompute), and returns the
// bytes written.
func (h *ICMP) SerializeTo(b []byte) int {
	_ = b[ICMPSize-1]
	b[0] = h.Type
	b[1] = h.Code
	b[2], b[3] = 0, 0
	binary.BigEndian.PutUint16(b[4:6], h.ID)
	binary.BigEndian.PutUint16(b[6:8], h.Seq)
	binary.BigEndian.PutUint16(b[2:4], Checksum(b[:ICMPSize]))
	return ICMPSize
}
