package hdr

import "encoding/binary"

// IPv4 is a decoded IPv4 header.
type IPv4 struct {
	TOS        uint8
	TotalLen   uint16
	ID         uint16
	DontFrag   bool
	MoreFrag   bool
	FragOffset uint16 // in 8-byte units
	TTL        uint8
	Proto      IPProto
	Checksum   uint16
	Src        IP4
	Dst        IP4
	HeaderLen  int // 20..60
}

// ParseIPv4 decodes an IPv4 header from b.
func ParseIPv4(b []byte) (IPv4, error) {
	var h IPv4
	if len(b) < IPv4MinSize {
		return h, ErrTruncated{"ipv4", IPv4MinSize, len(b)}
	}
	if v := b[0] >> 4; v != 4 {
		return h, ErrMalformed{"ipv4", "version is not 4"}
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < IPv4MinSize {
		return h, ErrMalformed{"ipv4", "header length below minimum"}
	}
	if len(b) < ihl {
		return h, ErrTruncated{"ipv4 options", ihl, len(b)}
	}
	h.HeaderLen = ihl
	h.TOS = b[1]
	h.TotalLen = binary.BigEndian.Uint16(b[2:4])
	if int(h.TotalLen) < ihl {
		return h, ErrMalformed{"ipv4", "total length below header length"}
	}
	h.ID = binary.BigEndian.Uint16(b[4:6])
	flags := binary.BigEndian.Uint16(b[6:8])
	h.DontFrag = flags&0x4000 != 0
	h.MoreFrag = flags&0x2000 != 0
	h.FragOffset = flags & 0x1fff
	h.TTL = b[8]
	h.Proto = IPProto(b[9])
	h.Checksum = binary.BigEndian.Uint16(b[10:12])
	h.Src = IP4(binary.BigEndian.Uint32(b[12:16]))
	h.Dst = IP4(binary.BigEndian.Uint32(b[16:20]))
	return h, nil
}

// SerializedLen returns the encoded header length (no options: 20).
func (h *IPv4) SerializedLen() int { return IPv4MinSize }

// SerializeTo writes a 20-byte IPv4 header into b with a freshly computed
// checksum and returns the bytes written. HeaderLen and Checksum fields in h
// are ignored; options are not emitted.
func (h *IPv4) SerializeTo(b []byte) int {
	_ = b[IPv4MinSize-1]
	b[0] = 4<<4 | 5
	b[1] = h.TOS
	binary.BigEndian.PutUint16(b[2:4], h.TotalLen)
	binary.BigEndian.PutUint16(b[4:6], h.ID)
	flags := h.FragOffset & 0x1fff
	if h.DontFrag {
		flags |= 0x4000
	}
	if h.MoreFrag {
		flags |= 0x2000
	}
	binary.BigEndian.PutUint16(b[6:8], flags)
	b[8] = h.TTL
	b[9] = uint8(h.Proto)
	b[10], b[11] = 0, 0
	binary.BigEndian.PutUint32(b[12:16], uint32(h.Src))
	binary.BigEndian.PutUint32(b[16:20], uint32(h.Dst))
	csum := Checksum(b[:IPv4MinSize])
	binary.BigEndian.PutUint16(b[10:12], csum)
	return IPv4MinSize
}

// VerifyChecksum recomputes the header checksum over the raw header bytes
// and reports whether it is valid.
func VerifyIPv4Checksum(raw []byte) bool {
	if len(raw) < IPv4MinSize {
		return false
	}
	ihl := int(raw[0]&0x0f) * 4
	if ihl < IPv4MinSize || len(raw) < ihl {
		return false
	}
	return Checksum(raw[:ihl]) == 0
}

// IPv6 is a decoded IPv6 fixed header. Extension headers are not handled by
// the fast path (the datapath treats them as an unparsed payload), matching
// OVS's miniflow extraction behaviour for uncommon cases.
type IPv6 struct {
	TrafficClass uint8
	FlowLabel    uint32
	PayloadLen   uint16
	NextHeader   IPProto
	HopLimit     uint8
	Src          IP6
	Dst          IP6
}

// ParseIPv6 decodes an IPv6 fixed header from b.
func ParseIPv6(b []byte) (IPv6, error) {
	var h IPv6
	if len(b) < IPv6Size {
		return h, ErrTruncated{"ipv6", IPv6Size, len(b)}
	}
	if v := b[0] >> 4; v != 6 {
		return h, ErrMalformed{"ipv6", "version is not 6"}
	}
	vtf := binary.BigEndian.Uint32(b[0:4])
	h.TrafficClass = uint8(vtf >> 20)
	h.FlowLabel = vtf & 0xfffff
	h.PayloadLen = binary.BigEndian.Uint16(b[4:6])
	h.NextHeader = IPProto(b[6])
	h.HopLimit = b[7]
	copy(h.Src[:], b[8:24])
	copy(h.Dst[:], b[24:40])
	return h, nil
}

// SerializeTo writes the fixed header into b and returns the bytes written.
func (h *IPv6) SerializeTo(b []byte) int {
	_ = b[IPv6Size-1]
	vtf := uint32(6)<<28 | uint32(h.TrafficClass)<<20 | h.FlowLabel&0xfffff
	binary.BigEndian.PutUint32(b[0:4], vtf)
	binary.BigEndian.PutUint16(b[4:6], h.PayloadLen)
	b[6] = uint8(h.NextHeader)
	b[7] = h.HopLimit
	copy(b[8:24], h.Src[:])
	copy(b[24:40], h.Dst[:])
	return IPv6Size
}
