package hdr

import "encoding/binary"

// Builder composes complete frames from the inside out, in the style of
// gopacket's SerializeBuffer: callers describe the layers and Build emits
// the bytes, fixing up length and checksum fields that depend on the
// payload.
type Builder struct {
	eth     *Ethernet
	ip4     *IPv4
	ip6     *IPv6
	udp     *UDP
	tcp     *TCP
	icmp    *ICMP
	arp     *ARP
	payload []byte
	padTo   int
	badCsum bool
}

// NewBuilder returns an empty frame builder.
func NewBuilder() *Builder { return &Builder{} }

// Eth sets the Ethernet layer.
func (f *Builder) Eth(src, dst MAC) *Builder {
	f.eth = &Ethernet{Src: src, Dst: dst}
	return f
}

// VLAN tags the frame with an 802.1Q header.
func (f *Builder) VLAN(vid uint16, prio uint8) *Builder {
	if f.eth == nil {
		f.eth = &Ethernet{}
	}
	f.eth.HasVLAN = true
	f.eth.VLANID = vid
	f.eth.VLANPrio = prio
	return f
}

// IPv4H sets the IPv4 layer.
func (f *Builder) IPv4H(src, dst IP4, ttl uint8) *Builder {
	f.ip4 = &IPv4{Src: src, Dst: dst, TTL: ttl, DontFrag: true}
	return f
}

// IPv6H sets the IPv6 layer.
func (f *Builder) IPv6H(src, dst IP6, hops uint8) *Builder {
	f.ip6 = &IPv6{Src: src, Dst: dst, HopLimit: hops}
	return f
}

// UDPH sets the UDP layer.
func (f *Builder) UDPH(src, dst uint16) *Builder {
	f.udp = &UDP{SrcPort: src, DstPort: dst}
	return f
}

// TCPH sets the TCP layer.
func (f *Builder) TCPH(src, dst uint16, seq, ack uint32, flags uint8) *Builder {
	f.tcp = &TCP{SrcPort: src, DstPort: dst, Seq: seq, Ack: ack, Flags: flags, Window: 65535}
	return f
}

// ICMPH sets the ICMP layer.
func (f *Builder) ICMPH(typ, code uint8, id, seq uint16) *Builder {
	f.icmp = &ICMP{Type: typ, Code: code, ID: id, Seq: seq}
	return f
}

// ARPH sets the ARP layer (mutually exclusive with IP layers).
func (f *Builder) ARPH(op uint16, sMAC MAC, sIP IP4, tMAC MAC, tIP IP4) *Builder {
	f.arp = &ARP{Op: op, SenderMAC: sMAC, SenderIP: sIP, TargetMAC: tMAC, TargetIP: tIP}
	return f
}

// Payload sets the application payload bytes.
func (f *Builder) Payload(p []byte) *Builder {
	f.payload = p
	return f
}

// PayloadLen sets a zero-filled payload of n bytes.
func (f *Builder) PayloadLen(n int) *Builder {
	f.payload = make([]byte, n)
	return f
}

// PadTo pads the final frame with zeros to at least n bytes (e.g. the
// 64-byte Ethernet minimum, which includes the 4-byte FCS the simulation
// does not materialize; use 60 for the on-host view or 64 to mirror the
// paper's quoted sizes).
func (f *Builder) PadTo(n int) *Builder {
	f.padTo = n
	return f
}

// BadL4Checksum corrupts the transport checksum, for tests exercising
// checksum validation and offload paths.
func (f *Builder) BadL4Checksum() *Builder {
	f.badCsum = true
	return f
}

// Build serializes the frame. It panics if the layer combination is
// inconsistent (builder misuse is a programming error, not input error).
func (f *Builder) Build() []byte {
	if f.eth == nil {
		panic("hdr: Build without Ethernet layer")
	}
	// Serialize from the innermost layer outward.
	var l4 []byte
	var proto IPProto
	switch {
	case f.udp != nil:
		proto = IPProtoUDP
		l4 = make([]byte, UDPSize+len(f.payload))
		f.udp.Length = uint16(len(l4))
		f.udp.SerializeTo(l4)
		copy(l4[UDPSize:], f.payload)
	case f.tcp != nil:
		proto = IPProtoTCP
		l4 = make([]byte, TCPMinSize+len(f.payload))
		f.tcp.SerializeTo(l4)
		copy(l4[TCPMinSize:], f.payload)
	case f.icmp != nil:
		proto = IPProtoICMP
		l4 = make([]byte, ICMPSize+len(f.payload))
		copy(l4[ICMPSize:], f.payload)
		f.icmp.SerializeTo(l4)
		if len(f.payload) > 0 {
			l4[2], l4[3] = 0, 0
			binary.BigEndian.PutUint16(l4[2:4], Checksum(l4))
		}
	default:
		l4 = f.payload
	}

	var l3 []byte
	switch {
	case f.arp != nil:
		f.eth.Type = EtherTypeARP
		l3 = make([]byte, ARPSize)
		f.arp.SerializeTo(l3)
	case f.ip4 != nil:
		f.eth.Type = EtherTypeIPv4
		f.ip4.Proto = proto
		f.ip4.TotalLen = uint16(IPv4MinSize + len(l4))
		l3 = make([]byte, IPv4MinSize+len(l4))
		f.ip4.SerializeTo(l3)
		copy(l3[IPv4MinSize:], l4)
		switch proto {
		case IPProtoTCP:
			PutTCPChecksum(f.ip4.Src, f.ip4.Dst, l3[IPv4MinSize:])
		case IPProtoUDP:
			PutUDPChecksum(f.ip4.Src, f.ip4.Dst, l3[IPv4MinSize:])
		}
		if f.badCsum && len(l4) >= UDPSize {
			// Flip a checksum bit to make it invalid.
			csumOff := IPv4MinSize + 16
			if proto == IPProtoUDP {
				csumOff = IPv4MinSize + 6
			}
			l3[csumOff] ^= 0xff
		}
	case f.ip6 != nil:
		f.eth.Type = EtherTypeIPv6
		f.ip6.NextHeader = proto
		f.ip6.PayloadLen = uint16(len(l4))
		l3 = make([]byte, IPv6Size+len(l4))
		f.ip6.SerializeTo(l3)
		copy(l3[IPv6Size:], l4)
	default:
		l3 = l4
	}

	frame := make([]byte, f.eth.SerializedLen()+len(l3))
	n := f.eth.SerializeTo(frame)
	copy(frame[n:], l3)
	if f.padTo > len(frame) {
		padded := make([]byte, f.padTo)
		copy(padded, frame)
		frame = padded
	}
	return frame
}

// EncapGeneve wraps an inner Ethernet frame in outer
// Ethernet/IPv4/UDP/Geneve headers, the encapsulation NSX applies to
// inter-host traffic.
func EncapGeneve(inner []byte, outerSrcMAC, outerDstMAC MAC, outerSrc, outerDst IP4, srcPort uint16, vni uint32, opts []GeneveOption) []byte {
	g := Geneve{VNI: vni, Protocol: EtherTypeTransparentEtherBridging, Options: opts}
	gLen := g.SerializedLen()
	udpLen := UDPSize + gLen + len(inner)
	total := EthernetSize + IPv4MinSize + udpLen
	out := make([]byte, total)

	eth := Ethernet{Src: outerSrcMAC, Dst: outerDstMAC, Type: EtherTypeIPv4}
	off := eth.SerializeTo(out)

	ip := IPv4{Src: outerSrc, Dst: outerDst, TTL: 64, Proto: IPProtoUDP,
		TotalLen: uint16(IPv4MinSize + udpLen), DontFrag: true}
	off += ip.SerializeTo(out[off:])

	udp := UDP{SrcPort: srcPort, DstPort: GenevePort, Length: uint16(udpLen)}
	off += udp.SerializeTo(out[off:])

	off += g.SerializeTo(out[off:])
	copy(out[off:], inner)

	PutUDPChecksum(outerSrc, outerDst, out[EthernetSize+IPv4MinSize:])
	return out
}

// DecapGeneve validates outer headers and returns the inner frame along
// with the VNI. It is the slow-path reference; the datapath fast path
// performs the same checks on parsed offsets.
func DecapGeneve(frame []byte) (inner []byte, vni uint32, err error) {
	eth, err := ParseEthernet(frame)
	if err != nil {
		return nil, 0, err
	}
	if eth.Type != EtherTypeIPv4 {
		return nil, 0, ErrMalformed{"geneve outer", "not IPv4"}
	}
	ip, err := ParseIPv4(frame[eth.HeaderLen:])
	if err != nil {
		return nil, 0, err
	}
	if ip.Proto != IPProtoUDP {
		return nil, 0, ErrMalformed{"geneve outer", "not UDP"}
	}
	l4 := frame[eth.HeaderLen+ip.HeaderLen:]
	udp, err := ParseUDP(l4)
	if err != nil {
		return nil, 0, err
	}
	if udp.DstPort != GenevePort {
		return nil, 0, ErrMalformed{"geneve outer", "not the Geneve port"}
	}
	g, err := ParseGeneve(l4[UDPSize:])
	if err != nil {
		return nil, 0, err
	}
	return l4[UDPSize+g.HeaderLen:], g.VNI, nil
}
