package hdr

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"
)

var (
	macA = MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x0a}
	macB = MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x0b}
	ipA  = MakeIP4(10, 0, 0, 1)
	ipB  = MakeIP4(10, 0, 0, 2)
)

func TestEthernetRoundTrip(t *testing.T) {
	e := Ethernet{Dst: macB, Src: macA, Type: EtherTypeIPv4}
	buf := make([]byte, e.SerializedLen())
	if n := e.SerializeTo(buf); n != EthernetSize {
		t.Fatalf("wrote %d bytes, want %d", n, EthernetSize)
	}
	got, err := ParseEthernet(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dst != macB || got.Src != macA || got.Type != EtherTypeIPv4 || got.HasVLAN {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestEthernetVLANRoundTrip(t *testing.T) {
	e := Ethernet{Dst: macB, Src: macA, Type: EtherTypeIPv6, HasVLAN: true, VLANID: 100, VLANPrio: 5}
	buf := make([]byte, e.SerializedLen())
	e.SerializeTo(buf)
	got, err := ParseEthernet(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasVLAN || got.VLANID != 100 || got.VLANPrio != 5 || got.Type != EtherTypeIPv6 {
		t.Fatalf("VLAN round trip mismatch: %+v", got)
	}
	if got.HeaderLen != EthernetSize+VLANSize {
		t.Fatalf("header len = %d", got.HeaderLen)
	}
}

func TestEthernetTruncated(t *testing.T) {
	if _, err := ParseEthernet(make([]byte, 13)); err == nil {
		t.Fatal("want truncation error")
	}
	// VLAN-tagged but too short for the tag.
	b := make([]byte, 14)
	binary.BigEndian.PutUint16(b[12:14], uint16(EtherTypeVLAN))
	if _, err := ParseEthernet(b); err == nil {
		t.Fatal("want truncation error for short VLAN frame")
	}
}

func TestPushPopVLAN(t *testing.T) {
	orig := NewBuilder().Eth(macA, macB).IPv4H(ipA, ipB, 64).UDPH(1000, 2000).PayloadLen(10).Build()
	tagged := PushVLAN(orig, 42, 3)
	e, err := ParseEthernet(tagged)
	if err != nil {
		t.Fatal(err)
	}
	if !e.HasVLAN || e.VLANID != 42 || e.VLANPrio != 3 || e.Type != EtherTypeIPv4 {
		t.Fatalf("push produced %+v", e)
	}
	untagged := PopVLAN(tagged)
	if !bytes.Equal(untagged, orig) {
		t.Fatal("pop did not restore the original frame")
	}
	// Popping an untagged frame is a no-op.
	if got := PopVLAN(orig); !bytes.Equal(got, orig) {
		t.Fatal("pop on untagged frame changed it")
	}
}

func TestMACPredicates(t *testing.T) {
	if !Broadcast.IsBroadcast() || !Broadcast.IsMulticast() {
		t.Fatal("broadcast predicates wrong")
	}
	if macA.IsBroadcast() || macA.IsMulticast() {
		t.Fatal("unicast misclassified")
	}
	mcast := MAC{0x01, 0x00, 0x5e, 0, 0, 1}
	if !mcast.IsMulticast() || mcast.IsBroadcast() {
		t.Fatal("multicast misclassified")
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	h := IPv4{TOS: 0x10, TotalLen: 60, ID: 7, TTL: 64, Proto: IPProtoTCP, Src: ipA, Dst: ipB, DontFrag: true}
	buf := make([]byte, IPv4MinSize)
	h.SerializeTo(buf)
	got, err := ParseIPv4(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != ipA || got.Dst != ipB || got.Proto != IPProtoTCP || got.TTL != 64 ||
		got.TotalLen != 60 || !got.DontFrag || got.MoreFrag {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if !VerifyIPv4Checksum(buf) {
		t.Fatal("serialized header checksum must validate")
	}
	buf[8]-- // decrement TTL without fixing checksum
	if VerifyIPv4Checksum(buf) {
		t.Fatal("corrupted header checksum must not validate")
	}
}

func TestIPv4Malformed(t *testing.T) {
	buf := make([]byte, IPv4MinSize)
	(&IPv4{Src: ipA, Dst: ipB, TotalLen: 20, TTL: 1}).SerializeTo(buf)
	buf[0] = 6<<4 | 5 // wrong version
	if _, err := ParseIPv4(buf); err == nil {
		t.Fatal("want version error")
	}
	buf[0] = 4<<4 | 3 // IHL too small
	if _, err := ParseIPv4(buf); err == nil {
		t.Fatal("want IHL error")
	}
	buf[0] = 4<<4 | 15 // IHL beyond buffer
	if _, err := ParseIPv4(buf); err == nil {
		t.Fatal("want truncation error")
	}
}

func TestIPv6RoundTrip(t *testing.T) {
	var src, dst IP6
	src[15], dst[15] = 1, 2
	h := IPv6{TrafficClass: 3, FlowLabel: 0x12345, PayloadLen: 100, NextHeader: IPProtoUDP, HopLimit: 64, Src: src, Dst: dst}
	buf := make([]byte, IPv6Size)
	h.SerializeTo(buf)
	got, err := ParseIPv6(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.FlowLabel != 0x12345 || got.TrafficClass != 3 || got.NextHeader != IPProtoUDP ||
		got.Src != src || got.Dst != dst || got.PayloadLen != 100 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	h := TCP{SrcPort: 80, DstPort: 12345, Seq: 111, Ack: 222, Flags: TCPSyn | TCPAck, Window: 4096}
	buf := make([]byte, TCPMinSize)
	h.SerializeTo(buf)
	got, err := ParseTCP(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != 80 || got.DstPort != 12345 || got.Seq != 111 || got.Ack != 222 ||
		got.Flags != TCPSyn|TCPAck || got.Window != 4096 || got.HeaderLen != TCPMinSize {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	h := UDP{SrcPort: 53, DstPort: 5353, Length: 20}
	buf := make([]byte, UDPSize)
	h.SerializeTo(buf)
	got, err := ParseUDP(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != 53 || got.DstPort != 5353 || got.Length != 20 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	// Length below header size is malformed.
	binary.BigEndian.PutUint16(buf[4:6], 4)
	if _, err := ParseUDP(buf); err == nil {
		t.Fatal("want malformed error")
	}
}

func TestICMPRoundTrip(t *testing.T) {
	h := ICMP{Type: ICMPEchoRequest, ID: 99, Seq: 5}
	buf := make([]byte, ICMPSize)
	h.SerializeTo(buf)
	got, err := ParseICMP(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != ICMPEchoRequest || got.ID != 99 || got.Seq != 5 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if Checksum(buf) != 0 {
		t.Fatal("ICMP checksum must validate over serialized header")
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example-style vector: a canonical IPv4 header.
	raw := []byte{
		0x45, 0x00, 0x00, 0x3c, 0x1c, 0x46, 0x40, 0x00,
		0x40, 0x06, 0x00, 0x00, 0xac, 0x10, 0x0a, 0x63,
		0xac, 0x10, 0x0a, 0x0c,
	}
	if got := Checksum(raw); got != 0xb1e6 {
		t.Fatalf("checksum = %#04x, want 0xb1e6", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	if Checksum([]byte{0x01}) != ^uint16(0x0100) {
		t.Fatal("odd-length checksum must pad with zero")
	}
}

func TestL4ChecksumRoundTrip(t *testing.T) {
	payload := []byte("hello world")
	seg := make([]byte, TCPMinSize+len(payload))
	(&TCP{SrcPort: 1, DstPort: 2, Seq: 3}).SerializeTo(seg)
	copy(seg[TCPMinSize:], payload)
	PutTCPChecksum(ipA, ipB, seg)
	if !VerifyL4Checksum(ipA, ipB, IPProtoTCP, seg) {
		t.Fatal("TCP checksum must validate")
	}
	seg[TCPMinSize] ^= 1
	if VerifyL4Checksum(ipA, ipB, IPProtoTCP, seg) {
		t.Fatal("corrupted TCP payload must not validate")
	}
}

func TestUDPZeroChecksumAccepted(t *testing.T) {
	d := make([]byte, UDPSize+4)
	(&UDP{SrcPort: 1, DstPort: 2, Length: uint16(len(d))}).SerializeTo(d)
	if !VerifyL4Checksum(ipA, ipB, IPProtoUDP, d) {
		t.Fatal("zero UDP checksum means 'not computed' and must be accepted")
	}
	PutUDPChecksum(ipA, ipB, d)
	if binary.BigEndian.Uint16(d[6:8]) == 0 {
		t.Fatal("computed UDP checksum must never be transmitted as zero")
	}
	if !VerifyL4Checksum(ipA, ipB, IPProtoUDP, d) {
		t.Fatal("computed UDP checksum must validate")
	}
}

func TestChecksumIncrementalProperty(t *testing.T) {
	// One's-complement sum is invariant to byte-pair swaps at 16-bit
	// granularity: checksum(a++b) == checksum(b++a).
	f := func(a, b []byte) bool {
		if len(a)%2 == 1 {
			a = append(a, 0)
		}
		if len(b)%2 == 1 {
			b = append(b, 0)
		}
		ab := append(append([]byte{}, a...), b...)
		ba := append(append([]byte{}, b...), a...)
		return Checksum(ab) == Checksum(ba)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestARPRoundTrip(t *testing.T) {
	a := ARP{Op: ARPRequest, SenderMAC: macA, SenderIP: ipA, TargetIP: ipB}
	buf := make([]byte, ARPSize)
	a.SerializeTo(buf)
	got, err := ParseARP(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != ARPRequest || got.SenderMAC != macA || got.SenderIP != ipA || got.TargetIP != ipB {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestGeneveRoundTrip(t *testing.T) {
	g := Geneve{VNI: 0xABCDE, Protocol: EtherTypeTransparentEtherBridging,
		Options: []GeneveOption{{Class: 0x0104, Type: 1, Data: []byte{1, 2, 3, 4}}}}
	buf := make([]byte, g.SerializedLen())
	g.SerializeTo(buf)
	got, err := ParseGeneve(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.VNI != 0xABCDE || got.Protocol != EtherTypeTransparentEtherBridging {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if len(got.Options) != 1 || got.Options[0].Class != 0x0104 || !bytes.Equal(got.Options[0].Data, []byte{1, 2, 3, 4}) {
		t.Fatalf("options mismatch: %+v", got.Options)
	}
	if got.HeaderLen != GeneveMinSize+8 {
		t.Fatalf("header len = %d", got.HeaderLen)
	}
}

func TestVXLANRoundTrip(t *testing.T) {
	v := VXLAN{VNI: 5000}
	buf := make([]byte, VXLANSize)
	v.SerializeTo(buf)
	got, err := ParseVXLAN(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.VNI != 5000 {
		t.Fatalf("VNI = %d", got.VNI)
	}
	buf[0] = 0 // clear I flag
	if _, err := ParseVXLAN(buf); err == nil {
		t.Fatal("want I-flag error")
	}
}

func TestGRERoundTrip(t *testing.T) {
	g := GRE{Protocol: EtherTypeTransparentEtherBridging, HasKey: true, Key: 77, HasSeq: true, Seq: 3}
	buf := make([]byte, g.SerializedLen())
	g.SerializeTo(buf)
	got, err := ParseGRE(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasKey || got.Key != 77 || !got.HasSeq || got.Seq != 3 ||
		got.Protocol != EtherTypeTransparentEtherBridging {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.HeaderLen != 12 {
		t.Fatalf("header len = %d, want 12", got.HeaderLen)
	}
}

func TestBuilderUDPFrame(t *testing.T) {
	frame := NewBuilder().Eth(macA, macB).IPv4H(ipA, ipB, 64).UDPH(1111, 2222).PayloadLen(18).PadTo(64).Build()
	if len(frame) != 64 {
		t.Fatalf("frame len = %d, want 64", len(frame))
	}
	eth, err := ParseEthernet(frame)
	if err != nil {
		t.Fatal(err)
	}
	ip, err := ParseIPv4(frame[eth.HeaderLen:])
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyIPv4Checksum(frame[eth.HeaderLen:]) {
		t.Fatal("IP checksum invalid")
	}
	l4 := frame[eth.HeaderLen+ip.HeaderLen : eth.HeaderLen+int(ip.TotalLen)]
	if !VerifyL4Checksum(ip.Src, ip.Dst, ip.Proto, l4) {
		t.Fatal("UDP checksum invalid")
	}
	udp, err := ParseUDP(l4)
	if err != nil {
		t.Fatal(err)
	}
	if udp.SrcPort != 1111 || udp.DstPort != 2222 {
		t.Fatalf("ports = %d,%d", udp.SrcPort, udp.DstPort)
	}
}

func TestBuilderTCPChecksum(t *testing.T) {
	frame := NewBuilder().Eth(macA, macB).IPv4H(ipA, ipB, 64).TCPH(80, 1024, 1, 0, TCPSyn).PayloadLen(100).Build()
	eth, _ := ParseEthernet(frame)
	ip, _ := ParseIPv4(frame[eth.HeaderLen:])
	l4 := frame[eth.HeaderLen+ip.HeaderLen:]
	if !VerifyL4Checksum(ip.Src, ip.Dst, IPProtoTCP, l4) {
		t.Fatal("builder TCP checksum invalid")
	}
}

func TestBuilderBadChecksum(t *testing.T) {
	frame := NewBuilder().Eth(macA, macB).IPv4H(ipA, ipB, 64).UDPH(1, 2).PayloadLen(8).BadL4Checksum().Build()
	eth, _ := ParseEthernet(frame)
	ip, _ := ParseIPv4(frame[eth.HeaderLen:])
	l4 := frame[eth.HeaderLen+ip.HeaderLen:]
	if VerifyL4Checksum(ip.Src, ip.Dst, IPProtoUDP, l4) {
		t.Fatal("BadL4Checksum frame must not validate")
	}
}

func TestGeneveEncapDecap(t *testing.T) {
	inner := NewBuilder().Eth(macA, macB).IPv4H(ipA, ipB, 64).UDPH(5, 6).PayloadLen(32).Build()
	outer := EncapGeneve(inner, macB, macA, MakeIP4(192, 168, 0, 1), MakeIP4(192, 168, 0, 2), 33333, 4097, nil)
	got, vni, err := DecapGeneve(outer)
	if err != nil {
		t.Fatal(err)
	}
	if vni != 4097 {
		t.Fatalf("vni = %d", vni)
	}
	if !bytes.Equal(got, inner) {
		t.Fatal("decap did not recover the inner frame")
	}
	// Outer UDP checksum must validate.
	eth, _ := ParseEthernet(outer)
	ip, _ := ParseIPv4(outer[eth.HeaderLen:])
	if !VerifyL4Checksum(ip.Src, ip.Dst, IPProtoUDP, outer[eth.HeaderLen+ip.HeaderLen:]) {
		t.Fatal("outer UDP checksum invalid")
	}
}

func TestGeneveEncapWithOptions(t *testing.T) {
	inner := NewBuilder().Eth(macA, macB).IPv4H(ipA, ipB, 64).UDPH(5, 6).PayloadLen(4).Build()
	opts := []GeneveOption{{Class: 0x0104, Type: 0x80, Data: []byte{0, 0, 0, 42}}}
	outer := EncapGeneve(inner, macB, macA, ipA, ipB, 1, 7, opts)
	eth, _ := ParseEthernet(outer)
	ip, _ := ParseIPv4(outer[eth.HeaderLen:])
	g, err := ParseGeneve(outer[eth.HeaderLen+ip.HeaderLen+UDPSize:])
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Options) != 1 || g.Options[0].Data[3] != 42 {
		t.Fatalf("options lost: %+v", g.Options)
	}
}

func TestDecapGeneveRejectsNonTunnel(t *testing.T) {
	plain := NewBuilder().Eth(macA, macB).IPv4H(ipA, ipB, 64).UDPH(1, 2).PayloadLen(4).Build()
	if _, _, err := DecapGeneve(plain); err == nil {
		t.Fatal("plain UDP frame must not decap")
	}
	arp := NewBuilder().Eth(macA, Broadcast).ARPH(ARPRequest, macA, ipA, MAC{}, ipB).Build()
	if _, _, err := DecapGeneve(arp); err == nil {
		t.Fatal("ARP frame must not decap")
	}
}

func TestStringFormats(t *testing.T) {
	if ipA.String() != "10.0.0.1" {
		t.Fatalf("IP4 string = %s", ipA)
	}
	if macA.String() != "02:00:00:00:00:0a" {
		t.Fatalf("MAC string = %s", macA)
	}
	if EtherTypeIPv4.String() != "ipv4" || EtherType(0x1234).String() != "0x1234" {
		t.Fatal("EtherType strings wrong")
	}
	if IPProtoTCP.String() != "tcp" || IPProto(200).String() != "proto-200" {
		t.Fatal("IPProto strings wrong")
	}
	var v6 IP6
	v6[0], v6[15] = 0x20, 0x01
	if v6.String() == "" {
		t.Fatal("IP6 string empty")
	}
}

func FuzzParseRobustness(f *testing.F) {
	f.Add(NewBuilder().Eth(macA, macB).IPv4H(ipA, ipB, 64).UDPH(1, 2).PayloadLen(10).Build())
	f.Add([]byte{})
	f.Add(make([]byte, 13))
	f.Fuzz(func(t *testing.T, data []byte) {
		// No parser may panic on arbitrary input.
		if e, err := ParseEthernet(data); err == nil {
			rest := data[e.HeaderLen:]
			switch e.Type {
			case EtherTypeIPv4:
				if ip, err := ParseIPv4(rest); err == nil {
					l4 := rest[ip.HeaderLen:]
					switch ip.Proto {
					case IPProtoTCP:
						ParseTCP(l4)
					case IPProtoUDP:
						if u, err := ParseUDP(l4); err == nil && u.DstPort == GenevePort {
							ParseGeneve(l4[UDPSize:])
						}
					case IPProtoICMP:
						ParseICMP(l4)
					case IPProtoGRE:
						ParseGRE(l4)
					}
				}
			case EtherTypeIPv6:
				ParseIPv6(rest)
			case EtherTypeARP:
				ParseARP(rest)
			}
		}
	})
}
