package hdr

import "encoding/binary"

// Checksum computes the RFC 1071 Internet checksum of b: the one's
// complement of the one's-complement sum of 16-bit words. A trailing odd
// byte is padded with zero.
func Checksum(b []byte) uint16 {
	return finish(sum16(b, 0))
}

// sum16 accumulates the one's-complement sum of b into acc.
func sum16(b []byte, acc uint32) uint32 {
	n := len(b)
	for i := 0; i+1 < n; i += 2 {
		acc += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	if n%2 == 1 {
		acc += uint32(b[n-1]) << 8
	}
	return acc
}

// finish folds the carries and complements the sum.
func finish(acc uint32) uint16 {
	for acc > 0xffff {
		acc = (acc >> 16) + (acc & 0xffff)
	}
	return ^uint16(acc)
}

// pseudoHeaderSum computes the IPv4 pseudo-header contribution for TCP/UDP
// checksums.
func pseudoHeaderSum(src, dst IP4, proto IPProto, l4len int) uint32 {
	var acc uint32
	acc += uint32(src >> 16)
	acc += uint32(src & 0xffff)
	acc += uint32(dst >> 16)
	acc += uint32(dst & 0xffff)
	acc += uint32(proto)
	acc += uint32(l4len)
	return acc
}

// L4Checksum computes the TCP or UDP checksum over l4 (header plus payload,
// with the checksum field zeroed) using the IPv4 pseudo header.
func L4Checksum(src, dst IP4, proto IPProto, l4 []byte) uint16 {
	c := finish(sum16(l4, pseudoHeaderSum(src, dst, proto, len(l4))))
	// Per RFC 768, a computed UDP checksum of zero is transmitted as
	// all-ones.
	if c == 0 && proto == IPProtoUDP {
		c = 0xffff
	}
	return c
}

// VerifyL4Checksum reports whether l4's embedded checksum validates against
// the pseudo header. A UDP checksum of zero means "not computed" and is
// accepted.
func VerifyL4Checksum(src, dst IP4, proto IPProto, l4 []byte) bool {
	switch proto {
	case IPProtoUDP:
		if len(l4) >= UDPSize && binary.BigEndian.Uint16(l4[6:8]) == 0 {
			return true
		}
	case IPProtoTCP:
	default:
		return true
	}
	acc := sum16(l4, pseudoHeaderSum(src, dst, proto, len(l4)))
	return finish(acc) == 0
}

// PutTCPChecksum fills in the checksum field of a serialized TCP segment l4
// (header + payload) in place.
func PutTCPChecksum(src, dst IP4, l4 []byte) {
	l4[16], l4[17] = 0, 0
	binary.BigEndian.PutUint16(l4[16:18], L4Checksum(src, dst, IPProtoTCP, l4))
}

// PutUDPChecksum fills in the checksum field of a serialized UDP datagram l4
// (header + payload) in place.
func PutUDPChecksum(src, dst IP4, l4 []byte) {
	l4[6], l4[7] = 0, 0
	binary.BigEndian.PutUint16(l4[6:8], L4Checksum(src, dst, IPProtoUDP, l4))
}
