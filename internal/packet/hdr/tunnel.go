package hdr

import "encoding/binary"

// Well-known tunnel UDP ports.
const (
	GenevePort = 6081
	VXLANPort  = 4789
)

// Geneve is a decoded Geneve header (RFC 8926), the encapsulation NSX uses.
type Geneve struct {
	VNI       uint32 // 24-bit virtual network identifier
	Protocol  EtherType
	OAM       bool
	Critical  bool
	Options   []GeneveOption
	HeaderLen int
}

// GeneveOption is one TLV option carried in a Geneve header. NSX uses an
// option to carry its virtual-network context.
type GeneveOption struct {
	Class uint16
	Type  uint8
	Data  []byte // length must be a multiple of 4, at most 124 bytes
}

// ParseGeneve decodes a Geneve header from b.
func ParseGeneve(b []byte) (Geneve, error) {
	var g Geneve
	if len(b) < GeneveMinSize {
		return g, ErrTruncated{"geneve", GeneveMinSize, len(b)}
	}
	if ver := b[0] >> 6; ver != 0 {
		return g, ErrMalformed{"geneve", "unsupported version"}
	}
	optLen := int(b[0]&0x3f) * 4
	g.OAM = b[1]&0x80 != 0
	g.Critical = b[1]&0x40 != 0
	g.Protocol = EtherType(binary.BigEndian.Uint16(b[2:4]))
	g.VNI = binary.BigEndian.Uint32(b[4:8]) >> 8
	g.HeaderLen = GeneveMinSize + optLen
	if len(b) < g.HeaderLen {
		return g, ErrTruncated{"geneve options", g.HeaderLen, len(b)}
	}
	opts := b[GeneveMinSize:g.HeaderLen]
	for len(opts) >= 4 {
		var o GeneveOption
		o.Class = binary.BigEndian.Uint16(opts[0:2])
		o.Type = opts[2]
		dataLen := int(opts[3]&0x1f) * 4
		if len(opts) < 4+dataLen {
			return g, ErrMalformed{"geneve", "option data overruns header"}
		}
		o.Data = opts[4 : 4+dataLen]
		g.Options = append(g.Options, o)
		opts = opts[4+dataLen:]
	}
	return g, nil
}

// SerializedLen returns the encoded length including options.
func (g *Geneve) SerializedLen() int {
	n := GeneveMinSize
	for _, o := range g.Options {
		n += 4 + len(o.Data)
	}
	return n
}

// SerializeTo writes the Geneve header into b and returns the bytes written.
func (g *Geneve) SerializeTo(b []byte) int {
	n := g.SerializedLen()
	_ = b[n-1]
	optLen := (n - GeneveMinSize) / 4
	b[0] = byte(optLen & 0x3f)
	b[1] = 0
	if g.OAM {
		b[1] |= 0x80
	}
	if g.Critical {
		b[1] |= 0x40
	}
	binary.BigEndian.PutUint16(b[2:4], uint16(g.Protocol))
	binary.BigEndian.PutUint32(b[4:8], g.VNI<<8)
	off := GeneveMinSize
	for _, o := range g.Options {
		binary.BigEndian.PutUint16(b[off:], o.Class)
		b[off+2] = o.Type
		b[off+3] = byte(len(o.Data) / 4)
		copy(b[off+4:], o.Data)
		off += 4 + len(o.Data)
	}
	return n
}

// VXLAN is a decoded VXLAN header (RFC 7348).
type VXLAN struct {
	VNI uint32 // 24-bit
}

// ParseVXLAN decodes a VXLAN header from b.
func ParseVXLAN(b []byte) (VXLAN, error) {
	var v VXLAN
	if len(b) < VXLANSize {
		return v, ErrTruncated{"vxlan", VXLANSize, len(b)}
	}
	if b[0]&0x08 == 0 {
		return v, ErrMalformed{"vxlan", "I flag not set"}
	}
	v.VNI = binary.BigEndian.Uint32(b[4:8]) >> 8
	return v, nil
}

// SerializeTo writes the VXLAN header into b and returns the bytes written.
func (v *VXLAN) SerializeTo(b []byte) int {
	_ = b[VXLANSize-1]
	b[0], b[1], b[2], b[3] = 0x08, 0, 0, 0
	binary.BigEndian.PutUint32(b[4:8], v.VNI<<8)
	return VXLANSize
}

// GRE is a decoded GRE header (RFC 2784/2890), with the key extension used
// by ERSPAN and NVGRE-style tunnels.
type GRE struct {
	Protocol  EtherType
	HasKey    bool
	Key       uint32
	HasSeq    bool
	Seq       uint32
	HeaderLen int
}

// ParseGRE decodes a GRE header from b.
func ParseGRE(b []byte) (GRE, error) {
	var g GRE
	if len(b) < GREMinSize {
		return g, ErrTruncated{"gre", GREMinSize, len(b)}
	}
	flags := b[0]
	if b[0]&0x07 != 0 || b[1]&0xf8 != 0 {
		// Reserved bits or version != 0.
		if b[1]&0x07 != 0 {
			return g, ErrMalformed{"gre", "unsupported version"}
		}
	}
	g.Protocol = EtherType(binary.BigEndian.Uint16(b[2:4]))
	off := GREMinSize
	if flags&0x80 != 0 { // checksum present
		off += 4
	}
	if flags&0x20 != 0 { // key present
		if len(b) < off+4 {
			return g, ErrTruncated{"gre key", off + 4, len(b)}
		}
		g.HasKey = true
		g.Key = binary.BigEndian.Uint32(b[off:])
		off += 4
	}
	if flags&0x10 != 0 { // sequence present
		if len(b) < off+4 {
			return g, ErrTruncated{"gre seq", off + 4, len(b)}
		}
		g.HasSeq = true
		g.Seq = binary.BigEndian.Uint32(b[off:])
		off += 4
	}
	if len(b) < off {
		return g, ErrTruncated{"gre", off, len(b)}
	}
	g.HeaderLen = off
	return g, nil
}

// SerializedLen returns the encoded header length.
func (g *GRE) SerializedLen() int {
	n := GREMinSize
	if g.HasKey {
		n += 4
	}
	if g.HasSeq {
		n += 4
	}
	return n
}

// SerializeTo writes the GRE header into b and returns the bytes written.
func (g *GRE) SerializeTo(b []byte) int {
	n := g.SerializedLen()
	_ = b[n-1]
	b[0], b[1] = 0, 0
	if g.HasKey {
		b[0] |= 0x20
	}
	if g.HasSeq {
		b[0] |= 0x10
	}
	binary.BigEndian.PutUint16(b[2:4], uint16(g.Protocol))
	off := GREMinSize
	if g.HasKey {
		binary.BigEndian.PutUint32(b[off:], g.Key)
		off += 4
	}
	if g.HasSeq {
		binary.BigEndian.PutUint32(b[off:], g.Seq)
	}
	return n
}

// EtherTypeTransparentEtherBridging is the GRE protocol for encapsulated
// Ethernet frames (used by NVGRE-style tunnels).
const EtherTypeTransparentEtherBridging EtherType = 0x6558

// EtherTypeERSPAN is the GRE protocol value for ERSPAN type II sessions.
const EtherTypeERSPAN EtherType = 0x88be
