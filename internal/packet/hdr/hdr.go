// Package hdr implements byte-level parsing and serialization for the
// protocol headers the OVS datapath handles: Ethernet, 802.1Q VLAN, ARP,
// IPv4, IPv6, TCP, UDP, ICMP, and the Geneve/VXLAN/GRE tunnel encapsulations
// the paper's NSX deployment uses.
//
// The design follows the layer conventions of gopacket: each header type has
// a Parse function that decodes from a byte slice without copying, a
// SerializeTo method that writes network byte order, and a fixed LayerType.
// A zero-allocation single-pass decoder for the datapath fast path lives in
// package flow; this package is the canonical, fully-featured codec used by
// the slow path, the traffic generators, and the tests.
package hdr

import (
	"encoding/binary"
	"fmt"
)

// EtherType identifies the payload protocol of an Ethernet frame.
type EtherType uint16

// EtherTypes handled by the datapath.
const (
	EtherTypeIPv4 EtherType = 0x0800
	EtherTypeARP  EtherType = 0x0806
	EtherTypeVLAN EtherType = 0x8100
	EtherTypeIPv6 EtherType = 0x86dd
)

// String returns the conventional name of the EtherType.
func (t EtherType) String() string {
	switch t {
	case EtherTypeIPv4:
		return "ipv4"
	case EtherTypeARP:
		return "arp"
	case EtherTypeVLAN:
		return "vlan"
	case EtherTypeIPv6:
		return "ipv6"
	default:
		return fmt.Sprintf("0x%04x", uint16(t))
	}
}

// IPProto identifies the transport protocol of an IP packet.
type IPProto uint8

// IP protocol numbers handled by the datapath.
const (
	IPProtoICMP   IPProto = 1
	IPProtoTCP    IPProto = 6
	IPProtoUDP    IPProto = 17
	IPProtoGRE    IPProto = 47
	IPProtoICMPv6 IPProto = 58
)

// String returns the conventional name of the protocol.
func (p IPProto) String() string {
	switch p {
	case IPProtoICMP:
		return "icmp"
	case IPProtoTCP:
		return "tcp"
	case IPProtoUDP:
		return "udp"
	case IPProtoGRE:
		return "gre"
	case IPProtoICMPv6:
		return "icmpv6"
	default:
		return fmt.Sprintf("proto-%d", uint8(p))
	}
}

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// Broadcast is the all-ones Ethernet address.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// String formats the address in the usual colon-separated hex form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether the address is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == Broadcast }

// IsMulticast reports whether the address has the group bit set.
func (m MAC) IsMulticast() bool { return m[0]&1 == 1 }

// IP4 is an IPv4 address in network byte order.
type IP4 uint32

// MakeIP4 builds an address from its dotted-quad octets.
func MakeIP4(a, b, c, d byte) IP4 {
	return IP4(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// String formats the address in dotted-quad form.
func (ip IP4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// IP6 is an IPv6 address.
type IP6 [16]byte

// String formats the address as colon-separated hex groups (no zero
// compression; this is a diagnostic format).
func (ip IP6) String() string {
	var s string
	for i := 0; i < 16; i += 2 {
		if i > 0 {
			s += ":"
		}
		s += fmt.Sprintf("%x", binary.BigEndian.Uint16(ip[i:]))
	}
	return s
}

// Sizes of fixed-length headers in bytes.
const (
	EthernetSize   = 14
	VLANSize       = 4
	ARPSize        = 28
	IPv4MinSize    = 20
	IPv6Size       = 40
	TCPMinSize     = 20
	UDPSize        = 8
	ICMPSize       = 8
	VXLANSize      = 8
	GeneveMinSize  = 8
	GREMinSize     = 4
	MaxFrameSize   = 65535
	StandardMTU    = 1500
	MaxEthernetMTU = 9000
)

// ErrTruncated is returned when a buffer is too short for the header being
// parsed.
type ErrTruncated struct {
	Layer string
	Need  int
	Have  int
}

func (e ErrTruncated) Error() string {
	return fmt.Sprintf("hdr: truncated %s header: need %d bytes, have %d", e.Layer, e.Need, e.Have)
}

// ErrMalformed is returned when a header's fields are internally
// inconsistent (bad version, bad length field, ...).
type ErrMalformed struct {
	Layer  string
	Reason string
}

func (e ErrMalformed) Error() string {
	return fmt.Sprintf("hdr: malformed %s header: %s", e.Layer, e.Reason)
}
