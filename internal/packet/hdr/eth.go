package hdr

import "encoding/binary"

// Ethernet is a decoded Ethernet II header, optionally with one 802.1Q tag.
type Ethernet struct {
	Dst       MAC
	Src       MAC
	Type      EtherType
	HasVLAN   bool
	VLANID    uint16 // 12-bit VID
	VLANPrio  uint8  // 3-bit PCP
	HeaderLen int    // 14 or 18 depending on the VLAN tag
}

// ParseEthernet decodes an Ethernet header (and at most one VLAN tag) from
// the front of b.
func ParseEthernet(b []byte) (Ethernet, error) {
	var e Ethernet
	if len(b) < EthernetSize {
		return e, ErrTruncated{"ethernet", EthernetSize, len(b)}
	}
	copy(e.Dst[:], b[0:6])
	copy(e.Src[:], b[6:12])
	e.Type = EtherType(binary.BigEndian.Uint16(b[12:14]))
	e.HeaderLen = EthernetSize
	if e.Type == EtherTypeVLAN {
		if len(b) < EthernetSize+VLANSize {
			return e, ErrTruncated{"vlan", EthernetSize + VLANSize, len(b)}
		}
		tci := binary.BigEndian.Uint16(b[14:16])
		e.HasVLAN = true
		e.VLANPrio = uint8(tci >> 13)
		e.VLANID = tci & 0x0fff
		e.Type = EtherType(binary.BigEndian.Uint16(b[16:18]))
		e.HeaderLen = EthernetSize + VLANSize
	}
	return e, nil
}

// SerializedLen returns the number of bytes SerializeTo writes.
func (e *Ethernet) SerializedLen() int {
	if e.HasVLAN {
		return EthernetSize + VLANSize
	}
	return EthernetSize
}

// SerializeTo writes the header into b, which must have room for
// SerializedLen bytes, and returns the bytes written.
func (e *Ethernet) SerializeTo(b []byte) int {
	n := e.SerializedLen()
	_ = b[n-1]
	copy(b[0:6], e.Dst[:])
	copy(b[6:12], e.Src[:])
	if e.HasVLAN {
		binary.BigEndian.PutUint16(b[12:14], uint16(EtherTypeVLAN))
		tci := uint16(e.VLANPrio)<<13 | e.VLANID&0x0fff
		binary.BigEndian.PutUint16(b[14:16], tci)
		binary.BigEndian.PutUint16(b[16:18], uint16(e.Type))
	} else {
		binary.BigEndian.PutUint16(b[12:14], uint16(e.Type))
	}
	return n
}

// PushVLAN inserts an 802.1Q tag into frame (in place via copy into a new
// slice) and returns the tagged frame. The frame must start with an untagged
// Ethernet header.
func PushVLAN(frame []byte, vid uint16, prio uint8) []byte {
	out := make([]byte, len(frame)+VLANSize)
	copy(out, frame[:12])
	binary.BigEndian.PutUint16(out[12:14], uint16(EtherTypeVLAN))
	binary.BigEndian.PutUint16(out[14:16], uint16(prio)<<13|vid&0x0fff)
	copy(out[16:], frame[12:])
	return out
}

// PopVLAN removes the outermost 802.1Q tag and returns the untagged frame.
// If the frame has no tag it is returned unchanged.
func PopVLAN(frame []byte) []byte {
	if len(frame) < EthernetSize+VLANSize ||
		EtherType(binary.BigEndian.Uint16(frame[12:14])) != EtherTypeVLAN {
		return frame
	}
	out := make([]byte, len(frame)-VLANSize)
	copy(out, frame[:12])
	copy(out[12:], frame[16:])
	return out
}

// ARP is a decoded IPv4-over-Ethernet ARP message.
type ARP struct {
	Op        uint16 // 1 request, 2 reply
	SenderMAC MAC
	SenderIP  IP4
	TargetMAC MAC
	TargetIP  IP4
}

// ARP opcodes.
const (
	ARPRequest = 1
	ARPReply   = 2
)

// ParseARP decodes an ARP message from b.
func ParseARP(b []byte) (ARP, error) {
	var a ARP
	if len(b) < ARPSize {
		return a, ErrTruncated{"arp", ARPSize, len(b)}
	}
	if binary.BigEndian.Uint16(b[0:2]) != 1 || // Ethernet hardware space
		EtherType(binary.BigEndian.Uint16(b[2:4])) != EtherTypeIPv4 ||
		b[4] != 6 || b[5] != 4 {
		return a, ErrMalformed{"arp", "not IPv4-over-Ethernet"}
	}
	a.Op = binary.BigEndian.Uint16(b[6:8])
	copy(a.SenderMAC[:], b[8:14])
	a.SenderIP = IP4(binary.BigEndian.Uint32(b[14:18]))
	copy(a.TargetMAC[:], b[18:24])
	a.TargetIP = IP4(binary.BigEndian.Uint32(b[24:28]))
	return a, nil
}

// SerializeTo writes the ARP message into b (at least ARPSize bytes) and
// returns the bytes written.
func (a *ARP) SerializeTo(b []byte) int {
	_ = b[ARPSize-1]
	binary.BigEndian.PutUint16(b[0:2], 1)
	binary.BigEndian.PutUint16(b[2:4], uint16(EtherTypeIPv4))
	b[4], b[5] = 6, 4
	binary.BigEndian.PutUint16(b[6:8], a.Op)
	copy(b[8:14], a.SenderMAC[:])
	binary.BigEndian.PutUint32(b[14:18], uint32(a.SenderIP))
	copy(b[18:24], a.TargetMAC[:])
	binary.BigEndian.PutUint32(b[24:28], uint32(a.TargetIP))
	return ARPSize
}
