// Package packet provides the datapath's packet representation: the
// dp_packet analog from OVS, with the metadata fields Section 3.2 describes
// (input port, L3/L4 header offsets, the NIC-supplied RSS hash) plus the
// offload and conntrack state the pipeline threads through processing.
//
// It also implements the pre-allocated metadata pool of optimization O4:
// "we pre-allocated packet metadata in a contiguous array and pre-initialized
// their packet-independent fields."
package packet

import (
	"fmt"

	"ovsxdp/internal/packet/hdr"
)

// OffloadFlags describe hardware offload state attached to a packet, the
// checksum/TSO machinery of Sections 3.2 (O5) and 5.1.
type OffloadFlags uint8

// Offload flag bits.
const (
	// CsumVerified means the NIC (or a trusted internal hop) already
	// validated the L4 checksum; receive-side software checksumming can
	// be skipped.
	CsumVerified OffloadFlags = 1 << iota
	// CsumPartial means the L4 checksum has not been computed and must
	// be filled in by hardware at transmit (or software at the last
	// moment when the egress device lacks the offload).
	CsumPartial
	// TSO marks an oversized TCP segment that hardware (or the last
	// software hop) must segment to MSS-sized frames.
	TSO
)

// CtStateFlags is the conntrack state bitmap the datapath matches on
// (a subset of OVS's ct_state).
type CtStateFlags uint8

// Conntrack state bits.
const (
	CtTracked CtStateFlags = 1 << iota
	CtNew
	CtEstablished
	CtRelated
	CtReply
	CtInvalid
)

// String formats the state like OVS flow dumps (e.g. "trk,est").
func (s CtStateFlags) String() string {
	if s == 0 {
		return "-"
	}
	names := []struct {
		bit  CtStateFlags
		name string
	}{
		{CtTracked, "trk"}, {CtNew, "new"}, {CtEstablished, "est"},
		{CtRelated, "rel"}, {CtReply, "rpl"}, {CtInvalid, "inv"},
	}
	out := ""
	for _, n := range names {
		if s&n.bit != 0 {
			if out != "" {
				out += ","
			}
			out += n.name
		}
	}
	return out
}

// Metadata is the per-packet state OVS keeps in dp_packet plus the pkt
// metadata of the datapath (md). It is packet-independent-initializable:
// Reset restores the zero state without losing the buffer.
type Metadata struct {
	// InPort is the datapath port the packet arrived on.
	InPort uint32
	// RecircID is the recirculation context; 0 means the first pass.
	RecircID uint32
	// RSSHash is the 5-tuple hash, either supplied by NIC hardware or
	// computed in software (Section 5.5 notes XDP cannot yet access the
	// hardware hash).
	RSSHash uint32
	// HasRSSHash records whether RSSHash is valid.
	HasRSSHash bool
	// Offloads carries checksum/TSO state.
	Offloads OffloadFlags
	// L3Offset and L4Offset are byte offsets of the network and
	// transport headers within Data, or -1 when unset.
	L3Offset int
	L4Offset int
	// Conntrack state attached by the ct() action.
	CtState CtStateFlags
	CtZone  uint16
	CtMark  uint32
	// Tunnel carries decapsulated-tunnel metadata (outer addresses and
	// VNI) between pipeline stages, or nil when the packet is native.
	Tunnel *TunnelInfo
	// SegSize is the TSO segment size for oversized segments (0 when
	// not segmented).
	SegSize int
}

// TunnelInfo mirrors OVS flow tunnel metadata for Geneve/VXLAN/GRE.
type TunnelInfo struct {
	SrcIP   hdr.IP4
	DstIP   hdr.IP4
	VNI     uint32
	Flags   uint8
	OptData []byte // Geneve option payload, if any
}

// Packet is one frame moving through the datapath.
type Packet struct {
	Metadata
	// Data is the frame, starting at the Ethernet header.
	Data []byte
	// pool links the packet back to its owning pool for Release.
	pool *Pool
	// pooled marks packets that live in the pool's contiguous backing
	// array (as opposed to heap-allocated overflow packets).
	pooled bool
	// inFree guards against double-release.
	inFree bool
}

// New allocates a standalone packet (no pool) around data.
func New(data []byte) *Packet {
	p := &Packet{Data: data}
	p.Metadata.L3Offset = -1
	p.Metadata.L4Offset = -1
	return p
}

// Len returns the frame length in bytes.
func (p *Packet) Len() int { return len(p.Data) }

// ResetMetadata restores packet-independent defaults, keeping the buffer.
func (p *Packet) ResetMetadata() {
	pool := p.pool
	p.Metadata = Metadata{L3Offset: -1, L4Offset: -1}
	p.pool = pool
}

// Clone returns a deep copy with no pool affiliation.
func (p *Packet) Clone() *Packet {
	c := New(append([]byte(nil), p.Data...))
	c.Metadata = p.Metadata
	if p.Tunnel != nil {
		t := *p.Tunnel
		c.Tunnel = &t
	}
	c.pool = nil
	return c
}

// Release returns a pooled packet to its pool; for standalone packets it is
// a no-op.
func (p *Packet) Release() {
	if p.pool != nil {
		p.pool.put(p)
	}
}

// String summarizes the packet for diagnostics.
func (p *Packet) String() string {
	return fmt.Sprintf("packet{len=%d in_port=%d recirc=%d ct=%s}",
		len(p.Data), p.InPort, p.RecircID, p.CtState)
}

// Batch is a group of packets processed together, NETDEV_MAX_BURST style.
// The datapath fetches up to cap(Pkts) descriptors per poll.
type Batch struct {
	Pkts []*Packet
}

// NewBatch returns a batch with capacity n.
func NewBatch(n int) *Batch { return &Batch{Pkts: make([]*Packet, 0, n)} }

// Add appends a packet; it panics when the batch is full (caller bug).
func (b *Batch) Add(p *Packet) {
	if len(b.Pkts) == cap(b.Pkts) {
		panic("packet: batch overflow")
	}
	b.Pkts = append(b.Pkts, p)
}

// Len returns the number of packets in the batch.
func (b *Batch) Len() int { return len(b.Pkts) }

// Clear empties the batch, retaining capacity.
func (b *Batch) Clear() { b.Pkts = b.Pkts[:0] }

// Full reports whether the batch is at capacity.
func (b *Batch) Full() bool { return len(b.Pkts) == cap(b.Pkts) }

// Pool is the pre-allocated packet-metadata pool of optimization O4. All
// Packet structs live in one contiguous array with packet-independent fields
// pre-initialized, so acquiring a packet costs an index bump rather than an
// allocation, and metadata accesses have good cache locality.
//
// When Preallocated is false the pool simulates the pre-O4 behaviour by
// allocating each Packet individually (the mmap-per-allocation cost is
// charged by the datapath's cost model, not here; this flag exists so the
// code path difference is real).
type Pool struct {
	backing []Packet
	free    []*Packet
	// Preallocated selects the O4 code path.
	Preallocated bool
	// Allocs counts packet acquisitions that fell back to the heap.
	Allocs uint64
}

// NewPool builds a pool of n packets with bufSize-byte buffers.
// preallocated selects the O4 contiguous-array behaviour.
func NewPool(n, bufSize int, preallocated bool) *Pool {
	p := &Pool{Preallocated: preallocated}
	if preallocated {
		p.backing = make([]Packet, n)
		buffers := make([]byte, n*bufSize)
		p.free = make([]*Packet, n)
		for i := range p.backing {
			pkt := &p.backing[i]
			pkt.Data = buffers[i*bufSize : i*bufSize : (i+1)*bufSize]
			pkt.Metadata = Metadata{L3Offset: -1, L4Offset: -1}
			pkt.pool = p
			pkt.pooled = true
			p.free[i] = pkt
		}
	}
	return p
}

// Get acquires a packet and sets its Data to a copy-free slice of buf if
// pooled (the caller hands ownership of buf) or wraps buf directly.
func (p *Pool) Get(buf []byte) *Packet {
	if p.Preallocated && len(p.free) > 0 {
		pkt := p.free[len(p.free)-1]
		p.free = p.free[:len(p.free)-1]
		pkt.inFree = false
		pkt.ResetMetadata()
		if cap(pkt.Data) >= len(buf) {
			pkt.Data = pkt.Data[:len(buf)]
			copy(pkt.Data, buf)
		} else {
			pkt.Data = buf
		}
		return pkt
	}
	p.Allocs++
	pkt := New(buf)
	pkt.pool = p
	return pkt
}

// GetCopy acquires a packet whose Data is always a private copy of buf,
// including on the heap-fallback path. Use it when buf is owned by the
// caller and reused afterwards (a umem chunk about to be recycled, a
// generator's frame template) — plain Get would alias it.
func (p *Pool) GetCopy(buf []byte) *Packet {
	if p.Preallocated && len(p.free) > 0 {
		pkt := p.free[len(p.free)-1]
		p.free = p.free[:len(p.free)-1]
		pkt.inFree = false
		pkt.ResetMetadata()
		if cap(pkt.Data) >= len(buf) {
			pkt.Data = pkt.Data[:len(buf)]
		} else {
			pkt.Data = make([]byte, len(buf))
		}
		copy(pkt.Data, buf)
		return pkt
	}
	p.Allocs++
	pkt := New(append(make([]byte, 0, len(buf)), buf...))
	pkt.pool = p
	return pkt
}

// put returns a packet to the free list (only pool-backed packets;
// heap-allocated overflow packets are left for the GC).
func (p *Pool) put(pkt *Packet) {
	if pkt.pooled && !pkt.inFree {
		pkt.inFree = true
		p.free = append(p.free, pkt)
	}
}

// Available returns the number of pooled packets currently free.
func (p *Pool) Available() int { return len(p.free) }
