// Package xdp implements the XDP hook runtime: the attachment point in each
// NIC driver where a verified eBPF program inspects every received packet
// before the kernel allocates any socket buffer (paper Section 3.1).
//
// Two vendor attachment models are implemented, following Figure 6:
//
//   - ModelAllQueues (Intel): one program sees every queue's traffic.
//   - ModelPerQueue (Mellanox): programs attach to individual receive
//     queues; hardware ntuple steering decides which queue (and therefore
//     which program) sees a packet.
//
// The package also carries the paper's program library: the minimal
// pass-everything-to-AF_XDP program OVS installs, the Table 5 benchmark
// tasks A-D, the container veth-redirect program (Figure 5 path C), and the
// Section 3.5 L4 load-balancer example.
package xdp

import (
	"fmt"

	"ovsxdp/internal/costmodel"
	"ovsxdp/internal/ebpf"
	"ovsxdp/internal/sim"
)

// AttachModel selects the vendor attachment style of Figure 6.
type AttachModel int

// Attachment models.
const (
	// ModelAllQueues attaches one program for the whole device (Intel).
	ModelAllQueues AttachModel = iota
	// ModelPerQueue attaches programs to chosen queues (Mellanox).
	ModelPerQueue
)

// String names the model.
func (m AttachModel) String() string {
	if m == ModelAllQueues {
		return "all-queues"
	}
	return "per-queue"
}

// Mode is the driver execution mode: native driver support or the
// universal-but-slower generic (skb) fallback the paper mentions for NICs
// without full AF_XDP support.
type Mode int

// Execution modes.
const (
	ModeDriver  Mode = iota // XDP_DRV: run before skb allocation
	ModeGeneric             // XDP_SKB: after skb allocation, extra copy
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeDriver {
		return "driver"
	}
	return "generic"
}

// Hook is a device's XDP attachment point.
type Hook struct {
	model    AttachModel
	mode     Mode
	global   *ebpf.Program
	perQueue map[int]*ebpf.Program

	// ctx is reused across Run calls; Program.Run does not retain it, so a
	// single context per hook avoids a per-packet allocation.
	ctx ebpf.Context
}

// NewHook returns a hook with the given attachment model and mode.
func NewHook(model AttachModel, mode Mode) *Hook {
	return &Hook{model: model, mode: mode, perQueue: make(map[int]*ebpf.Program)}
}

// Model returns the attachment model.
func (h *Hook) Model() AttachModel { return h.model }

// Mode returns the execution mode.
func (h *Hook) Mode() Mode { return h.mode }

// Attach installs prog for all queues. The program must have passed the
// verifier (Load), mirroring the kernel's refusal to attach unverified
// bytecode.
func (h *Hook) Attach(prog *ebpf.Program) error {
	if prog != nil && !prog.Verified() {
		return fmt.Errorf("xdp: program %q has not passed the verifier", prog.Name)
	}
	h.global = prog
	return nil
}

// AttachQueue installs prog for one receive queue. Only the per-queue model
// supports this (Figure 6b).
func (h *Hook) AttachQueue(queue int, prog *ebpf.Program) error {
	if h.model != ModelPerQueue {
		return fmt.Errorf("xdp: %s attachment does not support per-queue programs", h.model)
	}
	if prog != nil && !prog.Verified() {
		return fmt.Errorf("xdp: program %q has not passed the verifier", prog.Name)
	}
	if prog == nil {
		delete(h.perQueue, queue)
	} else {
		h.perQueue[queue] = prog
	}
	return nil
}

// Detach removes all programs.
func (h *Hook) Detach() {
	h.global = nil
	h.perQueue = make(map[int]*ebpf.Program)
}

// ProgramFor returns the program that applies to a packet arriving on
// queue, or nil if none is attached (packet goes to the network stack).
func (h *Hook) ProgramFor(queue int) *ebpf.Program {
	if h.model == ModelPerQueue {
		if p, ok := h.perQueue[queue]; ok {
			return p
		}
		// In the per-queue model, queues without a program bypass XDP
		// (Figure 6b: queues 1-2 feed the network stack directly).
		return nil
	}
	return h.global
}

// HasProgram reports whether any program is attached.
func (h *Hook) HasProgram() bool {
	return h.global != nil || len(h.perQueue) > 0
}

// Run executes the applicable program on a packet arriving at queue. It
// returns the program result and the softirq-context cost of running it.
// When no program applies, it returns a pass verdict at zero cost.
func (h *Hook) Run(queue int, pkt []byte, ifindex uint32) (ebpf.Result, sim.Time, error) {
	prog := h.ProgramFor(queue)
	if prog == nil {
		return ebpf.Result{Action: ebpf.XDPPass}, 0, nil
	}
	h.ctx = ebpf.Context{Packet: pkt, IngressIface: ifindex, RxQueue: uint32(queue)}
	res, err := prog.Run(&h.ctx)
	h.ctx.Packet = nil // do not pin the frame past the run
	if err != nil {
		return res, 0, err
	}
	cost := ExecCost(res)
	if h.mode == ModeGeneric {
		// Generic mode runs after skb allocation and pays an extra
		// copy ("a fallback mode that works universally at the cost of
		// an extra packet copy").
		cost += costmodel.SkbAlloc + costmodel.CopyCost(len(pkt))
	}
	return res, cost, nil
}

// ExecCost converts a program execution result into virtual time, using the
// Table 5 calibration: per instruction, per map lookup, and a one-time
// packet cache-miss charge.
func ExecCost(res ebpf.Result) sim.Time {
	c := sim.Time(res.Insns)*costmodel.EBPFPerInstruction +
		sim.Time(res.HashLookups)*costmodel.EBPFMapLookupHash +
		sim.Time(res.ArrayLookups)*costmodel.EBPFMapLookupArray +
		sim.Time(res.OtherHelpers)*costmodel.EBPFHelperBase
	if res.TouchedPacket {
		c += costmodel.EBPFPacketTouch
	}
	return c
}
