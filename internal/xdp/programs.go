package xdp

import (
	"ovsxdp/internal/ebpf"
)

// Conventional map ids used by the library programs.
const (
	MapIDXsk int64 = 1 // xskmap: queue -> AF_XDP socket
	MapIDDev int64 = 2 // devmap: index -> target device
	MapIDL2  int64 = 3 // hash: dst MAC (8-byte key) -> 4-byte value
	MapIDLB  int64 = 4 // array: backend index -> 4-byte backend IP
)

// NewPassToXsk builds the program OVS installs by default: redirect every
// packet to the AF_XDP socket registered for its receive queue ("an XDP
// hook program that simply sends every packet to OVS in userspace"). The
// fallback when a queue has no socket is XDP_PASS so management traffic
// still reaches the kernel stack during reconfiguration.
func NewPassToXsk(xsk *ebpf.TargetMap) *ebpf.Program {
	p := ebpf.NewAsm().
		I(ebpf.Ldx(ebpf.SizeW, ebpf.R2, ebpf.R1, ebpf.CtxRxQueue)).
		I(ebpf.MovImm(ebpf.R1, MapIDXsk)).
		I(ebpf.MovImm(ebpf.R3, ebpf.XDPPass)).
		I(ebpf.Call(ebpf.HelperRedirectMap)).
		I(ebpf.Exit()).
		MustAssemble("ovs-pass-to-xsk")
	p.AttachMap(MapIDXsk, xsk)
	return p
}

// NewDropAll builds Table 5's task A: "drops all incoming packets without
// examining them". The prologue mirrors what p4c-xdp emits (context field
// loads even when unused), matching the paper's P4-generated programs.
func NewDropAll() *ebpf.Program {
	return ebpf.NewAsm().
		I(ebpf.Ldx(ebpf.SizeW, ebpf.R2, ebpf.R1, ebpf.CtxData)).
		I(ebpf.Ldx(ebpf.SizeW, ebpf.R3, ebpf.R1, ebpf.CtxDataEnd)).
		I(ebpf.Ldx(ebpf.SizeW, ebpf.R4, ebpf.R1, ebpf.CtxIngressIface)).
		I(ebpf.Ldx(ebpf.SizeW, ebpf.R5, ebpf.R1, ebpf.CtxRxQueue)).
		I(ebpf.MovImm(ebpf.R6, 0)). // accepted-headers bitmap, P4 style
		I(ebpf.MovImm(ebpf.R0, ebpf.XDPDrop)).
		I(ebpf.Exit()).
		MustAssemble("task-a-drop")
}

// parsePrologue emits the P4-style parser shared by tasks B, C and D:
// bounds-check and field-extract the Ethernet and IPv4 headers into a stack
// struct, jumping to rejectLabel when the packet does not parse. On exit
// R6 holds the packet pointer (34 bytes verified), R9 holds the context,
// and the extracted fields live at fixed stack offsets.
//
// Stack layout (offsets from R10):
//
//	-64: eth.dst (4+2)   -56: eth.src (4+2)   -50: eth.type (2)
//	-48: ip.ver_ihl      -47: ip.tos          -46: ip.totlen
//	-44: ip.id           -42: ip.frag         -40: ip.ttl
//	-39: ip.proto        -38: ip.csum         -36: ip.src (4)   -32: ip.dst (4)
func parsePrologue(a *ebpf.Asm, rejectLabel string) *ebpf.Asm {
	extract := func(size ebpf.Size, pktOff, stackOff int16) {
		a.I(ebpf.Ldx(size, ebpf.R2, ebpf.R6, pktOff))
		a.I(ebpf.Stx(size, ebpf.R10, stackOff, ebpf.R2))
	}
	a.I(ebpf.Mov(ebpf.R9, ebpf.R1)).
		I(ebpf.Ldx(ebpf.SizeW, ebpf.R6, ebpf.R1, ebpf.CtxData)).
		I(ebpf.Ldx(ebpf.SizeW, ebpf.R7, ebpf.R1, ebpf.CtxDataEnd)).
		// Ethernet bounds.
		I(ebpf.Mov(ebpf.R8, ebpf.R6)).
		I(ebpf.AddImm(ebpf.R8, 14)).
		Jmp(ebpf.Jgt(ebpf.R8, ebpf.R7, 0), rejectLabel)
	extract(ebpf.SizeW, 0, -64) // eth.dst[0:4]
	extract(ebpf.SizeH, 4, -60) // eth.dst[4:6]
	extract(ebpf.SizeW, 6, -56) // eth.src[0:4]
	extract(ebpf.SizeH, 10, -52)
	extract(ebpf.SizeH, 12, -50) // ethertype (left in R2)
	a.Jmp(ebpf.JneImm(ebpf.R2, 0x0800, 0), rejectLabel).
		// IPv4 bounds.
		I(ebpf.Mov(ebpf.R8, ebpf.R6)).
		I(ebpf.AddImm(ebpf.R8, 34)).
		Jmp(ebpf.Jgt(ebpf.R8, ebpf.R7, 0), rejectLabel)
	extract(ebpf.SizeB, 14, -48) // ver/ihl
	extract(ebpf.SizeB, 15, -47) // tos
	extract(ebpf.SizeH, 16, -46) // total length
	extract(ebpf.SizeH, 18, -44) // id
	extract(ebpf.SizeH, 20, -42) // frag
	extract(ebpf.SizeB, 22, -40) // ttl
	extract(ebpf.SizeB, 23, -39) // proto
	extract(ebpf.SizeH, 24, -38) // checksum
	extract(ebpf.SizeW, 26, -36) // src IP
	extract(ebpf.SizeW, 30, -32) // dst IP
	return a
}

// NewParseDrop builds Table 5's task B: "parse Eth/IPv4 header and drop".
func NewParseDrop() *ebpf.Program {
	a := ebpf.NewAsm()
	parsePrologue(a, "reject").
		I(ebpf.MovImm(ebpf.R0, ebpf.XDPDrop)).
		I(ebpf.Exit()).
		Label("reject").
		I(ebpf.MovImm(ebpf.R0, ebpf.XDPDrop)).
		I(ebpf.Exit())
	return a.MustAssemble("task-b-parse-drop")
}

// NewParseLookupDrop builds Table 5's task C: parse, look the destination
// MAC up in an L2 hash table, and drop.
func NewParseLookupDrop(l2 *ebpf.HashMap) *ebpf.Program {
	a := ebpf.NewAsm()
	parsePrologue(a, "reject").
		// Build the 8-byte L2 key from the extracted destination MAC.
		I(ebpf.St(ebpf.SizeDW, ebpf.R10, -16, 0)).
		I(ebpf.Ldx(ebpf.SizeW, ebpf.R2, ebpf.R10, -64)).
		I(ebpf.Stx(ebpf.SizeW, ebpf.R10, -16, ebpf.R2)).
		I(ebpf.Ldx(ebpf.SizeH, ebpf.R2, ebpf.R10, -60)).
		I(ebpf.Stx(ebpf.SizeH, ebpf.R10, -12, ebpf.R2)).
		I(ebpf.MovImm(ebpf.R1, MapIDL2)).
		I(ebpf.Mov(ebpf.R2, ebpf.R10)).
		I(ebpf.AddImm(ebpf.R2, -16)).
		I(ebpf.Call(ebpf.HelperMapLookup)).
		I(ebpf.MovImm(ebpf.R0, ebpf.XDPDrop)). // drop on hit or miss
		I(ebpf.Exit()).
		Label("reject").
		I(ebpf.MovImm(ebpf.R0, ebpf.XDPDrop)).
		I(ebpf.Exit())
	p := a.MustAssemble("task-c-parse-lookup-drop")
	p.AttachMap(MapIDL2, l2)
	return p
}

// NewParseSwapForward builds Table 5's task D: parse, swap source and
// destination MAC addresses, and forward out the same port (XDP_TX).
func NewParseSwapForward() *ebpf.Program {
	a := ebpf.NewAsm()
	parsePrologue(a, "reject").
		I(ebpf.Ldx(ebpf.SizeW, ebpf.R2, ebpf.R6, 0)). // dst[0:4]
		I(ebpf.Ldx(ebpf.SizeH, ebpf.R3, ebpf.R6, 4)). // dst[4:6]
		I(ebpf.Ldx(ebpf.SizeW, ebpf.R4, ebpf.R6, 6)). // src[0:4]
		I(ebpf.Ldx(ebpf.SizeH, ebpf.R5, ebpf.R6, 10)).
		I(ebpf.Stx(ebpf.SizeW, ebpf.R6, 0, ebpf.R4)).
		I(ebpf.Stx(ebpf.SizeH, ebpf.R6, 4, ebpf.R5)).
		I(ebpf.Stx(ebpf.SizeW, ebpf.R6, 6, ebpf.R2)).
		I(ebpf.Stx(ebpf.SizeH, ebpf.R6, 10, ebpf.R3)).
		I(ebpf.MovImm(ebpf.R0, ebpf.XDPTx)).
		I(ebpf.Exit()).
		Label("reject").
		I(ebpf.MovImm(ebpf.R0, ebpf.XDPDrop)).
		I(ebpf.Exit())
	return a.MustAssemble("task-d-parse-swap-fwd")
}

// NewRedirectToVeth builds the container fast-path program of Figure 5 path
// C: look the destination MAC up in the L2 table; on a hit redirect the
// packet straight to the container's veth through the devmap, bypassing OVS
// userspace; on a miss hand the packet to the AF_XDP socket so the
// userspace datapath decides.
func NewRedirectToVeth(l2 *ebpf.HashMap, dev *ebpf.TargetMap, xsk *ebpf.TargetMap) *ebpf.Program {
	a := ebpf.NewAsm()
	a.I(ebpf.Mov(ebpf.R9, ebpf.R1)).
		I(ebpf.Ldx(ebpf.SizeW, ebpf.R6, ebpf.R1, ebpf.CtxData)).
		I(ebpf.Ldx(ebpf.SizeW, ebpf.R7, ebpf.R1, ebpf.CtxDataEnd)).
		I(ebpf.Mov(ebpf.R8, ebpf.R6)).
		I(ebpf.AddImm(ebpf.R8, 14)).
		Jmp(ebpf.Jgt(ebpf.R8, ebpf.R7, 0), "toxsk").
		// L2 key = destination MAC, zero-padded to 8 bytes.
		I(ebpf.St(ebpf.SizeDW, ebpf.R10, -16, 0)).
		I(ebpf.Ldx(ebpf.SizeW, ebpf.R2, ebpf.R6, 0)).
		I(ebpf.Stx(ebpf.SizeW, ebpf.R10, -16, ebpf.R2)).
		I(ebpf.Ldx(ebpf.SizeH, ebpf.R2, ebpf.R6, 4)).
		I(ebpf.Stx(ebpf.SizeH, ebpf.R10, -12, ebpf.R2)).
		I(ebpf.MovImm(ebpf.R1, MapIDL2)).
		I(ebpf.Mov(ebpf.R2, ebpf.R10)).
		I(ebpf.AddImm(ebpf.R2, -16)).
		I(ebpf.Call(ebpf.HelperMapLookup)).
		Jmp(ebpf.JeqImm(ebpf.R0, 0, 0), "toxsk").
		I(ebpf.Ldx(ebpf.SizeW, ebpf.R2, ebpf.R0, 0)). // devmap index
		I(ebpf.MovImm(ebpf.R1, MapIDDev)).
		I(ebpf.MovImm(ebpf.R3, ebpf.XDPAborted)).
		I(ebpf.Call(ebpf.HelperRedirectMap)).
		I(ebpf.Exit()).
		Label("toxsk").
		I(ebpf.Ldx(ebpf.SizeW, ebpf.R2, ebpf.R9, ebpf.CtxRxQueue)).
		I(ebpf.MovImm(ebpf.R1, MapIDXsk)).
		I(ebpf.MovImm(ebpf.R3, ebpf.XDPPass)).
		I(ebpf.Call(ebpf.HelperRedirectMap)).
		I(ebpf.Exit())
	p := a.MustAssemble("ovs-redirect-veth")
	p.AttachMap(MapIDL2, l2)
	p.AttachMap(MapIDDev, dev)
	p.AttachMap(MapIDXsk, xsk)
	return p
}

// LBConfig parameterizes the Section 3.5 L4 load-balancer example: traffic
// to VIP:Port/TCP is spread across the backends table and forwarded at the
// driver level; everything else goes to OVS userspace via the AF_XDP
// socket.
type LBConfig struct {
	VIP      uint32 // IPv4 virtual address, host byte order
	Port     uint16
	Backends *ebpf.ArrayMap // 4-byte backend IPv4 per slot
	NumMask  int64          // len(backends)-1; backends must be a power of two
	Xsk      *ebpf.TargetMap
}

// NewL4LoadBalancer builds the load-balancer program.
func NewL4LoadBalancer(cfg LBConfig) *ebpf.Program {
	a := ebpf.NewAsm()
	a.I(ebpf.Mov(ebpf.R9, ebpf.R1)).
		I(ebpf.Ldx(ebpf.SizeW, ebpf.R6, ebpf.R1, ebpf.CtxData)).
		I(ebpf.Ldx(ebpf.SizeW, ebpf.R7, ebpf.R1, ebpf.CtxDataEnd)).
		I(ebpf.Mov(ebpf.R8, ebpf.R6)).
		I(ebpf.AddImm(ebpf.R8, 54)). // eth + ipv4 + tcp ports
		Jmp(ebpf.Jgt(ebpf.R8, ebpf.R7, 0), "toxsk").
		I(ebpf.Ldx(ebpf.SizeH, ebpf.R2, ebpf.R6, 12)).
		Jmp(ebpf.JneImm(ebpf.R2, 0x0800, 0), "toxsk").
		I(ebpf.Ldx(ebpf.SizeB, ebpf.R2, ebpf.R6, 23)).
		Jmp(ebpf.JneImm(ebpf.R2, 6, 0), "toxsk"). // TCP
		I(ebpf.Ldx(ebpf.SizeW, ebpf.R2, ebpf.R6, 30)).
		Jmp(ebpf.JneImm(ebpf.R2, int64(cfg.VIP), 0), "toxsk").
		I(ebpf.Ldx(ebpf.SizeH, ebpf.R2, ebpf.R6, 36)). // TCP dst port
		Jmp(ebpf.JneImm(ebpf.R2, int64(cfg.Port), 0), "toxsk").
		// Pick a backend by hashing the source IP.
		I(ebpf.Ldx(ebpf.SizeW, ebpf.R2, ebpf.R6, 26)).
		I(ebpf.AndImm(ebpf.R2, cfg.NumMask)).
		I(ebpf.Stx(ebpf.SizeW, ebpf.R10, -4, ebpf.R2)).
		I(ebpf.MovImm(ebpf.R1, MapIDLB)).
		I(ebpf.Mov(ebpf.R2, ebpf.R10)).
		I(ebpf.AddImm(ebpf.R2, -4)).
		I(ebpf.Call(ebpf.HelperMapLookup)).
		Jmp(ebpf.JeqImm(ebpf.R0, 0, 0), "toxsk").
		I(ebpf.Ldx(ebpf.SizeW, ebpf.R3, ebpf.R0, 0)). // backend IP
		I(ebpf.Stx(ebpf.SizeW, ebpf.R6, 30, ebpf.R3)).
		I(ebpf.MovImm(ebpf.R1, 0)).
		I(ebpf.Call(ebpf.HelperCsumReplace)).
		I(ebpf.MovImm(ebpf.R0, ebpf.XDPTx)).
		I(ebpf.Exit()).
		Label("toxsk").
		I(ebpf.Ldx(ebpf.SizeW, ebpf.R2, ebpf.R9, ebpf.CtxRxQueue)).
		I(ebpf.MovImm(ebpf.R1, MapIDXsk)).
		I(ebpf.MovImm(ebpf.R3, ebpf.XDPPass)).
		I(ebpf.Call(ebpf.HelperRedirectMap)).
		I(ebpf.Exit())
	p := a.MustAssemble("l4-load-balancer")
	p.AttachMap(MapIDLB, cfg.Backends)
	p.AttachMap(MapIDXsk, cfg.Xsk)
	return p
}

// MACKey converts a 6-byte MAC into the 8-byte zero-padded key format the
// L2-table programs use. The MAC occupies the first 6 bytes in transmission
// order (the programs load it big-endian from the wire and store it to the
// little-endian stack, so byte order within the words is swapped: this
// helper reproduces that layout exactly so control planes can populate the
// map).
func MACKey(mac [6]byte) []byte {
	// The program stores: stxw(stack[-16..-12]) of BE-load pkt[0:4],
	// then stxh(stack[-12..-10]) of BE-load pkt[4:6]. A BE load followed
	// by an LE store reverses bytes within each chunk.
	return []byte{mac[3], mac[2], mac[1], mac[0], mac[5], mac[4], 0, 0}
}
