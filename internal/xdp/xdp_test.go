package xdp

import (
	"testing"

	"ovsxdp/internal/costmodel"
	"ovsxdp/internal/ebpf"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/sim"
)

var (
	macA = hdr.MAC{0x02, 0, 0, 0, 0, 0x0a}
	macB = hdr.MAC{0x02, 0, 0, 0, 0, 0x0b}
	ipA  = hdr.MakeIP4(10, 0, 0, 1)
	ipB  = hdr.MakeIP4(10, 0, 0, 2)
)

func udpFrame() []byte {
	return hdr.NewBuilder().Eth(macA, macB).IPv4H(ipA, ipB, 64).
		UDPH(1234, 5678).PayloadLen(18).PadTo(64).Build()
}

func tcpFrame(dst hdr.IP4, dport uint16) []byte {
	return hdr.NewBuilder().Eth(macA, macB).IPv4H(ipA, dst, 64).
		TCPH(40000, dport, 1, 0, hdr.TCPSyn).PadTo(64).Build()
}

func mustLoad(t *testing.T, p *ebpf.Program) *ebpf.Program {
	t.Helper()
	if err := p.Load(); err != nil {
		t.Fatalf("load %s: %v\n%s", p.Name, err, p.Disassemble())
	}
	return p
}

func TestAllLibraryProgramsPassVerifier(t *testing.T) {
	l2 := ebpf.NewHashMap(8, 4, 128)
	dev := ebpf.NewDevMap(16)
	xsk := ebpf.NewXskMap(16)
	lb := ebpf.NewArrayMap(4, 4)
	progs := []*ebpf.Program{
		NewPassToXsk(xsk),
		NewDropAll(),
		NewParseDrop(),
		NewParseLookupDrop(l2),
		NewParseSwapForward(),
		NewRedirectToVeth(l2, dev, xsk),
		NewL4LoadBalancer(LBConfig{VIP: 0x0a000002, Port: 80, Backends: lb, NumMask: 3, Xsk: xsk}),
	}
	for _, p := range progs {
		if err := p.Load(); err != nil {
			t.Errorf("%s rejected: %v", p.Name, err)
		}
	}
}

func TestPassToXskRedirects(t *testing.T) {
	xsk := ebpf.NewXskMap(4)
	if err := xsk.SetTarget(2, 77); err != nil {
		t.Fatal(err)
	}
	h := NewHook(ModelAllQueues, ModeDriver)
	if err := h.Attach(mustLoad(t, NewPassToXsk(xsk))); err != nil {
		t.Fatal(err)
	}
	res, cost, err := h.Run(2, udpFrame(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ebpf.XDPRedirect || res.RedirectIndex != 2 {
		t.Fatalf("res = %+v", res)
	}
	if cost <= 0 {
		t.Fatal("execution must cost time")
	}
	// Queue without a socket: falls back to PASS.
	res, _, err = h.Run(3, udpFrame(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ebpf.XDPPass {
		t.Fatalf("fallback action = %d", res.Action)
	}
}

// TestTable5CostLadder verifies the task programs reproduce Table 5's
// single-core rates within tolerance: 14 / 8.1 / 7.1 / 4.7 Mpps for tasks
// A-D, where per-packet cost = driver overhead + program execution cost
// (+ XDP_TX transmit for task D).
func TestTable5CostLadder(t *testing.T) {
	l2 := ebpf.NewHashMap(8, 4, 128)
	frame := udpFrame()

	run := func(p *ebpf.Program) (ebpf.Result, sim.Time) {
		t.Helper()
		mustLoad(t, p)
		buf := append([]byte(nil), frame...) // task D mutates
		res, err := p.Run(&ebpf.Context{Packet: buf})
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		cost := costmodel.XDPDriverOverhead + ExecCost(res)
		if res.Action == ebpf.XDPTx {
			cost += costmodel.XDPTxForward
		}
		return res, cost
	}

	resA, costA := run(NewDropAll())
	resB, costB := run(NewParseDrop())
	resC, costC := run(NewParseLookupDrop(l2))
	resD, costD := run(NewParseSwapForward())

	if resA.Action != ebpf.XDPDrop || resB.Action != ebpf.XDPDrop || resC.Action != ebpf.XDPDrop {
		t.Fatal("tasks A-C must drop")
	}
	if resD.Action != ebpf.XDPTx {
		t.Fatalf("task D action = %d, want XDP_TX", resD.Action)
	}
	if resC.HashLookups != 1 {
		t.Fatalf("task C must do one hash lookup, got %d", resC.HashLookups)
	}

	mpps := func(c sim.Time) float64 { return 1e3 / float64(c) }
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"A", mpps(costA), 14.0},
		{"B", mpps(costB), 8.1},
		{"C", mpps(costC), 7.1},
		{"D", mpps(costD), 4.7},
	}
	for _, c := range checks {
		if c.got < c.want*0.85 || c.got > c.want*1.2 {
			t.Errorf("task %s: %.2f Mpps, paper %.2f (cost ladder off)", c.name, c.got, c.want)
		}
	}
	// Ordering must strictly degrade with complexity.
	if !(costA < costB && costB < costC && costC < costD) {
		t.Errorf("cost ordering violated: %d %d %d %d", costA, costB, costC, costD)
	}
}

func TestParseSwapForwardSwapsMACs(t *testing.T) {
	p := mustLoad(t, NewParseSwapForward())
	buf := udpFrame()
	if _, err := p.Run(&ebpf.Context{Packet: buf}); err != nil {
		t.Fatal(err)
	}
	eth, err := hdr.ParseEthernet(buf)
	if err != nil {
		t.Fatal(err)
	}
	if eth.Dst != macA || eth.Src != macB {
		t.Fatalf("MACs not swapped: %s %s", eth.Dst, eth.Src)
	}
}

func TestParseDropRejectsNonIPv4(t *testing.T) {
	p := mustLoad(t, NewParseDrop())
	arp := hdr.NewBuilder().Eth(macA, hdr.Broadcast).
		ARPH(hdr.ARPRequest, macA, ipA, hdr.MAC{}, ipB).PadTo(64).Build()
	res, err := p.Run(&ebpf.Context{Packet: arp})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ebpf.XDPDrop {
		t.Fatalf("action = %d", res.Action)
	}
}

func TestRedirectToVeth(t *testing.T) {
	l2 := ebpf.NewHashMap(8, 4, 128)
	dev := ebpf.NewDevMap(16)
	xsk := ebpf.NewXskMap(4)
	if err := xsk.SetTarget(0, 9); err != nil {
		t.Fatal(err)
	}
	if err := dev.SetTarget(5, 42); err != nil { // slot 5 -> ifindex 42
		t.Fatal(err)
	}
	// Map macB -> devmap slot 5.
	if err := l2.Update(MACKey([6]byte(macB)), []byte{5, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	p := mustLoad(t, NewRedirectToVeth(l2, dev, xsk))

	// Known MAC: redirect through the devmap.
	res, err := p.Run(&ebpf.Context{Packet: udpFrame()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ebpf.XDPRedirect {
		t.Fatalf("action = %d, want redirect", res.Action)
	}
	if res.RedirectMap != ebpf.Map(dev) || res.RedirectIndex != 5 {
		t.Fatalf("redirect = %+v", res)
	}

	// Unknown MAC: hand to the AF_XDP socket.
	other := hdr.NewBuilder().Eth(macA, hdr.MAC{0x02, 9, 9, 9, 9, 9}).
		IPv4H(ipA, ipB, 64).UDPH(1, 2).PayloadLen(18).Build()
	res, err = p.Run(&ebpf.Context{Packet: other, RxQueue: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ebpf.XDPRedirect || res.RedirectMap != ebpf.Map(xsk) {
		t.Fatalf("fallback = %+v", res)
	}
}

func TestL4LoadBalancer(t *testing.T) {
	backends := ebpf.NewArrayMap(4, 4)
	for i := 0; i < 4; i++ {
		ip := []byte{byte(100 + i), 0, 0, 10} // LE: 10.0.0.10x
		key := []byte{byte(i), 0, 0, 0}
		if err := backends.Update(key, ip); err != nil {
			t.Fatal(err)
		}
	}
	xsk := ebpf.NewXskMap(4)
	if err := xsk.SetTarget(0, 1); err != nil {
		t.Fatal(err)
	}
	vip := hdr.MakeIP4(10, 0, 0, 2)
	p := mustLoad(t, NewL4LoadBalancer(LBConfig{
		VIP: uint32(vip), Port: 80, Backends: backends, NumMask: 3, Xsk: xsk}))

	// VIP traffic: rewritten and forwarded.
	buf := tcpFrame(vip, 80)
	res, err := p.Run(&ebpf.Context{Packet: buf})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ebpf.XDPTx {
		t.Fatalf("VIP action = %d, want XDP_TX", res.Action)
	}
	ip4, err := hdr.ParseIPv4(buf[14:])
	if err != nil {
		t.Fatal(err)
	}
	if ip4.Dst == vip {
		t.Fatal("destination IP must be rewritten to a backend")
	}

	// Non-VIP traffic: to the AF_XDP socket.
	res, err = p.Run(&ebpf.Context{Packet: tcpFrame(hdr.MakeIP4(10, 0, 0, 3), 80)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ebpf.XDPRedirect || res.RedirectMap != ebpf.Map(xsk) {
		t.Fatalf("non-VIP result = %+v", res)
	}

	// Wrong port: to the AF_XDP socket.
	res, _ = p.Run(&ebpf.Context{Packet: tcpFrame(vip, 443)})
	if res.Action != ebpf.XDPRedirect || res.RedirectMap != ebpf.Map(xsk) {
		t.Fatalf("wrong-port result = %+v", res)
	}
}

func TestHookAttachRequiresVerification(t *testing.T) {
	h := NewHook(ModelAllQueues, ModeDriver)
	if err := h.Attach(NewDropAll()); err == nil {
		t.Fatal("attach of unverified program must fail")
	}
}

func TestHookPerQueueModel(t *testing.T) {
	h := NewHook(ModelPerQueue, ModeDriver)
	drop := mustLoad(t, NewDropAll())
	if err := h.AttachQueue(3, drop); err != nil {
		t.Fatal(err)
	}
	if h.ProgramFor(3) != drop {
		t.Fatal("queue 3 must have the program")
	}
	if h.ProgramFor(1) != nil {
		t.Fatal("queue 1 must bypass XDP (Figure 6b)")
	}
	// Packets on unprogrammed queues pass at no cost.
	res, cost, err := h.Run(1, udpFrame(), 0)
	if err != nil || res.Action != ebpf.XDPPass || cost != 0 {
		t.Fatalf("bypass = %+v cost=%d err=%v", res, cost, err)
	}
	if err := h.AttachQueue(3, nil); err != nil {
		t.Fatal(err)
	}
	if h.HasProgram() {
		t.Fatal("detached hook must report no program")
	}
}

func TestHookAllQueuesRejectsPerQueueAttach(t *testing.T) {
	h := NewHook(ModelAllQueues, ModeDriver)
	if err := h.AttachQueue(0, mustLoad(t, NewDropAll())); err == nil {
		t.Fatal("per-queue attach on all-queues model must fail")
	}
}

func TestGenericModeCostsMore(t *testing.T) {
	prog := mustLoad(t, NewDropAll())
	drv := NewHook(ModelAllQueues, ModeDriver)
	gen := NewHook(ModelAllQueues, ModeGeneric)
	if err := drv.Attach(prog); err != nil {
		t.Fatal(err)
	}
	if err := gen.Attach(prog); err != nil {
		t.Fatal(err)
	}
	_, cDrv, _ := drv.Run(0, udpFrame(), 0)
	_, cGen, _ := gen.Run(0, udpFrame(), 0)
	if cGen <= cDrv {
		t.Fatalf("generic mode must cost more: drv=%d gen=%d", cDrv, cGen)
	}
}

func TestHookDetach(t *testing.T) {
	h := NewHook(ModelAllQueues, ModeDriver)
	if err := h.Attach(mustLoad(t, NewDropAll())); err != nil {
		t.Fatal(err)
	}
	h.Detach()
	if h.HasProgram() {
		t.Fatal("detach failed")
	}
	res, _, _ := h.Run(0, udpFrame(), 0)
	if res.Action != ebpf.XDPPass {
		t.Fatal("detached hook must pass packets")
	}
}
