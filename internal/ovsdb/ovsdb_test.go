package ovsdb

import (
	"testing"
	"time"
)

func TestTransactInsertSelect(t *testing.T) {
	s := NewServer()
	res := s.Transact([]Op{
		{Op: "insert", Table: TableBridge, Row: Row{"name": "br-int", "datapath_type": "netdev"}},
		{Op: "insert", Table: TableBridge, Row: Row{"name": "br-underlay"}},
	})
	if res[0].UUID == "" || res[1].UUID == "" || res[0].UUID == res[1].UUID {
		t.Fatalf("uuids = %+v", res)
	}
	sel := s.Transact([]Op{{Op: "select", Table: TableBridge,
		Where: [][3]any{{"name", "==", "br-int"}}}})
	if sel[0].Count != 1 || sel[0].Rows[0]["datapath_type"] != "netdev" {
		t.Fatalf("select = %+v", sel[0])
	}
}

func TestTransactUpdateDelete(t *testing.T) {
	s := NewServer()
	ins := s.Transact([]Op{{Op: "insert", Table: TableInterface,
		Row: Row{"name": "eth0", "type": "afxdp"}}})
	uuid := ins[0].UUID

	up := s.Transact([]Op{{Op: "update", Table: TableInterface, UUID: uuid,
		Row: Row{"type": "dpdk"}}})
	if up[0].Count != 1 {
		t.Fatalf("update count = %d", up[0].Count)
	}
	sel := s.Transact([]Op{{Op: "select", Table: TableInterface,
		Where: [][3]any{{"name", "==", "eth0"}}}})
	if sel[0].Rows[0]["type"] != "dpdk" {
		t.Fatal("update not applied")
	}

	del := s.Transact([]Op{{Op: "delete", Table: TableInterface,
		Where: [][3]any{{"name", "==", "eth0"}}}})
	if del[0].Count != 1 {
		t.Fatal("delete failed")
	}
	if len(s.Rows(TableInterface)) != 0 {
		t.Fatal("row lingers after delete")
	}
}

func TestTransactErrors(t *testing.T) {
	s := NewServer()
	res := s.Transact([]Op{{Op: "insert", Table: "Nope", Row: Row{}}})
	if res[0].Error == "" {
		t.Fatal("unknown table must error")
	}
	res = s.Transact([]Op{{Op: "explode", Table: TableBridge}})
	if res[0].Error == "" {
		t.Fatal("unknown op must error")
	}
}

func TestOnChangeCallback(t *testing.T) {
	s := NewServer()
	var got []Update
	s.OnChange = func(u Update) { got = append(got, u) }
	s.Transact([]Op{{Op: "insert", Table: TableBridge, Row: Row{"name": "br0"}}})
	s.Transact([]Op{{Op: "delete", Table: TableBridge, Where: [][3]any{{"name", "==", "br0"}}}})
	if len(got) != 2 || got[0].Op != "insert" || got[1].Op != "delete" {
		t.Fatalf("updates = %+v", got)
	}
}

func TestWireProtocol(t *testing.T) {
	s := NewServer()
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Echo(); err != nil {
		t.Fatal(err)
	}
	res, err := c.Transact([]Op{
		{Op: "insert", Table: TableBridge, Row: Row{"name": "br-int"}},
		{Op: "select", Table: TableBridge, Where: [][3]any{{"name", "==", "br-int"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].UUID == "" || res[1].Count != 1 {
		t.Fatalf("wire transact = %+v", res)
	}
}

func TestWireMonitor(t *testing.T) {
	s := NewServer()
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Monitor(); err != nil {
		t.Fatal(err)
	}

	// Another client inserts; the monitor must hear about it.
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Transact([]Op{{Op: "insert", Table: TablePort, Row: Row{"name": "p1"}}}); err != nil {
		t.Fatal(err)
	}

	select {
	case u := <-c.Updates:
		if u.Table != TablePort || u.Op != "insert" || u.Row["name"] != "p1" {
			t.Fatalf("update = %+v", u)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("monitor notification timed out")
	}
}

func TestNumericWhereComparison(t *testing.T) {
	s := NewServer()
	s.Transact([]Op{{Op: "insert", Table: TablePort, Row: Row{"name": "p1", "tag": 100}}})
	// Over the wire, 100 becomes float64; both must match.
	sel := s.Transact([]Op{{Op: "select", Table: TablePort, Where: [][3]any{{"tag", "==", float64(100)}}}})
	if sel[0].Count != 1 {
		t.Fatal("float/int comparison failed")
	}
	sel = s.Transact([]Op{{Op: "select", Table: TablePort, Where: [][3]any{{"tag", "==", 100}}}})
	if sel[0].Count != 1 {
		t.Fatal("int/int comparison failed")
	}
}
