// Package ovsdb implements a compact OVSDB-style configuration database:
// JSON-RPC over TCP with transact (insert/select/update/delete), echo, and
// monitor with change notifications. The NSX agent uses it the way
// Section 4 describes: "The NSX agent uses OVSDB ... to create two bridges
// ... Then it transforms the NSX network policies into flow rules".
//
// The schema is the subset of Open_vSwitch that matters here: Bridge, Port,
// and Interface tables, with Interface.type selecting the datapath port
// transport (afxdp, dpdk, vhostuser, tap, system, geneve).
package ovsdb

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"sync"
)

// Table names.
const (
	TableBridge    = "Bridge"
	TablePort      = "Port"
	TableInterface = "Interface"
)

// Row is one database row. Every row has a "_uuid" string key assigned at
// insert.
type Row map[string]any

// UUID returns the row's uuid.
func (r Row) UUID() string {
	s, _ := r["_uuid"].(string)
	return s
}

// Op is one operation inside a transact request.
type Op struct {
	Op    string   `json:"op"` // insert | select | update | delete
	Table string   `json:"table"`
	Row   Row      `json:"row,omitempty"`
	Where [][3]any `json:"where,omitempty"` // [column, "==", value]
	UUID  string   `json:"uuid,omitempty"`  // for update/delete by uuid
}

// OpResult is one operation's result.
type OpResult struct {
	UUID  string `json:"uuid,omitempty"`
	Rows  []Row  `json:"rows,omitempty"`
	Count int    `json:"count,omitempty"`
	Error string `json:"error,omitempty"`
}

// rpcRequest is the JSON-RPC frame.
type rpcRequest struct {
	Method string          `json:"method"`
	Params json.RawMessage `json:"params"`
	ID     *int64          `json:"id"`
}

type rpcResponse struct {
	Result any    `json:"result,omitempty"`
	Error  string `json:"error,omitempty"`
	ID     *int64 `json:"id"`
	// Method/Params present on notifications.
	Method string `json:"method,omitempty"`
	Params any    `json:"params,omitempty"`
}

// Update is a monitor notification.
type Update struct {
	Table string `json:"table"`
	Op    string `json:"op"` // insert | update | delete
	Row   Row    `json:"row"`
}

// Server is the database server.
type Server struct {
	mu       sync.Mutex
	tables   map[string]map[string]Row
	nextUUID int
	monitors []chan Update
	ln       net.Listener

	// OnChange, when set, receives every committed update synchronously
	// (used by vswitchd to reconfigure without a network hop).
	OnChange func(Update)
}

// NewServer returns an empty database.
func NewServer() *Server {
	return &Server{tables: map[string]map[string]Row{
		TableBridge:    {},
		TablePort:      {},
		TableInterface: {},
	}}
}

// Transact applies operations atomically and returns per-op results. It is
// callable directly (in-process) or via the wire protocol. Notifications
// fire after the lock is released, so OnChange handlers may re-enter the
// database (e.g. vswitchd recording a port error on the Interface row).
func (s *Server) Transact(ops []Op) []OpResult {
	s.mu.Lock()
	results := make([]OpResult, len(ops))
	var updates []Update
	for i, op := range ops {
		results[i] = s.apply(op, &updates)
	}
	s.mu.Unlock()
	for _, u := range updates {
		s.notify(u)
	}
	return results
}

func (s *Server) apply(op Op, updates *[]Update) OpResult {
	tbl, ok := s.tables[op.Table]
	if !ok {
		return OpResult{Error: fmt.Sprintf("no table %q", op.Table)}
	}
	switch op.Op {
	case "insert":
		s.nextUUID++
		uuid := fmt.Sprintf("uuid-%06d", s.nextUUID)
		row := Row{"_uuid": uuid}
		for k, v := range op.Row {
			row[k] = v
		}
		tbl[uuid] = row
		*updates = append(*updates, Update{Table: op.Table, Op: "insert", Row: row})
		return OpResult{UUID: uuid}
	case "select":
		var rows []Row
		for _, r := range tbl {
			if matchWhere(r, op.Where) {
				rows = append(rows, r)
			}
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].UUID() < rows[j].UUID() })
		return OpResult{Rows: rows, Count: len(rows)}
	case "update":
		count := 0
		for _, r := range tbl {
			if op.UUID != "" && r.UUID() != op.UUID {
				continue
			}
			if op.UUID == "" && !matchWhere(r, op.Where) {
				continue
			}
			for k, v := range op.Row {
				if k != "_uuid" {
					r[k] = v
				}
			}
			count++
			*updates = append(*updates, Update{Table: op.Table, Op: "update", Row: r})
		}
		return OpResult{Count: count}
	case "delete":
		count := 0
		for uuid, r := range tbl {
			if op.UUID != "" && uuid != op.UUID {
				continue
			}
			if op.UUID == "" && !matchWhere(r, op.Where) {
				continue
			}
			delete(tbl, uuid)
			count++
			*updates = append(*updates, Update{Table: op.Table, Op: "delete", Row: r})
		}
		return OpResult{Count: count}
	default:
		return OpResult{Error: fmt.Sprintf("unknown op %q", op.Op)}
	}
}

func matchWhere(r Row, where [][3]any) bool {
	for _, w := range where {
		col, _ := w[0].(string)
		opr, _ := w[1].(string)
		if opr != "==" {
			return false
		}
		if !looseEqual(r[col], w[2]) {
			return false
		}
	}
	return true
}

// looseEqual compares JSON-decoded values (numbers arrive as float64).
func looseEqual(a, b any) bool {
	if af, ok := a.(float64); ok {
		switch bv := b.(type) {
		case float64:
			return af == bv
		case int:
			return af == float64(bv)
		}
	}
	if ai, ok := a.(int); ok {
		switch bv := b.(type) {
		case float64:
			return float64(ai) == bv
		case int:
			return ai == bv
		}
	}
	return fmt.Sprint(a) == fmt.Sprint(b)
}

func (s *Server) notify(u Update) {
	if s.OnChange != nil {
		s.OnChange(u)
	}
	s.mu.Lock()
	monitors := append([]chan Update(nil), s.monitors...)
	s.mu.Unlock()
	for _, ch := range monitors {
		select {
		case ch <- u:
		default: // slow monitor: drop rather than block the DB
		}
	}
}

// Rows returns a snapshot of a table's rows (diagnostics, vswitchd sync).
func (s *Server) Rows(table string) []Row {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Row
	for _, r := range s.tables[table] {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].UUID() < out[j].UUID() })
	return out
}

// Serve accepts connections on ln until it is closed.
func (s *Server) Serve(ln net.Listener) {
	s.ln = ln
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go s.handle(conn)
	}
}

// ListenAndServe starts a TCP listener and serves in a goroutine,
// returning the bound address.
func (s *Server) ListenAndServe(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go s.Serve(ln)
	return ln.Addr().String(), nil
}

// Close stops the listener.
func (s *Server) Close() {
	if s.ln != nil {
		s.ln.Close()
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	var monitorCh chan Update
	var writeMu sync.Mutex

	for {
		var req rpcRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		switch req.Method {
		case "echo":
			writeMu.Lock()
			enc.Encode(rpcResponse{Result: "echo", ID: req.ID})
			writeMu.Unlock()
		case "transact":
			var ops []Op
			if err := json.Unmarshal(req.Params, &ops); err != nil {
				writeMu.Lock()
				enc.Encode(rpcResponse{Error: err.Error(), ID: req.ID})
				writeMu.Unlock()
				continue
			}
			res := s.Transact(ops)
			writeMu.Lock()
			enc.Encode(rpcResponse{Result: res, ID: req.ID})
			writeMu.Unlock()
		case "monitor":
			if monitorCh == nil {
				monitorCh = make(chan Update, 256)
				s.mu.Lock()
				s.monitors = append(s.monitors, monitorCh)
				s.mu.Unlock()
				go func() {
					for u := range monitorCh {
						writeMu.Lock()
						err := enc.Encode(rpcResponse{Method: "update", Params: u})
						writeMu.Unlock()
						if err != nil {
							return
						}
					}
				}()
			}
			writeMu.Lock()
			enc.Encode(rpcResponse{Result: "ok", ID: req.ID})
			writeMu.Unlock()
		default:
			writeMu.Lock()
			enc.Encode(rpcResponse{Error: "unknown method " + req.Method, ID: req.ID})
			writeMu.Unlock()
		}
	}
}

// Client is a wire client.
type Client struct {
	conn net.Conn
	dec  *json.Decoder
	enc  *json.Encoder
	mu   sync.Mutex
	next int64

	// Updates receives monitor notifications after Monitor is called.
	Updates chan Update
	pending map[int64]chan rpcResponse
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		dec:     json.NewDecoder(bufio.NewReader(conn)),
		enc:     json.NewEncoder(conn),
		Updates: make(chan Update, 256),
		pending: make(map[int64]chan rpcResponse),
	}
	go c.readLoop()
	return c, nil
}

// Close closes the connection.
func (c *Client) Close() { c.conn.Close() }

func (c *Client) readLoop() {
	for {
		var resp rpcResponse
		if err := c.dec.Decode(&resp); err != nil {
			close(c.Updates)
			return
		}
		if resp.Method == "update" {
			raw, _ := json.Marshal(resp.Params)
			var u Update
			if json.Unmarshal(raw, &u) == nil {
				c.Updates <- u
			}
			continue
		}
		if resp.ID != nil {
			c.mu.Lock()
			ch := c.pending[*resp.ID]
			delete(c.pending, *resp.ID)
			c.mu.Unlock()
			if ch != nil {
				ch <- resp
			}
		}
	}
}

func (c *Client) call(method string, params any) (rpcResponse, error) {
	raw, err := json.Marshal(params)
	if err != nil {
		return rpcResponse{}, err
	}
	c.mu.Lock()
	c.next++
	id := c.next
	ch := make(chan rpcResponse, 1)
	c.pending[id] = ch
	err = c.enc.Encode(rpcRequest{Method: method, Params: raw, ID: &id})
	c.mu.Unlock()
	if err != nil {
		return rpcResponse{}, err
	}
	resp, ok := <-ch, true
	if !ok {
		return rpcResponse{}, fmt.Errorf("ovsdb: connection closed")
	}
	if resp.Error != "" {
		return resp, fmt.Errorf("ovsdb: %s", resp.Error)
	}
	return resp, nil
}

// Transact runs operations on the server.
func (c *Client) Transact(ops []Op) ([]OpResult, error) {
	resp, err := c.call("transact", ops)
	if err != nil {
		return nil, err
	}
	raw, _ := json.Marshal(resp.Result)
	var out []OpResult
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Echo verifies liveness.
func (c *Client) Echo() error {
	_, err := c.call("echo", nil)
	return err
}

// Monitor subscribes to change notifications on c.Updates.
func (c *Client) Monitor() error {
	_, err := c.call("monitor", nil)
	return err
}
