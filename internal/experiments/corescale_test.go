package experiments

import (
	"fmt"
	"testing"

	"ovsxdp/internal/api"
	"ovsxdp/internal/dpif"
	"ovsxdp/internal/sim"
)

// TestMultiPMDConservation runs the same offered trace through 1, 2, and 4
// PMD threads and checks the packet ledger: every packet the generator sent
// is either delivered or counted by exactly one drop counter once the bed
// drains. Rebalancing, XPS, and the assignment layer must never lose or
// duplicate a packet.
func TestMultiPMDConservation(t *testing.T) {
	for _, pmds := range []int{1, 2, 4} {
		cfg := DefaultBed(KindAFXDP, 200)
		cfg.Queues = 4
		cfg.PMDs = pmds
		bed := NewP2PBed(cfg)

		const rate = 2e6
		window := 2 * sim.Millisecond
		bed.Gen.Run(rate, window)
		bed.Eng.RunUntil(window + 5*sim.Millisecond)

		if got := bed.Delivered + bed.Drops(); got != bed.Gen.Sent {
			t.Fatalf("%d PMDs: sent %d != delivered %d + drops %d (ledger off by %d)",
				pmds, bed.Gen.Sent, bed.Delivered, bed.Drops(),
				int64(bed.Gen.Sent)-int64(got))
		}
		if bed.Delivered == 0 {
			t.Fatalf("%d PMDs: nothing delivered", pmds)
		}
	}
}

// corescaleFingerprint runs a skewed-RSS bed with the cycles policy and a
// fast auto-LB interval, and serializes every observable stat — delivered,
// drops, balancer counters, the rxq placement, and the full per-thread perf
// table. Two runs with the same seed must produce byte-identical strings.
func corescaleFingerprint(t *testing.T) (string, uint64) {
	t.Helper()
	cfg := DefaultBed(KindAFXDP, 500)
	cfg.Queues = 4
	cfg.PMDs = 2
	cfg.RSSWeights = []int{8, 2, 1, 1}
	cfg.Other = map[string]string{
		"pmd-rxq-assign":                    "cycles",
		"pmd-auto-lb":                       "true",
		"pmd-auto-lb-rebal-interval-us":     "500",
		"pmd-auto-lb-improvement-threshold": "5",
	}
	bed := NewP2PBed(cfg)
	bed.Gen.Run(4e6, 4*sim.Millisecond)
	bed.Eng.RunUntil(5 * sim.Millisecond)

	nd := bed.DP.(*dpif.Netdev)
	reb, moves, dry := nd.Datapath().RebalanceStats()
	fp := fmt.Sprintf("delivered=%d drops=%d rebalances=%d moves=%d dryruns=%d\n%s%s",
		bed.Delivered, bed.Drops(), reb, moves, dry,
		nd.PmdRxqShow(), api.NewPerfView(nd.PerfStats()).FormatTable())
	return fp, reb
}

// TestAutoLBDeterminism: identical seeds must give byte-identical stats,
// including across mid-run rebalances (at least one must actually happen
// for the test to mean anything).
func TestAutoLBDeterminism(t *testing.T) {
	a, rebA := corescaleFingerprint(t)
	b, rebB := corescaleFingerprint(t)
	if rebA == 0 {
		t.Fatal("skewed bed never rebalanced; determinism test is vacuous")
	}
	if rebA != rebB || a != b {
		t.Fatalf("same seed, different stats:\n--- run A ---\n%s\n--- run B ---\n%s", a, b)
	}
}

// TestCoreScaleQuickDeterminism runs the smallest corescale sweep point
// twice and requires byte-identical reports — the acceptance bar for the
// benchmark itself.
func TestCoreScaleQuickDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("corescale point is expensive")
	}
	p := Profile{Warmup: sim.Millisecond, Window: 2 * sim.Millisecond}
	a := corescaleTrial(KindAFXDP, 1, nil, nil, p)
	b := corescaleTrial(KindAFXDP, 1, nil, nil, p)
	if a != b {
		t.Fatalf("corescale trial not deterministic: %.6f vs %.6f Mpps", a, b)
	}
	if a <= 0 {
		t.Fatalf("corescale trial delivered nothing")
	}
}
