package experiments

import (
	"fmt"
	"sort"
	"strings"

	"ovsxdp/internal/measure"
	"ovsxdp/internal/sim"
)

// Profile trades fidelity for wall-clock time: Full reproduces the paper's
// windows; Quick shortens them for tests and CI.
type Profile struct {
	Warmup     sim.Time
	Window     sim.Time
	SearchIter int
	RRCount    int

	// PerfStages opts into per-stage cycle attribution rows (the perf
	// layer's counters) in experiments that support them (fig9, table4).
	// Off by default so measured outputs stay byte-identical.
	PerfStages bool
}

// Full is the publication-quality profile.
var Full = Profile{Warmup: 6 * sim.Millisecond, Window: 30 * sim.Millisecond, SearchIter: 11, RRCount: 2000}

// Quick is the CI profile.
var Quick = Profile{Warmup: 3 * sim.Millisecond, Window: 10 * sim.Millisecond, SearchIter: 9, RRCount: 400}

// Row is one reported measurement with its paper anchor.
type Row struct {
	Name     string
	Measured float64
	Paper    float64 // 0 when the paper gives no number for this row
	Unit     string
	Note     string
}

// Ratio returns measured/paper, or 0 when no anchor exists.
func (r Row) Ratio() float64 {
	if r.Paper == 0 {
		return 0
	}
	return r.Measured / r.Paper
}

// Report is one experiment's output.
type Report struct {
	ID    string
	Title string
	Rows  []Row
	Notes []string
}

// Add appends a row.
func (r *Report) Add(name string, measured, paper float64, unit string) {
	r.Rows = append(r.Rows, Row{Name: name, Measured: measured, Paper: paper, Unit: unit})
}

// AddNote appends a free-form note.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the report as a table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, row := range r.Rows {
		if row.Paper != 0 {
			fmt.Fprintf(&b, "  %-42s %10.2f %-8s (paper %8.2f, x%.2f)\n",
				row.Name, row.Measured, row.Unit, row.Paper, row.Ratio())
		} else {
			fmt.Fprintf(&b, "  %-42s %10.2f %-8s\n", row.Name, row.Measured, row.Unit)
		}
		if row.Note != "" {
			fmt.Fprintf(&b, "      %s\n", row.Note)
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// Experiment is a registered reproduction target.
type Experiment struct {
	ID    string
	Title string
	Run   func(p Profile) *Report
}

var registry = map[string]Experiment{}

func register(e Experiment) { registry[e.ID] = e }

// Get looks an experiment up by id (e.g. "fig9a", "table2").
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every experiment sorted by id.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Scenario is a registered robustness scenario: unlike an Experiment it has
// no paper anchor, so it lives in a separate registry and never appears in
// All() — keeping `ovsbench` full-run output byte-identical.
type Scenario struct {
	ID    string
	Title string
	Run   func(p Profile) *Report
}

var scenarioRegistry = map[string]Scenario{}

func registerScenario(s Scenario) { scenarioRegistry[s.ID] = s }

// GetScenario looks a scenario up by id (e.g. "restart").
func GetScenario(id string) (Scenario, bool) {
	s, ok := scenarioRegistry[id]
	return s, ok
}

// Scenarios returns every scenario sorted by id.
func Scenarios() []Scenario {
	out := make([]Scenario, 0, len(scenarioRegistry))
	for _, s := range scenarioRegistry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// searchConfig builds the lossless search bracket for a profile.
func searchConfig(p Profile, hiPPS float64) measure.SearchConfig {
	return measure.SearchConfig{LoPPS: 5e4, HiPPS: hiPPS,
		LossTolerance: 0.002, Iterations: p.SearchIter}
}
