package experiments

// Regression tests for the PR-6 zero-alloc core: the steady-state PMD loop
// must not touch the heap, and the robustness scenarios must stay
// byte-identical run to run under the same seed (the determinism contract
// the flat event wheel and the packet arenas both promise to preserve).

import (
	"testing"

	"ovsxdp/internal/sim"
)

// TestSteadyStatePMDLoopZeroAlloc drives the standard single-flow AF_XDP
// P2P bed past warmup, then asserts that advancing the simulation — NIC
// receive, XDP program, XSK rings, PMD poll, classification, transmit —
// performs zero heap allocations per slice. This is the acceptance gate for
// the event-wheel + arena refactor: any per-packet make/append/closure that
// creeps back into the hot path fails this test.
func TestSteadyStatePMDLoopZeroAlloc(t *testing.T) {
	bed := NewP2PBed(DefaultBed(KindAFXDP, 1))
	const (
		ratePPS = 2e6
		runs    = 50
	)
	warmup := 2 * sim.Millisecond
	slice := 200 * sim.Microsecond
	// AllocsPerRun invokes the function runs+1 times (one untimed warmup
	// call); schedule generation to cover the whole span with margin.
	bed.Gen.Run(ratePPS, warmup+sim.Time(runs+4)*slice)
	bed.Eng.RunUntil(warmup)

	deliveredBefore := bed.Delivered
	now := warmup
	avg := testing.AllocsPerRun(runs, func() {
		now += slice
		bed.Eng.RunUntil(now)
	})
	if bed.Delivered == deliveredBefore {
		t.Fatal("no packets delivered during the measured window")
	}
	if avg != 0 {
		t.Fatalf("steady-state PMD loop allocates: %.2f allocs per %v slice (want 0)", avg, slice)
	}
}

// TestScenariosSameSeedByteIdentical runs each deterministic robustness
// scenario twice in one process and compares the rendered reports byte for
// byte. Every scenario builds its own engine from the same fixed seed, so
// any divergence means hidden state leaked between runs or ordering became
// nondeterministic (e.g. a map-iteration dependence in the event wheel or
// the arenas). simspeed is excluded: its headline numbers are wall-clock.
func TestScenariosSameSeedByteIdentical(t *testing.T) {
	for _, id := range []string{"restart", "cachesweep", "corescale", "churnscale", "connscale", "offload"} {
		sc, ok := GetScenario(id)
		if !ok {
			t.Fatalf("scenario %s not registered", id)
		}
		first := sc.Run(Quick).String()
		second := sc.Run(Quick).String()
		if first != second {
			t.Errorf("scenario %s diverged between same-seed runs:\n--- first\n%s\n--- second\n%s",
				id, first, second)
		}
	}
}
