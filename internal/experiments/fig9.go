package experiments

import (
	"ovsxdp/internal/measure"
	"ovsxdp/internal/perf"
	"ovsxdp/internal/sim"
)

// Figure 9: forwarding rate and CPU consumption for P2P, PVP, and PCP
// loopbacks, at 1 and 1,000 flows, across the kernel, AF_XDP, and DPDK
// datapaths. Paper anchors are approximate bar heights; the reproduction
// targets the orderings and CPU-category shapes (Table 4 holds the exact
// CPU numbers).

func init() {
	register(Experiment{ID: "fig9a", Title: "P2P forwarding rate and CPU (Figure 9a)", Run: runFig9a})
	register(Experiment{ID: "fig9b", Title: "PVP forwarding rate and CPU (Figure 9b)", Run: runFig9b})
	register(Experiment{ID: "fig9c", Title: "PCP forwarding rate and CPU (Figure 9c)", Run: runFig9c})
	register(Experiment{ID: "table4", Title: "CPU use by category at 1000 flows (Table 4)", Run: runTable4})
}

// fig9Probe builds a fresh bed per trial. When last is non-nil it records
// the most recent bed, so callers can read its perf counters afterwards.
func fig9Probe(p Profile, mk func() *Bed, last **Bed) measure.Probe {
	return func(rate float64) measure.ProbeResult {
		bed := mk()
		if last != nil {
			*last = bed
		}
		return RunProbe(bed, rate, p.Warmup, p.Window)
	}
}

type fig9Result struct {
	rate  float64
	usage sim.Usage
	perf  []perf.ThreadStats
}

// addPerfRows appends the opt-in per-stage attribution: for each processing
// thread of the case's final probe, the amortized virtual-time cost of every
// datapath stage (the pmd-perf-show breakdown in experiment-report form).
func addPerfRows(r *Report, name string, threads []perf.ThreadStats) {
	for _, t := range threads {
		for st := perf.StageRx; st < perf.NumStages; st++ {
			if t.Cycles[st] == 0 {
				continue
			}
			r.Add(name+" "+t.Name+" "+st.String(), t.CyclesPerPacket(st), 0, "ns/pkt")
		}
	}
}

func runP2PCase(p Profile, kind DPKind, flows int, hiPPS float64) fig9Result {
	cfg := DefaultBed(kind, flows)
	var last *Bed
	rate, res, _ := measure.LosslessRate(searchConfig(p, hiPPS),
		fig9Probe(p, func() *Bed { return NewP2PBed(cfg) }, &last))
	out := fig9Result{rate: rate, usage: res.Usage}
	if p.PerfStages && last != nil {
		out.perf = last.DP.PerfStats()
	}
	return out
}

func runFig9a(p Profile) *Report {
	r := &Report{ID: "fig9a", Title: "P2P max lossless rate (64B) and CPU"}
	cases := []struct {
		kind  DPKind
		flows int
		paper float64 // approximate bar heights (Mpps)
	}{
		{KindKernel, 1, 1.9},
		{KindKernel, 1000, 4.8},
		{KindAFXDP, 1, 7.1},
		{KindAFXDP, 1000, 5.7},
		{KindDPDK, 1, 11.0},
		{KindDPDK, 1000, 9.0},
	}
	for _, c := range cases {
		res := runP2PCase(p, c.kind, c.flows, 40e6)
		name := c.kind.String() + flowsSuffix(c.flows)
		r.Add(name, measure.Mpps(res.rate), c.paper, "Mpps")
		r.Add(name+" cpu", res.usage.Total(), 0, "HT")
		addPerfRows(r, name, res.perf)
	}
	r.AddNote("orderings to hold: dpdk > afxdp > kernel@1flow; kernel@1000 > kernel@1 (RSS)")
	return r
}

func runPVPCase(p Profile, kind DPKind, vd VDevKind, flows int) fig9Result {
	cfg := DefaultBed(kind, flows)
	cfg.VDev = vd
	var last *Bed
	rate, res, _ := measure.LosslessRate(searchConfig(p, 20e6),
		fig9Probe(p, func() *Bed { return NewPVPBed(cfg) }, &last))
	out := fig9Result{rate: rate, usage: res.Usage}
	if p.PerfStages && last != nil {
		out.perf = last.DP.PerfStats()
	}
	return out
}

func runFig9b(p Profile) *Report {
	r := &Report{ID: "fig9b", Title: "PVP max lossless rate (64B) and CPU"}
	cases := []struct {
		kind  DPKind
		vd    VDevKind
		flows int
		paper float64
	}{
		{KindKernel, VDevTap, 1, 0.9},
		{KindKernel, VDevTap, 1000, 2.0},
		{KindAFXDP, VDevTap, 1, 1.1},
		{KindAFXDP, VDevTap, 1000, 1.0},
		{KindAFXDP, VDevVhost, 1, 2.5},
		{KindAFXDP, VDevVhost, 1000, 2.2},
		{KindDPDK, VDevVhost, 1, 3.5},
		{KindDPDK, VDevVhost, 1000, 3.1},
	}
	for _, c := range cases {
		res := runPVPCase(p, c.kind, c.vd, c.flows)
		name := c.kind.String() + "+" + c.vd.String() + flowsSuffix(c.flows)
		r.Add(name, measure.Mpps(res.rate), c.paper, "Mpps")
		r.Add(name+" cpu", res.usage.Total(), 0, "HT")
		addPerfRows(r, name, res.perf)
	}
	r.AddNote("orderings: vhostuser > tap everywhere; afxdp+vhost ~ 0.7x dpdk+vhost")
	return r
}

func runFig9c(p Profile) *Report {
	r := &Report{ID: "fig9c", Title: "PCP max lossless rate (64B) and CPU"}
	cases := []struct {
		mode  PCPMode
		flows int
		paper float64
	}{
		{PCPKernel, 1, 1.2},
		{PCPKernel, 1000, 1.5},
		{PCPAFXDPRedir, 1, 3.0},
		{PCPAFXDPRedir, 1000, 3.0},
		{PCPDPDK, 1, 1.0},
		{PCPDPDK, 1000, 0.9},
	}
	for _, c := range cases {
		var last *Bed
		rate, res, _ := measure.LosslessRate(searchConfig(p, 20e6),
			fig9Probe(p, func() *Bed { return NewPCPBed(c.mode, c.flows, 1) }, &last))
		name := c.mode.String() + flowsSuffix(c.flows)
		r.Add(name, measure.Mpps(rate), c.paper, "Mpps")
		r.Add(name+" cpu", res.Usage.Total(), 0, "HT")
		if p.PerfStages && last != nil {
			addPerfRows(r, name, last.DP.PerfStats())
		}
	}
	r.AddNote("ordering: afxdp (XDP redirect, path C) beats both kernel and dpdk in rate and CPU")
	return r
}

// Table 4: the CPU category split at 1,000 flows, in hyperthreads.
func runTable4(p Profile) *Report {
	r := &Report{ID: "table4", Title: "CPU use with 1000 flows (hyperthreads per category)"}

	addUsage := func(prefix string, u sim.Usage, paperSys, paperSoftirq, paperGuest, paperUser float64) {
		r.Add(prefix+" system", u[sim.System], paperSys, "HT")
		r.Add(prefix+" softirq", u[sim.Softirq], paperSoftirq, "HT")
		r.Add(prefix+" guest", u[sim.Guest], paperGuest, "HT")
		r.Add(prefix+" user", u[sim.User], paperUser, "HT")
	}

	// P2P rows.
	k := runP2PCase(p, KindKernel, 1000, 40e6)
	addUsage("P2P kernel", k.usage, 0.1, 9.7, 0, 0.1)
	addPerfRows(r, "P2P kernel", k.perf)
	d := runP2PCase(p, KindDPDK, 1000, 40e6)
	addUsage("P2P dpdk", d.usage, 0, 0, 0, 1.0)
	addPerfRows(r, "P2P dpdk", d.perf)
	a := runP2PCase(p, KindAFXDP, 1000, 40e6)
	addUsage("P2P afxdp", a.usage, 0.1, 1.1, 0, 0.9)
	addPerfRows(r, "P2P afxdp", a.perf)

	// PVP rows.
	kv := runPVPCase(p, KindKernel, VDevTap, 1000)
	addUsage("PVP kernel+tap", kv.usage, 1.2, 6.0, 1.1, 0.2)
	addPerfRows(r, "PVP kernel+tap", kv.perf)
	dv := runPVPCase(p, KindDPDK, VDevVhost, 1000)
	addUsage("PVP dpdk+vhost", dv.usage, 0.9, 0, 1.0, 1.0)
	addPerfRows(r, "PVP dpdk+vhost", dv.perf)
	av := runPVPCase(p, KindAFXDP, VDevVhost, 1000)
	addUsage("PVP afxdp+vhost", av.usage, 0.9, 0.8, 1.0, 1.9)
	addPerfRows(r, "PVP afxdp+vhost", av.perf)

	// PCP rows.
	for _, c := range []struct {
		mode                      PCPMode
		sys, softirq, guest, user float64
	}{
		{PCPKernel, 0, 1.5, 0, 0},
		{PCPDPDK, 0.3, 0.5, 0, 0.2},
		{PCPAFXDPRedir, 0, 1.0, 0, 0},
	} {
		var last *Bed
		_, res, _ := measure.LosslessRate(searchConfig(p, 20e6),
			fig9Probe(p, func() *Bed { return NewPCPBed(c.mode, 1000, 1) }, &last))
		addUsage("PCP "+c.mode.String(), res.Usage, c.sys, c.softirq, c.guest, c.user)
		if p.PerfStages && last != nil {
			addPerfRows(r, "PCP "+c.mode.String(), last.DP.PerfStats())
		}
	}
	r.AddNote("paper values are Table 4 verbatim; busy-poll PMD threads always report ~1.0 user per thread")
	return r
}

func flowsSuffix(flows int) string {
	if flows == 1 {
		return " 1-flow"
	}
	return " 1000-flow"
}
