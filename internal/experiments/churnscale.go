package experiments

// The churnscale scenario measures million-flow churn: sustained datapath
// capacity while megaflows are continuously set up and expired, swept
// across table sizes from 10k to 1M concurrent flows (ROADMAP item:
// million-flow churn, unlocked by the zero-alloc simulator core).
//
// The workload models a load balancer or NAT box under connection churn:
// an active window of N five-tuples receives round-robin traffic while the
// window's base advances at a fixed churn rate — every advance retires the
// oldest flow (its traffic stops; the wheel revalidator expires it) and
// exposes a new one (its first packet misses, upcalls, and installs a
// fresh megaflow). Steady state therefore exercises, simultaneously: the
// upcall path at the flow-setup rate, the dpcls at the table size, the
// EMC/SMC invalidation discipline at the eviction rate, and the
// revalidator's expiry machinery — the combination the per-delete EMC
// flush historically collapsed under.
//
// Every flow id maps to one of two megaflow masks (by id parity), so the
// classifier runs two subtables and the usage-ranked probe order stays
// exercised under churn. All measurements are in the virtual domain —
// the JSON output is byte-identical run to run at fixed defaults.

import (
	"encoding/json"
	"fmt"
	"os"

	"ovsxdp/internal/api"
	"ovsxdp/internal/dpif"
	"ovsxdp/internal/flow"
	"ovsxdp/internal/ofproto"
	"ovsxdp/internal/packet"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/sim"
)

// ChurnscaleJSONPath, when non-empty, is where the churnscale scenario
// writes its machine-readable result. cmd/ovsbench defaults it to
// BENCH_churnscale.json; tests leave it empty to skip the write.
var ChurnscaleJSONPath string

// ChurnscaleOnly, when non-empty, restricts the run to the named points
// (CI runs just "10k" to keep the smoke job cheap).
var ChurnscaleOnly map[string]bool

// ChurnscalePoint is one measured (table size, setup rate) configuration.
// Every field is computed in the virtual domain, so a point is
// deterministic for a given profile.
type ChurnscalePoint struct {
	Name  string `json:"name"`
	Flows int    `json:"flows"`
	// RatePPS is the offered packet rate; ChurnPerS the flow-setup (and
	// retirement) rate.
	RatePPS   float64 `json:"rate_pps"`
	ChurnPerS float64 `json:"churn_per_s"`
	// IdleMs is the revalidator idle timeout; WindowMs the measured window.
	IdleMs   float64 `json:"idle_ms"`
	WindowMs float64 `json:"window_ms"`
	// Packets is the number of packets executed during the window.
	Packets uint64 `json:"packets"`
	// NsPerPkt is PMD busy nanoseconds per packet over the window,
	// including the upcall storm the churn sustains; CapacityMpps is its
	// reciprocal — what one core sustains at this table size and setup
	// rate.
	NsPerPkt     float64 `json:"ns_per_pkt"`
	CapacityMpps float64 `json:"capacity_mpps"`
	// Upcalls counts slow-path misses during the window (≈ churn rate ×
	// window when the caches behave; a cache-invalidation bug inflates it
	// toward the packet rate).
	Upcalls uint64 `json:"upcalls"`
	// Installs/Evicted are the window's flow-table deltas as seen by the
	// wheel revalidator; RevalChecks its deadline firings.
	Installs    uint64 `json:"installs"`
	Evicted     uint64 `json:"evicted"`
	RevalChecks uint64 `json:"reval_checks"`
	// RevalDutyPct is the dedicated revalidator CPU's busy share of the
	// window: per-flow check work amortized to once per idle timeout plus
	// eviction work proportional to the expiry rate — not to table reads
	// per sweep.
	RevalDutyPct float64 `json:"reval_duty_pct"`
	// Events is the number of engine events executed during the window.
	Events uint64 `json:"events"`
	// TotalInstalls/TotalEvicted/LiveAfterDrain form the conservation
	// ledger over the whole run: after the post-window drain, every
	// install must be accounted for as an eviction or a live flow
	// (LedgerOK), and the drain must reach zero live flows.
	TotalInstalls  uint64 `json:"total_installs"`
	TotalEvicted   uint64 `json:"total_evicted"`
	LiveAfterDrain int    `json:"live_after_drain"`
	LedgerOK       bool   `json:"ledger_ok"`
}

// ChurnscaleResult is the BENCH_churnscale.json schema.
type ChurnscaleResult struct {
	api.Envelope
	Points []ChurnscalePoint `json:"points"`
}

// churnscaleConfig parameterizes one point.
type churnscaleConfig struct {
	name      string
	flows     int
	ratePPS   float64
	churnPerS float64
	idle      sim.Time
	window    sim.Time
}

// churnscalePoints returns the sweep for a profile, cheapest first. The
// quick profile runs a single shortened 10k point (the CI smoke shape);
// full adds 100k and the headline 1M-concurrent-megaflow point. Each
// window spans exactly one idle period: wheel deadlines are phase-locked
// to install cohorts (the whole fill cohort fires in a burst once per
// idle timeout), so a shorter window can miss the burst entirely and
// report a misleadingly idle revalidator.
func churnscalePoints(quick bool) []churnscaleConfig {
	if quick {
		return []churnscaleConfig{
			{"10k", 10_000, 2e6, 5e4, 12 * sim.Millisecond, 12 * sim.Millisecond},
		}
	}
	return []churnscaleConfig{
		{"10k", 10_000, 2e6, 5e4, 20 * sim.Millisecond, 20 * sim.Millisecond},
		{"100k", 100_000, 8e6, 1e5, 60 * sim.Millisecond, 60 * sim.Millisecond},
		{"1m", 1_000_000, 2e7, 2e5, 300 * sim.Millisecond, 300 * sim.Millisecond},
	}
}

// churnMasks are the two megaflow shapes flow ids alternate between (by
// parity), giving the classifier two subtables whose usage-ranked probe
// order stays exercised under churn.
func churnMasks() [2]flow.Mask {
	base := func() *flow.MaskBuilder {
		return flow.NewMaskBuilder().InPort().EthType().IPProto().
			IP4Src(32).IP4Dst(32).TPDst()
	}
	return [2]flow.Mask{base().TPSrc().Build(), base().Build()}
}

// churnSrcIP encodes a flow id into the source address (the only field the
// generator varies), so the slow path can recover the id's parity.
func churnSrcIP(id int) hdr.IP4 {
	return hdr.MakeIP4(10, byte(id>>16), byte(id>>8), byte(id))
}

// churnGen drives round-robin traffic over the active flow window
// [base, base+flows) by byte-patching the source IP into a prebuilt
// template frame — no per-packet allocation, no RNG, fully deterministic.
type churnGen struct {
	eng      *sim.Engine
	dp       dpif.Dpif
	template []byte
	pool     *packet.Pool
	flows    int
	base     int // advanced by the churn timer
	cursor   int
	stopped  bool
	sent     uint64
}

// srcIPOffset is where the IPv4 source address sits in the template frame:
// the Ethernet header plus the IPv4 source-address offset.
const srcIPOffset = hdr.EthernetSize + 12

func newChurnGen(eng *sim.Engine, dp dpif.Dpif, flows int) *churnGen {
	frame := hdr.NewBuilder().
		Eth(hdr.MAC{0x02, 0xaa, 0, 0, 0, 1}, hdr.MAC{0x02, 0xbb, 0, 0, 0, 1}).
		IPv4H(churnSrcIP(0), hdr.MakeIP4(10, 255, 0, 1), 64).
		UDPH(1000, 2000).PadTo(64).Build()
	return &churnGen{eng: eng, dp: dp, template: frame,
		pool: packet.NewPool(64, len(frame), true), flows: flows}
}

// emit executes one packet for the next flow in the active window.
func (g *churnGen) emit() {
	id := g.base + g.cursor
	g.cursor++
	if g.cursor >= g.flows {
		g.cursor = 0
	}
	ip := churnSrcIP(id)
	g.template[srcIPOffset] = byte(ip >> 24)
	g.template[srcIPOffset+1] = byte(ip >> 16)
	g.template[srcIPOffset+2] = byte(ip >> 8)
	g.template[srcIPOffset+3] = byte(ip)
	p := g.pool.GetCopy(g.template)
	p.InPort = 1
	g.sent++
	g.dp.Execute(p)
}

// run self-schedules packet arrivals at ratePPS until stopped.
func (g *churnGen) run(ratePPS float64) {
	interval := sim.Time(float64(sim.Second) / ratePPS)
	if interval <= 0 {
		interval = 1
	}
	next := g.eng.Now()
	var tick func()
	tick = func() {
		if g.stopped {
			return
		}
		g.emit()
		next += interval
		g.eng.ScheduleAt(next, tick)
	}
	g.eng.ScheduleAt(next, tick)
}

// churn advances the window base at churnPerS until stopped: each advance
// retires the oldest flow and exposes a new one.
func (g *churnGen) churn(churnPerS float64) {
	interval := sim.Time(float64(sim.Second) / churnPerS)
	if interval <= 0 {
		interval = 1
	}
	next := g.eng.Now() + interval
	var tick func()
	tick = func() {
		if g.stopped {
			return
		}
		g.base++
		next += interval
		g.eng.ScheduleAt(next, tick)
	}
	g.eng.ScheduleAt(next, tick)
}

// runChurnscalePoint executes one configuration: build an Execute-driven
// netdev datapath, fill the table, measure a churning steady-state window,
// then stop traffic and drain the table through the wheel revalidator.
func runChurnscalePoint(c churnscaleConfig) ChurnscalePoint {
	eng := sim.NewEngine(1)
	masks := churnMasks()
	d := mustOpen("netdev", dpif.Config{Eng: eng, Pipeline: ofproto.NewPipeline()})
	if err := d.PortAdd(dpif.TxPort{PortID: 2, PortName: "sink",
		Deliver: func(p *packet.Packet) {}}); err != nil {
		panic(err)
	}
	d.SetUpcall(func(key flow.Key) (ofproto.Megaflow, error) {
		f := key.Unpack()
		return ofproto.Megaflow{Mask: masks[byte(f.IP4Src)&1],
			Actions: []ofproto.DPAction{{Type: ofproto.DPOutput, Port: 2}}}, nil
	})

	// The revalidator attaches before any flow exists, so it discovers
	// every install through the flow hook (no map-ordered initial dump).
	r := dpif.StartWheelRevalidator(eng, d, c.idle)

	g := newChurnGen(eng, d, c.flows)
	g.run(c.ratePPS)
	g.churn(c.churnPerS)

	// Fill: one full round of the window installs every flow. Warmup then
	// extends one idle timeout past the fill so the first cohort of wheel
	// deadlines is already firing — the measured window sees the
	// revalidator's steady-state load (checks at flows/idle, evictions at
	// the churn rate), not the quiet period before any deadline matures.
	fill := sim.Time(float64(c.flows) / c.ratePPS * float64(sim.Second))
	warmup := fill + c.idle + 5*sim.Millisecond
	eng.RunUntil(warmup)

	nd := d.(*dpif.Netdev)
	pmd := nd.Datapath().PMDs()[0]
	for _, cpu := range eng.CPUs() {
		cpu.ResetAccounting()
	}
	sent0, miss0 := g.sent, d.Stats().Missed
	inst0, evic0, chk0 := r.Installs, r.Evicted, r.Checks
	events0 := eng.Executed()

	eng.RunUntil(warmup + c.window)

	pkts := g.sent - sent0
	busy := pmd.CPU.BusyTotal()
	revalBusy := r.CPU.BusyTotal()
	pt := ChurnscalePoint{
		Name: c.name, Flows: c.flows,
		RatePPS: c.ratePPS, ChurnPerS: c.churnPerS,
		IdleMs:      float64(c.idle) / float64(sim.Millisecond),
		WindowMs:    float64(c.window) / float64(sim.Millisecond),
		Packets:     pkts,
		Upcalls:     d.Stats().Missed - miss0,
		Installs:    r.Installs - inst0,
		Evicted:     r.Evicted - evic0,
		RevalChecks: r.Checks - chk0,
		Events:      eng.Executed() - events0,
	}
	if pkts > 0 {
		pt.NsPerPkt = float64(busy) / float64(pkts)
		pt.CapacityMpps = 1e3 / pt.NsPerPkt
	}
	pt.RevalDutyPct = 100 * float64(revalBusy) / float64(c.window)

	// Drain: stop traffic and churn; with no hits, every live flow's next
	// deadline evicts it, so the table must empty within a few idle
	// timeouts.
	g.stopped = true
	now := warmup + c.window
	for step := 0; step < 8 && d.Stats().Flows > 0; step++ {
		now += c.idle
		eng.RunUntil(now)
	}
	pt.TotalInstalls = r.Installs
	pt.TotalEvicted = r.Evicted
	pt.LiveAfterDrain = d.Stats().Flows
	pt.LedgerOK = r.Installs == r.Evicted+uint64(pt.LiveAfterDrain)
	r.Stop()
	return pt
}

// RunChurnscale executes the churnscale sweep for a profile and returns
// the structured result (the scenario wrapper renders and persists it).
func RunChurnscale(p Profile) ChurnscaleResult {
	quick := p.Window < Full.Window
	profileName := "full"
	if quick {
		profileName = "quick"
	}
	res := ChurnscaleResult{Envelope: api.NewEnvelope("churnscale", 1, profileName)}
	for _, c := range churnscalePoints(quick) {
		if len(ChurnscaleOnly) > 0 && !ChurnscaleOnly[c.name] {
			continue
		}
		res.Points = append(res.Points, runChurnscalePoint(c))
	}
	return res
}

func init() {
	registerScenario(Scenario{
		ID:    "churnscale",
		Title: "million-flow churn: capacity vs table size under flow setup/expiry",
		Run: func(p Profile) *Report {
			res := RunChurnscale(p)
			rep := &Report{ID: "churnscale",
				Title: "flow churn sweep (setup rate x table size, wheel-revalidated expiry)"}
			for _, pt := range res.Points {
				rep.Add(pt.Name+" flows: capacity per core", pt.CapacityMpps, 0, "Mpps")
				rep.Add(pt.Name+" flows: busy time per packet", pt.NsPerPkt, 0, "ns/pkt")
				rep.Add(pt.Name+" flows: upcalls in window", float64(pt.Upcalls), 0, "upcalls")
				rep.Add(pt.Name+" flows: revalidator duty cycle", pt.RevalDutyPct, 0, "%")
				ledger := "ok"
				if !pt.LedgerOK {
					ledger = "BROKEN"
				}
				rep.AddNote("%s: installs %d = evicted %d + live %d after drain (ledger %s); %d reval checks, %d engine events in window",
					pt.Name, pt.TotalInstalls, pt.TotalEvicted, pt.LiveAfterDrain, ledger,
					pt.RevalChecks, pt.Events)
			}
			if ChurnscaleJSONPath != "" {
				if err := WriteChurnscaleJSON(ChurnscaleJSONPath, res); err != nil {
					rep.AddNote("failed to write %s: %v", ChurnscaleJSONPath, err)
				} else {
					rep.AddNote("wrote %s", ChurnscaleJSONPath)
				}
			}
			return rep
		},
	})
}

// WriteChurnscaleJSON persists a churnscale result.
func WriteChurnscaleJSON(path string, res ChurnscaleResult) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadChurnscaleJSON reads a previously written result.
func LoadChurnscaleJSON(path string) (ChurnscaleResult, error) {
	var res ChurnscaleResult
	data, err := os.ReadFile(path)
	if err != nil {
		return res, err
	}
	if err := json.Unmarshal(data, &res); err != nil {
		return res, fmt.Errorf("%s: %w", path, err)
	}
	return res, nil
}
