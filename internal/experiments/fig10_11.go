package experiments

import (
	"ovsxdp/internal/containersim"
	"ovsxdp/internal/core"
	"ovsxdp/internal/costmodel"
	"ovsxdp/internal/ebpf"
	"ovsxdp/internal/flow"
	"ovsxdp/internal/kernelsim"
	"ovsxdp/internal/nicsim"
	"ovsxdp/internal/ofproto"
	"ovsxdp/internal/packet"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/sim"
	"ovsxdp/internal/trafficgen"
	"ovsxdp/internal/vdev"
	"ovsxdp/internal/vmsim"
	"ovsxdp/internal/xdp"
)

// Figure 10: netperf TCP_RR between a VM on one host and a server on the
// other; Figure 11: TCP_RR between two containers on one host.
//
// Latency structure: fixed path costs come from the real components (PMD
// poll gaps, NIC interrupt moderation with exponential jitter, ring hops);
// endpoint process wakeups are sampled log-normally, since netperf's
// client/server block in recv() between transactions.

func init() {
	register(Experiment{ID: "fig10", Title: "Inter-host VM latency (Figure 10)", Run: runFig10})
	register(Experiment{ID: "fig11", Title: "Intra-host container latency (Figure 11)", Run: runFig11})
}

// wakeupSampler models a blocked process being scheduled: a log-normal
// around p50 with tail sigma.
func wakeupSampler(eng *sim.Engine, p50 sim.Time, sigma float64) func() sim.Time {
	rnd := eng.Rand().Fork()
	mu := 0.0 // ln(scale) handled by multiplying p50
	return func() sim.Time {
		f := rnd.LogNormal(mu, sigma)
		return sim.Time(float64(p50) * f)
	}
}

// vmRRBed wires: client VM on host A <-> OVS datapath <-> uplink NIC <->
// wire <-> server host B (plain kernel endpoint).
type vmRRBed struct {
	eng *sim.Engine
	rr  *trafficgen.RR
}

func rrPipeline() *ofproto.Pipeline {
	pl := ofproto.NewPipeline()
	m := flow.NewMaskBuilder().InPort().Build()
	// VM (3) <-> uplink (2).
	pl.AddRule(&ofproto.Rule{TableID: 0, Priority: 1,
		Match:   ofproto.NewMatch(flow.Fields{InPort: 3}, m),
		Actions: []ofproto.Action{ofproto.Output(2)}})
	pl.AddRule(&ofproto.Rule{TableID: 0, Priority: 1,
		Match:   ofproto.NewMatch(flow.Fields{InPort: 2}, m),
		Actions: []ofproto.Action{ofproto.Output(3)}})
	return pl
}

func newVMRRBed(kind DPKind, vd VDevKind, transactions int, seed uint64) *vmRRBed {
	eng := sim.NewEngine(seed)
	bed := &vmRRBed{eng: eng}

	nicB := nicsim.New(eng, nicsim.Config{Name: "uplink", Ifindex: 2, Queues: 1,
		LinkRate: costmodel.LinkRate25G,
		Offloads: nicsim.Offloads{TxCsum: kind != KindAFXDP, RxCsum: kind != KindAFXDP}})

	// Guest client and the endpoints' wakeup samplers: netperf blocks in
	// recv() between transactions, so each message pays a scheduler
	// wakeup (~9us median on the paper's Xeons).
	clientWake := wakeupSampler(eng, 9*sim.Microsecond, 0.30)
	serverWake := wakeupSampler(eng, 9*sim.Microsecond, 0.30)
	// Virtio completion notification into the guest: a lightweight
	// eventfd/irqfd for vhostuser, the full QEMU emulation path for tap.
	notifyP50 := sim.Time(3500)
	if vd == VDevTap {
		notifyP50 = 13 * sim.Microsecond
	}
	vmNotify := wakeupSampler(eng, notifyP50, 0.30)
	// The in-kernel datapath's work is deferred to ksoftirqd when the
	// packet arrives from process context, adding a scheduling delay
	// with a tail (part of the kernel path's P99 spread).
	softirqWake := wakeupSampler(eng, 4*sim.Microsecond, 0.60)
	var sc kernelsim.SocketCosts

	var rr *trafficgen.RR
	var clientVM *vmsim.VM
	var clientSend func(*packet.Packet)

	// Server host B: attached to the far end of the wire; replies come
	// back into nicB after wire delay.
	serverCPU := eng.NewCPU("hostB")
	nicB.ConnectWire(func(p *packet.Packet) {
		// Server host NIC interrupt + stack + netserver wakeup.
		irq := costmodel.InterruptLatencyMean/2 +
			sim.Time(eng.Rand().Exp(float64(costmodel.InterruptLatencyMean/2)))
		eng.Schedule(irq, func() {
			serverCPU.Consume(sim.Softirq, sc.SoftirqRxCost(len(p.Data)))
			eng.Schedule(serverWake(), func() { rr.OnRequestArrived(p) })
		})
	})

	switch kind {
	case KindKernel:
		kdp := kernelsim.NewDatapath(eng, kernelsim.FlavorModule, rrPipeline())
		tap := vdev.NewTap("tap0")
		backend := vmsim.NewTapBackend(eng, tap, eng.NewCPU("qemu"))
		clientVM = vmsim.New(eng, vmsim.Config{Name: "client", Backend: backend,
			OnPacket: func(vm *vmsim.VM, p *packet.Packet) {
				eng.Schedule(vmNotify()+clientWake(), func() { rr.OnResponseArrived(p) })
			}})
		kdp.Outputs[2] = func(p *packet.Packet) { nicB.Transmit(p) }
		kdp.Outputs[3] = func(p *packet.Packet) { tap.ToKernel.Push(p) }
		cpu := eng.NewCPU("ksoftirqd")
		(&kernelsim.NAPIActor{Eng: eng, CPU: cpu,
			Src: kernelsim.VQueueSource{Q: tap.FromKernel},
			Handler: func(cpu *sim.CPU, pkts []*packet.Packet) {
				for _, p := range pkts {
					p.InPort = 3
					pkt := p
					eng.Schedule(softirqWake(), func() { kdp.Process(cpu, pkt) })
				}
			}}).Start()
		(&kernelsim.NAPIActor{Eng: eng, CPU: cpu,
			Src: kernelsim.NICQueueSource{Q: nicB.Queue(0)},
			Handler: func(cpu *sim.CPU, pkts []*packet.Packet) {
				for _, p := range pkts {
					p.InPort = 2
					pkt := p
					eng.Schedule(softirqWake(), func() { kdp.Process(cpu, pkt) })
				}
			}}).Start()
		clientSend = func(p *packet.Packet) { clientVM.Transmit(p) }

	case KindAFXDP, KindDPDK:
		dp := core.NewDatapath(eng, rrPipeline(), core.DefaultOptions())
		var uplink core.Port
		if kind == KindAFXDP {
			if _, err := core.AttachDefaultProgram(nicB); err != nil {
				panic(err)
			}
			uplink = core.NewAFXDPPort(core.AFXDPPortConfig{ID: 2, NIC: nicB, Eng: eng})
		} else {
			uplink = core.NewDPDKPort(2, nicB)
		}
		dp.AddPort(uplink)

		var vmPort core.Port
		var backend vmsim.Backend
		if vd == VDevVhost {
			dev := vdev.NewVhostUser("vhost0")
			backend = &vmsim.VhostUserBackend{Dev: dev}
			vmPort = core.NewVhostPort(3, dev)
		} else {
			tap := vdev.NewTap("tap0")
			backend = vmsim.NewTapBackend(eng, tap, eng.NewCPU("qemu"))
			vmPort = core.NewTapPort(3, tap)
		}
		dp.AddPort(vmPort)
		clientVM = vmsim.New(eng, vmsim.Config{Name: "client", Backend: backend,
			OnPacket: func(vm *vmsim.VM, p *packet.Packet) {
				eng.Schedule(vmNotify()+clientWake(), func() { rr.OnResponseArrived(p) })
			}})
		pmd := dp.NewPMD(core.ModePoll, nil)
		pmd.AssignRxQueue(uplink, 0)
		pmd.AssignRxQueue(vmPort, 0)
		pmd.Start()
		clientSend = func(p *packet.Packet) { clientVM.Transmit(p) }
	}

	rr = trafficgen.NewRR(trafficgen.RRConfig{
		Eng: eng, Transactions: transactions,
		SrcMAC: hdr.MAC{2, 0, 0, 0, 0, 1}, DstMAC: hdr.MAC{2, 0, 0, 0, 0, 2},
		SrcIP: hdr.MakeIP4(10, 0, 0, 1), DstIP: hdr.MakeIP4(10, 0, 0, 2),
		SrcPort: 40000, DstPort: 12865,
		SendRequest: clientSend,
		SendResponse: func(p *packet.Packet) {
			// Server transmit: stack tx + wire back into nicB.
			serverCPU.Consume(sim.System, sc.SendCost(len(p.Data)))
			eng.Schedule(costmodel.WireAndNIC, func() { nicB.Receive(p) })
		},
		OnDone: eng.Stop, // busy-poll PMDs never drain the event queue
	})
	bed.rr = rr
	return bed
}

func runFig10(p Profile) *Report {
	r := &Report{ID: "fig10", Title: "TCP_RR latency, host to VM across hosts (us)"}
	cases := []struct {
		kind          DPKind
		vd            VDevKind
		p50, p90, p99 float64 // paper, microseconds
	}{
		{KindKernel, VDevTap, 58, 68, 94},
		{KindAFXDP, VDevVhost, 39, 41, 53},
		{KindDPDK, VDevVhost, 36, 38, 45},
	}
	for _, c := range cases {
		bed := newVMRRBed(c.kind, c.vd, p.RRCount, 11)
		bed.rr.Start()
		bed.eng.Run()
		s := bed.rr.Latencies.Summarize()
		name := c.kind.String()
		r.Add(name+" P50", s.P50/1e3, c.p50, "us")
		r.Add(name+" P90", s.P90/1e3, c.p90, "us")
		r.Add(name+" P99", s.P99/1e3, c.p99, "us")
		r.Add(name+" kTPS", bed.rr.TransactionsPerSec()/1e3, 1e3/c.p50, "k/s")
	}
	r.AddNote("shape: kernel slowest with the widest tail; AF_XDP trails DPDK by a few us")
	return r
}

// containerRRBed wires two containers through one of the Figure 11
// datapaths on a single host.
type containerRRBed struct {
	eng *sim.Engine
	rr  *trafficgen.RR
}

func newContainerRRBed(mode PCPMode, transactions int, seed uint64) *containerRRBed {
	eng := sim.NewEngine(seed)
	bed := &containerRRBed{eng: eng}

	vethC := vdev.NewVethPair("veth-client")
	vethS := vdev.NewVethPair("veth-server")
	clientWake := wakeupSampler(eng, 7*sim.Microsecond, 0.35)
	serverWake := wakeupSampler(eng, 7*sim.Microsecond, 0.35)

	var rr *trafficgen.RR
	client := containersim.New(eng, containersim.Config{Name: "client", Veth: vethC,
		OnPacket: func(c *containersim.Container, p *packet.Packet) {
			eng.Schedule(clientWake(), func() { rr.OnResponseArrived(p) })
		}})
	server := containersim.New(eng, containersim.Config{Name: "server", Veth: vethS,
		OnPacket: func(c *containersim.Container, p *packet.Packet) {
			eng.Schedule(serverWake(), func() { rr.OnRequestArrived(p) })
		}})

	// The switching fabric between the two veth host ends.
	var toServer, toClient func(*packet.Packet)
	switch mode {
	case PCPKernel:
		// veth -> kernel OVS -> veth: one softirq hop each way.
		cpu := eng.NewCPU("ksoftirqd")
		kdp := kernelsim.NewDatapath(eng, kernelsim.FlavorModule, forwardPipelinePCP())
		kdp.Outputs[3] = func(p *packet.Packet) { vethS.SendA(p) }
		kdp.Outputs[2] = func(p *packet.Packet) { vethC.SendA(p) }
		toServer = func(p *packet.Packet) {
			eng.Schedule(0, func() { p.InPort = 1; kdp.Process(cpu, p) })
		}
		toClient = func(p *packet.Packet) {
			eng.Schedule(0, func() { p.InPort = 3; revProcess(kdp, cpu, p) })
		}
	case PCPAFXDPRedir:
		// In-kernel XDP redirect between the veths: one program run per
		// hop, no userspace.
		cpu := eng.NewCPU("softirq")
		hop := func(deliver func(*packet.Packet)) func(*packet.Packet) {
			return func(p *packet.Packet) {
				eng.Schedule(0, func() {
					cpu.Consume(sim.Softirq, costmodel.XDPDriverOverhead+
						costmodel.XDPRedirectVeth+costmodel.EBPFPacketTouch)
					deliver(p)
				})
			}
		}
		toServer = hop(func(p *packet.Packet) { vethS.SendA(p) })
		toClient = hop(func(p *packet.Packet) { vethC.SendA(p) })
	case PCPDPDK:
		// DPDK reaches containers via AF_PACKET: user/kernel crossings
		// with heavy queueing jitter on both directions, plus the PMD
		// batching gap (Section 5.3's explanation for 81/136/241 us).
		pmdCPU := eng.NewCPU("pmd")
		rnd := eng.Rand().Fork()
		crossing := func() sim.Time {
			// AF_PACKET injection: a fixed user/kernel crossing plus a
			// heavy-tailed queueing component (the source of Figure
			// 11's 241us P99).
			base := costmodel.DPDKContainerCrossing
			return base*17/20 + sim.Time(rnd.LogNormal(0, 1.35)*float64(base)/5)
		}
		hop := func(deliver func(*packet.Packet)) func(*packet.Packet) {
			return func(p *packet.Packet) {
				eng.Schedule(crossing(), func() {
					pmdCPU.Consume(sim.User, costmodel.DPDKRxDescriptor+costmodel.ParseFlowKey+
						costmodel.EMCHit+costmodel.ExecActionOutput)
					eng.Schedule(crossing(), func() { deliver(p) })
				})
			}
		}
		toServer = hop(func(p *packet.Packet) { vethS.SendA(p) })
		toClient = hop(func(p *packet.Packet) { vethC.SendA(p) })
	}

	// Container outbound queues feed the fabric.
	cpu := eng.NewCPU("veth-softirq")
	(&kernelsim.NAPIActor{Eng: eng, CPU: cpu,
		Src: kernelsim.VQueueSource{Q: vethC.BtoA},
		Handler: func(cpu *sim.CPU, pkts []*packet.Packet) {
			for _, p := range pkts {
				toServer(p)
			}
		}}).Start()
	(&kernelsim.NAPIActor{Eng: eng, CPU: cpu,
		Src: kernelsim.VQueueSource{Q: vethS.BtoA},
		Handler: func(cpu *sim.CPU, pkts []*packet.Packet) {
			for _, p := range pkts {
				toClient(p)
			}
		}}).Start()

	rr = trafficgen.NewRR(trafficgen.RRConfig{
		Eng: eng, Transactions: transactions,
		SrcMAC: hdr.MAC{2, 0, 0, 0, 0, 1}, DstMAC: hdr.MAC{2, 0, 0, 0, 0, 2},
		SrcIP: hdr.MakeIP4(10, 0, 0, 1), DstIP: hdr.MakeIP4(10, 0, 0, 2),
		SrcPort: 40000, DstPort: 12865,
		SendRequest:  func(p *packet.Packet) { client.Transmit(p) },
		SendResponse: func(p *packet.Packet) { server.Transmit(p) },
		OnDone:       eng.Stop,
	})
	bed.rr = rr
	return bed
}

// revProcess runs the reverse direction through the kernel datapath.
func revProcess(kdp *kernelsim.Datapath, cpu *sim.CPU, p *packet.Packet) {
	kdp.Process(cpu, p)
}

func runFig11(p Profile) *Report {
	r := &Report{ID: "fig11", Title: "TCP_RR latency, container to container (us)"}
	cases := []struct {
		mode          PCPMode
		p50, p90, p99 float64
	}{
		{PCPKernel, 15, 16, 20},
		{PCPAFXDPRedir, 15, 16, 20},
		{PCPDPDK, 81, 136, 241},
	}
	for _, c := range cases {
		bed := newContainerRRBed(c.mode, p.RRCount, 13)
		bed.rr.Start()
		bed.eng.Run()
		s := bed.rr.Latencies.Summarize()
		name := c.mode.String()
		r.Add(name+" P50", s.P50/1e3, c.p50, "us")
		r.Add(name+" P90", s.P90/1e3, c.p90, "us")
		r.Add(name+" P99", s.P99/1e3, c.p99, "us")
		r.Add(name+" kTPS", bed.rr.TransactionsPerSec()/1e3, 1e3/c.p50, "k/s")
	}
	r.AddNote("shape: kernel ~ afxdp (both in-kernel paths); DPDK 5-12x slower with a heavy tail")
	return r
}

// Silence the unused-import check for ebpf/xdp, which the PCP redirect bed
// in testbed.go uses; fig11's hop model references their costs only.
var _ = ebpf.XDPPass
var _ = xdp.MapIDXsk
