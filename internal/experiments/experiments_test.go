package experiments

import (
	"testing"

	"ovsxdp/internal/measure"
)

// The experiment tests assert the paper's qualitative shapes — orderings,
// ratios, crossovers — using the Quick profile. Absolute numbers are
// checked loosely; EXPERIMENTS.md records the full paper-vs-measured table
// from the Full profile.

func row(t *testing.T, r *Report, name string) Row {
	t.Helper()
	for _, row := range r.Rows {
		if row.Name == name {
			return row
		}
	}
	t.Fatalf("report %s has no row %q", r.ID, name)
	return Row{}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1", "fig2", "fig8a", "fig8b", "fig8c", "fig9a", "fig9b",
		"fig9c", "fig10", "fig11", "fig12", "table1", "table2", "table3",
		"table4", "table5"}
	for _, id := range want {
		if _, ok := Get(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(All()) < len(want) {
		t.Errorf("registry has %d experiments, want >= %d", len(All()), len(want))
	}
}

func TestFig2Shape(t *testing.T) {
	r := runFig2(Quick)
	kernel := row(t, r, "kernel").Measured
	ebpf := row(t, r, "ebpf").Measured
	dpdk := row(t, r, "dpdk").Measured
	if !(dpdk > kernel && kernel > ebpf) {
		t.Fatalf("fig2 ordering violated: dpdk=%.2f kernel=%.2f ebpf=%.2f", dpdk, kernel, ebpf)
	}
	// eBPF is 10-20% slower than the kernel module.
	ratio := ebpf / kernel
	if ratio < 0.75 || ratio > 0.95 {
		t.Fatalf("ebpf/kernel = %.2f, want 0.80-0.90", ratio)
	}
}

func TestTable2Ladder(t *testing.T) {
	r := runTable2(Quick)
	names := []string{"none", "O1", "O1+O2", "O1+O2+O3", "O1..O4", "O1..O5"}
	prev := 0.0
	for _, n := range names {
		got := row(t, r, n)
		if got.Measured <= prev {
			t.Fatalf("ladder not monotone at %s: %.2f <= %.2f", n, got.Measured, prev)
		}
		if got.Ratio() < 0.7 || got.Ratio() > 1.3 {
			t.Errorf("%s: measured %.2f vs paper %.2f (x%.2f)", n, got.Measured, got.Paper, got.Ratio())
		}
		prev = got.Measured
	}
	// O1 is the big jump (6x in the paper).
	if row(t, r, "O1").Measured/row(t, r, "none").Measured < 3 {
		t.Error("O1 (PMD threads) must be the dominant optimization")
	}
}

func TestTable5Shape(t *testing.T) {
	r := runTable5(Quick)
	a := row(t, r, "A: drop only").Measured
	b := row(t, r, "B: parse eth/ipv4, drop").Measured
	c := row(t, r, "C: parse, L2 lookup, drop").Measured
	d := row(t, r, "D: parse, swap MACs, fwd").Measured
	if !(a > b && b > c && c > d) {
		t.Fatalf("task rates must degrade with complexity: %.1f %.1f %.1f %.1f", a, b, c, d)
	}
	for _, rr := range r.Rows {
		if rr.Ratio() < 0.8 || rr.Ratio() > 1.25 {
			t.Errorf("%s: x%.2f off the paper anchor", rr.Name, rr.Ratio())
		}
	}
}

func TestFig9aShape(t *testing.T) {
	r := runFig9a(Quick)
	k1 := row(t, r, "kernel 1-flow").Measured
	k1000 := row(t, r, "kernel 1000-flow").Measured
	a1 := row(t, r, "afxdp 1-flow").Measured
	d1 := row(t, r, "dpdk 1-flow").Measured
	a1000 := row(t, r, "afxdp 1000-flow").Measured
	d1000 := row(t, r, "dpdk 1000-flow").Measured

	if !(d1 > a1 && a1 > k1) {
		t.Fatalf("1-flow ordering: dpdk=%.1f afxdp=%.1f kernel=%.1f", d1, a1, k1)
	}
	// Only the kernel gains from 1000 flows (RSS spreads them).
	if k1000 <= k1 {
		t.Fatalf("kernel must gain from RSS at 1000 flows: %.1f vs %.1f", k1000, k1)
	}
	if a1000 >= a1 || d1000 >= d1 {
		t.Fatal("userspace datapaths must lose throughput at 1000 flows")
	}
	// Kernel CPU cost: fast but wildly inefficient.
	kcpu := row(t, r, "kernel 1000-flow cpu").Measured
	dcpu := row(t, r, "dpdk 1000-flow cpu").Measured
	if kcpu < 5*dcpu {
		t.Fatalf("kernel must burn far more CPU than dpdk: %.1f vs %.1f HT", kcpu, dcpu)
	}
}

func TestFig9cShape(t *testing.T) {
	r := runFig9c(Quick)
	ax := row(t, r, "afxdp-xdp-redirect 1000-flow").Measured
	k := row(t, r, "kernel 1000-flow").Measured
	d := row(t, r, "dpdk 1000-flow").Measured
	// Outcome #2: AF_XDP wins the container scenario outright.
	if !(ax > k && ax > d) {
		t.Fatalf("PCP: afxdp=%.1f must beat kernel=%.1f and dpdk=%.1f", ax, k, d)
	}
}

func TestFig11Shape(t *testing.T) {
	r := runFig11(Quick)
	kP50 := row(t, r, "kernel P50").Measured
	aP50 := row(t, r, "afxdp-xdp-redirect P50").Measured
	dP50 := row(t, r, "dpdk P50").Measured
	dP99 := row(t, r, "dpdk P99").Measured
	// Kernel and AF_XDP are close; DPDK is 5-12x worse with a heavy tail.
	if aP50 > kP50*1.3 || kP50 > aP50*1.3 {
		t.Fatalf("kernel (%.1f) and afxdp (%.1f) P50 should be close", kP50, aP50)
	}
	if dP50 < 4*kP50 {
		t.Fatalf("dpdk P50 (%.1f) must be several times the kernel's (%.1f)", dP50, kP50)
	}
	if dP99 < 1.5*dP50 {
		t.Fatalf("dpdk must have a heavy tail: P99=%.1f P50=%.1f", dP99, dP50)
	}
}

func TestFig10Shape(t *testing.T) {
	r := runFig10(Quick)
	k := row(t, r, "kernel P50").Measured
	a := row(t, r, "afxdp P50").Measured
	d := row(t, r, "dpdk P50").Measured
	// Kernel slowest; AF_XDP barely trails DPDK.
	if !(k > a && a > d) {
		t.Fatalf("fig10 P50 ordering: kernel=%.1f afxdp=%.1f dpdk=%.1f", k, a, d)
	}
	if a > d*1.25 {
		t.Fatalf("afxdp (%.1f us) must barely trail dpdk (%.1f us)", a, d)
	}
}

func TestTable1Compatibility(t *testing.T) {
	r := runTable1(Quick)
	for _, rr := range r.Rows {
		if rr.Unit != "works" {
			continue
		}
		isDPDK := len(rr.Name) > 7 && rr.Name[len(rr.Name)-4:] == "dpdk"
		if isDPDK && rr.Measured != 0 {
			t.Errorf("%s: DPDK-bound NIC must break the tool", rr.Name)
		}
		if !isDPDK && rr.Measured != 1 {
			t.Errorf("%s: AF_XDP-managed NIC must keep the tool working", rr.Name)
		}
	}
}

func TestTable3Exact(t *testing.T) {
	r := runTable3(Quick)
	for _, name := range []string{"Geneve tunnels", "VMs (two interfaces per VM)",
		"OpenFlow rules", "OpenFlow tables"} {
		rr := row(t, r, name)
		if rr.Measured != rr.Paper {
			t.Errorf("%s: %.0f != paper %.0f", name, rr.Measured, rr.Paper)
		}
	}
}

func TestFig8bOffloadLadder(t *testing.T) {
	r := runFig8b(Quick)
	none := row(t, r, "afxdp + vhost (no offload)").Measured
	csum := row(t, r, "afxdp + vhost (csum)").Measured
	tso := row(t, r, "afxdp + vhost (csum+TSO)").Measured
	kernel := row(t, r, "kernel + tap (csum+TSO)").Measured
	if !(none < csum && csum < tso) {
		t.Fatalf("offload ladder broken: %.1f %.1f %.1f", none, csum, tso)
	}
	// The final configuration outperforms the kernel datapath.
	if tso <= kernel {
		t.Fatalf("vhost+TSO (%.1f) must beat kernel+tap (%.1f)", tso, kernel)
	}
}

func TestFig8cOutcome1(t *testing.T) {
	r := runFig8c(Quick)
	kOff := row(t, r, "kernel veth (csum+TSO)").Measured
	xdpRedir := row(t, r, "afxdp XDP redirect").Measured
	aTSO := row(t, r, "afxdp veth (csum+TSO)").Measured
	// Outcome #1: in-kernel networking stays faster for container TCP.
	if kOff <= aTSO || kOff <= xdpRedir {
		t.Fatalf("kernel with offloads (%.1f) must beat afxdp (%.1f) and redirect (%.1f)",
			kOff, aTSO, xdpRedir)
	}
}

func TestProbeHarness(t *testing.T) {
	// The probe/lossless-search plumbing on a trivially sustainable load.
	cfg := DefaultBed(KindDPDK, 1)
	bed := NewP2PBed(cfg)
	res := RunProbe(bed, 1e5, Quick.Warmup, Quick.Window)
	if res.Delivered == 0 || res.LossFraction() > 0 {
		t.Fatalf("100kpps through DPDK must be lossless: %+v", res)
	}
	if res.Usage.Total() <= 0 {
		t.Fatal("usage must be accounted")
	}
	_ = measure.Mpps(1e6)
}

func TestReportFormatting(t *testing.T) {
	r := &Report{ID: "x", Title: "t"}
	r.Add("a", 1.5, 3.0, "Mpps")
	r.Add("b", 2.0, 0, "Gbps")
	r.AddNote("note %d", 7)
	out := r.String()
	for _, want := range []string{"x", "a", "x0.50", "note 7"} {
		if !contains(out, want) {
			t.Errorf("report output missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
