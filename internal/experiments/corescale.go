package experiments

import (
	"fmt"

	"ovsxdp/internal/sim"
)

// The corescale scenario measures multi-core scaling: delivered Mpps as the
// number of processing cores grows from 1 to 8 under a fixed offered load,
// for each datapath provider. Userspace datapaths (AF_XDP, DPDK) scale by
// adding PMD threads over an 8-queue NIC through the rxq assignment layer;
// the kernel datapath scales by widening RSS across ksoftirqd contexts. A
// second sweep skews the RSS indirection table and compares the default
// round-robin assignment against the cycles policy with the auto
// load-balancer, showing what deterministic rebalancing buys back when
// queue loads are unequal.
func init() {
	registerScenario(Scenario{
		ID:    "corescale",
		Title: "core scaling: Mpps/core for 1..8 cores, uniform and skewed RSS",
		Run:   runCoreScale,
	})
}

const (
	corescaleQueues = 8 // NIC rx queues; PMD count sweeps below this
	corescaleFlows  = 1000
	// Offered rates sit just under 25G line rate for the fast userspace
	// datapaths (37.2 Mpps at 64B) and above the kernel's 8-core capacity,
	// so every datapath is load-limited until it saturates.
	corescaleUserRate   = 36e6
	corescaleKernelRate = 12e6
)

// corescaleSkew concentrates ~42% of the traffic on queue 0 with a long
// tail, one weight slot per NIC queue. Deterministic: the indirection table
// is a pure function of these weights.
var corescaleSkew = []int{16, 6, 4, 3, 3, 2, 2, 2}

// corescaleTrial runs one (provider, cores, traffic shape, config) cell and
// returns delivered Mpps over the measurement window.
func corescaleTrial(kind DPKind, cores int, weights []int, other map[string]string, p Profile) float64 {
	cfg := DefaultBed(kind, corescaleFlows)
	cfg.Queues = corescaleQueues
	cfg.PMDs = cores
	cfg.KernelQueues = cores
	cfg.RSSWeights = weights
	cfg.Other = other
	bed := NewP2PBed(cfg)

	rate := corescaleUserRate
	if kind == KindKernel || kind == KindEBPF {
		rate = corescaleKernelRate
	}
	res := RunProbe(bed, rate, p.Warmup, p.Window)
	return float64(res.Delivered) / (float64(p.Window) / float64(sim.Second)) / 1e6
}

func runCoreScale(p Profile) *Report {
	r := &Report{ID: "corescale",
		Title: fmt.Sprintf("core scaling (64B, %d flows, %d rx queues, fixed offered load)",
			corescaleFlows, corescaleQueues)}

	coreCounts := []int{1, 2, 4, 8}
	skewCores := []int{2, 4, 8}
	if p.Window < Full.Window {
		coreCounts = []int{1, 2, 4} // quick profile drops the 8-core points
		skewCores = []int{4}
	}

	// Sweep 1: uniform RSS, every provider. The headline scaling table.
	base := map[DPKind]float64{}
	for _, kind := range []DPKind{KindAFXDP, KindDPDK, KindKernel} {
		for _, c := range coreCounts {
			mpps := corescaleTrial(kind, c, nil, nil, p)
			r.Add(fmt.Sprintf("%s uniform %d-core", kind, c), mpps, 0, "Mpps")
			if c == 1 {
				base[kind] = mpps
			} else if base[kind] > 0 {
				eff := 100 * mpps / (base[kind] * float64(c))
				r.AddNote("%s %d-core: %.2f Mpps/core, scaling efficiency %.0f%% of linear",
					kind, c, mpps/float64(c), eff)
			}
		}
	}

	// Sweep 2: skewed RSS on the AF_XDP datapath — round-robin assignment
	// against the cycles policy with the deterministic auto load-balancer.
	autoLB := map[string]string{
		"pmd-rxq-assign":                "cycles",
		"pmd-auto-lb":                   "true",
		"pmd-auto-lb-rebal-interval-us": "2000",
	}
	for _, c := range skewCores {
		rr := corescaleTrial(KindAFXDP, c, corescaleSkew, nil, p)
		lb := corescaleTrial(KindAFXDP, c, corescaleSkew, autoLB, p)
		r.Add(fmt.Sprintf("afxdp skewed %d-core roundrobin", c), rr, 0, "Mpps")
		r.Add(fmt.Sprintf("afxdp skewed %d-core cycles+autolb", c), lb, 0, "Mpps")
		if rr > 0 {
			r.AddNote("afxdp skewed %d-core: cycles+autolb delivers %.2fx the round-robin rate",
				c, lb/rr)
		}
	}
	r.AddNote("uniform sweep: offered %.0f Mpps userspace / %.0f Mpps kernel; skew weights %v over %d queues",
		corescaleUserRate/1e6, corescaleKernelRate/1e6, corescaleSkew, corescaleQueues)
	return r
}
