package experiments

import (
	"ovsxdp/internal/afxdp"
	"ovsxdp/internal/core"
	"ovsxdp/internal/costmodel"
	"ovsxdp/internal/measure"
)

// Figure 2: single-core, single-flow 64B forwarding across the kernel
// module, the eBPF-at-tc datapath, and DPDK. The headline shape: DPDK far
// ahead, eBPF 10-20% behind the kernel module.
//
// Table 2: the AF_XDP optimization ladder, cumulative O1..O5.

func init() {
	register(Experiment{ID: "fig2", Title: "Single-core datapath comparison (Figure 2)", Run: runFig2})
	register(Experiment{ID: "table2", Title: "AF_XDP optimization ladder (Table 2)", Run: runTable2})
}

func runFig2(p Profile) *Report {
	r := &Report{ID: "fig2", Title: "64B single-flow forwarding rate, one core"}
	cases := []struct {
		kind  DPKind
		paper float64
	}{
		{KindKernel, 1.9}, // single softirq core
		{KindEBPF, 1.65},  // 10-20% below the module
		{KindDPDK, 11.0},
	}
	var rates []float64
	for _, c := range cases {
		cfg := DefaultBed(c.kind, 1)
		cfg.KernelQueues = 1 // single core
		rate, _, _ := measure.LosslessRate(searchConfig(p, 40e6),
			fig9Probe(p, func() *Bed { return NewP2PBed(cfg) }, nil))
		r.Add(c.kind.String(), measure.Mpps(rate), c.paper, "Mpps")
		rates = append(rates, rate)
	}
	r.AddNote("shape: dpdk >> kernel > ebpf; ebpf/kernel = %.2f (paper 0.80-0.90)", rates[1]/rates[0])
	return r
}

func runTable2(p Profile) *Report {
	r := &Report{ID: "table2", Title: "single-flow 64B rate per optimization level"}
	base := core.DefaultOptions()
	noO4 := base
	noO4.MetadataPrealloc = false
	withO5 := base
	withO5.AssumeCsumOffload = true

	cases := []struct {
		name  string
		opts  core.Options
		lock  afxdp.LockMode
		mode  core.Mode
		paper float64
	}{
		{"none", noO4, afxdp.LockMutex, core.ModeNonPMD, 0.8},
		{"O1", noO4, afxdp.LockMutex, core.ModePoll, 4.8},
		{"O1+O2", noO4, afxdp.LockSpin, core.ModePoll, 6.0},
		{"O1+O2+O3", noO4, afxdp.LockSpinBatched, core.ModePoll, 6.3},
		{"O1..O4", base, afxdp.LockSpinBatched, core.ModePoll, 6.6},
		{"O1..O5", withO5, afxdp.LockSpinBatched, core.ModePoll, 7.1},
	}
	prev := 0.0
	for _, c := range cases {
		cfg := DefaultBed(KindAFXDP, 1)
		cfg.Opts = c.opts
		cfg.Lock = c.lock
		cfg.Mode = c.mode
		rate, _, _ := measure.LosslessRate(searchConfig(p, 20e6),
			fig9Probe(p, func() *Bed { return NewP2PBed(cfg) }, nil))
		r.Add(c.name, measure.Mpps(rate), c.paper, "Mpps")
		if measure.Mpps(rate) <= prev {
			r.AddNote("WARNING: %s did not improve on the previous level", c.name)
		}
		prev = measure.Mpps(rate)
	}
	return r
}

// Figure 12: multi-queue P2P scaling at 25 GbE, AF_XDP vs DPDK, 64B and
// 1518B frames, 1/2/4/6 queues.
func init() {
	register(Experiment{ID: "fig12", Title: "Multi-queue P2P throughput (Figure 12)", Run: runFig12})
}

func runFig12(p Profile) *Report {
	r := &Report{ID: "fig12", Title: "P2P throughput vs queue count, 25GbE"}
	lineRate64 := costmodel.LineRatePPS(costmodel.LinkRate25G, 64)
	lineRate1518 := costmodel.LineRatePPS(costmodel.LinkRate25G, 1518)

	for _, kind := range []DPKind{KindAFXDP, KindDPDK} {
		for _, frame := range []int{64, 1518} {
			for _, queues := range []int{1, 2, 4, 6} {
				cfg := DefaultBed(kind, 256) // many flows so RSS spreads
				cfg.FrameSize = frame
				cfg.Queues = queues
				if kind == KindAFXDP {
					cfg.Opts.ContentionCentis = costmodel.ContentionAFXDPCentis
				} else {
					cfg.Opts.ContentionCentis = costmodel.ContentionDPDKCentis
				}
				hi := lineRate64 * 1.02
				if frame == 1518 {
					hi = lineRate1518 * 1.02
				}
				rate, _, _ := measure.LosslessRate(searchConfig(p, hi),
					fig9Probe(p, func() *Bed { return NewP2PBed(cfg) }, nil))
				gbps := rate * float64(frame+costmodel.EthernetOverheadBytes) * 8 / 1e9
				paper := fig12Paper(kind, frame, queues)
				r.Add(caseName(kind, frame, queues), gbps, paper, "Gbps")
			}
		}
	}
	r.AddNote("paper anchors: AF_XDP reaches 25G line rate at 1518B with 6 queues; 64B tops ~12 Mpps (~8 Gbps); DPDK leads throughout")
	return r
}

func caseName(kind DPKind, frame, queues int) string {
	return kind.String() + "-" + itoa(frame) + "B-" + itoa(queues) + "q"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// fig12Paper returns the approximate Figure 12 bar heights in Gbps.
func fig12Paper(kind DPKind, frame, queues int) float64 {
	type key struct {
		k DPKind
		f int
		q int
	}
	anchors := map[key]float64{
		{KindAFXDP, 64, 1}: 4.5, {KindAFXDP, 64, 2}: 6.0, {KindAFXDP, 64, 4}: 7.5, {KindAFXDP, 64, 6}: 8.1,
		{KindDPDK, 64, 1}: 7.4, {KindDPDK, 64, 2}: 11.0, {KindDPDK, 64, 4}: 16.0, {KindDPDK, 64, 6}: 19.0,
		{KindAFXDP, 1518, 1}: 13.0, {KindAFXDP, 1518, 2}: 20.0, {KindAFXDP, 1518, 4}: 24.0, {KindAFXDP, 1518, 6}: 25.0,
		{KindDPDK, 1518, 1}: 25.0, {KindDPDK, 1518, 2}: 25.0, {KindDPDK, 1518, 4}: 25.0, {KindDPDK, 1518, 6}: 25.0,
	}
	return anchors[key{kind, frame, queues}]
}
