package experiments

import (
	"ovsxdp/internal/costmodel"
	"ovsxdp/internal/ebpf"
	"ovsxdp/internal/kernelsim"
	"ovsxdp/internal/measure"
	"ovsxdp/internal/nicsim"
	"ovsxdp/internal/packet"
	"ovsxdp/internal/sim"
	"ovsxdp/internal/trafficgen"
	"ovsxdp/internal/xdp"
)

// Table 5: single-core XDP processing rates for the P4-generated task
// programs A-D, executed by the real eBPF VM at the driver hook.

func init() {
	register(Experiment{ID: "table5", Title: "Single-core XDP task rates (Table 5)", Run: runTable5})
}

// xdpBed drives one NIC queue through an attached XDP program on one
// softirq CPU. Delivered counts packets surviving with XDP_TX (task D);
// for drop-only tasks the processed count stands in.
type xdpBed struct {
	eng       *sim.Engine
	nic       *nicsim.NIC
	gen       *trafficgen.UDPGen
	processed uint64
	txd       uint64
}

func newXDPBed(prog *ebpf.Program, seed uint64) *xdpBed {
	eng := sim.NewEngine(seed)
	bed := &xdpBed{eng: eng}
	bed.nic = nicsim.New(eng, nicsim.Config{Name: "p0", Ifindex: 1, Queues: 1,
		LinkRate: costmodel.LinkRate10G})
	if err := prog.Load(); err != nil {
		panic(err)
	}
	if err := bed.nic.Hook.Attach(prog); err != nil {
		panic(err)
	}
	cpu := eng.NewCPU("softirq/0")
	(&kernelsim.NAPIActor{Eng: eng, CPU: cpu,
		Src: kernelsim.NICQueueSource{Q: bed.nic.Queue(0)},
		Handler: func(cpu *sim.CPU, pkts []*packet.Packet) {
			for _, p := range pkts {
				cpu.Consume(sim.Softirq, costmodel.XDPDriverOverhead)
				res, cost, err := bed.nic.Hook.Run(0, p.Data, 1)
				cpu.Consume(sim.Softirq, cost)
				if err != nil {
					continue
				}
				bed.processed++
				if res.Action == ebpf.XDPTx {
					cpu.Consume(sim.Softirq, costmodel.XDPTxForward)
					bed.txd++
				}
			}
		}}).Start()
	bed.gen = trafficgen.NewUDPGen(eng, 64, 64, func(p *packet.Packet) { bed.nic.Receive(p) })
	return bed
}

func runTable5(p Profile) *Report {
	r := &Report{ID: "table5", Title: "XDP task processing rates, one core"}
	tasks := []struct {
		name  string
		mk    func() *ebpf.Program
		paper float64
	}{
		{"A: drop only", xdp.NewDropAll, 14.0},
		{"B: parse eth/ipv4, drop", xdp.NewParseDrop, 8.1},
		{"C: parse, L2 lookup, drop", func() *ebpf.Program {
			return xdp.NewParseLookupDrop(ebpf.NewHashMap(8, 4, 1024))
		}, 7.1},
		{"D: parse, swap MACs, fwd", xdp.NewParseSwapForward, 4.7},
	}
	for _, task := range tasks {
		mk := task.mk
		probe := func(rate float64) measure.ProbeResult {
			bed := newXDPBed(mk(), 1)
			bed.gen.Run(rate, p.Warmup+p.Window)
			bed.eng.RunUntil(p.Warmup)
			sentBefore, procBefore := bed.gen.Sent, bed.processed
			dropsBefore := bed.nic.RxDropsTotal()
			bed.eng.RunUntil(p.Warmup + p.Window + 100*sim.Microsecond)
			offered := bed.gen.Sent - sentBefore
			processed := bed.processed - procBefore
			ringDrops := bed.nic.RxDropsTotal() - dropsBefore
			return measure.ProbeResult{Offered: offered, Delivered: processed, Dropped: ringDrops}
		}
		rate, _, _ := measure.LosslessRate(searchConfig(p, 20e6), probe)
		r.Add(task.name, measure.Mpps(rate), task.paper, "Mpps")
	}
	r.AddNote("task A's 14 Mpps is 10GbE line rate in the paper; here the search is capped by CPU, not the link")
	return r
}
