package experiments

// The connscale scenario measures per-user connection state at scale:
// sustained datapath capacity with the conntrack table holding 10k to 1M
// concurrent established connections (ROADMAP item: stateful scaling),
// swept across shard counts, plus a SYN-flood arm that measures what the
// graceful-degradation ladder buys — established-connection goodput held
// while embryonic attack state is shed.
//
// The steady points model a stateful firewall: every packet recirculates
// through ct(commit) and a second classifier pass matches on ct_state
// (established or legitimate-new to the sink, everything else shed) — the
// NSX firewall shape of fig8, scaled to a million tracked connections.
// Connections are established cheaply via loose TCP pickup (one mid-stream
// ACK each, the nf_conntrack_tcp_loose behavior), then Loose is switched
// off so a wrongly evicted established connection would visibly misroute
// as invalid instead of being silently re-adopted.
//
// The SYN-flood arm runs the same bed twice — ladder limits
// (SetZoneLimits) vs the legacy hard limit (SetZoneLimit) — and compares
// goodput under flood to the no-flood baseline of the same run. All
// measurements are in the virtual domain — the JSON output is
// byte-identical run to run at fixed defaults.

import (
	"encoding/json"
	"fmt"
	"os"

	"ovsxdp/internal/api"
	"ovsxdp/internal/conntrack"
	"ovsxdp/internal/dpif"
	"ovsxdp/internal/flow"
	"ovsxdp/internal/ofproto"
	"ovsxdp/internal/packet"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/sim"
)

// ConnscaleJSONPath, when non-empty, is where the connscale scenario
// writes its machine-readable result. cmd/ovsbench defaults it to
// BENCH_connscale.json; tests leave it empty to skip the write.
var ConnscaleJSONPath string

// ConnscaleOnly, when non-empty, restricts the run to the named points
// (CI runs just "10k" to keep the smoke job cheap).
var ConnscaleOnly map[string]bool

// ConnscalePoint is one measured configuration. Steady points sweep
// (concurrent connections x shards); the synflood point (Flood true) adds
// the goodput-held comparison.
type ConnscalePoint struct {
	Name    string  `json:"name"`
	Conns   int     `json:"conns"`
	Shards  int     `json:"shards"`
	RatePPS float64 `json:"rate_pps"`
	// WindowMs is the measured window (per phase, for the flood arm).
	WindowMs float64 `json:"window_ms"`
	// Packets/Delivered cover the measured window: executed packets and
	// sink-port deliveries (established + admitted-new goodput).
	Packets   uint64 `json:"packets"`
	Delivered uint64 `json:"delivered"`
	// NsPerPkt is PMD busy nanoseconds per packet over the window
	// (two classifier passes + conntrack lookup each); CapacityMpps is
	// its reciprocal.
	NsPerPkt     float64 `json:"ns_per_pkt"`
	CapacityMpps float64 `json:"capacity_mpps"`
	// PeakConns is the tracker's live-connection count at window end;
	// ShardImbalance the max/mean shard occupancy at that instant.
	PeakConns      int     `json:"peak_conns"`
	ShardImbalance float64 `json:"shard_imbalance"`
	// Whole-run tracker counters after the drain; the conservation
	// ledger requires Created == Expired + EarlyDrops + Evicted +
	// LiveAfterDrain at every point.
	Created        uint64 `json:"created"`
	Expired        uint64 `json:"expired"`
	EarlyDrops     uint64 `json:"early_drops"`
	Evicted        uint64 `json:"evicted"`
	TableFull      uint64 `json:"table_full"`
	LiveAfterDrain int    `json:"live_after_drain"`
	LedgerOK       bool   `json:"ledger_ok"`

	// SYN-flood arm only.
	Flood    bool    `json:"flood,omitempty"`
	FloodPPS float64 `json:"flood_pps,omitempty"`
	// BaselineMpps/FloodMpps are goodput (established + legitimate-new
	// deliveries) before and during the flood with the ladder on;
	// HeldPct is their ratio, EstHeldPct the same for established
	// traffic alone, and NoLadderHeldPct the ratio the legacy
	// hard-reject limit manages on an identical schedule.
	BaselineMpps    float64 `json:"baseline_mpps,omitempty"`
	FloodMpps       float64 `json:"flood_mpps,omitempty"`
	HeldPct         float64 `json:"held_pct,omitempty"`
	EstHeldPct      float64 `json:"est_held_pct,omitempty"`
	NoLadderHeldPct float64 `json:"no_ladder_held_pct,omitempty"`
}

// ConnscaleResult is the BENCH_connscale.json schema.
type ConnscaleResult struct {
	api.Envelope
	Points []ConnscalePoint `json:"points"`
}

// connscaleConfig parameterizes one steady point.
type connscaleConfig struct {
	name    string
	conns   int
	shards  int
	ratePPS float64
	window  sim.Time
}

// connscalePoints returns the steady sweep for a profile, cheapest first.
// The 1M point runs at three shard counts to expose what partitioning is
// worth at that occupancy.
func connscalePoints(quick bool) []connscaleConfig {
	if quick {
		return []connscaleConfig{
			{"10k", 10_000, 8, 2e6, 10 * sim.Millisecond},
		}
	}
	return []connscaleConfig{
		{"10k", 10_000, 8, 2e6, 20 * sim.Millisecond},
		{"100k", 100_000, 8, 8e6, 40 * sim.Millisecond},
		{"1m-s1", 1_000_000, 1, 2e7, 100 * sim.Millisecond},
		{"1m", 1_000_000, 8, 2e7, 100 * sim.Millisecond},
		{"1m-s32", 1_000_000, 32, 2e7, 100 * sim.Millisecond},
	}
}

// synfloodConfig parameterizes the flood arm.
type synfloodConfig struct {
	name       string
	estConns   int
	estRate    float64 // established-connection data packets/s
	newRate    float64 // legitimate new SYNs/s (port 80)
	floodRate  float64 // attack SYNs/s (port 81)
	synTimeout sim.Time
	estTimeout sim.Time
	soft, hard int
	warm       sim.Time // settle time after each phase change
	window     sim.Time // measured window per phase
}

func connscaleFlood(quick bool) synfloodConfig {
	if quick {
		return synfloodConfig{
			name: "synflood", estConns: 10_000,
			estRate: 2e6, newRate: 1e6, floodRate: 2e6,
			synTimeout: 2 * sim.Millisecond, estTimeout: 30 * sim.Millisecond,
			soft: 13_000, hard: 14_000,
			warm: 4 * sim.Millisecond, window: 8 * sim.Millisecond,
		}
	}
	// Sized so the no-flood phase sits below the soft limit (50k
	// established + 2e6/s x 4ms = 8k embryonic = 58k < 60k) while the
	// flood pushes the unlimited equilibrium (50k + 8e6/s x 4ms = 82k)
	// past the hard limit — the ladder must engage, and the legacy limit
	// must visibly refuse legitimate commits.
	return synfloodConfig{
		name: "synflood", estConns: 50_000,
		estRate: 3e6, newRate: 2e6, floodRate: 6e6,
		synTimeout: 4 * sim.Millisecond, estTimeout: 60 * sim.Millisecond,
		soft: 60_000, hard: 70_000,
		warm: 8 * sim.Millisecond, window: 25 * sim.Millisecond,
	}
}

// connSrcIP encodes a generator class (first octet) and connection id into
// the source address — established traffic is 10.x, legitimate new 11.x,
// flood 12.x, so the sink can split goodput without extra state.
func connSrcIP(class byte, id int) hdr.IP4 {
	return hdr.MakeIP4(class, byte(id>>16), byte(id>>8), byte(id))
}

// connGen drives TCP traffic by byte-patching the source IP into a
// prebuilt template frame — no per-packet allocation. With cycle set it
// round-robins over [0, conns) (established traffic); otherwise every
// packet is a fresh connection id (SYN arrivals). Inter-arrival times
// carry +-25% deterministic jitter from a per-class LCG: perfectly
// periodic sources phase-lock with the equally periodic expiry stream
// (every timeout is arrival + exact synTO), which would let one traffic
// class deterministically absorb every table-full refusal.
type connGen struct {
	eng      *sim.Engine
	dp       dpif.Dpif
	template []byte
	pool     *packet.Pool
	class    byte
	conns    int
	cycle    bool
	cursor   int
	stopped  bool
	sent     uint64
	rng      uint64
}

func newConnGen(eng *sim.Engine, dp dpif.Dpif, class byte, conns int, cycle bool, dstPort uint16, tcpFlags uint8) *connGen {
	frame := hdr.NewBuilder().
		Eth(hdr.MAC{0x02, 0xaa, 0, 0, 0, 2}, hdr.MAC{0x02, 0xbb, 0, 0, 0, 2}).
		IPv4H(connSrcIP(class, 0), hdr.MakeIP4(10, 255, 0, 1), 64).
		TCPH(1000, dstPort, 1, 0, tcpFlags).PadTo(64).Build()
	return &connGen{eng: eng, dp: dp, template: frame,
		pool:  packet.NewPool(64, len(frame), true),
		class: class, conns: conns, cycle: cycle,
		rng: uint64(class)*0x9e3779b97f4a7c15 + 1}
}

// emit executes one packet for the next connection id.
func (g *connGen) emit() {
	id := g.cursor
	g.cursor++
	if g.cycle && g.cursor >= g.conns {
		g.cursor = 0
	}
	ip := connSrcIP(g.class, id)
	g.template[srcIPOffset] = byte(ip >> 24)
	g.template[srcIPOffset+1] = byte(ip >> 16)
	g.template[srcIPOffset+2] = byte(ip >> 8)
	g.template[srcIPOffset+3] = byte(ip)
	p := g.pool.GetCopy(g.template)
	p.InPort = 1
	g.sent++
	g.dp.Execute(p)
}

// run self-schedules packet arrivals at ratePPS until stopped.
func (g *connGen) run(ratePPS float64) {
	interval := sim.Time(float64(sim.Second) / ratePPS)
	if interval <= 0 {
		interval = 1
	}
	next := g.eng.Now()
	var tick func()
	tick = func() {
		if g.stopped {
			return
		}
		g.emit()
		g.rng = g.rng*6364136223846793005 + 1442695040888963407
		frac := float64(g.rng>>11) / (1 << 53)
		next += sim.Time(float64(interval) * (0.75 + 0.5*frac))
		g.eng.ScheduleAt(next, tick)
	}
	g.eng.ScheduleAt(next, tick)
}

// connscaleZone is the conntrack zone every connscale flow commits into.
const connscaleZone uint16 = 7

// connBed is an Execute-driven netdev bed with the stateful-firewall
// pipeline: pass 1 recirculates through ct(commit), pass 2 matches
// ct_state — established or legitimate-new (port 80) traffic to the sink,
// everything else (attack SYNs, refused commits, invalid) to the shed
// port.
type connBed struct {
	eng *sim.Engine
	d   dpif.Dpif
	ct  *conntrack.Table

	delivered    uint64 // sink-port packets (goodput)
	estDelivered uint64 // of delivered: established traffic (10.x)
	shed         uint64 // shed-port packets
}

func newConnBed(shards int) *connBed {
	b := &connBed{eng: sim.NewEngine(1)}
	b.d = mustOpen("netdev", dpif.Config{Eng: b.eng, Pipeline: ofproto.NewPipeline()})
	if err := b.d.SetConfig(map[string]string{"ct-shards": fmt.Sprintf("%d", shards)}); err != nil {
		panic(err)
	}
	if err := b.d.PortAdd(dpif.TxPort{PortID: 2, PortName: "sink",
		Deliver: func(p *packet.Packet) {
			b.delivered++
			if p.Data[srcIPOffset] == 10 {
				b.estDelivered++
			}
		}}); err != nil {
		panic(err)
	}
	if err := b.d.PortAdd(dpif.TxPort{PortID: 3, PortName: "shed",
		Deliver: func(p *packet.Packet) { b.shed++ }}); err != nil {
		panic(err)
	}

	maskR0 := flow.NewMaskBuilder().InPort().RecircID().Build()
	maskR1 := flow.NewMaskBuilder().RecircID().
		CtState(uint8(packet.CtNew | packet.CtEstablished | packet.CtInvalid)).TPDst().Build()
	b.d.SetUpcall(func(key flow.Key) (ofproto.Megaflow, error) {
		f := key.Unpack()
		if f.RecircID == 0 {
			return ofproto.Megaflow{Mask: maskR0, Actions: []ofproto.DPAction{
				{Type: ofproto.DPCT, Zone: connscaleZone, Commit: true, RecircID: 1}}}, nil
		}
		out := uint32(3)
		switch {
		case uint8(f.CtState)&uint8(packet.CtEstablished) != 0:
			out = 2
		case uint8(f.CtState)&uint8(packet.CtNew) != 0 && f.TPDst == 80:
			out = 2 // legitimate new connection admitted
		}
		return ofproto.Megaflow{Mask: maskR1,
			Actions: []ofproto.DPAction{{Type: ofproto.DPOutput, Port: out}}}, nil
	})

	b.ct = b.d.(*dpif.Netdev).Datapath().Ct
	b.ct.EnableWheelExpiry(true)
	return b
}

// drain stops all traffic sources and runs virtual time forward until the
// wheel has expired every connection (bounded at 8 timeout periods).
func (b *connBed) drain(gens []*connGen, step sim.Time) {
	for _, g := range gens {
		g.stopped = true
	}
	now := b.eng.Now()
	for i := 0; i < 8 && b.ct.Len() > 0; i++ {
		now += step
		b.eng.RunUntil(now)
	}
}

// ledger fills the whole-run tracker counters and checks conservation:
// every created connection must be accounted for as expired, early-dropped,
// evicted, or still live.
func (b *connBed) ledger(pt *ConnscalePoint) {
	c := b.ct.Counters()
	pt.Created = c.Created
	pt.Expired = c.Expired
	pt.EarlyDrops = c.EarlyDrops
	pt.Evicted = c.Evicted
	pt.TableFull = c.TableFull
	pt.LiveAfterDrain = b.ct.Len()
	pt.LedgerOK = c.Created == c.Expired+c.EarlyDrops+c.Evicted+uint64(pt.LiveAfterDrain)
}

// runConnscalePoint executes one steady configuration: establish N
// connections via loose pickup, measure a steady window with every packet
// recirculating through conntrack, then drain through the wheel.
func runConnscalePoint(c connscaleConfig) ConnscalePoint {
	b := newConnBed(c.shards)

	// Round-robin gap between touches of one connection; timeouts sized
	// so established connections comfortably survive the gap but the
	// drain completes in a few steps.
	gap := sim.Time(float64(c.conns) / c.ratePPS * float64(sim.Second))
	estTO := 5 * gap
	if estTO < 20*sim.Millisecond {
		estTO = 20 * sim.Millisecond
	}
	b.ct.Timeouts = conntrack.Timeouts{
		SynSent: estTO, Established: estTO, UDP: estTO, Fin: estTO,
	}

	g := newConnGen(b.eng, b.d, 10, c.conns, true, 80, hdr.TCPAck)
	g.run(c.ratePPS)

	// Fill: one full round establishes every connection (loose pickup).
	fill := gap + 2*sim.Millisecond
	b.eng.RunUntil(fill)
	b.ct.Loose = false // wrongful evictions now misroute visibly

	pmd := b.d.(*dpif.Netdev).Datapath().PMDs()[0]
	for _, cpu := range b.eng.CPUs() {
		cpu.ResetAccounting()
	}
	sent0, delivered0 := g.sent, b.delivered

	b.eng.RunUntil(fill + c.window)

	pkts := g.sent - sent0
	pt := ConnscalePoint{
		Name: c.name, Conns: c.conns, Shards: c.shards,
		RatePPS:   c.ratePPS,
		WindowMs:  float64(c.window) / float64(sim.Millisecond),
		Packets:   pkts,
		Delivered: b.delivered - delivered0,
		PeakConns: b.ct.Len(),
	}
	if pkts > 0 {
		pt.NsPerPkt = float64(pmd.CPU.BusyTotal()) / float64(pkts)
		pt.CapacityMpps = 1e3 / pt.NsPerPkt
	}
	sizes := b.ct.ShardSizes(nil)
	maxSz, total := 0, 0
	for _, n := range sizes {
		total += n
		if n > maxSz {
			maxSz = n
		}
	}
	if total > 0 {
		pt.ShardImbalance = float64(maxSz) * float64(len(sizes)) / float64(total)
	}

	b.drain([]*connGen{g}, estTO)
	b.ledger(&pt)
	return pt
}

// runSynfloodArm runs the flood schedule once — fill, no-flood window,
// flood window — under either the ladder (SetZoneLimits) or the legacy
// hard limit (SetZoneLimit). It reports goodput for both windows, the
// established-only share, and the bed for counter collection.
func runSynfloodArm(c synfloodConfig, ladder bool) (baseGood, floodGood, baseEst, floodEst uint64, bed *connBed, gens []*connGen) {
	b := newConnBed(8)
	b.ct.Timeouts = conntrack.Timeouts{
		SynSent: c.synTimeout, Established: c.estTimeout,
		UDP: c.estTimeout, Fin: c.synTimeout,
	}

	est := newConnGen(b.eng, b.d, 10, c.estConns, true, 80, hdr.TCPAck)
	est.run(c.estRate)
	fill := sim.Time(float64(c.estConns)/c.estRate*float64(sim.Second)) + 2*sim.Millisecond
	b.eng.RunUntil(fill)
	b.ct.Loose = false
	if ladder {
		b.ct.SetZoneLimits(connscaleZone, c.soft, c.hard)
	} else {
		b.ct.SetZoneLimit(connscaleZone, c.hard)
	}

	// Phase A: legitimate connection churn, no flood.
	legit := newConnGen(b.eng, b.d, 11, 0, false, 80, hdr.TCPSyn)
	legit.run(c.newRate)
	b.eng.RunUntil(fill + c.warm)
	d0, e0 := b.delivered, b.estDelivered
	b.eng.RunUntil(fill + c.warm + c.window)
	baseGood, baseEst = b.delivered-d0, b.estDelivered-e0

	// Phase B: the SYN flood joins.
	floodStart := fill + c.warm + c.window
	flood := newConnGen(b.eng, b.d, 12, 0, false, 81, hdr.TCPSyn)
	flood.run(c.floodRate)
	b.eng.RunUntil(floodStart + c.warm)
	d0, e0 = b.delivered, b.estDelivered
	b.eng.RunUntil(floodStart + c.warm + c.window)
	floodGood, floodEst = b.delivered-d0, b.estDelivered-e0

	return baseGood, floodGood, baseEst, floodEst, b, []*connGen{est, legit, flood}
}

// runSynflood measures the flood point: the ladder arm provides the
// headline held-goodput numbers and counters; the legacy hard-limit arm
// provides the comparison ratio.
func runSynflood(c synfloodConfig) ConnscalePoint {
	winS := float64(c.window) / float64(sim.Second)

	baseGood, floodGood, baseEst, floodEst, bed, gens := runSynfloodArm(c, true)
	pt := ConnscalePoint{
		Name: c.name, Conns: c.estConns, Shards: 8,
		RatePPS:   c.estRate + c.newRate,
		WindowMs:  float64(c.window) / float64(sim.Millisecond),
		Packets:   baseGood + floodGood, // goodput packets across both windows
		Delivered: baseGood + floodGood,
		Flood:     true,
		FloodPPS:  c.floodRate,
		PeakConns: bed.ct.Len(),
	}
	pt.BaselineMpps = float64(baseGood) / winS / 1e6
	pt.FloodMpps = float64(floodGood) / winS / 1e6
	if baseGood > 0 {
		pt.HeldPct = 100 * float64(floodGood) / float64(baseGood)
	}
	if baseEst > 0 {
		pt.EstHeldPct = 100 * float64(floodEst) / float64(baseEst)
	}
	bed.drain(gens, c.estTimeout)
	bed.ledger(&pt)

	baseGood, floodGood, _, _, bed2, gens2 := runSynfloodArm(c, false)
	if baseGood > 0 {
		pt.NoLadderHeldPct = 100 * float64(floodGood) / float64(baseGood)
	}
	bed2.drain(gens2, c.estTimeout)
	var pt2 ConnscalePoint
	bed2.ledger(&pt2)
	pt.LedgerOK = pt.LedgerOK && pt2.LedgerOK

	return pt
}

// RunConnscale executes the connscale sweep for a profile and returns the
// structured result (the scenario wrapper renders and persists it).
func RunConnscale(p Profile) ConnscaleResult {
	quick := p.Window < Full.Window
	profileName := "full"
	if quick {
		profileName = "quick"
	}
	res := ConnscaleResult{Envelope: api.NewEnvelope("connscale", 1, profileName)}
	for _, c := range connscalePoints(quick) {
		if len(ConnscaleOnly) > 0 && !ConnscaleOnly[c.name] {
			continue
		}
		res.Points = append(res.Points, runConnscalePoint(c))
	}
	fc := connscaleFlood(quick)
	if len(ConnscaleOnly) == 0 || ConnscaleOnly[fc.name] {
		res.Points = append(res.Points, runSynflood(fc))
	}
	return res
}

func init() {
	registerScenario(Scenario{
		ID:    "connscale",
		Title: "million-connection conntrack: capacity vs table size + SYN-flood degradation",
		Run: func(p Profile) *Report {
			res := RunConnscale(p)
			rep := &Report{ID: "connscale",
				Title: "conntrack scaling sweep (concurrent connections x shards, wheel expiry)"}
			for _, pt := range res.Points {
				if pt.Flood {
					rep.Add(pt.Name+": goodput held under flood (ladder)", pt.HeldPct, 0, "%")
					rep.Add(pt.Name+": established goodput held", pt.EstHeldPct, 0, "%")
					rep.Add(pt.Name+": goodput held (legacy hard limit)", pt.NoLadderHeldPct, 0, "%")
					rep.Add(pt.Name+": baseline goodput", pt.BaselineMpps, 0, "Mpps")
				} else {
					rep.Add(pt.Name+" conns: capacity per core", pt.CapacityMpps, 0, "Mpps")
					rep.Add(pt.Name+" conns: busy time per packet", pt.NsPerPkt, 0, "ns/pkt")
					rep.Add(pt.Name+" conns: shard imbalance", pt.ShardImbalance, 0, "x mean")
				}
				ledger := "ok"
				if !pt.LedgerOK {
					ledger = "BROKEN"
				}
				rep.AddNote("%s: created %d = expired %d + early-drop %d + evicted %d + live %d (ledger %s); table-full %d, peak %d conns",
					pt.Name, pt.Created, pt.Expired, pt.EarlyDrops, pt.Evicted,
					pt.LiveAfterDrain, ledger, pt.TableFull, pt.PeakConns)
			}
			if ConnscaleJSONPath != "" {
				if err := WriteConnscaleJSON(ConnscaleJSONPath, res); err != nil {
					rep.AddNote("failed to write %s: %v", ConnscaleJSONPath, err)
				} else {
					rep.AddNote("wrote %s", ConnscaleJSONPath)
				}
			}
			return rep
		},
	})
}

// WriteConnscaleJSON persists a connscale result.
func WriteConnscaleJSON(path string, res ConnscaleResult) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadConnscaleJSON reads a previously written result.
func LoadConnscaleJSON(path string) (ConnscaleResult, error) {
	var res ConnscaleResult
	data, err := os.ReadFile(path)
	if err != nil {
		return res, err
	}
	if err := json.Unmarshal(data, &res); err != nil {
		return res, fmt.Errorf("%s: %w", path, err)
	}
	return res, nil
}
