package experiments

import (
	"ovsxdp/internal/netlinksim"
	"ovsxdp/internal/nsx"
	"ovsxdp/internal/packet/hdr"
)

// Figure 1: lines of code changed per year in the out-of-tree kernel
// module. This is historical repository data, not a runnable system; the
// series below is the dataset the paper plots (new features vs backports,
// 2015-2019), embedded per DESIGN.md's substitution table.
//
// Table 1: the kernel tools work against an AF_XDP-managed NIC but not a
// DPDK-bound one — exercised live against the netlink simulation.
//
// Table 3: the NSX rule-set statistics, computed from the generator.

func init() {
	register(Experiment{ID: "fig1", Title: "Out-of-tree module code churn (Figure 1)", Run: runFig1})
	register(Experiment{ID: "table1", Title: "Kernel tooling compatibility (Table 1)", Run: runTable1})
	register(Experiment{ID: "table3", Title: "NSX rule set statistics (Table 3)", Run: runTable3})
}

// fig1Series is the embedded churn dataset (lines of code changed in the
// OVS repository's kernel datapath, eyeballed from the figure).
var fig1Series = []struct {
	Year                   int
	NewFeatures, Backports int
}{
	{2015, 9000, 4500},
	{2016, 9500, 5500},
	{2017, 6500, 11000},
	{2018, 7000, 22000},
	{2019, 1500, 7500},
}

func runFig1(p Profile) *Report {
	r := &Report{ID: "fig1", Title: "LoC changed per year in the out-of-tree kernel datapath"}
	for _, y := range fig1Series {
		r.Add(itoa(y.Year)+" new features", float64(y.NewFeatures), float64(y.NewFeatures), "LoC")
		r.Add(itoa(y.Year)+" backports", float64(y.Backports), float64(y.Backports), "LoC")
	}
	r.AddNote("embedded dataset (repository history, not simulation); backports dominate later years —")
	r.AddNote("the 'running faster and faster just to stay in the same place' cost of Takeaway #2")
	return r
}

// runTable1 exercises each Table 1 command analog against a kernel that
// manages the NIC (AF_XDP case) and one where DPDK stole it.
func runTable1(Profile) *Report {
	r := &Report{ID: "table1", Title: "ip/ping/nstat-style operations per datapath (1 = works)"}

	type op struct {
		name string
		run  func(k *netlinksim.Kernel) error
	}
	setup := func() *netlinksim.Kernel {
		k := netlinksim.NewKernel()
		idx, _ := k.AddLink("eth0", "mlx5_core", hdr.MAC{2, 0, 0, 0, 0, 1}, 1500)
		k.AddAddr("eth0", hdr.MakeIP4(10, 0, 0, 1), 24)
		k.AddNeigh(netlinksim.Neigh{IP: hdr.MakeIP4(10, 0, 0, 2),
			MAC: hdr.MAC{2, 0, 0, 0, 0, 2}, LinkIndex: idx})
		return k
	}
	ops := []op{
		{"ip link", func(k *netlinksim.Kernel) error {
			_, err := k.LinkByName("eth0")
			return err
		}},
		{"ip address", func(k *netlinksim.Kernel) error {
			_, err := k.Addrs("eth0")
			return err
		}},
		{"ip route", func(k *netlinksim.Kernel) error {
			if _, ok := k.LookupRoute(hdr.MakeIP4(10, 0, 0, 9)); !ok {
				return netlinksim.ErrNoDevice{Name: "eth0"}
			}
			return nil
		}},
		{"ip neigh", func(k *netlinksim.Kernel) error {
			if _, ok := k.LookupNeigh(hdr.MakeIP4(10, 0, 0, 2)); !ok {
				return netlinksim.ErrNoDevice{Name: "eth0"}
			}
			return nil
		}},
		{"ping (L3 path)", func(k *netlinksim.Kernel) error {
			// Needs a route and a resolvable next hop.
			rt, ok := k.LookupRoute(hdr.MakeIP4(10, 0, 0, 2))
			if !ok {
				return netlinksim.ErrNoDevice{Name: "route"}
			}
			if _, err := k.LinkByIndex(rt.LinkIndex); err != nil {
				return err
			}
			return nil
		}},
		{"arping (L2 path)", func(k *netlinksim.Kernel) error {
			if _, ok := k.LookupNeigh(hdr.MakeIP4(10, 0, 0, 2)); !ok {
				return netlinksim.ErrNoDevice{Name: "neigh"}
			}
			return nil
		}},
		{"nstat (device stats)", func(k *netlinksim.Kernel) error {
			l, err := k.LinkByName("eth0")
			if err != nil {
				return err
			}
			_ = l.RxPackets
			return nil
		}},
		{"tcpdump (attach)", func(k *netlinksim.Kernel) error {
			// Packet capture needs the kernel device to exist.
			_, err := k.LinkByName("eth0")
			return err
		}},
	}

	afxdpOK, dpdkOK := 0, 0
	for _, o := range ops {
		// AF_XDP: the kernel still owns the device.
		k1 := setup()
		okA := o.run(k1) == nil
		if okA {
			afxdpOK++
		}
		// DPDK: the device is unbound from the kernel.
		k2 := setup()
		if _, err := k2.BindDPDK("eth0"); err != nil {
			panic(err)
		}
		okD := o.run(k2) == nil
		if okD {
			dpdkOK++
		}
		r.Add(o.name+" on afxdp", b2f(okA), 1, "works")
		r.Add(o.name+" on dpdk", b2f(okD), 0, "works")
	}
	r.AddNote("AF_XDP: %d/%d commands work; DPDK: %d/%d (Table 1's compatibility claim)",
		afxdpOK, len(ops), dpdkOK, len(ops))
	return r
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func runTable3(Profile) *Report {
	r := &Report{ID: "table3", Title: "Properties of the generated NSX rule set"}
	s := nsx.Generate(nsx.DefaultConfig()).Stats()
	r.Add("Geneve tunnels", float64(s.GeneveTunnels), 291, "")
	r.Add("VMs (two interfaces per VM)", float64(s.VMs), 15, "")
	r.Add("OpenFlow rules", float64(s.OpenFlowRules), 103302, "")
	r.Add("OpenFlow tables", float64(s.OpenFlowTables), 40, "")
	r.Add("matching fields among all rules", float64(s.MatchingFields), 31, "")
	r.AddNote("fields trail the paper's 31: NSX also matches on registers/metadata our flow key does not model")
	return r
}
