// Package experiments wires the simulated substrates into the paper's
// testbeds and reproduces every table and figure of the evaluation
// (Section 5). Each experiment builds fresh testbeds per trial, runs a
// warmup, measures a steady-state window, and reports paper-vs-measured.
package experiments

import (
	"fmt"

	"ovsxdp/internal/afxdp"
	"ovsxdp/internal/containersim"
	"ovsxdp/internal/core"
	"ovsxdp/internal/costmodel"
	"ovsxdp/internal/dpif"
	"ovsxdp/internal/ebpf"
	"ovsxdp/internal/flow"
	"ovsxdp/internal/kernelsim"
	"ovsxdp/internal/measure"
	"ovsxdp/internal/nicsim"
	"ovsxdp/internal/ofproto"
	"ovsxdp/internal/packet"
	"ovsxdp/internal/sim"
	"ovsxdp/internal/trafficgen"
	"ovsxdp/internal/vdev"
	"ovsxdp/internal/vmsim"
	"ovsxdp/internal/xdp"
)

// DPKind selects the datapath under test.
type DPKind int

// Datapath kinds.
const (
	KindKernel DPKind = iota
	KindAFXDP
	KindDPDK
	KindEBPF // kernel datapath re-implemented in sandboxed eBPF (Fig 2)
)

// String names the kind.
func (k DPKind) String() string {
	switch k {
	case KindKernel:
		return "kernel"
	case KindAFXDP:
		return "afxdp"
	case KindDPDK:
		return "dpdk"
	default:
		return "ebpf"
	}
}

// DpifType maps the kind to its dpif provider registry name.
func (k DPKind) DpifType() string {
	switch k {
	case KindKernel:
		return "netlink"
	case KindEBPF:
		return "ebpf"
	default:
		return "netdev"
	}
}

// mustOpen opens a registered dpif provider or panics — testbeds are
// constructed from compile-time kinds, so a miss is a programming error.
func mustOpen(name string, cfg dpif.Config) dpif.Dpif {
	d, err := dpif.Open(name, cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// VDevKind selects the VM device for PVP scenarios.
type VDevKind int

// Virtual device kinds.
const (
	VDevTap VDevKind = iota
	VDevVhost
)

// String names the kind.
func (k VDevKind) String() string {
	if k == VDevTap {
		return "tap"
	}
	return "vhostuser"
}

// BedConfig parameterizes a loopback testbed.
type BedConfig struct {
	Kind      DPKind
	Flows     int
	FrameSize int
	Queues    int // NIC receive queues = PMD threads (Fig 12)
	LinkRate  int64
	Mode      core.Mode // poll / interrupt / non-pmd for AF_XDP-style ports
	Lock      afxdp.LockMode
	ZeroCopy  bool // zero-copy AF_XDP (driver support dependent)
	Opts      core.Options
	// VDev, for PVP: how the VM attaches.
	VDev VDevKind
	// KernelQueues: RSS width for the kernel datapath (hyperthreads).
	KernelQueues int
	Seed         uint64
	// Pipeline overrides the default port-forwarding pipeline (nil keeps
	// it). The cache-hierarchy sweep uses this to install a multi-subtable
	// rule set so the megaflow classifier has real tuple-space work to do.
	Pipeline *ofproto.Pipeline
	// PMDs is the number of poll threads for userspace datapaths; zero
	// keeps the legacy one-thread-per-NIC-queue wiring. Receive queues
	// are distributed over the threads by the assignment layer, so PMDs
	// may be smaller than Queues (the corescale sweep's whole point).
	PMDs int
	// Other carries ovs-vsctl-style other_config keys applied through
	// dpif.SetConfig at open — the key/value route to every tunable the
	// legacy struct fields cover.
	Other map[string]string
	// RSSWeights, when set, programs NIC A's RSS indirection table with
	// one weight per queue (nicsim.WeightedIndirection), skewing traffic
	// deterministically across receive queues. nil keeps the identity
	// hash spread.
	RSSWeights []int
}

// DefaultCache overlays cache-hierarchy toggles onto every bed DefaultBed
// builds, so `ovsbench -smc`/`-emc-prob` can rerun the stock experiments
// with the signature cache on or probabilistic EMC insertion. The zero
// value changes nothing, keeping default measured outputs byte-identical.
// Scenarios that pin their own cache configuration (cachesweep) overwrite
// Opts after DefaultBed and are unaffected.
var DefaultCache struct {
	SMC              bool
	EMCInsertInvProb int
}

// DefaultOther overlays ovs-vsctl-style other_config keys onto every bed
// DefaultBed builds (`ovsbench -o key=value`). nil changes nothing, keeping
// default measured outputs byte-identical. Scenarios that pin their own
// config (corescale's auto-LB arm) set BedConfig.Other directly and are
// unaffected.
var DefaultOther map[string]string

// DefaultBed returns the Section 5.2 defaults.
func DefaultBed(kind DPKind, flows int) BedConfig {
	cfg := BedConfig{
		Kind: kind, Flows: flows, FrameSize: 64, Queues: 1,
		LinkRate: costmodel.LinkRate25G,
		Mode:     core.ModePoll, Lock: afxdp.LockSpinBatched,
		Opts: core.DefaultOptions(), KernelQueues: 12, Seed: 1,
	}
	if DefaultCache.SMC {
		cfg.Opts.SMC = true
	}
	if DefaultCache.EMCInsertInvProb > 1 {
		cfg.Opts.EMCInsertInvProb = DefaultCache.EMCInsertInvProb
	}
	cfg.Other = DefaultOther
	return cfg
}

// Bed is a built loopback testbed: generator -> NIC A -> datapath ->
// NIC B -> delivered counter.
type Bed struct {
	Eng       *sim.Engine
	Gen       *trafficgen.UDPGen
	NICA      *nicsim.NIC
	NICB      *nicsim.NIC
	Delivered uint64

	// DP is the datapath under test, reached through the dpif provider
	// seam — the bed never needs to know which implementation it drives.
	DP dpif.Dpif

	// Actors holds the kernel datapath's NAPI softirq actors so scenarios
	// (restart/recovery) can stop and resume them. Empty for userspace
	// datapaths, whose PMD threads are reachable via DP.
	Actors []*kernelsim.NAPIActor

	dropFns []func() uint64
}

// Drops sums packet losses at every bounded queue in the bed.
func (b *Bed) Drops() uint64 {
	total := b.NICA.RxDropsTotal() + b.NICB.RxDropsTotal()
	for _, fn := range b.dropFns {
		total += fn()
	}
	return total
}

// forwardPipeline forwards port 1 -> port 2 (and 2 -> 1 for the reverse
// direction in PVP/PCP).
func forwardPipeline() *ofproto.Pipeline {
	pl := ofproto.NewPipeline()
	m := flow.NewMaskBuilder().InPort().Build()
	pl.AddRule(&ofproto.Rule{TableID: 0, Priority: 1,
		Match:   ofproto.NewMatch(flow.Fields{InPort: 1}, m),
		Actions: []ofproto.Action{ofproto.Output(2)}})
	pl.AddRule(&ofproto.Rule{TableID: 0, Priority: 1,
		Match:   ofproto.NewMatch(flow.Fields{InPort: 2}, m),
		Actions: []ofproto.Action{ofproto.Output(1)}})
	return pl
}

// NewP2PBed builds the Figure 9(a) physical-to-physical loopback.
func NewP2PBed(cfg BedConfig) *Bed {
	eng := sim.NewEngine(cfg.Seed)
	bed := &Bed{Eng: eng}
	pipeline := cfg.Pipeline
	if pipeline == nil {
		pipeline = forwardPipeline()
	}

	queues := cfg.Queues
	if cfg.Kind == KindKernel || cfg.Kind == KindEBPF {
		queues = cfg.KernelQueues
	}
	offloads := nicsim.Offloads{}
	if cfg.Kind == KindDPDK || cfg.Kind == KindKernel || cfg.Kind == KindEBPF {
		offloads = nicsim.Offloads{RxCsum: true, TxCsum: true, TSO: true, RSSHashDeliver: true}
	}
	bed.NICA = nicsim.New(eng, nicsim.Config{Name: "p0", Ifindex: 1, Queues: queues,
		LinkRate: cfg.LinkRate, Offloads: offloads})
	bed.NICB = nicsim.New(eng, nicsim.Config{Name: "p1", Ifindex: 2, Queues: queues,
		LinkRate: cfg.LinkRate, Offloads: offloads})
	bed.NICB.ConnectWire(func(p *packet.Packet) { bed.Delivered++; p.Release() })
	if len(cfg.RSSWeights) > 0 {
		if err := bed.NICA.SetRSSIndirection(nicsim.WeightedIndirection(cfg.RSSWeights)); err != nil {
			panic(err)
		}
	}

	switch cfg.Kind {
	case KindKernel, KindEBPF:
		nl := mustOpen(cfg.Kind.DpifType(),
			dpif.Config{Eng: eng, Pipeline: pipeline, Other: cfg.Other}).(*dpif.Netlink)
		bed.DP = nl
		nl.PortAdd(dpif.TxPort{PortID: 2, PortName: "p1",
			Deliver: func(p *packet.Packet) { bed.NICB.Transmit(p) }})
		active := 0
		nl.SetActiveCPUs(func() int {
			if active == 0 {
				n := 0
				for q := 0; q < queues; q++ {
					if bed.NICA.Queue(q).RxPackets > 0 {
						n++
					}
				}
				if n == 0 {
					n = 1
				}
				if cfg.Flows > 1 {
					active = n // stabilize once spread is known
				}
				return n
			}
			return active
		})
		for q := 0; q < queues; q++ {
			cpu := eng.NewCPU(fmt.Sprintf("ksoftirqd/%d", q))
			actor := &kernelsim.NAPIActor{Eng: eng, CPU: cpu,
				Src:     kernelsim.NICQueueSource{Q: bed.NICA.Queue(q)},
				Handler: kdpHandler(nl, 1),
			}
			bed.Actors = append(bed.Actors, actor)
			actor.Start()
		}
	case KindAFXDP:
		if _, err := core.AttachDefaultProgram(bed.NICA); err != nil {
			panic(err)
		}
		if _, err := core.AttachDefaultProgram(bed.NICB); err != nil {
			panic(err)
		}
		nd := mustOpen("netdev",
			dpif.Config{Eng: eng, Pipeline: pipeline, Options: cfg.Opts, Other: cfg.Other}).(*dpif.Netdev)
		bed.DP = nd
		portA := core.NewAFXDPPort(core.AFXDPPortConfig{ID: 1, NIC: bed.NICA, Eng: eng,
			LockMode: cfg.Lock, ZeroCopy: cfg.ZeroCopy})
		portB := core.NewAFXDPPort(core.AFXDPPortConfig{ID: 2, NIC: bed.NICB, Eng: eng,
			LockMode: cfg.Lock, ZeroCopy: cfg.ZeroCopy})
		nd.PortAdd(portA)
		nd.PortAdd(portB)
		bed.dropFns = append(bed.dropFns,
			func() uint64 { return xskDrops(portA, queues) },
			func() uint64 { return portA.TxDrops + portB.TxDrops })
		spawnPMDs(nd, cfg.Mode, cfg.PMDs, queues, portA)
	case KindDPDK:
		nd := mustOpen("netdev",
			dpif.Config{Eng: eng, Pipeline: pipeline, Options: cfg.Opts, Other: cfg.Other}).(*dpif.Netdev)
		bed.DP = nd
		portA := core.NewDPDKPort(1, bed.NICA)
		portB := core.NewDPDKPort(2, bed.NICB)
		nd.PortAdd(portA)
		nd.PortAdd(portB)
		spawnPMDs(nd, core.ModePoll, cfg.PMDs, queues, portA)
	}

	bed.Gen = trafficgen.NewUDPGen(eng, cfg.Flows, cfg.FrameSize,
		func(p *packet.Packet) { bed.NICA.Receive(p) })
	return bed
}

// spawnPMDs creates the poll threads for a userspace bed and routes every
// receive queue through the datapath's assignment layer. pmds <= 0 keeps the
// legacy one-thread-per-NIC-queue shape; under the default round-robin
// policy that places queue i on thread i, reproducing the historical hand
// wiring exactly.
func spawnPMDs(nd *dpif.Netdev, mode core.Mode, pmds, queues int, rxPorts ...core.Port) {
	if pmds <= 0 {
		pmds = queues
	}
	threads := make([]*core.PMD, pmds)
	for i := range threads {
		threads[i] = nd.NewPMD(mode)
	}
	for _, p := range rxPorts {
		if err := nd.Datapath().DistributeRxqs(p); err != nil {
			panic(err)
		}
	}
	for _, m := range threads {
		m.Start()
	}
}

func xskDrops(p *core.AFXDPPort, queues int) uint64 {
	var d uint64
	for q := 0; q < queues; q++ {
		x := p.XSK(q)
		d += x.RxDropFill + x.RxDropRing
	}
	return d
}

// NewPVPBed builds the Figure 9(b) physical-VM-physical loopback: packets
// enter NIC A, go to a reflecting VM, and come back out NIC B.
func NewPVPBed(cfg BedConfig) *Bed {
	eng := sim.NewEngine(cfg.Seed)
	bed := &Bed{Eng: eng}

	queues := cfg.Queues
	if cfg.Kind == KindKernel {
		queues = cfg.KernelQueues
	}
	offloads := nicsim.Offloads{}
	if cfg.Kind == KindDPDK || cfg.Kind == KindKernel {
		offloads = nicsim.Offloads{RxCsum: true, TxCsum: true, TSO: true, RSSHashDeliver: true}
	}
	bed.NICA = nicsim.New(eng, nicsim.Config{Name: "p0", Ifindex: 1, Queues: queues,
		LinkRate: cfg.LinkRate, Offloads: offloads})
	bed.NICB = nicsim.New(eng, nicsim.Config{Name: "p1", Ifindex: 2, Queues: queues,
		LinkRate: cfg.LinkRate, Offloads: offloads})
	bed.NICB.ConnectWire(func(p *packet.Packet) { bed.Delivered++; p.Release() })

	// Pipeline: NIC A (port 1) -> VM (port 3); VM (port 3) -> NIC B
	// (port 2).
	pl := ofproto.NewPipeline()
	m := flow.NewMaskBuilder().InPort().Build()
	pl.AddRule(&ofproto.Rule{TableID: 0, Priority: 1,
		Match:   ofproto.NewMatch(flow.Fields{InPort: 1}, m),
		Actions: []ofproto.Action{ofproto.Output(3)}})
	pl.AddRule(&ofproto.Rule{TableID: 0, Priority: 1,
		Match:   ofproto.NewMatch(flow.Fields{InPort: 3}, m),
		Actions: []ofproto.Action{ofproto.Output(2)}})

	// The VM.
	var backend vmsim.Backend
	var vmPort core.Port
	switch cfg.VDev {
	case VDevVhost:
		dev := vdev.NewVhostUser("vhost0")
		backend = &vmsim.VhostUserBackend{Dev: dev}
		vmPort = core.NewVhostPort(3, dev)
		bed.dropFns = append(bed.dropFns,
			func() uint64 { return dev.ToGuest.Dropped + dev.FromGuest.Dropped })
	default:
		tap := vdev.NewTap("tap0")
		backend = vmsim.NewTapBackendMQ(eng, tap,
			eng.NewCPU("qemu-rx"), eng.NewCPU("qemu-tx"))
		vmPort = core.NewTapPort(3, tap)
		bed.dropFns = append(bed.dropFns,
			func() uint64 { return tap.ToKernel.Dropped + tap.FromKernel.Dropped })
	}
	// The PVP loopback guest runs a poll-mode reflector (testpmd-style),
	// as the paper's VM does.
	vmsim.New(eng, vmsim.Config{Name: "vm0", Backend: backend, FastReflector: true})

	switch cfg.Kind {
	case KindKernel:
		nl := mustOpen("netlink", dpif.Config{Eng: eng, Pipeline: pl, Other: cfg.Other}).(*dpif.Netlink)
		bed.DP = nl
		nl.SetActiveCPUs(kernelActiveFn(bed, queues, cfg.Flows))
		// VM attaches via tap: in-kernel handoff (no syscall).
		tapDev, _ := backend.(*vmsim.TapBackend)
		nl.PortAdd(dpif.TxPort{PortID: 2, PortName: "p1",
			Deliver: func(p *packet.Packet) { bed.NICB.Transmit(p) }})
		nl.PortAdd(dpif.TxPort{PortID: 3, PortName: "tap0",
			Deliver: func(p *packet.Packet) {
				if tapDev != nil {
					tapDev.Tap.ToKernel.Push(p)
				}
			}})
		for q := 0; q < queues; q++ {
			cpu := eng.NewCPU(fmt.Sprintf("ksoftirqd/%d", q))
			(&kernelsim.NAPIActor{Eng: eng, CPU: cpu,
				Src:     kernelsim.NICQueueSource{Q: bed.NICA.Queue(q)},
				Handler: kdpHandler(nl, 1)}).Start()
		}
		// Traffic leaving the VM re-enters the kernel datapath.
		if tapDev != nil {
			cpu := eng.NewCPU("ksoftirqd/tap")
			(&kernelsim.NAPIActor{Eng: eng, CPU: cpu,
				Src: kernelsim.VQueueSource{Q: tapDev.Tap.FromKernel},
				Handler: func(cpu *sim.CPU, pkts []*packet.Packet) {
					for _, p := range pkts {
						p.ResetMetadata()
						p.InPort = 3
						nl.Process(cpu, p)
					}
				}}).Start()
		}
	case KindAFXDP, KindDPDK:
		nd := mustOpen("netdev",
			dpif.Config{Eng: eng, Pipeline: pl, Options: cfg.Opts, Other: cfg.Other}).(*dpif.Netdev)
		bed.DP = nd
		var portA, portB core.Port
		if cfg.Kind == KindAFXDP {
			if _, err := core.AttachDefaultProgram(bed.NICA); err != nil {
				panic(err)
			}
			if _, err := core.AttachDefaultProgram(bed.NICB); err != nil {
				panic(err)
			}
			pA := core.NewAFXDPPort(core.AFXDPPortConfig{ID: 1, NIC: bed.NICA, Eng: eng, LockMode: cfg.Lock})
			portA = pA
			portB = core.NewAFXDPPort(core.AFXDPPortConfig{ID: 2, NIC: bed.NICB, Eng: eng, LockMode: cfg.Lock})
			bed.dropFns = append(bed.dropFns, func() uint64 { return xskDrops(pA, queues) })
		} else {
			portA = core.NewDPDKPort(1, bed.NICA)
			portB = core.NewDPDKPort(2, bed.NICB)
		}
		nd.PortAdd(portA)
		nd.PortAdd(portB)
		nd.PortAdd(vmPort)
		// Round-robin distribution lands the VM port's single queue on the
		// first thread, matching the historical wiring.
		spawnPMDs(nd, cfg.Mode, cfg.PMDs, queues, portA, vmPort)
	}

	bed.Gen = trafficgen.NewUDPGen(eng, cfg.Flows, cfg.FrameSize,
		func(p *packet.Packet) { bed.NICA.Receive(p) })
	return bed
}

func kernelActiveFn(bed *Bed, queues, flows int) func() int {
	active := 0
	return func() int {
		if active == 0 {
			n := 0
			for q := 0; q < queues; q++ {
				if bed.NICA.Queue(q).RxPackets > 0 {
					n++
				}
			}
			if n == 0 {
				n = 1
			}
			if flows > 1 {
				active = n
			}
			return n
		}
		return active
	}
}

// PCPMode selects the container attachment for the PCP bed.
type PCPMode int

// Container attachment modes (Figure 9c's three bars).
const (
	PCPKernel     PCPMode = iota // in-kernel datapath + veth
	PCPAFXDPRedir                // XDP program redirects NIC<->veth (path C)
	PCPDPDK                      // DPDK + AF_PACKET container crossing
)

// String names the mode.
func (m PCPMode) String() string {
	switch m {
	case PCPKernel:
		return "kernel"
	case PCPAFXDPRedir:
		return "afxdp-xdp-redirect"
	default:
		return "dpdk"
	}
}

// NewPCPBed builds the Figure 9(c) physical-container-physical loopback.
func NewPCPBed(mode PCPMode, flows int, seed uint64) *Bed {
	eng := sim.NewEngine(seed)
	bed := &Bed{Eng: eng}
	bed.NICA = nicsim.New(eng, nicsim.Config{Name: "p0", Ifindex: 1, Queues: 1,
		LinkRate: costmodel.LinkRate25G})
	bed.NICB = nicsim.New(eng, nicsim.Config{Name: "p1", Ifindex: 2, Queues: 1,
		LinkRate: costmodel.LinkRate25G})
	bed.NICB.ConnectWire(func(p *packet.Packet) { bed.Delivered++; p.Release() })

	veth := vdev.NewVethPair("veth0")
	ct := containersim.New(eng, containersim.Config{Name: "c0", Veth: veth, FastPath: true})
	bed.dropFns = append(bed.dropFns,
		func() uint64 { return veth.AtoB.Dropped + veth.BtoA.Dropped })

	switch mode {
	case PCPKernel:
		nl := mustOpen("netlink",
			dpif.Config{Eng: eng, Pipeline: forwardPipelinePCP()}).(*dpif.Netlink)
		bed.DP = nl
		nl.PortAdd(dpif.TxPort{PortID: 2, PortName: "p1",
			Deliver: func(p *packet.Packet) { bed.NICB.Transmit(p) }})
		nl.PortAdd(dpif.TxPort{PortID: 3, PortName: "veth0",
			Deliver: func(p *packet.Packet) { veth.SendA(p) }})
		cpu := eng.NewCPU("ksoftirqd/0")
		(&kernelsim.NAPIActor{Eng: eng, CPU: cpu,
			Src:     kernelsim.NICQueueSource{Q: bed.NICA.Queue(0)},
			Handler: kdpHandler(nl, 1)}).Start()
		// Container output re-enters the datapath.
		cpu2 := eng.NewCPU("ksoftirqd/veth")
		(&kernelsim.NAPIActor{Eng: eng, CPU: cpu2,
			Src: kernelsim.VQueueSource{Q: veth.BtoA},
			Handler: func(cpu *sim.CPU, pkts []*packet.Packet) {
				for _, p := range pkts {
					p.ResetMetadata()
					p.InPort = 3
					nl.Process(cpu, p)
				}
			}}).Start()

	case PCPAFXDPRedir:
		// Figure 5 path C: the XDP program on NIC A redirects container
		// traffic straight to the veth; the container's return traffic
		// is picked up by a veth-side XDP program that transmits NIC B.
		l2 := ebpf.NewHashMap(8, 4, 128)
		dev := ebpf.NewDevMap(8)
		xskMap := ebpf.NewXskMap(8)
		if err := dev.SetTarget(0, 3); err != nil {
			panic(err)
		}
		// The generator's destination MAC maps to devmap slot 0.
		genDst := [6]byte{0x02, 0xbb, 0, 0, 0, 1}
		if err := l2.Update(xdp.MACKey(genDst), []byte{0, 0, 0, 0}); err != nil {
			panic(err)
		}
		prog := xdp.NewRedirectToVeth(l2, dev, xskMap)
		if err := prog.Load(); err != nil {
			panic(err)
		}
		if err := bed.NICA.Hook.Attach(prog); err != nil {
			panic(err)
		}
		softirq := eng.NewCPU("softirq/0")
		(&kernelsim.NAPIActor{Eng: eng, CPU: softirq,
			Src: kernelsim.NICQueueSource{Q: bed.NICA.Queue(0)},
			Handler: func(cpu *sim.CPU, pkts []*packet.Packet) {
				for _, p := range pkts {
					cpu.Consume(sim.Softirq, costmodel.XDPDriverOverhead)
					res, cost, err := bed.NICA.Hook.Run(0, p.Data, 1)
					cpu.Consume(sim.Softirq, cost)
					if err != nil {
						continue
					}
					if res.Action == ebpf.XDPRedirect {
						cpu.Consume(sim.Softirq, costmodel.XDPRedirectVeth)
						veth.SendA(p)
					}
				}
			}}).Start()
		// veth return side: in-kernel XDP redirect to NIC B.
		softirq2 := eng.NewCPU("softirq/veth")
		(&kernelsim.NAPIActor{Eng: eng, CPU: softirq2,
			Src: kernelsim.VQueueSource{Q: veth.BtoA},
			Handler: func(cpu *sim.CPU, pkts []*packet.Packet) {
				for _, p := range pkts {
					cpu.Consume(sim.Softirq, costmodel.XDPDriverOverhead+costmodel.XDPRedirectVeth)
					bed.NICB.Transmit(p)
				}
			}}).Start()

	case PCPDPDK:
		nd := mustOpen("netdev", dpif.Config{Eng: eng, Pipeline: forwardPipelinePCP(),
			Options: core.DefaultOptions()}).(*dpif.Netdev)
		bed.DP = nd
		portA := core.NewDPDKPort(1, bed.NICA)
		portB := core.NewDPDKPort(2, bed.NICB)
		nd.PortAdd(portA)
		nd.PortAdd(portB)
		// Container access via AF_PACKET: extra user/kernel crossing
		// each way (Section 5.3's explanation of DPDK's latency).
		dpdkCt := &dpdkContainerPort{id: 3, veth: veth, eng: eng}
		nd.PortAdd(dpdkCt)
		spawnPMDs(nd, core.ModePoll, 1, 1, portA, dpdkCt)
	}

	_ = ct
	bed.Gen = trafficgen.NewUDPGen(eng, flows, 64,
		func(p *packet.Packet) { bed.NICA.Receive(p) })
	return bed
}

func forwardPipelinePCP() *ofproto.Pipeline {
	pl := ofproto.NewPipeline()
	m := flow.NewMaskBuilder().InPort().Build()
	pl.AddRule(&ofproto.Rule{TableID: 0, Priority: 1,
		Match:   ofproto.NewMatch(flow.Fields{InPort: 1}, m),
		Actions: []ofproto.Action{ofproto.Output(3)}})
	pl.AddRule(&ofproto.Rule{TableID: 0, Priority: 1,
		Match:   ofproto.NewMatch(flow.Fields{InPort: 3}, m),
		Actions: []ofproto.Action{ofproto.Output(2)}})
	return pl
}

// dpdkContainerPort reaches a container through AF_PACKET injection: every
// packet pays a user/kernel crossing plus copies in each direction.
type dpdkContainerPort struct {
	id   uint32
	veth *vdev.VethPair
	eng  *sim.Engine
}

func (p *dpdkContainerPort) ID() uint32       { return p.id }
func (p *dpdkContainerPort) Name() string     { return "dpdk-afpacket" }
func (p *dpdkContainerPort) NumRxQueues() int { return 1 }
func (p *dpdkContainerPort) NumTxQueues() int { return 1 }

func (p *dpdkContainerPort) Rx(cpu *sim.CPU, _, max int) []*packet.Packet {
	pkts := p.veth.BtoA.Pop(max)
	for _, pkt := range pkts {
		pkt.InPort = p.id
		// Under load the AF_PACKET ring amortizes the crossing across a
		// batch; latency tests see the full per-wakeup cost instead.
		cpu.Consume(sim.System, costmodel.DPDKContainerCrossing/16+costmodel.CopyCost(len(pkt.Data)))
	}
	return pkts
}

func (p *dpdkContainerPort) Tx(cpu *sim.CPU, _ int, pkt *packet.Packet) {
	cpu.Consume(sim.System, costmodel.DPDKContainerCrossing/16+costmodel.CopyCost(len(pkt.Data)))
	p.veth.SendA(pkt)
}

func (p *dpdkContainerPort) Flush(*sim.CPU, int) {}

func (p *dpdkContainerPort) Arm(_ int, fn func()) {
	p.veth.BtoA.SetWakeup(fn)
	p.veth.BtoA.ArmWakeup()
}

// kdpHandler feeds packets to the kernel datapath with the right input
// port set.
func kdpHandler(d *dpif.Netlink, inPort uint32) func(*sim.CPU, []*packet.Packet) {
	return func(cpu *sim.CPU, pkts []*packet.Packet) {
		for _, p := range pkts {
			p.InPort = inPort
			d.Process(cpu, p)
		}
	}
}

// RunProbe drives a bed at ratePPS with a warmup then measures a window,
// returning the delivery/drop/CPU numbers.
func RunProbe(bed *Bed, ratePPS float64, warmup, window sim.Time) measure.ProbeResult {
	bed.Gen.Run(ratePPS, warmup+window)

	bed.Eng.RunUntil(warmup)
	for _, c := range bed.Eng.CPUs() {
		c.ResetAccounting()
	}
	sentBefore := bed.Gen.Sent
	deliveredBefore := bed.Delivered
	dropsBefore := bed.Drops()

	bed.Eng.RunUntil(warmup + window)
	// Allow in-flight packets to drain briefly (not counted as offered).
	bed.Eng.RunUntil(warmup + window + 200*sim.Microsecond)

	offered := bed.Gen.Sent - sentBefore
	delivered := bed.Delivered - deliveredBefore
	drops := bed.Drops() - dropsBefore
	usage := bed.Eng.CPUReport(window + 200*sim.Microsecond)
	return measure.ProbeResult{Offered: offered, Delivered: delivered, Dropped: drops, Usage: usage}
}
