package experiments

import (
	"ovsxdp/internal/afxdp"
	"ovsxdp/internal/containersim"
	"ovsxdp/internal/core"
	"ovsxdp/internal/costmodel"
	"ovsxdp/internal/ebpf"
	"ovsxdp/internal/flow"
	"ovsxdp/internal/kernelsim"
	"ovsxdp/internal/netlinksim"
	"ovsxdp/internal/nicsim"
	"ovsxdp/internal/ofproto"
	"ovsxdp/internal/packet"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/sim"
	"ovsxdp/internal/trafficgen"
	"ovsxdp/internal/tunnel"
	"ovsxdp/internal/vdev"
	"ovsxdp/internal/vmsim"
	"ovsxdp/internal/xdp"
)

// Figure 8: single-flow bulk TCP throughput in three production scenarios,
// with the NSX-style pipeline (classification, conntrack with
// recirculation, L2, Geneve for the cross-host case) and the offload
// toggles the paper walks through.

func init() {
	register(Experiment{ID: "fig8a", Title: "VM-to-VM TCP across hosts over Geneve (Figure 8a)", Run: runFig8a})
	register(Experiment{ID: "fig8b", Title: "VM-to-VM TCP within a host (Figure 8b)", Run: runFig8b})
	register(Experiment{ID: "fig8c", Title: "Container-to-container TCP within a host (Figure 8c)", Run: runFig8c})
}

// Port numbering inside each host's datapath.
const (
	f8Uplink uint32 = 1
	f8VM     uint32 = 3
	f8VM2    uint32 = 4
	f8TnlPop uint32 = 100
)

var (
	f8SenderMAC   = hdr.MAC{0x02, 0x10, 0, 0, 0, 0x01}
	f8ReceiverMAC = hdr.MAC{0x02, 0x20, 0, 0, 0, 0x01}
	f8SenderIP    = hdr.MakeIP4(10, 10, 0, 1)
	f8ReceiverIP  = hdr.MakeIP4(10, 10, 0, 2)
	f8VTEP1       = hdr.MakeIP4(172, 16, 0, 1)
	f8VTEP2       = hdr.MakeIP4(172, 16, 0, 2)
)

// nsxStylePipeline builds the three-pass pipeline for one host: classify,
// conntrack, L2 with local VIF + remote peer behind a Geneve tunnel.
func nsxStylePipeline(localMAC, remoteMAC hdr.MAC, localVTEP, remoteVTEP hdr.IP4, localPort uint32) *ofproto.Pipeline {
	pl := ofproto.NewPipeline()
	mIn := flow.NewMaskBuilder().InPort().Build()
	mTun := flow.NewMaskBuilder().InPort().EthType().IPProto().TPDst().Build()
	mEth := flow.NewMaskBuilder().EthType().Build()
	mCt := flow.NewMaskBuilder().CtState(0x07).Build()
	mMac := flow.NewMaskBuilder().EthDst().Build()

	// Table 0: classification (pass 1).
	pl.AddRule(&ofproto.Rule{TableID: 0, Priority: 200,
		Match: ofproto.NewMatch(flow.Fields{InPort: f8Uplink,
			EthType: hdr.EtherTypeIPv4, IPProto: hdr.IPProtoUDP, TPDst: hdr.GenevePort}, mTun),
		Actions: []ofproto.Action{ofproto.TunnelPop(f8TnlPop)}})
	pl.AddRule(&ofproto.Rule{TableID: 0, Priority: 100,
		Match:   ofproto.NewMatch(flow.Fields{InPort: f8TnlPop}, mIn),
		Actions: []ofproto.Action{ofproto.GotoTable(10)}})
	pl.AddRule(&ofproto.Rule{TableID: 0, Priority: 100,
		Match:   ofproto.NewMatch(flow.Fields{InPort: localPort}, mIn),
		Actions: []ofproto.Action{ofproto.GotoTable(10)}})

	// Table 10: firewall send-to-conntrack (pass 2 boundary).
	pl.AddRule(&ofproto.Rule{TableID: 10, Priority: 10,
		Match:   ofproto.NewMatch(flow.Fields{EthType: hdr.EtherTypeIPv4}, mEth),
		Actions: []ofproto.Action{ofproto.CT(7, true, 11)}})
	pl.AddRule(&ofproto.Rule{TableID: 10, Priority: 20,
		Match:   ofproto.NewMatch(flow.Fields{EthType: hdr.EtherTypeARP}, mEth),
		Actions: []ofproto.Action{ofproto.GotoTable(20)}})

	// Table 11: post-conntrack (pass 3).
	pl.AddRule(&ofproto.Rule{TableID: 11, Priority: 100,
		Match:   ofproto.NewMatch(flow.Fields{CtState: 0x05}, mCt),
		Actions: []ofproto.Action{ofproto.GotoTable(20)}})
	pl.AddRule(&ofproto.Rule{TableID: 11, Priority: 90,
		Match:   ofproto.NewMatch(flow.Fields{CtState: 0x03}, mCt),
		Actions: []ofproto.Action{ofproto.GotoTable(20)}})

	// Table 20: L2.
	pl.AddRule(&ofproto.Rule{TableID: 20, Priority: 50,
		Match:   ofproto.NewMatch(flow.Fields{EthDst: localMAC}, mMac),
		Actions: []ofproto.Action{ofproto.Output(localPort)}})
	pl.AddRule(&ofproto.Rule{TableID: 20, Priority: 50,
		Match: ofproto.NewMatch(flow.Fields{EthDst: remoteMAC}, mMac),
		Actions: []ofproto.Action{
			ofproto.SetTunnel(tunnel.Config{Kind: tunnel.Geneve,
				LocalIP: localVTEP, RemoteIP: remoteVTEP, VNI: 5000}),
			ofproto.Output(f8Uplink)}})
	return pl
}

// tunnelCache builds a netlink replica resolving the peer VTEP.
func tunnelCache(eng *sim.Engine, local, remote hdr.IP4) *netlinksim.Cache {
	k := netlinksim.NewKernel()
	idx, _ := k.AddLink("uplink", "mlx5_core", hdr.MAC{0x02, 0xee, 0, 0, 0, 1}, 1600)
	k.AddAddr("uplink", local, 16)
	k.AddNeigh(netlinksim.Neigh{IP: remote, MAC: hdr.MAC{0x02, 0xee, 0, 0, 0, 2}, LinkIndex: idx})
	return netlinksim.NewCache(k)
}

// fig8aConfig is one Figure 8(a) bar.
type fig8aConfig struct {
	name      string
	kind      DPKind
	vd        VDevKind
	mode      core.Mode
	assumeCsm bool
	// bare disables O2-O4 (the interrupt bar "cannot take advantage of
	// any of the optimizations described in Section 3").
	bare  bool
	paper float64
}

// hostSide is one host's datapath plus its VM attachment in the dual-host
// bed.
type hostSide struct {
	dp     *core.Datapath
	kdp    *kernelsim.Datapath
	vmDev  *vdev.VhostUser
	tapDev *vmsim.TapBackend
	vm     *vmsim.VM
}

// runFig8a builds the two hosts, runs the bulk transfer, and reports Gbps.
func runFig8a(p Profile) *Report {
	r := &Report{ID: "fig8a", Title: "bulk TCP, VM to VM across hosts, Geneve, 10GbE (Gbps)"}
	cases := []fig8aConfig{
		{"kernel + tap", KindKernel, VDevTap, core.ModePoll, false, false, 2.2},
		{"afxdp + tap (interrupt)", KindAFXDP, VDevTap, core.ModeInterrupt, false, true, 1.9},
		{"afxdp + tap (poll, O1-O4)", KindAFXDP, VDevTap, core.ModePoll, false, false, 3.0},
		{"afxdp + vhost (no offload)", KindAFXDP, VDevVhost, core.ModePoll, false, false, 4.4},
		{"afxdp + vhost (csum offload)", KindAFXDP, VDevVhost, core.ModePoll, true, false, 6.5},
	}
	for _, c := range cases {
		gbps := runFig8aCase(p, c)
		r.Add(c.name, gbps, c.paper, "Gbps")
	}
	r.AddNote("each packet takes 3 datapath passes (classify, post-ct, post-decap/ct)")
	return r
}

func runFig8aCase(p Profile, c fig8aConfig) float64 {
	eng := sim.NewEngine(5)

	// The 10 GbE wire between the hosts.
	nic1 := nicsim.New(eng, nicsim.Config{Name: "h1-uplink", Ifindex: 1, Queues: 1,
		LinkRate: costmodel.LinkRate10G,
		Offloads: offloadsFor(c.kind)})
	nic2 := nicsim.New(eng, nicsim.Config{Name: "h2-uplink", Ifindex: 2, Queues: 1,
		LinkRate: costmodel.LinkRate10G,
		Offloads: offloadsFor(c.kind)})
	nic1.ConnectWire(func(pk *packet.Packet) { nic2.Receive(pk) })
	nic2.ConnectWire(func(pk *packet.Packet) { nic1.Receive(pk) })

	opts := core.DefaultOptions()
	opts.AssumeCsumOffload = c.assumeCsm
	if c.bare {
		opts.MetadataPrealloc = false
	}

	pl1 := nsxStylePipeline(f8SenderMAC, f8ReceiverMAC, f8VTEP1, f8VTEP2, f8VM)
	pl2 := nsxStylePipeline(f8ReceiverMAC, f8SenderMAC, f8VTEP2, f8VTEP1, f8VM)

	var bulk *trafficgen.Bulk
	h1 := buildHost(eng, c, nic1, pl1, tunnelCache(eng, f8VTEP1, f8VTEP2), opts,
		func(vm *vmsim.VM, pk *packet.Packet) { bulk.OnAckArrived(pk) })
	h2 := buildHost(eng, c, nic2, pl2, tunnelCache(eng, f8VTEP2, f8VTEP1), opts,
		func(vm *vmsim.VM, pk *packet.Packet) { bulk.OnDataArrived(pk) })

	var sc kernelsim.SocketCosts
	bulk = trafficgen.NewBulk(trafficgen.BulkConfig{
		Eng: eng, MSS: 1460, SendSize: 1460, Window: 256 * 1024,
		SrcMAC: f8SenderMAC, DstMAC: f8ReceiverMAC,
		SrcIP: f8SenderIP, DstIP: f8ReceiverIP, SrcPort: 35000, DstPort: 5001,
		MarkCsumPartial: false, // offload estimation happens in the datapath
		SenderCharge: func(bytes int) {
			h1.vm.CPU.Consume(sim.Guest, costmodel.SyscallBase+costmodel.CopyCost(bytes))
		},
		ReceiverCharge: func(bytes int) {
			h2.vm.CPU.Consume(sim.Guest, sc.RecvCost(bytes))
		},
		SendData: func(pk *packet.Packet) { h1.vm.Transmit(pk) },
		SendAck:  func(pk *packet.Packet) { h2.vm.Transmit(pk) },
	})
	bulk.Start()
	eng.RunUntil(20 * sim.Millisecond)
	return bulk.ThroughputGbps()
}

func offloadsFor(kind DPKind) nicsim.Offloads {
	if kind == KindAFXDP {
		return nicsim.Offloads{}
	}
	return nicsim.Offloads{RxCsum: true, TxCsum: true, TSO: true, RSSHashDeliver: true}
}

// buildHost wires one host: uplink + VM port + datapath of the right kind.
func buildHost(eng *sim.Engine, c fig8aConfig, nic *nicsim.NIC, pl *ofproto.Pipeline,
	cache *netlinksim.Cache, opts core.Options, onPacket func(*vmsim.VM, *packet.Packet)) *hostSide {
	h := &hostSide{}

	kcpu := eng.NewCPU("ksoftirqd-" + nic.Name)
	var backend vmsim.Backend
	var vmPort core.Port
	if c.vd == VDevVhost {
		h.vmDev = vdev.NewVhostUser("vh-" + nic.Name)
		backend = &vmsim.VhostUserBackend{Dev: h.vmDev}
		vmPort = core.NewVhostPort(f8VM, h.vmDev)
	} else {
		tap := vdev.NewTap("tap-" + nic.Name)
		relayCPU := eng.NewCPU("qemu-" + nic.Name)
		if c.kind == KindKernel {
			// The kernel datapath's tap traffic is relayed by the
			// vhost-net kernel thread, which contends with the same
			// softirq work (the paper's 2.2 Gbps ceiling).
			relayCPU = kcpu
		}
		h.tapDev = vmsim.NewTapBackend(eng, tap, relayCPU)
		backend = h.tapDev
		vmPort = core.NewTapPort(f8VM, tap)
	}
	h.vm = vmsim.New(eng, vmsim.Config{Name: "vm-" + nic.Name, Backend: backend,
		OffloadsNegotiated: c.assumeCsm, OnPacket: onPacket})

	switch c.kind {
	case KindKernel:
		kdp := kernelsim.NewDatapath(eng, kernelsim.FlavorModule, pl)
		h.kdp = kdp
		tapB := h.tapDev
		kdp.Outputs[f8Uplink] = func(pk *packet.Packet) {
			// Kernel-side Geneve encapsulation happens in execute();
			// the byte-level encap for the wire is done here so the
			// peer can decapsulate.
			outer := encapForWire(eng, cache, pk)
			if outer != nil {
				nic.Transmit(outer)
			}
		}
		kdp.Outputs[f8VM] = func(pk *packet.Packet) {
			if tapB != nil {
				tapB.Tap.ToKernel.Push(pk)
			}
		}
		cpu := kcpu
		(&kernelsim.NAPIActor{Eng: eng, CPU: cpu,
			Src:     kernelsim.NICQueueSource{Q: nic.Queue(0)},
			Handler: kdpKernelRx(kdp)}).Start()
		if tapB != nil {
			(&kernelsim.NAPIActor{Eng: eng, CPU: cpu,
				Src: kernelsim.VQueueSource{Q: tapB.Tap.FromKernel},
				Handler: func(cpu *sim.CPU, pkts []*packet.Packet) {
					for _, pk := range pkts {
						pk.InPort = f8VM
						kdp.Process(cpu, pk)
					}
				}}).Start()
		}
	default: // AF_XDP
		if _, err := core.AttachDefaultProgram(nic); err != nil {
			panic(err)
		}
		dp := core.NewDatapath(eng, pl, opts)
		dp.Encapper = tunnel.NewEncapper(cache)
		h.dp = dp
		lock := afxdp.LockSpinBatched
		if c.bare {
			lock = afxdp.LockMutex
		}
		uplink := core.NewAFXDPPort(core.AFXDPPortConfig{ID: f8Uplink, NIC: nic, Eng: eng, LockMode: lock})
		dp.AddPort(uplink)
		dp.AddPort(vmPort)
		pmd := dp.NewPMD(c.mode, nil)
		pmd.AssignRxQueue(uplink, 0)
		pmd.AssignRxQueue(vmPort, 0)
		pmd.Start()
	}
	return h
}

// kdpKernelRx handles uplink arrivals on the kernel datapath: tunneled
// packets are decapsulated in the kernel stack before the flow table pass.
func kdpKernelRx(kdp *kernelsim.Datapath) func(*sim.CPU, []*packet.Packet) {
	return func(cpu *sim.CPU, pkts []*packet.Packet) {
		for _, pk := range pkts {
			if inner, was, err := tunnel.Decap(pk); was && err == nil {
				cpu.Consume(sim.Softirq, costmodel.TunnelDecap)
				inner.InPort = f8TnlPop
				kdp.Process(cpu, inner)
				continue
			}
			pk.InPort = f8Uplink
			kdp.Process(cpu, pk)
		}
	}
}

// encapForWire performs Geneve encapsulation for the kernel datapath's
// uplink output (its execute() only charges the cost).
func encapForWire(eng *sim.Engine, cache *netlinksim.Cache, pk *packet.Packet) *packet.Packet {
	enc := tunnel.NewEncapper(cache)
	remote := f8VTEP2
	local := f8VTEP1
	// Direction: data goes 1->2, acks 2->1; pick by destination MAC.
	if eth, err := hdr.ParseEthernet(pk.Data); err == nil && eth.Dst == f8SenderMAC {
		remote, local = f8VTEP1, f8VTEP2
	}
	outer, err := enc.Encap(pk, tunnel.Config{Kind: tunnel.Geneve,
		LocalIP: local, RemoteIP: remote, VNI: 5000})
	if err != nil {
		return nil
	}
	return outer
}

// --- Figure 8b: intra-host VM to VM ------------------------------------------

type fig8bConfig struct {
	name  string
	kind  DPKind
	vd    VDevKind
	csum  bool // guest checksum offload negotiated
	tso   bool // oversized sends + AssumeTSO
	paper float64
}

func runFig8b(p Profile) *Report {
	r := &Report{ID: "fig8b", Title: "bulk TCP, VM to VM within a host (Gbps)"}
	cases := []fig8bConfig{
		{"kernel + tap (csum+TSO)", KindKernel, VDevTap, true, true, 12},
		{"afxdp + tap", KindAFXDP, VDevTap, false, false, 2.5},
		{"afxdp + vhost (no offload)", KindAFXDP, VDevVhost, false, false, 3.8},
		{"afxdp + vhost (csum)", KindAFXDP, VDevVhost, true, false, 8.4},
		{"afxdp + vhost (csum+TSO)", KindAFXDP, VDevVhost, true, true, 29},
	}
	for _, c := range cases {
		gbps := runFig8bCase(p, c)
		r.Add(c.name, gbps, c.paper, "Gbps")
	}
	r.AddNote("TSO bars move 64kB segments end-to-end; vhostuser skips the QEMU relay")
	return r
}

func runFig8bCase(p Profile, c fig8bConfig) float64 {
	eng := sim.NewEngine(5)

	// Both VMs on one host; pipeline forwards by MAC after conntrack.
	pl := ofproto.NewPipeline()
	mIn := flow.NewMaskBuilder().InPort().Build()
	mEth := flow.NewMaskBuilder().EthType().Build()
	mCt := flow.NewMaskBuilder().CtState(0x07).Build()
	mMac := flow.NewMaskBuilder().EthDst().Build()
	for _, port := range []uint32{f8VM, f8VM2} {
		pl.AddRule(&ofproto.Rule{TableID: 0, Priority: 100,
			Match:   ofproto.NewMatch(flow.Fields{InPort: port}, mIn),
			Actions: []ofproto.Action{ofproto.GotoTable(10)}})
	}
	pl.AddRule(&ofproto.Rule{TableID: 10, Priority: 10,
		Match:   ofproto.NewMatch(flow.Fields{EthType: hdr.EtherTypeIPv4}, mEth),
		Actions: []ofproto.Action{ofproto.CT(7, true, 11)}})
	pl.AddRule(&ofproto.Rule{TableID: 11, Priority: 100,
		Match:   ofproto.NewMatch(flow.Fields{CtState: 0x05}, mCt),
		Actions: []ofproto.Action{ofproto.GotoTable(20)}})
	pl.AddRule(&ofproto.Rule{TableID: 11, Priority: 90,
		Match:   ofproto.NewMatch(flow.Fields{CtState: 0x03}, mCt),
		Actions: []ofproto.Action{ofproto.GotoTable(20)}})
	pl.AddRule(&ofproto.Rule{TableID: 20, Priority: 50,
		Match:   ofproto.NewMatch(flow.Fields{EthDst: f8ReceiverMAC}, mMac),
		Actions: []ofproto.Action{ofproto.Output(f8VM2)}})
	pl.AddRule(&ofproto.Rule{TableID: 20, Priority: 50,
		Match:   ofproto.NewMatch(flow.Fields{EthDst: f8SenderMAC}, mMac),
		Actions: []ofproto.Action{ofproto.Output(f8VM)}})

	opts := core.DefaultOptions()
	opts.AssumeCsumOffload = c.csum
	opts.AssumeTSO = c.tso

	var bulk *trafficgen.Bulk
	mkVM := func(name string, id uint32, onPkt func(*vmsim.VM, *packet.Packet)) (core.Port, *vmsim.VM) {
		var backend vmsim.Backend
		var port core.Port
		if c.vd == VDevVhost {
			dev := vdev.NewVhostUser("vh-" + name)
			backend = &vmsim.VhostUserBackend{Dev: dev}
			port = core.NewVhostPort(id, dev)
		} else {
			tap := vdev.NewTap("tap-" + name)
			backend = vmsim.NewTapBackend(eng, tap, eng.NewCPU("qemu-"+name))
			port = core.NewTapPort(id, tap)
		}
		vm := vmsim.New(eng, vmsim.Config{Name: name, Backend: backend,
			OffloadsNegotiated: c.csum, OnPacket: onPkt})
		return port, vm
	}

	var senderVM, receiverVM *vmsim.VM
	var senderPort, receiverPort core.Port

	switch c.kind {
	case KindKernel:
		// In-kernel switching between two taps with full offloads: the
		// datapath moves 64kB frames without touching payload.
		kdp := kernelsim.NewDatapath(eng, kernelsim.FlavorModule, pl)
		tapS := vdev.NewTap("tap-s")
		tapR := vdev.NewTap("tap-r")
		backendS := vmsim.NewTapBackend(eng, tapS, eng.NewCPU("qemu-s"))
		backendR := vmsim.NewTapBackend(eng, tapR, eng.NewCPU("qemu-r"))
		senderVM = vmsim.New(eng, vmsim.Config{Name: "s", Backend: backendS,
			OffloadsNegotiated: true,
			OnPacket:           func(vm *vmsim.VM, pk *packet.Packet) { bulk.OnAckArrived(pk) }})
		receiverVM = vmsim.New(eng, vmsim.Config{Name: "r", Backend: backendR,
			OffloadsNegotiated: true,
			OnPacket:           func(vm *vmsim.VM, pk *packet.Packet) { bulk.OnDataArrived(pk) }})
		kdp.Outputs[f8VM2] = func(pk *packet.Packet) { tapR.ToKernel.Push(pk) }
		kdp.Outputs[f8VM] = func(pk *packet.Packet) { tapS.ToKernel.Push(pk) }
		cpu := eng.NewCPU("ksoftirqd")
		for _, src := range []struct {
			q  *vdev.Queue
			in uint32
		}{{tapS.FromKernel, f8VM}, {tapR.FromKernel, f8VM2}} {
			s := src
			(&kernelsim.NAPIActor{Eng: eng, CPU: cpu,
				Src: kernelsim.VQueueSource{Q: s.q},
				Handler: func(cpu *sim.CPU, pkts []*packet.Packet) {
					for _, pk := range pkts {
						pk.InPort = s.in
						kdp.Process(cpu, pk)
					}
				}}).Start()
		}
	default:
		dp := core.NewDatapath(eng, pl, opts)
		senderPort, senderVM = mkVM("s", f8VM, func(vm *vmsim.VM, pk *packet.Packet) { bulk.OnAckArrived(pk) })
		receiverPort, receiverVM = mkVM("r", f8VM2, func(vm *vmsim.VM, pk *packet.Packet) { bulk.OnDataArrived(pk) })
		dp.AddPort(senderPort)
		dp.AddPort(receiverPort)
		pmd := dp.NewPMD(core.ModePoll, nil)
		pmd.AssignRxQueue(senderPort, 0)
		pmd.AssignRxQueue(receiverPort, 0)
		pmd.Start()
	}

	sendSize := 1460
	window := 512 * 1024
	if c.tso {
		sendSize = 65536
		window = 2 * 1024 * 1024
	}
	var sc kernelsim.SocketCosts
	bulk = trafficgen.NewBulk(trafficgen.BulkConfig{
		Eng: eng, MSS: 1460, SendSize: sendSize, Window: window,
		SrcMAC: f8SenderMAC, DstMAC: f8ReceiverMAC,
		SrcIP: f8SenderIP, DstIP: f8ReceiverIP, SrcPort: 35000, DstPort: 5001,
		MarkTSO:         c.tso,
		MarkCsumPartial: c.csum,
		SenderCharge: func(bytes int) {
			senderVM.CPU.Consume(sim.Guest, costmodel.SyscallBase+costmodel.CopyCost(bytes))
		},
		ReceiverCharge: func(bytes int) {
			receiverVM.CPU.Consume(sim.Guest, sc.RecvCost(bytes))
		},
		SendData: func(pk *packet.Packet) { senderVM.Transmit(pk) },
		SendAck:  func(pk *packet.Packet) { receiverVM.Transmit(pk) },
	})
	bulk.Start()
	eng.RunUntil(20 * sim.Millisecond)
	if fig8Debug {
		for _, cpu := range eng.CPUs() {
			if cpu.BusyTotal() > 0 {
				println(cpu.Name(), "busy us:", int64(cpu.BusyTotal())/1000,
					"user:", int64(cpu.Busy(sim.User))/1000,
					"sys:", int64(cpu.Busy(sim.System))/1000,
					"softirq:", int64(cpu.Busy(sim.Softirq))/1000,
					"guest:", int64(cpu.Busy(sim.Guest))/1000)
			}
		}
		println("delivered KB:", int(bulk.DeliveredBytes()/1024),
			"sender tx:", int(senderVM.TxPackets), "recv rx:", int(receiverVM.RxPackets))
	}
	return bulk.ThroughputGbps()
}

var fig8Debug = false

// runFig8bCaseDebug is runFig8bCase with CPU accounting output (tests only).
func runFig8bCaseDebug(p Profile, c fig8bConfig) float64 {
	fig8Debug = true
	defer func() { fig8Debug = false }()
	return runFig8bCase(p, c)
}

// --- Figure 8c: container to container ----------------------------------------

type fig8cConfig struct {
	name  string
	mode  string // "kernel" | "xdp" | "afxdp"
	csum  bool
	tso   bool
	paper float64
}

func runFig8c(p Profile) *Report {
	r := &Report{ID: "fig8c", Title: "bulk TCP, container to container within a host (Gbps)"}
	cases := []fig8cConfig{
		{"kernel veth (no offload)", "kernel", false, false, 5.9},
		{"kernel veth (csum+TSO)", "kernel", true, true, 49},
		{"afxdp XDP redirect", "xdp", false, false, 5.7},
		{"afxdp veth (no offload)", "afxdp", false, false, 4.1},
		{"afxdp veth (csum)", "afxdp", true, false, 5.0},
		{"afxdp veth (csum+TSO)", "afxdp", true, true, 8.0},
	}
	for _, c := range cases {
		gbps := runFig8cCase(p, c)
		r.Add(c.name, gbps, c.paper, "Gbps")
	}
	r.AddNote("XDP lacks csum/TSO, so in-kernel veth keeps the TCP crown (Outcome #1)")
	return r
}

func runFig8cCase(p Profile, c fig8cConfig) float64 {
	eng := sim.NewEngine(5)
	vethS := vdev.NewVethPair("veth-s")
	vethR := vdev.NewVethPair("veth-r")

	var bulk *trafficgen.Bulk
	var sender, receiver *containersim.Container
	sender = containersim.New(eng, containersim.Config{Name: "s", Veth: vethS,
		OnPacket: func(ct *containersim.Container, pk *packet.Packet) { bulk.OnAckArrived(pk) }})
	receiver = containersim.New(eng, containersim.Config{Name: "r", Veth: vethR,
		OnPacket: func(ct *containersim.Container, pk *packet.Packet) { bulk.OnDataArrived(pk) }})

	switch c.mode {
	case "kernel", "xdp":
		// In-kernel switching (OVS module) or in-kernel XDP redirect
		// between the veths; XDP charges program costs and cannot use
		// csum/TSO.
		cpu := eng.NewCPU("softirq")
		hopCost := func(pk *packet.Packet) sim.Time {
			if c.mode == "xdp" {
				return costmodel.XDPDriverOverhead + costmodel.XDPRedirectVeth +
					costmodel.EBPFPacketTouch + costmodel.VethCrossing
			}
			return costmodel.SkbAlloc + costmodel.KernelOVSLookup +
				costmodel.KernelOVSActions + costmodel.VethCrossing
		}
		fwd := func(dst *vdev.VethPair) func(*sim.CPU, []*packet.Packet) {
			return func(cpu *sim.CPU, pkts []*packet.Packet) {
				for _, pk := range pkts {
					cpu.Consume(sim.Softirq, hopCost(pk))
					dst.SendA(pk)
				}
			}
		}
		(&kernelsim.NAPIActor{Eng: eng, CPU: cpu,
			Src: kernelsim.VQueueSource{Q: vethS.BtoA}, Handler: fwd(vethR)}).Start()
		(&kernelsim.NAPIActor{Eng: eng, CPU: cpu,
			Src: kernelsim.VQueueSource{Q: vethR.BtoA}, Handler: fwd(vethS)}).Start()
	case "afxdp":
		// Figure 5 path A: veth -> AF_XDP (generic) -> OVS userspace ->
		// veth.
		opts := core.DefaultOptions()
		opts.AssumeCsumOffload = c.csum
		opts.AssumeTSO = c.tso
		// Bidirectional: data 1 -> 3, acks 3 -> 1.
		plc := ofproto.NewPipeline()
		mInC := flow.NewMaskBuilder().InPort().Build()
		plc.AddRule(&ofproto.Rule{TableID: 0, Priority: 1,
			Match:   ofproto.NewMatch(flow.Fields{InPort: 1}, mInC),
			Actions: []ofproto.Action{ofproto.Output(3)}})
		plc.AddRule(&ofproto.Rule{TableID: 0, Priority: 1,
			Match:   ofproto.NewMatch(flow.Fields{InPort: 3}, mInC),
			Actions: []ofproto.Action{ofproto.Output(1)}})
		dp := core.NewDatapath(eng, plc, opts)
		softirq := eng.NewCPU("softirq")
		portS := core.NewVethPort(1, eng, vethS, softirq)
		portR := core.NewVethPort(3, eng, vethR, softirq)
		dp.AddPort(portS)
		dp.AddPort(portR)
		// Reverse rule: acks from the receiver side go back out port 1.
		pmd := dp.NewPMD(core.ModePoll, nil)
		pmd.AssignRxQueue(portS, 0)
		pmd.AssignRxQueue(portR, 0)
		pmd.Start()
	}

	sendSize := 1460
	window := 512 * 1024
	if c.tso {
		sendSize = 65536
		window = 2 * 1024 * 1024
	}
	var sc kernelsim.SocketCosts
	bulk = trafficgen.NewBulk(trafficgen.BulkConfig{
		Eng: eng, MSS: 1460, SendSize: sendSize, Window: window,
		SrcMAC: f8SenderMAC, DstMAC: f8ReceiverMAC,
		SrcIP: f8SenderIP, DstIP: f8ReceiverIP, SrcPort: 35000, DstPort: 5001,
		MarkTSO:         c.tso,
		MarkCsumPartial: c.csum,
		// Container.Transmit already charges the send syscall and copy;
		// only the optional software checksum is extra.
		SenderCharge: func(bytes int) {
			if !c.csum {
				sender.AppCPU.Consume(sim.Softirq, costmodel.ChecksumCost(bytes))
			}
		},
		ReceiverCharge: func(bytes int) {
			receiver.AppCPU.Consume(sim.Softirq, sc.RecvCost(bytes))
			if !c.csum {
				receiver.AppCPU.Consume(sim.Softirq, costmodel.ChecksumCost(bytes))
			}
		},
		SendData: func(pk *packet.Packet) {
			if c.csum {
				pk.Offloads |= packet.CsumPartial
			}
			sender.Transmit(pk)
		},
		SendAck: func(pk *packet.Packet) { receiver.Transmit(pk) },
	})
	bulk.Start()
	eng.RunUntil(20 * sim.Millisecond)
	if fig8cDebug {
		for _, cpu := range eng.CPUs() {
			if cpu.BusyTotal() > 0 {
				println(cpu.Name(), "busy us:", int64(cpu.BusyTotal())/1000)
			}
		}
		println("delivered KB:", int(bulk.DeliveredBytes()/1024))
	}
	return bulk.ThroughputGbps()
}

var fig8cDebug = false

var _ = ebpf.XDPPass
var _ = xdp.MapIDDev
var _ = trafficgen.NewUDPGen
