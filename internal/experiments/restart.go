package experiments

import (
	"ovsxdp/internal/core"
	"ovsxdp/internal/costmodel"
	"ovsxdp/internal/dpif"
	"ovsxdp/internal/sim"
)

// The restart scenario reproduces Section 6's operational argument for the
// userspace datapath: upgrading ovs-vswitchd with dpif-netdev only pauses
// the PMD threads for the daemon's restart gap, while upgrading the kernel
// module requires unloading and reloading it — a much longer outage — and
// both must rebuild their flow tables through re-upcalls afterwards. The
// scenario tears the datapath down mid-run, measures packets lost during
// the gap, and reports the loss for userspace-AF_XDP vs the kernel module.
func init() {
	registerScenario(Scenario{
		ID:    "restart",
		Title: "vswitchd restart/upgrade: loss gap, userspace-AF_XDP vs kernel",
		Run:   runRestart,
	})
}

// restartResult is one trial's outcome.
type restartResult struct {
	gap        sim.Time
	sent       uint64
	delivered  uint64
	lost       uint64
	reupcalls  uint64
	flowsAfter int
}

// restartTrial runs one bed at ratePPS, stops its packet-processing threads
// at p.Warmup for the kind's restart gap, flushes the flow table (the new
// daemon/module starts empty), resumes, and lets the run drain.
func restartTrial(kind DPKind, gap sim.Time, p Profile, ratePPS float64) restartResult {
	cfg := DefaultBed(kind, 64)
	// One receive queue on both datapaths so the loss gap is bounded by the
	// same single NIC ring, not by RSS width.
	cfg.KernelQueues = 1
	bed := NewP2PBed(cfg)

	runout := 5 * sim.Millisecond
	total := p.Warmup + gap + runout
	bed.Gen.Run(ratePPS, total)
	bed.Eng.RunUntil(p.Warmup)
	missedBefore := bed.DP.Stats().Missed

	// Teardown: the old daemon (or module) goes away. PMD threads stop
	// polling; softirq actors stop draining NIC rings. The datapath flow
	// table does not survive the restart.
	var pmds []*core.PMD
	if nd, ok := bed.DP.(*dpif.Netdev); ok {
		pmds = nd.Datapath().PMDs()
	}
	for _, m := range pmds {
		m.Stop()
	}
	for _, a := range bed.Actors {
		a.Stop()
	}
	bed.DP.FlowFlush()
	bed.Eng.RunUntil(p.Warmup + gap)

	// Recovery: the new daemon attaches to the same rings and rebuilds the
	// flow table through re-upcalls against the unchanged pipeline.
	for _, m := range pmds {
		m.Start()
	}
	for _, a := range bed.Actors {
		a.Resume()
	}
	bed.Eng.RunUntil(total + sim.Millisecond)

	return restartResult{
		gap:        gap,
		sent:       bed.Gen.Sent,
		delivered:  bed.Delivered,
		lost:       bed.Gen.Sent - bed.Delivered,
		reupcalls:  bed.DP.Stats().Missed - missedBefore,
		flowsAfter: bed.DP.Stats().Flows,
	}
}

func runRestart(p Profile) *Report {
	r := &Report{ID: "restart", Title: "vswitchd restart/upgrade loss gap (1 Mpps, 64B, 1 rxq)"}
	const rate = 1e6

	af := restartTrial(KindAFXDP, costmodel.VswitchdRestartGap, p, rate)
	kn := restartTrial(KindKernel, costmodel.KernelModuleReloadGap, p, rate)

	r.Add("afxdp: restart gap", float64(af.gap)/float64(sim.Microsecond), 0, "us")
	r.Add("afxdp: packets lost across restart", float64(af.lost), 0, "pkts")
	r.Add("afxdp: re-upcalls to rebuild flows", float64(af.reupcalls), 0, "upcalls")
	r.Add("kernel: module reload gap", float64(kn.gap)/float64(sim.Microsecond), 0, "us")
	r.Add("kernel: packets lost across restart", float64(kn.lost), 0, "pkts")
	r.Add("kernel: re-upcalls to rebuild flows", float64(kn.reupcalls), 0, "upcalls")
	r.AddNote("afxdp delivered %d/%d, kernel %d/%d; NIC rings buffer the gap until they overflow",
		af.delivered, af.sent, kn.delivered, kn.sent)
	if af.lost < kn.lost {
		r.AddNote("userspace restart loses %.1fx fewer packets than a kernel module reload",
			float64(kn.lost)/float64(maxU64(af.lost, 1)))
	} else {
		r.AddNote("WARNING: expected strictly smaller loss for the userspace restart")
	}
	return r
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
