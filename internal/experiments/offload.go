package experiments

// The offload scenario measures hardware flow offload: elephants and mice
// share one datapath, the offload engine pushes the elephant megaflows
// down into the NIC flow table, and the headline is the capacity (and PMD
// cycles) freed versus the same offered load handled entirely in software
// (ROADMAP item: hardware offload, unlocked by the nicsim NIC model).
//
// The workload is the canonical heavy-tailed mix: a few hundred elephant
// flows carrying 80% of the bytes, a few thousand mice carrying the rest,
// all at the same frame size so byte share equals packet share. Points
// walk the hardware table-pressure axis: a baseline with offload off, a
// "fit" point whose rule memory holds every elephant, and a "pressure"
// point whose table is smaller than the elephant set — with a fault window
// clamping it further mid-run — so admission control, eviction, and the
// software fallback are all exercised.
//
// Two correctness ledgers ride along: installs = evictions + uninstalls +
// live must hold exactly on the hardware table, and the counter-readback
// merge must keep hardware-hot flows out of the revalidator's idle
// eviction (a window several idle-timeouts long with zero software hits on
// the elephants is the proof). All measurements are in the virtual domain
// — the JSON output is byte-identical run to run at fixed defaults.

import (
	"encoding/json"
	"fmt"
	"os"

	"ovsxdp/internal/api"
	"ovsxdp/internal/dpif"
	"ovsxdp/internal/faultinject"
	"ovsxdp/internal/flow"
	"ovsxdp/internal/ofproto"
	"ovsxdp/internal/packet"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/sim"
)

// OffloadJSONPath, when non-empty, is where the offload scenario writes
// its machine-readable result. cmd/ovsbench defaults it to
// BENCH_offload.json; tests leave it empty to skip the write.
var OffloadJSONPath string

// OffloadOnly, when non-empty, restricts the run to the named points (CI
// runs baseline+fit to keep the smoke job cheap).
var OffloadOnly map[string]bool

// OffloadPoint is one measured offload configuration. Every field is
// computed in the virtual domain, so a point is deterministic for a given
// profile.
type OffloadPoint struct {
	Name string `json:"name"`
	// HWTableSize is the NIC rule-table capacity; 0 means offload off.
	HWTableSize int `json:"hw_table_size"`
	// Elephants/Mice are the flow counts; ElephantPktSharePct their
	// offered packet (= byte, same frame size) share.
	Elephants           int     `json:"elephants"`
	Mice                int     `json:"mice"`
	ElephantPktSharePct float64 `json:"elephant_pkt_share_pct"`
	WindowMs            float64 `json:"window_ms"`
	Packets             uint64  `json:"packets"`
	// OffloadHits is the window's hardware-forwarded packet count;
	// OffloadSharePct its share of the window's packets.
	OffloadHits     uint64  `json:"offload_hits"`
	OffloadSharePct float64 `json:"offload_share_pct"`
	// NsPerPkt is PMD busy nanoseconds per packet over the window;
	// CapacityMpps its reciprocal.
	NsPerPkt     float64 `json:"ns_per_pkt"`
	CapacityMpps float64 `json:"capacity_mpps"`
	// MppsRatio and CyclesFreedPct compare against the baseline point at
	// the same offered load (zero on the baseline itself).
	MppsRatio      float64 `json:"mpps_ratio"`
	CyclesFreedPct float64 `json:"cycles_freed_pct"`
	// Upcalls and RevalEvicted over the window: both stay ~zero when the
	// readback merge keeps offloaded flows alive — a broken merge shows
	// up as idle evictions followed by an upcall storm.
	Upcalls      uint64 `json:"upcalls"`
	RevalEvicted uint64 `json:"reval_evicted"`
	// The hardware-table conservation ledger, end of run (after drain):
	// Installs == Evictions + Uninstalls + Live.
	Installs   uint64 `json:"installs"`
	Evictions  uint64 `json:"evictions"`
	Uninstalls uint64 `json:"uninstalls"`
	Refused    uint64 `json:"refused"`
	Live       int    `json:"live"`
	LedgerOK   bool   `json:"ledger_ok"`
	// Readbacks counts counter sweeps; HWMergedHits the hardware hits
	// they merged into megaflow stats (the revalidator-aliveness feed).
	Readbacks    uint64 `json:"readbacks"`
	HWMergedHits uint64 `json:"hw_merged_hits"`
	// FaultClamped marks the pressure point's mid-window capacity clamp.
	FaultClamped bool `json:"fault_clamped"`
	// LiveAfterDrain is the hardware-table occupancy after traffic stops
	// and the revalidator expires every megaflow: the FlowDel purge
	// discipline must leave it at zero.
	LiveAfterDrain int `json:"live_after_drain"`
}

// OffloadResult is the BENCH_offload.json schema.
type OffloadResult struct {
	api.Envelope
	Points []OffloadPoint `json:"points"`
}

// offloadConfig parameterizes one point.
type offloadConfig struct {
	name      string
	tableSize int  // 0 = offload off
	clamp     bool // arm the offload-table-pressure fault mid-window
}

// The traffic mix: 256 elephants at 4 Mpps total versus 4096 mice at
// 1 Mpps total — identical 64-byte frames, so elephants carry 80% of both
// packets and bytes. Per-flow that is ~15.6k pps per elephant against
// ~244 pps per mouse, and the 4000-pps elephant threshold splits the two
// populations with two orders of magnitude of margin on either side.
const (
	offloadElephants   = 256
	offloadMice        = 4096
	offloadElephantPPS = 4e6
	offloadMousePPS    = 1e6
	offloadThreshold   = 4000 // hw-offload-elephant-pps
	offloadIdle        = 10 * sim.Millisecond
)

// offloadPoints returns the sweep for a profile, cheapest first. The
// pressure point (table smaller than the elephant set, clamped further by
// a fault window mid-run) only runs in the full profile.
func offloadPoints(quick bool) []offloadConfig {
	pts := []offloadConfig{
		{"baseline", 0, false},
		{"fit", 1024, false},
	}
	if !quick {
		pts = append(pts, offloadConfig{"pressure", 96, true})
	}
	return pts
}

// offloadGen drives round-robin traffic over one flow class by
// byte-patching the source IP into a prebuilt template frame — no
// per-packet allocation, no RNG, fully deterministic. Flow ids are offset
// per class so elephants and mice never share a five-tuple.
type offloadGen struct {
	eng      *sim.Engine
	dp       dpif.Dpif
	template []byte
	pool     *packet.Pool
	idBase   int
	flows    int
	cursor   int
	stopped  bool
	sent     uint64
}

func newOffloadGen(eng *sim.Engine, dp dpif.Dpif, idBase, flows int) *offloadGen {
	frame := hdr.NewBuilder().
		Eth(hdr.MAC{0x02, 0xaa, 0, 0, 0, 1}, hdr.MAC{0x02, 0xbb, 0, 0, 0, 1}).
		IPv4H(churnSrcIP(0), hdr.MakeIP4(10, 255, 0, 1), 64).
		UDPH(1000, 2000).PadTo(64).Build()
	return &offloadGen{eng: eng, dp: dp, template: frame,
		pool: packet.NewPool(64, len(frame), true), idBase: idBase, flows: flows}
}

func (g *offloadGen) emit() {
	id := g.idBase + g.cursor
	g.cursor++
	if g.cursor >= g.flows {
		g.cursor = 0
	}
	ip := churnSrcIP(id)
	g.template[srcIPOffset] = byte(ip >> 24)
	g.template[srcIPOffset+1] = byte(ip >> 16)
	g.template[srcIPOffset+2] = byte(ip >> 8)
	g.template[srcIPOffset+3] = byte(ip)
	p := g.pool.GetCopy(g.template)
	p.InPort = 1
	g.sent++
	g.dp.Execute(p)
}

func (g *offloadGen) run(ratePPS float64) {
	interval := sim.Time(float64(sim.Second) / ratePPS)
	if interval <= 0 {
		interval = 1
	}
	next := g.eng.Now()
	var tick func()
	tick = func() {
		if g.stopped {
			return
		}
		g.emit()
		next += interval
		g.eng.ScheduleAt(next, tick)
	}
	g.eng.ScheduleAt(next, tick)
}

// runOffloadPoint executes one configuration: build an Execute-driven
// netdev datapath, configure offload through the other_config surface,
// warm up past fill and elephant detection, measure a steady-state window,
// then stop traffic and drain the megaflow table through the revalidator
// (which must empty the hardware table with it).
func runOffloadPoint(c offloadConfig, window sim.Time) OffloadPoint {
	eng := sim.NewEngine(1)
	mask := flow.NewMaskBuilder().InPort().EthType().IPProto().
		IP4Src(32).IP4Dst(32).TPSrc().TPDst().Build()
	d := mustOpen("netdev", dpif.Config{Eng: eng, Pipeline: ofproto.NewPipeline()})
	if err := d.PortAdd(dpif.TxPort{PortID: 2, PortName: "sink",
		Deliver: func(p *packet.Packet) {}}); err != nil {
		panic(err)
	}
	d.SetUpcall(func(key flow.Key) (ofproto.Megaflow, error) {
		return ofproto.Megaflow{Mask: mask,
			Actions: []ofproto.DPAction{{Type: ofproto.DPOutput, Port: 2}}}, nil
	})
	if c.tableSize > 0 {
		if err := d.SetConfig(map[string]string{
			"hw-offload":              "true",
			"hw-offload-table-size":   fmt.Sprintf("%d", c.tableSize),
			"hw-offload-elephant-pps": fmt.Sprintf("%d", offloadThreshold),
			"hw-offload-readback-us":  "1000",
		}); err != nil {
			panic(err)
		}
	}

	r := dpif.StartWheelRevalidator(eng, d, offloadIdle)

	eg := newOffloadGen(eng, d, 0, offloadElephants)
	mg := newOffloadGen(eng, d, 1<<20, offloadMice)
	eg.run(offloadElephantPPS)
	mg.run(offloadMousePPS)

	// Warmup covers the mouse fill (4096 flows at 1 Mpps ≈ 4.1 ms) plus a
	// few readback intervals for the elephant EWMA to cross the threshold
	// and the install burst to complete.
	warmup := 8 * sim.Millisecond
	eng.RunUntil(warmup)

	nd := d.(*dpif.Netdev)
	dp := nd.Datapath()
	if c.clamp {
		// Firmware rule-memory pressure mid-window: clamp the table to a
		// fraction of its size for the middle half of the window, forcing
		// evictions out and a re-install wave back in.
		inj := faultinject.New(eng)
		inj.Window(faultinject.KindOffloadTablePressure, "nic0",
			warmup+window/4, window/2, func(active bool) {
				if active {
					dp.OffloadClamp(c.tableSize / 4)
				} else {
					dp.OffloadClamp(0)
				}
			})
	}
	pmd := dp.PMDs()[0]
	for _, cpu := range eng.CPUs() {
		cpu.ResetAccounting()
	}
	sent0 := eg.sent + mg.sent
	st0 := d.Stats()
	evic0 := r.Evicted

	eng.RunUntil(warmup + window)

	st1 := d.Stats()
	pkts := eg.sent + mg.sent - sent0
	busy := pmd.CPU.BusyTotal()
	pt := OffloadPoint{
		Name:                c.name,
		HWTableSize:         c.tableSize,
		Elephants:           offloadElephants,
		Mice:                offloadMice,
		ElephantPktSharePct: 100 * offloadElephantPPS / (offloadElephantPPS + offloadMousePPS),
		WindowMs:            float64(window) / float64(sim.Millisecond),
		Packets:             pkts,
		OffloadHits:         st1.OffloadHits - st0.OffloadHits,
		Upcalls:             st1.Missed - st0.Missed,
		RevalEvicted:        r.Evicted - evic0,
		FaultClamped:        c.clamp,
	}
	if pkts > 0 {
		pt.NsPerPkt = float64(busy) / float64(pkts)
		pt.CapacityMpps = 1e3 / pt.NsPerPkt
		pt.OffloadSharePct = 100 * float64(pt.OffloadHits) / float64(pkts)
	}

	// Drain: stop traffic; every flow goes idle, the revalidator expires
	// it, and the FlowDel purge discipline must empty the hardware table
	// along with the software caches.
	eg.stopped = true
	mg.stopped = true
	now := warmup + window
	for step := 0; step < 8 && d.Stats().Flows > 0; step++ {
		now += offloadIdle
		eng.RunUntil(now)
	}
	off := dp.OffloadStats()
	pt.Installs = off.Installs
	pt.Evictions = off.Evictions
	pt.Uninstalls = off.Uninstalls
	pt.Refused = off.Refused
	pt.Live = off.Live
	pt.Readbacks = off.Readbacks
	pt.HWMergedHits = off.HWMergedHits
	pt.LedgerOK = off.Installs == off.Evictions+off.Uninstalls+uint64(off.Live)
	pt.LiveAfterDrain = off.Live
	r.Stop()
	return pt
}

// RunOffload executes the offload sweep for a profile and returns the
// structured result (the scenario wrapper renders and persists it).
func RunOffload(p Profile) OffloadResult {
	quick := p.Window < Full.Window
	profileName := "full"
	window := 40 * sim.Millisecond
	if quick {
		profileName = "quick"
		window = 12 * sim.Millisecond
	}
	res := OffloadResult{Envelope: api.NewEnvelope("offload", 1, profileName)}
	var baseline *OffloadPoint
	for _, c := range offloadPoints(quick) {
		if len(OffloadOnly) > 0 && !OffloadOnly[c.name] {
			continue
		}
		pt := runOffloadPoint(c, window)
		if pt.HWTableSize == 0 {
			baseline = &pt
		} else if baseline != nil && baseline.NsPerPkt > 0 {
			pt.MppsRatio = pt.CapacityMpps / baseline.CapacityMpps
			pt.CyclesFreedPct = 100 * (baseline.NsPerPkt - pt.NsPerPkt) / baseline.NsPerPkt
		}
		res.Points = append(res.Points, pt)
	}
	return res
}

func init() {
	registerScenario(Scenario{
		ID:    "offload",
		Title: "hardware flow offload: elephants in the NIC table vs all-software",
		Run: func(p Profile) *Report {
			res := RunOffload(p)
			rep := &Report{ID: "offload",
				Title: "elephant offload sweep (NIC flow-table pressure x software fallback)"}
			for _, pt := range res.Points {
				rep.Add(pt.Name+": capacity per core", pt.CapacityMpps, 0, "Mpps")
				rep.Add(pt.Name+": busy time per packet", pt.NsPerPkt, 0, "ns/pkt")
				if pt.HWTableSize > 0 {
					rep.Add(pt.Name+": hw-forwarded share", pt.OffloadSharePct, 0, "%")
					rep.Add(pt.Name+": speedup vs baseline", pt.MppsRatio, 0, "x")
					rep.Add(pt.Name+": PMD cycles freed", pt.CyclesFreedPct, 0, "%")
				}
				ledger := "ok"
				if !pt.LedgerOK {
					ledger = "BROKEN"
				}
				rep.AddNote("%s: installs %d = evictions %d + uninstalls %d + live %d (ledger %s); refused %d, %d readbacks merged %d hw hits; window upcalls %d, reval evictions %d, hw live after drain %d",
					pt.Name, pt.Installs, pt.Evictions, pt.Uninstalls, pt.Live, ledger,
					pt.Refused, pt.Readbacks, pt.HWMergedHits,
					pt.Upcalls, pt.RevalEvicted, pt.LiveAfterDrain)
			}
			if OffloadJSONPath != "" {
				if err := WriteOffloadJSON(OffloadJSONPath, res); err != nil {
					rep.AddNote("failed to write %s: %v", OffloadJSONPath, err)
				} else {
					rep.AddNote("wrote %s", OffloadJSONPath)
				}
			}
			return rep
		},
	})
}

// WriteOffloadJSON persists an offload result.
func WriteOffloadJSON(path string, res OffloadResult) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadOffloadJSON reads a previously written result.
func LoadOffloadJSON(path string) (OffloadResult, error) {
	var res OffloadResult
	data, err := os.ReadFile(path)
	if err != nil {
		return res, err
	}
	if err := json.Unmarshal(data, &res); err != nil {
		return res, fmt.Errorf("%s: %w", path, err)
	}
	return res, nil
}
