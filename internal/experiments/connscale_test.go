package experiments

import "testing"

// TestConnscaleQuickAcceptance runs the quick profile and checks the
// scenario's headline claims: the conservation ledger holds at every
// point, connections actually reach the configured scale, and the
// degradation ladder keeps goodput within 10% of the no-flood baseline
// while shedding embryonic flood state.
func TestConnscaleQuickAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs millions of virtual packets")
	}
	res := RunConnscale(Quick)
	if len(res.Points) == 0 {
		t.Fatal("no points")
	}
	var sawSteady, sawFlood bool
	for _, pt := range res.Points {
		if !pt.LedgerOK {
			t.Errorf("%s: ledger broken: created %d != expired %d + early %d + evicted %d + live %d",
				pt.Name, pt.Created, pt.Expired, pt.EarlyDrops, pt.Evicted, pt.LiveAfterDrain)
		}
		if pt.LiveAfterDrain != 0 {
			t.Errorf("%s: %d connections survived the drain", pt.Name, pt.LiveAfterDrain)
		}
		if pt.Flood {
			sawFlood = true
			if pt.HeldPct < 90 {
				t.Errorf("%s: ladder held %.1f%% of baseline goodput, want >= 90%%", pt.Name, pt.HeldPct)
			}
			if pt.EstHeldPct < 90 {
				t.Errorf("%s: established goodput held %.1f%%, want >= 90%%", pt.Name, pt.EstHeldPct)
			}
			if pt.EarlyDrops == 0 {
				t.Errorf("%s: flood arm shed no embryonic state", pt.Name)
			}
			if pt.NoLadderHeldPct >= pt.HeldPct {
				t.Errorf("%s: legacy limit held %.1f%% >= ladder %.1f%% — ladder shows no benefit",
					pt.Name, pt.NoLadderHeldPct, pt.HeldPct)
			}
		} else {
			sawSteady = true
			if pt.PeakConns != pt.Conns {
				t.Errorf("%s: peak %d connections, want %d concurrent", pt.Name, pt.PeakConns, pt.Conns)
			}
			if pt.EarlyDrops != 0 || pt.Evicted != 0 || pt.TableFull != 0 {
				t.Errorf("%s: unlimited steady point shed state: early=%d evicted=%d full=%d",
					pt.Name, pt.EarlyDrops, pt.Evicted, pt.TableFull)
			}
		}
	}
	if !sawSteady || !sawFlood {
		t.Fatalf("quick profile must include a steady and a flood point (steady=%v flood=%v)",
			sawSteady, sawFlood)
	}
}
