package experiments

import (
	"fmt"

	"ovsxdp/internal/core"
	"ovsxdp/internal/flow"
	"ovsxdp/internal/ofproto"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/sim"
)

// The cachesweep scenario maps the cache hierarchy's crossover: at which
// flow-table sizes does the exact-match cache stop paying for itself and
// the signature match cache take over? It sweeps the flow count from 1k to
// 1M against a multi-subtable pipeline and measures cycles per packet for
// three cache configurations — EMC only, EMC+SMC, and SMC only — the same
// comparison OVS's own emc/smc tuning guidance is based on: the EMC's 8k
// entries win while the working set fits, and the SMC's much larger (but
// per-hit more expensive) table wins once the EMC thrashes.
func init() {
	registerScenario(Scenario{
		ID:    "cachesweep",
		Title: "cache hierarchy sweep: EMC vs EMC+SMC vs SMC across flow counts",
		Run:   runCacheSweep,
	})
}

// sweepPipeline builds a rule set that gives the megaflow layer real
// tuple-space work. Six rule groups at strictly descending priorities
// partition the generator's 250 destination /24s; each group's match adds
// one extra (constant-valued) field to a shared InPort+EthType+IP4Dst/24
// base, so every group wildcards differently. A packet in group k probes
// the k+1 highest-priority subtables before matching, and its megaflow
// mask is the union of everything probed — six distinct unions, six dpcls
// subtables, ~3.5 probed subtables per lookup on average. The EMC still
// caches exact 5-tuples (one entry per flow), while the megaflow layer
// collapses each /24 to a single entry — exactly the asymmetry the
// EMC-vs-SMC tradeoff is about.
func sweepPipeline() *ofproto.Pipeline {
	base := func() *flow.MaskBuilder {
		return flow.NewMaskBuilder().InPort().EthType().IP4Dst(24)
	}
	type group struct {
		mask   flow.Mask
		fields func(x byte) flow.Fields
	}
	with := func(set func(*flow.Fields)) func(byte) flow.Fields {
		return func(x byte) flow.Fields {
			f := flow.Fields{InPort: 1, EthType: hdr.EtherTypeIPv4,
				IP4Dst: hdr.MakeIP4(10, 1, x, 0)}
			if set != nil {
				set(&f)
			}
			return f
		}
	}
	groups := []group{
		{base().Build(), with(nil)},
		{base().IPProto().Build(), with(func(f *flow.Fields) { f.IPProto = hdr.IPProtoUDP })},
		{base().IPTTL().Build(), with(func(f *flow.Fields) { f.IPTTL = 64 })},
		{base().IPTOS().Build(), with(func(f *flow.Fields) { f.IPTOS = 0 })},
		{base().EthSrc().Build(), with(func(f *flow.Fields) { f.EthSrc = hdr.MAC{0x02, 0xaa, 0, 0, 0, 1} })},
		{base().EthDst().Build(), with(func(f *flow.Fields) { f.EthDst = hdr.MAC{0x02, 0xbb, 0, 0, 0, 1} })},
	}

	pl := ofproto.NewPipeline()
	const xTotal = 250 // generator dsts are 10.1.x.y with x in [0,250)
	per := (xTotal + len(groups) - 1) / len(groups)
	for g, grp := range groups {
		prio := 60 - 10*g // strictly descending so lookups can't stop early
		lo, hi := g*per, (g+1)*per
		if hi > xTotal {
			hi = xTotal
		}
		for x := lo; x < hi; x++ {
			pl.AddRule(&ofproto.Rule{TableID: 0, Priority: prio,
				Match:   ofproto.NewMatch(grp.fields(byte(x)), grp.mask),
				Actions: []ofproto.Action{ofproto.Output(2)}})
		}
	}
	return pl
}

// sweepSample is one (flow count, cache config) measurement over the
// steady-state window.
type sweepSample struct {
	nsPkt                    float64
	emc, smc, megaflow, miss uint64
	packets                  uint64
}

// sweepCounters sums the live perf counters across a bed's PMD threads.
func sweepCounters(b *Bed) (busy sim.Time, s sweepSample) {
	for _, th := range b.DP.PerfStats() {
		busy += th.BusyCycles()
		s.packets += th.Packets
		s.emc += th.EMCHits
		s.smc += th.SMCHits
		s.megaflow += th.MegaflowHits
		s.miss += th.Upcalls
	}
	return busy, s
}

// sweepTrial runs one configuration at a fixed offered rate, warming long
// enough for every flow to be offered at least twice, then measures busy
// cycles per packet over a window that revisits each flow ~4 more times.
// Costs come from the perf layer's stage counters (idle poll spin
// excluded), so the metric is rate-independent.
func sweepTrial(flows int, opts core.Options) sweepSample {
	cfg := DefaultBed(KindAFXDP, flows)
	cfg.Opts = opts
	cfg.Pipeline = sweepPipeline()
	bed := NewP2PBed(cfg)

	const rate = 2e6 // pps; interval 500ns
	interval := sim.Time(float64(sim.Second) / rate)
	// The warmup needs a constant floor on top of the per-flow revisits:
	// installing the ~250 megaflows costs ~250 serialized 60us upcalls
	// (~15ms) no matter how many exact flows there are, and the window
	// must not start inside that storm.
	warmup := interval*sim.Time(2*flows) + 20*sim.Millisecond
	window := interval * sim.Time(4*flows+40000)

	bed.Gen.Run(rate, warmup+window)
	bed.Eng.RunUntil(warmup)
	busy0, s0 := sweepCounters(bed)
	bed.Eng.RunUntil(warmup + window + 200*sim.Microsecond)
	busy1, s1 := sweepCounters(bed)

	out := sweepSample{
		packets:  s1.packets - s0.packets,
		emc:      s1.emc - s0.emc,
		smc:      s1.smc - s0.smc,
		megaflow: s1.megaflow - s0.megaflow,
		miss:     s1.miss - s0.miss,
	}
	if out.packets > 0 {
		out.nsPkt = float64(busy1-busy0) / float64(out.packets)
	}
	return out
}

// sweepConfigs are the three cache hierarchies under comparison.
var sweepConfigs = []struct {
	name     string
	emc, smc bool
}{
	{"emc", true, false},
	{"emc+smc", true, true},
	{"smc", false, true},
}

func runCacheSweep(p Profile) *Report {
	r := &Report{ID: "cachesweep",
		Title: "cache hierarchy sweep (2 Mpps, 64B, 250 /24 megaflows, 6 subtables)"}

	sizes := []struct {
		name  string
		flows int
	}{{"1k", 1000}, {"10k", 10000}, {"100k", 100000}, {"1M", 1000000}}
	if p.Window < Full.Window {
		sizes = sizes[:3] // quick profile drops the 1M point
	}

	// materially: a config only takes the crown by beating the incumbent
	// by >5%. Ties go to the config that keeps the earlier caches enabled
	// — the EMC's low-flow-count advantage is free insurance when
	// steady-state costs are this close, which is why OVS's own tuning
	// guidance layers the SMC on top of the EMC instead of replacing it.
	const materially = 0.95
	crossover := ""
	for _, sz := range sizes {
		results := make([]sweepSample, len(sweepConfigs))
		for i, cc := range sweepConfigs {
			opts := core.DefaultOptions()
			opts.EMC = cc.emc
			opts.SMC = cc.smc
			results[i] = sweepTrial(sz.flows, opts)
			r.Add(fmt.Sprintf("%-4s flows, %-7s: cycles per packet", sz.name, cc.name),
				results[i].nsPkt, 0, "ns/pkt")
		}
		best := 0
		for i := 1; i < len(results); i++ {
			if results[i].nsPkt < results[best].nsPkt*materially {
				best = i
			}
		}
		hits := func(s sweepSample) string {
			pk := float64(s.packets)
			return fmt.Sprintf("emc %.1f%% smc %.1f%% megaflow %.1f%% upcall %.2f%%",
				100*float64(s.emc)/pk, 100*float64(s.smc)/pk,
				100*float64(s.megaflow)/pk, 100*float64(s.miss)/pk)
		}
		r.AddNote("%s flows: winner %s; %s hit split: %s", sz.name,
			sweepConfigs[best].name, sweepConfigs[best].name, hits(results[best]))
		if crossover == "" && results[1].nsPkt < results[0].nsPkt*materially {
			crossover = sz.name
		}
	}
	if crossover != "" {
		r.AddNote("EMC->EMC+SMC crossover: SMC starts paying for itself at %s flows", crossover)
	} else {
		r.AddNote("EMC->EMC+SMC crossover: not reached in this sweep (EMC-only wins throughout)")
	}
	return r
}
