package experiments

// The soak scenario is the ovs-svc control plane's proving ground: a
// long-lived, multi-PMD AF_XDP bed with skewed RSS and two traffic classes
// (offloadable UDP elephants + conntracked TCP), reconfigured mid-run
// entirely over real HTTP. A wall-clock driver goroutine parks the engine
// at exact virtual instants (core.Controller holds) and issues the same
// requests an operator would:
//
//	t1  PUT  /v1/config   {"smc-enable":"true","emc-enable":"false"}
//	t2  POST /v1/faults   offload-table-pressure window (NIC rule memory
//	                      clamped to a quarter for a quarter window)
//	t3  PUT  /v1/config   {"pmd-auto-lb":"true", ...}  (cycles policy,
//	                      fast rebalance interval)
//	t4  GET  /v1/datapaths/{name}/stats  (mid-run eviction check)
//
// after which traffic drains and the final stats are read back over HTTP
// too. The scenario passes only if all three conservation ledgers are
// exact at shutdown — rx = delivered + drops, ct created = live + expired
// + early-drops + evicted, offload installs = evictions + uninstalls +
// live — and each mutation demonstrably acted: SMC hits appeared after the
// flip, the balancer rebalanced after the enable, the clamp evicted
// hardware rules.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"

	"ovsxdp/internal/api"
	"ovsxdp/internal/conntrack"
	"ovsxdp/internal/core"
	"ovsxdp/internal/dpif"
	"ovsxdp/internal/faultinject"
	"ovsxdp/internal/flow"
	"ovsxdp/internal/ofproto"
	"ovsxdp/internal/packet"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/sim"
	"ovsxdp/internal/svc"
)

const (
	// The UDP class: per-megaflow elephants (each well above the offload
	// threshold) that the offload engine pushes into the NIC table.
	soakUDPFlows = 512
	soakUDPRate  = 4e6
	// The TCP class: round-robin connections committed into conntrack and
	// recirculated on every packet. Conntracked megaflows carry a ct()
	// action, so they are never offload candidates — the two classes
	// exercise the two ledgers independently.
	soakConns   = 256
	soakTCPRate = 2e5
	soakZone    = 9
	// soakCtTimeout is every conntrack timeout: comfortably above the
	// ~1.3 ms round-robin revisit gap, small enough that the post-traffic
	// drain completes in a few wheel periods.
	soakCtTimeout = 6 * sim.Millisecond
	// The NIC rule table fits every elephant until the fault window clamps
	// it to a quarter.
	soakHWTable = 1024
)

// SoakSummary is everything the soak run observed, for the report and the
// acceptance test.
type SoakSummary struct {
	UDPSent, TCPSent   uint64
	Delivered, Drops   uint64
	Lost, QueueDrops   uint64
	MalformedDrops     uint64
	RxLedgerOK         bool
	CtCreated          uint64
	CtExpired          uint64
	CtEarlyDrops       uint64
	CtEvictions        uint64
	CtLive             int
	CtLedgerOK         bool
	OffInstalls        uint64
	OffEvictions       uint64
	OffUninstalls      uint64
	OffLive            int
	OffLedgerOK        bool
	SMCHits            uint64 // final; the SMC only exists after the flip
	Rebalances         uint64 // after the auto-LB enable
	MidEvictions       uint64 // evictions seen by the mid-run HTTP check
	HTTPCalls          []string
	HTTPErrors         []string
	FinalStatsOverHTTP api.StatsView
}

// OK reports whether the run met every acceptance condition.
func (s *SoakSummary) OK() bool {
	return s.RxLedgerOK && s.CtLedgerOK && s.OffLedgerOK &&
		s.SMCHits > 0 && s.Rebalances > 0 && s.OffEvictions > 0 &&
		len(s.HTTPErrors) == 0
}

// soakTCPGen drives round-robin TCP connections into the bed's NIC by
// byte-patching the source IP into one template frame, exactly like the
// connscale generator but feeding the receive path instead of Execute.
type soakTCPGen struct {
	eng      *sim.Engine
	sink     func(*packet.Packet)
	template []byte
	pool     *packet.Pool
	conns    int
	cursor   int
	until    sim.Time
	sent     uint64
}

func newSoakTCPGen(eng *sim.Engine, sink func(*packet.Packet), conns int) *soakTCPGen {
	frame := hdr.NewBuilder().
		Eth(hdr.MAC{0x02, 0xaa, 0, 0, 0, 3}, hdr.MAC{0x02, 0xbb, 0, 0, 0, 3}).
		IPv4H(connSrcIP(192, 0), hdr.MakeIP4(10, 255, 0, 2), 64).
		TCPH(1000, 80, 1, 0, hdr.TCPAck).PadTo(64).Build()
	return &soakTCPGen{eng: eng, sink: sink, template: frame,
		pool: packet.NewPool(64, len(frame), true), conns: conns}
}

func (g *soakTCPGen) run(ratePPS float64, until sim.Time) {
	g.until = until
	interval := sim.Time(float64(sim.Second) / ratePPS)
	if interval <= 0 {
		interval = 1
	}
	next := g.eng.Now()
	var tick func()
	tick = func() {
		if g.eng.Now() >= g.until {
			return
		}
		ip := connSrcIP(192, g.cursor)
		g.cursor++
		if g.cursor >= g.conns {
			g.cursor = 0
		}
		g.template[srcIPOffset] = byte(ip >> 24)
		g.template[srcIPOffset+1] = byte(ip >> 16)
		g.template[srcIPOffset+2] = byte(ip >> 8)
		g.template[srcIPOffset+3] = byte(ip)
		g.sent++
		g.sink(g.pool.GetCopy(g.template))
		next += interval
		g.eng.ScheduleAt(next, tick)
	}
	g.eng.ScheduleAt(next, tick)
}

// soakClient issues real HTTP requests against the httptest server and
// records every call and failure for the report.
type soakClient struct {
	base   string
	client *http.Client
	calls  []string
	errs   []string
}

func (c *soakClient) do(method, path string, body any) []byte {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			c.errs = append(c.errs, fmt.Sprintf("%s %s: marshal: %v", method, path, err))
			return nil
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		c.errs = append(c.errs, fmt.Sprintf("%s %s: %v", method, path, err))
		return nil
	}
	resp, err := c.client.Do(req)
	if err != nil {
		c.errs = append(c.errs, fmt.Sprintf("%s %s: %v", method, path, err))
		return nil
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	c.calls = append(c.calls, fmt.Sprintf("%s %s -> %d", method, path, resp.StatusCode))
	if resp.StatusCode >= 300 {
		c.errs = append(c.errs, fmt.Sprintf("%s %s -> %d: %s", method, path, resp.StatusCode, data))
		return nil
	}
	return data
}

// RunSoak executes the soak: build the bed, attach the control plane, run
// the HTTP-driven timeline, drain, and read the final ledgers back over
// the API.
func RunSoak(p Profile) *SoakSummary {
	warmup, window := p.Warmup, p.Window
	total := warmup + window

	// The bed: 4 skewed receive queues over 2 PMDs under the cycles
	// policy, so enabling the auto-load-balancer mid-run has an imbalance
	// to fix. SMC and auto-LB start OFF — flipping them is the API's job.
	cfg := DefaultBed(KindAFXDP, soakUDPFlows)
	cfg.Queues = 4
	cfg.PMDs = 2
	cfg.RSSWeights = []int{8, 2, 1, 1}
	cfg.Other = map[string]string{
		"pmd-rxq-assign":          "cycles",
		"hw-offload":              "true",
		"hw-offload-table-size":   fmt.Sprintf("%d", soakHWTable),
		"hw-offload-elephant-pps": "1000",
		"hw-offload-readback-us":  "250",
	}
	bed := NewP2PBed(cfg)
	nd := bed.DP.(*dpif.Netdev)

	// Dual-class slow path: TCP recirculates through ct(commit) in
	// soakZone and comes back out port 2; UDP flows straight to port 2.
	// Both classes share one narrow proto-wide mask — two megaflows total
	// (IPProto 6 vs 17) — so the table warms after two upcalls and the PMDs
	// never drown in slow-path work at 4e6 pps. The offload engine tracks
	// and installs *exact* flows regardless of megaflow width, so the UDP
	// elephants still become 512 individual NIC rules for the clamp to
	// evict.
	maskProto := flow.NewMaskBuilder().InPort().RecircID().IPProto().Build()
	maskCt1 := flow.NewMaskBuilder().RecircID().Build()
	bed.DP.SetUpcall(func(key flow.Key) (ofproto.Megaflow, error) {
		f := key.Unpack()
		switch {
		case f.RecircID == 1:
			return ofproto.Megaflow{Mask: maskCt1,
				Actions: []ofproto.DPAction{{Type: ofproto.DPOutput, Port: 2}}}, nil
		case f.IPProto == 6: // TCP
			return ofproto.Megaflow{Mask: maskProto, Actions: []ofproto.DPAction{
				{Type: ofproto.DPCT, Zone: soakZone, Commit: true, RecircID: 1}}}, nil
		default:
			return ofproto.Megaflow{Mask: maskProto,
				Actions: []ofproto.DPAction{{Type: ofproto.DPOutput, Port: 2}}}, nil
		}
	})
	ct := nd.Datapath().Ct
	ct.EnableWheelExpiry(true)
	ct.Timeouts = conntrack.Timeouts{SynSent: soakCtTimeout, Established: soakCtTimeout,
		UDP: soakCtTimeout, Fin: soakCtTimeout}

	// The control plane, exactly as cmd/ovs-svc wires it.
	ctl := core.NewController(bed.Eng)
	inj := faultinject.New(bed.Eng)
	server := svc.NewServer(ctl, svc.Target{Name: "soak0", DP: bed.DP})
	server.SetInjector(inj)
	server.RegisterActuator(faultinject.KindOffloadTablePressure, "nic0", func(active bool) {
		if active {
			nd.Datapath().OffloadClamp(soakHWTable / 4)
		} else {
			nd.Datapath().OffloadClamp(0)
		}
	})
	ts := httptest.NewServer(server.Handler())
	defer ts.Close()

	// The timeline. Holds park the engine at exact virtual instants; the
	// driver goroutine fires its wall-clock HTTP request into the parked
	// engine, then releases.
	smcAt := warmup + window/8
	faultAt := warmup + window/4
	faultDur := window / 4
	albAt := warmup + window/2
	checkAt := warmup + 3*window/4
	hSMC := ctl.HoldAt(smcAt)
	hFault := ctl.HoldAt(faultAt)
	hALB := ctl.HoldAt(albAt)
	hCheck := ctl.HoldAt(checkAt)

	sc := &soakClient{base: ts.URL, client: ts.Client()}
	var midEvictions uint64
	go func() {
		<-hSMC.Reached
		sc.do("PUT", "/v1/config", svc.ConfigRequest{Values: map[string]string{
			"smc-enable": "true", "emc-enable": "false"}})
		hSMC.Release()

		<-hFault.Reached
		sc.do("POST", "/v1/faults", svc.FaultRequest{
			Kind: "offload-table-pressure", Target: "nic0",
			AtUs:       int64(faultAt / sim.Microsecond),
			DurationUs: int64(faultDur / sim.Microsecond)})
		hFault.Release()

		<-hALB.Reached
		sc.do("PUT", "/v1/config", svc.ConfigRequest{Values: map[string]string{
			"pmd-auto-lb":                       "true",
			"pmd-auto-lb-rebal-interval-us":     "500",
			"pmd-auto-lb-improvement-threshold": "5"}})
		hALB.Release()

		<-hCheck.Reached
		if data := sc.do("GET", "/v1/datapaths/soak0/stats", nil); data != nil {
			var body struct {
				Stats api.StatsView `json:"stats"`
			}
			if err := json.Unmarshal(data, &body); err == nil && body.Stats.Offload != nil {
				midEvictions = body.Stats.Offload.Evictions
			}
		}
		hCheck.Release()
	}()

	tcp := newSoakTCPGen(bed.Eng, func(p *packet.Packet) { bed.NICA.Receive(p) }, soakConns)
	bed.Gen.Run(soakUDPRate, total)
	tcp.run(soakTCPRate, total)
	ctl.Run(total)

	// Drain: in-flight packets first, then the conntrack wheel.
	deadline := total + 2*sim.Millisecond
	ctl.Run(deadline)
	for i := 0; i < 10 && ct.Len() > 0; i++ {
		deadline += soakCtTimeout
		ctl.Run(deadline)
	}

	// Final ledger read — over HTTP like everything else, with the engine
	// idle-serving.
	var final api.StatsView
	idle := make(chan struct{})
	go func() {
		defer close(idle)
		if data := sc.do("GET", "/v1/datapaths/soak0/stats", nil); data != nil {
			var body struct {
				Stats api.StatsView `json:"stats"`
			}
			if err := json.Unmarshal(data, &body); err != nil {
				sc.errs = append(sc.errs, fmt.Sprintf("decode final stats: %v", err))
			} else {
				final = body.Stats
			}
		}
	}()
	ctl.ServeIdle(idle)

	rebalances, _, _ := nd.Datapath().RebalanceStats()
	s := &SoakSummary{
		UDPSent:            bed.Gen.Sent,
		TCPSent:            tcp.sent,
		Delivered:          bed.Delivered,
		Drops:              bed.Drops(),
		Lost:               final.Lost,
		QueueDrops:         final.UpcallQueueDrops,
		MalformedDrops:     final.MalformedDrops,
		SMCHits:            final.SMCHits,
		Rebalances:         rebalances,
		MidEvictions:       midEvictions,
		HTTPCalls:          sc.calls,
		HTTPErrors:         sc.errs,
		FinalStatsOverHTTP: final,
	}
	s.RxLedgerOK = s.UDPSent+s.TCPSent ==
		s.Delivered+s.Drops+s.Lost+s.QueueDrops+s.MalformedDrops
	if c := final.Conntrack; c != nil {
		s.CtCreated, s.CtExpired = c.Created, c.Expired
		s.CtEarlyDrops, s.CtEvictions = c.EarlyDrops, c.Evictions
		s.CtLive = c.Conns
		s.CtLedgerOK = c.Created ==
			c.Expired+c.EarlyDrops+c.Evictions+uint64(c.Conns)
	}
	if o := final.Offload; o != nil {
		s.OffInstalls, s.OffEvictions, s.OffUninstalls = o.Installs, o.Evictions, o.Uninstalls
		s.OffLive = o.Live
		s.OffLedgerOK = o.Installs == o.Evictions+o.Uninstalls+uint64(o.Live)
	}
	return s
}

func init() {
	registerScenario(Scenario{
		ID:    "soak",
		Title: "HTTP-driven soak: SMC flip + fault window + auto-LB rebalance over the live API",
		Run: func(p Profile) *Report {
			s := RunSoak(p)
			rep := &Report{ID: "soak",
				Title: "live-reconfiguration soak over the ovs-svc control plane"}
			rep.Add("packets offered (udp+tcp)", float64(s.UDPSent+s.TCPSent), 0, "pkts")
			rep.Add("delivered", float64(s.Delivered), 0, "pkts")
			rep.Add("smc hits after flip", float64(s.SMCHits), 0, "hits")
			rep.Add("auto-lb rebalances after enable", float64(s.Rebalances), 0, "")
			rep.Add("hw evictions under fault clamp", float64(s.OffEvictions), 0, "")
			ledger := func(ok bool) string {
				if ok {
					return "exact"
				}
				return "BROKEN"
			}
			rep.AddNote("rx ledger %s: sent %d = delivered %d + drops %d + lost %d + queue-drops %d + malformed %d",
				ledger(s.RxLedgerOK), s.UDPSent+s.TCPSent,
				s.Delivered, s.Drops, s.Lost, s.QueueDrops, s.MalformedDrops)
			rep.AddNote("ct ledger %s: created %d = expired %d + early-drops %d + evicted %d + live %d",
				ledger(s.CtLedgerOK), s.CtCreated, s.CtExpired, s.CtEarlyDrops, s.CtEvictions, s.CtLive)
			rep.AddNote("offload ledger %s: installs %d = evictions %d + uninstalls %d + live %d (mid-run check saw %d evictions)",
				ledger(s.OffLedgerOK), s.OffInstalls, s.OffEvictions, s.OffUninstalls, s.OffLive, s.MidEvictions)
			for _, call := range s.HTTPCalls {
				rep.AddNote("http: %s", call)
			}
			for _, e := range s.HTTPErrors {
				rep.AddNote("http ERROR: %s", e)
			}
			if s.OK() {
				rep.AddNote("soak PASSED: every mutation acted and every ledger is exact")
			} else {
				rep.AddNote("soak FAILED")
			}
			return rep
		},
	})
}
