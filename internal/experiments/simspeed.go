package experiments

// The simspeed scenario measures the simulator itself: simulated packets
// (and engine events) per wall-clock second across the standard testbed
// shapes. It is the repo's raw-speed tracker — ROADMAP item 5 names
// simulator throughput as the binding constraint on million-flow churn,
// conntrack at connection scale, and NIC offload sweeps, so the trajectory
// is recorded PR over PR in BENCH_simspeed.json.
//
// Unlike every other experiment and scenario, simspeed's headline numbers
// are wall-clock measurements and therefore vary run to run and machine to
// machine. The virtual-domain columns (packets, events) stay deterministic.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"ovsxdp/internal/api"
	"ovsxdp/internal/sim"
)

// SimspeedJSONPath, when non-empty, is where the simspeed scenario writes
// its machine-readable result. cmd/ovsbench defaults it to
// BENCH_simspeed.json; tests leave it empty to skip the write.
var SimspeedJSONPath string

// SimspeedOnly, when non-empty, restricts the simspeed run to the named
// points (CI runs just "steady" to keep the smoke job cheap).
var SimspeedOnly map[string]bool

// simspeedPreRefactor records simulated-packets-per-wall-second measured on
// this machine immediately before the PR-6 zero-alloc refactor (heap-of-
// closures event queue, per-packet heap allocation end-to-end), full
// profile. It is the fixed reference the speedup column is computed
// against; absolute numbers move with hardware but the ratio tracks the
// refactor's effect.
var simspeedPreRefactor = map[string]float64{
	"steady":    333938,
	"multiflow": 342257,
	"multipmd":  328437,
	"kernel":    681664,
}

// SimspeedPoint is one measured configuration.
type SimspeedPoint struct {
	Name string `json:"name"`
	// VirtualMs is the simulated window in milliseconds.
	VirtualMs float64 `json:"virtual_ms"`
	// Packets is the number of packets generated during the window
	// (deterministic for a given profile).
	Packets uint64 `json:"packets"`
	// Events is the number of engine events executed during the window
	// (deterministic for a given profile).
	Events uint64 `json:"events"`
	// WallS is the wall-clock time the window took to simulate.
	WallS float64 `json:"wall_s"`
	// PktsPerWallS is the headline metric: simulated packets per
	// wall-clock second.
	PktsPerWallS float64 `json:"pkts_per_wall_s"`
	// EventsPerWallS is engine events per wall-clock second.
	EventsPerWallS float64 `json:"events_per_wall_s"`
	// AllocsPerPkt is heap allocations per simulated packet during the
	// measured window (steady state; warmup excluded).
	AllocsPerPkt float64 `json:"allocs_per_pkt"`
	// SpeedupVsPreRefactor is PktsPerWallS over the frozen pre-refactor
	// baseline for this point, or 0 when no baseline exists.
	SpeedupVsPreRefactor float64 `json:"speedup_vs_pre_refactor,omitempty"`
}

// SimspeedResult is the BENCH_simspeed.json schema.
type SimspeedResult struct {
	api.Envelope
	Points []SimspeedPoint `json:"points"`
	// PreRefactorPktsPerWallS is the frozen pre-PR-6 reference
	// (see simspeedPreRefactor).
	PreRefactorPktsPerWallS map[string]float64 `json:"pre_refactor_pkts_per_wall_s"`
}

// simspeedConfigs are the standard shapes, cheapest first.
var simspeedConfigs = []struct {
	name    string
	ratePPS float64
	build   func() *Bed
}{
	{"steady", 2e6, func() *Bed {
		return NewP2PBed(DefaultBed(KindAFXDP, 1))
	}},
	{"multiflow", 2e6, func() *Bed {
		return NewP2PBed(DefaultBed(KindAFXDP, 10000))
	}},
	{"multipmd", 6e6, func() *Bed {
		cfg := DefaultBed(KindAFXDP, 256)
		cfg.Queues = 4
		return NewP2PBed(cfg)
	}},
	{"kernel", 1e6, func() *Bed {
		return NewP2PBed(DefaultBed(KindKernel, 1))
	}},
}

func runSimspeedPoint(name string, ratePPS float64, build func() *Bed, p Profile) SimspeedPoint {
	bed := build()
	warmup, window := p.Warmup, p.Window
	bed.Gen.Run(ratePPS, warmup+window)
	bed.Eng.RunUntil(warmup)

	runtime.GC()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	sentBefore := bed.Gen.Sent
	eventsBefore := bed.Eng.Executed()
	t0 := time.Now()
	bed.Eng.RunUntil(warmup + window)
	wall := time.Since(t0).Seconds()
	runtime.ReadMemStats(&ms1)

	pkts := bed.Gen.Sent - sentBefore
	events := bed.Eng.Executed() - eventsBefore
	pt := SimspeedPoint{
		Name:      name,
		VirtualMs: float64(window) / float64(sim.Millisecond),
		Packets:   pkts,
		Events:    events,
		WallS:     wall,
	}
	if wall > 0 {
		pt.PktsPerWallS = float64(pkts) / wall
		pt.EventsPerWallS = float64(events) / wall
	}
	if pkts > 0 {
		pt.AllocsPerPkt = float64(ms1.Mallocs-ms0.Mallocs) / float64(pkts)
	}
	if base := simspeedPreRefactor[name]; base > 0 {
		pt.SpeedupVsPreRefactor = pt.PktsPerWallS / base
	}
	return pt
}

// RunSimspeed executes the simspeed points for a profile and returns the
// structured result (the scenario wrapper renders and persists it).
func RunSimspeed(p Profile) SimspeedResult {
	profileName := "full"
	if p.Window == Quick.Window && p.Warmup == Quick.Warmup {
		profileName = "quick"
	}
	res := SimspeedResult{
		Envelope:                api.NewEnvelope("simspeed", 1, profileName),
		PreRefactorPktsPerWallS: simspeedPreRefactor,
	}
	for _, c := range simspeedConfigs {
		if len(SimspeedOnly) > 0 && !SimspeedOnly[c.name] {
			continue
		}
		res.Points = append(res.Points, runSimspeedPoint(c.name, c.ratePPS, c.build, p))
	}
	return res
}

func init() {
	registerScenario(Scenario{
		ID:    "simspeed",
		Title: "simulator throughput: simulated packets per wall-second",
		Run: func(p Profile) *Report {
			res := RunSimspeed(p)
			rep := &Report{ID: "simspeed", Title: "simulator throughput (wall-clock; varies by machine)"}
			for _, pt := range res.Points {
				rep.Add(pt.Name+" simulated pkts/wall-s", pt.PktsPerWallS/1e6, 0, "Mpps-wall")
				rep.Add(pt.Name+" engine events/wall-s", pt.EventsPerWallS/1e6, 0, "Mev/s")
				rep.Add(pt.Name+" heap allocs/pkt", pt.AllocsPerPkt, 0, "allocs")
				if pt.SpeedupVsPreRefactor > 0 {
					rep.Add(pt.Name+" speedup vs pre-refactor", pt.SpeedupVsPreRefactor, 0, "x")
				}
			}
			if SimspeedJSONPath != "" {
				if err := WriteSimspeedJSON(SimspeedJSONPath, res); err != nil {
					rep.AddNote("failed to write %s: %v", SimspeedJSONPath, err)
				} else {
					rep.AddNote("wrote %s", SimspeedJSONPath)
				}
			}
			return rep
		},
	})
}

// WriteSimspeedJSON persists a simspeed result.
func WriteSimspeedJSON(path string, res SimspeedResult) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadSimspeedJSON reads a previously written result (the CI regression
// gate compares a fresh run against the committed file).
func LoadSimspeedJSON(path string) (SimspeedResult, error) {
	var res SimspeedResult
	data, err := os.ReadFile(path)
	if err != nil {
		return res, err
	}
	if err := json.Unmarshal(data, &res); err != nil {
		return res, fmt.Errorf("%s: %w", path, err)
	}
	return res, nil
}

// CompareSimspeed checks cur against base point by point, returning an
// error naming every point whose packets-per-wall-second fell below
// (1-tolerance) of the baseline. Points missing from either side are
// skipped, so a baseline from the full point set gates a CI run of just
// the cheap ones.
func CompareSimspeed(cur, base SimspeedResult, tolerance float64) error {
	baseBy := map[string]SimspeedPoint{}
	for _, pt := range base.Points {
		baseBy[pt.Name] = pt
	}
	var bad []string
	for _, pt := range cur.Points {
		b, ok := baseBy[pt.Name]
		if !ok || b.PktsPerWallS <= 0 {
			continue
		}
		if pt.PktsPerWallS < (1-tolerance)*b.PktsPerWallS {
			bad = append(bad, fmt.Sprintf("%s: %.2f Mpps-wall < %.0f%% of baseline %.2f",
				pt.Name, pt.PktsPerWallS/1e6, (1-tolerance)*100, b.PktsPerWallS/1e6))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("simspeed regression: %v", bad)
	}
	return nil
}
