package experiments

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"ovsxdp/internal/api"
	"ovsxdp/internal/core"
	"ovsxdp/internal/faultinject"
	"ovsxdp/internal/sim"
	"ovsxdp/internal/svc"
)

// snapshotBed renders everything observable about a finished bed to JSON —
// final stats view, perf view, delivery counters — for byte comparison.
func snapshotBed(t *testing.T, bed *Bed) []byte {
	t.Helper()
	snap := struct {
		Sent, Delivered, Drops uint64
		Now                    int64
		Stats                  api.StatsView
		Perf                   api.PerfView
	}{
		Sent: bed.Gen.Sent, Delivered: bed.Delivered, Drops: bed.Drops(),
		Now:   int64(bed.Eng.Now()),
		Stats: api.NewStatsView(bed.DP.Type(), bed.DP.Stats().Clone(), bed.DP.PerfStats(), bed.DP.PortCount()),
		Perf:  api.NewPerfView(bed.DP.PerfStats()),
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestDeterminismWithIdleDaemon is the PR's core determinism claim: a
// same-seed run with the full control plane attached — controller slicing
// the engine, HTTP server listening — but receiving no requests is
// byte-identical to a plain run. The API's mere presence must be free.
func TestDeterminismWithIdleDaemon(t *testing.T) {
	const (
		rate   = 2e6
		window = 5 * sim.Millisecond
		drain  = window + 1*sim.Millisecond
	)
	build := func() *Bed { return NewP2PBed(DefaultBed(KindAFXDP, 64)) }

	// Plain run: the engine driven directly.
	plain := build()
	plain.Gen.Run(rate, window)
	plain.Eng.RunUntil(drain)

	// Daemon-attached run: same seed, same workload, but the controller
	// slices the run and a live HTTP server sits on top — idle.
	attached := build()
	ctl := core.NewController(attached.Eng)
	server := svc.NewServer(ctl, svc.Target{Name: "d0", DP: attached.DP})
	server.SetInjector(faultinject.New(attached.Eng))
	ts := httptest.NewServer(server.Handler())
	defer ts.Close()
	attached.Gen.Run(rate, window)
	ctl.Run(drain)

	a, b := snapshotBed(t, plain), snapshotBed(t, attached)
	if string(a) != string(b) {
		t.Fatalf("idle daemon perturbed the run:\n plain:    %s\n attached: %s", a, b)
	}
}

// TestSoakAcceptance runs the full HTTP-driven soak at the quick profile
// and requires every acceptance condition: all three conservation ledgers
// exact, the SMC flip took, the auto-LB rebalanced, the fault window
// evicted hardware rules, and no HTTP call failed.
func TestSoakAcceptance(t *testing.T) {
	s := RunSoak(Quick)
	if !s.OK() {
		t.Fatalf("soak failed acceptance:\n"+
			" rx ledger ok=%v (sent %d = delivered %d + drops %d + lost %d + qdrops %d + malformed %d)\n"+
			" ct ledger ok=%v (created %d = expired %d + early %d + evicted %d + live %d)\n"+
			" offload ledger ok=%v (installs %d = evictions %d + uninstalls %d + live %d)\n"+
			" smc hits=%d rebalances=%d evictions=%d\n http errors: %v",
			s.RxLedgerOK, s.UDPSent+s.TCPSent, s.Delivered, s.Drops, s.Lost, s.QueueDrops, s.MalformedDrops,
			s.CtLedgerOK, s.CtCreated, s.CtExpired, s.CtEarlyDrops, s.CtEvictions, s.CtLive,
			s.OffLedgerOK, s.OffInstalls, s.OffEvictions, s.OffUninstalls, s.OffLive,
			s.SMCHits, s.Rebalances, s.OffEvictions, s.HTTPErrors)
	}
	if len(s.HTTPCalls) < 5 {
		t.Fatalf("expected the full HTTP timeline (2 PUTs, 1 POST, 2 GETs), saw %v", s.HTTPCalls)
	}
	if s.MidEvictions == 0 {
		t.Fatal("mid-run HTTP stats check saw no evictions during the fault window")
	}
}
