package dpif

import (
	"fmt"

	"ovsxdp/internal/flow"
	"ovsxdp/internal/kernelsim"
	"ovsxdp/internal/packet"
	"ovsxdp/internal/perf"
	"ovsxdp/internal/sim"
)

// Netlink adapts the in-kernel datapath (kernelsim.Datapath) to the dpif
// interface — the dpif-netlink analog. It backs two registry types: the
// traditional kernel module ("netlink", FlavorModule) and the sandboxed
// eBPF re-implementation ("ebpf", FlavorEBPF).
type Netlink struct {
	kdp *kernelsim.Datapath
	eng *sim.Engine

	// names keeps port names for the control plane; the kernel datapath
	// itself only knows transmit functions.
	names map[uint32]string

	// execCPU is the lazily created CPU Execute charges softirq work to
	// (the dpctl-execute injection context).
	execCPU *sim.CPU
}

func init() {
	Register("netlink", netlinkFactory(kernelsim.FlavorModule))
	Register("ebpf", netlinkFactory(kernelsim.FlavorEBPF))
}

func netlinkFactory(flavor kernelsim.Flavor) Factory {
	return func(cfg Config) (Dpif, error) {
		kdp := kernelsim.NewDatapath(cfg.Eng, flavor, cfg.Pipeline)
		if cfg.Upcall.QueueCap > 0 {
			kdp.UpcallQueueCap = cfg.Upcall.QueueCap
			kdp.UpcallServiceInterval = cfg.Upcall.ServiceInterval
			kdp.UpcallRetryBase = cfg.Upcall.RetryBase
			kdp.UpcallMaxRetries = cfg.Upcall.MaxRetries
		}
		return NewNetlink(cfg.Eng, kdp), nil
	}
}

// NewNetlink wraps an existing kernel datapath.
func NewNetlink(eng *sim.Engine, kdp *kernelsim.Datapath) *Netlink {
	return &Netlink{kdp: kdp, eng: eng, names: make(map[uint32]string)}
}

// Kernel exposes the wrapped kernel datapath for wiring that the dpif seam
// does not cover (NAPI actor handlers, experiment internals).
func (d *Netlink) Kernel() *kernelsim.Datapath { return d.kdp }

// Process feeds one packet to the datapath in softirq context on cpu — the
// handler NAPI actors drive.
func (d *Netlink) Process(cpu *sim.CPU, p *packet.Packet) { d.kdp.Process(cpu, p) }

// SetActiveCPUs installs the softirq fan-out probe feeding the
// SMT-contention model.
func (d *Netlink) SetActiveCPUs(fn func() int) { d.kdp.ActiveCPUs = fn }

// Type implements Dpif.
func (d *Netlink) Type() string {
	if d.kdp.Flavor == kernelsim.FlavorEBPF {
		return "ebpf"
	}
	return "netlink"
}

// PortAdd implements Dpif: the kernel datapath's ports are transmit
// functions (vport output handlers), so only TxPorts attach.
func (d *Netlink) PortAdd(p Port) error {
	tp, ok := p.(TxPort)
	if !ok {
		return fmt.Errorf("dpif-%s: unsupported port kind %T for %q (need TxPort)", d.Type(), p, p.Name())
	}
	d.kdp.Outputs[tp.PortID] = tp.Deliver
	d.names[tp.PortID] = tp.PortName
	return nil
}

// PortDel implements Dpif.
func (d *Netlink) PortDel(id uint32) error {
	if _, ok := d.kdp.Outputs[id]; !ok {
		return fmt.Errorf("dpif-%s: no port %d", d.Type(), id)
	}
	delete(d.kdp.Outputs, id)
	delete(d.names, id)
	return nil
}

// PortCount implements Dpif.
func (d *Netlink) PortCount() int { return len(d.kdp.Outputs) }

// FlowPut implements Dpif.
func (d *Netlink) FlowPut(key flow.Key, mask flow.Mask, actions any) {
	d.kdp.InstallFlow(key, mask, actions)
}

// FlowDel implements Dpif.
func (d *Netlink) FlowDel(f Flow) bool { return d.kdp.RemoveFlow(f.Entry) }

// FlowDump implements Dpif.
func (d *Netlink) FlowDump() []Flow {
	entries := d.kdp.Flows()
	out := make([]Flow, 0, len(entries))
	for _, e := range entries {
		out = append(out, Flow{Entry: e, owner: d})
	}
	return out
}

// FlowFlush implements Dpif.
func (d *Netlink) FlowFlush() { d.kdp.FlushFlows() }

// Execute implements Dpif: the packet runs in softirq context on a
// dedicated injection CPU.
func (d *Netlink) Execute(p *packet.Packet) {
	if d.execCPU == nil {
		d.execCPU = d.eng.NewCPU("dpif-exec")
	}
	d.kdp.Process(d.execCPU, p)
}

// SetUpcall implements Dpif.
func (d *Netlink) SetUpcall(fn UpcallFunc) { d.kdp.SetUpcall(fn) }

// PerfStats implements Dpif: the kernel datapath processes packets in one
// logical softirq context, so a single block is returned, named after the
// flavor.
func (d *Netlink) PerfStats() []perf.ThreadStats {
	return []perf.ThreadStats{{Name: d.kdp.Flavor.String(), Stats: d.kdp.Perf}}
}

// EnableTrace implements Dpif.
func (d *Netlink) EnableTrace(n int) { d.kdp.EnableTrace(n) }

// Stats implements Dpif.
func (d *Netlink) Stats() Stats {
	return Stats{
		Hits:             d.kdp.Hits,
		Missed:           d.kdp.Misses,
		Lost:             d.kdp.Drops,
		UpcallQueueDrops: d.kdp.UpcallQueueDrops,
		MalformedDrops:   d.kdp.MalformedDrops,
		Processed:        d.kdp.Processed,
		Flows:            d.kdp.FlowCount(),
	}
}
