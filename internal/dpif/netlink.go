package dpif

import (
	"fmt"

	"ovsxdp/internal/dpcls"
	"ovsxdp/internal/flow"
	"ovsxdp/internal/kernelsim"
	"ovsxdp/internal/packet"
	"ovsxdp/internal/perf"
	"ovsxdp/internal/sim"
)

// Netlink adapts the in-kernel datapath (kernelsim.Datapath) to the dpif
// interface — the dpif-netlink analog. It backs two registry types: the
// traditional kernel module ("netlink", FlavorModule) and the sandboxed
// eBPF re-implementation ("ebpf", FlavorEBPF).
type Netlink struct {
	kdp *kernelsim.Datapath
	eng *sim.Engine

	// names keeps port names for the control plane; the kernel datapath
	// itself only knows transmit functions.
	names map[uint32]string

	// execCPU is the lazily created CPU Execute charges softirq work to
	// (the dpctl-execute injection context).
	execCPU *sim.CPU

	// softirqPkts counts packets per feeding softirq context, in
	// first-seen order — the kernel-side equivalent of the netdev
	// rxq-to-PMD map that PmdRxqShow reports. Pure accounting.
	softirqPkts  map[*sim.CPU]uint64
	softirqOrder []*sim.CPU

	// netdevOnly remembers accepted-but-inert netdev-only config keys so
	// GetConfig can echo them back, as OVS's global other_config column
	// does even for keys this datapath ignores.
	netdevOnly map[string]string

	// entryScratch is reused across FlowDumpInto calls, so repeated dumps
	// (revalidator sweeps) allocate nothing once warm.
	entryScratch []*dpcls.Entry
}

func init() {
	Register("netlink", netlinkFactory(kernelsim.FlavorModule))
	Register("ebpf", netlinkFactory(kernelsim.FlavorEBPF))
}

func netlinkFactory(flavor kernelsim.Flavor) Factory {
	return func(cfg Config) (Dpif, error) {
		kdp := kernelsim.NewDatapath(cfg.Eng, flavor, cfg.Pipeline)
		if cfg.Upcall.QueueCap > 0 {
			kdp.UpcallQueueCap = cfg.Upcall.QueueCap
			kdp.UpcallServiceInterval = cfg.Upcall.ServiceInterval
			kdp.UpcallRetryBase = cfg.Upcall.RetryBase
			kdp.UpcallMaxRetries = cfg.Upcall.MaxRetries
		}
		return NewNetlink(cfg.Eng, kdp), nil
	}
}

// NewNetlink wraps an existing kernel datapath.
func NewNetlink(eng *sim.Engine, kdp *kernelsim.Datapath) *Netlink {
	return &Netlink{kdp: kdp, eng: eng, names: make(map[uint32]string),
		softirqPkts: make(map[*sim.CPU]uint64),
		netdevOnly:  make(map[string]string)}
}

// Kernel exposes the wrapped kernel datapath for wiring that the dpif seam
// does not cover (NAPI actor handlers, experiment internals).
func (d *Netlink) Kernel() *kernelsim.Datapath { return d.kdp }

// Process feeds one packet to the datapath in softirq context on cpu — the
// handler NAPI actors drive.
func (d *Netlink) Process(cpu *sim.CPU, p *packet.Packet) {
	if _, seen := d.softirqPkts[cpu]; !seen {
		d.softirqOrder = append(d.softirqOrder, cpu)
	}
	d.softirqPkts[cpu]++
	d.kdp.Process(cpu, p)
}

// SetActiveCPUs installs the softirq fan-out probe feeding the
// SMT-contention model.
func (d *Netlink) SetActiveCPUs(fn func() int) { d.kdp.ActiveCPUs = fn }

// Type implements Dpif.
func (d *Netlink) Type() string {
	if d.kdp.Flavor == kernelsim.FlavorEBPF {
		return "ebpf"
	}
	return "netlink"
}

// PortAdd implements Dpif: the kernel datapath's ports are transmit
// functions (vport output handlers), so only TxPorts attach.
func (d *Netlink) PortAdd(p Port) error {
	tp, ok := p.(TxPort)
	if !ok {
		return fmt.Errorf("dpif-%s: unsupported port kind %T for %q (need TxPort)", d.Type(), p, p.Name())
	}
	d.kdp.Outputs[tp.PortID] = tp.Deliver
	d.names[tp.PortID] = tp.PortName
	return nil
}

// PortDel implements Dpif.
func (d *Netlink) PortDel(id uint32) error {
	if _, ok := d.kdp.Outputs[id]; !ok {
		return fmt.Errorf("dpif-%s: no port %d", d.Type(), id)
	}
	delete(d.kdp.Outputs, id)
	delete(d.names, id)
	return nil
}

// PortCount implements Dpif.
func (d *Netlink) PortCount() int { return len(d.kdp.Outputs) }

// FlowPut implements Dpif.
func (d *Netlink) FlowPut(key flow.Key, mask flow.Mask, actions any) {
	d.kdp.InstallFlow(key, mask, actions)
}

// FlowDel implements Dpif.
func (d *Netlink) FlowDel(f Flow) bool { return d.kdp.RemoveFlow(f.Entry) }

// FlowDump implements Dpif.
func (d *Netlink) FlowDump() []Flow { return d.FlowDumpInto(nil) }

// FlowDumpInto implements Dpif.
func (d *Netlink) FlowDumpInto(buf []Flow) []Flow {
	buf = buf[:0]
	d.entryScratch = d.kdp.FlowsInto(d.entryScratch)
	for _, e := range d.entryScratch {
		buf = append(buf, Flow{Entry: e, owner: d})
	}
	return buf
}

// FlowFlush implements Dpif.
func (d *Netlink) FlowFlush() { d.kdp.FlushFlows() }

// SetFlowHook implements Dpif: the kernel table's install notification,
// with this provider as the owner token (the single classifier shard).
func (d *Netlink) SetFlowHook(fn func(Flow)) {
	if fn == nil {
		d.kdp.SetFlowHook(nil)
		return
	}
	d.kdp.SetFlowHook(func(e *dpcls.Entry) {
		fn(Flow{Entry: e, owner: d})
	})
}

// Execute implements Dpif: the packet runs in softirq context on a
// dedicated injection CPU.
func (d *Netlink) Execute(p *packet.Packet) {
	if d.execCPU == nil {
		d.execCPU = d.eng.NewCPU("dpif-exec")
	}
	d.Process(d.execCPU, p)
}

// SetUpcall implements Dpif.
func (d *Netlink) SetUpcall(fn UpcallFunc) { d.kdp.SetUpcall(fn) }

// SetConfig implements Dpif: the slow-path keys act on the kernel
// datapath; netdev-only keys (pmd-*, emc-*, smc-*, ...) are validated and
// remembered but have no effect here, exactly as the real other_config
// column is global while only dpif-netdev reads those keys.
func (d *Netlink) SetConfig(kv map[string]string) error {
	return applyConfig(kv, func(key string, v any) error {
		switch key {
		case "upcall-queue-cap":
			d.kdp.UpcallQueueCap = v.(int)
		case "upcall-service-us":
			d.kdp.UpcallServiceInterval = v.(sim.Time)
		case "upcall-retry-base-us":
			d.kdp.UpcallRetryBase = v.(sim.Time)
		case "upcall-max-retries":
			d.kdp.UpcallMaxRetries = v.(int)
		case "negative-flow-ttl-us":
			d.kdp.NegativeFlowTTL = v.(sim.Time)
		case "ct-shards":
			if v.(int) < 1 {
				return fmt.Errorf("dpif-%s: ct-shards must be >= 1", d.Type())
			}
			d.kdp.Ct.SetShards(v.(int))
		default:
			d.netdevOnly[key] = kv[key]
		}
		return nil
	})
}

// GetConfig implements Dpif: live values for the keys this provider acts
// on, schema defaults (or the remembered inert sets) for the rest.
func (d *Netlink) GetConfig() map[string]string {
	out := make(map[string]string, len(configSchema))
	for k, spec := range configSchema {
		out[k] = spec.def
	}
	for k, v := range d.netdevOnly {
		out[k] = v
	}
	out["upcall-queue-cap"] = fmt.Sprintf("%d", d.kdp.UpcallQueueCap)
	out["upcall-service-us"] = renderMicros(d.kdp.UpcallServiceInterval)
	out["upcall-retry-base-us"] = renderMicros(d.kdp.UpcallRetryBase)
	out["upcall-max-retries"] = fmt.Sprintf("%d", d.kdp.UpcallMaxRetries)
	out["negative-flow-ttl-us"] = renderMicros(d.kdp.NegativeFlowTTL)
	out["ct-shards"] = fmt.Sprintf("%d", d.kdp.Ct.NumShards())
	return out
}

// PmdRxqShow implements Dpif: the kernel datapath has no PMD threads, so
// the softirq-side equivalent is reported — every softirq context that has
// fed the datapath, with its share of processed packets (the spread the
// NIC's RSS produced across ksoftirqd contexts).
func (d *Netlink) PmdRxqShow() string {
	var total uint64
	for _, n := range d.softirqPkts {
		total += n
	}
	out := fmt.Sprintf("datapath %s: softirq-side rx contexts (no PMD threads)\n", d.Type())
	for _, cpu := range d.softirqOrder {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(d.softirqPkts[cpu]) / float64(total)
		}
		out += fmt.Sprintf("  softirq %-16s packets: %10d   rx share: %3.0f %%\n",
			cpu.Name(), d.softirqPkts[cpu], pct)
	}
	if len(d.softirqOrder) == 0 {
		out += "  (no softirq context has fed this datapath yet)\n"
	}
	return out
}

// PerfStats implements Dpif: the kernel datapath processes packets in one
// logical softirq context, so a single block is returned, named after the
// flavor.
func (d *Netlink) PerfStats() []perf.ThreadStats {
	return []perf.ThreadStats{{Name: d.kdp.Flavor.String(), Stats: d.kdp.Perf}}
}

// EnableTrace implements Dpif.
func (d *Netlink) EnableTrace(n int) { d.kdp.EnableTrace(n) }

// Stats implements Dpif.
func (d *Netlink) Stats() Stats {
	s := Stats{
		Hits:             d.kdp.Hits,
		Missed:           d.kdp.Misses,
		Lost:             d.kdp.Drops,
		UpcallQueueDrops: d.kdp.UpcallQueueDrops,
		MalformedDrops:   d.kdp.MalformedDrops,
		Processed:        d.kdp.Processed,
		Flows:            d.kdp.FlowCount(),
	}
	fillCtStats(&s, d.kdp.Ct)
	return s
}
