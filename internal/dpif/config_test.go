package dpif_test

import (
	"reflect"
	"strings"
	"testing"

	"ovsxdp/internal/dpif"
	"ovsxdp/internal/sim"
)

// allProviders is the full registry; every SetConfig contract below must
// hold identically across them.
var allProviders = []string{"netdev", "netlink", "ebpf"}

func openProvider(t *testing.T, name string, other map[string]string) dpif.Dpif {
	t.Helper()
	d, err := dpif.Open(name, dpif.Config{Eng: sim.NewEngine(1),
		Pipeline: forwardPipeline(), Other: other})
	if err != nil {
		t.Fatalf("Open(%q): %v", name, err)
	}
	return d
}

func TestSetConfigUnknownKeyEveryProvider(t *testing.T) {
	for _, name := range allProviders {
		d := openProvider(t, name, nil)
		before := d.GetConfig()
		err := d.SetConfig(map[string]string{"no-such-key": "1"})
		if err == nil {
			t.Fatalf("%s: unknown key accepted", name)
		}
		if !strings.Contains(err.Error(), "no-such-key") {
			t.Fatalf("%s: error should name the key: %v", name, err)
		}
		if after := d.GetConfig(); !reflect.DeepEqual(before, after) {
			t.Fatalf("%s: failed SetConfig changed state:\nbefore %v\nafter  %v",
				name, before, after)
		}
	}
}

func TestSetConfigTypedParseErrors(t *testing.T) {
	cases := []map[string]string{
		{"pmd-auto-lb": "maybe"},
		{"emc-insert-inv-prob": "-3"},
		{"pmd-rxq-assign": "random"},
		{"upcall-queue-cap": "many"},
		{"pmd-auto-lb-rebal-interval-us": "-1"},
	}
	for _, name := range allProviders {
		d := openProvider(t, name, nil)
		for _, kv := range cases {
			if err := d.SetConfig(kv); err == nil {
				t.Fatalf("%s: accepted %v", name, kv)
			}
		}
	}
}

// TestSetConfigAllOrNothing: one bad key in a batch must leave every good
// key unapplied.
func TestSetConfigAllOrNothing(t *testing.T) {
	for _, name := range allProviders {
		d := openProvider(t, name, nil)
		err := d.SetConfig(map[string]string{
			"upcall-queue-cap": "64",
			"bogus":            "1",
		})
		if err == nil {
			t.Fatalf("%s: batch with bad key accepted", name)
		}
		if got := d.GetConfig()["upcall-queue-cap"]; got != "0" {
			t.Fatalf("%s: good key applied despite failed batch: %q", name, got)
		}
	}
}

// TestSetConfigRoundTrip drives every key to a non-default value on the
// netdev provider and reads it back through GetConfig.
func TestSetConfigRoundTrip(t *testing.T) {
	want := map[string]string{
		"pmd-rxq-assign":                    "cycles",
		"pmd-auto-lb":                       "true",
		"pmd-auto-lb-rebal-interval-us":     "2500",
		"pmd-auto-lb-improvement-threshold": "10",
		"tx-lock-mutex":                     "true",
		"emc-enable":                        "false",
		"emc-insert-inv-prob":               "100",
		"smc-enable":                        "true",
		"smc-entries":                       "4096",
		"batch-dedup":                       "true",
		"upcall-queue-cap":                  "128",
		"upcall-service-us":                 "20",
		"upcall-retry-base-us":              "25",
		"upcall-max-retries":                "3",
		"negative-flow-ttl-us":              "5000",
	}
	d := openProvider(t, "netdev", nil)
	if err := d.SetConfig(want); err != nil {
		t.Fatalf("SetConfig: %v", err)
	}
	got := d.GetConfig()
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %q after set, want %q", k, got[k], v)
		}
	}
}

// TestNetdevOnlyKeysInertOnKernel: the kernel-path providers accept pmd-*
// and cache keys (the other_config column is global) but only act on the
// slow-path keys.
func TestNetdevOnlyKeysInertOnKernel(t *testing.T) {
	for _, name := range []string{"netlink", "ebpf"} {
		d := openProvider(t, name, nil)
		err := d.SetConfig(map[string]string{
			"pmd-rxq-assign":   "cycles",
			"smc-enable":       "true",
			"upcall-queue-cap": "32",
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := d.GetConfig()
		if got["pmd-rxq-assign"] != "cycles" || got["smc-enable"] != "true" {
			t.Fatalf("%s: inert keys not echoed back: %v", name, got)
		}
		if got["upcall-queue-cap"] != "32" {
			t.Fatalf("%s: live key not applied: %v", name, got)
		}
	}
}

// TestOpenAppliesOther: Config.Other reaches SetConfig at open, and a bad
// key fails the Open.
func TestOpenAppliesOther(t *testing.T) {
	d := openProvider(t, "netdev", map[string]string{"pmd-rxq-assign": "cycles"})
	if got := d.GetConfig()["pmd-rxq-assign"]; got != "cycles" {
		t.Fatalf("Other not applied at open: %q", got)
	}
	for _, name := range allProviders {
		_, err := dpif.Open(name, dpif.Config{Eng: sim.NewEngine(1),
			Pipeline: forwardPipeline(), Other: map[string]string{"nope": "1"}})
		if err == nil {
			t.Fatalf("%s: Open with bad Other key succeeded", name)
		}
	}
}

// TestCheckConfig validates without a datapath.
func TestCheckConfig(t *testing.T) {
	if err := dpif.CheckConfig(map[string]string{"pmd-auto-lb": "true"}); err != nil {
		t.Fatal(err)
	}
	if err := dpif.CheckConfig(map[string]string{"pmd-auto-lb": "si"}); err == nil {
		t.Fatal("bad value passed CheckConfig")
	}
}

// TestGetConfigListsEverySchemaKey: GetConfig must be total over the schema
// on every provider, so `ovsctl get` output is uniform.
func TestGetConfigListsEverySchemaKey(t *testing.T) {
	keys := dpif.ConfigKeys()
	for _, name := range allProviders {
		got := openProvider(t, name, nil).GetConfig()
		for _, k := range keys {
			if _, ok := got[k]; !ok {
				t.Errorf("%s: GetConfig missing %q", name, k)
			}
		}
		if len(got) != len(keys) {
			t.Errorf("%s: GetConfig has %d keys, schema has %d", name, len(got), len(keys))
		}
	}
}
