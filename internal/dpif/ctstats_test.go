package dpif_test

import (
	"reflect"
	"testing"

	"ovsxdp/internal/dpif"
	"ovsxdp/internal/flow"
	"ovsxdp/internal/ofproto"
	"ovsxdp/internal/packet"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/sim"
)

func ctPacket(sport uint16) *packet.Packet {
	frame := hdr.NewBuilder().
		Eth(hdr.MAC{0x02, 0xaa, 0, 0, 0, 1}, hdr.MAC{0x02, 0xbb, 0, 0, 0, 1}).
		IPv4H(hdr.MakeIP4(10, 0, 0, 1), hdr.MakeIP4(10, 0, 0, 2), 64).
		TCPH(sport, 80, 1, 0, hdr.TCPSyn).PadTo(64).Build()
	p := packet.New(frame)
	p.InPort = 1
	return p
}

// ctStatsObservation drives the same conntrack scenario on one provider:
// commits in two zones through the DPCT action, then snapshots the
// conntrack slice of Stats.
func ctStatsObservation(t *testing.T, name string) dpif.Stats {
	t.Helper()
	eng := sim.NewEngine(1)
	d, err := dpif.Open(name, dpif.Config{Eng: eng, Pipeline: ofproto.NewPipeline()})
	if err != nil {
		t.Fatalf("Open(%q): %v", name, err)
	}
	if err := d.SetConfig(map[string]string{"ct-shards": "4"}); err != nil {
		t.Fatalf("%s: SetConfig(ct-shards): %v", name, err)
	}
	if got := d.GetConfig()["ct-shards"]; got != "4" {
		t.Fatalf("%s: ct-shards roundtrip = %q, want 4", name, got)
	}
	for _, port := range []uint32{1, 2} {
		if err := d.PortAdd(dpif.TxPort{PortID: port, PortName: "p",
			Deliver: func(*packet.Packet) {}}); err != nil {
			t.Fatalf("%s: PortAdd: %v", name, err)
		}
	}
	mask := flow.NewMaskBuilder().InPort().RecircID().TPSrc().Build()
	d.SetUpcall(func(key flow.Key) (ofproto.Megaflow, error) {
		f := key.Unpack()
		zone := uint16(3)
		if f.TPSrc >= 1002 {
			zone = 9
		}
		if f.RecircID == 0 {
			return ofproto.Megaflow{Mask: mask, Actions: []ofproto.DPAction{
				{Type: ofproto.DPCT, Zone: zone, Commit: true, RecircID: 1}}}, nil
		}
		return ofproto.Megaflow{Mask: mask,
			Actions: []ofproto.DPAction{{Type: ofproto.DPOutput, Port: 2}}}, nil
	})

	// Two connections in zone 3, one in zone 9.
	for _, sport := range []uint16{1000, 1001, 1002} {
		d.Execute(ctPacket(sport))
	}
	eng.RunUntil(eng.Now() + sim.Millisecond)
	return d.Stats()
}

// TestConntrackStatsAcrossProviders: every provider surfaces the tracker's
// counters and per-zone breakdown through Stats identically.
func TestConntrackStatsAcrossProviders(t *testing.T) {
	for _, name := range []string{"netdev", "netlink", "ebpf"} {
		t.Run(name, func(t *testing.T) {
			s := ctStatsObservation(t, name)
			if s.CtConns != 3 || s.CtCreated != 3 {
				t.Fatalf("ct conns=%d created=%d, want 3/3", s.CtConns, s.CtCreated)
			}
			if s.CtEarlyDrops != 0 || s.CtEvictions != 0 || s.CtTableFull != 0 || s.CtNATExhausted != 0 {
				t.Fatalf("unexpected pressure counters: %+v", s)
			}
			want := []dpif.CtZoneConns{{Zone: 3, Conns: 2}, {Zone: 9, Conns: 1}}
			if !reflect.DeepEqual(s.ConnsPerZone, want) {
				t.Fatalf("ConnsPerZone = %v, want %v", s.ConnsPerZone, want)
			}
		})
	}
}
