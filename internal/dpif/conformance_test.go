package dpif_test

import (
	"reflect"
	"testing"

	"ovsxdp/internal/core"
	"ovsxdp/internal/dpif"
	"ovsxdp/internal/faultinject"
	"ovsxdp/internal/flow"
	"ovsxdp/internal/ofproto"
	"ovsxdp/internal/packet"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/perf"
	"ovsxdp/internal/sim"
)

// observation is everything a dpif consumer can see from one scenario run.
// The conformance suite runs the identical scenario against every
// registered provider and requires the observations to be deeply equal —
// the guarantee that lets vswitchd, the revalidator, and ovsctl treat the
// three datapaths interchangeably.
type observation struct {
	Type string // filled per-provider, compared against the registry key

	AfterWarm   dpif.Stats // after 8 packets of one flow
	Delivered   uint64
	Upcalls     uint64 // slow-path invocations seen by the upcall hook
	DumpedFlows int

	DelRemoved   bool
	AfterDel     int // flows after deleting the dumped entry
	AfterReExec  dpif.Stats
	AfterFlush   int
	AfterPut     dpif.Stats // FlowPut then one packet: hit without upcall
	PortDelErr   bool       // second PortDel of the same id must fail
	AfterPortDel dpif.Stats // packet executed with output port gone
	FinalPorts   int
}

func scenarioPacket() *packet.Packet {
	frame := hdr.NewBuilder().
		Eth(hdr.MAC{0x02, 0xaa, 0, 0, 0, 1}, hdr.MAC{0x02, 0xbb, 0, 0, 0, 1}).
		IPv4H(hdr.MakeIP4(10, 0, 0, 1), hdr.MakeIP4(10, 0, 0, 2), 64).
		UDPH(1000, 2000).PadTo(64).Build()
	p := packet.New(frame)
	p.InPort = 1
	return p
}

func forwardPipeline() *ofproto.Pipeline {
	pl := ofproto.NewPipeline()
	pl.AddRule(&ofproto.Rule{TableID: 0, Priority: 1,
		Match: ofproto.NewMatch(flow.Fields{InPort: 1},
			flow.NewMaskBuilder().InPort().Build()),
		Actions: []ofproto.Action{ofproto.Output(2)}})
	return pl
}

// runScenario drives one provider through the shared port/flow/upcall/stats
// scenario. mutate, when non-nil, adjusts the Config before Open — the hook
// the SMC variant uses to reshape the cache hierarchy.
func runScenario(t *testing.T, name string, mutate func(*dpif.Config)) observation {
	t.Helper()
	eng := sim.NewEngine(1)
	pl := forwardPipeline()
	cfg := dpif.Config{Eng: eng, Pipeline: pl}
	if mutate != nil {
		mutate(&cfg)
	}
	d, err := dpif.Open(name, cfg)
	if err != nil {
		t.Fatalf("Open(%q): %v", name, err)
	}
	var obs observation
	obs.Type = d.Type()

	// Upcall hook: count slow-path translations, delegating to the pipeline.
	d.SetUpcall(func(key flow.Key) (ofproto.Megaflow, error) {
		obs.Upcalls++
		return pl.Translate(key)
	})

	// Ports: 1 is the ingress identity, 2 counts deliveries.
	if err := d.PortAdd(dpif.TxPort{PortID: 1, PortName: "p0",
		Deliver: func(*packet.Packet) {}}); err != nil {
		t.Fatalf("%s: PortAdd(1): %v", name, err)
	}
	if err := d.PortAdd(dpif.TxPort{PortID: 2, PortName: "p1",
		Deliver: func(*packet.Packet) { obs.Delivered++ }}); err != nil {
		t.Fatalf("%s: PortAdd(2): %v", name, err)
	}
	if n := d.PortCount(); n != 2 {
		t.Fatalf("%s: PortCount = %d, want 2", name, n)
	}

	run := func() { eng.RunUntil(eng.Now() + sim.Millisecond) }

	// Phase 1: 8 packets of one flow — first misses, rest hit the cache.
	for i := 0; i < 8; i++ {
		d.Execute(scenarioPacket())
	}
	run()
	obs.AfterWarm = d.Stats()

	// Phase 2: dump, delete the installed flow, re-execute (fresh upcall).
	flows := d.FlowDump()
	obs.DumpedFlows = len(flows)
	if len(flows) > 0 {
		obs.DelRemoved = d.FlowDel(flows[0])
	}
	obs.AfterDel = len(d.FlowDump())
	d.Execute(scenarioPacket())
	run()
	obs.AfterReExec = d.Stats()

	// Phase 3: flush everything, then pre-install via FlowPut — the next
	// packet must hit without consulting the upcall.
	d.FlowFlush()
	obs.AfterFlush = len(d.FlowDump())
	key := flow.Extract(scenarioPacket())
	mf, err := pl.Translate(key)
	if err != nil {
		t.Fatalf("%s: Translate: %v", name, err)
	}
	upcallsBefore := obs.Upcalls
	d.FlowPut(key, mf.Mask, mf.Actions)
	d.Execute(scenarioPacket())
	run()
	if obs.Upcalls != upcallsBefore {
		t.Errorf("%s: packet after FlowPut took an upcall", name)
	}
	obs.AfterPut = d.Stats()

	// Phase 4: drop the output port; traffic for it is lost, and deleting
	// the port twice is an error.
	if err := d.PortDel(2); err != nil {
		t.Fatalf("%s: PortDel(2): %v", name, err)
	}
	obs.PortDelErr = d.PortDel(2) != nil
	d.FlowFlush() // cached actions may hold the dead port's deliver fn
	d.Execute(scenarioPacket())
	run()
	obs.AfterPortDel = d.Stats()
	obs.FinalPorts = d.PortCount()
	return obs
}

// TestConformance runs the same scenario against every registered provider
// and requires identical observable behaviour.
func TestConformance(t *testing.T) {
	types := dpif.Types()
	if len(types) != 3 {
		t.Fatalf("registry has %v, want 3 providers", types)
	}
	obs := make(map[string]observation, len(types))
	for _, name := range types {
		o := runScenario(t, name, nil)
		if o.Type != name {
			t.Errorf("Open(%q).Type() = %q", name, o.Type)
		}
		o.Type = "" // normalized away for the cross-provider comparison
		obs[name] = o
	}

	// Spot-check the absolute numbers once (they are provider-independent).
	ref := obs["netdev"]
	if want := (dpif.Stats{Hits: 7, Missed: 1, Lost: 0, Processed: 8, Flows: 1}); !reflect.DeepEqual(ref.AfterWarm, want) {
		t.Errorf("netdev AfterWarm = %+v, want %+v", ref.AfterWarm, want)
	}
	// 10 = 8 warm + 1 after FlowDel + 1 after FlowPut (the port-del packet
	// is lost, not delivered).
	if ref.Delivered != 10 || !ref.DelRemoved || ref.AfterDel != 0 || ref.AfterFlush != 0 {
		t.Errorf("netdev scenario: delivered=%d delRemoved=%v afterDel=%d afterFlush=%d",
			ref.Delivered, ref.DelRemoved, ref.AfterDel, ref.AfterFlush)
	}
	if ref.AfterPortDel.Lost == 0 {
		t.Errorf("netdev: packet to deleted port not counted as lost: %+v", ref.AfterPortDel)
	}

	for _, name := range types {
		if !reflect.DeepEqual(obs[name], ref) {
			t.Errorf("provider %q diverges from netdev:\n  %q: %+v\n  netdev: %+v",
				name, name, obs[name], ref)
		}
	}
}

// TestConformanceWithSMC reruns the shared scenario with the EMC disabled
// and the signature match cache enabled, so the warm phase's repeat packets
// must resolve through the SMC on netdev. The kernel-path providers ignore
// the CacheConfig (they have no SMC), so their SMCHits stay zero; the
// cross-provider comparison normalizes the field away and requires every
// other observable — hit totals, upcall counts, flow lifecycles — to remain
// identical. This is the guarantee that enabling the SMC changes where
// packets resolve, never what happens to them.
func TestConformanceWithSMC(t *testing.T) {
	withSMC := func(cfg *dpif.Config) {
		opts := core.DefaultOptions()
		opts.EMC = false // force repeat traffic onto the SMC level
		cfg.Options = opts
		cfg.Cache = dpif.CacheConfig{SMC: true}
	}
	types := dpif.Types()
	obs := make(map[string]observation, len(types))
	for _, name := range types {
		o := runScenario(t, name, withSMC)
		o.Type = ""
		obs[name] = o
	}

	// netdev must have resolved every warm repeat through the SMC: 8
	// packets, 1 upcall, 7 signature-cache hits.
	ref := obs["netdev"]
	if want := (dpif.Stats{Hits: 7, SMCHits: 7, Missed: 1, Processed: 8, Flows: 1}); !reflect.DeepEqual(ref.AfterWarm, want) {
		t.Errorf("netdev AfterWarm with SMC = %+v, want %+v", ref.AfterWarm, want)
	}
	// FlowDel invalidated the SMC's megaflow index, so the re-executed
	// packet must take a fresh upcall rather than resolve via the stale
	// entry (Missed climbs to 2); the subsequent FlowPut packet hits the
	// classifier directly.
	if ref.AfterReExec.Missed != 2 {
		t.Errorf("netdev AfterReExec.Missed = %d, want 2 (stale SMC index must not serve)", ref.AfterReExec.Missed)
	}

	// Cross-provider: normalize the netdev-only SMC split out of the stats
	// blocks, then require deep equality as in the base conformance run.
	normalize := func(o observation) observation {
		o.AfterWarm.SMCHits = 0
		o.AfterReExec.SMCHits = 0
		o.AfterPut.SMCHits = 0
		o.AfterPortDel.SMCHits = 0
		return o
	}
	nref := normalize(ref)
	for _, name := range types {
		if got := normalize(obs[name]); !reflect.DeepEqual(got, nref) {
			t.Errorf("provider %q diverges from netdev with SMC enabled:\n  %q: %+v\n  netdev: %+v",
				name, name, got, nref)
		}
	}
}

// TestPerfStatsAcrossProviders checks the perf layer surfaces through every
// provider with the same packet accounting: the stage split differs (netdev
// has an EMC, the kernel paths do not), but totals and the upcall count are
// provider-independent.
func TestPerfStatsAcrossProviders(t *testing.T) {
	for _, name := range dpif.Types() {
		eng := sim.NewEngine(1)
		pl := forwardPipeline()
		d, err := dpif.Open(name, dpif.Config{Eng: eng, Pipeline: pl})
		if err != nil {
			t.Fatalf("Open(%q): %v", name, err)
		}
		for _, id := range []uint32{1, 2} {
			if err := d.PortAdd(dpif.TxPort{PortID: id, PortName: "p",
				Deliver: func(*packet.Packet) {}}); err != nil {
				t.Fatalf("%s: PortAdd: %v", name, err)
			}
		}
		d.EnableTrace(4)
		for i := 0; i < 8; i++ {
			d.Execute(scenarioPacket())
		}
		eng.RunUntil(eng.Now() + sim.Millisecond)

		threads := d.PerfStats()
		if len(threads) == 0 {
			t.Fatalf("%s: no perf threads", name)
		}
		var packets, hits, upcalls uint64
		var busy sim.Time
		var recs []perf.TraceRecord
		for _, th := range threads {
			packets += th.Packets
			hits += th.EMCHits + th.SMCHits + th.MegaflowHits
			upcalls += th.Upcalls
			busy += th.BusyCycles()
			recs = append(recs, th.Trace()...)
		}
		if packets != 8 || upcalls != 1 || hits != 7 {
			t.Errorf("%s: packets=%d hits=%d upcalls=%d, want 8/7/1",
				name, packets, hits, upcalls)
		}
		if busy <= 0 {
			t.Errorf("%s: no busy cycles attributed", name)
		}
		if len(recs) != 4 {
			t.Errorf("%s: %d trace records, want ring of 4", name, len(recs))
		}
		for _, r := range recs {
			if r.InPort != 1 || r.OutPort != 2 || r.Result == perf.ResultNone {
				t.Errorf("%s: bad lifecycle %+v", name, r)
			}
		}
	}
}

// faultObservation is everything observable from the shared fault schedule:
// the unified stats block, the test's own delivery accounting, the slow-path
// internals, and the injector's per-fault counters.
type faultObservation struct {
	Stats        dpif.Stats
	Delivered    uint64
	LinkDrops    uint64
	HookUpcalls  uint64 // upcall-hook invocations, failed attempts included
	Retries      uint64
	UpcallErrors uint64

	FlowsAfterFail   int // negative flow(s) present after hard failure
	FlowsAfterExpiry int // and gone after the TTL

	UpcallWindows uint64
	UpcallTrips   uint64
	LinkWindows   uint64
	LinkTrips     uint64

	// Busy fingerprints virtual-time cost attribution across every CPU.
	// Identical between two seeded runs of one provider; cleared for the
	// cross-provider comparison (the providers' costs differ by design).
	Busy sim.Time
}

// malformedPacket is a truncated IPv4 frame: the Ethernet header parses and
// announces IPv4, but only 4 bytes of L3 follow. InPort 7 matches no
// installed flow on any provider (the ebpf flavor's exact-match narrowing
// included), so the packet reaches the slow-path admission check where the
// malformed split happens.
func malformedPacket() *packet.Packet {
	data := make([]byte, hdr.EthernetSize+4)
	data[12], data[13] = 0x08, 0x00 // EtherTypeIPv4
	p := packet.New(data)
	p.InPort = 7
	return p
}

// runFaultScenario drives one provider through the shared fault schedule:
//
//	A: transient slow-path outage + a 12-packet burst of one flow — 4 park
//	   in the bounded queue and recover via backoff retries, 8 overflow;
//	B: link flap on the output port while the flow is hot — delivery fails
//	   at the carrier, the datapath still counts hits;
//	C: malformed frames — counted separately from policy drops;
//	D: hard slow-path outage — retries exhaust, the flow is dropped and a
//	   short-lived negative flow shields the slow path until its TTL.
func runFaultScenario(t *testing.T, name string) faultObservation {
	t.Helper()
	eng := sim.NewEngine(1)
	pl := forwardPipeline()
	d, err := dpif.Open(name, dpif.Config{Eng: eng, Pipeline: pl,
		Upcall: dpif.UpcallConfig{QueueCap: 4, ServiceInterval: 20 * sim.Microsecond,
			RetryBase: 25 * sim.Microsecond, MaxRetries: 3}})
	if err != nil {
		t.Fatalf("Open(%q): %v", name, err)
	}
	var o faultObservation
	inj := faultinject.New(eng)

	failGate := inj.Gate(faultinject.KindUpcallFailure, "upcall")
	d.SetUpcall(func(key flow.Key) (ofproto.Megaflow, error) {
		o.HookUpcalls++
		if failGate() {
			return ofproto.Megaflow{}, inj.Err(faultinject.KindUpcallFailure, "upcall")
		}
		return pl.Translate(key)
	})

	linkGate := inj.Gate(faultinject.KindLinkFlap, "p1")
	if err := d.PortAdd(dpif.TxPort{PortID: 1, PortName: "p0",
		Deliver: func(*packet.Packet) {}}); err != nil {
		t.Fatalf("%s: PortAdd(1): %v", name, err)
	}
	if err := d.PortAdd(dpif.TxPort{PortID: 2, PortName: "p1",
		Deliver: func(*packet.Packet) {
			if linkGate() {
				o.LinkDrops++
			} else {
				o.Delivered++
			}
		}}); err != nil {
		t.Fatalf("%s: PortAdd(2): %v", name, err)
	}

	// Phase A: the slow path is down for the first 100us; a 12-packet burst
	// of one flow arrives at t=0. Queue cap 4: the rest is ENOBUFS.
	inj.Window(faultinject.KindUpcallFailure, "upcall", 0, 100*sim.Microsecond, nil)
	for i := 0; i < 12; i++ {
		d.Execute(scenarioPacket())
	}
	eng.RunUntil(sim.Millisecond) // retries resolve well before this

	// Phase B: link flap on the output port while the flow is installed.
	// The window edges are engine events, so arm it strictly in the future
	// and advance into it before executing.
	t1 := eng.Now()
	inj.Window(faultinject.KindLinkFlap, "p1", t1+10*sim.Microsecond, 30*sim.Microsecond, nil)
	eng.RunUntil(t1 + 20*sim.Microsecond)
	for i := 0; i < 6; i++ {
		d.Execute(scenarioPacket())
	}
	eng.RunUntil(t1 + 100*sim.Microsecond)

	// Phase C: malformed frames never reach the upcall queue.
	for i := 0; i < 3; i++ {
		d.Execute(malformedPacket())
	}
	eng.RunUntil(t1 + 200*sim.Microsecond)

	// Phase D: flow tables empty, slow path hard-down for 5ms — longer than
	// any backoff chain. 5 packets: 4 admitted (all eventually dropped, one
	// through exhausted retries, the rest against the negative flow), 1
	// refused at the queue.
	d.FlowFlush()
	t2 := eng.Now()
	inj.Window(faultinject.KindUpcallFailure, "upcall", t2+10*sim.Microsecond, 5*sim.Millisecond, nil)
	eng.RunUntil(t2 + 20*sim.Microsecond)
	for i := 0; i < 5; i++ {
		d.Execute(scenarioPacket())
	}
	eng.RunUntil(t2 + 3*sim.Millisecond)
	o.FlowsAfterFail = len(d.FlowDump())
	eng.RunUntil(t2 + 40*sim.Millisecond) // past the negative flow's TTL
	o.FlowsAfterExpiry = len(d.FlowDump())

	o.Stats = d.Stats()
	switch v := d.(type) {
	case *dpif.Netdev:
		o.Retries = v.Datapath().UpcallRetries
		o.UpcallErrors = v.Datapath().UpcallErrors
	case *dpif.Netlink:
		o.Retries = v.Kernel().UpcallRetries
		o.UpcallErrors = v.Kernel().UpcallErrors
	}
	o.UpcallWindows = inj.Windows(faultinject.KindUpcallFailure)
	o.UpcallTrips = inj.Trips(faultinject.KindUpcallFailure)
	o.LinkWindows = inj.Windows(faultinject.KindLinkFlap)
	o.LinkTrips = inj.Trips(faultinject.KindLinkFlap)
	for _, c := range eng.CPUs() {
		o.Busy += c.BusyTotal()
	}
	return o
}

// TestFaultScheduleConformance runs the same fault schedule against every
// provider and requires identical counter semantics: the same packets drop
// for the same reasons in the same places, and the drop classes conserve
// against Processed.
func TestFaultScheduleConformance(t *testing.T) {
	types := dpif.Types()
	obs := make(map[string]faultObservation, len(types))
	for _, name := range types {
		obs[name] = runFaultScenario(t, name)
	}

	ref := obs["netdev"]
	// Absolute spot-checks, once (the schedule fixes every number).
	if ref.Stats.Missed != 17 {
		t.Errorf("Missed = %d, want 17 (12 burst + 5 outage)", ref.Stats.Missed)
	}
	if ref.Stats.UpcallQueueDrops != 9 {
		t.Errorf("UpcallQueueDrops = %d, want 9 (8 burst + 1 outage)", ref.Stats.UpcallQueueDrops)
	}
	if ref.Stats.MalformedDrops != 3 {
		t.Errorf("MalformedDrops = %d, want 3", ref.Stats.MalformedDrops)
	}
	if ref.Stats.Lost != 4 {
		t.Errorf("Lost = %d, want 4 (the admitted outage packets)", ref.Stats.Lost)
	}
	if ref.Stats.Processed != 26 {
		t.Errorf("Processed = %d, want 26", ref.Stats.Processed)
	}
	if ref.Delivered != 4 || ref.LinkDrops != 6 {
		t.Errorf("delivered=%d linkDrops=%d, want 4/6", ref.Delivered, ref.LinkDrops)
	}
	if ref.Retries == 0 {
		t.Error("no backoff retries observed")
	}
	if ref.UpcallErrors != 1 {
		t.Errorf("UpcallErrors = %d, want 1 (first exhausted retry installs the negative flow; later packets dedup against it)", ref.UpcallErrors)
	}
	if ref.FlowsAfterFail != 1 {
		t.Errorf("FlowsAfterFail = %d, want exactly the negative flow", ref.FlowsAfterFail)
	}
	if ref.FlowsAfterExpiry != 0 {
		t.Errorf("FlowsAfterExpiry = %d, want 0 (TTL passed)", ref.FlowsAfterExpiry)
	}
	if ref.LinkTrips != 6 || ref.LinkWindows != 1 || ref.UpcallWindows != 2 {
		t.Errorf("injector counters: linkTrips=%d linkWindows=%d upcallWindows=%d, want 6/1/2",
			ref.LinkTrips, ref.LinkWindows, ref.UpcallWindows)
	}

	// Conservation: every fast-path pass is delivered or counted in exactly
	// one drop class (link drops happen beyond the dpif boundary, in the
	// test's port, so they are on the delivered side of the datapath).
	for _, name := range types {
		o := obs[name]
		if got := o.Delivered + o.LinkDrops + o.Stats.Lost + o.Stats.UpcallQueueDrops + o.Stats.MalformedDrops; got != o.Stats.Processed {
			t.Errorf("%s: conservation broken: delivered %d + link %d + lost %d + queue %d + malformed %d != processed %d",
				name, o.Delivered, o.LinkDrops, o.Stats.Lost,
				o.Stats.UpcallQueueDrops, o.Stats.MalformedDrops, o.Stats.Processed)
		}
	}

	// Cross-provider: identical counter semantics; only the cost fingerprint
	// may differ.
	ref.Busy = 0
	for _, name := range types {
		o := obs[name]
		o.Busy = 0
		if !reflect.DeepEqual(o, ref) {
			t.Errorf("provider %q diverges from netdev under faults:\n  %q: %+v\n  netdev: %+v",
				name, name, o, ref)
		}
	}
}

// TestFaultScheduleDeterminism runs the full fault schedule twice per
// provider with the same seed and requires byte-identical observations —
// including the virtual-time cost fingerprint, which covers backoff jitter,
// retry ordering, and negative-flow expiry.
func TestFaultScheduleDeterminism(t *testing.T) {
	for _, name := range dpif.Types() {
		a := runFaultScenario(t, name)
		b := runFaultScenario(t, name)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: two seeded runs diverge:\n  run1: %+v\n  run2: %+v", name, a, b)
		}
	}
}

// TestRegistry covers the registry itself: unknown types fail, duplicate
// registration panics.
func TestRegistry(t *testing.T) {
	if _, err := dpif.Open("nosuch", dpif.Config{}); err == nil {
		t.Fatal("Open of unregistered type succeeded")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	dpif.Register("netdev", nil)
}
