package dpif_test

import (
	"reflect"
	"testing"

	"ovsxdp/internal/dpif"
	"ovsxdp/internal/flow"
	"ovsxdp/internal/ofproto"
	"ovsxdp/internal/packet"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/perf"
	"ovsxdp/internal/sim"
)

// observation is everything a dpif consumer can see from one scenario run.
// The conformance suite runs the identical scenario against every
// registered provider and requires the observations to be deeply equal —
// the guarantee that lets vswitchd, the revalidator, and ovsctl treat the
// three datapaths interchangeably.
type observation struct {
	Type string // filled per-provider, compared against the registry key

	AfterWarm   dpif.Stats // after 8 packets of one flow
	Delivered   uint64
	Upcalls     uint64 // slow-path invocations seen by the upcall hook
	DumpedFlows int

	DelRemoved   bool
	AfterDel     int // flows after deleting the dumped entry
	AfterReExec  dpif.Stats
	AfterFlush   int
	AfterPut     dpif.Stats // FlowPut then one packet: hit without upcall
	PortDelErr   bool       // second PortDel of the same id must fail
	AfterPortDel dpif.Stats // packet executed with output port gone
	FinalPorts   int
}

func scenarioPacket() *packet.Packet {
	frame := hdr.NewBuilder().
		Eth(hdr.MAC{0x02, 0xaa, 0, 0, 0, 1}, hdr.MAC{0x02, 0xbb, 0, 0, 0, 1}).
		IPv4H(hdr.MakeIP4(10, 0, 0, 1), hdr.MakeIP4(10, 0, 0, 2), 64).
		UDPH(1000, 2000).PadTo(64).Build()
	p := packet.New(frame)
	p.InPort = 1
	return p
}

func forwardPipeline() *ofproto.Pipeline {
	pl := ofproto.NewPipeline()
	pl.AddRule(&ofproto.Rule{TableID: 0, Priority: 1,
		Match: ofproto.NewMatch(flow.Fields{InPort: 1},
			flow.NewMaskBuilder().InPort().Build()),
		Actions: []ofproto.Action{ofproto.Output(2)}})
	return pl
}

// runScenario drives one provider through the shared port/flow/upcall/stats
// scenario.
func runScenario(t *testing.T, name string) observation {
	t.Helper()
	eng := sim.NewEngine(1)
	pl := forwardPipeline()
	d, err := dpif.Open(name, dpif.Config{Eng: eng, Pipeline: pl})
	if err != nil {
		t.Fatalf("Open(%q): %v", name, err)
	}
	var obs observation
	obs.Type = d.Type()

	// Upcall hook: count slow-path translations, delegating to the pipeline.
	d.SetUpcall(func(key flow.Key) (ofproto.Megaflow, error) {
		obs.Upcalls++
		return pl.Translate(key)
	})

	// Ports: 1 is the ingress identity, 2 counts deliveries.
	if err := d.PortAdd(dpif.TxPort{PortID: 1, PortName: "p0",
		Deliver: func(*packet.Packet) {}}); err != nil {
		t.Fatalf("%s: PortAdd(1): %v", name, err)
	}
	if err := d.PortAdd(dpif.TxPort{PortID: 2, PortName: "p1",
		Deliver: func(*packet.Packet) { obs.Delivered++ }}); err != nil {
		t.Fatalf("%s: PortAdd(2): %v", name, err)
	}
	if n := d.PortCount(); n != 2 {
		t.Fatalf("%s: PortCount = %d, want 2", name, n)
	}

	run := func() { eng.RunUntil(eng.Now() + sim.Millisecond) }

	// Phase 1: 8 packets of one flow — first misses, rest hit the cache.
	for i := 0; i < 8; i++ {
		d.Execute(scenarioPacket())
	}
	run()
	obs.AfterWarm = d.Stats()

	// Phase 2: dump, delete the installed flow, re-execute (fresh upcall).
	flows := d.FlowDump()
	obs.DumpedFlows = len(flows)
	if len(flows) > 0 {
		obs.DelRemoved = d.FlowDel(flows[0])
	}
	obs.AfterDel = len(d.FlowDump())
	d.Execute(scenarioPacket())
	run()
	obs.AfterReExec = d.Stats()

	// Phase 3: flush everything, then pre-install via FlowPut — the next
	// packet must hit without consulting the upcall.
	d.FlowFlush()
	obs.AfterFlush = len(d.FlowDump())
	key := flow.Extract(scenarioPacket())
	mf, err := pl.Translate(key)
	if err != nil {
		t.Fatalf("%s: Translate: %v", name, err)
	}
	upcallsBefore := obs.Upcalls
	d.FlowPut(key, mf.Mask, mf.Actions)
	d.Execute(scenarioPacket())
	run()
	if obs.Upcalls != upcallsBefore {
		t.Errorf("%s: packet after FlowPut took an upcall", name)
	}
	obs.AfterPut = d.Stats()

	// Phase 4: drop the output port; traffic for it is lost, and deleting
	// the port twice is an error.
	if err := d.PortDel(2); err != nil {
		t.Fatalf("%s: PortDel(2): %v", name, err)
	}
	obs.PortDelErr = d.PortDel(2) != nil
	d.FlowFlush() // cached actions may hold the dead port's deliver fn
	d.Execute(scenarioPacket())
	run()
	obs.AfterPortDel = d.Stats()
	obs.FinalPorts = d.PortCount()
	return obs
}

// TestConformance runs the same scenario against every registered provider
// and requires identical observable behaviour.
func TestConformance(t *testing.T) {
	types := dpif.Types()
	if len(types) != 3 {
		t.Fatalf("registry has %v, want 3 providers", types)
	}
	obs := make(map[string]observation, len(types))
	for _, name := range types {
		o := runScenario(t, name)
		if o.Type != name {
			t.Errorf("Open(%q).Type() = %q", name, o.Type)
		}
		o.Type = "" // normalized away for the cross-provider comparison
		obs[name] = o
	}

	// Spot-check the absolute numbers once (they are provider-independent).
	ref := obs["netdev"]
	if want := (dpif.Stats{Hits: 7, Missed: 1, Lost: 0, Flows: 1}); ref.AfterWarm != want {
		t.Errorf("netdev AfterWarm = %+v, want %+v", ref.AfterWarm, want)
	}
	// 10 = 8 warm + 1 after FlowDel + 1 after FlowPut (the port-del packet
	// is lost, not delivered).
	if ref.Delivered != 10 || !ref.DelRemoved || ref.AfterDel != 0 || ref.AfterFlush != 0 {
		t.Errorf("netdev scenario: delivered=%d delRemoved=%v afterDel=%d afterFlush=%d",
			ref.Delivered, ref.DelRemoved, ref.AfterDel, ref.AfterFlush)
	}
	if ref.AfterPortDel.Lost == 0 {
		t.Errorf("netdev: packet to deleted port not counted as lost: %+v", ref.AfterPortDel)
	}

	for _, name := range types {
		if !reflect.DeepEqual(obs[name], ref) {
			t.Errorf("provider %q diverges from netdev:\n  %q: %+v\n  netdev: %+v",
				name, name, obs[name], ref)
		}
	}
}

// TestPerfStatsAcrossProviders checks the perf layer surfaces through every
// provider with the same packet accounting: the stage split differs (netdev
// has an EMC, the kernel paths do not), but totals and the upcall count are
// provider-independent.
func TestPerfStatsAcrossProviders(t *testing.T) {
	for _, name := range dpif.Types() {
		eng := sim.NewEngine(1)
		pl := forwardPipeline()
		d, err := dpif.Open(name, dpif.Config{Eng: eng, Pipeline: pl})
		if err != nil {
			t.Fatalf("Open(%q): %v", name, err)
		}
		for _, id := range []uint32{1, 2} {
			if err := d.PortAdd(dpif.TxPort{PortID: id, PortName: "p",
				Deliver: func(*packet.Packet) {}}); err != nil {
				t.Fatalf("%s: PortAdd: %v", name, err)
			}
		}
		d.EnableTrace(4)
		for i := 0; i < 8; i++ {
			d.Execute(scenarioPacket())
		}
		eng.RunUntil(eng.Now() + sim.Millisecond)

		threads := d.PerfStats()
		if len(threads) == 0 {
			t.Fatalf("%s: no perf threads", name)
		}
		var packets, hits, upcalls uint64
		var busy sim.Time
		var recs []perf.TraceRecord
		for _, th := range threads {
			packets += th.Packets
			hits += th.EMCHits + th.MegaflowHits
			upcalls += th.Upcalls
			busy += th.BusyCycles()
			recs = append(recs, th.Trace()...)
		}
		if packets != 8 || upcalls != 1 || hits != 7 {
			t.Errorf("%s: packets=%d hits=%d upcalls=%d, want 8/7/1",
				name, packets, hits, upcalls)
		}
		if busy <= 0 {
			t.Errorf("%s: no busy cycles attributed", name)
		}
		if len(recs) != 4 {
			t.Errorf("%s: %d trace records, want ring of 4", name, len(recs))
		}
		for _, r := range recs {
			if r.InPort != 1 || r.OutPort != 2 || r.Result == perf.ResultNone {
				t.Errorf("%s: bad lifecycle %+v", name, r)
			}
		}
	}
}

// TestRegistry covers the registry itself: unknown types fail, duplicate
// registration panics.
func TestRegistry(t *testing.T) {
	if _, err := dpif.Open("nosuch", dpif.Config{}); err == nil {
		t.Fatal("Open of unregistered type succeeded")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	dpif.Register("netdev", nil)
}
