package dpif

import (
	"fmt"
	"sort"
	"strconv"

	"ovsxdp/internal/sim"
)

// This file is the ovs-vsctl-style configuration surface: every datapath
// tunable is an `other_config` key with a typed value, applied through
// Dpif.SetConfig and read back through Dpif.GetConfig. It replaces the
// sprawl of constructor flags (core.Options fields, CacheConfig,
// UpcallConfig, per-flag CLI switches) as the primary way to configure a
// datapath; the structs remain as a thin compatibility shim underneath.
//
// The schema below is the single source of truth: key names, value types,
// defaults, and whether a key only has effect on the userspace (netdev)
// provider. Unknown keys and malformed values are errors on every provider;
// netdev-only keys are accepted but inert on the kernel-path providers,
// exactly as OVS's Open_vSwitch other_config column is global but only
// dpif-netdev reads the pmd-* keys.

// configValueKind types a key's value for parsing and error messages.
type configValueKind int

const (
	kindBool configValueKind = iota
	kindInt
	kindMicroseconds
	kindEnum
)

// configKeySpec describes one other_config key.
type configKeySpec struct {
	kind configValueKind
	// def is the default rendered by GetConfig when nothing was set.
	def string
	// enum lists the legal values for kindEnum keys.
	enum []string
	// netdevOnly keys configure the userspace cache hierarchy or PMD
	// machinery; the kernel-path providers validate but ignore them.
	netdevOnly bool
}

// configSchema is every supported other_config key.
var configSchema = map[string]configKeySpec{
	// Multi-PMD scaling (this package's assignment layer).
	"pmd-rxq-assign":                    {kind: kindEnum, def: "roundrobin", enum: []string{"roundrobin", "cycles"}, netdevOnly: true},
	"pmd-auto-lb":                       {kind: kindBool, def: "false", netdevOnly: true},
	"pmd-auto-lb-rebal-interval-us":     {kind: kindMicroseconds, def: "5000", netdevOnly: true},
	"pmd-auto-lb-improvement-threshold": {kind: kindInt, def: "25", netdevOnly: true},
	"tx-lock-mutex":                     {kind: kindBool, def: "false", netdevOnly: true},

	// Cache hierarchy.
	"emc-enable":          {kind: kindBool, def: "true", netdevOnly: true},
	"emc-insert-inv-prob": {kind: kindInt, def: "1", netdevOnly: true},
	"smc-enable":          {kind: kindBool, def: "false", netdevOnly: true},
	"smc-entries":         {kind: kindInt, def: "0", netdevOnly: true},
	"batch-dedup":         {kind: kindBool, def: "false", netdevOnly: true},

	// Slow path (all providers).
	"upcall-queue-cap":     {kind: kindInt, def: "0"},
	"upcall-service-us":    {kind: kindMicroseconds, def: "0"},
	"upcall-retry-base-us": {kind: kindMicroseconds, def: "0"},
	"upcall-max-retries":   {kind: kindInt, def: "0"},
	"negative-flow-ttl-us": {kind: kindMicroseconds, def: "10000"},

	// Conntrack (all providers: both datapaths carry a tracker).
	"ct-shards": {kind: kindInt, def: "8"},

	// Hardware flow offload (netdev only: the kernel-path providers'
	// simulated NICs expose no flow table, so the keys validate but stay
	// inert there, like OVS's hw-offload on an incapable device).
	"hw-offload":              {kind: kindBool, def: "false", netdevOnly: true},
	"hw-offload-table-size":   {kind: kindInt, def: "2048", netdevOnly: true},
	"hw-offload-elephant-pps": {kind: kindInt, def: "100000", netdevOnly: true},
	"hw-offload-readback-us":  {kind: kindMicroseconds, def: "1000", netdevOnly: true},
	"hw-offload-ewma-weight":  {kind: kindInt, def: "50", netdevOnly: true},
}

// ConfigKeys lists every supported other_config key, sorted (CLI help,
// documentation tests).
func ConfigKeys() []string {
	keys := make([]string, 0, len(configSchema))
	for k := range configSchema {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// parseConfigValue validates and converts one value against its key's spec.
// The returned any is bool, int, or sim.Time by kind.
func parseConfigValue(key, val string) (any, error) {
	spec, ok := configSchema[key]
	if !ok {
		return nil, fmt.Errorf("dpif: unknown other_config key %q (have %v)", key, ConfigKeys())
	}
	switch spec.kind {
	case kindBool:
		switch val {
		case "true":
			return true, nil
		case "false":
			return false, nil
		default:
			return nil, fmt.Errorf("dpif: %s: want true or false, got %q", key, val)
		}
	case kindInt:
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("dpif: %s: want a non-negative integer, got %q", key, val)
		}
		return n, nil
	case kindMicroseconds:
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("dpif: %s: want microseconds as a non-negative integer, got %q", key, val)
		}
		return sim.Time(n) * sim.Microsecond, nil
	default: // kindEnum
		for _, e := range spec.enum {
			if val == e {
				return val, nil
			}
		}
		return nil, fmt.Errorf("dpif: %s: want one of %v, got %q", key, spec.enum, val)
	}
}

// applyConfig validates the whole map first (so a bad key changes nothing),
// then applies the keys in sorted order — deterministic regardless of map
// iteration — through the provider's per-key setter. Setters receive the
// parsed value and return an error for values legal in form but not in
// context.
func applyConfig(kv map[string]string, set func(key string, parsed any) error) error {
	keys := make([]string, 0, len(kv))
	parsed := make(map[string]any, len(kv))
	for k, v := range kv {
		p, err := parseConfigValue(k, v)
		if err != nil {
			return err
		}
		parsed[k] = p
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := set(k, parsed[k]); err != nil {
			return err
		}
	}
	return nil
}

// CheckConfig validates keys and values against the schema without applying
// anything — for callers that collect config before any datapath exists
// (CLI flag parsing).
func CheckConfig(kv map[string]string) error {
	return applyConfig(kv, func(string, any) error { return nil })
}

// renderBool renders a bool as the schema's value syntax.
func renderBool(v bool) string {
	if v {
		return "true"
	}
	return "false"
}

// renderMicros renders a sim.Time as integer microseconds.
func renderMicros(t sim.Time) string {
	return strconv.FormatInt(int64(t/sim.Microsecond), 10)
}

// FormatConfig renders a config map as sorted "key=value" lines (ovsctl
// get).
func FormatConfig(kv map[string]string) string {
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("%s=%s\n", k, kv[k])
	}
	return out
}
