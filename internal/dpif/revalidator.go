package dpif

import (
	"ovsxdp/internal/dpcls"
	"ovsxdp/internal/sim"
)

// Revalidator ages out idle megaflows, the way ovs-vswitchd's revalidator
// threads do: a megaflow that saw no traffic for IdleSweeps consecutive
// sweeps is removed (and, on the netdev datapath, stale EMC entries die
// with the owning thread's cache flush). Without this, a long-running
// switch accumulates one megaflow per decision path it ever made.
//
// The sweeper works entirely through the Dpif seam (FlowDump/FlowDel), so
// the kernel-module and eBPF datapaths age out idle flows with exactly the
// same policy as the userspace one.
type Revalidator struct {
	dp  Dpif
	eng *sim.Engine
	// Interval between sweeps.
	Interval sim.Time
	// IdleSweeps is how many hit-less sweeps a flow survives.
	IdleSweeps int

	lastHits map[*dpcls.Entry]uint64
	idleFor  map[*dpcls.Entry]int
	running  bool

	// Stall, when set and returning true, models a wedged revalidator
	// thread (fault injection): the sweep is skipped — idle flows age out
	// late — but rescheduling continues, so it recovers when the window
	// closes.
	Stall func() bool

	// Stats.
	Sweeps  uint64
	Evicted uint64
	// StalledSweeps counts sweeps skipped by an injected stall.
	StalledSweeps uint64
}

// StartRevalidator launches periodic sweeps over the datapath on eng.
func StartRevalidator(eng *sim.Engine, dp Dpif, interval sim.Time, idleSweeps int) *Revalidator {
	if idleSweeps <= 0 {
		idleSweeps = 2
	}
	r := &Revalidator{
		dp:         dp,
		eng:        eng,
		Interval:   interval,
		IdleSweeps: idleSweeps,
		lastHits:   make(map[*dpcls.Entry]uint64),
		idleFor:    make(map[*dpcls.Entry]int),
		running:    true,
	}
	eng.Schedule(interval, r.sweep)
	return r
}

// Stop halts future sweeps and releases the tracking maps. The engine may
// still hold one already-scheduled sweep closure; it observes the stopped
// state and returns without touching the datapath or rescheduling.
func (r *Revalidator) Stop() {
	r.running = false
	r.lastHits = nil
	r.idleFor = nil
}

// Running reports whether the revalidator is still sweeping.
func (r *Revalidator) Running() bool { return r.running }

// sweep examines every installed megaflow and evicts the idle ones.
func (r *Revalidator) sweep() {
	if !r.running {
		return
	}
	if r.Stall != nil && r.Stall() {
		r.StalledSweeps++
		r.eng.Schedule(r.Interval, r.sweep)
		return
	}
	r.Sweeps++
	live := make(map[*dpcls.Entry]bool)
	for _, f := range r.dp.FlowDump() {
		e := f.Entry
		live[e] = true
		if e.Hits != r.lastHits[e] {
			r.lastHits[e] = e.Hits
			r.idleFor[e] = 0
			continue
		}
		r.idleFor[e]++
		if r.idleFor[e] >= r.IdleSweeps {
			if r.dp.FlowDel(f) {
				r.Evicted++
			}
			delete(r.lastHits, e)
			delete(r.idleFor, e)
			live[e] = false
		}
	}
	// Forget tracking state for entries that vanished by other means
	// (FlowFlush on rule changes).
	for e := range r.lastHits {
		if !live[e] {
			delete(r.lastHits, e)
			delete(r.idleFor, e)
		}
	}
	r.eng.Schedule(r.Interval, r.sweep)
}
