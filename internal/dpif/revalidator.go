package dpif

import (
	"ovsxdp/internal/costmodel"
	"ovsxdp/internal/dpcls"
	"ovsxdp/internal/sim"
)

// Revalidator ages out idle megaflows, the way ovs-vswitchd's revalidator
// threads do: a megaflow that saw no traffic for IdleSweeps consecutive
// sweeps is removed (and the owning thread's caches drop just that entry —
// the EMC via its lazy dead-entry purge, the SMC via its indirection
// table). Without this, a long-running switch accumulates one megaflow per
// decision path it ever made.
//
// The sweeper works entirely through the Dpif seam (FlowDumpInto/FlowDel),
// so the kernel-module and eBPF datapaths age out idle flows with exactly
// the same policy as the userspace one. The dump buffer and the tracking
// map are reused across sweeps: an idle sweep over a warm table performs
// zero heap allocations, so sweeping a large table is bounded by its size,
// not by garbage-collector pressure.
//
// For tables large enough that even reading every flow per sweep is the
// bottleneck, WheelRevalidator replaces periodic sweeps with per-flow
// expiry timers.
type Revalidator struct {
	dp  Dpif
	eng *sim.Engine
	// Interval between sweeps.
	Interval sim.Time
	// IdleSweeps is how many hit-less sweeps a flow survives.
	IdleSweeps int

	// track holds per-flow observation state; dump is the reused flow-dump
	// buffer; gen stamps which sweep last saw each tracked entry, so state
	// for flows that vanished by other means (FlowFlush) is dropped
	// without a second per-sweep set.
	track   map[*dpcls.Entry]flowTrack
	dump    []Flow
	gen     uint64
	running bool

	// sweepTimer rearms the sweep; binding the callback once keeps
	// rescheduling allocation-free.
	sweepTimer *sim.Timer

	// Stall, when set and returning true, models a wedged revalidator
	// thread (fault injection): the sweep is skipped — idle flows age out
	// late — but rescheduling continues, so it recovers when the window
	// closes.
	Stall func() bool

	// Stats.
	Sweeps  uint64
	Evicted uint64
	// StalledSweeps counts sweeps skipped by an injected stall.
	StalledSweeps uint64
}

// flowTrack is one tracked megaflow's observation state.
type flowTrack struct {
	lastHits uint64
	idle     int
	gen      uint64
}

// StartRevalidator launches periodic sweeps over the datapath on eng.
func StartRevalidator(eng *sim.Engine, dp Dpif, interval sim.Time, idleSweeps int) *Revalidator {
	if idleSweeps <= 0 {
		idleSweeps = 2
	}
	r := &Revalidator{
		dp:         dp,
		eng:        eng,
		Interval:   interval,
		IdleSweeps: idleSweeps,
		track:      make(map[*dpcls.Entry]flowTrack),
		running:    true,
	}
	r.sweepTimer = eng.NewTimer(r.sweep)
	r.sweepTimer.Schedule(interval)
	return r
}

// Stop halts future sweeps and releases the tracking state (which
// otherwise pins every tracked dpcls.Entry for the daemon's lifetime). The
// pending sweep arm is cancelled; a stopped revalidator never touches the
// datapath again.
func (r *Revalidator) Stop() {
	r.running = false
	r.track = nil
	r.dump = nil
	if r.sweepTimer != nil {
		r.sweepTimer.Stop()
	}
}

// Running reports whether the revalidator is still sweeping.
func (r *Revalidator) Running() bool { return r.running }

// sweep examines every installed megaflow and evicts the idle ones.
func (r *Revalidator) sweep() {
	if !r.running {
		return
	}
	if r.Stall != nil && r.Stall() {
		r.StalledSweeps++
		r.sweepTimer.Schedule(r.Interval)
		return
	}
	r.Sweeps++
	r.gen++
	r.dump = r.dp.FlowDumpInto(r.dump)
	for _, f := range r.dump {
		e := f.Entry
		t := r.track[e] // zero value for a first sighting: lastHits 0, idle 0
		if e.Hits != t.lastHits {
			t.lastHits = e.Hits
			t.idle = 0
			t.gen = r.gen
			r.track[e] = t
			continue
		}
		t.idle++
		if t.idle >= r.IdleSweeps {
			if r.dp.FlowDel(f) {
				r.Evicted++
			}
			delete(r.track, e)
			continue
		}
		t.gen = r.gen
		r.track[e] = t
	}
	// Forget tracking state for entries that vanished by other means
	// (FlowFlush on rule changes): anything this sweep did not stamp.
	for e, t := range r.track {
		if t.gen != r.gen {
			delete(r.track, e)
		}
	}
	r.sweepTimer.Schedule(r.Interval)
}

// WheelRevalidator ages out idle megaflows with per-flow expiry timers on
// the engine's timer wheel instead of periodic full-table sweeps: every
// installed flow registers an idle deadline, a deadline that fires finds
// the flow either active (hits advanced — the deadline is re-armed one
// idle timeout out, the mintmr-style lazy re-arm that keeps the packet
// path free of timer work) or idle (the flow is evicted). Work per
// interval is therefore proportional to the flows whose deadlines elapse —
// under churn, the expiring ones — never to the table size, which is what
// makes a million-flow table with active expiry affordable.
//
// Flow discovery is event-driven through the Dpif flow hook, so a flow is
// tracked from the instant the datapath installs it, whichever path
// installed it (upcall, FlowPut, negative flow). Flows that vanish by
// other means (FlowFlush, negative-flow TTL) are recognized dead at their
// next deadline and dropped from tracking.
//
// Each check charges costmodel.RevalFlowCheck (and evictions
// RevalFlowEvict) to the dedicated revalidator CPU, so experiments can
// report a revalidator duty cycle alongside the PMD's.
type WheelRevalidator struct {
	dp  Dpif
	eng *sim.Engine
	// CPU is the revalidator thread's CPU; its busy share over a window is
	// the revalidator duty cycle.
	CPU *sim.CPU
	// IdleTimeout is how long a flow may go without a hit before
	// eviction. With lazy re-arming the eviction lands between one and two
	// timeouts after the last hit, exactly like OVS's max-idle against a
	// coarse dump interval.
	IdleTimeout sim.Time

	expireFn func(any)
	free     []*flowRec
	running  bool

	// Stats.
	// Installs counts flows registered for tracking (every datapath
	// install plus flows present when the revalidator started).
	Installs uint64
	// Checks counts deadline firings that inspected a live flow.
	Checks uint64
	// Rearms counts checks that found the flow active and re-armed it.
	Rearms uint64
	// Evicted counts idle flows removed from the datapath.
	Evicted uint64
}

// flowRec is one tracked flow's timer state; records recycle through the
// revalidator's free list so steady-state churn allocates nothing.
type flowRec struct {
	f        Flow
	lastHits uint64
}

// StartWheelRevalidator launches incremental flow expiry over the datapath:
// existing flows are registered immediately, future ones as the datapath
// installs them. idleTimeout <= 0 defaults to costmodel.NegativeFlowTTL.
func StartWheelRevalidator(eng *sim.Engine, dp Dpif, idleTimeout sim.Time) *WheelRevalidator {
	if idleTimeout <= 0 {
		idleTimeout = costmodel.NegativeFlowTTL
	}
	r := &WheelRevalidator{
		dp:          dp,
		eng:         eng,
		CPU:         eng.NewCPU("revalidator"),
		IdleTimeout: idleTimeout,
		running:     true,
	}
	r.expireFn = r.onExpire
	dp.SetFlowHook(r.register)
	for _, f := range dp.FlowDump() {
		r.register(f)
	}
	return r
}

// Stop detaches the revalidator: the flow hook is cleared and every
// outstanding deadline, as it fires, releases its record without touching
// the datapath.
func (r *WheelRevalidator) Stop() {
	if !r.running {
		return
	}
	r.running = false
	r.dp.SetFlowHook(nil)
}

// Running reports whether the revalidator is still tracking flows.
func (r *WheelRevalidator) Running() bool { return r.running }

// register starts tracking one installed flow: record its current hit
// count and arm its idle deadline.
func (r *WheelRevalidator) register(f Flow) {
	r.Installs++
	rec := r.newRec()
	rec.f = f
	rec.lastHits = f.Entry.Hits
	r.eng.ScheduleArgAt(r.eng.Now()+r.IdleTimeout, r.expireFn, rec)
}

// onExpire is the deadline handler: drop dead flows from tracking, re-arm
// active ones, evict idle ones.
func (r *WheelRevalidator) onExpire(arg any) {
	rec := arg.(*flowRec)
	if !r.running {
		r.freeRec(rec)
		return
	}
	e := rec.f.Entry
	if e.Dead() {
		// Removed by other means (FlowFlush, negative-flow TTL, another
		// revalidator): nothing to do but stop tracking it.
		r.freeRec(rec)
		return
	}
	r.Checks++
	r.CPU.Consume(sim.User, costmodel.RevalFlowCheck)
	if e.Hits != rec.lastHits {
		rec.lastHits = e.Hits
		r.Rearms++
		r.eng.ScheduleArgAt(r.eng.Now()+r.IdleTimeout, r.expireFn, rec)
		return
	}
	r.CPU.Consume(sim.User, costmodel.RevalFlowEvict)
	if r.dp.FlowDel(rec.f) {
		r.Evicted++
	}
	r.freeRec(rec)
}

// newRec takes a record from the free list or allocates one.
func (r *WheelRevalidator) newRec() *flowRec {
	if n := len(r.free); n > 0 {
		rec := r.free[n-1]
		r.free = r.free[:n-1]
		return rec
	}
	return &flowRec{}
}

// freeRec recycles a record whose flow is no longer tracked.
func (r *WheelRevalidator) freeRec(rec *flowRec) {
	*rec = flowRec{}
	r.free = append(r.free, rec)
}
