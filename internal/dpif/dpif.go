// Package dpif is the datapath-provider seam: the analog of OVS's dpif
// layer, through which ovs-vswitchd drives every datapath implementation
// (dpif-netdev for userspace/AF_XDP, dpif-netlink for the kernel module and
// its eBPF re-implementation) without knowing which one it is talking to.
// This seam is what let the paper swap datapaths under an unchanged control
// plane (Tables 2/4, Figures 8-12); here it lets vswitchd, the experiment
// testbeds, and ovsctl select a datapath by registry name.
//
// Providers register themselves under a type name ("netdev", "netlink",
// "ebpf") and are opened via Open. The interface covers port management,
// direct flow manipulation (put/del/dump/flush), packet execution, upcall
// registration, and the hit/missed/lost/flows statistics `ovs-dpctl show`
// reports.
package dpif

import (
	"ovsxdp/internal/conntrack"
	"ovsxdp/internal/dpcls"
	"ovsxdp/internal/flow"
	"ovsxdp/internal/ofproto"
	"ovsxdp/internal/packet"
	"ovsxdp/internal/perf"
)

// Port is the dpif view of a datapath port: enough identity for the
// control plane to attach, detach, and name it. Concrete providers accept
// richer implementations (core.Port for netdev, TxPort everywhere).
type Port interface {
	ID() uint32
	Name() string
}

// TxPort is a provider-independent output-only port: packets the datapath
// sends to it are handed to Deliver. The netlink provider uses it as its
// native port type (the kernel datapath's output vports are transmit
// functions); the netdev provider wraps it into a core.Port. It is what
// testbeds and the conformance suite use to observe delivery identically
// across providers.
type TxPort struct {
	PortID   uint32
	PortName string
	Deliver  func(*packet.Packet)
}

// ID implements Port.
func (p TxPort) ID() uint32 { return p.PortID }

// Name implements Port.
func (p TxPort) Name() string { return p.PortName }

// UpcallFunc translates a missed flow key into a megaflow. Its signature
// matches ofproto's (*Pipeline).Translate, so the pipeline's translator can
// be registered directly; wrappers can count or veto upcalls.
type UpcallFunc func(key flow.Key) (ofproto.Megaflow, error)

// Flow is one installed datapath megaflow as returned by FlowDump. Entry is
// the live classifier entry (its hit counter updates in place); the owner
// token identifies the classifier shard holding it, so FlowDel can target
// the right shard (per-PMD classifiers for netdev, the single kernel table
// for netlink).
type Flow struct {
	Entry *dpcls.Entry
	owner any
}

// Stats is the unified datapath statistics block, the numbers `ovs-dpctl
// show` prints: cache hits, misses that upcalled to the slow path, packets
// lost (dropped) in the datapath, and the installed megaflow count. The
// three drop classes are disjoint: Lost is datapath drops (policy, dead
// port, meter), UpcallQueueDrops is slow-path admission refusals, and
// MalformedDrops is parse failures; with Processed counting fast-path
// passes, Processed == delivered + Lost + UpcallQueueDrops +
// MalformedDrops when no recirculation is in play.
type Stats struct {
	Hits   uint64
	Missed uint64
	Lost   uint64
	// SMCHits is the signature-match-cache share of Hits. It is always
	// zero for the kernel-path providers (no SMC) and for netdev with the
	// SMC disabled, so cross-provider comparisons normalize it away.
	SMCHits uint64
	// UpcallQueueDrops counts packets refused because the bounded upcall
	// queue was full — the kernel's ENOBUFS on the per-port netlink
	// socket, and its netdev analog.
	UpcallQueueDrops uint64
	// MalformedDrops counts slow-path parse failures (the flow
	// extractor's EINVAL), split from policy drops.
	MalformedDrops uint64
	// Processed counts fast-path packet passes, including recirculation.
	Processed uint64
	Flows     int

	// Hardware-offload counters (other_config:hw-offload); all stay zero
	// on the kernel-path providers, whose simulated NICs expose no flow
	// table, and on netdev with offload off. OffloadInstalls ==
	// OffloadEvictions + OffloadUninstalls + OffloadLive at every snapshot
	// (the conservation ledger).
	OffloadHits       uint64
	OffloadInstalls   uint64
	OffloadEvictions  uint64
	OffloadUninstalls uint64
	OffloadRefused    uint64
	OffloadReadbacks  uint64
	OffloadLive       int

	// Conntrack counters, straight from the provider's tracker; all stay
	// zero while no flow carries a ct() action. CtTableFull counts
	// commits refused at a zone's hard limit, CtEarlyDrops embryonic
	// connections shed in the soft band, CtEvictions LRU emergency
	// evictions (including NAT-port-exhaustion evictions), and
	// CtNATExhausted commits refused with a NAT port range fully held
	// by established connections.
	CtConns        int
	CtCreated      uint64
	CtExpired      uint64
	CtEarlyDrops   uint64
	CtEvictions    uint64
	CtTableFull    uint64
	CtNATExhausted uint64
	// ConnsPerZone lists live connections per nonempty zone, sorted by
	// zone (nil when the tracker is idle). Note the slice makes Stats
	// non-comparable: compare snapshots with reflect.DeepEqual.
	//
	// It also makes Stats a shallow-copy hazard: assigning a Stats value
	// copies the slice header, so two copies share one backing array and a
	// mutation through either is visible in both. Every Stats() provider
	// returns a freshly built slice (never the tracker's own storage), and
	// anything that retains or re-exports a snapshot — the api view layer,
	// the HTTP control plane — must go through Clone.
	ConnsPerZone []CtZoneConns
}

// Clone returns a deep copy of the snapshot: the ConnsPerZone backing
// array is duplicated, so mutating the clone (or the original) can never
// reach the other. Use it whenever a Stats value is retained past the
// call that produced it or handed to code outside this package's control.
func (s Stats) Clone() Stats {
	c := s
	if s.ConnsPerZone != nil {
		c.ConnsPerZone = make([]CtZoneConns, len(s.ConnsPerZone))
		copy(c.ConnsPerZone, s.ConnsPerZone)
	}
	return c
}

// CtZoneConns is one zone's live-connection count in Stats.
type CtZoneConns struct {
	Zone  uint16
	Conns int
}

// fillCtStats copies the tracker's counters into a Stats snapshot; shared
// by every provider so the conntrack surface cannot drift between them.
func fillCtStats(s *Stats, t *conntrack.Table) {
	c := t.Counters()
	s.CtConns = c.Conns
	s.CtCreated = c.Created
	s.CtExpired = c.Expired
	s.CtEarlyDrops = c.EarlyDrops
	s.CtEvictions = c.Evicted
	s.CtTableFull = c.TableFull
	s.CtNATExhausted = c.NATExhausted
	for _, z := range t.ConnsPerZone(nil) {
		s.ConnsPerZone = append(s.ConnsPerZone, CtZoneConns{Zone: z.Zone, Conns: z.Conns})
	}
}

// Dpif is one open datapath. All providers implement identical observable
// semantics (the conformance suite in this package enforces it); they
// differ only in where the work happens and what it costs.
type Dpif interface {
	// Type returns the registry type name ("netdev", "netlink", "ebpf").
	Type() string

	// PortAdd attaches a port. Providers reject port kinds they cannot
	// drive (the netlink provider needs a transmit function; netdev needs
	// a core.Port or a TxPort to wrap).
	PortAdd(p Port) error
	// PortDel detaches the port with the given datapath port number.
	PortDel(id uint32) error
	// PortCount returns the number of attached ports.
	PortCount() int

	// FlowPut installs a datapath flow directly, bypassing the upcall
	// path (ovs-dpctl add-flow). Providers apply their own installation
	// discipline: the ebpf flavor narrows every mask to exact-match.
	FlowPut(key flow.Key, mask flow.Mask, actions any)
	// FlowDel removes a previously dumped flow, reporting whether it was
	// still installed.
	FlowDel(f Flow) bool
	// FlowDump snapshots the installed megaflows across all classifier
	// shards.
	FlowDump() []Flow
	// FlowDumpInto is the allocation-free dump: buf is truncated and the
	// installed flows appended, so a caller that dumps repeatedly (the
	// revalidator's sweep) reuses one buffer instead of materializing a
	// fresh slice per pass. FlowDump() is FlowDumpInto(nil).
	FlowDumpInto(buf []Flow) []Flow
	// FlowFlush drops every installed flow (revalidation after rule
	// changes, daemon restart).
	FlowFlush()
	// SetFlowHook registers (or, with nil, clears) a notification called
	// for every freshly installed datapath flow, however it was installed
	// (upcall, FlowPut, negative flow). Replacements that update an
	// existing flow in place do not re-fire it. This is the seam the
	// incremental revalidator hangs per-flow expiry timers on, instead of
	// discovering new flows by full-table dumps.
	SetFlowHook(fn func(Flow))

	// Execute runs one packet through the datapath fast path, exactly as
	// if it had arrived on p.InPort (ovs-dpctl execute; also the
	// conformance suite's packet driver).
	Execute(p *packet.Packet)

	// SetUpcall registers the slow-path handler consulted on flow-table
	// misses. When never called, the provider translates against the
	// pipeline it was opened with.
	SetUpcall(fn UpcallFunc)

	// SetConfig applies ovs-vsctl-style other_config key/value pairs with
	// typed parsing: unknown keys and malformed values are errors and
	// leave the configuration unchanged. Keys that only reach the
	// userspace datapath (pmd-*, emc-*, smc-*, ...) are accepted but
	// inert on the kernel-path providers, as in OVS. Keys are applied in
	// sorted order, so a SetConfig call is deterministic.
	SetConfig(kv map[string]string) error
	// GetConfig reports the full configuration: every supported key with
	// its current (or default) value.
	GetConfig() map[string]string

	// PmdRxqShow renders the rxq-to-thread assignment with per-queue load
	// shares (`ovs-appctl dpif-netdev/pmd-rxq-show`). Kernel-path
	// providers report their softirq-side equivalent: which softirq
	// contexts have been feeding the datapath and their packet shares.
	PmdRxqShow() string

	// Stats reports the unified datapath counters.
	Stats() Stats

	// PerfStats returns one performance-counter block per packet-processing
	// thread: per-PMD for netdev, the softirq context for netlink/ebpf
	// (`ovs-appctl dpif-netdev/pmd-perf-show`).
	PerfStats() []perf.ThreadStats

	// EnableTrace arms packet-lifecycle tracing on every processing thread,
	// keeping the last n lifecycles per thread; n <= 0 disables it.
	EnableTrace(n int)
}
