package dpif

import (
	"fmt"
	"sort"

	"ovsxdp/internal/ofproto"
	"ovsxdp/internal/sim"
)

// UpcallConfig bounds and paces the slow path, provider-independently:
// QueueCap bounds the queue of packets awaiting translation (zero keeps
// the legacy unbounded inline upcall), ServiceInterval is the handler's
// per-upcall service time, and RetryBase/MaxRetries govern the
// exponential-backoff retry of transient translation faults.
type UpcallConfig struct {
	QueueCap        int
	ServiceInterval sim.Time
	RetryBase       sim.Time
	MaxRetries      int
}

// CacheConfig tunes the userspace cache hierarchy, provider-independently
// expressed so callers need not import core: SMC enables the signature
// match cache (smc-enable=true), SMCEntries overrides its capacity (zero
// uses the OVS default), EMCInsertInvProb is the inverse EMC insertion
// probability (emc-insert-inv-prob; <= 1 inserts always), and BatchDedup
// enables batch-aware classification. The kernel-path providers (netlink,
// ebpf) have no EMC or SMC and ignore it, exactly as the real options table
// only reaches dpif-netdev.
type CacheConfig struct {
	SMC              bool
	SMCEntries       int
	EMCInsertInvProb int
	BatchDedup       bool
}

// Config parameterizes Open. Options carries provider-specific tunables
// (core.Options for the netdev provider); providers that take none ignore
// it. Upcall applies to every provider; Cache applies to providers with a
// userspace cache hierarchy.
type Config struct {
	Eng      *sim.Engine
	Pipeline *ofproto.Pipeline
	Options  any
	Upcall   UpcallConfig
	Cache    CacheConfig
	// Other carries ovs-vsctl-style other_config key/value pairs, applied
	// through SetConfig after the provider is built — the preferred
	// configuration surface; Options/Upcall/Cache remain as compatibility
	// shims. A bad key or value fails Open.
	Other map[string]string
}

// Factory builds one provider instance.
type Factory func(cfg Config) (Dpif, error)

var registry = map[string]Factory{}

// Register adds a provider under a type name. Providers register themselves
// from init; registering a duplicate name panics, as it can only be a
// programming error.
func Register(name string, f Factory) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("dpif: duplicate provider %q", name))
	}
	registry[name] = f
}

// Open builds a datapath of the named type and applies cfg.Other through
// its SetConfig.
func Open(name string, cfg Config) (Dpif, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("dpif: unknown datapath type %q (have %v)", name, Types())
	}
	d, err := f(cfg)
	if err != nil {
		return nil, err
	}
	if len(cfg.Other) > 0 {
		if err := d.SetConfig(cfg.Other); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// Types lists the registered provider names, sorted.
func Types() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
