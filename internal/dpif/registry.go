package dpif

import (
	"fmt"
	"sort"

	"ovsxdp/internal/ofproto"
	"ovsxdp/internal/sim"
)

// Config parameterizes Open. Options carries provider-specific tunables
// (core.Options for the netdev provider); providers that take none ignore
// it.
type Config struct {
	Eng      *sim.Engine
	Pipeline *ofproto.Pipeline
	Options  any
}

// Factory builds one provider instance.
type Factory func(cfg Config) (Dpif, error)

var registry = map[string]Factory{}

// Register adds a provider under a type name. Providers register themselves
// from init; registering a duplicate name panics, as it can only be a
// programming error.
func Register(name string, f Factory) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("dpif: duplicate provider %q", name))
	}
	registry[name] = f
}

// Open builds a datapath of the named type.
func Open(name string, cfg Config) (Dpif, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("dpif: unknown datapath type %q (have %v)", name, Types())
	}
	return f(cfg)
}

// Types lists the registered provider names, sorted.
func Types() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
