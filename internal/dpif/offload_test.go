package dpif_test

// Tests for the hardware flow-offload surface: the offload engine must
// keep every provider's observable flow lifecycle identical (the keys are
// inert on the kernel paths), the FlowDel invalidation pass must purge the
// NIC table together with the EMC and SMC, and the counter readback must
// keep hardware-hot flows out of the revalidator's idle eviction.

import (
	"reflect"
	"testing"

	"ovsxdp/internal/core"
	"ovsxdp/internal/dpif"
	"ovsxdp/internal/faultinject"
	"ovsxdp/internal/flow"
	"ovsxdp/internal/ofproto"
	"ovsxdp/internal/packet"
	"ovsxdp/internal/sim"
)

// offloadConfig is the aggressive test tuning: any flow with one hit per
// 100us readback interval classes as an elephant, so a handful of packets
// offloads a flow.
var offloadTestConfig = map[string]string{
	"hw-offload":              "true",
	"hw-offload-table-size":   "8",
	"hw-offload-elephant-pps": "1",
	"hw-offload-readback-us":  "100",
}

// openOffload builds a provider with one ingress and one counting sink and
// the offload keys applied.
func openOffload(t *testing.T, name string, mutate func(*dpif.Config)) (*sim.Engine, dpif.Dpif, *uint64) {
	t.Helper()
	eng := sim.NewEngine(1)
	cfg := dpif.Config{Eng: eng, Pipeline: forwardPipeline()}
	if mutate != nil {
		mutate(&cfg)
	}
	d, err := dpif.Open(name, cfg)
	if err != nil {
		t.Fatalf("Open(%q): %v", name, err)
	}
	if err := d.SetConfig(offloadTestConfig); err != nil {
		t.Fatalf("%s: SetConfig: %v", name, err)
	}
	delivered := new(uint64)
	if err := d.PortAdd(dpif.TxPort{PortID: 1, PortName: "p0",
		Deliver: func(*packet.Packet) {}}); err != nil {
		t.Fatal(err)
	}
	if err := d.PortAdd(dpif.TxPort{PortID: 2, PortName: "p1",
		Deliver: func(*packet.Packet) { *delivered++ }}); err != nil {
		t.Fatal(err)
	}
	return eng, d, delivered
}

// offloadObservation is what a consumer sees from the shared offload
// scenario; the Offload* stats are normalized away for the cross-provider
// comparison (only netdev has a NIC flow table).
type offloadObservation struct {
	WarmMissed   uint64
	WarmFlows    int
	Delivered    uint64
	DelRemoved   bool
	AfterDel     uint64 // Missed after the re-execute: must take a fresh upcall
	FinalFlows   int
	FinalMissed  uint64
	FlushedLive  int    // offload Live after FlowFlush (always 0)
	HWHits       uint64 // zeroed before the cross-provider comparison
	FinalLostAny bool
}

// runOffloadScenario drives one provider: warm a flow across several
// readback intervals (offloading it on netdev), delete it mid-traffic,
// and require the post-delete packet to take a fresh upcall — stale
// hardware rules, EMC entries, and SMC signatures must all be gone in the
// same invalidation pass.
func runOffloadScenario(t *testing.T, name string, mutate func(*dpif.Config)) offloadObservation {
	t.Helper()
	eng, d, delivered := openOffload(t, name, mutate)
	var obs offloadObservation

	// Warm: packets spread over 5 readback intervals; on netdev the flow
	// is marked after the first tick and offloaded on the next software
	// hit.
	for i := 0; i < 10; i++ {
		d.Execute(scenarioPacket())
		eng.RunUntil(eng.Now() + 50*sim.Microsecond)
	}
	st := d.Stats()
	obs.WarmMissed = st.Missed
	obs.WarmFlows = st.Flows
	obs.HWHits = st.OffloadHits

	// Delete the megaflow while its hardware rule is hot.
	flows := d.FlowDump()
	if len(flows) != 1 {
		t.Fatalf("%s: dumped %d flows, want 1", name, len(flows))
	}
	obs.DelRemoved = d.FlowDel(flows[0])
	if live := d.Stats().OffloadLive; live != 0 {
		t.Errorf("%s: %d hardware rules survived FlowDel", name, live)
	}

	// The next packet must re-upcall: no cache level — hardware, EMC, or
	// SMC — may still serve the deleted flow.
	d.Execute(scenarioPacket())
	obs.AfterDel = d.Stats().Missed

	// Re-warm and flush everything: the hardware table must empty too.
	for i := 0; i < 6; i++ {
		d.Execute(scenarioPacket())
		eng.RunUntil(eng.Now() + 50*sim.Microsecond)
	}
	d.FlowFlush()
	obs.FlushedLive = d.Stats().OffloadLive
	d.Execute(scenarioPacket())

	final := d.Stats()
	obs.FinalFlows = final.Flows
	obs.FinalMissed = final.Missed
	obs.FinalLostAny = final.Lost > 0
	obs.Delivered = *delivered
	return obs
}

// TestOffloadConformanceAcrossProviders applies the hw-offload keys to all
// three providers and requires the identical observable flow lifecycle:
// on netdev packets short-circuit through the NIC table, on the kernel
// paths the keys are inert, but deliveries, upcall counts, and the
// FlowDel/FlowFlush semantics must not differ.
func TestOffloadConformanceAcrossProviders(t *testing.T) {
	types := dpif.Types()
	obs := make(map[string]offloadObservation, len(types))
	for _, name := range types {
		obs[name] = runOffloadScenario(t, name, nil)
	}
	ref := obs["netdev"]
	if ref.WarmMissed != 1 || ref.AfterDel != 2 || ref.FinalMissed != 3 {
		t.Errorf("netdev upcall ladder = %d/%d/%d, want 1/2/3 (delete and flush must each force a fresh upcall)",
			ref.WarmMissed, ref.AfterDel, ref.FinalMissed)
	}
	if ref.Delivered != 18 || ref.FinalLostAny {
		t.Errorf("netdev delivered %d (lost=%v), want all 18 packets delivered",
			ref.Delivered, ref.FinalLostAny)
	}
	// The scenario must genuinely exercise the NIC table on netdev and stay
	// inert on the kernel paths; only then is the DeepEqual meaningful.
	if ref.HWHits == 0 {
		t.Error("netdev forwarded nothing in hardware: the scenario never offloaded")
	}
	for _, name := range types {
		if name != "netdev" && obs[name].HWHits != 0 {
			t.Errorf("provider %q reported %d hardware hits; hw-offload keys must be inert", name, obs[name].HWHits)
		}
	}
	normalize := func(o offloadObservation) offloadObservation { o.HWHits = 0; return o }
	for _, name := range types {
		if !reflect.DeepEqual(normalize(obs[name]), normalize(ref)) {
			t.Errorf("provider %q diverges from netdev under hw-offload:\n  %q: %+v\n  netdev: %+v",
				name, name, obs[name], ref)
		}
	}
}

// TestOffloadConformanceWithSMC reruns the shared offload scenario with
// the EMC off and the SMC on: the FlowDel pass must purge the NIC rule,
// the SMC signature, and (trivially) the EMC together.
func TestOffloadConformanceWithSMC(t *testing.T) {
	withSMC := func(cfg *dpif.Config) {
		opts := core.DefaultOptions()
		opts.EMC = false
		cfg.Options = opts
		cfg.Cache = dpif.CacheConfig{SMC: true}
	}
	types := dpif.Types()
	obs := make(map[string]offloadObservation, len(types))
	for _, name := range types {
		obs[name] = runOffloadScenario(t, name, withSMC)
	}
	ref := obs["netdev"]
	if ref.AfterDel != 2 {
		t.Errorf("netdev Missed after FlowDel = %d, want 2 (stale SMC or hardware rule served the deleted flow)", ref.AfterDel)
	}
	if ref.HWHits == 0 {
		t.Error("netdev forwarded nothing in hardware under SMC config")
	}
	normalize := func(o offloadObservation) offloadObservation { o.HWHits = 0; return o }
	for _, name := range types {
		if !reflect.DeepEqual(normalize(obs[name]), normalize(ref)) {
			t.Errorf("provider %q diverges from netdev under hw-offload+SMC:\n  %q: %+v\n  netdev: %+v",
				name, name, obs[name], ref)
		}
	}
}

// TestOffloadShortCircuitsSoftwarePath checks the netdev fast path: once a
// flow is offloaded, further packets are hardware hits — near-zero PMD
// cost, no software-cache traffic — and the stats ledger stays exact.
func TestOffloadShortCircuitsSoftwarePath(t *testing.T) {
	eng, d, delivered := openOffload(t, "netdev", nil)

	// Warm: the upcall installs the megaflow (its triggering packet doesn't
	// count as a cache hit), a second packet gives the readback a nonzero
	// hit delta, the tick marks the flow, and the next software hit
	// installs the hardware rule.
	d.Execute(scenarioPacket())
	d.Execute(scenarioPacket())
	eng.RunUntil(150 * sim.Microsecond)
	d.Execute(scenarioPacket())
	if live := d.Stats().OffloadLive; live != 1 {
		t.Fatalf("hardware rules live = %d, want 1", live)
	}

	nd := d.(*dpif.Netdev)
	pmd := nd.Datapath().PMDs()[0]
	busyBefore := pmd.CPU.BusyTotal()
	hitsBefore := d.Stats().Hits
	for i := 0; i < 100; i++ {
		d.Execute(scenarioPacket())
	}
	st := d.Stats()
	if st.OffloadHits != 100 {
		t.Fatalf("hardware hits = %d, want 100", st.OffloadHits)
	}
	if st.Hits != hitsBefore {
		t.Errorf("software caches saw %d hits during hardware forwarding", st.Hits-hitsBefore)
	}
	// 100 packets at the near-zero offload cost: orders of magnitude under
	// the ~100ns software path.
	if perPkt := (pmd.CPU.BusyTotal() - busyBefore) / 100; perPkt > 5 {
		t.Errorf("offloaded packet costs %dns on the PMD, want <= 5", perPkt)
	}
	if *delivered != 103 {
		t.Errorf("delivered = %d, want 103", *delivered)
	}
	if st.OffloadInstalls != st.OffloadEvictions+st.OffloadUninstalls+uint64(st.OffloadLive) {
		t.Errorf("ledger broken: %+v", st)
	}
}

// TestOffloadedHotPathZeroAlloc is the allocation gate on the hardware
// fast path: once a flow is resident in the NIC table, forwarding a packet
// (extract, exact-match lookup, liveness check, rewrite, transmit) must
// not touch the heap.
func TestOffloadedHotPathZeroAlloc(t *testing.T) {
	eng, d, _ := openOffload(t, "netdev", nil)
	d.Execute(scenarioPacket())
	d.Execute(scenarioPacket())
	eng.RunUntil(150 * sim.Microsecond)
	d.Execute(scenarioPacket())
	if d.Stats().OffloadLive != 1 {
		t.Fatal("flow not offloaded")
	}

	p := scenarioPacket()
	avg := testing.AllocsPerRun(1000, func() { d.Execute(p) })
	if avg != 0 {
		t.Fatalf("offloaded hot path allocates: %.2f allocs/packet (want 0)", avg)
	}
	if st := d.Stats(); st.OffloadHits < 1000 {
		t.Fatalf("only %d hardware hits during the measured loop; the gate measured the wrong path", st.OffloadHits)
	}
}

// TestOffloadReadbackKeepsFlowsAlive is the revalidator-aliveness gate: a
// flow whose traffic moves entirely into hardware must keep looking alive
// (the readback merges hardware hits into its megaflow stats), while a
// genuinely idle flow still expires on time.
func TestOffloadReadbackKeepsFlowsAlive(t *testing.T) {
	eng, d, _ := openOffload(t, "netdev", nil)
	const idle = 2 * sim.Millisecond
	r := dpif.StartWheelRevalidator(eng, d, idle)

	// Offload the flow: upcall, one counted hit, tick, installing hit.
	d.Execute(scenarioPacket())
	d.Execute(scenarioPacket())
	eng.RunUntil(150 * sim.Microsecond)
	d.Execute(scenarioPacket())
	if d.Stats().OffloadLive != 1 {
		t.Fatal("flow not offloaded")
	}

	// Hardware-only traffic for 5 idle timeouts: the megaflow must survive
	// every revalidator deadline purely on merged hardware hits.
	stop := eng.Now() + 5*idle
	var pump func()
	pump = func() {
		if eng.Now() >= stop {
			return
		}
		d.Execute(scenarioPacket())
		eng.Schedule(100*sim.Microsecond, pump)
	}
	pump()
	eng.RunUntil(stop)
	if evicted := r.Evicted; evicted != 0 {
		t.Fatalf("revalidator evicted %d flows while hardware-hot", evicted)
	}
	st := d.Stats()
	if st.Flows != 1 || st.Missed != 1 {
		t.Fatalf("flows=%d missed=%d after hardware-only window, want 1/1 (idle eviction hit an offloaded flow)",
			st.Flows, st.Missed)
	}
	if st.OffloadReadbacks == 0 {
		t.Fatal("no readback sweeps ran")
	}

	// Stop traffic: with hardware quiet too, the flow must expire and its
	// hardware rule must be purged with it.
	eng.RunUntil(stop + 4*idle)
	st = d.Stats()
	if st.Flows != 0 || st.OffloadLive != 0 {
		t.Fatalf("flows=%d hw-live=%d after going idle, want 0/0", st.Flows, st.OffloadLive)
	}
	r.Stop()
}

// TestOffloadDisableFallsBackToSoftware checks runtime disable: rules are
// uninstalled, traffic keeps flowing through the software hierarchy, and
// the ledger closes.
func TestOffloadDisableFallsBackToSoftware(t *testing.T) {
	eng, d, delivered := openOffload(t, "netdev", nil)
	d.Execute(scenarioPacket())
	d.Execute(scenarioPacket())
	eng.RunUntil(150 * sim.Microsecond)
	d.Execute(scenarioPacket())
	if d.Stats().OffloadLive != 1 {
		t.Fatal("flow not offloaded")
	}
	if err := d.SetConfig(map[string]string{"hw-offload": "false"}); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.OffloadLive != 0 {
		t.Fatalf("hardware rules live after disable = %d", st.OffloadLive)
	}
	hw := st.OffloadHits
	d.Execute(scenarioPacket())
	st = d.Stats()
	if st.OffloadHits != hw {
		t.Fatal("hardware forwarded a packet while disabled")
	}
	if *delivered != 4 {
		t.Fatalf("delivered = %d, want 4 (software fallback must forward)", *delivered)
	}
	if st.OffloadInstalls != st.OffloadEvictions+st.OffloadUninstalls+uint64(st.OffloadLive) {
		t.Errorf("ledger broken after disable: %+v", st)
	}
}

// TestOffloadTablePressureFault clamps the hardware table mid-run through
// the fault injector: clamped-out rules fall back to software (no loss, no
// stale forwarding), and the install/evict ledger stays exact throughout.
func TestOffloadTablePressureFault(t *testing.T) {
	// A second ingress rule so two distinct megaflows compete for slots.
	eng, d, delivered := openOffload(t, "netdev", func(cfg *dpif.Config) {
		cfg.Pipeline.AddRule(&ofproto.Rule{TableID: 0, Priority: 1,
			Match: ofproto.NewMatch(flow.Fields{InPort: 3},
				flow.NewMaskBuilder().InPort().Build()),
			Actions: []ofproto.Action{ofproto.Output(2)}})
	})
	if err := d.PortAdd(dpif.TxPort{PortID: 3, PortName: "p2",
		Deliver: func(*packet.Packet) {}}); err != nil {
		t.Fatal(err)
	}
	nd := d.(*dpif.Netdev)
	dp := nd.Datapath()
	send := func(port uint32) {
		p := scenarioPacket()
		p.InPort = port
		d.Execute(p)
	}

	// Offload both flows, then clamp the table to one slot beneath them.
	send(1)
	send(3)
	send(1)
	send(3)
	eng.RunUntil(150 * sim.Microsecond)
	send(1)
	send(3)
	if live := d.Stats().OffloadLive; live != 2 {
		t.Fatalf("live = %d, want 2", live)
	}

	inj := faultinject.New(eng)
	inj.Window(faultinject.KindOffloadTablePressure, "nic0",
		200*sim.Microsecond, 300*sim.Microsecond, func(active bool) {
			if active {
				dp.OffloadClamp(1)
			} else {
				dp.OffloadClamp(0) // window closes: clamp released
			}
		})

	eng.RunUntil(250 * sim.Microsecond)
	st := d.Stats()
	if st.OffloadLive != 1 || st.OffloadEvictions != 1 {
		t.Fatalf("live=%d evictions=%d under clamp, want 1/1", st.OffloadLive, st.OffloadEvictions)
	}
	// Both flows still forward: one in hardware, the shed one in software.
	send(1)
	send(3)
	if *delivered != 8 {
		t.Fatalf("delivered = %d, want 8", *delivered)
	}
	st = d.Stats()
	if st.OffloadInstalls != st.OffloadEvictions+st.OffloadUninstalls+uint64(st.OffloadLive) {
		t.Errorf("ledger broken under clamp: %+v", st)
	}
	if inj.Windows(faultinject.KindOffloadTablePressure) != 1 {
		t.Error("fault window not recorded")
	}
}
