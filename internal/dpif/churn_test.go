package dpif

// Regression tests for megaflow churn: targeted cache invalidation on
// FlowDel (one delete must not flush unrelated EMC entries), in-place
// replacement (a replaced flow's new actions must take effect on the next
// cached hit), the install/evict conservation ledger under the wheel
// revalidator, and the zero-allocation bound on an idle revalidator sweep.

import (
	"testing"

	"ovsxdp/internal/flow"
	"ovsxdp/internal/ofproto"
	"ovsxdp/internal/packet"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/sim"
)

// churnPacket builds a UDP packet from srcIP to a fixed destination, with
// dstPort selecting the pipeline rule it matches.
func churnPacket(srcIP hdr.IP4, dstPort uint16) *packet.Packet {
	frame := hdr.NewBuilder().
		Eth(hdr.MAC{0x02, 0xaa, 0, 0, 0, 1}, hdr.MAC{0x02, 0xbb, 0, 0, 0, 1}).
		IPv4H(srcIP, hdr.MakeIP4(10, 0, 0, 2), 64).
		UDPH(1000, dstPort).PadTo(64).Build()
	p := packet.New(frame)
	p.InPort = 1
	return p
}

// churnUpcall is a slow path that mints one exact-ish megaflow per
// five-tuple, so every distinct source IP installs a distinct flow.
func churnUpcall(outPort uint32) UpcallFunc {
	mask := flow.NewMaskBuilder().InPort().EthType().IPProto().
		IP4Src(32).IP4Dst(32).TPSrc().TPDst().Build()
	return func(key flow.Key) (ofproto.Megaflow, error) {
		return ofproto.Megaflow{Mask: mask,
			Actions: []ofproto.DPAction{{Type: ofproto.DPOutput, Port: outPort}}}, nil
	}
}

// TestFlowDelPreservesUnrelatedEMCEntries is the headline bugfix
// regression: deleting one megaflow historically flushed the entire EMC,
// so every delete under churn cost every other flow its fast-path hit.
// Deleting flow B must leave flow A's EMC entry hitting.
func TestFlowDelPreservesUnrelatedEMCEntries(t *testing.T) {
	eng := sim.NewEngine(1)
	d, err := Open("netdev", Config{Eng: eng, Pipeline: revalPipeline()})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := d.PortAdd(TxPort{PortID: 2, PortName: "p2",
		Deliver: func(*packet.Packet) {}}); err != nil {
		t.Fatalf("PortAdd: %v", err)
	}
	d.SetUpcall(churnUpcall(2))
	nd := d.(*Netdev)

	pktA := func() *packet.Packet { return churnPacket(hdr.MakeIP4(10, 0, 0, 1), 2000) }
	pktB := func() *packet.Packet { return churnPacket(hdr.MakeIP4(10, 0, 0, 7), 2000) }

	d.Execute(pktA()) // miss: installs A's megaflow and EMC entry
	d.Execute(pktB()) // miss: installs B's megaflow and EMC entry
	d.Execute(pktA())
	d.Execute(pktB())
	if nd.dp.EMCHits != 2 {
		t.Fatalf("warmup EMC hits = %d, want 2", nd.dp.EMCHits)
	}

	// Delete B's megaflow (the one with zero... both have 1 hit; find B by
	// re-looking: B is whichever entry the second dump position holds is
	// not stable, so delete by matching the masked source IP).
	flows := d.FlowDump()
	if len(flows) != 2 {
		t.Fatalf("flows = %d, want 2", len(flows))
	}
	kB := flow.Extract(pktB())
	deleted := false
	for _, f := range flows {
		if f.Entry.MaskedKey == kB.Apply(f.Entry.Mask) {
			if !d.FlowDel(f) {
				t.Fatal("FlowDel(B) failed")
			}
			deleted = true
		}
	}
	if !deleted {
		t.Fatal("did not find B's megaflow in the dump")
	}

	// A's EMC entry must have survived the delete.
	d.Execute(pktA())
	if nd.dp.EMCHits != 3 {
		t.Errorf("EMC hits after unrelated delete = %d, want 3 (A's entry was evicted)", nd.dp.EMCHits)
	}
	// B's entry is dead: its next packet must miss the caches and upcall.
	upcallsBefore := nd.dp.Upcalls
	d.Execute(pktB())
	if nd.dp.Upcalls != upcallsBefore+1 {
		t.Errorf("deleted flow's packet did not upcall (upcalls %d -> %d)",
			upcallsBefore, nd.dp.Upcalls)
	}
}

// TestFlowPutReplacementUpdatesCachedActions: replacing a megaflow's
// actions via FlowPut must take effect on the very next cached (EMC) hit.
// Before the in-place-replacement fix, Insert allocated a fresh entry while
// the EMC kept the old pointer, so cached packets kept executing the old
// actions until the entry aged out.
func TestFlowPutReplacementUpdatesCachedActions(t *testing.T) {
	eng := sim.NewEngine(1)
	var got2, got3 int
	d, err := Open("netdev", Config{Eng: eng, Pipeline: revalPipeline()})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for _, p := range []struct {
		id    uint32
		count *int
	}{{2, &got2}, {3, &got3}} {
		count := p.count
		if err := d.PortAdd(TxPort{PortID: p.id, PortName: "p",
			Deliver: func(*packet.Packet) { *count++ }}); err != nil {
			t.Fatalf("PortAdd: %v", err)
		}
	}
	d.SetUpcall(churnUpcall(2))
	nd := d.(*Netdev)

	pkt := func() *packet.Packet { return churnPacket(hdr.MakeIP4(10, 9, 9, 9), 2000) }
	d.Execute(pkt()) // miss: install, actions -> port 2
	d.Execute(pkt()) // EMC hit -> port 2
	if got2 != 2 || got3 != 0 {
		t.Fatalf("warmup delivery = p2:%d p3:%d, want 2/0", got2, got3)
	}

	// Replace the flow's actions with output to port 3, same key and mask.
	flows := d.FlowDump()
	if len(flows) != 1 {
		t.Fatalf("flows = %d, want 1", len(flows))
	}
	e := flows[0].Entry
	d.FlowPut(e.MaskedKey, e.Mask,
		[]ofproto.DPAction{{Type: ofproto.DPOutput, Port: 3}})

	emcBefore := nd.dp.EMCHits
	d.Execute(pkt())
	if nd.dp.EMCHits != emcBefore+1 {
		t.Fatalf("replacement evicted the EMC entry (hits %d -> %d); want a cached hit with new actions",
			emcBefore, nd.dp.EMCHits)
	}
	if got3 != 1 || got2 != 2 {
		t.Errorf("post-replacement delivery = p2:%d p3:%d, want p2:2 p3:1 (cached hit ran stale actions)",
			got2, got3)
	}
}

// TestWheelRevalidatorConservationLedger checks, on every provider, that
// flows are conserved under install/expiry churn: every install the flow
// hook reported is eventually either evicted by the wheel revalidator or
// still live, and after a full drain nothing is live and nothing leaked.
func TestWheelRevalidatorConservationLedger(t *testing.T) {
	const nFlows = 50
	for _, name := range Types() {
		t.Run(name, func(t *testing.T) {
			eng := sim.NewEngine(1)
			d, err := Open(name, Config{Eng: eng, Pipeline: revalPipeline()})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			if err := d.PortAdd(TxPort{PortID: 2, PortName: "p2",
				Deliver: func(*packet.Packet) {}}); err != nil {
				t.Fatalf("PortAdd: %v", err)
			}
			d.SetUpcall(churnUpcall(2))

			r := StartWheelRevalidator(eng, d, 2*sim.Millisecond)
			for i := 0; i < nFlows; i++ {
				d.Execute(churnPacket(hdr.MakeIP4(10, 0, byte(i), 1), 2000))
			}
			if r.Installs != nFlows {
				t.Fatalf("Installs = %d, want %d (flow hook missed installs)", r.Installs, nFlows)
			}
			live := len(d.FlowDump())
			if live != nFlows {
				t.Fatalf("live flows = %d, want %d", live, nFlows)
			}
			if r.Installs != r.Evicted+uint64(live) {
				t.Fatalf("mid-run ledger broken: installs %d != evicted %d + live %d",
					r.Installs, r.Evicted, live)
			}

			// All flows idle: one timeout later everything must be drained.
			eng.RunUntil(10 * sim.Millisecond)
			if got := len(d.FlowDump()); got != 0 {
				t.Errorf("drain incomplete: %d flows live", got)
			}
			if r.Evicted != nFlows {
				t.Errorf("Evicted = %d, want %d", r.Evicted, nFlows)
			}
			if r.Installs != r.Evicted {
				t.Errorf("final ledger broken: installs %d != evicted %d", r.Installs, r.Evicted)
			}
			if r.CPU.BusyTotal() == 0 {
				t.Error("revalidator CPU consumed no time (duty cycle unmeasurable)")
			}
		})
	}
}

// TestWheelRevalidatorKeepsActiveFlows: a flow that keeps hitting is
// re-armed, not evicted; its deadline work is bounded per timeout, not per
// packet.
func TestWheelRevalidatorKeepsActiveFlows(t *testing.T) {
	eng, d := revalDpif(t, "netlink")
	r := StartWheelRevalidator(eng, d, 2*sim.Millisecond)
	var tick func()
	tick = func() {
		d.Execute(revalPacket())
		eng.Schedule(sim.Millisecond, tick)
	}
	eng.Schedule(0, tick)
	eng.RunUntil(20 * sim.Millisecond)
	if got := len(d.FlowDump()); got != 1 {
		t.Fatalf("flows = %d, want 1", got)
	}
	if r.Evicted != 0 {
		t.Errorf("active flow evicted %d times", r.Evicted)
	}
	if r.Rearms == 0 {
		t.Error("active flow never re-armed")
	}

	// A stopped revalidator never touches the datapath again, and stopping
	// twice is harmless. (Idle eviction itself is covered by the
	// conservation ledger test.)
	r.Stop()
	if r.Running() {
		t.Error("Running() after Stop")
	}
	r.Stop() // idempotent
	flowsAt := len(d.FlowDump())
	eng.RunUntil(60 * sim.Millisecond)
	if got := len(d.FlowDump()); got != flowsAt {
		t.Errorf("stopped revalidator changed the datapath: %d -> %d flows", flowsAt, got)
	}
}

// TestRevalidatorIdleSweepZeroAlloc: a sweep over a warm table that evicts
// nothing must not allocate — the dump buffer, tracking map, and timer
// rearm are all reused. This is the bound that makes large-table sweeps a
// CPU cost, not a GC cost.
func TestRevalidatorIdleSweepZeroAlloc(t *testing.T) {
	eng := sim.NewEngine(1)
	d, err := Open("netdev", Config{Eng: eng, Pipeline: revalPipeline()})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := d.PortAdd(TxPort{PortID: 2, PortName: "p2",
		Deliver: func(*packet.Packet) {}}); err != nil {
		t.Fatalf("PortAdd: %v", err)
	}
	d.SetUpcall(churnUpcall(2))
	for i := 0; i < 200; i++ {
		d.Execute(churnPacket(hdr.MakeIP4(10, 1, byte(i), 1), 2000))
	}

	interval := sim.Millisecond
	r := StartRevalidator(eng, d, interval, 1<<30) // never evicts
	// Warm: several sweeps populate the tracking map and dump buffer.
	now := 5 * interval
	eng.RunUntil(now)
	if r.Sweeps < 5 {
		t.Fatalf("warmup sweeps = %d", r.Sweeps)
	}

	avg := testing.AllocsPerRun(50, func() {
		now += interval
		eng.RunUntil(now)
	})
	if avg != 0 {
		t.Errorf("idle sweep allocates: %.2f allocs/sweep (want 0)", avg)
	}
	if got := len(d.FlowDump()); got != 200 {
		t.Errorf("idle sweeps changed the table: %d flows", got)
	}
}
