package dpif

import "testing"

// TestStatsCloneDoesNotAliasConnsPerZone is the regression test for the
// shallow-copy hazard Stats documents: a plain assignment shares the
// ConnsPerZone backing array, so Clone must duplicate it — otherwise a
// retained snapshot (the api view layer, the HTTP control plane) silently
// mutates when the provider refreshes its own copy.
func TestStatsCloneDoesNotAliasConnsPerZone(t *testing.T) {
	orig := Stats{
		Hits:    7,
		CtConns: 3,
		ConnsPerZone: []CtZoneConns{
			{Zone: 1, Conns: 2},
			{Zone: 9, Conns: 1},
		},
	}

	clone := orig.Clone()
	shallow := orig // the hazard Clone exists to avoid

	orig.ConnsPerZone[0].Conns = 999

	if shallow.ConnsPerZone[0].Conns != 999 {
		t.Fatal("test premise broken: shallow copy no longer aliases — Stats layout changed?")
	}
	if got := clone.ConnsPerZone[0].Conns; got != 2 {
		t.Fatalf("Clone aliases ConnsPerZone: mutation of the original leaked through (got %d, want 2)", got)
	}
	if clone.Hits != 7 || clone.CtConns != 3 {
		t.Fatal("Clone dropped scalar fields")
	}
}

// TestStatsCloneNil pins that a nil slice stays nil (no spurious empty
// allocation, so reflect.DeepEqual comparisons of idle snapshots hold).
func TestStatsCloneNil(t *testing.T) {
	var s Stats
	if c := s.Clone(); c.ConnsPerZone != nil {
		t.Fatal("Clone of nil ConnsPerZone allocated a slice")
	}
}
