package dpif

import (
	"testing"

	"ovsxdp/internal/flow"
	"ovsxdp/internal/ofproto"
	"ovsxdp/internal/packet"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/sim"
)

func revalPipeline() *ofproto.Pipeline {
	pl := ofproto.NewPipeline()
	pl.AddRule(&ofproto.Rule{TableID: 0, Priority: 1,
		Match: ofproto.NewMatch(flow.Fields{InPort: 1},
			flow.NewMaskBuilder().InPort().Build()),
		Actions: []ofproto.Action{ofproto.Output(2)}})
	return pl
}

func revalPacket() *packet.Packet {
	frame := hdr.NewBuilder().
		Eth(hdr.MAC{0x02, 0xaa, 0, 0, 0, 1}, hdr.MAC{0x02, 0xbb, 0, 0, 0, 1}).
		IPv4H(hdr.MakeIP4(10, 0, 0, 1), hdr.MakeIP4(10, 0, 0, 2), 64).
		UDPH(1000, 2000).PadTo(64).Build()
	p := packet.New(frame)
	p.InPort = 1
	return p
}

func revalDpif(t *testing.T, name string) (*sim.Engine, Dpif) {
	t.Helper()
	eng := sim.NewEngine(1)
	d, err := Open(name, Config{Eng: eng, Pipeline: revalPipeline()})
	if err != nil {
		t.Fatalf("Open(%q): %v", name, err)
	}
	if err := d.PortAdd(TxPort{PortID: 2, PortName: "p1",
		Deliver: func(*packet.Packet) {}}); err != nil {
		t.Fatalf("PortAdd: %v", err)
	}
	return eng, d
}

// TestRevalidatorAgesIdleFlows checks the core aging policy on every
// provider: a flow that stops seeing traffic is evicted after IdleSweeps
// hit-less sweeps.
func TestRevalidatorAgesIdleFlows(t *testing.T) {
	for _, name := range Types() {
		t.Run(name, func(t *testing.T) {
			eng, d := revalDpif(t, name)
			d.Execute(revalPacket()) // miss -> installs one megaflow
			if got := len(d.FlowDump()); got != 1 {
				t.Fatalf("installed flows = %d, want 1", got)
			}
			r := StartRevalidator(eng, d, sim.Millisecond, 2)
			eng.RunUntil(5 * sim.Millisecond)
			if got := len(d.FlowDump()); got != 0 {
				t.Errorf("idle flow survived %d sweeps: %d flows remain", r.Sweeps, got)
			}
			if r.Evicted != 1 {
				t.Errorf("Evicted = %d, want 1", r.Evicted)
			}
		})
	}
}

// TestRevalidatorKeepsActiveFlows drives steady traffic through the kernel
// provider (where every packet bumps the megaflow hit counter) and checks
// the revalidator leaves the flow alone.
func TestRevalidatorKeepsActiveFlows(t *testing.T) {
	eng, d := revalDpif(t, "netlink")
	d.Execute(revalPacket())
	r := StartRevalidator(eng, d, 2*sim.Millisecond, 2)
	var tick func()
	tick = func() {
		d.Execute(revalPacket())
		eng.Schedule(sim.Millisecond, tick)
	}
	eng.Schedule(sim.Millisecond, tick)
	eng.RunUntil(20 * sim.Millisecond)
	if r.Sweeps < 5 {
		t.Fatalf("Sweeps = %d, want several", r.Sweeps)
	}
	if r.Evicted != 0 {
		t.Errorf("active flow evicted %d times", r.Evicted)
	}
	if got := len(d.FlowDump()); got != 1 {
		t.Errorf("flows = %d, want 1", got)
	}
}

// TestRevalidatorStop covers the Stop contract: tracking maps are released
// (they otherwise pin every evicted dpcls.Entry for the daemon's lifetime),
// the already-scheduled sweep closure is a no-op, and stopping twice is
// harmless.
func TestRevalidatorStop(t *testing.T) {
	eng, d := revalDpif(t, "netlink")
	d.Execute(revalPacket())
	r := StartRevalidator(eng, d, sim.Millisecond, 2)
	eng.RunUntil(sim.Millisecond + sim.Microsecond) // one sweep ran, next is queued
	if r.Sweeps != 1 {
		t.Fatalf("Sweeps = %d, want 1", r.Sweeps)
	}

	r.Stop()
	if r.Running() {
		t.Error("Running() true after Stop")
	}
	if r.track != nil || r.dump != nil {
		t.Error("Stop did not release the tracking state")
	}

	// The engine still holds one scheduled sweep closure; it must observe
	// the stopped state and neither sweep nor touch the nil maps.
	eng.RunUntil(10 * sim.Millisecond)
	if r.Sweeps != 1 {
		t.Errorf("sweep ran after Stop: Sweeps = %d", r.Sweeps)
	}
	if got := len(d.FlowDump()); got != 1 {
		t.Errorf("stopped revalidator changed the datapath: %d flows", got)
	}

	r.Stop() // idempotent
	if r.Running() {
		t.Error("Running() true after second Stop")
	}
}
