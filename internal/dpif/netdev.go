package dpif

import (
	"fmt"

	"ovsxdp/internal/core"
	"ovsxdp/internal/dpcls"
	"ovsxdp/internal/flow"
	"ovsxdp/internal/packet"
	"ovsxdp/internal/perf"
	"ovsxdp/internal/sim"
)

// Netdev adapts the userspace datapath (core.Datapath: PMD threads, EMC,
// per-PMD megaflow classifiers, AF_XDP/DPDK/vhost/tap ports) to the dpif
// interface — the dpif-netdev analog.
type Netdev struct {
	dp *core.Datapath

	// entryScratch is reused across FlowDumpInto calls for the per-PMD
	// classifier dumps, so repeated dumps (revalidator sweeps) allocate
	// nothing once warm.
	entryScratch []*dpcls.Entry
}

func init() {
	Register("netdev", func(cfg Config) (Dpif, error) {
		opts, ok := cfg.Options.(core.Options)
		if !ok {
			opts = core.DefaultOptions()
		}
		if cfg.Upcall.QueueCap > 0 {
			opts.UpcallQueueCap = cfg.Upcall.QueueCap
			opts.UpcallServiceInterval = cfg.Upcall.ServiceInterval
			opts.UpcallRetryBase = cfg.Upcall.RetryBase
			opts.UpcallMaxRetries = cfg.Upcall.MaxRetries
		}
		if cfg.Cache.SMC {
			opts.SMC = true
			if cfg.Cache.SMCEntries > 0 {
				opts.SMCEntries = cfg.Cache.SMCEntries
			}
		}
		if cfg.Cache.EMCInsertInvProb > 1 {
			opts.EMCInsertInvProb = cfg.Cache.EMCInsertInvProb
		}
		if cfg.Cache.BatchDedup {
			opts.BatchDedup = true
		}
		return NewNetdev(core.NewDatapath(cfg.Eng, cfg.Pipeline, opts)), nil
	})
}

// NewNetdev wraps an existing userspace datapath.
func NewNetdev(dp *core.Datapath) *Netdev { return &Netdev{dp: dp} }

// Datapath exposes the wrapped userspace datapath for wiring that the dpif
// seam does not cover (experiment-specific port internals).
func (d *Netdev) Datapath() *core.Datapath { return d.dp }

// NewPMD adds a poll-mode thread to the datapath on its own CPU.
func (d *Netdev) NewPMD(mode core.Mode) *core.PMD { return d.dp.NewPMD(mode, nil) }

// Type implements Dpif.
func (d *Netdev) Type() string { return "netdev" }

// PortAdd implements Dpif: core ports attach directly; TxPorts are wrapped
// into an output-only core port.
func (d *Netdev) PortAdd(p Port) error {
	switch port := p.(type) {
	case core.Port:
		d.dp.AddPort(port)
	case TxPort:
		d.dp.AddPort(&txPortAdapter{tp: port})
	default:
		return fmt.Errorf("dpif-netdev: unsupported port kind %T for %q", p, p.Name())
	}
	return nil
}

// PortDel implements Dpif.
func (d *Netdev) PortDel(id uint32) error {
	if d.dp.Port(id) == nil {
		return fmt.Errorf("dpif-netdev: no port %d", id)
	}
	d.dp.RemovePort(id)
	return nil
}

// PortCount implements Dpif.
func (d *Netdev) PortCount() int { return d.dp.Ports() }

// FlowPut implements Dpif: the flow is installed into every PMD's
// classifier, as dpif-netdev replicates flows across the threads that may
// see the traffic. A thread is created if none exists yet.
func (d *Netdev) FlowPut(key flow.Key, mask flow.Mask, actions any) {
	d.ensurePMD()
	for _, m := range d.dp.PMDs() {
		m.Classifier().Insert(key, mask, actions)
	}
}

// FlowDel implements Dpif: the owning PMD's classifier drops the entry,
// and both fast caches are invalidated for that one megaflow — the EMC via
// its lazy dead-entry purge, the SMC via its indirection table. Unrelated
// cache entries survive; the historical full-EMC flush per delete (which
// collapsed the cache hierarchy under any sustained eviction rate) is
// reserved for FlowFlush.
func (d *Netdev) FlowDel(f Flow) bool {
	m, ok := f.owner.(*core.PMD)
	if !ok {
		return false
	}
	if !m.Classifier().Remove(f.Entry) {
		return false
	}
	m.InvalidateEMC(f.Entry)
	m.InvalidateSMC(f.Entry)
	d.dp.OffloadUninstall(f.Entry)
	return true
}

// FlowDump implements Dpif.
func (d *Netdev) FlowDump() []Flow { return d.FlowDumpInto(nil) }

// FlowDumpInto implements Dpif.
func (d *Netdev) FlowDumpInto(buf []Flow) []Flow {
	buf = buf[:0]
	for _, m := range d.dp.PMDs() {
		d.entryScratch = m.Classifier().EntriesInto(d.entryScratch)
		for _, e := range d.entryScratch {
			buf = append(buf, Flow{Entry: e, owner: m})
		}
	}
	return buf
}

// FlowFlush implements Dpif.
func (d *Netdev) FlowFlush() { d.dp.FlushFlows() }

// SetFlowHook implements Dpif, adapting the datapath's per-PMD install
// notification to the provider-independent Flow shape (the PMD becomes the
// owner token, exactly as FlowDump reports it).
func (d *Netdev) SetFlowHook(fn func(Flow)) {
	if fn == nil {
		d.dp.SetFlowHook(nil)
		return
	}
	d.dp.SetFlowHook(func(m *core.PMD, e *dpcls.Entry) {
		fn(Flow{Entry: e, owner: m})
	})
}

// Execute implements Dpif.
func (d *Netdev) Execute(p *packet.Packet) { d.dp.Execute(p) }

// SetUpcall implements Dpif.
func (d *Netdev) SetUpcall(fn UpcallFunc) { d.dp.SetUpcall(fn) }

// SetConfig implements Dpif: every key acts on the live userspace datapath
// — cache toggles take effect on the next packet, balancer and policy
// changes on the next placement or tick.
func (d *Netdev) SetConfig(kv map[string]string) error {
	dp := d.dp
	return applyConfig(kv, func(key string, v any) error {
		switch key {
		case "pmd-rxq-assign":
			p, err := core.ParseAssignPolicy(v.(string))
			if err != nil {
				return err
			}
			dp.Opts.RxqAssign = p
			dp.SetAssignPolicy(p)
		case "pmd-auto-lb":
			dp.Opts.AutoLB = v.(bool)
			dp.ConfigureAutoLB(v.(bool), 0, -1)
		case "pmd-auto-lb-rebal-interval-us":
			t := v.(sim.Time)
			if t <= 0 {
				return fmt.Errorf("dpif-netdev: pmd-auto-lb-rebal-interval-us must be positive")
			}
			dp.Opts.AutoLBInterval = t
			dp.ConfigureAutoLB(dp.AutoLBEnabled(), t, -1)
		case "pmd-auto-lb-improvement-threshold":
			dp.Opts.AutoLBThresholdPct = v.(int)
			dp.ConfigureAutoLB(dp.AutoLBEnabled(), 0, v.(int))
		case "tx-lock-mutex":
			dp.Opts.TxLockMutex = v.(bool)
		case "emc-enable":
			dp.Opts.EMC = v.(bool)
		case "emc-insert-inv-prob":
			if v.(int) < 1 {
				return fmt.Errorf("dpif-netdev: emc-insert-inv-prob must be >= 1")
			}
			dp.Opts.EMCInsertInvProb = v.(int)
		case "smc-enable":
			dp.ConfigureSMC(v.(bool), 0)
		case "smc-entries":
			dp.ConfigureSMC(dp.Opts.SMC, v.(int))
		case "batch-dedup":
			dp.Opts.BatchDedup = v.(bool)
		case "upcall-queue-cap":
			dp.Opts.UpcallQueueCap = v.(int)
		case "upcall-service-us":
			dp.Opts.UpcallServiceInterval = v.(sim.Time)
		case "upcall-retry-base-us":
			dp.Opts.UpcallRetryBase = v.(sim.Time)
		case "upcall-max-retries":
			dp.Opts.UpcallMaxRetries = v.(int)
		case "negative-flow-ttl-us":
			dp.Opts.NegativeFlowTTL = v.(sim.Time)
		case "ct-shards":
			if v.(int) < 1 {
				return fmt.Errorf("dpif-netdev: ct-shards must be >= 1")
			}
			dp.Ct.SetShards(v.(int))
		case "hw-offload":
			o := dp.Opts.Offload
			o.Enable = v.(bool)
			dp.ConfigureOffload(o)
		case "hw-offload-table-size":
			if v.(int) < 1 {
				return fmt.Errorf("dpif-netdev: hw-offload-table-size must be >= 1")
			}
			o := dp.Opts.Offload
			o.TableSize = v.(int)
			dp.ConfigureOffload(o)
		case "hw-offload-elephant-pps":
			if v.(int) < 1 {
				return fmt.Errorf("dpif-netdev: hw-offload-elephant-pps must be >= 1")
			}
			o := dp.Opts.Offload
			o.ElephantPPS = v.(int)
			dp.ConfigureOffload(o)
		case "hw-offload-readback-us":
			if v.(sim.Time) <= 0 {
				return fmt.Errorf("dpif-netdev: hw-offload-readback-us must be positive")
			}
			o := dp.Opts.Offload
			o.ReadbackInterval = v.(sim.Time)
			dp.ConfigureOffload(o)
		case "hw-offload-ewma-weight":
			if v.(int) < 1 || v.(int) > 100 {
				return fmt.Errorf("dpif-netdev: hw-offload-ewma-weight must be in 1..100")
			}
			o := dp.Opts.Offload
			o.EWMAWeightPct = v.(int)
			dp.ConfigureOffload(o)
		}
		return nil
	})
}

// GetConfig implements Dpif: values reflect the live datapath state, so a
// bed configured through the legacy Options struct reads back identically
// to one configured through SetConfig.
func (d *Netdev) GetConfig() map[string]string {
	dp := d.dp
	interval, threshold := dp.AutoLBSettings()
	off := dp.OffloadSettings()
	return map[string]string{
		"pmd-rxq-assign":                    dp.AssignPolicyInEffect().String(),
		"pmd-auto-lb":                       renderBool(dp.AutoLBEnabled()),
		"pmd-auto-lb-rebal-interval-us":     renderMicros(interval),
		"pmd-auto-lb-improvement-threshold": fmt.Sprintf("%d", threshold),
		"tx-lock-mutex":                     renderBool(dp.Opts.TxLockMutex),
		"emc-enable":                        renderBool(dp.Opts.EMC),
		"emc-insert-inv-prob":               fmt.Sprintf("%d", max(dp.Opts.EMCInsertInvProb, 1)),
		"smc-enable":                        renderBool(dp.Opts.SMC),
		"smc-entries":                       fmt.Sprintf("%d", dp.Opts.SMCEntries),
		"batch-dedup":                       renderBool(dp.Opts.BatchDedup),
		"upcall-queue-cap":                  fmt.Sprintf("%d", dp.Opts.UpcallQueueCap),
		"upcall-service-us":                 renderMicros(dp.Opts.UpcallServiceInterval),
		"upcall-retry-base-us":              renderMicros(dp.Opts.UpcallRetryBase),
		"upcall-max-retries":                fmt.Sprintf("%d", dp.Opts.UpcallMaxRetries),
		"negative-flow-ttl-us":              renderMicros(dp.Opts.NegativeFlowTTL),
		"ct-shards":                         fmt.Sprintf("%d", dp.Ct.NumShards()),
		"hw-offload":                        renderBool(off.Enable),
		"hw-offload-table-size":             fmt.Sprintf("%d", off.TableSize),
		"hw-offload-elephant-pps":           fmt.Sprintf("%d", off.ElephantPPS),
		"hw-offload-readback-us":            renderMicros(off.ReadbackInterval),
		"hw-offload-ewma-weight":            fmt.Sprintf("%d", off.EWMAWeightPct),
	}
}

// PmdRxqShow implements Dpif.
func (d *Netdev) PmdRxqShow() string { return d.dp.PmdRxqShow() }

// Stats implements Dpif: hits combine every caching level a packet can
// shortcut through — EMC, SMC, and the megaflow classifier.
func (d *Netdev) Stats() Stats {
	s := Stats{
		Hits:             d.dp.EMCHits + d.dp.SMCHits + d.dp.MegaflowHits,
		SMCHits:          d.dp.SMCHits,
		Missed:           d.dp.Upcalls,
		Lost:             d.dp.Drops,
		UpcallQueueDrops: d.dp.UpcallQueueDrops,
		MalformedDrops:   d.dp.MalformedDrops,
		Processed:        d.dp.Processed,
		Flows:            d.dp.FlowCount(),
	}
	off := d.dp.OffloadStats()
	s.OffloadHits = off.Hits
	s.OffloadInstalls = off.Installs
	s.OffloadEvictions = off.Evictions
	s.OffloadUninstalls = off.Uninstalls
	s.OffloadRefused = off.Refused
	s.OffloadReadbacks = off.Readbacks
	s.OffloadLive = off.Live
	fillCtStats(&s, d.dp.Ct)
	return s
}

// PerfStats implements Dpif: one counter block per PMD thread, named after
// its CPU ("pmd0", "pmd1", ...).
func (d *Netdev) PerfStats() []perf.ThreadStats {
	var out []perf.ThreadStats
	for _, m := range d.dp.PMDs() {
		out = append(out, perf.ThreadStats{Name: m.CPU.Name(), Stats: m.Perf})
	}
	return out
}

// EnableTrace implements Dpif.
func (d *Netdev) EnableTrace(n int) { d.dp.EnableTrace(n) }

func (d *Netdev) ensurePMD() {
	if len(d.dp.PMDs()) == 0 {
		d.dp.NewPMD(core.ModeNonPMD, nil)
	}
}

// txPortAdapter presents a TxPort as an output-only core.Port.
type txPortAdapter struct {
	tp TxPort
}

func (a *txPortAdapter) ID() uint32                             { return a.tp.PortID }
func (a *txPortAdapter) Name() string                           { return a.tp.PortName }
func (a *txPortAdapter) NumRxQueues() int                       { return 0 }
func (a *txPortAdapter) NumTxQueues() int                       { return 0 } // function delivery: no txq limit
func (a *txPortAdapter) Rx(*sim.CPU, int, int) []*packet.Packet { return nil }
func (a *txPortAdapter) Tx(_ *sim.CPU, _ int, p *packet.Packet) { a.tp.Deliver(p) }
func (a *txPortAdapter) Flush(*sim.CPU, int)                    {}
func (a *txPortAdapter) Arm(int, func())                        {}
