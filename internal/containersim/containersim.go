// Package containersim models containers (Section 3.4): a network
// namespace reached through a veth pair, whose networking runs entirely in
// the *host* kernel — which is why in-kernel switching is so hard to beat
// for container-to-container TCP, and why the XDP-redirect path (Figure 5
// path C) is the one place OVS AF_XDP wins outright.
//
// A container's packet processing costs land on host CPUs: stack traversal
// in Softirq, application work in User, exactly as Table 4's PCP rows
// account them.
package containersim

import (
	"ovsxdp/internal/costmodel"
	"ovsxdp/internal/kernelsim"
	"ovsxdp/internal/packet"
	"ovsxdp/internal/sim"
	"ovsxdp/internal/vdev"
)

// Container is one namespace endpoint on a veth pair.
type Container struct {
	Name string
	Eng  *sim.Engine
	// StackCPU is the host CPU that runs this namespace's softirq work.
	StackCPU *sim.CPU
	// AppCPU is the host CPU the containerized application runs on.
	AppCPU *sim.CPU
	Veth   *vdev.VethPair
	// FastPath models a loopback reflector using recvmmsg/sendmmsg with
	// GRO/GSO batching: per-packet stack and syscall costs shrink to
	// their amortized share. The Figure 9(c) forwarding-rate loopback
	// uses this; the latency and TCP tests use the normal path.
	FastPath bool

	// OnPacket handles packets after stack receive costs; the default
	// reflector swaps MACs and sends back.
	OnPacket func(c *Container, p *packet.Packet)

	// Stats.
	RxPackets uint64
	TxPackets uint64
}

// Config parameterizes New.
type Config struct {
	Name     string
	Veth     *vdev.VethPair
	StackCPU *sim.CPU // created when nil
	AppCPU   *sim.CPU // defaults to StackCPU
	FastPath bool     // batched-syscall loopback reflector
	OnPacket func(c *Container, p *packet.Packet)
}

// New builds and starts a container consuming the B end of the veth pair.
func New(eng *sim.Engine, cfg Config) *Container {
	stack := cfg.StackCPU
	if stack == nil {
		stack = eng.NewCPU("ct-stack-" + cfg.Name)
	}
	app := cfg.AppCPU
	if app == nil {
		app = stack
	}
	c := &Container{
		Name: cfg.Name, Eng: eng,
		StackCPU: stack, AppCPU: app,
		Veth:     cfg.Veth,
		FastPath: cfg.FastPath,
		OnPacket: cfg.OnPacket,
	}
	if c.OnPacket == nil {
		c.OnPacket = Reflect
	}
	actor := &kernelsim.NAPIActor{
		Eng: eng, CPU: stack,
		Src: kernelsim.VQueueSource{Q: cfg.Veth.AtoB},
		Handler: func(cpu *sim.CPU, pkts []*packet.Packet) {
			for _, p := range pkts {
				// Receive: veth ingress + namespace stack.
				rx := costmodel.SkbAlloc + costmodel.KernelStackRxPerPacket
				if c.FastPath {
					rx = rx / 3 // GRO + batched delivery
				}
				cpu.Consume(sim.Softirq, rx)
				c.RxPackets++
				c.OnPacket(c, p)
			}
		},
	}
	actor.Start()
	return c
}

// Transmit sends one packet out of the namespace: application syscall,
// stack transmit, veth crossing back to the host side. FastPath amortizes
// the syscall across a sendmmsg batch and GSO-batches the stack traversal.
func (c *Container) Transmit(p *packet.Packet) {
	if c.FastPath {
		c.AppCPU.Consume(sim.System, costmodel.SyscallBase/16+costmodel.CopyCost(len(p.Data)))
		c.StackCPU.Consume(sim.Softirq, (costmodel.KernelStackTxPerPacket+costmodel.VethCrossing)/3)
		p.Offloads |= packet.CsumVerified
		c.TxPackets++
		c.Veth.SendB(p)
		return
	}
	c.AppCPU.Consume(sim.System, costmodel.SyscallBase+costmodel.CopyCost(len(p.Data)))
	c.StackCPU.Consume(sim.Softirq, costmodel.KernelStackTxPerPacket+costmodel.VethCrossing)
	// Local kernel traffic carries validated checksums (no wire).
	p.Offloads |= packet.CsumVerified
	c.TxPackets++
	c.Veth.SendB(p)
}

// Reflect is the default handler: swap MACs and transmit back.
func Reflect(c *Container, p *packet.Packet) {
	if len(p.Data) >= 12 {
		var tmp [6]byte
		copy(tmp[:], p.Data[0:6])
		copy(p.Data[0:6], p.Data[6:12])
		copy(p.Data[6:12], tmp[:])
	}
	p.ResetMetadata()
	c.Transmit(p)
}
