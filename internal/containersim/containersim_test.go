package containersim

import (
	"testing"

	"ovsxdp/internal/packet"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/sim"
	"ovsxdp/internal/vdev"
)

var (
	macA = hdr.MAC{0x02, 0, 0, 0, 0, 0x0a}
	macB = hdr.MAC{0x02, 0, 0, 0, 0, 0x0b}
)

func udpPkt() *packet.Packet {
	return packet.New(hdr.NewBuilder().Eth(macA, macB).
		IPv4H(hdr.MakeIP4(10, 0, 0, 1), hdr.MakeIP4(10, 0, 0, 2), 64).
		UDPH(1, 2).PayloadLen(18).PadTo(64).Build())
}

func TestContainerReflects(t *testing.T) {
	eng := sim.NewEngine(1)
	veth := vdev.NewVethPair("veth0")
	c := New(eng, Config{Name: "c0", Veth: veth})

	veth.SendA(udpPkt())
	eng.Run()

	out := veth.BtoA.Pop(4)
	if len(out) != 1 {
		t.Fatalf("reflected %d", len(out))
	}
	eth, _ := hdr.ParseEthernet(out[0].Data)
	if eth.Dst != macA {
		t.Fatal("MACs not swapped")
	}
	if c.RxPackets != 1 || c.TxPackets != 1 {
		t.Fatalf("stats rx=%d tx=%d", c.RxPackets, c.TxPackets)
	}
	// Container stack time is host softirq; app syscall time is host
	// system — never guest.
	if c.StackCPU.Busy(sim.Softirq) == 0 {
		t.Fatal("stack cost missing")
	}
	if c.StackCPU.Busy(sim.Guest) != 0 {
		t.Fatal("containers must not charge guest time")
	}
}

func TestContainerTransmitMarksLocalChecksum(t *testing.T) {
	eng := sim.NewEngine(1)
	veth := vdev.NewVethPair("veth0")
	c := New(eng, Config{Name: "c0", Veth: veth})
	p := udpPkt()
	c.Transmit(p)
	if p.Offloads&packet.CsumVerified == 0 {
		t.Fatal("local kernel traffic must carry verified checksums")
	}
	if veth.BtoA.Len() != 1 {
		t.Fatal("transmit did not cross the veth")
	}
}

func TestContainerCustomHandler(t *testing.T) {
	eng := sim.NewEngine(1)
	veth := vdev.NewVethPair("veth0")
	hits := 0
	New(eng, Config{Name: "c0", Veth: veth,
		OnPacket: func(c *Container, p *packet.Packet) { hits++ }})
	veth.SendA(udpPkt())
	veth.SendA(udpPkt())
	eng.Run()
	if hits != 2 {
		t.Fatalf("handler hits = %d", hits)
	}
}
