package core

import (
	"reflect"
	"testing"

	"ovsxdp/internal/flow"
	"ovsxdp/internal/ofproto"
	"ovsxdp/internal/packet"
	"ovsxdp/internal/sim"
)

// sinkPort is an output-only port for direct-execution tests: deliveries
// are counted, nothing is charged, nothing is queued.
type sinkPort struct {
	id    uint32
	name  string
	recvd int
}

func (s *sinkPort) ID() uint32                             { return s.id }
func (s *sinkPort) Name() string                           { return s.name }
func (s *sinkPort) NumRxQueues() int                       { return 0 }
func (s *sinkPort) NumTxQueues() int                       { return 0 }
func (s *sinkPort) Rx(*sim.CPU, int, int) []*packet.Packet { return nil }
func (s *sinkPort) Tx(_ *sim.CPU, _ int, p *packet.Packet) { s.recvd++ }
func (s *sinkPort) Flush(*sim.CPU, int)                    {}
func (s *sinkPort) Arm(int, func())                        {}

// inPkt is udpPkt arriving on port 1 (Execute bypasses the rx path that
// normally stamps InPort).
func inPkt(sport uint16) *packet.Packet {
	p := udpPkt(sport)
	p.InPort = 1
	return p
}

// outputPipeline sends in_port=1 to the given port.
func outputPipeline(out uint32) *ofproto.Pipeline {
	pl := ofproto.NewPipeline()
	pl.AddRule(&ofproto.Rule{TableID: 0, Priority: 1,
		Match: ofproto.NewMatch(flow.Fields{InPort: 1},
			flow.NewMaskBuilder().InPort().Build()),
		Actions: []ofproto.Action{ofproto.Output(out)}})
	return pl
}

// TestSMCServesRepeatTraffic checks the signature cache resolves repeat
// packets when the EMC is out of the picture: one upcall installs the
// megaflow and registers it in the SMC; every successor is an SMC hit.
func TestSMCServesRepeatTraffic(t *testing.T) {
	eng := sim.NewEngine(1)
	opts := DefaultOptions()
	opts.EMC = false
	opts.SMC = true
	dp := NewDatapath(eng, outputPipeline(2), opts)
	out := &sinkPort{id: 2, name: "out"}
	dp.AddPort(&sinkPort{id: 1, name: "in"})
	dp.AddPort(out)

	for i := 0; i < 8; i++ {
		dp.Execute(inPkt(7777))
	}
	if out.recvd != 8 {
		t.Fatalf("delivered %d/8", out.recvd)
	}
	if dp.Upcalls != 1 || dp.SMCHits != 7 || dp.EMCHits != 0 {
		t.Fatalf("upcalls=%d smcHits=%d emcHits=%d, want 1/7/0",
			dp.Upcalls, dp.SMCHits, dp.EMCHits)
	}
	m := dp.PMDs()[0]
	if m.Perf.SMCHits != 7 {
		t.Fatalf("perf SMCHits = %d, want 7", m.Perf.SMCHits)
	}
}

// TestSMCInvalidationPreventsStaleDelivery is the safety property behind
// the 16-bit indirection: after a megaflow is removed (flow delete or a
// revalidator sweep) and its SMC index invalidated, the next packet of that
// flow must take a fresh upcall and follow the NEW forwarding decision —
// never resolve through the stale cache entry to the old output port.
func TestSMCInvalidationPreventsStaleDelivery(t *testing.T) {
	eng := sim.NewEngine(1)
	opts := DefaultOptions()
	opts.EMC = false
	opts.SMC = true
	dp := NewDatapath(eng, outputPipeline(2), opts)
	oldOut := &sinkPort{id: 2, name: "old"}
	newOut := &sinkPort{id: 3, name: "new"}
	dp.AddPort(&sinkPort{id: 1, name: "in"})
	dp.AddPort(oldOut)
	dp.AddPort(newOut)

	// Warm: the flow resolves through the SMC to port 2.
	for i := 0; i < 4; i++ {
		dp.Execute(inPkt(7777))
	}
	if oldOut.recvd != 4 || dp.SMCHits != 3 {
		t.Fatalf("warm phase: delivered=%d smcHits=%d, want 4/3", oldOut.recvd, dp.SMCHits)
	}

	// Revalidation: the megaflow is removed and the forwarding decision
	// changes to port 3 (the rule update that made the old flow stale).
	m := dp.PMDs()[0]
	entries := m.Classifier().Entries()
	if len(entries) != 1 {
		t.Fatalf("installed flows = %d, want 1", len(entries))
	}
	e := entries[0]
	if !m.Classifier().Remove(e) {
		t.Fatal("Remove reported the flow missing")
	}
	m.FlushEMC()
	m.InvalidateSMC(e)
	pl2 := outputPipeline(3)
	dp.SetUpcall(pl2.Translate)

	// The same flow again: the stale SMC index must miss, forcing a fresh
	// upcall against the new pipeline; nothing may reach the old port.
	for i := 0; i < 4; i++ {
		dp.Execute(inPkt(7777))
	}
	if oldOut.recvd != 4 {
		t.Fatalf("stale SMC entry mis-delivered: old port got %d packets, want 4", oldOut.recvd)
	}
	if newOut.recvd != 4 {
		t.Fatalf("new port got %d/4 packets after revalidation", newOut.recvd)
	}
	if dp.Upcalls != 2 {
		t.Fatalf("upcalls = %d, want 2 (invalidated index must not serve)", dp.Upcalls)
	}
	if dp.SMCHits != 6 {
		t.Fatalf("smcHits = %d, want 6 (3 before + 3 after reinstall)", dp.SMCHits)
	}
}

// TestProbabilisticEMCInsertDeterminism runs the same multi-flow traffic
// twice with a 1/8 EMC insertion probability and requires byte-identical
// counters: the insertion RNG is seeded from the PMD id, so randomized
// admission stays reproducible run to run.
func TestProbabilisticEMCInsertDeterminism(t *testing.T) {
	type fingerprint struct {
		EMCHits, SMCHits, MegaflowHits, Upcalls uint64
		Delivered                               int
		EMCLen                                  int
		Busy                                    sim.Time
	}
	run := func() fingerprint {
		eng := sim.NewEngine(1)
		opts := DefaultOptions()
		opts.SMC = true
		opts.EMCInsertInvProb = 8
		dp := NewDatapath(eng, outputPipeline(2), opts)
		out := &sinkPort{id: 2, name: "out"}
		dp.AddPort(&sinkPort{id: 1, name: "in"})
		dp.AddPort(out)
		// 64 flows, 4 rounds each, interleaved so every round after the
		// first exercises whichever cache level admission chose.
		for round := 0; round < 4; round++ {
			for f := 0; f < 64; f++ {
				dp.Execute(inPkt(uint16(5000 + f)))
			}
		}
		m := dp.PMDs()[0]
		return fingerprint{
			EMCHits: dp.EMCHits, SMCHits: dp.SMCHits,
			MegaflowHits: dp.MegaflowHits, Upcalls: dp.Upcalls,
			Delivered: out.recvd, EMCLen: m.emc.Len(),
			Busy: m.CPU.BusyTotal(),
		}
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two seeded runs diverge:\n  run1: %+v\n  run2: %+v", a, b)
	}
	// The gate must have actually skipped some insertions: with p=1/8 and
	// 4 attempts per flow, nowhere near all 64 flows land in the EMC.
	if a.EMCLen == 0 || a.EMCLen >= 64 {
		t.Fatalf("EMC holds %d/64 flows — insertion probability not applied", a.EMCLen)
	}
	// Conservation: every packet resolves at exactly one level.
	if got := a.EMCHits + a.SMCHits + a.MegaflowHits + a.Upcalls; got != 256 {
		t.Fatalf("hit split sums to %d, want 256", got)
	}
	if a.Delivered != 256 {
		t.Fatalf("delivered %d/256", a.Delivered)
	}
}

// TestEMCInsertProbabilityOneIsUnchanged pins the byte-identity guarantee
// for the default configuration: inverse probability <= 1 must not draw
// randomness or change any observable outcome relative to the always-insert
// legacy path.
func TestEMCInsertProbabilityOneIsUnchanged(t *testing.T) {
	run := func(invProb int) (uint64, int, sim.Time) {
		eng := sim.NewEngine(1)
		opts := DefaultOptions()
		opts.EMCInsertInvProb = invProb
		dp := NewDatapath(eng, outputPipeline(2), opts)
		out := &sinkPort{id: 2, name: "out"}
		dp.AddPort(&sinkPort{id: 1, name: "in"})
		dp.AddPort(out)
		for i := 0; i < 32; i++ {
			dp.Execute(inPkt(uint16(6000 + i%4)))
		}
		return dp.EMCHits, out.recvd, dp.PMDs()[0].CPU.BusyTotal()
	}
	h0, d0, b0 := run(0)
	h1, d1, b1 := run(1)
	if h0 != h1 || d0 != d1 || b0 != b1 {
		t.Fatalf("invProb 0 vs 1 diverge: hits %d/%d delivered %d/%d busy %d/%d",
			h0, h1, d0, d1, b0, b1)
	}
}
