package core

import (
	"ovsxdp/internal/conntrack"
	"ovsxdp/internal/costmodel"
	"ovsxdp/internal/dpcls"
	"ovsxdp/internal/flow"
	"ovsxdp/internal/ofproto"
	"ovsxdp/internal/packet"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/perf"
	"ovsxdp/internal/sim"
	"ovsxdp/internal/tunnel"
)

// Caps describes a port's transmit-side hardware offloads. The AF_XDP gap
// — no checksum or TSO offload yet (Table 2 O5, Section 5.5) — is the
// difference between AFXDPCaps and the others.
type Caps struct {
	TxCsum bool
	TSO    bool
}

// PortCaps returns the offload capabilities for a known port type; the
// datapath consults this before transmitting packets that still carry
// CsumPartial or TSO state.
func PortCaps(p Port) Caps {
	switch p.(type) {
	case *AFXDPPort, *VethPort:
		// AF_XDP cannot reach the NIC's offload engines (Section 3.2
		// O5: "AF_XDP does not yet [support offloads]").
		return Caps{}
	default:
		// DPDK programs hardware offloads; vhost/tap negotiate
		// virtio offloads with the peer.
		return Caps{TxCsum: true, TSO: true}
	}
}

// Options are the datapath tunables; each maps to one of the paper's
// optimizations or an ablation DESIGN.md calls out.
type Options struct {
	// EMC enables the exact-match cache (ablation: the cache the kernel
	// maintainers rejected).
	EMC bool
	// SMC enables the signature match cache between the EMC and the
	// megaflow classifier (OVS's smc-enable=true, off by default): 4-byte
	// entries covering two orders of magnitude more flows than the EMC at
	// a slightly higher hit cost.
	SMC bool
	// SMCEntries overrides the signature cache capacity; zero uses
	// costmodel.SMCEntries (1<<20, as in OVS).
	SMCEntries int
	// EMCInsertInvProb is the inverse probability of inserting a flow into
	// the EMC after a miss resolves (OVS's emc-insert-inv-prob): a flow is
	// inserted with probability 1/N, so thrashing workloads stop churning
	// the EMC and stabilize in the SMC instead. Values <= 1 insert always
	// (the default) and consume no randomness, keeping default runs
	// byte-identical.
	EMCInsertInvProb int
	// BatchDedup enables batch-aware classification: packets of one rx
	// batch that share a flow key are classified once and the rest pay
	// only the per-packet flow-batch append (dp_netdev_input's per-flow
	// batching). Off by default; the per-packet path is unchanged.
	BatchDedup bool
	// MetadataPrealloc is O4: dp_packet metadata in a preallocated
	// contiguous array; disabled, every packet pays the mmap-allocation
	// cost.
	MetadataPrealloc bool
	// AssumeCsumOffload is O5's estimate: transmit a fixed checksum
	// value instead of computing one in software.
	AssumeCsumOffload bool
	// AssumeTSO models the expected AF_XDP TSO support (Figure 8's
	// "checksum and TSO" bars): oversized segments are passed through
	// without software segmentation.
	AssumeTSO bool
	// BatchSize is packets per poll (NETDEV_MAX_BURST).
	BatchSize int
	// ColdFlowThreshold is the EMC occupancy beyond which per-packet
	// flow state no longer fits the CPU cache and each packet pays
	// ColdFlowCacheMiss (the 1,000-flow effect of Figure 9).
	ColdFlowThreshold int
	// ContentionCentis is the multi-PMD contention coefficient (tenths;
	// see costmodel.UserContentionMilli). Zero disables contention
	// scaling; the experiment beds set the per-datapath calibrated
	// values for Figure 12.
	ContentionCentis int
	// UpcallQueueCap bounds the per-PMD queue of packets awaiting
	// slow-path translation — the netdev analog of the kernel's bounded
	// per-port netlink queues (ENOBUFS). Zero keeps the legacy inline
	// upcall on the PMD thread.
	UpcallQueueCap int
	// UpcallServiceInterval is the handler thread's per-upcall service
	// time when the queue is bounded (its service rate is the inverse);
	// zero defaults to costmodel.UpcallCost.
	UpcallServiceInterval sim.Time
	// UpcallRetryBase seeds the exponential backoff applied when
	// translation fails transiently; zero defaults to UpcallCost/4.
	UpcallRetryBase sim.Time
	// UpcallMaxRetries bounds backoff retries of one transient upcall;
	// zero defaults to 3.
	UpcallMaxRetries int
	// NegativeFlowTTL is the lifetime of the drop megaflow installed when
	// an upcall fails for good, shielding the slow path from the failing
	// flow; <= 0 disables the negative flow.
	NegativeFlowTTL sim.Time
	// RxqAssign selects how the assignment layer distributes receive
	// queues across PMD threads (other_config:pmd-rxq-assign). The zero
	// value is round-robin, which reproduces the historical
	// queue-i-to-PMD-i wiring exactly.
	RxqAssign AssignPolicy
	// AutoLB enables the deterministic PMD auto-load-balancer
	// (other_config:pmd-auto-lb); off by default.
	AutoLB bool
	// AutoLBInterval overrides the balancer's virtual-time measurement
	// interval; zero uses costmodel.AutoLBDefaultInterval.
	AutoLBInterval sim.Time
	// AutoLBThresholdPct overrides the minimum per-PMD load-variance
	// improvement (percent) before a re-shard is applied; zero uses
	// costmodel.AutoLBDefaultThresholdPct.
	AutoLBThresholdPct int
	// TxLockMutex guards shared transmit queues (XPS) with a mutex
	// charged per packet instead of the default spinlock charged per
	// flush — the tx-side analog of the umempool O2/O3 toggles. It only
	// matters when a port has fewer txqs than the datapath has PMDs.
	TxLockMutex bool
	// Offload configures the hardware flow-offload engine
	// (other_config:hw-offload); the zero value disables it, so default
	// runs schedule no offload events and stay byte-identical.
	Offload OffloadOptions
}

// DefaultOptions returns the fully-optimized configuration (all of
// O1..O5 except that checksum offload remains estimated, as in the paper).
func DefaultOptions() Options {
	return Options{
		EMC:               true,
		MetadataPrealloc:  true,
		AssumeCsumOffload: false,
		BatchSize:         costmodel.BatchSize,
		ColdFlowThreshold: 512,
		NegativeFlowTTL:   costmodel.NegativeFlowTTL,
	}
}

// Datapath is the shared state of the userspace datapath: ports, the
// ofproto pipeline upcalls translate against, conntrack, tunneling, and
// counters. Per-thread state (EMC, megaflow classifier) lives in each PMD.
type Datapath struct {
	Eng      *sim.Engine
	Pipeline *ofproto.Pipeline
	Ct       *conntrack.Table
	Encapper *tunnel.Encapper
	Opts     Options

	ports map[uint32]Port
	pmds  []*PMD
	// activePMDs counts PMD threads that have processed traffic, for the
	// contention model.
	activePMDs int
	// traceDepth, when positive, arms packet-lifecycle tracing with a ring
	// of that many records on every PMD (existing and future).
	traceDepth int

	// upcall, when set, replaces Pipeline.Translate as the slow-path
	// handler (dpif upcall registration).
	upcall func(flow.Key) (ofproto.Megaflow, error)

	// flowHook, when set, is called for every freshly installed megaflow
	// on any PMD (upcall installs, FlowPut, negative flows) — the
	// notification the incremental revalidator registers expiry timers
	// from. In-place replacements do not re-fire it.
	flowHook func(*PMD, *dpcls.Entry)

	// handler is the shared upcall-handler thread CPU, created lazily when
	// the bounded upcall queue is in force.
	handler *sim.CPU

	// assign is the rxq-to-PMD assignment layer (policies, auto-LB, XPS);
	// created lazily so the zero datapath keeps working.
	assign *assigner

	// offload is the hardware flow-offload engine; nil until hw-offload is
	// first enabled, so the default datapath carries no offload state.
	offload *offloadEngine

	// Stats.
	Processed      uint64
	EMCHits        uint64
	SMCHits        uint64
	MegaflowHits   uint64
	Upcalls        uint64
	UpcallErrors   uint64
	Drops          uint64
	Recirculations uint64
	MeterDrops     uint64
	SegmentedPkts  uint64
	// UpcallQueueDrops counts packets refused because a PMD's bounded
	// upcall queue was full (the ENOBUFS analog); they are not in Drops.
	UpcallQueueDrops uint64
	// UpcallRetries counts backoff retries of transient upcall failures.
	UpcallRetries uint64
	// MalformedDrops counts slow-path parse failures, split from policy
	// drops (the kernel flow extractor's EINVAL analog).
	MalformedDrops uint64
	// OffloadHits counts packets the NIC forwarded from its hardware flow
	// table, bypassing every software cache.
	OffloadHits uint64
}

// NewDatapath builds a datapath over a pipeline.
func NewDatapath(eng *sim.Engine, pl *ofproto.Pipeline, opts Options) *Datapath {
	if opts.BatchSize <= 0 {
		opts.BatchSize = costmodel.BatchSize
	}
	d := &Datapath{
		Eng:      eng,
		Pipeline: pl,
		Ct:       conntrack.NewTable(eng),
		Opts:     opts,
		ports:    make(map[uint32]Port),
	}
	if opts.AutoLB {
		thr := opts.AutoLBThresholdPct
		if thr <= 0 {
			thr = -1 // keep the default
		}
		d.ConfigureAutoLB(true, opts.AutoLBInterval, thr)
	}
	if opts.Offload.Enable {
		d.ConfigureOffload(opts.Offload)
	}
	return d
}

// AddPort registers a port.
func (d *Datapath) AddPort(p Port) { d.ports[p.ID()] = p }

// Port returns a registered port or nil.
func (d *Datapath) Port(id uint32) Port { return d.ports[id] }

// RemovePort detaches a port.
func (d *Datapath) RemovePort(id uint32) { delete(d.ports, id) }

// Ports returns the number of attached ports.
func (d *Datapath) Ports() int { return len(d.ports) }

// ConfigureSMC enables or disables the signature match cache at runtime,
// allocating or releasing the per-PMD tables (smc-enable). entries > 0 also
// resizes the capacity; existing tables are rebuilt empty on resize, losing
// only re-learnable cache state.
func (d *Datapath) ConfigureSMC(on bool, entries int) {
	resize := entries > 0 && entries != d.Opts.SMCEntries
	d.Opts.SMC = on
	if entries > 0 {
		d.Opts.SMCEntries = entries
	}
	for _, m := range d.pmds {
		if resize {
			m.smc = nil
		}
		m.reconfigureSMC()
	}
}

// FlushFlows clears every PMD's caches (revalidation after rule changes)
// and, with hw-offload on, the NIC flow table in the same pass — a flushed
// hardware rule must never keep forwarding with the dropped actions.
func (d *Datapath) FlushFlows() {
	if d.offload != nil {
		d.offload.flushAll()
	}
	for _, m := range d.pmds {
		m.emc.Flush()
		if m.smc != nil {
			m.smc.Flush()
		}
		m.cls.Flush()
	}
}

// FlowCount reports megaflows across all PMDs (diagnostics).
func (d *Datapath) FlowCount() int {
	n := 0
	for _, m := range d.pmds {
		n += m.cls.Len()
	}
	return n
}

// PMDs returns the datapath's packet-processing threads (dpif flow dumps,
// diagnostics).
func (d *Datapath) PMDs() []*PMD { return d.pmds }

// EnableTrace arms packet-lifecycle tracing on every PMD, keeping the last
// n records per thread; n <= 0 disables it. Tracing is pure accounting and
// does not perturb virtual time.
func (d *Datapath) EnableTrace(n int) {
	d.traceDepth = n
	for _, m := range d.pmds {
		m.Perf.EnableTrace(n)
	}
}

// SetUpcall registers the slow-path handler consulted on classifier misses
// in place of the pipeline's translator (dpif upcall registration).
func (d *Datapath) SetUpcall(fn func(flow.Key) (ofproto.Megaflow, error)) { d.upcall = fn }

// SetFlowHook registers (or, with nil, clears) the flow-installed
// notification, wiring it through every PMD classifier's OnInsert callback
// — existing threads and ones created later alike.
func (d *Datapath) SetFlowHook(fn func(*PMD, *dpcls.Entry)) {
	d.flowHook = fn
	for _, m := range d.pmds {
		if fn == nil {
			m.cls.OnInsert = nil
		} else {
			d.wireFlowHook(m)
		}
	}
}

// wireFlowHook binds one PMD's classifier insert callback to the datapath
// hook. The closure is created once per PMD at wiring time, so the install
// path itself allocates nothing.
func (d *Datapath) wireFlowHook(m *PMD) {
	m.cls.OnInsert = func(e *dpcls.Entry) { d.flowHook(m, e) }
}

// translate resolves a missed key through the registered upcall handler,
// defaulting to the pipeline.
func (d *Datapath) translate(key flow.Key) (ofproto.Megaflow, error) {
	if d.upcall != nil {
		return d.upcall(key)
	}
	return d.Pipeline.Translate(key)
}

// upcallInterval is the bounded handler's per-upcall service time.
func (d *Datapath) upcallInterval() sim.Time {
	if d.Opts.UpcallServiceInterval > 0 {
		return d.Opts.UpcallServiceInterval
	}
	return costmodel.UpcallCost
}

// retryBase seeds the exponential backoff for transient upcall failures.
func (d *Datapath) retryBase() sim.Time {
	if d.Opts.UpcallRetryBase > 0 {
		return d.Opts.UpcallRetryBase
	}
	return costmodel.UpcallCost / 4
}

// maxUpcallRetries bounds backoff retries of one transient upcall.
func (d *Datapath) maxUpcallRetries() int {
	if d.Opts.UpcallMaxRetries > 0 {
		return d.Opts.UpcallMaxRetries
	}
	return 3
}

// handlerCPU lazily creates the shared upcall-handler thread.
func (d *Datapath) handlerCPU() *sim.CPU {
	if d.handler == nil {
		d.handler = d.Eng.NewCPU("upcall-handler")
	}
	return d.handler
}

// installNegativeFlow installs a short-lived drop megaflow after a failed
// upcall, so subsequent packets of the failing flow drop in the fast path
// instead of re-upcalling (and re-failing) at full cost. The entry
// self-expires after NegativeFlowTTL, giving the flow a fresh chance once
// the slow path recovers.
func (d *Datapath) installNegativeFlow(m *PMD, key flow.Key) {
	ttl := d.Opts.NegativeFlowTTL
	if ttl <= 0 {
		return
	}
	e := m.cls.Insert(key, flow.MaskAll(), nil)
	d.Eng.Schedule(ttl, func() {
		if m.cls.Remove(e) {
			m.InvalidateEMC(e)
			m.InvalidateSMC(e)
			d.OffloadUninstall(e)
		}
	})
}

// Execute runs one packet through the fast path as if it had arrived on
// p.InPort, on the first PMD (creating an unstarted one when the datapath
// has no threads yet) — the dpif execute analog.
func (d *Datapath) Execute(p *packet.Packet) {
	if len(d.pmds) == 0 {
		d.NewPMD(ModeNonPMD, nil)
	}
	d.processOne(d.pmds[0], p, 0)
}

const maxRecircDepth = 8

// processOne runs one packet through the fast path on PMD m. Costs are
// charged to m.CPU in the User category; the structure is the dpif-netdev
// hot loop: metadata, key extraction, EMC, megaflow classifier, upcall,
// action execution.
func (d *Datapath) processOne(m *PMD, p *packet.Packet, depth int) {
	d.processCounted(m, p, depth, true)
}

// processCounted is processOne with the admission accounting gated: packets
// reinjected after a queued upcall resolves (count=false) were already
// counted at admission, so Processed and the per-thread packet/trace
// accounting must not double-count them.
func (d *Datapath) processCounted(m *PMD, p *packet.Packet, depth int, count bool) {
	if depth > maxRecircDepth {
		d.Drops++
		p.Release()
		return
	}
	if count {
		d.Processed++
	}
	cpu := m.CPU

	if depth == 0 && count {
		m.Perf.Packets++
		if tr := m.Perf.Tracer(); tr != nil {
			start := cpu.FreeAt()
			if now := d.Eng.Now(); start < now {
				start = now
			}
			rec := perf.TraceRecord{InPort: p.InPort, Start: start}
			m.trace = &rec
			defer func() {
				rec.End = cpu.FreeAt()
				tr.Add(rec)
				m.trace = nil
			}()
		}
	}

	// Hardware flow-table match: the NIC forwards offloaded flows itself,
	// so the packet bypasses metadata, checksum, parse, and every software
	// cache, paying only the near-zero host-side bookkeeping. Recirculated
	// packets (depth > 0) are already on the host and stay there.
	if depth == 0 && d.offload != nil && d.offload.on {
		if e, ok := d.offload.hwLookup(p); ok {
			m.charge(perf.StageOffload, costmodel.OffloadHit)
			d.OffloadHits++
			m.Perf.OffloadHits++
			m.traceResolved(perf.ResultOffload)
			actions, _ := e.Actions.([]ofproto.DPAction)
			d.hwForward(m, p, actions)
			return
		}
	}

	// dp_packet metadata (O4).
	m.charge(perf.StageRx, costmodel.PacketMetadataInit)
	if !d.Opts.MetadataPrealloc {
		m.charge(perf.StageRx, costmodel.PacketMetadataMmap)
	}

	// Receive-side checksum validation (O5): packets whose checksum no
	// hardware vouched for (AF_XDP physical receive) are validated in
	// software, unless the experiment assumes the future offload.
	if depth == 0 && p.Offloads&(packet.CsumVerified|packet.CsumPartial) == 0 {
		if !d.Opts.AssumeCsumOffload {
			m.charge(perf.StageRx, costmodel.ChecksumCost(len(p.Data)))
		}
		p.Offloads |= packet.CsumVerified
	}

	// Flow key extraction (the real parser, charged at the calibrated
	// rate).
	key := flow.Extract(p)
	m.charge(perf.StageRx, costmodel.ParseFlowKey)

	e := d.lookupHierarchy(m, key)
	if e == nil {
		// Genuine parse failures are split from policy drops before
		// any slow-path resource is consumed (the kernel flow
		// extractor returns EINVAL, not an upcall).
		if flow.Malformed(p) {
			d.MalformedDrops++
			p.Release()
			return
		}
		d.Upcalls++
		if d.Opts.UpcallQueueCap > 0 {
			// Bounded upcall queue: park the packet for the handler
			// thread, or drop when full (ENOBUFS analog). Misses are
			// counted above even when the queue refuses the packet,
			// matching the kernel's lookup accounting.
			m.traceResolved(perf.ResultUpcall)
			if len(m.upcallQ) >= d.Opts.UpcallQueueCap {
				d.UpcallQueueDrops++
				m.Perf.UpcallQueueDrops++
				p.Release()
				return
			}
			m.upcallQ = append(m.upcallQ, m.newUpcall(key, p))
			if n := uint64(len(m.upcallQ)); n > m.Perf.UpcallQueuePeak {
				m.Perf.UpcallQueuePeak = n
			}
			m.kickUpcalls()
			return
		}
		// Legacy path: inline slow-path translation on this PMD.
		upcallBefore := cpu.BusyTotal()
		m.charge(perf.StageUpcall, costmodel.UpcallCost)
		mf, err := d.translate(key)
		m.Perf.AddUpcall(cpu.BusyTotal() - upcallBefore)
		m.traceResolved(perf.ResultUpcall)
		if err != nil {
			d.UpcallErrors++
			d.Drops++
			d.installNegativeFlow(m, key)
			p.Release()
			return
		}
		e = m.cls.Insert(key, mf.Mask, mf.Actions)
		m.cacheInsert(key, e)
	}

	actions, _ := e.Actions.([]ofproto.DPAction)
	if len(actions) == 0 {
		d.Drops++
		p.Release()
		return
	}
	// Elephant install: a software hit on a flow the offload engine marked
	// means this exact key is not yet in hardware (a resident key would
	// have short-circuited above) — push it down now. One byte compare on
	// the default path.
	if e.OffloadMark != 0 && depth == 0 && d.offload != nil {
		d.offload.installFor(key, e)
	}
	d.execute(m, p, actions, depth)
}

// lookupHierarchy resolves key through the cache hierarchy — EMC, SMC,
// megaflow classifier — charging each level probed and counting the hit at
// the level that resolved it, exactly as dfc_processing walks the caches.
// A dpcls hit back-fills the faster caches; nil means every level missed
// and the caller owns the slow path.
func (d *Datapath) lookupHierarchy(m *PMD, key flow.Key) *dpcls.Entry {
	if d.Opts.EMC {
		if e, ok := m.emc.Lookup(key); ok {
			m.charge(perf.StageEMC, costmodel.EMCHit)
			if m.emc.Len() > d.Opts.ColdFlowThreshold {
				m.charge(perf.StageEMC, costmodel.ColdFlowCacheMiss)
			}
			// An EMC hit is activity on the underlying megaflow: count it
			// there too (as the SMC path does), or the revalidator sees
			// EMC-resident flows as idle and evicts live flows.
			e.Hits++
			d.EMCHits++
			m.Perf.EMCHits++
			m.lastLevel = perf.ResultEMC
			m.traceResolved(perf.ResultEMC)
			return e
		}
		m.charge(perf.StageEMC, costmodel.EMCMissProbe)
	}
	if m.smc != nil {
		if e, ok := m.smc.Lookup(key); ok {
			m.charge(perf.StageSMC, costmodel.SMCHit)
			if m.smc.Len() > d.Opts.ColdFlowThreshold {
				m.charge(perf.StageSMC, costmodel.ColdFlowCacheMiss)
			}
			d.SMCHits++
			m.Perf.SMCHits++
			m.lastLevel = perf.ResultSMC
			m.traceResolved(perf.ResultSMC)
			// An SMC hit refreshes the EMC probabilistically, as
			// dfc_processing does on its way out.
			m.emcInsert(key, e)
			return e
		}
		m.charge(perf.StageSMC, costmodel.SMCMissProbe)
	}
	e, probes := m.cls.Lookup(key)
	m.charge(perf.StageDpcls, sim.Time(probes)*costmodel.DpclsLookupPerSubtable)
	if e == nil {
		m.lastLevel = perf.ResultNone
		return nil
	}
	d.MegaflowHits++
	m.Perf.MegaflowHits++
	m.lastLevel = perf.ResultMegaflow
	m.traceResolved(perf.ResultMegaflow)
	m.cacheInsert(key, e)
	return e
}

// traceResolved notes the caching level that resolved the packet currently
// being traced; only the first level sticks (recirculations re-resolve).
func (m *PMD) traceResolved(r perf.Result) {
	if m.trace != nil && m.trace.Result == perf.ResultNone {
		m.trace.Result = r
	}
}

// execute runs a compiled datapath action list.
func (d *Datapath) execute(m *PMD, p *packet.Packet, actions []ofproto.DPAction, depth int) {
	for _, a := range actions {
		switch a.Type {
		case ofproto.DPOutput:
			out := d.ports[a.Port]
			if out == nil {
				d.Drops++
				p.Release()
				return
			}
			m.charge(perf.StageActions, costmodel.ExecActionOutput)
			if m.trace != nil {
				m.trace.OutPort = a.Port
			}
			d.transmit(m, out, p)

		case ofproto.DPCT:
			m.charge(perf.StageActions, costmodel.ConntrackLookup)
			if a.Commit {
				m.charge(perf.StageActions, costmodel.ConntrackCommit-costmodel.ConntrackLookup)
			}
			ctRemovals := d.Ct.PressureRemovals()
			d.Ct.Process(p, a.Zone, a.Commit, a.NAT)
			if n := d.Ct.PressureRemovals() - ctRemovals; n > 0 {
				m.charge(perf.StageActions, costmodel.ConntrackEvict*sim.Time(n))
				m.Perf.CtEvictions += n
			}
			m.charge(perf.StageActions, costmodel.RecirculationOverhead)
			p.RecircID = a.RecircID
			d.Recirculations++
			if m.trace != nil {
				m.trace.Recircs++
			}
			d.processOne(m, p, depth+1)
			return

		case ofproto.DPTunnelPush:
			m.charge(perf.StageActions, costmodel.TunnelEncap)
			outer, err := d.Encapper.Encap(p, a.Tunnel)
			if err != nil {
				d.Drops++
				return
			}
			// The outer UDP checksum was computed in software by
			// the encapsulation; with estimated offload the cost
			// vanishes (O5's methodology).
			if !d.Opts.AssumeCsumOffload {
				m.charge(perf.StageActions, costmodel.ChecksumCost(len(outer.Data)))
			}
			p = outer

		case ofproto.DPTunnelPop:
			m.charge(perf.StageActions, costmodel.TunnelDecap)
			inner, wasTunnel, err := tunnel.Decap(p)
			if err != nil || !wasTunnel {
				d.Drops++
				return
			}
			inner.InPort = a.Port
			inner.RecircID = 0
			d.Recirculations++
			if m.trace != nil {
				m.trace.Recircs++
			}
			d.processOne(m, inner, depth+1)
			return

		case ofproto.DPPushVLAN:
			m.charge(perf.StageActions, costmodel.ExecActionSimple)
			p.Data = hdr.PushVLAN(p.Data, a.VLAN, a.VLANPrio)
		case ofproto.DPPopVLAN:
			m.charge(perf.StageActions, costmodel.ExecActionSimple)
			p.Data = hdr.PopVLAN(p.Data)
		case ofproto.DPSetEthSrc:
			m.charge(perf.StageActions, costmodel.ExecActionSimple)
			if len(p.Data) >= 12 {
				copy(p.Data[6:12], a.MAC[:])
			}
		case ofproto.DPSetEthDst:
			m.charge(perf.StageActions, costmodel.ExecActionSimple)
			if len(p.Data) >= 6 {
				copy(p.Data[0:6], a.MAC[:])
			}
		case ofproto.DPDecTTL:
			m.charge(perf.StageActions, costmodel.ExecActionSimple)
			decTTL(p)
		case ofproto.DPMeter:
			if !d.Pipeline.MeterAllow(a.MeterID, len(p.Data), d.Eng.Now()) {
				d.MeterDrops++
				d.Drops++
				p.Release()
				return
			}
		}
	}
}

// transmit handles offload fix-ups before handing the packet to the port:
// software checksumming when the egress lacks the offload (O5) and
// software TSO segmentation when the egress lacks TSO (Figure 8's
// pre-TSO-support bars).
func (d *Datapath) transmit(m *PMD, out Port, p *packet.Packet) {
	caps := PortCaps(out)
	cpu := m.CPU

	if p.Offloads&packet.CsumPartial != 0 && !caps.TxCsum {
		if !d.Opts.AssumeCsumOffload {
			m.charge(perf.StageActions, costmodel.ChecksumCost(len(p.Data)))
		}
		p.Offloads &^= packet.CsumPartial
		p.Offloads |= packet.CsumVerified
	}

	txq := d.TxqFor(m, out)
	if p.SegSize > 0 && len(p.Data) > p.SegSize+64 && !caps.TSO && !d.Opts.AssumeTSO {
		// Software segmentation: split into MSS frames, each paying a
		// copy, then transmit each.
		segs := softwareSegment(p)
		d.SegmentedPkts++
		for _, s := range segs {
			m.charge(perf.StageActions, costmodel.CopyCost(len(s.Data)))
			if s.Offloads&packet.CsumPartial != 0 && !d.Opts.AssumeCsumOffload {
				m.charge(perf.StageActions, costmodel.ChecksumCost(len(s.Data)))
				s.Offloads &^= packet.CsumPartial
			}
			d.chargeTxLock(m, out)
			txBefore := cpu.BusyTotal()
			out.Tx(cpu, txq, s)
			m.Perf.Add(perf.StageActions, cpu.BusyTotal()-txBefore)
		}
		m.touch(out)
		return
	}
	d.chargeTxLock(m, out)
	txBefore := cpu.BusyTotal()
	out.Tx(cpu, txq, p)
	m.Perf.Add(perf.StageActions, cpu.BusyTotal()-txBefore)
	m.touch(out)
}

// softwareSegment splits an oversized TCP packet at its SegSize.
func softwareSegment(p *packet.Packet) []*packet.Packet {
	hdrLen := p.L4Offset
	if hdrLen <= 0 || hdrLen > len(p.Data) {
		hdrLen = 54
	} else if hdrLen+hdr.TCPMinSize <= len(p.Data) {
		hdrLen += int(p.Data[hdrLen+12]>>4) * 4
	}
	if hdrLen > len(p.Data) {
		hdrLen = len(p.Data)
	}
	payload := p.Data[hdrLen:]
	var out []*packet.Packet
	for off := 0; off < len(payload); off += p.SegSize {
		end := off + p.SegSize
		if end > len(payload) {
			end = len(payload)
		}
		data := make([]byte, hdrLen+end-off)
		copy(data, p.Data[:hdrLen])
		copy(data[hdrLen:], payload[off:end])
		s := packet.New(data)
		s.Metadata = p.Metadata
		s.SegSize = 0
		out = append(out, s)
	}
	if len(out) == 0 {
		return []*packet.Packet{p}
	}
	return out
}

func decTTL(p *packet.Packet) {
	eth, err := hdr.ParseEthernet(p.Data)
	if err != nil || eth.Type != hdr.EtherTypeIPv4 {
		return
	}
	raw := p.Data[eth.HeaderLen:]
	ip, err := hdr.ParseIPv4(raw)
	if err != nil || ip.TTL == 0 {
		return
	}
	ip.TTL--
	ip.SerializeTo(raw[:hdr.IPv4MinSize])
}
