package core

import (
	"testing"
	"time"

	"ovsxdp/internal/sim"
)

// chainWorkload schedules a self-perpetuating event chain that records the
// virtual time of every firing — a minimal stand-in for a simulation whose
// event stream must not be perturbed by how the run loop is driven.
func chainWorkload(eng *sim.Engine, until sim.Time) *[]sim.Time {
	var rec []sim.Time
	var tick func()
	tick = func() {
		rec = append(rec, eng.Now())
		next := eng.Now() + 37*sim.Microsecond
		if next <= until {
			eng.ScheduleAt(next, tick)
		}
	}
	eng.ScheduleAt(0, tick)
	return &rec
}

// TestControllerSlicedRunIsIdentical pins the determinism contract: driving
// the engine through a Controller in 100µs slices executes the exact same
// event stream as one plain RunUntil.
func TestControllerSlicedRunIsIdentical(t *testing.T) {
	const until = 5 * sim.Millisecond

	plain := sim.NewEngine(1)
	recPlain := chainWorkload(plain, until)
	plain.RunUntil(until)

	sliced := sim.NewEngine(1)
	recSliced := chainWorkload(sliced, until)
	ctl := NewController(sliced)
	ctl.Run(until)

	if len(*recPlain) != len(*recSliced) {
		t.Fatalf("event counts differ: plain %d, sliced %d", len(*recPlain), len(*recSliced))
	}
	for i := range *recPlain {
		if (*recPlain)[i] != (*recSliced)[i] {
			t.Fatalf("event %d fired at %v plain but %v sliced", i, (*recPlain)[i], (*recSliced)[i])
		}
	}
	if plain.Now() != sliced.Now() {
		t.Fatalf("final times differ: plain %v, sliced %v", plain.Now(), sliced.Now())
	}
}

// TestControllerHoldAndDo parks the engine at an exact virtual instant,
// applies an operation from another goroutine while parked, and resumes.
func TestControllerHoldAndDo(t *testing.T) {
	eng := sim.NewEngine(1)
	chainWorkload(eng, 2*sim.Millisecond)
	ctl := NewController(eng)

	h := ctl.HoldAt(1 * sim.Millisecond)
	var atHold sim.Time
	opRan := false
	go func() {
		<-h.Reached
		ctl.Do(func() {
			atHold = eng.Now()
			opRan = true
		})
		h.Release()
	}()

	ctl.Run(2 * sim.Millisecond)
	if !opRan {
		t.Fatal("operation submitted at the hold never ran")
	}
	if atHold != 1*sim.Millisecond {
		t.Fatalf("operation saw t=%v, want exactly 1ms", atHold)
	}
	if eng.Now() != 2*sim.Millisecond {
		t.Fatalf("run stopped at %v, want 2ms", eng.Now())
	}
}

// TestControllerStopReleasesHolds verifies Stop unparks a held run so no
// client goroutine can dangle, and that Run returns early.
func TestControllerStopReleasesHolds(t *testing.T) {
	eng := sim.NewEngine(1)
	chainWorkload(eng, 10*sim.Millisecond)
	ctl := NewController(eng)

	h := ctl.HoldAt(1 * sim.Millisecond)
	go func() {
		<-h.Reached
		ctl.Stop()
	}()

	done := make(chan struct{})
	go func() {
		ctl.Run(10 * sim.Millisecond)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after Stop")
	}
	if eng.Now() != 1*sim.Millisecond {
		t.Fatalf("stopped at %v, want the 1ms hold point", eng.Now())
	}
}

// TestControllerServeIdle applies operations with the engine parked and
// drains on stop.
func TestControllerServeIdle(t *testing.T) {
	eng := sim.NewEngine(1)
	ctl := NewController(eng)
	stop := make(chan struct{})
	served := make(chan struct{})
	go func() {
		ctl.Do(func() {})
		close(served)
		close(stop)
	}()
	ctl.ServeIdle(stop)
	select {
	case <-served:
	default:
		t.Fatal("ServeIdle returned before the submitted operation ran")
	}
}
