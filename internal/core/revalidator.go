package core

import (
	"ovsxdp/internal/dpcls"
	"ovsxdp/internal/sim"
)

// Revalidator ages out idle megaflows, the way ovs-vswitchd's revalidator
// threads do: a megaflow that saw no traffic for IdleSweeps consecutive
// sweeps is removed (and its EMC entries die with the next flush). Without
// this, a long-running switch accumulates one megaflow per decision path it
// ever made.
type Revalidator struct {
	dp *Datapath
	// Interval between sweeps.
	Interval sim.Time
	// IdleSweeps is how many hit-less sweeps a flow survives.
	IdleSweeps int

	lastHits map[*dpcls.Entry]uint64
	idleFor  map[*dpcls.Entry]int
	running  bool

	// Stats.
	Sweeps  uint64
	Evicted uint64
}

// StartRevalidator launches periodic sweeps on the datapath's engine.
func (d *Datapath) StartRevalidator(interval sim.Time, idleSweeps int) *Revalidator {
	if idleSweeps <= 0 {
		idleSweeps = 2
	}
	r := &Revalidator{
		dp:         d,
		Interval:   interval,
		IdleSweeps: idleSweeps,
		lastHits:   make(map[*dpcls.Entry]uint64),
		idleFor:    make(map[*dpcls.Entry]int),
		running:    true,
	}
	d.Eng.Schedule(interval, r.sweep)
	return r
}

// Stop halts future sweeps.
func (r *Revalidator) Stop() { r.running = false }

// sweep examines every PMD's megaflows and evicts the idle ones.
func (r *Revalidator) sweep() {
	if !r.running {
		return
	}
	r.Sweeps++
	live := make(map[*dpcls.Entry]bool)
	for _, m := range r.dp.pmds {
		for _, e := range m.cls.Entries() {
			live[e] = true
			if e.Hits != r.lastHits[e] {
				r.lastHits[e] = e.Hits
				r.idleFor[e] = 0
				continue
			}
			r.idleFor[e]++
			if r.idleFor[e] >= r.IdleSweeps {
				if m.cls.Remove(e) {
					r.Evicted++
				}
				// Stale EMC entries pointing at the removed
				// megaflow are dropped wholesale; they rebuild
				// from the classifier on the next packets.
				m.emc.Flush()
				delete(r.lastHits, e)
				delete(r.idleFor, e)
				live[e] = false
			}
		}
	}
	// Forget tracking state for entries that vanished by other means
	// (FlushFlows on rule changes).
	for e := range r.lastHits {
		if !live[e] {
			delete(r.lastHits, e)
			delete(r.idleFor, e)
		}
	}
	r.dp.Eng.Schedule(r.Interval, r.sweep)
}

// FlowCount reports megaflows across all PMDs (diagnostics).
func (d *Datapath) FlowCount() int {
	n := 0
	for _, m := range d.pmds {
		n += m.cls.Len()
	}
	return n
}
