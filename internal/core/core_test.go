package core

import (
	"errors"
	"testing"

	"ovsxdp/internal/afxdp"
	"ovsxdp/internal/ebpf"
	"ovsxdp/internal/flow"
	"ovsxdp/internal/netlinksim"
	"ovsxdp/internal/nicsim"
	"ovsxdp/internal/ofproto"
	"ovsxdp/internal/packet"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/sim"
	"ovsxdp/internal/tunnel"
	"ovsxdp/internal/vdev"
	"ovsxdp/internal/xdp"
)

var (
	macA = hdr.MAC{0x02, 0, 0, 0, 0, 0x0a}
	macB = hdr.MAC{0x02, 0, 0, 0, 0, 0x0b}
)

func udpPkt(sport uint16) *packet.Packet {
	return packet.New(hdr.NewBuilder().Eth(macA, macB).
		IPv4H(hdr.MakeIP4(10, 0, 0, 1), hdr.MakeIP4(10, 0, 0, 2), 64).
		UDPH(sport, 2000).PayloadLen(18).PadTo(64).Build())
}

// forwardPipeline sends in_port=1 to port 2.
func forwardPipeline() *ofproto.Pipeline {
	pl := ofproto.NewPipeline()
	m := flow.NewMaskBuilder().InPort().Build()
	pl.AddRule(&ofproto.Rule{TableID: 0, Priority: 1,
		Match:   ofproto.NewMatch(flow.Fields{InPort: 1}, m),
		Actions: []ofproto.Action{ofproto.Output(2)}})
	return pl
}

// p2pBed wires an AF_XDP (or DPDK) P2P forwarding testbed: NIC A receives
// generated packets, the datapath forwards them out NIC B, whose wire
// counts deliveries.
type p2pBed struct {
	eng   *sim.Engine
	dp    *Datapath
	pmd   *PMD
	nicA  *nicsim.NIC
	nicB  *nicsim.NIC
	sent  int
	recvd int
}

func newAFXDPP2P(t *testing.T, opts Options, lock afxdp.LockMode, mode Mode) *p2pBed {
	t.Helper()
	eng := sim.NewEngine(1)
	bed := &p2pBed{eng: eng}
	bed.nicA = nicsim.New(eng, nicsim.Config{Name: "ethA", Ifindex: 1, Queues: 1})
	bed.nicB = nicsim.New(eng, nicsim.Config{Name: "ethB", Ifindex: 2, Queues: 1})
	bed.nicB.ConnectWire(func(p *packet.Packet) { bed.recvd++ })
	if _, err := AttachDefaultProgram(bed.nicA); err != nil {
		t.Fatal(err)
	}
	if _, err := AttachDefaultProgram(bed.nicB); err != nil {
		t.Fatal(err)
	}

	dp := NewDatapath(eng, forwardPipeline(), opts)
	portA := NewAFXDPPort(AFXDPPortConfig{ID: 1, NIC: bed.nicA, Eng: eng, LockMode: lock})
	portB := NewAFXDPPort(AFXDPPortConfig{ID: 2, NIC: bed.nicB, Eng: eng, LockMode: lock})
	dp.AddPort(portA)
	dp.AddPort(portB)

	pmd := dp.NewPMD(mode, nil)
	pmd.AssignRxQueue(portA, 0)
	pmd.Start()

	bed.dp = dp
	bed.pmd = pmd
	return bed
}

// offer injects n packets of one flow, spaced at interval.
func (b *p2pBed) offer(n int, interval sim.Time) {
	for i := 0; i < n; i++ {
		b.eng.Schedule(sim.Time(i)*interval, func() {
			b.nicA.Receive(udpPkt(7777))
			b.sent++
		})
	}
}

func TestAFXDPForwardEndToEnd(t *testing.T) {
	bed := newAFXDPP2P(t, DefaultOptions(), afxdp.LockSpinBatched, ModePoll)
	bed.offer(100, 1000)
	bed.eng.RunUntil(10 * sim.Millisecond)
	if bed.recvd != 100 {
		t.Fatalf("received %d/100 packets", bed.recvd)
	}
	// One upcall (first packet), then EMC hits.
	if bed.dp.Upcalls != 1 {
		t.Fatalf("upcalls = %d, want 1", bed.dp.Upcalls)
	}
	if bed.dp.EMCHits < 98 {
		t.Fatalf("EMC hits = %d, want ~99", bed.dp.EMCHits)
	}
	// CPU time must appear in both user (PMD) and softirq (XDP + tx
	// drain) categories.
	usage := bed.eng.CPUReport(bed.eng.Now())
	if usage[sim.User] <= 0 || usage[sim.Softirq] <= 0 {
		t.Fatalf("usage = %s", usage)
	}
}

func TestAFXDPInterruptModeForwards(t *testing.T) {
	bed := newAFXDPP2P(t, DefaultOptions(), afxdp.LockSpinBatched, ModeInterrupt)
	bed.offer(50, 2000)
	bed.eng.RunUntil(10 * sim.Millisecond)
	if bed.recvd != 50 {
		t.Fatalf("received %d/50 in interrupt mode", bed.recvd)
	}
}

// TestTable2RateLadder reproduces the Table 2 ordering end to end: each
// configuration must sustain a strictly higher rate than the one before.
func TestTable2RateLadder(t *testing.T) {
	type cfg struct {
		name string
		opts Options
		lock afxdp.LockMode
		mode Mode
	}
	base := DefaultOptions()
	noO4 := base
	noO4.MetadataPrealloc = false
	withO5 := base
	withO5.AssumeCsumOffload = true
	cfgs := []cfg{
		{"none", noO4, afxdp.LockMutex, ModeNonPMD},
		{"O1", noO4, afxdp.LockMutex, ModePoll},
		{"O1+O2", noO4, afxdp.LockSpin, ModePoll},
		{"O1..O3", noO4, afxdp.LockSpinBatched, ModePoll},
		{"O1..O4", base, afxdp.LockSpinBatched, ModePoll},
		{"O1..O5", withO5, afxdp.LockSpinBatched, ModePoll},
	}
	// Measure the PMD's user-CPU cost per packet for each configuration;
	// rate ~ 1/cost. (The full lossless-rate search lives in the
	// experiments package; this is the ordering contract.)
	var costs []float64
	for _, c := range cfgs {
		bed := newAFXDPP2P(t, c.opts, c.lock, c.mode)
		bed.offer(200, 3000)
		bed.eng.RunUntil(20 * sim.Millisecond)
		if bed.recvd < 190 {
			t.Fatalf("%s: received %d/200", c.name, bed.recvd)
		}
		busy := bed.pmd.CPU.Busy(sim.User) + bed.pmd.CPU.Busy(sim.System) - bed.pmd.IdleTime
		costs = append(costs, float64(busy)/float64(bed.recvd))
	}
	for i := 1; i < len(costs); i++ {
		if costs[i] >= costs[i-1] {
			t.Fatalf("ladder violated at %s: %.1f >= %.1f ns/pkt",
				cfgs[i].name, costs[i], costs[i-1])
		}
	}
}

func TestDPDKForwardEndToEnd(t *testing.T) {
	eng := sim.NewEngine(1)
	nicA := nicsim.New(eng, nicsim.Config{Name: "dpdk0", Queues: 1,
		Offloads: nicsim.Offloads{TxCsum: true, TSO: true, RSSHashDeliver: true}})
	nicB := nicsim.New(eng, nicsim.Config{Name: "dpdk1", Queues: 1,
		Offloads: nicsim.Offloads{TxCsum: true, TSO: true}})
	recvd := 0
	nicB.ConnectWire(func(*packet.Packet) { recvd++ })

	dp := NewDatapath(eng, forwardPipeline(), DefaultOptions())
	dp.AddPort(NewDPDKPort(1, nicA))
	portB := NewDPDKPort(2, nicB)
	dp.AddPort(portB)
	pmd := dp.NewPMD(ModePoll, nil)
	pmd.AssignRxQueue(dp.Port(1), 0)
	pmd.Start()

	for i := 0; i < 100; i++ {
		eng.Schedule(sim.Time(i)*500, func() { nicA.Receive(udpPkt(1)) })
	}
	eng.RunUntil(5 * sim.Millisecond)
	if recvd != 100 {
		t.Fatalf("received %d/100 via DPDK", recvd)
	}
	// DPDK keeps everything in userspace: no softirq time at all.
	usage := eng.CPUReport(eng.Now())
	if usage[sim.Softirq] != 0 {
		t.Fatalf("DPDK must not use softirq: %s", usage)
	}
}

func TestDPDKFasterThanAFXDP(t *testing.T) {
	perPkt := func(mk func() (*sim.Engine, *PMD, *int)) float64 {
		eng, pmd, recvd := mk()
		eng.RunUntil(20 * sim.Millisecond)
		if *recvd < 190 {
			t.Fatalf("received %d", *recvd)
		}
		return float64(pmd.CPU.BusyTotal()-pmd.IdleTime) / float64(*recvd)
	}
	afxdpCost := perPkt(func() (*sim.Engine, *PMD, *int) {
		bed := newAFXDPP2P(t, DefaultOptions(), afxdp.LockSpinBatched, ModePoll)
		bed.offer(200, 3000)
		return bed.eng, bed.pmd, &bed.recvd
	})
	dpdkCost := perPkt(func() (*sim.Engine, *PMD, *int) {
		eng := sim.NewEngine(1)
		nicA := nicsim.New(eng, nicsim.Config{Name: "d0", Queues: 1})
		nicB := nicsim.New(eng, nicsim.Config{Name: "d1", Queues: 1})
		recvd := 0
		nicB.ConnectWire(func(*packet.Packet) { recvd++ })
		dp := NewDatapath(eng, forwardPipeline(), DefaultOptions())
		dp.AddPort(NewDPDKPort(1, nicA))
		dp.AddPort(NewDPDKPort(2, nicB))
		pmd := dp.NewPMD(ModePoll, nil)
		pmd.AssignRxQueue(dp.Port(1), 0)
		pmd.Start()
		for i := 0; i < 200; i++ {
			eng.Schedule(sim.Time(i)*3000, func() { nicA.Receive(udpPkt(1)) })
		}
		return eng, pmd, &recvd
	})
	if dpdkCost >= afxdpCost {
		t.Fatalf("DPDK per-packet cost %.0f must beat AF_XDP %.0f", dpdkCost, afxdpCost)
	}
}

func TestVhostPortRoundTrip(t *testing.T) {
	eng := sim.NewEngine(1)
	dev := vdev.NewVhostUser("vhost0")
	dp := NewDatapath(eng, forwardPipeline(), DefaultOptions())
	vp := NewVhostPort(1, dev)
	dp.AddPort(vp)
	sinkDev := vdev.NewVhostUser("vhost1")
	dp.AddPort(NewVhostPort(2, sinkDev))
	pmd := dp.NewPMD(ModePoll, nil)
	pmd.AssignRxQueue(vp, 0)
	pmd.Start()

	// Guest transmits 10 packets.
	for i := 0; i < 10; i++ {
		dev.FromGuest.Push(udpPkt(uint16(i)))
	}
	eng.RunUntil(sim.Millisecond)
	if got := sinkDev.ToGuest.Len(); got != 10 {
		t.Fatalf("delivered %d/10 to the destination guest ring", got)
	}
}

func TestTapPortChargesSystemTime(t *testing.T) {
	eng := sim.NewEngine(1)
	tap := vdev.NewTap("tap0")
	dp := NewDatapath(eng, forwardPipeline(), DefaultOptions())
	tp := NewTapPort(1, tap)
	dp.AddPort(tp)
	tap2 := vdev.NewTap("tap1")
	dp.AddPort(NewTapPort(2, tap2))
	pmd := dp.NewPMD(ModePoll, nil)
	pmd.AssignRxQueue(tp, 0)
	pmd.Start()

	for i := 0; i < 20; i++ {
		tap.FromKernel.Push(udpPkt(uint16(i)))
	}
	eng.RunUntil(sim.Millisecond)
	if tap2.ToKernel.Len() != 20 {
		t.Fatalf("delivered %d/20", tap2.ToKernel.Len())
	}
	if pmd.CPU.Busy(sim.System) == 0 {
		t.Fatal("tap I/O must charge system (syscall) time")
	}
}

func TestCTRecirculationInUserspace(t *testing.T) {
	eng := sim.NewEngine(1)
	pl := ofproto.NewPipeline()
	mIn := flow.NewMaskBuilder().InPort().Build()
	mCt := flow.NewMaskBuilder().CtState(0xff).Build()
	pl.AddRule(&ofproto.Rule{TableID: 0, Priority: 1,
		Match:   ofproto.NewMatch(flow.Fields{InPort: 1}, mIn),
		Actions: []ofproto.Action{ofproto.CT(3, true, 10)}})
	pl.AddRule(&ofproto.Rule{TableID: 10, Priority: 1,
		Match:   ofproto.NewMatch(flow.Fields{CtState: 0x03}, mCt),
		Actions: []ofproto.Action{ofproto.Output(2)}})

	dp := NewDatapath(eng, pl, DefaultOptions())
	tapIn := vdev.NewTap("in")
	tapOut := vdev.NewTap("out")
	inPort := NewTapPort(1, tapIn)
	dp.AddPort(inPort)
	dp.AddPort(NewTapPort(2, tapOut))
	pmd := dp.NewPMD(ModePoll, nil)
	pmd.AssignRxQueue(inPort, 0)
	pmd.Start()

	syn := packet.New(hdr.NewBuilder().Eth(macA, macB).
		IPv4H(hdr.MakeIP4(10, 0, 0, 1), hdr.MakeIP4(10, 0, 0, 2), 64).
		TCPH(1000, 80, 1, 0, hdr.TCPSyn).PadTo(64).Build())
	tapIn.FromKernel.Push(syn)
	eng.RunUntil(sim.Millisecond)

	if tapOut.ToKernel.Len() != 1 {
		t.Fatalf("ct+recirc did not forward (drops=%d)", dp.Drops)
	}
	if dp.Recirculations != 1 {
		t.Fatalf("recirculations = %d", dp.Recirculations)
	}
	if dp.Ct.ZoneCount(3) != 1 {
		t.Fatal("connection not committed")
	}
	// Two passes -> two megaflows.
	if pmd.Classifier().Len() != 2 {
		t.Fatalf("megaflows = %d, want 2", pmd.Classifier().Len())
	}
}

func TestTunnelPushPopThroughDatapath(t *testing.T) {
	eng := sim.NewEngine(1)

	// Routing for the tunnel next hop.
	kern := netlinksim.NewKernel()
	idx, _ := kern.AddLink("uplink", "mlx5", hdr.MAC{2, 0xff, 0, 0, 0, 1}, 1600)
	kern.AddAddr("uplink", hdr.MakeIP4(172, 16, 0, 1), 16)
	kern.AddNeigh(netlinksim.Neigh{IP: hdr.MakeIP4(172, 16, 0, 2), MAC: hdr.MAC{2, 0xff, 0, 0, 0, 2}, LinkIndex: idx})
	cache := netlinksim.NewCache(kern)

	pl := ofproto.NewPipeline()
	mIn := flow.NewMaskBuilder().InPort().Build()
	// Encap side: traffic from port 1 goes into a Geneve tunnel out
	// port 2.
	pl.AddRule(&ofproto.Rule{TableID: 0, Priority: 1,
		Match: ofproto.NewMatch(flow.Fields{InPort: 1}, mIn),
		Actions: []ofproto.Action{
			ofproto.SetTunnel(tunnel.Config{Kind: tunnel.Geneve,
				LocalIP: hdr.MakeIP4(172, 16, 0, 1), RemoteIP: hdr.MakeIP4(172, 16, 0, 2), VNI: 88}),
			ofproto.Output(2)}})
	// Decap side: tunneled traffic arriving on port 3 pops to virtual
	// port 100, whose pass forwards to port 4.
	pl.AddRule(&ofproto.Rule{TableID: 0, Priority: 2,
		Match:   ofproto.NewMatch(flow.Fields{InPort: 3}, mIn),
		Actions: []ofproto.Action{ofproto.TunnelPop(100)}})
	pl.AddRule(&ofproto.Rule{TableID: 0, Priority: 1,
		Match:   ofproto.NewMatch(flow.Fields{InPort: 100}, mIn),
		Actions: []ofproto.Action{ofproto.Output(4)}})

	dp := NewDatapath(eng, pl, DefaultOptions())
	dp.Encapper = tunnel.NewEncapper(cache)

	taps := make([]*vdev.Tap, 5)
	for i := 1; i <= 4; i++ {
		taps[i-1] = vdev.NewTap("t")
		dp.AddPort(NewTapPort(uint32(i), taps[i-1]))
	}
	pmd := dp.NewPMD(ModePoll, nil)
	pmd.AssignRxQueue(dp.Port(1), 0)
	pmd.AssignRxQueue(dp.Port(3), 0)
	pmd.Start()

	// Encap: inner frame in, Geneve frame out port 2.
	taps[0].FromKernel.Push(udpPkt(1))
	eng.RunUntil(sim.Millisecond)
	outFrames := taps[1].ToKernel.Pop(10)
	if len(outFrames) != 1 {
		t.Fatalf("encap output = %d frames", len(outFrames))
	}
	inner, wasTunnel, err := tunnel.Decap(outFrames[0])
	if err != nil || !wasTunnel || inner.Tunnel.VNI != 88 {
		t.Fatalf("output is not a VNI-88 Geneve frame: %v %v", wasTunnel, err)
	}

	// Decap: feed the Geneve frame into port 3; the inner frame must
	// appear at port 4.
	outFrames[0].ResetMetadata()
	taps[2].FromKernel.Push(outFrames[0])
	eng.RunUntil(2 * sim.Millisecond)
	got := taps[3].ToKernel.Pop(10)
	if len(got) != 1 {
		t.Fatalf("decap output = %d frames (drops=%d)", len(got), dp.Drops)
	}
	if got[0].Tunnel == nil || got[0].Tunnel.VNI != 88 {
		t.Fatal("decapped packet lost tunnel metadata")
	}
}

func TestSoftwareTSOSegmentation(t *testing.T) {
	eng := sim.NewEngine(1)
	dp := NewDatapath(eng, forwardPipeline(), DefaultOptions())
	tapIn := vdev.NewTap("in")
	inPort := NewTapPort(1, tapIn)
	dp.AddPort(inPort)

	// Egress via AF_XDP (no TSO hardware).
	nicB := nicsim.New(eng, nicsim.Config{Name: "ethB", Ifindex: 2, Queues: 1})
	if _, err := AttachDefaultProgram(nicB); err != nil {
		t.Fatal(err)
	}
	frames := 0
	nicB.ConnectWire(func(*packet.Packet) { frames++ })
	dp.AddPort(NewAFXDPPort(AFXDPPortConfig{ID: 2, NIC: nicB, Eng: eng}))
	pmd := dp.NewPMD(ModePoll, nil)
	pmd.AssignRxQueue(inPort, 0)
	pmd.Start()

	big := packet.New(hdr.NewBuilder().Eth(macA, macB).
		IPv4H(hdr.MakeIP4(10, 0, 0, 1), hdr.MakeIP4(10, 0, 0, 2), 64).
		TCPH(1, 2, 0, 0, hdr.TCPAck).PayloadLen(8000).Build())
	big.SegSize = 1460
	big.Offloads = packet.TSO
	tapIn.FromKernel.Push(big)
	eng.RunUntil(sim.Millisecond)

	want := (8000 + 1459) / 1460
	if frames != want {
		t.Fatalf("wire frames = %d, want %d (software TSO)", frames, want)
	}
	if dp.SegmentedPkts != 1 {
		t.Fatalf("segmented = %d", dp.SegmentedPkts)
	}

	// With AssumeTSO the oversized frame passes through whole.
	opts := DefaultOptions()
	opts.AssumeTSO = true
	eng2 := sim.NewEngine(1)
	dp2 := NewDatapath(eng2, forwardPipeline(), opts)
	tapIn2 := vdev.NewTap("in")
	inPort2 := NewTapPort(1, tapIn2)
	dp2.AddPort(inPort2)
	nicB2 := nicsim.New(eng2, nicsim.Config{Name: "ethB", Queues: 1})
	if _, err := AttachDefaultProgram(nicB2); err != nil {
		t.Fatal(err)
	}
	frames2 := 0
	nicB2.ConnectWire(func(*packet.Packet) { frames2++ })
	dp2.AddPort(NewAFXDPPort(AFXDPPortConfig{ID: 2, NIC: nicB2, Eng: eng2}))
	pmd2 := dp2.NewPMD(ModePoll, nil)
	pmd2.AssignRxQueue(inPort2, 0)
	pmd2.Start()
	big2 := big.Clone()
	big2.ResetMetadata()
	big2.SegSize = 1460
	tapIn2.FromKernel.Push(big2)
	eng2.RunUntil(sim.Millisecond)
	if frames2 != 1 {
		t.Fatalf("AssumeTSO frames = %d, want 1", frames2)
	}
}

func TestEMCAblation(t *testing.T) {
	// With the EMC off, every packet pays a classifier lookup; per-packet
	// cost must rise.
	cost := func(emcOn bool) float64 {
		opts := DefaultOptions()
		opts.EMC = emcOn
		bed := newAFXDPP2P(t, opts, afxdp.LockSpinBatched, ModePoll)
		bed.offer(200, 3000)
		bed.eng.RunUntil(20 * sim.Millisecond)
		return float64(bed.pmd.CPU.Busy(sim.User)-bed.pmd.IdleTime) / float64(bed.recvd)
	}
	with, without := cost(true), cost(false)
	if without <= with {
		t.Fatalf("EMC off (%.0f ns/pkt) must cost more than on (%.0f)", without, with)
	}
}

func TestMeterDropsExcessTraffic(t *testing.T) {
	eng := sim.NewEngine(1)
	pl := ofproto.NewPipeline()
	pl.SetMeter(1, &ofproto.TokenBucket{RatePerSec: 1000, Burst: 5, PerPacket: true})
	mIn := flow.NewMaskBuilder().InPort().Build()
	pl.AddRule(&ofproto.Rule{TableID: 0, Priority: 1,
		Match:   ofproto.NewMatch(flow.Fields{InPort: 1}, mIn),
		Actions: []ofproto.Action{ofproto.Meter(1), ofproto.Output(2)}})

	dp := NewDatapath(eng, pl, DefaultOptions())
	tapIn, tapOut := vdev.NewTap("in"), vdev.NewTap("out")
	inPort := NewTapPort(1, tapIn)
	dp.AddPort(inPort)
	dp.AddPort(NewTapPort(2, tapOut))
	pmd := dp.NewPMD(ModePoll, nil)
	pmd.AssignRxQueue(inPort, 0)
	pmd.Start()

	// 50 packets in one instant: only the burst passes.
	for i := 0; i < 50; i++ {
		tapIn.FromKernel.Push(udpPkt(uint16(i)))
	}
	eng.RunUntil(sim.Millisecond)
	passed := tapOut.ToKernel.Len()
	if passed > 8 || passed < 4 {
		t.Fatalf("meter passed %d packets, want ~5", passed)
	}
	if dp.MeterDrops == 0 {
		t.Fatal("meter drops not counted")
	}
}

func TestThousandFlowsColdPenalty(t *testing.T) {
	cost := func(flows int) float64 {
		bed := newAFXDPP2P(t, DefaultOptions(), afxdp.LockSpinBatched, ModePoll)
		n := 3000
		for i := 0; i < n; i++ {
			sport := uint16(1000 + i%flows)
			bed.eng.Schedule(sim.Time(i)*1500, func() { bed.nicA.Receive(udpPkt(sport)) })
		}
		bed.eng.RunUntil(30 * sim.Millisecond)
		if bed.recvd < n*9/10 {
			t.Fatalf("flows=%d received %d/%d", flows, bed.recvd, n)
		}
		return float64(bed.pmd.CPU.Busy(sim.User)-bed.pmd.IdleTime) / float64(bed.recvd)
	}
	one, thousand := cost(1), cost(1000)
	if thousand <= one {
		t.Fatalf("1000 flows (%.0f ns/pkt) must cost more than 1 flow (%.0f)", thousand, one)
	}
}

func TestZeroCopyReducesSoftirqCost(t *testing.T) {
	perPkt := func(zc bool) float64 {
		eng := sim.NewEngine(1)
		nicA := nicsim.New(eng, nicsim.Config{Name: "ethA", Ifindex: 1, Queues: 1})
		nicB := nicsim.New(eng, nicsim.Config{Name: "ethB", Ifindex: 2, Queues: 1})
		recvd := 0
		nicB.ConnectWire(func(*packet.Packet) { recvd++ })
		if _, err := AttachDefaultProgram(nicA); err != nil {
			t.Fatal(err)
		}
		if _, err := AttachDefaultProgram(nicB); err != nil {
			t.Fatal(err)
		}
		dp := NewDatapath(eng, forwardPipeline(), DefaultOptions())
		portA := NewAFXDPPort(AFXDPPortConfig{ID: 1, NIC: nicA, Eng: eng, ZeroCopy: zc})
		dp.AddPort(portA)
		dp.AddPort(NewAFXDPPort(AFXDPPortConfig{ID: 2, NIC: nicB, Eng: eng, ZeroCopy: zc}))
		pmd := dp.NewPMD(ModePoll, nil)
		pmd.AssignRxQueue(portA, 0)
		pmd.Start()
		for i := 0; i < 200; i++ {
			eng.Schedule(sim.Time(i)*2000, func() { nicA.Receive(udpPkt(3)) })
		}
		eng.RunUntil(5 * sim.Millisecond)
		if recvd < 190 {
			t.Fatalf("zc=%v received %d", zc, recvd)
		}
		var softirq sim.Time
		for _, c := range eng.CPUs() {
			softirq += c.Busy(sim.Softirq)
		}
		return float64(softirq) / float64(recvd)
	}
	copyMode, zcMode := perPkt(false), perPkt(true)
	if zcMode >= copyMode {
		t.Fatalf("zero-copy softirq cost %.0f must beat copy mode %.0f", zcMode, copyMode)
	}
}

// TestPerQueueSteeringSeparatesManagementTraffic reproduces the Figure 6(b)
// deployment: ntuple rules steer SSH to queue 0, which has no XDP program
// (it feeds the kernel stack), while the data queues run the OVS program.
func TestPerQueueSteeringSeparatesManagementTraffic(t *testing.T) {
	eng := sim.NewEngine(1)
	nic := nicsim.New(eng, nicsim.Config{Name: "mlx0", Ifindex: 1, Queues: 4,
		AttachModel: xdp.ModelPerQueue})
	// SSH to queue 0 in hardware.
	if err := nic.AddSteeringRule(nicsim.SteeringRule{Proto: hdr.IPProtoTCP, DstPort: 22, Queue: 0}); err != nil {
		t.Fatal(err)
	}
	// Data flows elsewhere via RSS over queues 1-3 would need all queues
	// programmed; steer the benchmark flow explicitly to queue 2.
	if err := nic.AddSteeringRule(nicsim.SteeringRule{Proto: hdr.IPProtoUDP, DstPort: 2000, Queue: 2}); err != nil {
		t.Fatal(err)
	}

	xskMap := ebpf.NewXskMap(4)
	if err := xskMap.SetTarget(2, 2); err != nil {
		t.Fatal(err)
	}
	prog := xdp.NewPassToXsk(xskMap)
	if err := prog.Load(); err != nil {
		t.Fatal(err)
	}
	if err := nic.Hook.AttachQueue(2, prog); err != nil {
		t.Fatal(err)
	}

	cpu := eng.NewCPU("softirq0")
	toStack, toXsk := 0, 0
	for i := 0; i < 20; i++ {
		// Management: SSH.
		ssh := packet.New(hdr.NewBuilder().Eth(macA, macB).
			IPv4H(hdr.MakeIP4(10, 0, 0, 1), hdr.MakeIP4(10, 0, 0, 2), 64).
			TCPH(40000, 22, 1, 0, hdr.TCPAck).PadTo(64).Build())
		nic.Receive(ssh)
		// Data.
		nic.Receive(udpPkt(uint16(i)))
	}
	for q := 0; q < 4; q++ {
		passed, _ := nic.DriverReceive(nic.Queue(q), 64, cpu, nicsim.DriverVerdicts{
			ToXsk: func(uint32, *packet.Packet) { toXsk++ },
		})
		toStack += len(passed)
	}
	if toStack != 20 || toXsk != 20 {
		t.Fatalf("stack=%d xsk=%d, want 20/20 split", toStack, toXsk)
	}
}

// TestNegativeFlowOnUpcallError: a failed upcall installs a short-lived
// drop megaflow so follow-up packets of the failing flow drop in the fast
// path instead of re-upcalling; the entry self-expires after its TTL and
// the flow gets a fresh upcall.
func TestNegativeFlowOnUpcallError(t *testing.T) {
	eng := sim.NewEngine(1)
	dp := NewDatapath(eng, forwardPipeline(), DefaultOptions())
	dp.SetUpcall(func(flow.Key) (ofproto.Megaflow, error) {
		return ofproto.Megaflow{}, errors.New("slow path down")
	})

	send := func() {
		p := udpPkt(1000)
		p.InPort = 1
		dp.Execute(p)
	}
	send()
	if dp.Upcalls != 1 || dp.UpcallErrors != 1 || dp.Drops != 1 {
		t.Fatalf("after failed upcall: upcalls=%d errors=%d drops=%d, want 1/1/1",
			dp.Upcalls, dp.UpcallErrors, dp.Drops)
	}
	if dp.FlowCount() != 1 {
		t.Fatalf("negative flow not installed: flows=%d", dp.FlowCount())
	}

	// Follow-up packets drop against the negative flow without upcalling:
	// the first through the classifier (and into the EMC), the second from
	// the EMC.
	send()
	send()
	if dp.Upcalls != 1 || dp.Drops != 3 {
		t.Fatalf("negative flow not shielding: upcalls=%d drops=%d, want 1/3",
			dp.Upcalls, dp.Drops)
	}
	if dp.MegaflowHits != 1 || dp.EMCHits != 1 {
		t.Fatalf("negative flow hits: megaflow=%d emc=%d, want 1/1",
			dp.MegaflowHits, dp.EMCHits)
	}

	// The entry self-expires (and the EMC is flushed with it), so the flow
	// re-upcalls.
	eng.RunUntil(eng.Now() + dp.Opts.NegativeFlowTTL + sim.Millisecond)
	if dp.FlowCount() != 0 {
		t.Fatalf("negative flow outlived its TTL: flows=%d", dp.FlowCount())
	}
	send()
	if dp.Upcalls != 2 {
		t.Fatalf("expired negative flow must re-upcall: upcalls=%d, want 2", dp.Upcalls)
	}
}
