package core

import (
	"fmt"

	"ovsxdp/internal/ebpf"
	"ovsxdp/internal/nicsim"
	"ovsxdp/internal/xdp"
)

// AttachDefaultProgram loads and attaches the standard OVS XDP program —
// redirect every packet into the per-queue AF_XDP socket — to a NIC,
// returning the xskmap for inspection. This is the step Section 4
// describes vswitchd performing when a port is added to a bridge.
func AttachDefaultProgram(nic *nicsim.NIC) (*ebpf.TargetMap, error) {
	xskMap := ebpf.NewXskMap(nic.NumQueues())
	for q := 0; q < nic.NumQueues(); q++ {
		if err := xskMap.SetTarget(uint32(q), uint32(q)); err != nil {
			return nil, fmt.Errorf("core: xskmap setup: %w", err)
		}
	}
	prog := xdp.NewPassToXsk(xskMap)
	if err := prog.Load(); err != nil {
		return nil, fmt.Errorf("core: XDP program rejected by verifier: %w", err)
	}
	if err := nic.Hook.Attach(prog); err != nil {
		return nil, fmt.Errorf("core: XDP attach: %w", err)
	}
	return xskMap, nil
}
