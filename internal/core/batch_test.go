package core

import (
	"testing"

	"ovsxdp/internal/afxdp"
	"ovsxdp/internal/packet"
	"ovsxdp/internal/perf"
	"ovsxdp/internal/sim"
)

// TestBatchDedupMatchesPerPacketOutcomes runs the same burst through the
// forwarding bed with batch-aware classification on and off: every
// observable outcome (deliveries, hit split, upcalls) must match — the
// optimization may only change what the classification costs, never what
// it decides. The batched run's classification stages must also be
// strictly cheaper in virtual time, since followers skip the full cache
// probe (total busy time is poll-spin dominated, so the stage counters are
// the meaningful comparison).
func TestBatchDedupMatchesPerPacketOutcomes(t *testing.T) {
	run := func(dedup bool) (recvd int, hits [4]uint64, classify sim.Time) {
		opts := DefaultOptions()
		opts.BatchDedup = dedup
		bed := newAFXDPP2P(t, opts, afxdp.LockSpinBatched, ModePoll)
		// One packet warms the flow (upcall + cache install), then a burst
		// the PMD drains in full rx batches — the shape the same-flow dedup
		// is built for.
		bed.offer(1, 0)
		for i := 0; i < 99; i++ {
			bed.eng.Schedule(100*sim.Microsecond, func() {
				bed.nicA.Receive(udpPkt(7777))
				bed.sent++
			})
		}
		bed.eng.RunUntil(10 * sim.Millisecond)
		dp := bed.dp
		s := bed.pmd.Perf
		classify = s.Cycles[perf.StageRx] + s.Cycles[perf.StageEMC] +
			s.Cycles[perf.StageSMC] + s.Cycles[perf.StageDpcls]
		return bed.recvd,
			[4]uint64{dp.EMCHits, dp.SMCHits, dp.MegaflowHits, dp.Upcalls},
			classify
	}

	recvd0, hits0, busy0 := run(false)
	recvd1, hits1, busy1 := run(true)
	if recvd0 != 100 || recvd1 != 100 {
		t.Fatalf("delivered %d/%d, want 100/100", recvd0, recvd1)
	}
	if hits0 != hits1 {
		t.Fatalf("hit split diverges: per-packet %v, batched %v", hits0, hits1)
	}
	if sum := hits1[0] + hits1[1] + hits1[2] + hits1[3]; sum != 100 {
		t.Fatalf("hit split sums to %d, want 100", sum)
	}
	if busy1 >= busy0 {
		t.Fatalf("batched classification not cheaper: %d >= %d virtual ns", busy1, busy0)
	}
}

// TestBatchDedupCyclesStayAttributed keeps the perf invariant under the
// batched fast path: every virtual cycle the PMD consumes lands in exactly
// one stage counter.
func TestBatchDedupCyclesStayAttributed(t *testing.T) {
	opts := DefaultOptions()
	opts.BatchDedup = true
	bed := newAFXDPP2P(t, opts, afxdp.LockSpinBatched, ModePoll)
	bed.offer(100, 0)
	bed.eng.RunUntil(10 * sim.Millisecond)
	if bed.recvd != 100 {
		t.Fatalf("received %d/100", bed.recvd)
	}
	s := bed.pmd.Perf
	if s.Packets != 100 {
		t.Fatalf("perf packets = %d, want 100", s.Packets)
	}
	if got, want := s.TotalCycles(), bed.pmd.CPU.BusyTotal(); got != want {
		t.Fatalf("stage cycles sum to %d, CPU busy %d — unattributed or double-counted work", got, want)
	}
	if s.EMCHits+s.SMCHits+s.MegaflowHits+s.Upcalls != s.Packets {
		t.Fatalf("hit split %d+%d+%d+%d != packets %d",
			s.EMCHits, s.SMCHits, s.MegaflowHits, s.Upcalls, s.Packets)
	}
}

// batchBed builds a datapath + PMD pair for driving processBatch directly,
// with a prebuilt rx batch cycling through nflows flows.
func batchBed(dedup, smcOn bool, nflows int) (*Datapath, *PMD, []*packet.Packet) {
	eng := sim.NewEngine(1)
	opts := DefaultOptions()
	opts.BatchDedup = dedup
	opts.SMC = smcOn
	dp := NewDatapath(eng, outputPipeline(2), opts)
	dp.AddPort(&sinkPort{id: 1, name: "in"})
	dp.AddPort(&sinkPort{id: 2, name: "out"})
	m := dp.NewPMD(ModeNonPMD, nil)
	pkts := make([]*packet.Packet, 32)
	for i := range pkts {
		pkts[i] = inPkt(uint16(4000 + i%nflows))
	}
	return dp, m, pkts
}

// TestBatchClassifyZeroAlloc pins the steady-state allocation contract: once
// the caches are warm and the PMD scratch slices have grown, classifying a
// full rx batch allocates nothing.
func TestBatchClassifyZeroAlloc(t *testing.T) {
	dp, m, pkts := batchBed(true, false, 4)
	dp.processBatch(m, pkts) // warm: upcalls + scratch growth
	if allocs := testing.AllocsPerRun(100, func() {
		dp.processBatch(m, pkts)
	}); allocs != 0 {
		t.Fatalf("steady-state batch classify allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkBatchClassify measures the batched fast path on a warm cache: a
// 32-packet batch of 4 interleaved flows, leaders probing the hierarchy and
// followers riding the dedup.
func BenchmarkBatchClassify(b *testing.B) {
	dp, m, pkts := batchBed(true, false, 4)
	dp.processBatch(m, pkts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dp.processBatch(m, pkts)
	}
}

// BenchmarkPerPacketClassify is the baseline the dedup is measured against:
// the identical batch, classified packet by packet.
func BenchmarkPerPacketClassify(b *testing.B) {
	dp, m, pkts := batchBed(false, false, 4)
	dp.processBatch(m, pkts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dp.processBatch(m, pkts)
	}
}
