package core

import (
	"fmt"
	"sort"
	"strings"

	"ovsxdp/internal/costmodel"
	"ovsxdp/internal/perf"
	"ovsxdp/internal/sim"
)

// This file is the rxq-to-PMD assignment layer: the analog of OVS's
// rxq_scheduling (pmd-rxq-assign) plus the PMD auto-load-balancer
// (pmd-auto-lb) and the transmit-side XPS txq mapping. The datapath owns
// the rxq→PMD map; callers no longer hand-place queues on threads, they
// ask the layer to place them under a policy, and the auto-balancer may
// move them later. Everything here is driven by virtual-time perf counters
// and stable sort orders — no wall clock, no randomness — so a rebalance
// happens at the same virtual instant with the same outcome on every run.

// AssignPolicy selects how rxqs are distributed across PMD threads.
type AssignPolicy int

// Assignment policies (the pmd-rxq-assign values we implement).
const (
	// AssignRoundRobin hands each newly added rxq to the next PMD in
	// creation order — OVS's "roundrobin". It is the default because it
	// reproduces the historical one-queue-per-PMD wiring exactly.
	AssignRoundRobin AssignPolicy = iota
	// AssignCycles greedily bin-packs rxqs onto PMDs by their measured
	// cycle shares, heaviest first onto the least-loaded thread — OVS's
	// "cycles". Queues with no history count as zero and fall back to a
	// stable (port, queue) order.
	AssignCycles
)

// String names the policy as the pmd-rxq-assign value.
func (p AssignPolicy) String() string {
	if p == AssignCycles {
		return "cycles"
	}
	return "roundrobin"
}

// ParseAssignPolicy parses a pmd-rxq-assign value.
func ParseAssignPolicy(s string) (AssignPolicy, error) {
	switch s {
	case "roundrobin":
		return AssignRoundRobin, nil
	case "cycles":
		return AssignCycles, nil
	default:
		return 0, fmt.Errorf("pmd-rxq-assign: unknown policy %q (have roundrobin, cycles)", s)
	}
}

// rxqState is the assignment layer's record of one assigned receive queue:
// its owner thread and the cycles it has consumed inside the current
// load-balance interval (and in total, for pmd-rxq-show usage shares).
type rxqState struct {
	rxq RxQueue
	pmd *PMD
	// intervalCycles accumulates processing cycles charged on behalf of
	// this queue since the last auto-LB tick (or manual rebalance).
	intervalCycles sim.Time
	// totalCycles accumulates since assignment, for usage reporting.
	totalCycles sim.Time
}

// assigner is the datapath's rxq→PMD map and balancer state.
type assigner struct {
	policy AssignPolicy
	rxqs   map[RxQueue]*rxqState
	// rr is the round-robin rotor over d.pmds.
	rr int

	// Auto load balancer configuration (pmd-auto-lb).
	autoLB          bool
	autoLBInterval  sim.Time
	autoLBThreshold int // minimum variance improvement, percent
	autoLBGen       int // invalidates scheduled ticks on reconfigure

	// Rebalances counts applied re-shardings; RebalanceMoves counts rxqs
	// that changed threads across them. Both feed dpif.Stats and the
	// corescale report, and both stay zero with the balancer off.
	Rebalances     uint64
	RebalanceMoves uint64
	// DryRuns counts auto-LB ticks that estimated but skipped a reshard
	// (improvement under threshold, or nothing to move).
	DryRuns uint64
}

func (d *Datapath) assignerInit() *assigner {
	if d.assign == nil {
		d.assign = &assigner{
			rxqs:            make(map[RxQueue]*rxqState),
			policy:          d.Opts.RxqAssign,
			autoLBInterval:  costmodel.AutoLBDefaultInterval,
			autoLBThreshold: costmodel.AutoLBDefaultThresholdPct,
		}
	}
	return d.assign
}

// AssignPolicyInEffect reports the active rxq distribution policy.
func (d *Datapath) AssignPolicyInEffect() AssignPolicy { return d.assignerInit().policy }

// SetAssignPolicy selects the policy applied to future placements and
// rebalances; already-placed queues do not move until a rebalance.
func (d *Datapath) SetAssignPolicy(p AssignPolicy) { d.assignerInit().policy = p }

// AssignRxqTo places (p, q) on a specific PMD, validating that the queue is
// not already assigned — to this thread or any other. This is the explicit
// placement path the legacy (*PMD).AssignRxQueue compatibility shim routes
// through; policy-driven placement goes through AddRxq / DistributeRxqs.
func (d *Datapath) AssignRxqTo(m *PMD, p Port, q int) error {
	if m == nil || m.dp != d {
		return fmt.Errorf("assign: PMD does not belong to this datapath")
	}
	if q < 0 || (p.NumRxQueues() > 0 && q >= p.NumRxQueues()) {
		return fmt.Errorf("assign: port %q has %d rx queues, no queue %d",
			p.Name(), p.NumRxQueues(), q)
	}
	a := d.assignerInit()
	key := RxQueue{Port: p, Queue: q}
	if st, dup := a.rxqs[key]; dup {
		return fmt.Errorf("assign: %s queue %d already assigned to %s",
			p.Name(), q, st.pmd.CPU.Name())
	}
	st := &rxqState{rxq: key, pmd: m}
	a.rxqs[key] = st
	m.rxqs = append(m.rxqs, st)
	return nil
}

// AddRxq places (p, q) on a PMD chosen by the active policy and returns the
// chosen thread.
func (d *Datapath) AddRxq(p Port, q int) (*PMD, error) {
	if len(d.pmds) == 0 {
		return nil, fmt.Errorf("assign: datapath has no PMD threads")
	}
	a := d.assignerInit()
	var m *PMD
	switch a.policy {
	case AssignCycles:
		m = d.leastLoadedPMD()
	default:
		m = d.pmds[a.rr%len(d.pmds)]
		a.rr++
	}
	if err := d.AssignRxqTo(m, p, q); err != nil {
		return nil, err
	}
	return m, nil
}

// DistributeRxqs places every receive queue of a port under the active
// policy (queue order, so round-robin reproduces the historical
// queue-i-to-PMD-i wiring when queues equal threads).
func (d *Datapath) DistributeRxqs(p Port) error {
	for q := 0; q < p.NumRxQueues(); q++ {
		if _, err := d.AddRxq(p, q); err != nil {
			return err
		}
	}
	return nil
}

// UnassignRxq removes (p, q) from its owning thread.
func (d *Datapath) UnassignRxq(p Port, q int) error {
	a := d.assignerInit()
	key := RxQueue{Port: p, Queue: q}
	st, ok := a.rxqs[key]
	if !ok {
		return fmt.Errorf("assign: %s queue %d is not assigned", p.Name(), q)
	}
	st.pmd.dropRxq(st)
	delete(a.rxqs, key)
	return nil
}

// leastLoadedPMD returns the thread with the smallest measured interval
// load under the cycles policy, breaking load ties by assigned-queue count
// (so cold-start placement with no cycle history degenerates to queue-count
// balancing, as OVS's rxq scheduling does) and remaining ties by thread
// creation order.
func (d *Datapath) leastLoadedPMD() *PMD {
	best := d.pmds[0]
	for _, m := range d.pmds[1:] {
		lb, lm := d.pmdIntervalLoad(best), d.pmdIntervalLoad(m)
		if lm < lb || (lm == lb && len(m.rxqs) < len(best.rxqs)) {
			best = m
		}
	}
	return best
}

// pmdIntervalLoad sums the measured per-rxq cycles on a thread for the
// current balance interval.
func (d *Datapath) pmdIntervalLoad(m *PMD) sim.Time {
	var t sim.Time
	for _, st := range m.rxqs {
		t += st.intervalCycles
	}
	return t
}

// dropRxq removes one rxq state from the thread's poll list.
func (m *PMD) dropRxq(st *rxqState) {
	for i, cur := range m.rxqs {
		if cur == st {
			m.rxqs = append(m.rxqs[:i], m.rxqs[i+1:]...)
			return
		}
	}
}

// Rxqs lists the thread's assigned queues in poll order.
func (m *PMD) Rxqs() []RxQueue {
	out := make([]RxQueue, 0, len(m.rxqs))
	for _, st := range m.rxqs {
		out = append(out, st.rxq)
	}
	return out
}

// --- auto load balancer ----------------------------------------------------------

// ConfigureAutoLB enables or disables the deterministic PMD auto-load-
// balancer. While enabled, every interval of virtual time the balancer
// dry-runs a cycles-policy reassignment against the measured per-rxq cycle
// shares and applies it only when the estimated per-PMD load variance
// improves by at least thresholdPct percent. interval <= 0 keeps the
// previous (or default) interval; thresholdPct < 0 keeps the previous
// threshold.
func (d *Datapath) ConfigureAutoLB(on bool, interval sim.Time, thresholdPct int) {
	a := d.assignerInit()
	if interval > 0 {
		a.autoLBInterval = interval
	}
	if thresholdPct >= 0 {
		a.autoLBThreshold = thresholdPct
	}
	if on == a.autoLB {
		return
	}
	a.autoLB = on
	a.autoLBGen++
	if on {
		d.scheduleAutoLB(a.autoLBGen)
	}
}

// AutoLBEnabled reports whether the auto-load-balancer is running.
func (d *Datapath) AutoLBEnabled() bool { return d.assignerInit().autoLB }

// AutoLBSettings reports the balancer's interval and threshold.
func (d *Datapath) AutoLBSettings() (interval sim.Time, thresholdPct int) {
	a := d.assignerInit()
	return a.autoLBInterval, a.autoLBThreshold
}

func (d *Datapath) scheduleAutoLB(gen int) {
	a := d.assign
	d.Eng.Schedule(a.autoLBInterval, func() {
		if !a.autoLB || a.autoLBGen != gen {
			return
		}
		d.autoLBTick()
		d.scheduleAutoLB(gen)
	})
}

// autoLBTick is one balancer pass: measure, dry-run, maybe apply, reset the
// interval meters. Split out so tests can drive it directly.
func (d *Datapath) autoLBTick() {
	a := d.assignerInit()
	defer func() {
		for _, st := range a.rxqs {
			st.intervalCycles = 0
		}
	}()
	moves, improvementPct := d.planRebalance()
	if len(moves) == 0 || improvementPct < float64(a.autoLBThreshold) {
		a.DryRuns++
		return
	}
	for _, mv := range moves {
		mv.st.pmd.dropRxq(mv.st)
		mv.st.pmd = mv.to
		mv.to.rxqs = append(mv.to.rxqs, mv.st)
		a.RebalanceMoves++
	}
	a.Rebalances++
}

// Rebalance runs one balancer pass immediately (ovs-appctl
// dpif-netdev/pmd-rxq-rebalance analog), returning the number of queues
// moved.
func (d *Datapath) Rebalance() int {
	before := d.assignerInit().RebalanceMoves
	d.autoLBTick()
	return int(d.assign.RebalanceMoves - before)
}

// rxqMove is one planned reassignment.
type rxqMove struct {
	st *rxqState
	to *PMD
}

// balancePMDs returns the threads eligible for rebalancing: poll-mode
// threads, in creation order. Interrupt and non-PMD threads keep their
// queues — exactly as OVS only balances across pmd threads.
func (d *Datapath) balancePMDs() []*PMD {
	var out []*PMD
	for _, m := range d.pmds {
		if m.mode == ModePoll {
			out = append(out, m)
		}
	}
	return out
}

// planRebalance dry-runs a cycles-policy reassignment over the eligible
// threads and returns the moves plus the estimated variance improvement in
// percent. The plan is a pure function of the measured interval cycles and
// stable orderings, which is the balancer's determinism argument.
func (d *Datapath) planRebalance() ([]rxqMove, float64) {
	pmds := d.balancePMDs()
	if len(pmds) < 2 {
		return nil, 0
	}
	// Collect the movable queues in a stable order: cycles descending,
	// ties by (port id, queue).
	var sts []*rxqState
	loads := make(map[*PMD]sim.Time, len(pmds))
	for _, m := range pmds {
		for _, st := range m.rxqs {
			sts = append(sts, st)
			loads[m] += st.intervalCycles
		}
	}
	if len(sts) == 0 {
		return nil, 0
	}
	sort.SliceStable(sts, func(i, j int) bool {
		if sts[i].intervalCycles != sts[j].intervalCycles {
			return sts[i].intervalCycles > sts[j].intervalCycles
		}
		if a, b := sts[i].rxq.Port.ID(), sts[j].rxq.Port.ID(); a != b {
			return a < b
		}
		return sts[i].rxq.Queue < sts[j].rxq.Queue
	})
	curVar := loadVariance(pmds, loads)
	if curVar == 0 {
		return nil, 0
	}
	// Greedy bin-pack: heaviest queue onto the least-loaded estimated bin,
	// ties by thread creation order.
	est := make(map[*PMD]sim.Time, len(pmds))
	target := make(map[*rxqState]*PMD, len(sts))
	for _, st := range sts {
		best := pmds[0]
		for _, m := range pmds[1:] {
			if est[m] < est[best] {
				best = m
			}
		}
		est[best] += st.intervalCycles
		target[st] = best
	}
	estVar := loadVariance(pmds, est)
	improvement := 100 * (curVar - estVar) / curVar
	var moves []rxqMove
	for _, st := range sts {
		if to := target[st]; to != st.pmd {
			moves = append(moves, rxqMove{st: st, to: to})
		}
	}
	return moves, improvement
}

// loadVariance is the population variance of per-PMD loads.
func loadVariance(pmds []*PMD, loads map[*PMD]sim.Time) float64 {
	mean := 0.0
	for _, m := range pmds {
		mean += float64(loads[m])
	}
	mean /= float64(len(pmds))
	v := 0.0
	for _, m := range pmds {
		dlt := float64(loads[m]) - mean
		v += dlt * dlt
	}
	return v / float64(len(pmds))
}

// Rebalances reports applied re-shardings (auto or manual).
func (d *Datapath) RebalanceStats() (rebalances, moves, dryRuns uint64) {
	a := d.assignerInit()
	return a.Rebalances, a.RebalanceMoves, a.DryRuns
}

// --- transmit-side XPS -----------------------------------------------------------

// TxqFor maps a thread to the tx queue it uses on a port: thread id modulo
// the port's tx queue count (OVS's static txq assignment). With at least as
// many tx queues as threads every thread owns its queue outright; with
// fewer, queues are shared and each send pays the configured lock cost. A
// port reporting no txq limit (function-delivery ports) keeps the thread id
// as-is.
func (d *Datapath) TxqFor(m *PMD, p Port) int {
	n := p.NumTxQueues()
	if n <= 0 {
		return m.ID
	}
	return m.ID % n
}

// txqContended reports whether the thread's tx queue on p is shared with
// another thread — the XPS case OVS guards with a per-txq lock. Ports with
// no txq limit are never contended.
func (d *Datapath) txqContended(p Port) bool {
	n := p.NumTxQueues()
	return n > 0 && len(d.pmds) > n
}

// chargeTxLock charges the transmit-queue lock for one packet on a
// contended txq. Mutex mode pays per packet (the O2 analog); the default
// spinlock mode pays once per flush batch instead (charged in flushTouched,
// the O3 analog), so only bookkeeping happens here.
func (d *Datapath) chargeTxLock(m *PMD, out Port) {
	if !d.txqContended(out) {
		return
	}
	m.Perf.TxContended++
	if d.Opts.TxLockMutex {
		m.charge(perf.StageActions, costmodel.XPSTxMutexPerPacket)
		m.Perf.TxLockCycles += costmodel.XPSTxMutexPerPacket
	}
}

// --- pmd-rxq-show ----------------------------------------------------------------

// PmdRxqShow renders the `ovs-appctl dpif-netdev/pmd-rxq-show` analog: one
// block per thread with its assigned queues and each queue's share of the
// thread's measured rxq cycles, plus the balancer counters when it has run.
func (d *Datapath) PmdRxqShow() string {
	a := d.assignerInit()
	var b strings.Builder
	fmt.Fprintf(&b, "rxq assignment policy: %s  auto-lb: %v\n", a.policy, a.autoLB)
	if a.Rebalances > 0 || a.DryRuns > 0 {
		fmt.Fprintf(&b, "auto-lb: rebalances:%d moved-rxqs:%d dry-runs:%d\n",
			a.Rebalances, a.RebalanceMoves, a.DryRuns)
	}
	for _, m := range d.pmds {
		fmt.Fprintf(&b, "pmd thread %s:\n", m.CPU.Name())
		fmt.Fprintf(&b, "  isolated : false\n")
		var total sim.Time
		for _, st := range m.rxqs {
			total += st.totalCycles
		}
		sorted := append([]*rxqState(nil), m.rxqs...)
		sort.SliceStable(sorted, func(i, j int) bool {
			if a, b := sorted[i].rxq.Port.ID(), sorted[j].rxq.Port.ID(); a != b {
				return a < b
			}
			return sorted[i].rxq.Queue < sorted[j].rxq.Queue
		})
		for _, st := range sorted {
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(st.totalCycles) / float64(total)
			}
			fmt.Fprintf(&b, "  port: %-12s queue-id: %2d (enabled)   pmd usage: %3.0f %%\n",
				st.rxq.Port.Name(), st.rxq.Queue, pct)
		}
		if len(m.rxqs) == 0 {
			fmt.Fprintf(&b, "  (no rx queues assigned)\n")
		}
	}
	if len(d.pmds) == 0 {
		fmt.Fprintf(&b, "no PMD threads\n")
	}
	return b.String()
}
