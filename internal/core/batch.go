package core

import (
	"ovsxdp/internal/costmodel"
	"ovsxdp/internal/flow"
	"ovsxdp/internal/ofproto"
	"ovsxdp/internal/packet"
	"ovsxdp/internal/perf"
)

// processBatch runs one received batch through the fast path. With batch
// dedup disabled (the default) it is exactly the historical per-packet
// loop; enabled, same-flow packets within the batch are classified once
// (dp_netdev_input's per-flow batching). Lifecycle tracing records
// per-packet resolution, so an armed tracer falls back to the per-packet
// path.
func (d *Datapath) processBatch(m *PMD, pkts []*packet.Packet) {
	if !d.Opts.BatchDedup || len(pkts) <= 1 || m.Perf.Tracer() != nil {
		for _, p := range pkts {
			d.processOne(m, p, 0)
		}
		return
	}
	d.classifyBatch(m, pkts)
}

// classifyBatch is the batch-aware classification pipeline: per-packet
// admission work (metadata, checksum validation, key extraction) exactly as
// the per-packet path charges it, then one cache-hierarchy lookup per
// distinct flow key in the batch. Follower packets of a group charge only
// the flow-batch append cost and count as hits at the level that resolved
// their leader. All scratch state lives on the PMD, so the steady state
// allocates nothing.
func (d *Datapath) classifyBatch(m *PMD, pkts []*packet.Packet) {
	n := len(pkts)

	keys := m.batchKeys[:0]
	for _, p := range pkts {
		d.Processed++
		m.Perf.Packets++
		m.charge(perf.StageRx, costmodel.PacketMetadataInit)
		if !d.Opts.MetadataPrealloc {
			m.charge(perf.StageRx, costmodel.PacketMetadataMmap)
		}
		if p.Offloads&(packet.CsumVerified|packet.CsumPartial) == 0 {
			if !d.Opts.AssumeCsumOffload {
				m.charge(perf.StageRx, costmodel.ChecksumCost(len(p.Data)))
			}
			p.Offloads |= packet.CsumVerified
		}
		keys = append(keys, flow.Extract(p))
		m.charge(perf.StageRx, costmodel.ParseFlowKey)
	}
	m.batchKeys = keys

	// Group same-key packets. Batches are at most BatchSize packets and
	// typically carry few distinct flows, so the linear scan over group
	// leaders beats any map (and allocates nothing).
	leaders := m.batchLeaders[:0]
	groupOf := m.batchGroupOf[:0]
	for i := 0; i < n; i++ {
		g := -1
		for j, l := range leaders {
			if keys[l] == keys[i] {
				g = j
				break
			}
		}
		if g < 0 {
			leaders = append(leaders, i)
			g = len(leaders) - 1
		}
		groupOf = append(groupOf, g)
	}
	m.batchLeaders = leaders
	m.batchGroupOf = groupOf

	for g, l := range leaders {
		e := d.lookupHierarchy(m, keys[l])
		if e == nil {
			// The whole group missed every cache: each packet takes the
			// per-packet slow path individually (upcall-queue admission
			// is per packet, and the classifier dedups the translations).
			// Admission accounting already happened above, so count=false.
			// The leader's lookup probes are charged twice this way — a
			// few tens of ns against a 60 us upcall, only in this
			// opt-in mode.
			for i := l; i < n; i++ {
				if groupOf[i] == g {
					d.processCounted(m, pkts[i], 0, false)
				}
			}
			continue
		}
		actions, _ := e.Actions.([]ofproto.DPAction)
		for i := l; i < n; i++ {
			if groupOf[i] != g {
				continue
			}
			if i != l {
				// Follower: append to the leader's flow batch and count
				// the hit at the level that resolved the leader.
				m.charge(perf.StageRx, costmodel.BatchedFlowUpdate)
				d.countFollowerHit(m)
			}
			if len(actions) == 0 {
				d.Drops++
				continue
			}
			d.execute(m, pkts[i], actions, 0)
		}
	}
}

// countFollowerHit attributes a follower packet to the same resolution
// level as its group leader, keeping per-level hit counters meaning
// "packets resolved at this level" exactly as in the per-packet path.
func (d *Datapath) countFollowerHit(m *PMD) {
	switch m.lastLevel {
	case perf.ResultEMC:
		d.EMCHits++
		m.Perf.EMCHits++
	case perf.ResultSMC:
		d.SMCHits++
		m.Perf.SMCHits++
	case perf.ResultMegaflow:
		d.MegaflowHits++
		m.Perf.MegaflowHits++
	}
}
