package core

import (
	"testing"

	"ovsxdp/internal/afxdp"
	"ovsxdp/internal/perf"
	"ovsxdp/internal/sim"
)

// Every virtual cycle a PMD consumes must be attributed to exactly one perf
// stage: the counters are recorded alongside the CPU charges, so their sum
// equals the thread's busy time (single PMD, no contention surcharge).
func TestPerfCyclesMatchCPUBusyTime(t *testing.T) {
	bed := newAFXDPP2P(t, DefaultOptions(), afxdp.LockSpinBatched, ModePoll)
	bed.offer(100, 1000)
	bed.eng.RunUntil(10 * sim.Millisecond)
	if bed.recvd != 100 {
		t.Fatalf("received %d/100", bed.recvd)
	}
	s := bed.pmd.Perf
	if s.Packets != 100 {
		t.Fatalf("perf packets = %d, want 100", s.Packets)
	}
	if got, want := s.TotalCycles(), bed.pmd.CPU.BusyTotal(); got != want {
		t.Fatalf("stage cycles sum to %d, CPU busy %d — unattributed or double-counted work", got, want)
	}
	if s.EMCHits+s.MegaflowHits+s.Upcalls != s.Packets {
		t.Fatalf("hit split %d+%d+%d != packets %d",
			s.EMCHits, s.MegaflowHits, s.Upcalls, s.Packets)
	}
	if s.Cycles[perf.StageRx] == 0 || s.Cycles[perf.StageEMC] == 0 ||
		s.Cycles[perf.StageActions] == 0 {
		t.Fatalf("rx/emc/actions stages empty: %v", s.Cycles)
	}
	if s.UpcallCount() != 1 {
		t.Fatalf("upcall latency samples = %d, want 1", s.UpcallCount())
	}
	if s.BatchMean() <= 0 {
		t.Fatal("batch histogram empty")
	}
}

// Enabling the packet-lifecycle trace must not perturb virtual time: two
// identical runs, one traced, must agree on every observable outcome.
func TestTraceDoesNotPerturbVirtualTime(t *testing.T) {
	run := func(traceDepth int) (recvd int, busy sim.Time, now sim.Time, recs []perf.TraceRecord) {
		bed := newAFXDPP2P(t, DefaultOptions(), afxdp.LockSpinBatched, ModePoll)
		if traceDepth > 0 {
			bed.dp.EnableTrace(traceDepth)
		}
		bed.offer(50, 1000)
		bed.eng.RunUntil(5 * sim.Millisecond)
		return bed.recvd, bed.pmd.CPU.BusyTotal(), bed.eng.Now(), bed.pmd.Perf.Trace()
	}

	r0, busy0, now0, recs0 := run(0)
	r1, busy1, now1, recs1 := run(8)
	if r0 != r1 || busy0 != busy1 || now0 != now1 {
		t.Fatalf("tracing changed outcomes: recvd %d/%d busy %d/%d now %d/%d",
			r0, r1, busy0, busy1, now0, now1)
	}
	if recs0 != nil {
		t.Fatal("trace must be off by default")
	}
	if len(recs1) != 8 {
		t.Fatalf("retained %d lifecycles, want 8", len(recs1))
	}
	for _, r := range recs1 {
		if r.InPort != 1 || r.OutPort != 2 {
			t.Fatalf("lifecycle ports %d->%d, want 1->2", r.InPort, r.OutPort)
		}
		if r.End < r.Start {
			t.Fatalf("lifecycle span inverted: %v -> %v", r.Start, r.End)
		}
		if r.Result == perf.ResultNone {
			t.Fatal("lifecycle missing resolution level")
		}
	}
}

// The trace records the caching level that resolved each packet: first an
// upcall, then EMC hits.
func TestTraceRecordsResolutionLevels(t *testing.T) {
	bed := newAFXDPP2P(t, DefaultOptions(), afxdp.LockSpinBatched, ModePoll)
	bed.dp.EnableTrace(64)
	bed.offer(20, 1000)
	bed.eng.RunUntil(5 * sim.Millisecond)
	recs := bed.pmd.Perf.Trace()
	if len(recs) != 20 {
		t.Fatalf("traced %d, want 20", len(recs))
	}
	if recs[0].Result != perf.ResultUpcall {
		t.Fatalf("first packet resolved via %v, want upcall", recs[0].Result)
	}
	emc := 0
	for _, r := range recs[1:] {
		if r.Result == perf.ResultEMC {
			emc++
		}
	}
	if emc < 17 {
		t.Fatalf("only %d/19 successors hit the EMC", emc)
	}
}
