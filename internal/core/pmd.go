package core

import (
	"fmt"

	"ovsxdp/internal/costmodel"
	"ovsxdp/internal/dpcls"
	"ovsxdp/internal/emc"
	"ovsxdp/internal/faultinject"
	"ovsxdp/internal/flow"
	"ovsxdp/internal/packet"
	"ovsxdp/internal/perf"
	"ovsxdp/internal/sim"
	"ovsxdp/internal/smc"
)

// Mode selects how a packet-processing thread is driven.
type Mode int

// Thread modes.
const (
	// ModePoll is optimization O1: a dedicated PMD thread busy-polls its
	// receive queues.
	ModePoll Mode = iota
	// ModeNonPMD is the pre-O1 behaviour: the shared main thread
	// interleaves packet work with OpenFlow/OVSDB processing, paying a
	// poll()-and-wakeup gap around every batch.
	ModeNonPMD
	// ModeInterrupt sleeps until a queue signals packets (Figure 8a's
	// "interrupt" configuration): no busy-poll CPU burn, but a wakeup
	// cost per burst and none of the batching benefits at low rates.
	ModeInterrupt
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModePoll:
		return "pmd-poll"
	case ModeNonPMD:
		return "non-pmd"
	default:
		return "interrupt"
	}
}

// RxQueue names one (port, queue) a PMD polls.
type RxQueue struct {
	Port  Port
	Queue int
}

// PMD is one poll-mode-driver thread: a dedicated CPU, its assigned
// receive queues, and its private exact-match cache and megaflow
// classifier (per-PMD, lockless, exactly as dpif-netdev partitions them).
type PMD struct {
	ID  int
	CPU *sim.CPU
	dp  *Datapath

	emc *emc.Cache[*dpcls.Entry]
	// smc is the signature match cache, allocated only when Options.SMC
	// is set (it is ~4 MB per PMD at the OVS-default capacity).
	smc *smc.Cache
	cls *dpcls.Classifier
	// rxqs is the thread's poll list; the entries are owned by the
	// datapath's assignment layer, which also meters each queue's cycle
	// consumption for the cycles policy and the auto-load-balancer.
	rxqs []*rxqState
	mode Mode

	// insRand drives probabilistic EMC insertion (emc-insert-inv-prob).
	// It is seeded from the PMD id alone — never from the engine's RNG
	// stream, whose draw order calibrated experiments depend on — and is
	// only consulted when EMCInsertInvProb > 1, so default runs stay
	// byte-identical.
	insRand *sim.Rand

	// batchKeys / batchLeaders / batchGroupOf are scratch buffers for
	// batch-aware classification, reused across iterations so the batch
	// path allocates nothing in steady state.
	batchKeys    []flow.Key
	batchLeaders []int
	batchGroupOf []int
	// lastLevel is the cache level the most recent lookupHierarchy call
	// resolved at; the batch path uses it to attribute follower packets.
	lastLevel perf.Result

	running bool
	stopped bool
	active  bool // has seen work; feeds the contention count
	// touched lists ports with batched transmissions pending flush, in
	// first-touch order — a deterministic flush sequence, where ranging
	// over a map would reorder costs run to run. Dedup is a linear scan:
	// a PMD touches a handful of ports per iteration at most.
	touched []Port

	// iterTimer rearms the iterate loop; upcallTimer arms handler
	// service. Timers bind the method value once, so rescheduling every
	// iteration allocates nothing.
	iterTimer   *sim.Timer
	upcallTimer *sim.Timer

	// upcallQ parks packets awaiting slow-path translation when
	// Options.UpcallQueueCap bounds the queue; upcallBusy is set while a
	// handler service event is in flight. upcallFree recycles records.
	upcallQ    []*pendingUpcall
	upcallBusy bool
	upcallFree []*pendingUpcall

	// Perf is the thread's performance-counter block (dpif-netdev-perf):
	// virtual cycles bucketed by stage, batch and upcall histograms, and
	// the optional packet-lifecycle trace. Pure accounting — recording
	// never perturbs virtual time.
	Perf *perf.Stats
	// trace, while non-nil, is the lifecycle record of the depth-0 packet
	// currently in processOne; lookup and action code fill it in.
	trace *perf.TraceRecord

	// Stats.
	Iterations uint64
	RxPackets  uint64
	// IdleTime accumulates busy-poll time spent on empty iterations, so
	// experiments can separate useful work from the idle spin that makes
	// a PMD CPU always-100%.
	IdleTime sim.Time
}

// NewPMD creates a PMD on the datapath. Each PMD gets its own CPU unless
// cpu is non-nil.
func (d *Datapath) NewPMD(mode Mode, cpu *sim.CPU) *PMD {
	id := len(d.pmds)
	if cpu == nil {
		cpu = d.Eng.NewCPU(fmt.Sprintf("pmd%d", id))
	}
	m := &PMD{
		ID:      id,
		CPU:     cpu,
		dp:      d,
		emc:     emc.New[*dpcls.Entry](costmodel.EMCEntries, uint32(id)*0x9e37+1),
		cls:     dpcls.New(uint32(id)*0x79b9 + 7),
		mode:    mode,
		Perf:    perf.NewStats(),
		insRand: sim.NewRand(0x51c0ffee ^ uint64(id)<<20),
	}
	m.emc.SetAliveCheck(entryAlive)
	if d.flowHook != nil {
		d.wireFlowHook(m)
	}
	m.iterTimer = d.Eng.NewTimer(m.iterate)
	m.upcallTimer = d.Eng.NewTimer(m.serviceUpcall)
	if d.Opts.SMC {
		entries := d.Opts.SMCEntries
		if entries <= 0 {
			entries = costmodel.SMCEntries
		}
		m.smc = smc.New(entries, uint32(id)*0x85eb+3)
	}
	if d.traceDepth > 0 {
		m.Perf.EnableTrace(d.traceDepth)
	}
	d.pmds = append(d.pmds, m)
	return m
}

// charge consumes d in the User category on the PMD's CPU and attributes
// the same amount to a perf stage — the one instrumentation point that
// keeps counters and virtual time in lockstep.
func (m *PMD) charge(st perf.Stage, d sim.Time) {
	m.CPU.Consume(sim.User, d)
	m.Perf.Add(st, d)
}

// AssignRxQueue adds a receive queue to this PMD's poll list through the
// datapath's assignment layer. Unlike the historical version, it rejects a
// (port, queue) pair that is already assigned — to this thread or any
// other — instead of silently polling it twice.
func (m *PMD) AssignRxQueue(p Port, q int) error {
	return m.dp.AssignRxqTo(m, p, q)
}

// reconfigureSMC brings the thread's signature cache in line with the
// datapath's current Options: allocated while SMC is on, released when off.
func (m *PMD) reconfigureSMC() {
	if !m.dp.Opts.SMC {
		m.smc = nil
		return
	}
	if m.smc == nil {
		entries := m.dp.Opts.SMCEntries
		if entries <= 0 {
			entries = costmodel.SMCEntries
		}
		m.smc = smc.New(entries, uint32(m.ID)*0x85eb+3)
	}
}

// EMCStats exposes cache hit counters for experiments.
func (m *PMD) EMCStats() (hits, misses uint64) { return m.emc.Hits, m.emc.Misses }

// SMCStats exposes signature-cache hit counters for experiments; both are
// zero when the SMC is disabled.
func (m *PMD) SMCStats() (hits, misses uint64) {
	if m.smc == nil {
		return 0, 0
	}
	return m.smc.Hits, m.smc.Misses
}

// Classifier exposes the megaflow classifier (tests, flow dumping).
func (m *PMD) Classifier() *dpcls.Classifier { return m.cls }

// entryAlive is the EMC's liveness predicate: a megaflow removed from the
// classifier is marked dead, and its cache entries purge lazily on their
// next lookup (emc_entry_alive). A package-level function, so every PMD
// shares one value and wiring it allocates nothing.
func entryAlive(e *dpcls.Entry) bool { return !e.Dead() }

// FlushEMC drops the thread's exact-match cache wholesale. This is the
// flow-table-wide reset (FlowFlush, daemon restart); single-megaflow
// deletion uses InvalidateEMC instead, which leaves unrelated cache
// entries untouched.
func (m *PMD) FlushEMC() { m.emc.Flush() }

// InvalidateEMC unlinks a removed megaflow from the exact-match cache —
// the EMC counterpart of InvalidateSMC. A megaflow covers arbitrarily many
// exact keys, so its EMC entries cannot be found by key; instead the entry
// is marked dead and the cache's alive check purges each stale slot on its
// next lookup, O(1) per delete instead of O(cache) — the fix for the
// churn-collapsing full flush FlowDel used to do.
func (m *PMD) InvalidateEMC(e *dpcls.Entry) { e.MarkDead() }

// InvalidateSMC unlinks a removed megaflow from the signature cache's
// indirection table (megaflow delete, revalidator sweep, negative-flow
// expiry), so stale signatures miss instead of mis-delivering.
func (m *PMD) InvalidateSMC(e *dpcls.Entry) {
	if m.smc != nil {
		m.smc.Invalidate(e)
	}
}

// emcInsert inserts into the EMC, subject to the configured inverse
// insertion probability. Values <= 1 insert always and draw no randomness.
func (m *PMD) emcInsert(key flow.Key, e *dpcls.Entry) {
	if !m.dp.Opts.EMC {
		return
	}
	if p := m.dp.Opts.EMCInsertInvProb; p > 1 && m.insRand.Uint32()%uint32(p) != 0 {
		return
	}
	m.emc.Insert(key, e)
}

// cacheInsert back-fills the fast caches after a dpcls hit or upcall
// install: the EMC probabilistically, the SMC (when enabled) always — the
// SMC is what keeps high-flow-count workloads out of the classifier once
// the EMC saturates.
func (m *PMD) cacheInsert(key flow.Key, e *dpcls.Entry) {
	m.emcInsert(key, e)
	if m.smc != nil {
		m.charge(perf.StageSMC, costmodel.SMCInsert)
		m.smc.Insert(key, e)
	}
}

// Start launches the thread's loop.
func (m *PMD) Start() {
	m.stopped = false
	switch m.mode {
	case ModeInterrupt:
		m.armAll()
	default:
		m.wake()
	}
}

// Stop halts the loop after the current iteration.
func (m *PMD) Stop() { m.stopped = true }

func (m *PMD) wake() {
	if m.running || m.stopped {
		return
	}
	m.running = true
	m.iterTimer.Schedule(0)
}

func (m *PMD) armAll() {
	for _, st := range m.rxqs {
		st.rxq.Port.Arm(st.rxq.Queue, m.onInterrupt)
	}
}

func (m *PMD) onInterrupt() {
	if m.running || m.stopped {
		return
	}
	// Wakeup: context switch into the blocked thread.
	m.charge(perf.StageRx, costmodel.InterruptModeWakeup)
	m.running = true
	m.iterTimer.ScheduleAt(m.CPU.FreeAt())
}

// iterate is one pass over the assigned receive queues.
func (m *PMD) iterate() {
	if m.stopped {
		m.running = false
		return
	}
	m.Iterations++
	m.Perf.AddIteration()
	batch := m.dp.Opts.BatchSize
	work := 0
	busyBefore := m.CPU.BusyTotal()
	for _, st := range m.rxqs {
		rxq := st.rxq
		rxBefore := m.CPU.BusyTotal()
		pkts := rxq.Port.Rx(m.CPU, rxq.Queue, batch)
		m.Perf.Add(perf.StageRx, m.CPU.BusyTotal()-rxBefore)
		if len(pkts) == 0 {
			continue
		}
		work += len(pkts)
		m.RxPackets += uint64(len(pkts))
		m.Perf.AddBatch(len(pkts))
		if m.mode == ModeNonPMD {
			// The shared thread pays the poll()/wakeup gap around
			// each batch (Table 2's 0.8 vs 4.8 Mpps).
			m.charge(perf.StageRx, costmodel.NonPMDPollGap)
		}
		m.dp.processBatch(m, pkts)
		// Meter the queue's cycle share (receive through actions) for
		// the cycles assignment policy and the auto-load-balancer.
		// Pure accounting: the cycles were already charged above.
		spent := m.CPU.BusyTotal() - rxBefore
		st.intervalCycles += spent
		st.totalCycles += spent
	}
	if work > 0 {
		if !m.active {
			m.active = true
			m.dp.activePMDs++
		}
		// Multi-PMD contention: shared cache and memory bandwidth
		// inflate per-packet costs as more threads run hot
		// (Figure 12's sub-linear 64B scaling).
		if k := m.dp.Opts.ContentionCentis; k > 0 && m.dp.activePMDs > 1 {
			milli := costmodel.UserContentionMilli(m.dp.activePMDs, k)
			extra := (m.CPU.BusyTotal() - busyBefore) * sim.Time(milli-1000) / 1000
			if extra > 0 {
				m.CPU.Consume(sim.User, extra)
			}
		}
	}
	// Flush batched transmissions on every port this iteration touched,
	// in first-touch order. A shared tx queue (XPS: more PMDs than the
	// port has txqs) pays the batched spinlock once per flush here; the
	// per-packet mutex alternative is charged in transmit.
	flushBefore := m.CPU.BusyTotal()
	for _, port := range m.touched {
		if m.dp.txqContended(port) && !m.dp.Opts.TxLockMutex {
			m.CPU.Consume(sim.User, costmodel.XPSTxSpinPerFlush)
			m.Perf.TxLockCycles += costmodel.XPSTxSpinPerFlush
		}
		port.Flush(m.CPU, m.dp.TxqFor(m, port))
	}
	m.touched = m.touched[:0]
	m.Perf.Add(perf.StageActions, m.CPU.BusyTotal()-flushBefore)

	switch {
	case m.mode == ModeInterrupt && work == 0:
		// Sleep until a queue signals.
		m.running = false
		m.armAll()
	default:
		if work == 0 {
			m.charge(perf.StageIdle, costmodel.PollIdleIteration)
			m.IdleTime += costmodel.PollIdleIteration
		}
		next := m.CPU.FreeAt()
		if now := m.dp.Eng.Now(); next < now {
			next = now
		}
		m.iterTimer.ScheduleAt(next)
	}
}

func (m *PMD) touch(p Port) {
	for _, q := range m.touched {
		if q == p {
			return
		}
	}
	m.touched = append(m.touched, p)
}

// pendingUpcall is one packet parked in a PMD's bounded upcall queue.
type pendingUpcall struct {
	key     flow.Key
	pkt     *packet.Packet
	enq     sim.Time // admission time, for upcall latency accounting
	attempt int      // backoff retries consumed so far
}

// newUpcall takes a record from the PMD's free list or allocates one.
func (m *PMD) newUpcall(key flow.Key, pkt *packet.Packet) *pendingUpcall {
	if n := len(m.upcallFree); n > 0 {
		u := m.upcallFree[n-1]
		m.upcallFree = m.upcallFree[:n-1]
		*u = pendingUpcall{key: key, pkt: pkt, enq: m.dp.Eng.Now()}
		return u
	}
	return &pendingUpcall{key: key, pkt: pkt, enq: m.dp.Eng.Now()}
}

// freeUpcall recycles a serviced record.
func (m *PMD) freeUpcall(u *pendingUpcall) {
	*u = pendingUpcall{}
	m.upcallFree = append(m.upcallFree, u)
}

// kickUpcalls schedules the next queued upcall for service one handler
// service interval from now — the configurable handler service rate that
// makes the queue a real M/D/1-style bottleneck instead of an inline call.
func (m *PMD) kickUpcalls() {
	if m.upcallBusy || len(m.upcallQ) == 0 {
		return
	}
	m.upcallBusy = true
	m.upcallTimer.Schedule(m.dp.upcallInterval())
}

// serviceUpcall handles one parked upcall on the handler thread: translate
// (retrying transient faults with exponential backoff in virtual time),
// install the megaflow or a negative flow, and reinject the parked packet
// through the fast path.
func (m *PMD) serviceUpcall() {
	m.upcallBusy = false
	if len(m.upcallQ) == 0 {
		return
	}
	d := m.dp
	u := m.upcallQ[0]
	m.upcallQ = m.upcallQ[1:]
	defer m.kickUpcalls()

	// Several packets of one flow may park before the first resolves:
	// dedup against the classifier so only one translation happens.
	if e, _ := m.cls.Lookup(u.key); e != nil {
		d.processCounted(m, u.pkt, 0, false)
		m.freeUpcall(u)
		return
	}

	cpu := d.handlerCPU()
	cpu.Consume(sim.User, costmodel.UpcallCost)
	m.Perf.Add(perf.StageUpcall, costmodel.UpcallCost)
	mf, err := d.translate(u.key)
	if err != nil {
		if te, ok := err.(interface{ Transient() bool }); ok && te.Transient() &&
			u.attempt < d.maxUpcallRetries() {
			u.attempt++
			d.UpcallRetries++
			delay := faultinject.Backoff(d.Eng.Rand(), d.retryBase(), u.attempt)
			d.Eng.Schedule(delay, func() {
				// Retries bypass the cap: the packet was admitted once.
				m.upcallQ = append(m.upcallQ, u)
				m.kickUpcalls()
			})
			return
		}
		d.UpcallErrors++
		d.Drops++
		m.Perf.AddUpcall(d.Eng.Now() - u.enq)
		d.installNegativeFlow(m, u.key)
		u.pkt.Release()
		m.freeUpcall(u)
		return
	}
	m.cls.Insert(u.key, mf.Mask, mf.Actions)
	m.Perf.AddUpcall(d.Eng.Now() - u.enq)
	d.processCounted(m, u.pkt, 0, false)
	m.freeUpcall(u)
}
