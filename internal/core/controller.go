// Controller: the virtual-time / wall-clock bridge behind the ovs-svc
// control plane.
//
// The simulation engine is single-goroutine by design — events run one at a
// time in virtual-timestamp order, so datapath code needs no locking and
// same-seed runs are byte-identical. A live HTTP daemon breaks that comfort:
// handler goroutines arrive on wall-clock time and want to read counters or
// mutate other_config while the engine is mid-run. Letting them touch
// engine-owned state directly would tear half-updated counters at best and
// corrupt classifier structures at worst.
//
// The Controller is the seam between the two clocks. It owns the engine's
// run loop, advancing virtual time in fixed slices, and between slices —
// when the engine is provably between events — it drains a queue of
// operations submitted from other goroutines. Every API read and mutation
// executes as such an operation, atomically with respect to the event
// stream.
//
// Determinism falls out of two engine properties: RunUntil(t) advances the
// clock to exactly t without drawing a sequence number, and
// RunUntil(a);RunUntil(b) executes the same event stream as RunUntil(b).
// Slicing the run therefore cannot perturb a simulation, and with the API
// attached but idle (no operations submitted) a controller-driven run is
// byte-identical to a plain one — the property the determinism tests pin.
package core

import (
	"sort"
	"sync"
	"time"

	"ovsxdp/internal/sim"
)

// DefaultStep is the default virtual-time slice between operation drains.
const DefaultStep = 100 * sim.Microsecond

// ctlOp is one queued operation with its completion signal.
type ctlOp struct {
	fn   func()
	done chan struct{}
}

// Hold is a pre-registered parking point: the controller pauses the engine
// when virtual time reaches At and keeps it parked — draining operations —
// until Release is called. Scenarios use holds to issue wall-clock HTTP
// requests at an exact virtual instant: park, fire the request from another
// goroutine, let its handler run as an operation, release.
type Hold struct {
	At sim.Time
	// Reached is closed when the engine parks at At.
	Reached chan struct{}
	release chan struct{}
	once    sync.Once
}

// Release resumes the run loop. Safe to call more than once.
func (h *Hold) Release() { h.once.Do(func() { close(h.release) }) }

// Controller drives a sim.Engine in slices and applies cross-goroutine
// operations at slice boundaries. Create it with NewController, register
// any holds, then call Run from the goroutine that owns the simulation.
type Controller struct {
	eng *sim.Engine
	// Step is the virtual-time slice between operation drains. Smaller
	// slices bound operation latency (in virtual time); larger ones cost
	// less run-loop overhead. Zero means DefaultStep.
	Step sim.Time
	// Pace, when positive, is wall seconds per virtual second: the run
	// loop sleeps so virtual time advances no faster than that rate
	// (1.0 ~= real time). Zero runs free.
	Pace float64

	ops chan ctlOp

	mu      sync.Mutex
	holds   []*Hold
	stopped bool
}

// NewController wraps an engine. The controller assumes it is the only
// driver of the engine's run loop from the moment Run starts.
func NewController(eng *sim.Engine) *Controller {
	return &Controller{eng: eng, ops: make(chan ctlOp)}
}

// Engine returns the wrapped engine (for wiring done on the simulation
// goroutine before Run).
func (c *Controller) Engine() *sim.Engine { return c.eng }

// HoldAt registers a parking point at virtual time t. Must be called
// before Run reaches t; holds registered at or before the current slice
// park at the next boundary.
func (c *Controller) HoldAt(t sim.Time) *Hold {
	h := &Hold{At: t, Reached: make(chan struct{}), release: make(chan struct{})}
	c.mu.Lock()
	c.holds = append(c.holds, h)
	sort.SliceStable(c.holds, func(i, j int) bool { return c.holds[i].At < c.holds[j].At })
	c.mu.Unlock()
	return h
}

// Do submits fn to run on the simulation goroutine at the next slice
// boundary (or immediately if the controller is parked or idle-serving)
// and blocks until it has run. fn sees the engine paused between events:
// it may read any state and call engine Schedule* freely, exactly as event
// callbacks do.
func (c *Controller) Do(fn func()) {
	op := ctlOp{fn: fn, done: make(chan struct{})}
	c.ops <- op
	<-op.done
}

// Stop makes Run return at the next slice boundary instead of running to
// its target time. Pending holds are released so no client goroutine stays
// parked forever.
func (c *Controller) Stop() {
	c.mu.Lock()
	c.stopped = true
	holds := c.holds
	c.holds = nil
	c.mu.Unlock()
	for _, h := range holds {
		h.Release()
	}
}

// nextHold returns the earliest registered hold not yet passed, if any.
func (c *Controller) nextHold() (*Hold, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.holds) == 0 {
		return nil, false
	}
	return c.holds[0], true
}

// popHold removes h from the registry (after it released).
func (c *Controller) popHold(h *Hold) {
	c.mu.Lock()
	for i, x := range c.holds {
		if x == h {
			c.holds = append(c.holds[:i], c.holds[i+1:]...)
			break
		}
	}
	c.mu.Unlock()
}

// drain runs every queued operation without blocking.
func (c *Controller) drain() {
	for {
		select {
		case op := <-c.ops:
			op.fn()
			close(op.done)
		default:
			return
		}
	}
}

// park blocks at a hold, serving operations until it is released.
func (c *Controller) park(h *Hold) {
	close(h.Reached)
	for {
		select {
		case op := <-c.ops:
			op.fn()
			close(op.done)
		case <-h.release:
			c.popHold(h)
			c.drain()
			return
		}
	}
}

// Run advances virtual time to until, draining operations at every slice
// boundary and parking at registered holds. It must be called from the
// goroutine that owns the simulation; it returns when virtual time reaches
// until or Stop is called.
func (c *Controller) Run(until sim.Time) {
	step := c.Step
	if step <= 0 {
		step = DefaultStep
	}
	wallStart := time.Now()
	vStart := c.eng.Now()
	for {
		c.drain()
		c.mu.Lock()
		stopped := c.stopped
		c.mu.Unlock()
		now := c.eng.Now()
		if stopped || now >= until {
			return
		}
		target := now + step
		if target > until {
			target = until
		}
		var hold *Hold
		if h, ok := c.nextHold(); ok && h.At <= target {
			hold = h
			if h.At > now {
				target = h.At
			} else {
				target = now // hold registered in the past: park before advancing
			}
		}
		if target > now {
			c.eng.RunUntil(target)
		}
		if c.Pace > 0 {
			wantWall := time.Duration(float64(c.eng.Now()-vStart) * c.Pace)
			if ahead := wantWall - time.Since(wallStart); ahead > 0 {
				time.Sleep(ahead)
			}
		}
		if hold != nil {
			c.park(hold)
		}
	}
}

// ServeIdle keeps applying operations with the engine parked (between
// runs, or after the bed has completed) until stop is closed. The daemon
// uses it so the API stays live once the simulation window ends.
func (c *Controller) ServeIdle(stop <-chan struct{}) {
	for {
		select {
		case op := <-c.ops:
			op.fn()
			close(op.done)
		case <-stop:
			c.drain()
			return
		}
	}
}
