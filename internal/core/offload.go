package core

// Hardware flow offload: the tc/ASAP²-style fast path the paper's Fig 6
// steering model stops short of. An offload engine watches per-megaflow
// hit rates (EWMA over counter-readback intervals), classes the hot tail
// as elephants, and pushes their exact keys into the NIC's bounded
// hardware flow table (nicsim.FlowTable). Packets that match in hardware
// short-circuit the PMD at costmodel.OffloadHit — no metadata, no
// checksum, no parse, no cache probe — while rule installs and the
// periodic counter readback are charged to a dedicated offload driver
// thread, never the PMD.
//
// Correctness hinges on two disciplines:
//
//   - Counter readback: hardware counts matches privately, so without the
//     periodic merge into dpcls.Entry.Hits an offloaded flow would look
//     idle to the revalidator and be evicted mid-flight. The readback
//     interval must therefore stay well under the idle timeout.
//   - Invalidation aliasing: a hardware rule's cookie is the live
//     *dpcls.Entry, the same pointer the EMC holds — replacements update
//     actions in place, and FlowDel purges the NIC table in the same pass
//     as the EMC/SMC invalidation. The hit path additionally refuses to
//     forward by a dead entry (defense in depth, the PR-7 EMC discipline).
//
// Everything is off by default: with Offload.Enable false no engine
// exists, no event is scheduled, and no charge is made, keeping default
// runs byte-identical.

import (
	"ovsxdp/internal/costmodel"
	"ovsxdp/internal/dpcls"
	"ovsxdp/internal/flow"
	"ovsxdp/internal/nicsim"
	"ovsxdp/internal/ofproto"
	"ovsxdp/internal/packet"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/sim"
)

// OffloadOptions parameterizes the hardware-offload engine; the zero value
// (Enable false) disables it entirely.
type OffloadOptions struct {
	// Enable turns the engine on (other_config:hw-offload).
	Enable bool
	// TableSize is the hardware rule-table capacity; zero uses
	// costmodel.OffloadTableSize.
	TableSize int
	// ElephantPPS is the EWMA packet rate above which a megaflow is
	// offloaded; zero uses costmodel.OffloadElephantPPS.
	ElephantPPS int
	// ReadbackInterval is the counter-readback (and rate-sampling)
	// period; zero uses costmodel.OffloadReadbackInterval.
	ReadbackInterval sim.Time
	// EWMAWeightPct is the weight (percent, 1..100) the rate EWMA gives
	// the newest interval; zero uses costmodel.OffloadEWMAWeightPct.
	EWMAWeightPct int
}

// withDefaults resolves zero fields to the costmodel defaults.
func (o OffloadOptions) withDefaults() OffloadOptions {
	if o.TableSize <= 0 {
		o.TableSize = costmodel.OffloadTableSize
	}
	if o.ElephantPPS <= 0 {
		o.ElephantPPS = costmodel.OffloadElephantPPS
	}
	if o.ReadbackInterval <= 0 {
		o.ReadbackInterval = costmodel.OffloadReadbackInterval
	}
	if o.EWMAWeightPct <= 0 || o.EWMAWeightPct > 100 {
		o.EWMAWeightPct = costmodel.OffloadEWMAWeightPct
	}
	return o
}

// OffloadStats is the engine's counter snapshot; all zero while offload
// has never been enabled.
type OffloadStats struct {
	// Hits counts packets forwarded from the hardware table.
	Hits uint64
	// Installs / Evictions / Uninstalls / Live form the conservation
	// ledger: Installs == Evictions + Uninstalls + Live at all times.
	Installs   uint64
	Evictions  uint64
	Uninstalls uint64
	Live       int
	// Refused counts installs declined by admission control (table full
	// of still-active rules).
	Refused uint64
	// Readbacks counts counter-readback sweeps; HWMergedHits the hardware
	// hits they merged into megaflow stats.
	Readbacks    uint64
	HWMergedHits uint64
	// Capacity is the effective table capacity (after any fault clamp).
	Capacity int
}

// offloadRec is the engine's per-megaflow rate state.
type offloadRec struct {
	// lastHits snapshots Entry.Hits (software + merged hardware) at the
	// previous sample tick.
	lastHits uint64
	// ewmaMilli is the EWMA flow rate in milli-hits per readback interval
	// (milli so mouse-grade rates do not floor to zero in integer math).
	ewmaMilli uint64
	// keys lists the exact keys currently installed in hardware for this
	// megaflow.
	keys []flow.Key
	// seen is the engine tick that last saw the flow in a classifier;
	// flows that vanish without a FlowDel are reaped by tick sweep.
	seen uint64
}

// offloadEngine owns the NIC flow table, the per-flow rate tracker, and
// the readback/decision tick. It is created on first enable and survives
// disable (counters persist); the on flag gates all behavior.
type offloadEngine struct {
	dp    *Datapath
	table *nicsim.FlowTable
	// cpu is the offload driver thread: rule installs and counter
	// readback are charged here, so the PMD's cycles-freed headline is
	// not polluted by offload bookkeeping.
	cpu     *sim.CPU
	timer   *sim.Timer
	opts    OffloadOptions // defaults applied
	on      bool
	tickNo  uint64
	recs    map[*dpcls.Entry]*offloadRec
	scratch []*dpcls.Entry
	// thresholdMilli is ElephantPPS converted to milli-hits per interval.
	thresholdMilli uint64
	// hwMergedHits counts hardware hits merged into megaflow stats.
	hwMergedHits uint64
}

func newOffloadEngine(d *Datapath, o OffloadOptions) *offloadEngine {
	e := &offloadEngine{
		dp:    d,
		table: nicsim.NewFlowTable(o.TableSize),
		cpu:   d.Eng.NewCPU("hw-offload"),
		recs:  make(map[*dpcls.Entry]*offloadRec),
	}
	e.timer = d.Eng.NewTimer(e.tick)
	e.applyOpts(o)
	return e
}

// applyOpts installs new settings, resizing the hardware table in place so
// the install/evict ledger carries across a reconfigure.
func (o *offloadEngine) applyOpts(opts OffloadOptions) {
	o.opts = opts
	o.thresholdMilli = uint64(opts.ElephantPPS) * uint64(opts.ReadbackInterval) / 1_000_000
	if o.thresholdMilli < 1 {
		o.thresholdMilli = 1
	}
	if o.table.Capacity() != opts.TableSize {
		o.table.SetCapacity(opts.TableSize, o.dropHW)
	}
}

// start (re-)arms the readback timer; Schedule cancels any pending arm, so
// a reconfigure moves the next readback to the new cadence immediately
// rather than after one stale interval.
func (o *offloadEngine) start() {
	o.on = true
	o.timer.Schedule(o.opts.ReadbackInterval)
}

// disable stops the tick and hands every offloaded flow back to software
// (the rules are uninstalled, so nothing stale can keep forwarding).
func (o *offloadEngine) disable() {
	if !o.on {
		return
	}
	o.on = false
	o.flushAll()
}

// tick is one readback-and-decision pass on the offload thread: merge
// hardware counters into megaflow stats, resample every megaflow's rate,
// and mark or unmark elephants.
func (o *offloadEngine) tick() {
	if !o.on {
		return
	}
	o.tickNo++
	o.cpu.Consume(sim.User, costmodel.OffloadReadbackPerFlow*sim.Time(o.table.Len()))
	o.table.Readback(o.merge)

	w := uint64(o.opts.EWMAWeightPct)
	for _, m := range o.dp.pmds {
		o.scratch = m.cls.EntriesInto(o.scratch)
		for _, e := range o.scratch {
			rec := o.recs[e]
			if rec == nil {
				rec = &offloadRec{}
				o.recs[e] = rec
			}
			delta := e.Hits - rec.lastHits
			rec.lastHits = e.Hits
			rec.ewmaMilli = (w*delta*1000 + (100-w)*rec.ewmaMilli) / 100
			rec.seen = o.tickNo
			if rec.ewmaMilli >= o.thresholdMilli && offloadableActions(e.Actions) {
				e.OffloadMark = 1
			} else {
				e.OffloadMark = 0
			}
		}
	}

	// Reap flows that left the classifier without passing through
	// FlowDel's uninstall (defense in depth; the removals commute, so map
	// order cannot leak into observable state).
	for e, rec := range o.recs {
		if rec.seen != o.tickNo {
			for _, k := range rec.keys {
				o.table.Uninstall(k)
			}
			delete(o.recs, e)
		}
	}

	o.timer.Schedule(o.opts.ReadbackInterval)
}

// merge folds one entry's hardware hit delta into its megaflow stats —
// what keeps the revalidator from idle-evicting hardware-hot flows.
func (o *offloadEngine) merge(cookie any, delta uint64) {
	e := cookie.(*dpcls.Entry)
	e.Hits += delta
	o.hwMergedHits += delta
}

// hwLookup matches a packet against the NIC flow table. The hardware
// parses and matches for free (no CPU charge, like nicsim rxq steering);
// only live megaflows forward — a dead cookie is purged on sight instead
// of forwarding with stale actions.
func (o *offloadEngine) hwLookup(p *packet.Packet) (*dpcls.Entry, bool) {
	key := flow.Extract(p)
	c, ok := o.table.Lookup(key)
	if !ok {
		return nil, false
	}
	e := c.(*dpcls.Entry)
	if e.Dead() || !offloadableActions(e.Actions) {
		// Either the megaflow was removed between our uninstall discipline's
		// passes, or an in-place replacement swapped in actions the hardware
		// cannot execute: purge every rule of the flow and fall back to
		// software rather than forward wrongly.
		o.uninstallEntry(e)
		return nil, false
	}
	return e, true
}

// installFor pushes one exact key of a marked megaflow into hardware,
// charging the driver install to the offload thread. Called on the packet
// path only for hardware misses of elephant-marked flows, so a resident
// elephant costs nothing here.
func (o *offloadEngine) installFor(key flow.Key, e *dpcls.Entry) {
	evicted, ok := o.table.Install(key, e)
	if !ok {
		return
	}
	o.cpu.Consume(sim.User, costmodel.OffloadInstall)
	rec := o.recs[e]
	if rec == nil {
		rec = &offloadRec{lastHits: e.Hits}
		o.recs[e] = rec
	}
	rec.keys = append(rec.keys, key)
	if evicted != nil {
		o.dropHW(evicted)
	}
}

// dropHW unbooks an evicted hardware rule from its megaflow's record.
func (o *offloadEngine) dropHW(hw *nicsim.HWFlow) {
	e, ok := hw.Cookie.(*dpcls.Entry)
	if !ok {
		return
	}
	rec := o.recs[e]
	if rec == nil {
		return
	}
	for i, k := range rec.keys {
		if k == hw.Key {
			rec.keys = append(rec.keys[:i], rec.keys[i+1:]...)
			break
		}
	}
}

// uninstallEntry purges every hardware rule of a removed megaflow — the
// NIC-table leg of the FlowDel invalidation pass (EMC, SMC, and hardware
// in the same breath).
func (o *offloadEngine) uninstallEntry(e *dpcls.Entry) {
	e.OffloadMark = 0
	rec := o.recs[e]
	if rec == nil {
		return
	}
	for _, k := range rec.keys {
		o.table.Uninstall(k)
	}
	rec.keys = rec.keys[:0]
	delete(o.recs, e)
}

// flushAll empties the hardware table and the rate tracker (datapath flow
// flush, engine disable).
func (o *offloadEngine) flushAll() {
	o.table.Flush(func(hw *nicsim.HWFlow) {
		if e, ok := hw.Cookie.(*dpcls.Entry); ok {
			e.OffloadMark = 0
		}
	})
	for e := range o.recs {
		e.OffloadMark = 0
		delete(o.recs, e)
	}
}

// clamp applies or releases the offload-table-pressure fault.
func (o *offloadEngine) clamp(n int) {
	o.table.Clamp(n, o.dropHW)
}

// offloadableActions reports whether an action list is within the
// hardware's capability: eth rewrites, VLAN push/pop, and TTL decrement
// followed by a single terminal output. Conntrack, tunnels, meters, and
// empty (drop) lists stay in software, as tc offload declines them.
func offloadableActions(a any) bool {
	actions, ok := a.([]ofproto.DPAction)
	if !ok || len(actions) == 0 {
		return false
	}
	for i, act := range actions {
		switch act.Type {
		case ofproto.DPOutput:
			return i == len(actions)-1
		case ofproto.DPSetEthSrc, ofproto.DPSetEthDst,
			ofproto.DPPushVLAN, ofproto.DPPopVLAN, ofproto.DPDecTTL:
		default:
			return false
		}
	}
	return false
}

// ConfigureOffload enables, reconfigures, or disables the hardware-offload
// engine at runtime (other_config:hw-offload*). Disabling uninstalls every
// hardware rule, so traffic falls back to the software hierarchy; counters
// persist across disable/enable.
func (d *Datapath) ConfigureOffload(o OffloadOptions) {
	d.Opts.Offload = o
	if !o.Enable {
		if d.offload != nil {
			d.offload.disable()
		}
		return
	}
	resolved := o.withDefaults()
	if d.offload == nil {
		d.offload = newOffloadEngine(d, resolved)
	} else {
		d.offload.applyOpts(resolved)
	}
	d.offload.start()
}

// OffloadEnabled reports whether the engine is running.
func (d *Datapath) OffloadEnabled() bool { return d.offload != nil && d.offload.on }

// OffloadSettings returns the effective engine settings (defaults applied),
// for config readback.
func (d *Datapath) OffloadSettings() OffloadOptions {
	o := d.Opts.Offload.withDefaults()
	o.Enable = d.OffloadEnabled()
	return o
}

// OffloadStats snapshots the engine counters; zero-valued before the
// engine ever ran.
func (d *Datapath) OffloadStats() OffloadStats {
	o := d.offload
	if o == nil {
		return OffloadStats{}
	}
	return OffloadStats{
		Hits:         o.table.Hits,
		Installs:     o.table.Installs,
		Evictions:    o.table.Evictions,
		Uninstalls:   o.table.Uninstalls,
		Live:         o.table.Len(),
		Refused:      o.table.Refused,
		Readbacks:    o.table.Readbacks,
		HWMergedHits: o.hwMergedHits,
		Capacity:     o.table.EffectiveCapacity(),
	}
}

// OffloadUninstall purges a removed megaflow's hardware rules in the same
// invalidation pass as InvalidateEMC/InvalidateSMC (flow delete
// discipline): an uninstalled rule must never forward with stale actions.
func (d *Datapath) OffloadUninstall(e *dpcls.Entry) {
	if d.offload != nil {
		d.offload.uninstallEntry(e)
	}
}

// OffloadClamp applies (n > 0) or releases (n <= 0) a fault-injected
// hardware-table capacity clamp — the offload-table-pressure fault's side
// effect hook.
func (d *Datapath) OffloadClamp(n int) {
	if d.offload != nil {
		d.offload.clamp(n)
	}
}

// OffloadCPU exposes the offload driver thread's CPU (experiments report
// its duty cycle); nil until the engine first ran.
func (d *Datapath) OffloadCPU() *sim.CPU {
	if d.offload == nil {
		return nil
	}
	return d.offload.cpu
}

// hwForward executes a hardware-offloaded action list: the NIC applies the
// rewrites and forwards without host CPU involvement, so nothing here is
// charged beyond the OffloadHit the caller already paid.
func (d *Datapath) hwForward(m *PMD, p *packet.Packet, actions []ofproto.DPAction) {
	for _, a := range actions {
		switch a.Type {
		case ofproto.DPSetEthSrc:
			if len(p.Data) >= 12 {
				copy(p.Data[6:12], a.MAC[:])
			}
		case ofproto.DPSetEthDst:
			if len(p.Data) >= 6 {
				copy(p.Data[0:6], a.MAC[:])
			}
		case ofproto.DPPushVLAN:
			p.Data = hdr.PushVLAN(p.Data, a.VLAN, a.VLANPrio)
		case ofproto.DPPopVLAN:
			p.Data = hdr.PopVLAN(p.Data)
		case ofproto.DPDecTTL:
			decTTL(p)
		case ofproto.DPOutput:
			out := d.ports[a.Port]
			if out == nil {
				d.Drops++
				p.Release()
				return
			}
			if m.trace != nil {
				m.trace.OutPort = a.Port
			}
			out.Tx(m.CPU, d.TxqFor(m, out), p)
			m.touch(out)
			return
		}
	}
	d.Drops++
	p.Release()
}
