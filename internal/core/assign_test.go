package core

import (
	"strings"
	"testing"

	"ovsxdp/internal/nicsim"
	"ovsxdp/internal/packet"
	"ovsxdp/internal/sim"
)

// assignBed is a minimal datapath for assignment-layer tests: PMD threads
// plus a multi-queue DPDK rx port, no traffic.
func newAssignBed(t *testing.T, pmds, queues int, opts Options) (*Datapath, *DPDKPort, []*PMD) {
	t.Helper()
	eng := sim.NewEngine(1)
	nic := nicsim.New(eng, nicsim.Config{Name: "p0", Ifindex: 1, Queues: queues})
	dp := NewDatapath(eng, forwardPipeline(), opts)
	port := NewDPDKPort(1, nic)
	dp.AddPort(port)
	threads := make([]*PMD, pmds)
	for i := range threads {
		threads[i] = dp.NewPMD(ModePoll, nil)
	}
	return dp, port, threads
}

// The historical AssignRxQueue silently accepted duplicate (port, queue)
// pairs, polling the same queue from two threads. The assignment layer must
// reject duplicates on the same thread and across threads.
func TestAssignRejectsDuplicates(t *testing.T) {
	dp, port, ms := newAssignBed(t, 2, 2, DefaultOptions())
	if err := ms[0].AssignRxQueue(port, 0); err != nil {
		t.Fatalf("first assignment: %v", err)
	}
	if err := ms[0].AssignRxQueue(port, 0); err == nil {
		t.Fatal("same-thread duplicate accepted")
	}
	err := ms[1].AssignRxQueue(port, 0)
	if err == nil {
		t.Fatal("cross-thread duplicate accepted")
	}
	if !strings.Contains(err.Error(), "already assigned to pmd0") {
		t.Fatalf("duplicate error should name the owner, got: %v", err)
	}
	// The failed assignments must not have grown any poll list.
	if len(ms[0].Rxqs()) != 1 || len(ms[1].Rxqs()) != 0 {
		t.Fatalf("poll lists after duplicates: %d/%d, want 1/0",
			len(ms[0].Rxqs()), len(ms[1].Rxqs()))
	}
	_ = dp
}

func TestAssignValidatesQueueAndOwnership(t *testing.T) {
	_, port, ms := newAssignBed(t, 1, 2, DefaultOptions())
	if err := ms[0].AssignRxQueue(port, 2); err == nil {
		t.Fatal("out-of-range queue accepted")
	}
	if err := ms[0].AssignRxQueue(port, -1); err == nil {
		t.Fatal("negative queue accepted")
	}
	// A PMD from a different datapath must be rejected.
	other, _, foreign := newAssignBed(t, 1, 2, DefaultOptions())
	_ = other
	dp2, port2, _ := newAssignBed(t, 1, 2, DefaultOptions())
	if err := dp2.AssignRxqTo(foreign[0], port2, 0); err == nil {
		t.Fatal("foreign PMD accepted")
	}
	_ = port2
}

func TestUnassignThenReassign(t *testing.T) {
	dp, port, ms := newAssignBed(t, 2, 2, DefaultOptions())
	if err := ms[0].AssignRxQueue(port, 0); err != nil {
		t.Fatal(err)
	}
	if err := dp.UnassignRxq(port, 0); err != nil {
		t.Fatalf("unassign: %v", err)
	}
	if err := dp.UnassignRxq(port, 0); err == nil {
		t.Fatal("double unassign accepted")
	}
	if err := ms[1].AssignRxQueue(port, 0); err != nil {
		t.Fatalf("reassign after unassign: %v", err)
	}
	if len(ms[0].Rxqs()) != 0 || len(ms[1].Rxqs()) != 1 {
		t.Fatalf("poll lists: %d/%d, want 0/1", len(ms[0].Rxqs()), len(ms[1].Rxqs()))
	}
}

func TestRoundRobinDistribution(t *testing.T) {
	dp, port, ms := newAssignBed(t, 2, 4, DefaultOptions())
	if err := dp.DistributeRxqs(port); err != nil {
		t.Fatal(err)
	}
	// Round-robin in queue order: pmd0 gets q0,q2; pmd1 gets q1,q3.
	want := [][]int{{0, 2}, {1, 3}}
	for i, m := range ms {
		qs := m.Rxqs()
		if len(qs) != 2 || qs[0].Queue != want[i][0] || qs[1].Queue != want[i][1] {
			t.Fatalf("pmd%d polls %v, want queues %v", i, qs, want[i])
		}
	}
}

func TestCyclesColdStartBalancesByCount(t *testing.T) {
	opts := DefaultOptions()
	opts.RxqAssign = AssignCycles
	dp, port, ms := newAssignBed(t, 2, 4, opts)
	if err := dp.DistributeRxqs(port); err != nil {
		t.Fatal(err)
	}
	// No cycle history yet: the cycles policy must still spread queues, not
	// pile everything on thread 0.
	if len(ms[0].Rxqs()) != 2 || len(ms[1].Rxqs()) != 2 {
		t.Fatalf("cold-start cycles split %d/%d, want 2/2",
			len(ms[0].Rxqs()), len(ms[1].Rxqs()))
	}
}

func TestParseAssignPolicy(t *testing.T) {
	if p, err := ParseAssignPolicy("cycles"); err != nil || p != AssignCycles {
		t.Fatalf("cycles: %v %v", p, err)
	}
	if p, err := ParseAssignPolicy("roundrobin"); err != nil || p != AssignRoundRobin {
		t.Fatalf("roundrobin: %v %v", p, err)
	}
	if _, err := ParseAssignPolicy("random"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

// TestManualRebalance skews the measured interval cycles onto one thread and
// checks the greedy bin-pack's deterministic outcome.
func TestManualRebalance(t *testing.T) {
	dp, port, ms := newAssignBed(t, 2, 4, DefaultOptions())
	for q := 0; q < 4; q++ {
		if err := ms[0].AssignRxQueue(port, q); err != nil {
			t.Fatal(err)
		}
	}
	for q, cycles := range []sim.Time{400, 300, 200, 100} {
		dp.assign.rxqs[RxQueue{Port: port, Queue: q}].intervalCycles = cycles
	}
	moved := dp.Rebalance()
	if moved == 0 {
		t.Fatal("rebalance moved nothing off a 4-queue/0-queue split")
	}
	// Greedy heaviest-first: q0(400)->pmd0, q1(300)->pmd1, q2(200)->pmd1,
	// q3(100)->pmd0. Loads 500/500.
	q0 := dp.assign.rxqs[RxQueue{Port: port, Queue: 0}].pmd
	q1 := dp.assign.rxqs[RxQueue{Port: port, Queue: 1}].pmd
	q2 := dp.assign.rxqs[RxQueue{Port: port, Queue: 2}].pmd
	q3 := dp.assign.rxqs[RxQueue{Port: port, Queue: 3}].pmd
	if q0 != ms[0] || q1 != ms[1] || q2 != ms[1] || q3 != ms[0] {
		t.Fatalf("bin-pack placed q0..q3 on pmd %d,%d,%d,%d; want 0,1,1,0",
			q0.ID, q1.ID, q2.ID, q3.ID)
	}
	reb, movedTotal, _ := dp.RebalanceStats()
	if reb != 1 || int(movedTotal) != moved {
		t.Fatalf("stats: rebalances=%d moves=%d, want 1/%d", reb, movedTotal, moved)
	}
}

// TestRebalanceRespectsThreshold: a balanced load must dry-run, not move.
func TestRebalanceRespectsThreshold(t *testing.T) {
	dp, port, ms := newAssignBed(t, 2, 2, DefaultOptions())
	if err := dp.DistributeRxqs(port); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 2; q++ {
		dp.assign.rxqs[RxQueue{Port: port, Queue: q}].intervalCycles = 500
	}
	if moved := dp.Rebalance(); moved != 0 {
		t.Fatalf("balanced load moved %d queues", moved)
	}
	_, _, dry := dp.RebalanceStats()
	if dry != 1 {
		t.Fatalf("dry-runs = %d, want 1", dry)
	}
	_ = ms
}

// xpsPort is a stub with a configurable tx queue count.
type xpsPort struct {
	txqs int
}

func (p *xpsPort) ID() uint32                             { return 9 }
func (p *xpsPort) Name() string                           { return "xps" }
func (p *xpsPort) NumRxQueues() int                       { return 1 }
func (p *xpsPort) NumTxQueues() int                       { return p.txqs }
func (p *xpsPort) Rx(*sim.CPU, int, int) []*packet.Packet { return nil }
func (p *xpsPort) Tx(*sim.CPU, int, *packet.Packet)       {}
func (p *xpsPort) Flush(*sim.CPU, int)                    {}
func (p *xpsPort) Arm(int, func())                        {}

func TestXPSTxqMappingAndContention(t *testing.T) {
	dp, _, ms := newAssignBed(t, 3, 1, DefaultOptions())
	shared := &xpsPort{txqs: 2}
	unlimited := &xpsPort{txqs: 0}

	// 3 threads over 2 txqs: thread id modulo queue count, contended.
	for i, want := range []int{0, 1, 0} {
		if got := dp.TxqFor(ms[i], shared); got != want {
			t.Fatalf("TxqFor(pmd%d) = %d, want %d", i, got, want)
		}
	}
	if !dp.txqContended(shared) {
		t.Fatal("2 txqs under 3 threads must be contended")
	}
	// Function-delivery ports (no txq limit) are never contended.
	if dp.txqContended(unlimited) {
		t.Fatal("unlimited port reported contended")
	}
	if got := dp.TxqFor(ms[2], unlimited); got != 2 {
		t.Fatalf("TxqFor on unlimited port = %d, want thread id 2", got)
	}
}

func TestChargeTxLockMutexVsSpin(t *testing.T) {
	opts := DefaultOptions()
	opts.TxLockMutex = true
	dp, _, ms := newAssignBed(t, 3, 1, opts)
	shared := &xpsPort{txqs: 1}
	dp.chargeTxLock(ms[0], shared)
	if ms[0].Perf.TxContended != 1 || ms[0].Perf.TxLockCycles == 0 {
		t.Fatalf("mutex mode: contended=%d lock-cycles=%d, want 1/nonzero",
			ms[0].Perf.TxContended, ms[0].Perf.TxLockCycles)
	}
	// Spinlock mode counts contention per packet but charges at flush time.
	dp2, _, ms2 := newAssignBed(t, 3, 1, DefaultOptions())
	dp2.chargeTxLock(ms2[0], shared)
	if ms2[0].Perf.TxContended != 1 || ms2[0].Perf.TxLockCycles != 0 {
		t.Fatalf("spin mode: contended=%d lock-cycles=%d, want 1/0",
			ms2[0].Perf.TxContended, ms2[0].Perf.TxLockCycles)
	}
}

func TestPmdRxqShowRendersAssignments(t *testing.T) {
	dp, port, _ := newAssignBed(t, 2, 2, DefaultOptions())
	if err := dp.DistributeRxqs(port); err != nil {
		t.Fatal(err)
	}
	out := dp.PmdRxqShow()
	for _, want := range []string{
		"rxq assignment policy: roundrobin",
		"pmd thread pmd0:",
		"pmd thread pmd1:",
		"queue-id:  0",
		"queue-id:  1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("pmd-rxq-show missing %q:\n%s", want, out)
		}
	}
}
