package core

import (
	"testing"

	"ovsxdp/internal/afxdp"
	"ovsxdp/internal/sim"
)

func TestRevalidatorAgesIdleFlows(t *testing.T) {
	bed := newAFXDPP2P(t, DefaultOptions(), afxdp.LockSpinBatched, ModePoll)
	reval := bed.dp.StartRevalidator(2*sim.Millisecond, 2)

	// Traffic for a while, then silence.
	bed.offer(100, 10_000) // 100 packets over 1ms
	bed.eng.RunUntil(2 * sim.Millisecond)
	if bed.dp.FlowCount() == 0 {
		t.Fatal("traffic must install megaflows")
	}

	// Several idle sweep intervals later the flows are gone.
	bed.eng.RunUntil(20 * sim.Millisecond)
	if got := bed.dp.FlowCount(); got != 0 {
		t.Fatalf("idle megaflows not evicted: %d remain", got)
	}
	if reval.Evicted == 0 || reval.Sweeps < 3 {
		t.Fatalf("revalidator stats: %d evicted over %d sweeps", reval.Evicted, reval.Sweeps)
	}
}

func TestRevalidatorKeepsActiveFlows(t *testing.T) {
	bed := newAFXDPP2P(t, DefaultOptions(), afxdp.LockSpinBatched, ModePoll)
	bed.dp.StartRevalidator(2*sim.Millisecond, 2)

	// Continuous traffic for 30ms: the flow must survive every sweep.
	bed.offer(3000, 10_000)
	bed.eng.RunUntil(29 * sim.Millisecond)
	if bed.dp.FlowCount() == 0 {
		t.Fatal("active megaflow evicted under traffic")
	}
	bed.eng.RunUntil(31 * sim.Millisecond)
	if bed.recvd != 3000 {
		t.Fatalf("forwarding disturbed: %d/3000", bed.recvd)
	}
}

func TestRevalidatorStop(t *testing.T) {
	bed := newAFXDPP2P(t, DefaultOptions(), afxdp.LockSpinBatched, ModePoll)
	reval := bed.dp.StartRevalidator(sim.Millisecond, 1)
	bed.offer(10, 1000)
	bed.eng.RunUntil(2 * sim.Millisecond)
	reval.Stop()
	sweeps := reval.Sweeps
	bed.eng.RunUntil(10 * sim.Millisecond)
	if reval.Sweeps != sweeps {
		t.Fatal("stopped revalidator kept sweeping")
	}
}
