// Package core implements the paper's primary contribution: the OVS
// userspace datapath with AF_XDP packet I/O (Section 3), together with the
// alternative port transports the evaluation compares it against (DPDK,
// tap, vhostuser, veth) and the PMD threads that drive them.
//
// The datapath mirrors dpif-netdev: per-PMD exact-match cache, megaflow
// classifier, inline upcalls to the ofproto pipeline, and action execution
// including conntrack recirculation and tunnel push/pop. Every optimization
// from Table 2 is a switchable option so the experiments can walk the
// ladder.
package core

import (
	"fmt"

	"ovsxdp/internal/afxdp"
	"ovsxdp/internal/costmodel"
	"ovsxdp/internal/faultinject"
	"ovsxdp/internal/kernelsim"
	"ovsxdp/internal/nicsim"
	"ovsxdp/internal/packet"
	"ovsxdp/internal/sim"
	"ovsxdp/internal/vdev"
)

// Port is one datapath port. Implementations charge their I/O costs to the
// polling CPU; the receive side is pull-based (PMD polling), with Arm
// supporting the interrupt-driven mode of Figure 8(a).
type Port interface {
	ID() uint32
	Name() string
	// NumRxQueues returns the number of pollable receive queues.
	NumRxQueues() int
	// NumTxQueues returns the number of transmit queues. When the
	// datapath runs more PMD threads than a port has txqs, threads share
	// queues under XPS and each send pays a lock cost; <= 0 means the
	// port imposes no txq limit (function-delivery ports) and is never
	// contended.
	NumTxQueues() int
	// Rx fetches up to max packets from queue q, charging receive costs
	// to cpu.
	Rx(cpu *sim.CPU, q, max int) []*packet.Packet
	// Tx queues one packet for transmission on tx queue txq (PMD threads
	// each use their own tx queue, as OVS does), charging per-packet
	// costs to cpu. Transmission may be deferred until Flush.
	Tx(cpu *sim.CPU, txq int, p *packet.Packet)
	// Flush completes any batched transmission on txq (e.g. the AF_XDP
	// sendto kick), charging to cpu.
	Flush(cpu *sim.CPU, txq int)
	// Arm requests a wakeup callback when queue q has packets, for
	// interrupt-mode operation.
	Arm(q int, fn func())
}

// --- AF_XDP port ----------------------------------------------------------------

// AFXDPPortConfig parameterizes NewAFXDPPort.
type AFXDPPortConfig struct {
	ID  uint32
	NIC *nicsim.NIC
	Eng *sim.Engine
	// LockMode selects the umempool strategy (O2/O3).
	LockMode afxdp.LockMode
	// SoftirqCPUs are the per-queue kernel-side CPUs; one per NIC queue.
	// When nil, CPUs named "softirq-<port>-<q>" are created.
	SoftirqCPUs []*sim.CPU
	// ZeroCopy selects zero-copy AF_XDP (XDP_DRV + XDP_ZEROCOPY): the
	// driver DMAs straight into umem, eliminating the kernel-side copy.
	// Only some NIC drivers support it; the copy-mode fallback "works
	// universally at the cost of an extra packet copy" (Section 3.5
	// limitations).
	ZeroCopy bool
	// ExtraVerdicts extends the XDP verdict handling (container
	// redirect experiments); ToXsk is always handled internally.
	ExtraVerdicts nicsim.DriverVerdicts
}

// AFXDPPort is the paper's port type: the NIC runs an XDP program that
// redirects into per-queue XSK sockets; the PMD thread polls the XSK rx
// rings in userspace. Kernel-side work (driver, XDP program, tx drain)
// happens on per-queue softirq CPUs, concurrently with the PMD — exactly
// the split Table 4 shows for AF_XDP.
type AFXDPPort struct {
	id       uint32
	nic      *nicsim.NIC
	eng      *sim.Engine
	umem     *afxdp.Umem
	pool     *afxdp.Pool
	xsks     []*afxdp.XSK
	zeroCopy bool

	softirq []*sim.CPU
	actors  []*kernelsim.NAPIActor

	pendingKick map[int]bool
	armFns      map[int]func()

	// Per-port scratch buffers, reused across Rx calls (single-threaded
	// simulation; PMDs run one event at a time).
	scratchDescs []afxdp.Desc
	scratchAddrs []uint64
	// scratchOut is the packet slice Rx returns; the PMD consumes it
	// within the same event, so one buffer per port suffices.
	scratchOut []*packet.Packet
	// rxPool recycles receive-side packet metadata+buffers (released by
	// Tx once the frame is copied into umem, or on any drop); txPool does
	// the same for kernel tx-drain frames headed to the NIC.
	rxPool *packet.Pool
	txPool *packet.Pool
	// drainFns are the pre-bound per-queue tx-drain thunks Flush
	// schedules, so a flush does not allocate a closure; drainEmit is the
	// bound frame-emit callback KernelDrainTx invokes.
	drainFns  []func()
	drainEmit func(frame []byte)

	// TxDrops counts packets lost to a full tx ring.
	TxDrops uint64
	// TxStallRetries counts kernel tx drains rescheduled with backoff
	// because an injected XSK ring stall was active.
	TxStallRetries uint64
}

// NewAFXDPPort builds the port and starts its softirq driver actors. The
// supplied XDP program (typically xdp.NewPassToXsk) must already be
// attached to the NIC's hook with an xskmap whose slot q routes to socket
// id q; this constructor wires socket ids to queues 1:1.
func NewAFXDPPort(cfg AFXDPPortConfig) *AFXDPPort {
	nq := cfg.NIC.NumQueues()
	umem := afxdp.NewUmem(afxdp.DefaultChunks, afxdp.DefaultChunkSize)
	p := &AFXDPPort{
		id:          cfg.ID,
		nic:         cfg.NIC,
		eng:         cfg.Eng,
		umem:        umem,
		pool:        afxdp.NewPool(umem, cfg.LockMode),
		zeroCopy:    cfg.ZeroCopy,
		pendingKick: make(map[int]bool),
		armFns:      make(map[int]func()),
		rxPool:      packet.NewPool(rxPoolSize, umem.ChunkSize(), true),
		txPool:      packet.NewPool(txPoolSize, umem.ChunkSize(), true),
	}
	for q := 0; q < nq; q++ {
		qq := q
		p.drainFns = append(p.drainFns, func() { p.drainTx(qq, 0) })
	}
	p.drainEmit = func(frame []byte) {
		p.nic.Transmit(p.txPool.GetCopy(frame))
	}
	for q := 0; q < nq; q++ {
		xsk := afxdp.NewXSK(uint32(q), q, umem)
		xsk.RefillFill(p.pool, afxdp.DefaultRingSize/2)
		p.xsks = append(p.xsks, xsk)

		cpu := (*sim.CPU)(nil)
		if q < len(cfg.SoftirqCPUs) {
			cpu = cfg.SoftirqCPUs[q]
		}
		if cpu == nil {
			cpu = cfg.Eng.NewCPU(fmt.Sprintf("softirq-%s-q%d", cfg.NIC.Name, q))
		}
		p.softirq = append(p.softirq, cpu)

		queue := cfg.NIC.Queue(q)
		qIdx := q
		verdicts := cfg.ExtraVerdicts
		inner := verdicts.ToXsk
		verdicts.ToXsk = func(sock uint32, pkt *packet.Packet) {
			if int(sock) < len(p.xsks) {
				s := p.xsks[sock]
				// Kernel-side XSK delivery: with zero-copy the
				// driver DMA'd straight into umem and only the
				// descriptor moves; copy mode pays a memcpy.
				cost := sim.Time(8)
				if !p.zeroCopy {
					cost += costmodel.CopyCost(len(pkt.Data))
				}
				p.softirq[qIdx].Consume(sim.Softirq, cost)
				if s.KernelDeliver(pkt.Data) {
					if fn := p.armFns[s.Queue]; fn != nil {
						delete(p.armFns, s.Queue)
						fn()
					}
				}
			}
			if inner != nil {
				inner(sock, pkt)
			} else {
				// The frame now lives in umem (or was dropped by a
				// full rx ring); the wire-side packet is done.
				pkt.Release()
			}
		}
		actor := &kernelsim.NAPIActor{
			Eng: cfg.Eng, CPU: cpu,
			Src: kernelsim.NICQueueSource{Q: queue},
			Handler: func(cpu *sim.CPU, pkts []*packet.Packet) {
				// Re-queue then let the driver pull through XDP;
				// DriverReceive charges driver + program cost.
				for _, pkt := range pkts {
					p.deliverOne(cpu, queue, qIdx, pkt, verdicts)
				}
			},
		}
		actor.Start()
		p.actors = append(p.actors, actor)
	}
	return p
}

// rxPoolSize / txPoolSize bound in-flight packets on each side of an
// AF_XDP port: rx is capped by ring depth and batch size, tx by the drain
// burst. Overflow falls back to heap allocation gracefully.
const (
	rxPoolSize = 1024
	txPoolSize = 2048
)

// deliverOne runs one packet through the XDP stage and verdict handling.
func (p *AFXDPPort) deliverOne(cpu *sim.CPU, queue *nicsim.Queue, q int, pkt *packet.Packet, v nicsim.DriverVerdicts) {
	cpu.Consume(sim.Softirq, costmodel.XDPDriverOverhead)
	hook := p.nic.Hook
	if !hook.HasProgram() {
		pkt.Release()
		return // no program: packet goes to the host stack (dropped here)
	}
	res, cost, err := hook.Run(q, pkt.Data, p.nic.Ifindex)
	cpu.Consume(sim.Softirq, cost)
	if err != nil {
		pkt.Release()
		return
	}
	switch res.Action {
	case 2: // XDP_PASS: host stack (dropped here)
		pkt.Release()
	case 3: // XDP_TX
		cpu.Consume(sim.Softirq, costmodel.XDPTxForward)
		if v.Tx != nil {
			v.Tx(pkt)
		} else {
			p.nic.Transmit(pkt)
		}
	case 4: // XDP_REDIRECT
		tm, ok := res.RedirectMap.(interface {
			Target(uint32) (uint32, bool)
		})
		if !ok {
			pkt.Release()
			return
		}
		tgt, ok := tm.Target(res.RedirectIndex)
		if !ok {
			pkt.Release()
			return
		}
		if res.RedirectMap.Type().String() == "xskmap" {
			v.ToXsk(tgt, pkt)
		} else if v.ToDev != nil {
			cpu.Consume(sim.Softirq, costmodel.XDPRedirectVeth)
			v.ToDev(tgt, pkt)
		} else {
			pkt.Release()
		}
	default: // XDP_DROP / XDP_ABORTED
		pkt.Release()
	}
}

// ID implements Port.
func (p *AFXDPPort) ID() uint32 { return p.id }

// Name implements Port.
func (p *AFXDPPort) Name() string { return p.nic.Name }

// NumRxQueues implements Port.
func (p *AFXDPPort) NumRxQueues() int { return len(p.xsks) }

// NumTxQueues implements Port: one XSK tx ring per queue.
func (p *AFXDPPort) NumTxQueues() int { return len(p.xsks) }

// XSK exposes the socket for queue q (tests, xskmap setup).
func (p *AFXDPPort) XSK(q int) *afxdp.XSK { return p.xsks[q] }

// Pool exposes the umempool (lock-mode accounting in tests).
func (p *AFXDPPort) Pool() *afxdp.Pool { return p.pool }

// lockCost returns the umempool synchronization cost for one batch of n
// operations under the configured mode.
func (p *AFXDPPort) lockCost(n int) sim.Time {
	switch p.pool.Mode {
	case afxdp.LockMutex:
		return sim.Time(n) * costmodel.MutexLockPerPacket
	case afxdp.LockSpin:
		return sim.Time(n) * costmodel.SpinlockPerAcquire
	default:
		return costmodel.SpinlockPerAcquire
	}
}

// Rx implements Port: pop descriptors from the XSK rx ring, materialize
// packets, recycle the chunks, and refill the fill ring.
func (p *AFXDPPort) Rx(cpu *sim.CPU, q, max int) []*packet.Packet {
	xsk := p.xsks[q]
	if cap(p.scratchDescs) < max {
		p.scratchDescs = make([]afxdp.Desc, max)
		p.scratchAddrs = make([]uint64, 0, max)
	}
	descs := p.scratchDescs[:max]
	n := xsk.UserReceive(descs, max)
	if n == 0 {
		return nil
	}
	out := p.scratchOut[:0]
	addrs := p.scratchAddrs[:0]
	for _, d := range descs[:n] {
		buf := xsk.Umem.Buffer(d.Addr, int(d.Len))
		pkt := p.rxPool.GetCopy(buf)
		pkt.InPort = p.id
		// AF_XDP cannot see the NIC's descriptor metadata: neither the
		// validated-checksum flag nor the RSS hash survive the XDP
		// path (Section 5.5), so the hash is recomputed in software
		// and checksum state starts unverified.
		pkt.Offloads = 0
		pkt.HasRSSHash = false
		cpu.Consume(sim.User, costmodel.RxHashSoftware)
		out = append(out, pkt)
		addrs = append(addrs, d.Addr)
		cpu.Consume(sim.User, costmodel.AFXDPRxDescriptor)
	}
	// Copy-mode recycling: chunks return to the pool, then the fill ring
	// is topped up for the next arrivals. Release and refill share one
	// critical section, so the lock cost is paid once per operation (or
	// once per batch in the batched mode).
	p.pool.ReleaseBatch(addrs)
	xsk.RefillFill(p.pool, n)
	cpu.Consume(sim.User, sim.Time(n)*costmodel.AFXDPFillRefill+
		p.lockCost(n)+sim.Time(n)*costmodel.UmempoolOpBatched)
	p.scratchOut = out
	return out
}

// Tx implements Port: allocate a chunk, copy the frame in, queue the
// descriptor on the PMD's own tx queue's socket. The sendto kick and the
// kernel-side drain happen in Flush.
func (p *AFXDPPort) Tx(cpu *sim.CPU, txq int, pkt *packet.Packet) {
	addr, ok := p.pool.Alloc()
	if p.pool.Mode == afxdp.LockSpinBatched {
		// Batched locking amortizes the tx-side pool lock across the
		// flush batch; only bookkeeping remains per packet.
		cpu.Consume(sim.User, costmodel.UmempoolOpBatched)
	} else {
		// Transmit allocations hit a small per-thread cache; the pool
		// lock is taken roughly every fourth packet.
		cpu.Consume(sim.User, p.lockCost(1)/4)
	}
	if !ok {
		p.TxDrops++
		pkt.Release()
		return
	}
	n := len(pkt.Data)
	if n > p.umem.ChunkSize() {
		n = p.umem.ChunkSize()
	}
	copy(p.umem.Buffer(addr, n), pkt.Data[:n])
	// The frame now lives in a umem chunk; the packet object is done.
	pkt.Release()
	xsk := p.xsks[txq%len(p.xsks)]
	cpu.Consume(sim.User, costmodel.AFXDPTxDescriptor)
	if !xsk.UserTransmit(afxdp.Desc{Addr: addr, Len: uint32(n)}) {
		p.pool.Release(addr)
		p.TxDrops++
		return
	}
	p.pendingKick[txq%len(p.xsks)] = true
}

// Flush implements Port: issue the sendto kick and schedule the kernel tx
// drain on the queue's softirq CPU; completed buffers are reclaimed.
func (p *AFXDPPort) Flush(cpu *sim.CPU, txq int) {
	q := txq % len(p.xsks)
	if !p.pendingKick[q] {
		return
	}
	delete(p.pendingKick, q)
	xsk := p.xsks[q]
	if xsk.Kick() {
		cpu.Consume(sim.System, costmodel.AFXDPTxKickSyscall)
	}
	p.eng.Schedule(0, p.drainFns[q])
}

// maxTxStallRetries bounds the backoff retries of one stalled tx drain; at
// the default base the last retry lands ~80ms out, far beyond any injected
// stall window.
const maxTxStallRetries = 12

// drainTx runs the kernel-side tx drain for queue q. An injected XSK ring
// stall (transient fault) does not lose the drain: it is rescheduled with
// exponential backoff until the stall clears or the retry budget runs out.
func (p *AFXDPPort) drainTx(q, attempt int) {
	xsk := p.xsks[q]
	if xsk.Stalled() {
		if attempt >= maxTxStallRetries {
			return
		}
		p.TxStallRetries++
		delay := faultinject.Backoff(p.eng.Rand(), 20*sim.Microsecond, attempt+1)
		p.eng.Schedule(delay, func() { p.drainTx(q, attempt+1) })
		return
	}
	scpu := p.softirq[q]
	n := xsk.KernelDrainTx(afxdp.DefaultRingSize, p.drainEmit)
	scpu.Consume(sim.Softirq, sim.Time(n)*costmodel.AFXDPTxKernelDrain)
	xsk.ReclaimCompletions(p.pool, n)
}

// Arm implements Port for interrupt-mode receive.
func (p *AFXDPPort) Arm(q int, fn func()) {
	if p.xsks[q].Rx.Len() > 0 {
		fn()
		return
	}
	p.armFns[q] = fn
}

// --- DPDK port -------------------------------------------------------------------

// DPDKPort is the Section 2.2.1 baseline: the PMD polls the NIC hardware
// queues directly from userspace; no kernel code runs at all (and the
// kernel loses sight of the device — see netlinksim.BindDPDK).
type DPDKPort struct {
	id  uint32
	nic *nicsim.NIC
}

// NewDPDKPort wraps a NIC whose kernel driver has been unbound.
func NewDPDKPort(id uint32, nic *nicsim.NIC) *DPDKPort {
	return &DPDKPort{id: id, nic: nic}
}

// ID implements Port.
func (p *DPDKPort) ID() uint32 { return p.id }

// Name implements Port.
func (p *DPDKPort) Name() string { return p.nic.Name }

// NumRxQueues implements Port.
func (p *DPDKPort) NumRxQueues() int { return p.nic.NumQueues() }

// NumTxQueues implements Port: hardware tx rings match the rx side.
func (p *DPDKPort) NumTxQueues() int { return p.nic.NumQueues() }

// Rx implements Port.
func (p *DPDKPort) Rx(cpu *sim.CPU, q, max int) []*packet.Packet {
	pkts := p.nic.Queue(q).Pop(max)
	for _, pkt := range pkts {
		pkt.InPort = p.id
		// The DPDK PMD reads checksum validation and the RSS hash
		// straight from the descriptor.
		pkt.Offloads |= packet.CsumVerified
		cpu.Consume(sim.User, costmodel.DPDKRxDescriptor+costmodel.DPDKMbufAlloc)
	}
	return pkts
}

// Tx implements Port.
func (p *DPDKPort) Tx(cpu *sim.CPU, _ int, pkt *packet.Packet) {
	cpu.Consume(sim.User, costmodel.DPDKTxDescriptor)
	p.nic.Transmit(pkt)
}

// Flush implements Port: DPDK tx bursts complete synchronously.
func (p *DPDKPort) Flush(*sim.CPU, int) {}

// Arm implements Port: DPDK is poll-only; the wakeup fires immediately if
// work exists (interrupt mode is unsupported, as in practice).
func (p *DPDKPort) Arm(q int, fn func()) {
	p.nic.Queue(q).SetInterrupt(fn)
	p.nic.Queue(q).ArmInterrupt()
}

// --- vhostuser port ---------------------------------------------------------------

// VhostPort is the Section 3.3 path B device: OVS accesses the VM's virtio
// rings directly through shared memory, with no kernel crossing and no
// QEMU relay.
type VhostPort struct {
	id  uint32
	dev *vdev.VhostUser
}

// NewVhostPort wraps a vhostuser device.
func NewVhostPort(id uint32, dev *vdev.VhostUser) *VhostPort {
	return &VhostPort{id: id, dev: dev}
}

// ID implements Port.
func (p *VhostPort) ID() uint32 { return p.id }

// Name implements Port.
func (p *VhostPort) Name() string { return p.dev.Name }

// NumRxQueues implements Port.
func (p *VhostPort) NumRxQueues() int { return 1 }

// NumTxQueues implements Port: a single virtio ring pair.
func (p *VhostPort) NumTxQueues() int { return 1 }

// Rx implements Port: dequeue from the guest's tx ring, paying the ring op
// and the copy out of guest memory.
func (p *VhostPort) Rx(cpu *sim.CPU, _, max int) []*packet.Packet {
	pkts := p.dev.FromGuest.Pop(max)
	for _, pkt := range pkts {
		pkt.InPort = p.id
		// Local guest traffic is trusted: virtio marks checksums as
		// already validated (or partial for offload negotiation).
		if pkt.Offloads&packet.CsumPartial == 0 {
			pkt.Offloads |= packet.CsumVerified
		}
		cpu.Consume(sim.User, costmodel.VhostRingOp+costmodel.CopyCost(len(pkt.Data)))
	}
	return pkts
}

// Tx implements Port: enqueue onto the guest's rx ring.
func (p *VhostPort) Tx(cpu *sim.CPU, _ int, pkt *packet.Packet) {
	cpu.Consume(sim.User, costmodel.VhostRingOp+costmodel.CopyCost(len(pkt.Data)))
	p.dev.ToGuest.Push(pkt)
}

// Flush implements Port.
func (p *VhostPort) Flush(*sim.CPU, int) {}

// Arm implements Port.
func (p *VhostPort) Arm(_ int, fn func()) {
	p.dev.FromGuest.SetWakeup(fn)
	p.dev.FromGuest.ArmWakeup()
}

// --- tap port ---------------------------------------------------------------------

// TapPort is the Section 3.3 path A device: every packet OVS sends to the
// VM/kernel costs a system call ("we measured the cost of this system call
// as 2 µs on average"; with OVS's batching the amortized per-packet
// penalty is TapPerPacketAmortized).
type TapPort struct {
	id  uint32
	dev *vdev.Tap
}

// NewTapPort wraps a tap device.
func NewTapPort(id uint32, dev *vdev.Tap) *TapPort {
	return &TapPort{id: id, dev: dev}
}

// ID implements Port.
func (p *TapPort) ID() uint32 { return p.id }

// Name implements Port.
func (p *TapPort) Name() string { return p.dev.Name }

// NumRxQueues implements Port.
func (p *TapPort) NumRxQueues() int { return 1 }

// NumTxQueues implements Port: a single-queue tap.
func (p *TapPort) NumTxQueues() int { return 1 }

// Rx implements Port: read() from the tap, a syscall per batch plus copies.
func (p *TapPort) Rx(cpu *sim.CPU, _, max int) []*packet.Packet {
	pkts := p.dev.FromKernel.Pop(max)
	if len(pkts) == 0 {
		return nil
	}
	cpu.Consume(sim.System, costmodel.SyscallBase)
	for _, pkt := range pkts {
		pkt.InPort = p.id
		if pkt.Offloads&packet.CsumPartial == 0 {
			pkt.Offloads |= packet.CsumVerified
		}
		cpu.Consume(sim.System, costmodel.CopyCost(len(pkt.Data)))
	}
	return pkts
}

// Tx implements Port.
func (p *TapPort) Tx(cpu *sim.CPU, _ int, pkt *packet.Packet) {
	cpu.Consume(sim.System, costmodel.TapPerPacketAmortized+costmodel.CopyCost(len(pkt.Data)))
	p.dev.ToKernel.Push(pkt)
}

// Flush implements Port.
func (p *TapPort) Flush(*sim.CPU, int) {}

// Arm implements Port.
func (p *TapPort) Arm(_ int, fn func()) {
	p.dev.FromKernel.SetWakeup(fn)
	p.dev.FromKernel.ArmWakeup()
}

// --- veth port (AF_XDP generic mode on a veth) --------------------------------------

// VethPort carries container traffic through OVS userspace (Figure 5 path
// A): an AF_XDP socket in generic mode on the host end of a veth pair.
// Generic mode means an extra skb copy on both directions, the reason the
// Figure 8(c) veth bars trail the in-kernel numbers.
type VethPort struct {
	id      uint32
	pair    *vdev.VethPair
	softirq *sim.CPU
	eng     *sim.Engine
}

// NewVethPort wraps the host end of a veth pair; softirq is the kernel CPU
// charged for the generic-XDP copies.
func NewVethPort(id uint32, eng *sim.Engine, pair *vdev.VethPair, softirq *sim.CPU) *VethPort {
	return &VethPort{id: id, pair: pair, softirq: softirq, eng: eng}
}

// ID implements Port.
func (p *VethPort) ID() uint32 { return p.id }

// Name implements Port.
func (p *VethPort) Name() string { return p.pair.Name }

// NumRxQueues implements Port.
func (p *VethPort) NumRxQueues() int { return 1 }

// NumTxQueues implements Port: one generic-mode XSK tx ring.
func (p *VethPort) NumTxQueues() int { return 1 }

// Rx implements Port.
func (p *VethPort) Rx(cpu *sim.CPU, _, max int) []*packet.Packet {
	pkts := p.pair.BtoA.Pop(max)
	for _, pkt := range pkts {
		pkt.InPort = p.id
		cpu.Consume(sim.User, costmodel.AFXDPRxDescriptor)
	}
	return pkts
}

// Tx implements Port.
// Tx implements Port. Generic-mode XSK pays skb allocation, linearization,
// and cold copies on both the receive and transmit crossings ("a fallback
// mode that works universally at the cost of an extra packet copy"); all of
// that serializes on the veth's softirq CPU, which gates delivery — the
// reason Figure 8(c)'s AF_XDP-veth bars top out around 8 Gbps even with
// TSO.
func (p *VethPort) Tx(cpu *sim.CPU, _ int, pkt *packet.Packet) {
	cpu.Consume(sim.User, costmodel.AFXDPTxDescriptor)
	cost := costmodel.SkbAlloc + 4*costmodel.CopyCostCold(len(pkt.Data)) + costmodel.VethCrossing
	pair := p.pair
	p.softirq.Exec(sim.Softirq, cost, func() { pair.SendA(pkt) })
}

// Flush implements Port.
func (p *VethPort) Flush(cpu *sim.CPU, _ int) {
	cpu.Consume(sim.System, costmodel.AFXDPTxKickSyscall)
}

// Arm implements Port.
func (p *VethPort) Arm(_ int, fn func()) {
	p.pair.BtoA.SetWakeup(fn)
	p.pair.BtoA.ArmWakeup()
}
