package smc

import (
	"testing"

	"ovsxdp/internal/dpcls"
	"ovsxdp/internal/flow"
)

// BenchmarkSMCLookup measures the wall-clock hit path: bucket probe,
// indirection load, and megaflow verification.
func BenchmarkSMCLookup(b *testing.B) {
	cls := dpcls.New(0)
	c := New(1<<16, 0)
	const flows = 4096
	keys := make([]flow.Key, flows)
	e := cls.Insert(keyN(0), flow.NewMaskBuilder().InPort().Build(), "actions")
	for i := range keys {
		keys[i] = keyN(i)
		c.Insert(keys[i], e)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(keys[i%flows])
	}
}

// BenchmarkSMCInsert measures the steady-state insert path (signature
// overwrite of an already-registered megaflow).
func BenchmarkSMCInsert(b *testing.B) {
	cls := dpcls.New(0)
	c := New(1<<16, 0)
	const flows = 4096
	keys := make([]flow.Key, flows)
	e := cls.Insert(keyN(0), flow.NewMaskBuilder().InPort().Build(), "actions")
	for i := range keys {
		keys[i] = keyN(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Insert(keys[i%flows], e)
	}
}
