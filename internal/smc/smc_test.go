package smc

import (
	"testing"

	"ovsxdp/internal/dpcls"
	"ovsxdp/internal/flow"
	"ovsxdp/internal/packet/hdr"
)

func keyN(i int) flow.Key {
	f := flow.Fields{
		InPort:  1,
		EthType: hdr.EtherTypeIPv4,
		IP4Src:  hdr.IP4(0x0a000000 + uint32(i)),
		IP4Dst:  hdr.MakeIP4(10, 0, 0, 2),
		IPProto: hdr.IPProtoUDP,
		TPSrc:   uint16(i), TPDst: 80,
	}
	return f.Pack()
}

// megaflowFor installs a megaflow covering key in cls and returns the entry.
func megaflowFor(cls *dpcls.Classifier, key flow.Key, mask flow.Mask) *dpcls.Entry {
	return cls.Insert(key, mask, "actions")
}

func wideMask() flow.Mask {
	return flow.NewMaskBuilder().InPort().Build()
}

func TestLookupMissThenHit(t *testing.T) {
	cls := dpcls.New(0)
	c := New(64, 0)
	k := keyN(1)
	if _, ok := c.Lookup(k); ok {
		t.Fatal("empty cache must miss")
	}
	e := megaflowFor(cls, k, flow.MaskAll())
	c.Insert(k, e)
	got, ok := c.Lookup(k)
	if !ok || got != e {
		t.Fatalf("lookup = %v,%v, want %v", got, ok, e)
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("stats hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestWildcardedMegaflowServesManyKeys(t *testing.T) {
	cls := dpcls.New(0)
	c := New(1024, 0)
	// One InPort-wildcard megaflow handles every key; each key caches its
	// own signature but all indices resolve to the same entry.
	e := megaflowFor(cls, keyN(0), wideMask())
	for i := 0; i < 100; i++ {
		c.Insert(keyN(i), e)
	}
	for i := 0; i < 100; i++ {
		got, ok := c.Lookup(keyN(i))
		if !ok || got != e {
			t.Fatalf("key %d: lookup = %v,%v", i, got, ok)
		}
	}
	if c.FlowCount() != 1 {
		t.Fatalf("flow count = %d, want 1 (shared indirection slot)", c.FlowCount())
	}
}

func TestInvalidateStaleIndexMisses(t *testing.T) {
	cls := dpcls.New(0)
	c := New(64, 0)
	k := keyN(1)
	e := megaflowFor(cls, k, flow.MaskAll())
	c.Insert(k, e)
	cls.Remove(e)
	c.Invalidate(e)
	if _, ok := c.Lookup(k); ok {
		t.Fatal("stale signature must miss after invalidation")
	}
	if c.StaleSkips == 0 {
		t.Fatal("stale probe not counted")
	}
	// Invalidating an unknown entry is a no-op.
	c.Invalidate(&dpcls.Entry{})
}

// TestRecycledIndexNeverMisdelivers is the core SMC safety property: after a
// megaflow is removed and its 16-bit index recycled for a different
// megaflow, an old signature still pointing at that index must either miss
// or match legitimately — never deliver the old flow's packets to the new
// megaflow's actions.
func TestRecycledIndexNeverMisdelivers(t *testing.T) {
	cls := dpcls.New(0)
	c := New(64, 0)
	kA, kB := keyN(1), keyN(2)
	eA := megaflowFor(cls, kA, flow.MaskAll())
	c.Insert(kA, eA)
	cls.Remove(eA)
	c.Invalidate(eA)
	// eB recycles eA's indirection index but matches only kB exactly.
	eB := megaflowFor(cls, kB, flow.MaskAll())
	c.Insert(kB, eB)
	if got, ok := c.Lookup(kA); ok {
		t.Fatalf("stale signature for removed megaflow resolved to %v", got)
	}
	if got, ok := c.Lookup(kB); !ok || got != eB {
		t.Fatalf("recycled index lost the new megaflow: %v,%v", got, ok)
	}
}

func TestVerificationRejectsSignatureCollision(t *testing.T) {
	cls := dpcls.New(0)
	// A single-bucket cache forces every key into one set, so any two keys
	// with equal upper-16 hash bits collide on signature.
	c := New(Ways, 0)
	base := keyN(0)
	sig := uint16(base.Hash(0) >> 16)
	collider := flow.Key{}
	found := false
	for i := 1; i < 1<<20 && !found; i++ {
		k := keyN(i)
		if uint16(k.Hash(0)>>16) == sig {
			collider, found = k, true
		}
	}
	if !found {
		t.Skip("no signature collision found in search range")
	}
	// The cached megaflow matches base exactly; the colliding key must be
	// rejected by verification, not delivered.
	e := megaflowFor(cls, base, flow.MaskAll())
	c.Insert(base, e)
	if got, ok := c.Lookup(collider); ok {
		t.Fatalf("signature collision mis-delivered %v", got)
	}
	if c.StaleSkips == 0 {
		t.Fatal("collision probe not counted as stale skip")
	}
}

func TestFlushEmptiesEverything(t *testing.T) {
	cls := dpcls.New(0)
	c := New(64, 0)
	for i := 0; i < 10; i++ {
		c.Insert(keyN(i), megaflowFor(cls, keyN(i), flow.MaskAll()))
	}
	c.Flush()
	if c.Len() != 0 || c.FlowCount() != 0 {
		t.Fatalf("len=%d flows=%d after flush", c.Len(), c.FlowCount())
	}
	if _, ok := c.Lookup(keyN(0)); ok {
		t.Fatal("flushed cache must miss")
	}
}

func TestEvictionUnderPressure(t *testing.T) {
	cls := dpcls.New(0)
	c := New(8, 0) // 2 buckets x 4 ways
	e := megaflowFor(cls, keyN(0), wideMask())
	for i := 0; i < 1000; i++ {
		c.Insert(keyN(i), e)
	}
	if c.Len() > c.Capacity() {
		t.Fatalf("len %d exceeds capacity %d", c.Len(), c.Capacity())
	}
	if c.Evictions == 0 {
		t.Fatal("pressure must evict")
	}
}

func TestIndexSpaceExhaustion(t *testing.T) {
	cls := dpcls.New(0)
	c := New(1<<18, 0)
	// Fill the 16-bit index space with distinct megaflows, then one more.
	for i := 0; i < maxIndex; i++ {
		c.Insert(keyN(i), megaflowFor(cls, keyN(i), flow.MaskAll()))
	}
	if c.Uncacheable != 0 {
		t.Fatalf("uncacheable = %d before exhaustion", c.Uncacheable)
	}
	c.Insert(keyN(maxIndex), megaflowFor(cls, keyN(maxIndex), flow.MaskAll()))
	if c.Uncacheable != 1 {
		t.Fatalf("uncacheable = %d, want 1", c.Uncacheable)
	}
	// Invalidation recycles an index, making room again.
	victim := keyN(3)
	ve, _ := cls.Lookup(victim)
	c.Invalidate(ve)
	c.Insert(keyN(maxIndex), megaflowFor(cls, keyN(maxIndex+1), flow.MaskAll()))
	if c.Uncacheable != 1 {
		t.Fatalf("recycled index not reused: uncacheable = %d", c.Uncacheable)
	}
}
