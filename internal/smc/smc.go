// Package smc implements the signature match cache, the second-level cache
// of the OVS userspace datapath (dpif-netdev's "SMC", added in OVS 2.10 and
// enabled with smc-enable=true).
//
// Where the EMC stores the full flow key per entry (and therefore thrashes
// beyond ~8k flows), the SMC stores only a 16-bit signature of the key's
// hash plus a 16-bit index into an indirection table of installed megaflows.
// That makes each entry 4 bytes, so the same cache budget covers two orders
// of magnitude more flows — at the price of an extra indirection and a
// mandatory verification of the candidate megaflow against the packet's key
// (two signatures can collide, and a signature can go stale after its
// megaflow was removed). A hit therefore costs more than an EMC hit but far
// less than a multi-subtable dpcls probe, which is exactly the 10k-100k
// flow-count regime the cache-hierarchy sweep experiment explores.
//
// Layout follows OVS: 4-way set-associative buckets of (sig, index) pairs,
// an index->*dpcls.Entry table capped at 2^16 entries (megaflows beyond
// that are simply not SMC-cacheable, as in OVS where only the low 16 bits
// of the cmap position are stored), and invalidation by clearing the
// indirection slot so stale bucket entries miss on verification.
package smc

import (
	"ovsxdp/internal/dpcls"
	"ovsxdp/internal/flow"
)

// Ways is the set associativity of a bucket (SMC_ENTRY_PER_BUCKET).
const Ways = 4

// DefaultEntries matches OVS's SMC_ENTRIES (1 << 20): 4 bytes per entry,
// ~4 MB per PMD, room for a million signatures.
const DefaultEntries = 1 << 20

// maxIndex bounds the indirection table: indices are 16-bit, and the top
// value is reserved as the empty marker.
const maxIndex = 1<<16 - 1

// emptyIdx marks a never-written bucket way.
const emptyIdx uint16 = 0xffff

// bucket is one 4-way set: parallel signature and index arrays, 16 bytes.
type bucket struct {
	sig [Ways]uint16
	idx [Ways]uint16
}

// Cache is a fixed-size signature match cache resolving flow keys to
// installed megaflows. Like the EMC it is per-PMD and lockless.
type Cache struct {
	buckets []bucket
	mask    uint32
	basis   uint32

	// flows is the index->megaflow indirection table; index[e] is its
	// inverse. freed recycles indices of removed megaflows — safe because
	// every lookup verifies the candidate against the packet's key, so a
	// stale signature resolving to a recycled index either matches the new
	// megaflow legitimately or misses.
	flows []*dpcls.Entry
	index map[*dpcls.Entry]uint16
	freed []uint16

	count int // occupied bucket ways (approximate occupancy; see Len)

	// Stats.
	Hits      uint64
	Misses    uint64
	Inserts   uint64
	Evictions uint64
	// StaleSkips counts probed ways whose signature matched but whose
	// megaflow was gone or failed verification — the cost of storing
	// signatures instead of keys.
	StaleSkips uint64
	// Uncacheable counts inserts refused because the indirection table was
	// at its 16-bit capacity.
	Uncacheable uint64
}

// New returns a cache with the given number of entries, rounded up to a
// power of two, at least Ways.
func New(entries int, hashBasis uint32) *Cache {
	if entries < Ways {
		entries = Ways
	}
	n := 1
	for n < entries/Ways {
		n <<= 1
	}
	c := &Cache{
		buckets: make([]bucket, n),
		mask:    uint32(n - 1),
		basis:   hashBasis,
		index:   make(map[*dpcls.Entry]uint16),
	}
	c.clearBuckets()
	return c
}

// clearBuckets marks every way empty (index 0 is a valid megaflow index, so
// the empty marker must be written explicitly).
func (c *Cache) clearBuckets() {
	for i := range c.buckets {
		for w := 0; w < Ways; w++ {
			c.buckets[i].idx[w] = emptyIdx
		}
	}
}

// Lookup resolves key to a cached megaflow. The signature is the upper 16
// bits of the key's hash; a signature match is only returned after the
// candidate megaflow verifies against the key (key masked by the megaflow's
// mask equals its masked key), so a collision or stale index can never
// mis-deliver a packet.
func (c *Cache) Lookup(key flow.Key) (*dpcls.Entry, bool) {
	h := key.Hash(c.basis)
	b := &c.buckets[h&c.mask]
	sig := uint16(h >> 16)
	for w := 0; w < Ways; w++ {
		if b.idx[w] == emptyIdx || b.sig[w] != sig {
			continue
		}
		e := c.flows[b.idx[w]]
		if e == nil {
			c.StaleSkips++
			continue
		}
		if key.Apply(e.Mask) != e.MaskedKey {
			c.StaleSkips++
			continue
		}
		c.Hits++
		e.Hits++
		return e, true
	}
	c.Misses++
	return nil, false
}

// Insert caches the (signature -> megaflow index) mapping for key. The
// victim way on a full bucket comes from the key's own hash bits, the same
// pseudo-random replacement the EMC uses. Megaflows beyond the 16-bit index
// space are not cacheable and are skipped.
func (c *Cache) Insert(key flow.Key, e *dpcls.Entry) {
	idx, ok := c.register(e)
	if !ok {
		c.Uncacheable++
		return
	}
	h := key.Hash(c.basis)
	b := &c.buckets[h&c.mask]
	sig := uint16(h >> 16)
	c.Inserts++
	// Same signature: update the index in place.
	for w := 0; w < Ways; w++ {
		if b.idx[w] != emptyIdx && b.sig[w] == sig {
			b.idx[w] = idx
			return
		}
	}
	// Free or stale way.
	for w := 0; w < Ways; w++ {
		if b.idx[w] == emptyIdx {
			b.sig[w] = sig
			b.idx[w] = idx
			c.count++
			return
		}
		if c.flows[b.idx[w]] == nil {
			b.sig[w] = sig
			b.idx[w] = idx
			return
		}
	}
	victim := (h >> 16) % Ways
	b.sig[victim] = sig
	b.idx[victim] = idx
	c.Evictions++
}

// register returns the indirection-table index for e, allocating one if
// needed. It reports false when the 16-bit index space is exhausted.
func (c *Cache) register(e *dpcls.Entry) (uint16, bool) {
	if idx, ok := c.index[e]; ok {
		return idx, true
	}
	if n := len(c.freed); n > 0 {
		idx := c.freed[n-1]
		c.freed = c.freed[:n-1]
		c.flows[idx] = e
		c.index[e] = idx
		return idx, true
	}
	if len(c.flows) >= maxIndex {
		return 0, false
	}
	idx := uint16(len(c.flows))
	c.flows = append(c.flows, e)
	c.index[e] = idx
	return idx, true
}

// Invalidate unlinks a removed megaflow from the indirection table (megaflow
// delete, revalidator sweep). Bucket ways still carrying its signature are
// left in place and skipped as stale on their next probe; the index is
// recycled for future megaflows.
func (c *Cache) Invalidate(e *dpcls.Entry) {
	idx, ok := c.index[e]
	if !ok {
		return
	}
	c.flows[idx] = nil
	delete(c.index, e)
	c.freed = append(c.freed, idx)
}

// Flush drops every cached signature and the whole indirection table.
func (c *Cache) Flush() {
	c.clearBuckets()
	c.flows = c.flows[:0]
	c.index = make(map[*dpcls.Entry]uint16)
	c.freed = c.freed[:0]
	c.count = 0
}

// Len returns the number of occupied bucket ways. It is O(1) and feeds the
// same cold-flow cache-pressure heuristic the EMC occupancy does. The count
// is an upper bound on live signatures: invalidation leaves stale ways in
// place (they are reclaimed by later inserts), exactly as the real SMC's
// occupancy only shrinks by overwrite.
func (c *Cache) Len() int { return c.count }

// Capacity returns the total number of signature slots.
func (c *Cache) Capacity() int { return len(c.buckets) * Ways }

// FlowCount returns the number of megaflows registered in the indirection
// table (diagnostics).
func (c *Cache) FlowCount() int { return len(c.index) }

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (c *Cache) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}
