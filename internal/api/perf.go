package api

import (
	"fmt"
	"strings"

	"ovsxdp/internal/perf"
	"ovsxdp/internal/sim"
)

// StageCycles is one datapath stage's row in a thread's perf view: the
// virtual cycles charged, their share of the thread's total, and the cost
// amortized over processed packets.
type StageCycles struct {
	Stage     string  `json:"stage"`
	Cycles    int64   `json:"cycles"`
	Pct       float64 `json:"pct"`
	PerPacket float64 `json:"per_packet"`
}

// UpcallLatencyView summarizes a thread's upcall handling latency in
// microseconds of virtual time.
type UpcallLatencyView struct {
	Count int     `json:"count"`
	P50us float64 `json:"p50_us"`
	P90us float64 `json:"p90_us"`
	P99us float64 `json:"p99_us"`
}

// ThreadPerfView is one packet-processing thread's counters — a PMD on the
// userspace datapath, the softirq context on the kernel paths. Optional
// blocks (upcall queue, tx contention, conntrack pressure, offload) carry
// the same appears-once-used rule the text table has always applied, so
// their presence in JSON mirrors their presence in the rendered output.
type ThreadPerfView struct {
	Name       string  `json:"name"`
	Iterations uint64  `json:"iterations"`
	Packets    uint64  `json:"packets"`
	AvgBatch   float64 `json:"avg_batch"`

	EMCHits      uint64 `json:"emc_hits"`
	SMCHits      uint64 `json:"smc_hits"`
	MegaflowHits uint64 `json:"megaflow_hits"`
	Upcalls      uint64 `json:"upcalls"`

	UpcallQueuePeak  uint64 `json:"upcall_queue_peak,omitempty"`
	UpcallQueueDrops uint64 `json:"upcall_queue_drops,omitempty"`
	TxContended      uint64 `json:"tx_contended,omitempty"`
	TxLockCycles     int64  `json:"tx_lock_cycles,omitempty"`
	CtEvictions      uint64 `json:"ct_evictions,omitempty"`
	OffloadHits      uint64 `json:"offload_hits,omitempty"`

	Stages        []StageCycles      `json:"stages"`
	UpcallLatency *UpcallLatencyView `json:"upcall_latency,omitempty"`
}

// PerfView is the typed view behind `ovsctl pmd-perf-show` and the
// daemon's GET /v1/pmd/perf: one block per thread, fully materialized at
// construction so it never aliases live counter state.
type PerfView struct {
	Threads []ThreadPerfView `json:"threads"`
}

// NewPerfView snapshots the per-thread counter blocks into a view. Stage
// rows carry percentages and per-packet costs precomputed with the same
// arithmetic the text table always used; the offload stage is elided while
// hw-offload has never fired, keeping views (and their renderings) for
// offload-free runs unchanged.
func NewPerfView(threads []perf.ThreadStats) PerfView {
	v := PerfView{}
	for _, t := range threads {
		s := t.Stats
		tv := ThreadPerfView{
			Name:             t.Name,
			Iterations:       s.Iterations,
			Packets:          s.Packets,
			AvgBatch:         s.BatchMean(),
			EMCHits:          s.EMCHits,
			SMCHits:          s.SMCHits,
			MegaflowHits:     s.MegaflowHits,
			Upcalls:          s.Upcalls,
			UpcallQueuePeak:  s.UpcallQueuePeak,
			UpcallQueueDrops: s.UpcallQueueDrops,
			TxContended:      s.TxContended,
			TxLockCycles:     int64(s.TxLockCycles),
			CtEvictions:      s.CtEvictions,
			OffloadHits:      s.OffloadHits,
		}
		total := s.TotalCycles()
		for st := perf.StageRx; st < perf.NumStages; st++ {
			if st == perf.StageOffload && s.Cycles[st] == 0 && s.OffloadHits == 0 {
				continue
			}
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(s.Cycles[st]) / float64(total)
			}
			tv.Stages = append(tv.Stages, StageCycles{
				Stage:     st.String(),
				Cycles:    int64(s.Cycles[st]),
				Pct:       pct,
				PerPacket: s.CyclesPerPacket(st),
			})
		}
		if n := s.UpcallCount(); n > 0 {
			lat := s.UpcallLatency()
			us := float64(sim.Microsecond)
			tv.UpcallLatency = &UpcallLatencyView{
				Count: n, P50us: lat.P50 / us, P90us: lat.P90 / us, P99us: lat.P99 / us,
			}
		}
		v.Threads = append(v.Threads, tv)
	}
	return v
}

// FormatTable renders the `ovs-appctl dpif-netdev/pmd-perf-show` analog:
// one block per thread with per-stage cycles, their share of total cycles,
// amortized cycles per packet, the packets-per-batch mean, and the upcall
// latency percentiles.
func (v PerfView) FormatTable() string {
	var b strings.Builder
	for _, t := range v.Threads {
		fmt.Fprintf(&b, "%s:\n", t.Name)
		fmt.Fprintf(&b, "  iterations: %d  packets: %d  avg-batch: %.2f pkts\n",
			t.Iterations, t.Packets, t.AvgBatch)
		fmt.Fprintf(&b, "  hits: emc:%d smc:%d megaflow:%d upcall:%d\n",
			t.EMCHits, t.SMCHits, t.MegaflowHits, t.Upcalls)
		if t.UpcallQueueDrops > 0 || t.UpcallQueuePeak > 0 {
			fmt.Fprintf(&b, "  upcall-queue: peak:%d drops:%d\n",
				t.UpcallQueuePeak, t.UpcallQueueDrops)
		}
		if t.TxContended > 0 {
			fmt.Fprintf(&b, "  tx-xps: contended-pkts:%d lock-cycles:%d\n",
				t.TxContended, t.TxLockCycles)
		}
		if t.CtEvictions > 0 {
			fmt.Fprintf(&b, "  conntrack: pressure-evictions:%d\n", t.CtEvictions)
		}
		if t.OffloadHits > 0 {
			fmt.Fprintf(&b, "  offload: hw-hits:%d\n", t.OffloadHits)
		}
		for _, st := range t.Stages {
			fmt.Fprintf(&b, "  %-8s %12d cycles  %5.1f%%  %8.1f/pkt\n",
				st.Stage, st.Cycles, st.Pct, st.PerPacket)
		}
		if lat := t.UpcallLatency; lat != nil {
			fmt.Fprintf(&b, "  upcall latency: P50=%.1fus P90=%.1fus P99=%.1fus\n",
				lat.P50us, lat.P90us, lat.P99us)
		}
	}
	if b.Len() == 0 {
		return "no packet-processing threads\n"
	}
	return b.String()
}
