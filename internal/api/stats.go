package api

import (
	"fmt"
	"strings"

	"ovsxdp/internal/dpif"
	"ovsxdp/internal/perf"
)

// CacheHierarchy sums the per-thread resolution counters: how many packets
// each caching level resolved. Percentages are derived at render time so
// JSON consumers get exact integers.
type CacheHierarchy struct {
	Packets      uint64 `json:"packets"`
	EMCHits      uint64 `json:"emc_hits"`
	SMCHits      uint64 `json:"smc_hits"`
	MegaflowHits uint64 `json:"megaflow_hits"`
	Upcalls      uint64 `json:"upcalls"`
}

// OffloadStatsView is the hardware flow-offload block of a stats view. Its
// conservation ledger (Installs == Evictions + Uninstalls + Live) holds at
// every snapshot.
type OffloadStatsView struct {
	Hits       uint64 `json:"hits"`
	Installs   uint64 `json:"installs"`
	Evictions  uint64 `json:"evictions"`
	Uninstalls uint64 `json:"uninstalls"`
	Refused    uint64 `json:"refused"`
	Readbacks  uint64 `json:"readbacks"`
	Live       int    `json:"live"`
}

// ZoneConns is one zone's live-connection count.
type ZoneConns struct {
	Zone  uint16 `json:"zone"`
	Conns int    `json:"conns"`
}

// CtStatsView is the conntrack block of a stats view. Its conservation
// ledger (Created == Conns + Expired + EarlyDrops + Evictions) holds at
// every snapshot.
type CtStatsView struct {
	Conns        int         `json:"conns"`
	Created      uint64      `json:"created"`
	Expired      uint64      `json:"expired"`
	EarlyDrops   uint64      `json:"early_drops"`
	Evictions    uint64      `json:"evictions"`
	TableFull    uint64      `json:"table_full"`
	NATExhausted uint64      `json:"nat_exhausted"`
	PerZone      []ZoneConns `json:"per_zone,omitempty"`
}

// StatsView is the typed view of one datapath's unified counters — what
// `ovsctl dpctl-stats` prints and GET /v1/datapaths/{name}/stats returns.
// It owns every byte it holds: NewStatsView deep-copies the provider's
// Stats (including the ConnsPerZone slice), so mutating a view never
// reaches provider state.
type StatsView struct {
	Type             string            `json:"type"`
	Hits             uint64            `json:"hits"`
	Missed           uint64            `json:"missed"`
	Lost             uint64            `json:"lost"`
	SMCHits          uint64            `json:"smc_hits"`
	Processed        uint64            `json:"processed"`
	UpcallQueueDrops uint64            `json:"upcall_queue_drops"`
	MalformedDrops   uint64            `json:"malformed_drops"`
	Flows            int               `json:"flows"`
	Ports            int               `json:"ports"`
	Cache            CacheHierarchy    `json:"cache"`
	Offload          *OffloadStatsView `json:"offload,omitempty"`
	Conntrack        *CtStatsView      `json:"conntrack,omitempty"`
}

// NewStatsView builds the view from a provider's counters. The offload and
// conntrack blocks appear only once their subsystems have seen use,
// mirroring the conditional sections of `ovs-dpctl show` output. threads
// feeds the cache-hierarchy split; ports is the attached-port count.
func NewStatsView(dpType string, st dpif.Stats, threads []perf.ThreadStats, ports int) StatsView {
	v := StatsView{
		Type:             dpType,
		Hits:             st.Hits,
		Missed:           st.Missed,
		Lost:             st.Lost,
		SMCHits:          st.SMCHits,
		Processed:        st.Processed,
		UpcallQueueDrops: st.UpcallQueueDrops,
		MalformedDrops:   st.MalformedDrops,
		Flows:            st.Flows,
		Ports:            ports,
	}
	for _, th := range threads {
		v.Cache.EMCHits += th.EMCHits
		v.Cache.SMCHits += th.SMCHits
		v.Cache.MegaflowHits += th.MegaflowHits
		v.Cache.Upcalls += th.Upcalls
		v.Cache.Packets += th.Packets
	}
	if st.OffloadInstalls > 0 || st.OffloadHits > 0 {
		v.Offload = &OffloadStatsView{
			Hits:       st.OffloadHits,
			Installs:   st.OffloadInstalls,
			Evictions:  st.OffloadEvictions,
			Uninstalls: st.OffloadUninstalls,
			Refused:    st.OffloadRefused,
			Readbacks:  st.OffloadReadbacks,
			Live:       st.OffloadLive,
		}
	}
	if st.CtCreated > 0 || st.CtConns > 0 {
		ct := &CtStatsView{
			Conns:        st.CtConns,
			Created:      st.CtCreated,
			Expired:      st.CtExpired,
			EarlyDrops:   st.CtEarlyDrops,
			Evictions:    st.CtEvictions,
			TableFull:    st.CtTableFull,
			NATExhausted: st.CtNATExhausted,
		}
		// Copy, never alias: the provider's slice is the one place a Stats
		// value reaches shared state (see dpif.Stats.Clone).
		for _, z := range st.ConnsPerZone {
			ct.PerZone = append(ct.PerZone, ZoneConns{Zone: z.Zone, Conns: z.Conns})
		}
		v.Conntrack = ct
	}
	return v
}

// FormatDpctl renders the `ovs-dpctl show` analog exactly as ovsctl has
// always printed it, under the given "type@bridge" label.
func (v StatsView) FormatDpctl(label string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", label)
	fmt.Fprintf(&b, "  lookups: hit:%d missed:%d lost:%d\n", v.Hits, v.Missed, v.Lost)
	fmt.Fprintf(&b, "  slow path: processed:%d queue-drops:%d malformed:%d\n",
		v.Processed, v.UpcallQueueDrops, v.MalformedDrops)
	if v.Cache.Packets > 0 {
		pct := func(n uint64) float64 { return 100 * float64(n) / float64(v.Cache.Packets) }
		fmt.Fprintf(&b, "  cache hierarchy: emc:%.1f%% smc:%.1f%% megaflow:%.1f%% upcall:%.1f%%\n",
			pct(v.Cache.EMCHits), pct(v.Cache.SMCHits), pct(v.Cache.MegaflowHits), pct(v.Cache.Upcalls))
	}
	fmt.Fprintf(&b, "  flows: %d\n", v.Flows)
	if o := v.Offload; o != nil {
		fmt.Fprintf(&b, "  offload: hw-hits:%d installed:%d evicted:%d uninstalled:%d live:%d refused:%d readbacks:%d\n",
			o.Hits, o.Installs, o.Evictions, o.Uninstalls, o.Live, o.Refused, o.Readbacks)
	}
	if ct := v.Conntrack; ct != nil {
		fmt.Fprintf(&b, "  conntrack: conns:%d created:%d expired:%d early-drop:%d evicted:%d table-full:%d nat-exhausted:%d\n",
			ct.Conns, ct.Created, ct.Expired, ct.EarlyDrops,
			ct.Evictions, ct.TableFull, ct.NATExhausted)
		for _, z := range ct.PerZone {
			fmt.Fprintf(&b, "    zone %d: %d conns\n", z.Zone, z.Conns)
		}
	}
	fmt.Fprintf(&b, "  ports: %d\n", v.Ports)
	return b.String()
}
