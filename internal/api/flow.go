package api

import (
	"sort"

	"ovsxdp/internal/dpif"
)

// FlowView is one installed megaflow as reported by the flow dump: the
// canonical text rendering (`megaflow{bits=.. hits=.. ..}`) plus the fields
// a machine reader would otherwise have to re-parse out of it.
type FlowView struct {
	Text     string `json:"text"`
	MaskBits int    `json:"mask_bits"`
	Hits     uint64 `json:"hits"`
}

// FlowPage is one page of a flow dump: the daemon's GET /v1/flows response
// body. Total is the full dump size so clients can page without a count
// endpoint.
type FlowPage struct {
	Total  int        `json:"total"`
	Offset int        `json:"offset"`
	Flows  []FlowView `json:"flows"`
}

// NewFlowViews materializes a flow dump into views, sorted by their text
// rendering — the same order `ovsctl dump-flows` has always printed. The
// dump entries are copied out immediately, so the returned views stay valid
// after the classifier churns.
func NewFlowViews(flows []dpif.Flow) []FlowView {
	out := make([]FlowView, 0, len(flows))
	for _, f := range flows {
		out = append(out, FlowView{
			Text:     f.Entry.String(),
			MaskBits: f.Entry.Mask.Bits(),
			Hits:     f.Entry.Hits,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Text < out[j].Text })
	return out
}

// PageFlows slices a sorted view list into one page. offset past the end
// yields an empty page; limit <= 0 means "the rest".
func PageFlows(views []FlowView, offset, limit int) FlowPage {
	p := FlowPage{Total: len(views), Offset: offset}
	if offset < 0 {
		offset = 0
		p.Offset = 0
	}
	if offset >= len(views) {
		p.Flows = []FlowView{}
		return p
	}
	rest := views[offset:]
	if limit > 0 && limit < len(rest) {
		rest = rest[:limit]
	}
	p.Flows = append([]FlowView{}, rest...)
	return p
}
