package api

import (
	"fmt"
	"sort"
	"strings"
)

// ConfigView is the effective other_config overlay: what `ovsctl get`
// prints and what GET/PUT /v1/config exchange. NewConfigView copies the
// map it is given, so handing a view to an HTTP encoder (or mutating one
// decoded from a request) never reaches daemon state.
type ConfigView struct {
	Values map[string]string `json:"values"`
}

// NewConfigView deep-copies an other_config map into a view.
func NewConfigView(kv map[string]string) ConfigView {
	v := ConfigView{Values: make(map[string]string, len(kv))}
	for k, val := range kv {
		v.Values[k] = val
	}
	return v
}

// Format renders the sorted "key=value" lines of `ovsctl get` — the same
// shape dpif.FormatConfig produces, kept here so every config surface
// renders through the view layer.
func (v ConfigView) Format() string {
	keys := make([]string, 0, len(v.Values))
	for k := range v.Values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s\n", k, v.Values[k])
	}
	return b.String()
}
