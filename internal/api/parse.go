package api

import "fmt"

// ParseConfigArg splits one ovs-vsctl-style "key=value" argument. The error
// text is shared verbatim by every surface that accepts config arguments
// (`ovsctl -o`/`set`, `ovsbench -o`, and the daemon's PUT /v1/config), so a
// malformed pair reads identically everywhere.
func ParseConfigArg(s string) (key, value string, err error) {
	for i := 0; i < len(s); i++ {
		if s[i] == '=' {
			if i == 0 {
				break
			}
			return s[:i], s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("expected key=value, got %q", s)
}

// ParseConfigArgs collects "key=value" arguments into an other_config map.
// Later duplicates win, matching flag repetition semantics. Validation
// against the key schema is the datapath's job (dpif.CheckConfig /
// Dpif.SetConfig), so unknown-key errors also surface identically on every
// path that applies the returned map.
func ParseConfigArgs(args []string) (map[string]string, error) {
	kv := make(map[string]string, len(args))
	for _, a := range args {
		k, v, err := ParseConfigArg(a)
		if err != nil {
			return nil, err
		}
		kv[k] = v
	}
	return kv, nil
}
