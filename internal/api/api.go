// Package api is the typed, versioned view layer of the control plane:
// every surface that reports datapath state — the ovs-svc HTTP daemon, the
// ovsctl/ovsbench CLIs, and the committed benchmark JSON artifacts —
// renders from the DTOs defined here instead of hand-formatting the
// underlying structs.
//
// Before this package existed, `ovsctl dpctl-stats`, `pmd-perf-show`, and
// the per-scenario bench emitters each carried their own formatter over
// overlapping counters, so adding a counter meant touching three diverging
// render paths. Now the flow is one-way:
//
//	dpif.Stats / perf.ThreadStats / dpif.Flow  --construct-->  view DTO
//	view DTO  --render-->  text (CLI) or JSON (daemon, bench artifacts)
//
// Construction deep-copies everything it takes from a provider (see
// NewStatsView), so a caller that mutates a view — an HTTP client decoding
// into it, a test poking fields — can never alias live datapath state.
//
// Versioning: every machine-readable artifact carries an Envelope header
// naming its schema as "ovsxdp-<name>/v<version>". The HTTP control plane
// itself is schema SchemaAPI.
package api

import "fmt"

// SchemaAPI is the schema identifier carried by every ovs-svc HTTP
// response body.
const SchemaAPI = "ovsxdp-api/v1"

// Envelope is the versioned header every machine-readable artifact starts
// with: the committed BENCH_*.json files and every ovs-svc response embed
// it. Profile is the measurement profile for bench artifacts ("full",
// "quick") and empty — omitted — for API responses.
type Envelope struct {
	Schema  string `json:"schema"`
	Profile string `json:"profile,omitempty"`
}

// NewEnvelope builds the header for schema "ovsxdp-<name>/v<version>".
func NewEnvelope(name string, version int, profile string) Envelope {
	return Envelope{Schema: fmt.Sprintf("ovsxdp-%s/v%d", name, version), Profile: profile}
}
