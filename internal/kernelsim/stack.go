// Package kernelsim models the Linux kernel side of the paper: NAPI
// softirq processing, the in-kernel OVS datapath (the architecture the
// paper migrates away from), its eBPF-at-tc variant (Figure 2's third bar),
// and the kernel cost helpers the socket-level simulations charge.
//
// CPU time spent here lands in the Softirq and System categories, which is
// what makes Table 4's per-category comparison possible.
package kernelsim

import (
	"ovsxdp/internal/costmodel"
	"ovsxdp/internal/packet"
	"ovsxdp/internal/sim"
)

// NAPIBudget is the packet budget per softirq poll iteration, as in Linux.
const NAPIBudget = 64

// PollSource abstracts the queues a NAPI actor can drain: a NIC hardware
// queue or a virtual device queue.
type PollSource interface {
	// PopPackets removes up to max packets.
	PopPackets(max int) []*packet.Packet
	// ArmWake requests a wakeup on the next packet arrival.
	ArmWake()
	// SetWake installs the wakeup callback.
	SetWake(func())
}

// NICQueueSource adapts a nicsim queue to PollSource.
type NICQueueSource struct {
	Q interface {
		Pop(max int) []*packet.Packet
		ArmInterrupt()
		SetInterrupt(func())
	}
}

// PopPackets implements PollSource.
func (s NICQueueSource) PopPackets(max int) []*packet.Packet { return s.Q.Pop(max) }

// ArmWake implements PollSource.
func (s NICQueueSource) ArmWake() { s.Q.ArmInterrupt() }

// SetWake implements PollSource.
func (s NICQueueSource) SetWake(fn func()) { s.Q.SetInterrupt(fn) }

// VQueueSource adapts a vdev queue to PollSource.
type VQueueSource struct {
	Q interface {
		Pop(max int) []*packet.Packet
		ArmWakeup()
		SetWakeup(func())
	}
}

// PopPackets implements PollSource.
func (s VQueueSource) PopPackets(max int) []*packet.Packet { return s.Q.Pop(max) }

// ArmWake implements PollSource.
func (s VQueueSource) ArmWake() { s.Q.ArmWakeup() }

// SetWake implements PollSource.
func (s VQueueSource) SetWake(fn func()) { s.Q.SetWakeup(fn) }

// NAPIActor drives one queue in softirq context: woken by an interrupt, it
// polls up to NAPIBudget packets per iteration, processes them via the
// handler, and re-arms the interrupt when the queue runs dry — the
// adaptive interrupt/poll switching Section 5.3 credits for the kernel's
// latency behaviour.
type NAPIActor struct {
	Eng *sim.Engine
	CPU *sim.CPU
	Src PollSource
	// Handler processes a batch; all costs are charged to CPU by the
	// handler itself.
	Handler func(cpu *sim.CPU, pkts []*packet.Packet)
	// Category is the accounting bucket (Softirq on hosts, Guest inside
	// VMs).
	Category sim.Category

	running bool
	stopped bool
	// pollTimer rearms poll without a per-iteration closure.
	pollTimer *sim.Timer
	// Polls and Packets count activity.
	Polls   uint64
	Packets uint64
}

// Start installs the wakeup and arms it.
func (a *NAPIActor) Start() {
	if a.Category == 0 {
		a.Category = sim.Softirq
	}
	if a.pollTimer == nil {
		a.pollTimer = a.Eng.NewTimer(a.poll)
	}
	a.Src.SetWake(a.wake)
	a.Src.ArmWake()
}

// Stop parks the actor: the in-flight poll finishes its batch and no
// further polls or wakeups run until Resume. Arrivals keep accumulating
// (and overflowing) in the source queue — the module-unloaded window of a
// kernel datapath reload.
func (a *NAPIActor) Stop() { a.stopped = true }

// Resume restarts polling after a Stop, draining whatever backlog built up
// and re-arming the interrupt.
func (a *NAPIActor) Resume() {
	a.stopped = false
	a.Src.ArmWake()
	a.wake()
}

func (a *NAPIActor) wake() {
	if a.running || a.stopped {
		return
	}
	a.running = true
	a.pollTimer.Schedule(0)
}

func (a *NAPIActor) poll() {
	if a.stopped {
		// Parked: leave arrivals queued and do not re-arm; Resume picks
		// the backlog back up.
		a.running = false
		return
	}
	pkts := a.Src.PopPackets(NAPIBudget)
	if len(pkts) == 0 {
		a.running = false
		a.Src.ArmWake()
		return
	}
	a.Polls++
	a.Packets += uint64(len(pkts))
	a.Handler(a.CPU, pkts)
	// Continue polling once the CPU has finished this batch's work.
	next := a.CPU.FreeAt()
	if now := a.Eng.Now(); next < now {
		next = now
	}
	a.pollTimer.ScheduleAt(next)
}

// --- Socket-level cost helpers -------------------------------------------------

// SocketCosts bundles the per-operation kernel costs a TCP/UDP endpoint
// pays; the transport simulations charge these against host or guest CPUs.
type SocketCosts struct{}

// SendCost returns the kernel cost of send(2) of n bytes: syscall entry,
// transmit-side stack traversal, and the user-to-kernel copy.
func (SocketCosts) SendCost(n int) sim.Time {
	return costmodel.SyscallBase + costmodel.KernelStackTxPerPacket + costmodel.CopyCost(n)
}

// RecvCost returns the kernel cost of receiving n bytes into userspace:
// receive-side stack traversal plus the kernel-to-user copy (the syscall
// is usually amortized by blocking reads).
func (SocketCosts) RecvCost(n int) sim.Time {
	return costmodel.KernelStackRxPerPacket + costmodel.CopyCost(n)
}

// SoftirqRxCost returns the softirq-side cost of receiving one frame from
// a driver into the stack: skb allocation plus protocol processing.
func (SocketCosts) SoftirqRxCost(n int) sim.Time {
	return costmodel.SkbAlloc + costmodel.KernelDriverRx + costmodel.KernelStackRxPerPacket
}
