package kernelsim

import (
	"testing"

	"ovsxdp/internal/costmodel"
	"ovsxdp/internal/flow"
	"ovsxdp/internal/nicsim"
	"ovsxdp/internal/ofproto"
	"ovsxdp/internal/packet"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/sim"
	"ovsxdp/internal/vdev"
)

var (
	macA = hdr.MAC{0x02, 0, 0, 0, 0, 0x0a}
	macB = hdr.MAC{0x02, 0, 0, 0, 0, 0x0b}
)

func udpPkt(sport uint16) *packet.Packet {
	p := packet.New(hdr.NewBuilder().Eth(macA, macB).
		IPv4H(hdr.MakeIP4(10, 0, 0, 1), hdr.MakeIP4(10, 0, 0, 2), 64).
		UDPH(sport, 2000).PayloadLen(18).PadTo(64).Build())
	p.InPort = 1
	return p
}

func forwardPipeline() *ofproto.Pipeline {
	pl := ofproto.NewPipeline()
	m := flow.NewMaskBuilder().InPort().Build()
	pl.AddRule(&ofproto.Rule{TableID: 0, Priority: 1,
		Match:   ofproto.NewMatch(flow.Fields{InPort: 1}, m),
		Actions: []ofproto.Action{ofproto.Output(2)}})
	return pl
}

func TestDatapathMissUpcallThenHit(t *testing.T) {
	eng := sim.NewEngine(1)
	cpu := eng.NewCPU("softirq0")
	dp := NewDatapath(eng, FlavorModule, forwardPipeline())
	var out []*packet.Packet
	dp.Outputs[2] = func(p *packet.Packet) { out = append(out, p) }

	dp.Process(cpu, udpPkt(1))
	if dp.Misses != 1 || dp.Hits != 0 || dp.Upcalls != 1 {
		t.Fatalf("first packet: misses=%d hits=%d", dp.Misses, dp.Hits)
	}
	if len(out) != 1 {
		t.Fatal("packet not forwarded")
	}
	// Different flow, same decision path: megaflow wildcarding makes it
	// a hit (the kernel module supports megaflows).
	dp.Process(cpu, udpPkt(2))
	if dp.Hits != 1 || dp.Upcalls != 1 {
		t.Fatalf("second packet: hits=%d upcalls=%d", dp.Hits, dp.Upcalls)
	}
	if dp.FlowCount() != 1 {
		t.Fatalf("flows = %d", dp.FlowCount())
	}
	// Upcall cost must land in System, fast path in Softirq.
	if cpu.Busy(sim.System) < costmodel.UpcallCost {
		t.Fatal("upcall must charge system time")
	}
	if cpu.Busy(sim.Softirq) == 0 {
		t.Fatal("fast path must charge softirq time")
	}
}

func TestEBPFFlavorExactMatchOnly(t *testing.T) {
	eng := sim.NewEngine(1)
	cpu := eng.NewCPU("softirq0")
	dp := NewDatapath(eng, FlavorEBPF, forwardPipeline())
	dp.Outputs[2] = func(*packet.Packet) {}

	dp.Process(cpu, udpPkt(1))
	dp.Process(cpu, udpPkt(2)) // different 5-tuple
	if dp.Upcalls != 2 {
		t.Fatalf("eBPF flavor without megaflows must upcall per exact flow: %d", dp.Upcalls)
	}

	// The kernel-module flavor wildcards, so the same two packets cost
	// one upcall (checked in the previous test).
}

func TestEBPFFlavorSlowerThanModule(t *testing.T) {
	run := func(flavor Flavor) sim.Time {
		eng := sim.NewEngine(1)
		cpu := eng.NewCPU("softirq0")
		dp := NewDatapath(eng, flavor, forwardPipeline())
		dp.Outputs[2] = func(*packet.Packet) {}
		// Warm the flow table, then measure the fast path only.
		dp.Process(cpu, udpPkt(1))
		before := cpu.Busy(sim.Softirq)
		for i := 0; i < 100; i++ {
			dp.Process(cpu, udpPkt(1))
		}
		return cpu.Busy(sim.Softirq) - before
	}
	mod := run(FlavorModule)
	ebpf := run(FlavorEBPF)
	ratio := float64(ebpf) / float64(mod)
	// Figure 2: the sandbox makes eBPF 10-20% slower.
	if ratio < 1.08 || ratio > 1.25 {
		t.Fatalf("eBPF/module cost ratio = %.3f, want ~1.10-1.20", ratio)
	}
}

func TestDatapathDropOnNoRule(t *testing.T) {
	eng := sim.NewEngine(1)
	cpu := eng.NewCPU("softirq0")
	dp := NewDatapath(eng, FlavorModule, ofproto.NewPipeline())
	dp.Process(cpu, udpPkt(1))
	if dp.Drops != 1 {
		t.Fatalf("drops = %d", dp.Drops)
	}
}

func TestDatapathCTRecirculation(t *testing.T) {
	eng := sim.NewEngine(1)
	cpu := eng.NewCPU("softirq0")
	pl := ofproto.NewPipeline()
	mIn := flow.NewMaskBuilder().InPort().Build()
	mCt := flow.NewMaskBuilder().CtState(0xff).Build()
	pl.AddRule(&ofproto.Rule{TableID: 0, Priority: 1,
		Match:   ofproto.NewMatch(flow.Fields{InPort: 1}, mIn),
		Actions: []ofproto.Action{ofproto.CT(5, true, 10)}})
	pl.AddRule(&ofproto.Rule{TableID: 10, Priority: 1,
		Match:   ofproto.NewMatch(flow.Fields{CtState: 0x03}, mCt), // trk|new
		Actions: []ofproto.Action{ofproto.Output(2)}})
	dp := NewDatapath(eng, FlavorModule, pl)
	var out []*packet.Packet
	dp.Outputs[2] = func(p *packet.Packet) { out = append(out, p) }

	p := packet.New(hdr.NewBuilder().Eth(macA, macB).
		IPv4H(hdr.MakeIP4(10, 0, 0, 1), hdr.MakeIP4(10, 0, 0, 2), 64).
		TCPH(1000, 80, 1, 0, hdr.TCPSyn).PadTo(64).Build())
	p.InPort = 1
	dp.Process(cpu, p)
	if len(out) != 1 {
		t.Fatalf("ct+recirc did not forward: drops=%d", dp.Drops)
	}
	if out[0].CtState&packet.CtNew == 0 || out[0].CtZone != 5 {
		t.Fatalf("ct metadata = %s zone=%d", out[0].CtState, out[0].CtZone)
	}
	if dp.Ct.ZoneCount(5) != 1 {
		t.Fatal("connection not committed")
	}
	// Two datapath passes: two flows installed (pre- and post-recirc).
	if dp.FlowCount() != 2 {
		t.Fatalf("flows = %d, want 2", dp.FlowCount())
	}
}

func TestNAPIActorDrainsAndRearms(t *testing.T) {
	eng := sim.NewEngine(1)
	cpu := eng.NewCPU("softirq0")
	nic := nicsim.New(eng, nicsim.Config{Name: "eth0", Queues: 1})

	var handled int
	actor := &NAPIActor{
		Eng: eng, CPU: cpu, Src: NICQueueSource{Q: nic.Queue(0)},
		Handler: func(cpu *sim.CPU, pkts []*packet.Packet) {
			handled += len(pkts)
			cpu.Consume(sim.Softirq, sim.Time(len(pkts))*100)
		},
	}
	actor.Start()

	for i := 0; i < 150; i++ {
		nic.Receive(udpPkt(uint16(i)))
	}
	eng.Run()
	if handled != 150 {
		t.Fatalf("handled %d", handled)
	}
	if actor.Polls < 3 { // 150 packets / 64 budget
		t.Fatalf("polls = %d, want >= 3", actor.Polls)
	}

	// After going idle, a new packet wakes it again via the interrupt.
	nic.Receive(udpPkt(9999))
	eng.Run()
	if handled != 151 {
		t.Fatal("actor did not re-arm after idle")
	}
}

func TestNAPIActorOnVdevQueue(t *testing.T) {
	eng := sim.NewEngine(1)
	cpu := eng.NewCPU("softirq0")
	q := vdev.NewQueue("tap", 0)
	handled := 0
	actor := &NAPIActor{
		Eng: eng, CPU: cpu, Src: VQueueSource{Q: q},
		Handler: func(cpu *sim.CPU, pkts []*packet.Packet) { handled += len(pkts) },
	}
	actor.Start()
	q.Push(udpPkt(1))
	eng.Run()
	if handled != 1 {
		t.Fatalf("handled = %d", handled)
	}
}

func TestSocketCostsScaleWithSize(t *testing.T) {
	var sc SocketCosts
	if sc.SendCost(1500) <= sc.SendCost(64) {
		t.Fatal("send cost must grow with bytes")
	}
	if sc.RecvCost(64) <= 0 || sc.SoftirqRxCost(64) <= 0 {
		t.Fatal("costs must be positive")
	}
}

func TestContentionScalesKernelCost(t *testing.T) {
	perPkt := func(n int) sim.Time {
		eng := sim.NewEngine(1)
		cpu := eng.NewCPU("softirq0")
		dp := NewDatapath(eng, FlavorModule, forwardPipeline())
		dp.ActiveCPUs = func() int { return n }
		dp.Outputs[2] = func(*packet.Packet) {}
		dp.Process(cpu, udpPkt(1)) // warm
		before := cpu.Busy(sim.Softirq)
		dp.Process(cpu, udpPkt(1))
		return cpu.Busy(sim.Softirq) - before
	}
	one, twelve := perPkt(1), perPkt(12)
	ratio := float64(twelve) / float64(one)
	if ratio < 3.0 || ratio > 4.5 {
		t.Fatalf("12-CPU contention ratio = %.2f, want ~3.75", ratio)
	}
}

func TestDatapathHeaderActions(t *testing.T) {
	eng := sim.NewEngine(1)
	cpu := eng.NewCPU("softirq0")
	pl := ofproto.NewPipeline()
	mIn := flow.NewMaskBuilder().InPort().Build()
	pl.AddRule(&ofproto.Rule{TableID: 0, Priority: 1,
		Match: ofproto.NewMatch(flow.Fields{InPort: 1}, mIn),
		Actions: []ofproto.Action{
			ofproto.PushVLAN(100, 2),
			ofproto.SetEthDst(hdr.MAC{9, 9, 9, 9, 9, 9}),
			ofproto.SetEthSrc(hdr.MAC{8, 8, 8, 8, 8, 8}),
			ofproto.Output(2),
		}})
	dp := NewDatapath(eng, FlavorModule, pl)
	var out *packet.Packet
	dp.Outputs[2] = func(p *packet.Packet) { out = p }
	dp.Process(cpu, udpPkt(1))
	if out == nil {
		t.Fatal("packet not forwarded")
	}
	eth, err := hdr.ParseEthernet(out.Data)
	if err != nil {
		t.Fatal(err)
	}
	if !eth.HasVLAN || eth.VLANID != 100 {
		t.Fatalf("vlan not pushed: %+v", eth)
	}
	if eth.Dst != (hdr.MAC{9, 9, 9, 9, 9, 9}) || eth.Src != (hdr.MAC{8, 8, 8, 8, 8, 8}) {
		t.Fatalf("mac rewrite failed: %s %s", eth.Src, eth.Dst)
	}
}

func TestDatapathDecTTLAndPopVLAN(t *testing.T) {
	eng := sim.NewEngine(1)
	cpu := eng.NewCPU("softirq0")
	pl := ofproto.NewPipeline()
	mIn := flow.NewMaskBuilder().InPort().Build()
	pl.AddRule(&ofproto.Rule{TableID: 0, Priority: 1,
		Match: ofproto.NewMatch(flow.Fields{InPort: 1}, mIn),
		Actions: []ofproto.Action{
			ofproto.PopVLAN(), ofproto.DecTTL(), ofproto.Output(2)}})
	dp := NewDatapath(eng, FlavorModule, pl)
	var out *packet.Packet
	dp.Outputs[2] = func(p *packet.Packet) { out = p }

	frame := hdr.NewBuilder().Eth(macA, macB).VLAN(7, 0).
		IPv4H(hdr.MakeIP4(1, 1, 1, 1), hdr.MakeIP4(2, 2, 2, 2), 64).
		UDPH(1, 2).PayloadLen(8).Build()
	p := packet.New(frame)
	p.InPort = 1
	dp.Process(cpu, p)
	if out == nil {
		t.Fatal("not forwarded")
	}
	eth, _ := hdr.ParseEthernet(out.Data)
	if eth.HasVLAN {
		t.Fatal("vlan not popped")
	}
	ip, _ := hdr.ParseIPv4(out.Data[eth.HeaderLen:])
	if ip.TTL != 63 {
		t.Fatalf("ttl = %d, want 63", ip.TTL)
	}
	if !hdr.VerifyIPv4Checksum(out.Data[eth.HeaderLen:]) {
		t.Fatal("dec_ttl must fix the IP checksum")
	}
}

func TestDatapathMeterDrop(t *testing.T) {
	eng := sim.NewEngine(1)
	cpu := eng.NewCPU("softirq0")
	pl := ofproto.NewPipeline()
	pl.SetMeter(1, &ofproto.TokenBucket{RatePerSec: 10, Burst: 2, PerPacket: true})
	mIn := flow.NewMaskBuilder().InPort().Build()
	pl.AddRule(&ofproto.Rule{TableID: 0, Priority: 1,
		Match:   ofproto.NewMatch(flow.Fields{InPort: 1}, mIn),
		Actions: []ofproto.Action{ofproto.Meter(1), ofproto.Output(2)}})
	dp := NewDatapath(eng, FlavorModule, pl)
	forwarded := 0
	dp.Outputs[2] = func(*packet.Packet) { forwarded++ }
	for i := 0; i < 10; i++ {
		dp.Process(cpu, udpPkt(uint16(i)))
	}
	if forwarded != 2 {
		t.Fatalf("meter passed %d, want burst of 2", forwarded)
	}
	if dp.Drops != 8 {
		t.Fatalf("drops = %d", dp.Drops)
	}
}

func TestDatapathMissingOutputPortDrops(t *testing.T) {
	eng := sim.NewEngine(1)
	cpu := eng.NewCPU("softirq0")
	dp := NewDatapath(eng, FlavorModule, forwardPipeline()) // no Outputs[2]
	dp.Process(cpu, udpPkt(1))
	if dp.Drops != 1 {
		t.Fatalf("drops = %d", dp.Drops)
	}
}

func TestDatapathRecircDepthBound(t *testing.T) {
	// A ct rule whose continuation loops back into another ct: recursion
	// must terminate at the depth bound, not hang.
	eng := sim.NewEngine(1)
	cpu := eng.NewCPU("softirq0")
	pl := ofproto.NewPipeline()
	mIn := flow.NewMaskBuilder().InPort().Build()
	mAny := flow.MaskNone()
	pl.AddRule(&ofproto.Rule{TableID: 0, Priority: 1,
		Match:   ofproto.NewMatch(flow.Fields{InPort: 1}, mIn),
		Actions: []ofproto.Action{ofproto.CT(1, false, 10)}})
	pl.AddRule(&ofproto.Rule{TableID: 10, Priority: 1,
		Match:   ofproto.NewMatch(flow.Fields{}, mAny),
		Actions: []ofproto.Action{ofproto.CT(2, false, 10)}}) // loops to itself
	dp := NewDatapath(eng, FlavorEBPF, pl)
	p := packet.New(hdr.NewBuilder().Eth(macA, macB).
		IPv4H(hdr.MakeIP4(1, 1, 1, 1), hdr.MakeIP4(2, 2, 2, 2), 64).
		TCPH(1, 2, 0, 0, hdr.TCPSyn).PadTo(64).Build())
	p.InPort = 1
	dp.Process(cpu, p) // must return
	if dp.Drops != 1 {
		t.Fatalf("looping recirculation must drop, drops=%d", dp.Drops)
	}
}

func TestFlushFlowsForcesReUpcall(t *testing.T) {
	eng := sim.NewEngine(1)
	cpu := eng.NewCPU("softirq0")
	dp := NewDatapath(eng, FlavorModule, forwardPipeline())
	dp.Outputs[2] = func(*packet.Packet) {}
	dp.Process(cpu, udpPkt(1))
	dp.FlushFlows()
	dp.Process(cpu, udpPkt(1))
	if dp.Upcalls != 2 {
		t.Fatalf("upcalls = %d, want 2 after flush", dp.Upcalls)
	}
}

// TestMalformedDrops: frames the flow extractor rejects are counted in
// their own drop class — never upcalled, never mixed with policy drops.
func TestMalformedDrops(t *testing.T) {
	eng := sim.NewEngine(1)
	cpu := eng.NewCPU("softirq0")
	dp := NewDatapath(eng, FlavorModule, forwardPipeline())
	dp.Outputs[2] = func(*packet.Packet) {}

	// Truncated IPv4: the Ethernet header announces IPv4 but only 4 bytes
	// of L3 follow.
	bad := packet.New(make([]byte, hdr.EthernetSize+4))
	bad.Data[12], bad.Data[13] = 0x08, 0x00
	bad.InPort = 1
	dp.Process(cpu, bad)
	if dp.MalformedDrops != 1 || dp.Misses != 0 || dp.Upcalls != 0 || dp.Drops != 0 {
		t.Fatalf("malformed=%d misses=%d upcalls=%d drops=%d, want 1/0/0/0",
			dp.MalformedDrops, dp.Misses, dp.Upcalls, dp.Drops)
	}

	// A valid frame still takes the normal upcall path.
	dp.Process(cpu, udpPkt(1))
	if dp.Misses != 1 || dp.Upcalls != 1 || dp.MalformedDrops != 1 {
		t.Fatalf("valid frame after malformed: misses=%d upcalls=%d malformed=%d, want 1/1/1",
			dp.Misses, dp.Upcalls, dp.MalformedDrops)
	}
}
