package kernelsim

import (
	"ovsxdp/internal/conntrack"
	"ovsxdp/internal/costmodel"
	"ovsxdp/internal/dpcls"
	"ovsxdp/internal/faultinject"
	"ovsxdp/internal/flow"
	"ovsxdp/internal/ofproto"
	"ovsxdp/internal/packet"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/perf"
	"ovsxdp/internal/sim"
)

// Flavor selects the in-kernel datapath implementation.
type Flavor int

// Datapath flavors.
const (
	// FlavorModule is the traditional openvswitch.ko kernel module.
	FlavorModule Flavor = iota
	// FlavorEBPF is the datapath re-implemented as sandboxed eBPF at
	// the tc hook (Section 2.2.2): same structure, 10-20% slower due to
	// the bytecode sandbox, and — per the paper — no megaflow wildcard
	// support from the verifier's restrictions, which this model
	// represents as exact-match-only flow installation.
	FlavorEBPF
)

// String names the flavor.
func (f Flavor) String() string {
	if f == FlavorEBPF {
		return "ebpf-tc"
	}
	return "kernel-module"
}

// Datapath is the in-kernel OVS datapath: a megaflow table populated by
// upcalls to userspace ovs-vswitchd (the ofproto pipeline), executing
// actions in softirq context.
type Datapath struct {
	Eng      *sim.Engine
	Flavor   Flavor
	Pipeline *ofproto.Pipeline
	Ct       *conntrack.Table

	flows *dpcls.Classifier

	// Outputs maps datapath port numbers to transmit functions (NIC tx,
	// tap delivery, veth delivery); the registered function is run in
	// softirq context after the kernel-side transmit cost is charged.
	Outputs map[uint32]func(*packet.Packet)

	// ActiveCPUs reports how many softirq CPUs process packets
	// concurrently, feeding the SMT-contention model; nil means 1.
	ActiveCPUs func() int

	// upcall, when set, replaces Pipeline.Translate as the slow-path
	// handler (dpif upcall registration).
	upcall func(flow.Key) (ofproto.Megaflow, error)

	// UpcallQueueCap bounds the queue of packets awaiting translation by
	// the userspace handler — the per-port netlink socket buffer whose
	// overflow the kernel reports as ENOBUFS. Zero keeps the legacy
	// inline upcall.
	UpcallQueueCap int
	// UpcallServiceInterval is the handler's per-upcall service time when
	// the queue is bounded; zero defaults to costmodel.UpcallCost.
	UpcallServiceInterval sim.Time
	// UpcallRetryBase seeds the exponential backoff for transient upcall
	// failures; zero defaults to UpcallCost/4.
	UpcallRetryBase sim.Time
	// UpcallMaxRetries bounds backoff retries of one transient upcall;
	// zero defaults to 3.
	UpcallMaxRetries int
	// NegativeFlowTTL is the lifetime of the drop flow installed when an
	// upcall fails for good; <= 0 disables it.
	NegativeFlowTTL sim.Time

	// upcallQ parks packets awaiting translation when UpcallQueueCap is
	// set; upcallBusy is set while a handler service event is in flight;
	// handler is the userspace handler thread's CPU, created lazily.
	upcallQ    []*kpendingUpcall
	upcallBusy bool
	handler    *sim.CPU

	// Perf is the softirq context's performance-counter block, the kernel
	// counterpart of a PMD's dpif-netdev-perf stats. The kernel path has no
	// EMC, so StageEMC stays zero and flow-table hits land in StageDpcls.
	Perf *perf.Stats
	// trace, while non-nil, is the lifecycle record of the depth-0 packet
	// currently in process.
	trace *perf.TraceRecord

	// Stats.
	Hits    uint64
	Misses  uint64
	Drops   uint64
	Upcalls uint64
	// Processed counts fast-path passes (including recirculation), the
	// conservation base for the drop counters.
	Processed uint64
	// UpcallErrors counts translations that failed for good.
	UpcallErrors uint64
	// UpcallQueueDrops counts packets refused because the bounded upcall
	// queue was full (ENOBUFS); they are not in Drops.
	UpcallQueueDrops uint64
	// UpcallRetries counts backoff retries of transient upcall failures.
	UpcallRetries uint64
	// MalformedDrops counts slow-path parse failures (the flow
	// extractor's EINVAL), split from policy drops.
	MalformedDrops uint64
}

// NewDatapath builds a kernel datapath over a pipeline.
func NewDatapath(eng *sim.Engine, flavor Flavor, pl *ofproto.Pipeline) *Datapath {
	return &Datapath{
		Eng:             eng,
		Flavor:          flavor,
		Pipeline:        pl,
		Ct:              conntrack.NewTable(eng),
		flows:           dpcls.New(0x6b73),
		Outputs:         make(map[uint32]func(*packet.Packet)),
		Perf:            perf.NewStats(),
		NegativeFlowTTL: costmodel.NegativeFlowTTL,
	}
}

// EnableTrace arms packet-lifecycle tracing with a ring of n records.
func (d *Datapath) EnableTrace(n int) { d.Perf.EnableTrace(n) }

// charge consumes c in the given kernel category and attributes the same
// amount to a perf stage; c must already be flavor/contention scaled.
func (d *Datapath) charge(cpu *sim.CPU, cat sim.Category, st perf.Stage, c sim.Time) {
	cpu.Consume(cat, c)
	d.Perf.Add(st, c)
}

// traceResolved marks the in-flight trace record's resolution level, once.
func (d *Datapath) traceResolved(r perf.Result) {
	if d.trace != nil && d.trace.Result == perf.ResultNone {
		d.trace.Result = r
	}
}

// FlowCount returns installed datapath flows.
func (d *Datapath) FlowCount() int { return d.flows.Len() }

// Flows snapshots the installed datapath flows (dpif flow dumps, the data
// behind ovs-dpctl dump-flows on the kernel datapath).
func (d *Datapath) Flows() []*dpcls.Entry { return d.flows.Entries() }

// FlowsInto appends the installed datapath flows into buf (truncated
// first) and returns it — the allocation-free dump form the revalidator
// reuses its buffer with.
func (d *Datapath) FlowsInto(buf []*dpcls.Entry) []*dpcls.Entry { return d.flows.EntriesInto(buf) }

// SetFlowHook registers (or, with nil, clears) the flow-installed
// notification fired for every freshly installed flow (upcall installs,
// InstallFlow, negative flows). In-place replacements do not re-fire it.
func (d *Datapath) SetFlowHook(fn func(*dpcls.Entry)) { d.flows.OnInsert = fn }

// RemoveFlow deletes one installed flow, reporting whether it was present
// (revalidator eviction).
func (d *Datapath) RemoveFlow(e *dpcls.Entry) bool { return d.flows.Remove(e) }

// InstallFlow installs a datapath flow directly (dpif FlowPut). The eBPF
// flavor's verifier restrictions forbid megaflow wildcarding, so its masks
// are narrowed to exact-match exactly as on the upcall path.
func (d *Datapath) InstallFlow(key flow.Key, mask flow.Mask, actions any) *dpcls.Entry {
	if d.Flavor == FlavorEBPF {
		mask = flow.MaskAll()
	}
	return d.flows.Insert(key, mask, actions)
}

// SetUpcall registers the slow-path handler consulted on flow-table misses
// in place of the pipeline's translator (dpif upcall registration).
func (d *Datapath) SetUpcall(fn func(flow.Key) (ofproto.Megaflow, error)) { d.upcall = fn }

// translate resolves a missed key through the registered upcall handler,
// defaulting to the pipeline.
func (d *Datapath) translate(key flow.Key) (ofproto.Megaflow, error) {
	if d.upcall != nil {
		return d.upcall(key)
	}
	return d.Pipeline.Translate(key)
}

// cost scales a base cost for the flavor (eBPF sandbox penalty) and the
// current softirq fan-out (SMT contention).
func (d *Datapath) cost(base sim.Time) sim.Time {
	if d.Flavor == FlavorEBPF {
		base = base * costmodel.EBPFSandboxPenaltyNum / costmodel.EBPFSandboxPenaltyDen
	}
	n := 1
	if d.ActiveCPUs != nil {
		n = d.ActiveCPUs()
	}
	return costmodel.SMTContention(base, n)
}

// Process runs one packet through the datapath in softirq context on cpu.
// This is the handler a NAPIActor drives.
func (d *Datapath) Process(cpu *sim.CPU, p *packet.Packet) {
	d.process(cpu, p, 0)
}

// ProcessBatch is the batch form, matching NAPIActor.Handler. One batch is
// the kernel analog of a PMD poll iteration (a NAPI poll).
func (d *Datapath) ProcessBatch(cpu *sim.CPU, pkts []*packet.Packet) {
	d.Perf.AddIteration()
	if len(pkts) > 0 {
		d.Perf.AddBatch(len(pkts))
	}
	for _, p := range pkts {
		d.Process(cpu, p)
	}
}

const maxKernelRecirc = 8

func (d *Datapath) process(cpu *sim.CPU, p *packet.Packet, depth int) {
	d.processCounted(cpu, p, depth, true)
}

// processCounted is process with the admission accounting gated: packets
// reinjected after a queued upcall resolves (count=false) were already
// counted at admission.
func (d *Datapath) processCounted(cpu *sim.CPU, p *packet.Packet, depth int, count bool) {
	if depth > maxKernelRecirc {
		d.Drops++
		return
	}
	if count {
		d.Processed++
	}
	if depth == 0 && count {
		d.Perf.Packets++
		if tr := d.Perf.Tracer(); tr != nil {
			start := cpu.FreeAt()
			if now := d.Eng.Now(); start < now {
				start = now
			}
			rec := perf.TraceRecord{InPort: p.InPort, Start: start}
			d.trace = &rec
			defer func() {
				rec.End = cpu.FreeAt()
				tr.Add(rec)
				d.trace = nil
			}()
		}
	}
	d.charge(cpu, sim.Softirq, perf.StageRx, d.cost(costmodel.SkbAlloc+costmodel.KernelDriverRx))

	key := flow.Extract(p)
	d.charge(cpu, sim.Softirq, perf.StageDpcls, d.cost(costmodel.KernelOVSLookup))
	entry, _ := d.flows.Lookup(key)
	if entry == nil {
		// The kernel flow extractor rejects malformed frames with EINVAL
		// before any upcall is attempted; keep those distinct from policy
		// drops.
		if flow.Malformed(p) {
			d.MalformedDrops++
			return
		}
		d.Misses++
		d.Upcalls++
		if d.UpcallQueueCap > 0 {
			// Bounded netlink socket: park the packet for the userspace
			// handler, or drop with ENOBUFS when the queue is full.
			// Misses are counted above even for refused packets.
			d.traceResolved(perf.ResultUpcall)
			if len(d.upcallQ) >= d.UpcallQueueCap {
				d.UpcallQueueDrops++
				d.Perf.UpcallQueueDrops++
				return
			}
			d.upcallQ = append(d.upcallQ,
				&kpendingUpcall{key: key, pkt: p, enq: d.Eng.Now(), cpu: cpu})
			if n := uint64(len(d.upcallQ)); n > d.Perf.UpcallQueuePeak {
				d.Perf.UpcallQueuePeak = n
			}
			d.kickUpcalls()
			return
		}
		// Legacy path: inline upcall to ovs-vswitchd over netlink —
		// expensive, and the translation installs a flow for successors.
		upcallBefore := cpu.BusyTotal()
		d.charge(cpu, sim.System, perf.StageUpcall, costmodel.UpcallCost)
		mf, err := d.translate(key)
		d.Perf.AddUpcall(cpu.BusyTotal() - upcallBefore)
		d.traceResolved(perf.ResultUpcall)
		if err != nil {
			d.UpcallErrors++
			d.Drops++
			d.installNegativeFlow(key)
			return
		}
		entry = d.InstallFlow(key, mf.Mask, mf.Actions)
	} else {
		d.Hits++
		d.Perf.MegaflowHits++
		d.traceResolved(perf.ResultMegaflow)
	}

	actions, _ := entry.Actions.([]ofproto.DPAction)
	if len(actions) == 0 {
		d.Drops++
		return
	}
	d.execute(cpu, p, actions, depth)
}

func (d *Datapath) execute(cpu *sim.CPU, p *packet.Packet, actions []ofproto.DPAction, depth int) {
	for _, a := range actions {
		switch a.Type {
		case ofproto.DPOutput:
			d.charge(cpu, sim.Softirq, perf.StageActions, d.cost(costmodel.KernelOVSActions+costmodel.KernelDriverTx))
			if d.trace != nil {
				d.trace.OutPort = a.Port
			}
			if out, ok := d.Outputs[a.Port]; ok {
				out(p)
			} else {
				d.Drops++
			}
		case ofproto.DPCT:
			d.charge(cpu, sim.Softirq, perf.StageActions, d.cost(costmodel.ConntrackLookup))
			if a.Commit {
				d.charge(cpu, sim.Softirq, perf.StageActions, d.cost(costmodel.ConntrackCommit-costmodel.ConntrackLookup))
			}
			ctRemovals := d.Ct.PressureRemovals()
			d.Ct.Process(p, a.Zone, a.Commit, a.NAT)
			if n := d.Ct.PressureRemovals() - ctRemovals; n > 0 {
				d.charge(cpu, sim.Softirq, perf.StageActions, d.cost(costmodel.ConntrackEvict)*sim.Time(n))
				d.Perf.CtEvictions += n
			}
			// Recirculate.
			d.charge(cpu, sim.Softirq, perf.StageActions, d.cost(costmodel.RecirculationOverhead))
			p.RecircID = a.RecircID
			if d.trace != nil {
				d.trace.Recircs++
			}
			d.process(cpu, p, depth+1)
			return
		case ofproto.DPPushVLAN:
			p.Data = hdr.PushVLAN(p.Data, a.VLAN, a.VLANPrio)
		case ofproto.DPPopVLAN:
			p.Data = hdr.PopVLAN(p.Data)
		case ofproto.DPSetEthSrc:
			if len(p.Data) >= 12 {
				copy(p.Data[6:12], a.MAC[:])
			}
		case ofproto.DPSetEthDst:
			if len(p.Data) >= 6 {
				copy(p.Data[0:6], a.MAC[:])
			}
		case ofproto.DPDecTTL:
			decTTL(p)
		case ofproto.DPTunnelPush:
			// The kernel's own encapsulation: charged, and the
			// packet grows by the overhead; the full byte-level
			// encap lives in the userspace datapath (package
			// core), which is the system under study.
			d.charge(cpu, sim.Softirq, perf.StageActions, d.cost(costmodel.TunnelEncap))
		case ofproto.DPMeter:
			if !d.Pipeline.MeterAllow(a.MeterID, len(p.Data), d.Eng.Now()) {
				d.Drops++
				return
			}
		}
	}
}

func decTTL(p *packet.Packet) {
	eth, err := hdr.ParseEthernet(p.Data)
	if err != nil || eth.Type != hdr.EtherTypeIPv4 {
		return
	}
	raw := p.Data[eth.HeaderLen:]
	ip, err := hdr.ParseIPv4(raw)
	if err != nil || ip.TTL == 0 {
		return
	}
	ip.TTL--
	ip.SerializeTo(raw[:hdr.IPv4MinSize])
}

// FlushFlows drops all installed datapath flows (revalidation).
func (d *Datapath) FlushFlows() { d.flows.Flush() }

// kpendingUpcall is one packet parked in the bounded upcall queue. The
// softirq CPU it arrived on is kept so the reinjected packet charges the
// same context it would have run in.
type kpendingUpcall struct {
	key     flow.Key
	pkt     *packet.Packet
	enq     sim.Time
	attempt int
	cpu     *sim.CPU
}

// upcallInterval is the bounded handler's per-upcall service time.
func (d *Datapath) upcallInterval() sim.Time {
	if d.UpcallServiceInterval > 0 {
		return d.UpcallServiceInterval
	}
	return costmodel.UpcallCost
}

// retryBase seeds the exponential backoff for transient upcall failures.
func (d *Datapath) retryBase() sim.Time {
	if d.UpcallRetryBase > 0 {
		return d.UpcallRetryBase
	}
	return costmodel.UpcallCost / 4
}

// maxUpcallRetries bounds backoff retries of one transient upcall.
func (d *Datapath) maxUpcallRetries() int {
	if d.UpcallMaxRetries > 0 {
		return d.UpcallMaxRetries
	}
	return 3
}

// handlerCPU lazily creates the userspace handler thread (ovs-vswitchd's
// handler pool, reduced to one thread).
func (d *Datapath) handlerCPU() *sim.CPU {
	if d.handler == nil {
		d.handler = d.Eng.NewCPU("ovs-handler")
	}
	return d.handler
}

// installNegativeFlow installs a short-lived drop flow after a failed
// upcall; it self-expires after NegativeFlowTTL.
func (d *Datapath) installNegativeFlow(key flow.Key) {
	ttl := d.NegativeFlowTTL
	if ttl <= 0 {
		return
	}
	e := d.flows.Insert(key, flow.MaskAll(), nil)
	d.Eng.Schedule(ttl, func() { d.flows.Remove(e) })
}

// kickUpcalls schedules the next queued upcall for service one handler
// service interval from now.
func (d *Datapath) kickUpcalls() {
	if d.upcallBusy || len(d.upcallQ) == 0 {
		return
	}
	d.upcallBusy = true
	d.Eng.Schedule(d.upcallInterval(), d.serviceUpcall)
}

// serviceUpcall handles one parked upcall on the userspace handler thread,
// mirroring the netdev provider's semantics exactly: dedup against the
// flow table, translate with backoff retry on transient faults, install
// the flow (or a negative flow on hard failure), reinject the packet.
func (d *Datapath) serviceUpcall() {
	d.upcallBusy = false
	if len(d.upcallQ) == 0 {
		return
	}
	u := d.upcallQ[0]
	d.upcallQ = d.upcallQ[1:]
	defer d.kickUpcalls()

	if e, _ := d.flows.Lookup(u.key); e != nil {
		d.processCounted(u.cpu, u.pkt, 0, false)
		return
	}

	cpu := d.handlerCPU()
	cpu.Consume(sim.System, costmodel.UpcallCost)
	d.Perf.Add(perf.StageUpcall, costmodel.UpcallCost)
	mf, err := d.translate(u.key)
	if err != nil {
		if te, ok := err.(interface{ Transient() bool }); ok && te.Transient() &&
			u.attempt < d.maxUpcallRetries() {
			u.attempt++
			d.UpcallRetries++
			delay := faultinject.Backoff(d.Eng.Rand(), d.retryBase(), u.attempt)
			d.Eng.Schedule(delay, func() {
				// Retries bypass the cap: the packet was admitted once.
				d.upcallQ = append(d.upcallQ, u)
				d.kickUpcalls()
			})
			return
		}
		d.UpcallErrors++
		d.Drops++
		d.Perf.AddUpcall(d.Eng.Now() - u.enq)
		d.installNegativeFlow(u.key)
		return
	}
	d.InstallFlow(u.key, mf.Mask, mf.Actions)
	d.Perf.AddUpcall(d.Eng.Now() - u.enq)
	d.processCounted(u.cpu, u.pkt, 0, false)
}
