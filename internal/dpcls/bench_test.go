package dpcls

import (
	"testing"

	"ovsxdp/internal/flow"
	"ovsxdp/internal/packet/hdr"
)

func benchKey(i int) flow.Key {
	f := flow.Fields{
		InPort:  1,
		EthType: hdr.EtherTypeIPv4,
		IP4Src:  hdr.IP4(0x0a000000 + uint32(i)),
		IP4Dst:  hdr.MakeIP4(10, 1, 0, 2),
		IPProto: hdr.IPProtoUDP,
		TPSrc:   uint16(i), TPDst: 80,
	}
	return f.Pack()
}

// benchMasks builds n distinct masks (increasing IPv4 dst prefix lengths),
// so each installs its own subtable.
func benchMasks(n int) []flow.Mask {
	masks := make([]flow.Mask, n)
	for i := range masks {
		masks[i] = flow.NewMaskBuilder().InPort().EthType().IP4Dst(8 + i).Build()
	}
	return masks
}

// BenchmarkDpclsLookup measures a tuple-space lookup across 8 subtables,
// the wall-clock analog of the DpclsLookupPerSubtable virtual cost.
func BenchmarkDpclsLookup(b *testing.B) {
	c := New(0)
	masks := benchMasks(8)
	keys := make([]flow.Key, 1024)
	for i := range keys {
		keys[i] = benchKey(i)
		c.Insert(keys[i], masks[i%len(masks)], "actions")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(keys[i%len(keys)])
	}
}

// BenchmarkDpclsInsert measures installing megaflows under many distinct
// masks — the path the byMask index keeps O(1) per insert.
func BenchmarkDpclsInsert(b *testing.B) {
	masks := benchMasks(24)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := New(0)
		for j, m := range masks {
			c.Insert(benchKey(j), m, "actions")
		}
	}
}
