package dpcls

import (
	"testing"
	"testing/quick"

	"ovsxdp/internal/flow"
	"ovsxdp/internal/packet/hdr"
)

func keyFor(srcIP hdr.IP4, dstPort uint16) flow.Key {
	return (&flow.Fields{
		EthType: hdr.EtherTypeIPv4,
		IP4Src:  srcIP, IP4Dst: hdr.MakeIP4(10, 0, 0, 2),
		IPProto: hdr.IPProtoUDP, TPDst: dstPort,
	}).Pack()
}

func TestInsertAndLookup(t *testing.T) {
	c := New(0)
	mask := flow.NewMaskBuilder().EthType().IPProto().TPDst().Build()
	k := keyFor(hdr.MakeIP4(10, 0, 0, 1), 80)
	c.Insert(k, mask, "to-port-2")

	// Same dst port, different source: must match the wildcarded entry.
	e, probes := c.Lookup(keyFor(hdr.MakeIP4(172, 16, 0, 5), 80))
	if e == nil {
		t.Fatal("wildcarded lookup missed")
	}
	if e.Actions != "to-port-2" {
		t.Fatalf("actions = %v", e.Actions)
	}
	if probes != 1 {
		t.Fatalf("probes = %d, want 1", probes)
	}
	if e.Hits != 1 {
		t.Fatalf("hits = %d", e.Hits)
	}

	// Different dst port: miss.
	if e, _ := c.Lookup(keyFor(hdr.MakeIP4(10, 0, 0, 1), 443)); e != nil {
		t.Fatal("lookup for unmatched port must miss")
	}
}

func TestMultipleSubtables(t *testing.T) {
	c := New(0)
	mPort := flow.NewMaskBuilder().EthType().IPProto().TPDst().Build()
	mSrc := flow.NewMaskBuilder().EthType().IPProto().IP4Src(24).Build()
	c.Insert(keyFor(hdr.MakeIP4(10, 1, 1, 1), 80), mPort, "port-rule")
	c.Insert(keyFor(hdr.MakeIP4(10, 2, 2, 2), 0), mSrc, "subnet-rule")
	if c.Subtables() != 2 {
		t.Fatalf("subtables = %d", c.Subtables())
	}
	if e, _ := c.Lookup(keyFor(hdr.MakeIP4(10, 2, 2, 99), 9999)); e == nil || e.Actions != "subnet-rule" {
		t.Fatalf("subnet lookup = %+v", e)
	}
	if e, _ := c.Lookup(keyFor(hdr.MakeIP4(192, 168, 0, 1), 80)); e == nil || e.Actions != "port-rule" {
		t.Fatalf("port lookup = %+v", e)
	}
}

func TestInsertReplacesSameMaskedKey(t *testing.T) {
	c := New(0)
	mask := flow.NewMaskBuilder().EthType().TPDst().Build()
	k := keyFor(hdr.MakeIP4(1, 1, 1, 1), 80)
	c.Insert(k, mask, "old")
	c.Insert(keyFor(hdr.MakeIP4(2, 2, 2, 2), 80), mask, "new") // same masked key
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1 (replaced)", c.Len())
	}
	e, _ := c.Lookup(k)
	if e == nil || e.Actions != "new" {
		t.Fatalf("lookup = %+v", e)
	}
}

func TestRemove(t *testing.T) {
	c := New(0)
	mask := flow.NewMaskBuilder().EthType().TPDst().Build()
	e := c.Insert(keyFor(hdr.MakeIP4(1, 1, 1, 1), 80), mask, "x")
	if !c.Remove(e) {
		t.Fatal("remove failed")
	}
	if c.Len() != 0 || c.Subtables() != 0 {
		t.Fatalf("len=%d subtables=%d after remove", c.Len(), c.Subtables())
	}
	if c.Remove(e) {
		t.Fatal("double remove must report false")
	}
	// Reinserting the same masked key updates the entry in place: the
	// caches' pointer stays valid and carries the new actions, so there is
	// no stale pointer to mis-remove.
	e1 := c.Insert(keyFor(hdr.MakeIP4(1, 1, 1, 1), 80), mask, "a")
	e2 := c.Insert(keyFor(hdr.MakeIP4(1, 1, 1, 1), 80), mask, "b")
	if e1 != e2 {
		t.Fatal("replacement must update the existing entry in place")
	}
	if e1.Actions != "b" {
		t.Fatalf("replaced actions = %v, want b", e1.Actions)
	}
	if !c.Remove(e1) {
		t.Fatal("remove of replaced entry must succeed")
	}
	if c.Len() != 0 {
		t.Fatalf("len = %d after remove", c.Len())
	}
}

// TestRemoveMarksDead covers the lazy cache-invalidation contract: an entry
// leaves the classifier dead (Remove, Flush), and stays alive through an
// in-place replacement — the caches use Dead() to decide whether a held
// pointer is still valid.
func TestRemoveMarksDead(t *testing.T) {
	c := New(0)
	mask := flow.NewMaskBuilder().EthType().TPDst().Build()
	e := c.Insert(keyFor(hdr.MakeIP4(1, 1, 1, 1), 80), mask, "x")
	if e.Dead() {
		t.Fatal("fresh entry must be alive")
	}
	c.Insert(keyFor(hdr.MakeIP4(1, 1, 1, 1), 80), mask, "y")
	if e.Dead() {
		t.Fatal("in-place replacement must keep the entry alive")
	}
	c.Remove(e)
	if !e.Dead() {
		t.Fatal("removed entry must be dead")
	}
	e2 := c.Insert(keyFor(hdr.MakeIP4(2, 2, 2, 2), 443), mask, "z")
	c.Flush()
	if !e2.Dead() {
		t.Fatal("flushed entry must be dead")
	}
}

// TestFlushResetsProbeStats: Flush starts a fresh classifier lifetime, so
// the lookup/probe counters and the resort countdown reset with it.
func TestFlushResetsProbeStats(t *testing.T) {
	c := New(0)
	mask := flow.NewMaskBuilder().EthType().TPDst().Build()
	k := keyFor(hdr.MakeIP4(1, 1, 1, 1), 80)
	c.Insert(k, mask, "x")
	for i := 0; i < 10; i++ {
		c.Lookup(k)
	}
	if c.Lookups == 0 || c.SubtableProbes == 0 {
		t.Fatal("expected non-zero probe stats before flush")
	}
	c.Flush()
	if c.Lookups != 0 || c.SubtableProbes != 0 {
		t.Fatalf("flush left Lookups=%d SubtableProbes=%d", c.Lookups, c.SubtableProbes)
	}
	if c.AvgProbes() != 0 {
		t.Fatalf("AvgProbes after flush = %v", c.AvgProbes())
	}
}

func TestProbeCountGrowsWithSubtables(t *testing.T) {
	c := New(0)
	masks := []flow.Mask{
		flow.NewMaskBuilder().EthType().Build(),
		flow.NewMaskBuilder().EthType().IPProto().Build(),
		flow.NewMaskBuilder().EthType().IPProto().TPSrc().Build(),
		flow.NewMaskBuilder().EthType().IPProto().TPSrc().TPDst().Build(),
	}
	for i, m := range masks {
		k := (&flow.Fields{EthType: hdr.EtherTypeIPv6, IPProto: hdr.IPProtoTCP,
			TPSrc: uint16(i + 1), TPDst: uint16(i + 100)}).Pack()
		c.Insert(k, m, i)
	}
	// A missing key probes all subtables.
	_, probes := c.Lookup(keyFor(hdr.MakeIP4(9, 9, 9, 9), 9))
	if probes != len(masks) {
		t.Fatalf("miss probes = %d, want %d", probes, len(masks))
	}
}

func TestUsageBasedResort(t *testing.T) {
	c := New(0)
	// Subtable A installed first, subtable B second; then B gets all the
	// traffic. After the resort interval, B must be probed first.
	mA := flow.NewMaskBuilder().EthType().TPSrc().Build()
	mB := flow.NewMaskBuilder().EthType().TPDst().Build()
	kA := (&flow.Fields{EthType: hdr.EtherTypeIPv4, TPSrc: 7}).Pack()
	kB := (&flow.Fields{EthType: hdr.EtherTypeIPv4, TPDst: 80}).Pack()
	c.Insert(kA, mA, "a")
	c.Insert(kB, mB, "b")

	// Burn through more than resortInterval lookups on B.
	for i := 0; i < resortInterval+10; i++ {
		c.Lookup(kB)
	}
	_, probes := c.Lookup(kB)
	if probes != 1 {
		t.Fatalf("hot subtable should be probed first, probes = %d", probes)
	}
}

func TestFlushAndEntries(t *testing.T) {
	c := New(0)
	mask := flow.NewMaskBuilder().EthType().TPDst().Build()
	for i := 0; i < 5; i++ {
		c.Insert(keyFor(hdr.MakeIP4(1, 1, 1, 1), uint16(i)), mask, i)
	}
	if len(c.Entries()) != 5 {
		t.Fatalf("entries = %d", len(c.Entries()))
	}
	c.Flush()
	if c.Len() != 0 || len(c.Entries()) != 0 {
		t.Fatal("flush incomplete")
	}
}

func TestAvgProbes(t *testing.T) {
	c := New(0)
	if c.AvgProbes() != 0 {
		t.Fatal("no lookups: avg 0")
	}
	mask := flow.NewMaskBuilder().EthType().TPDst().Build()
	c.Insert(keyFor(hdr.MakeIP4(1, 1, 1, 1), 80), mask, "x")
	c.Lookup(keyFor(hdr.MakeIP4(1, 1, 1, 1), 80))
	if c.AvgProbes() != 1 {
		t.Fatalf("avg probes = %v", c.AvgProbes())
	}
}

func TestDisjointMegaflowsFirstMatchWins(t *testing.T) {
	// Megaflows from translation are disjoint: a packet matches exactly
	// one. Verify a key matching subtable 2 is untouched by subtable 1.
	c := New(0)
	mTCP := flow.NewMaskBuilder().EthType().IPProto().TPDst().Build()
	mUDP := flow.NewMaskBuilder().EthType().IPProto().TPSrc().Build()
	tcpKey := (&flow.Fields{EthType: hdr.EtherTypeIPv4, IPProto: hdr.IPProtoTCP, TPDst: 22}).Pack()
	udpKey := (&flow.Fields{EthType: hdr.EtherTypeIPv4, IPProto: hdr.IPProtoUDP, TPSrc: 53}).Pack()
	c.Insert(tcpKey, mTCP, "tcp")
	c.Insert(udpKey, mUDP, "udp")
	if e, _ := c.Lookup(udpKey); e == nil || e.Actions != "udp" {
		t.Fatalf("udp lookup = %+v", e)
	}
	if e, _ := c.Lookup(tcpKey); e == nil || e.Actions != "tcp" {
		t.Fatalf("tcp lookup = %+v", e)
	}
}

func BenchmarkLookup1Subtable(b *testing.B) {
	c := New(0)
	mask := flow.NewMaskBuilder().EthType().IPProto().TPDst().Build()
	k := keyFor(hdr.MakeIP4(10, 0, 0, 1), 80)
	c.Insert(k, mask, "x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Lookup(k)
	}
}

func BenchmarkLookup8Subtables(b *testing.B) {
	c := New(0)
	builders := []*flow.MaskBuilder{
		flow.NewMaskBuilder().EthType(),
		flow.NewMaskBuilder().EthType().IPProto(),
		flow.NewMaskBuilder().EthType().IPProto().TPSrc(),
		flow.NewMaskBuilder().EthType().IPProto().TPDst(),
		flow.NewMaskBuilder().EthType().IP4Src(24),
		flow.NewMaskBuilder().EthType().IP4Dst(24),
		flow.NewMaskBuilder().EthType().IP4Src(32).IP4Dst(32),
		flow.NewMaskBuilder().EthType().IPProto().TPSrc().TPDst(),
	}
	for i, mb := range builders {
		k := (&flow.Fields{EthType: hdr.EtherTypeIPv6, IPProto: hdr.IPProtoTCP, TPSrc: uint16(i + 1)}).Pack()
		c.Insert(k, mb.Build(), i)
	}
	// Lookup key that matches the last subtable most of the time.
	k := keyFor(hdr.MakeIP4(10, 0, 0, 1), 80)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Lookup(k)
	}
}

func TestInsertLookupProperty(t *testing.T) {
	// Property: any inserted key is found by a lookup of any key equal to
	// it under the mask, and missed by keys differing inside the mask.
	f := func(srcIP, dstIP uint32, sport, dport uint16, flip uint8) bool {
		c := New(0)
		mask := flow.NewMaskBuilder().EthType().IPProto().IP4Src(32).TPDst().Build()
		base := flow.Fields{
			EthType: hdr.EtherTypeIPv4, IPProto: hdr.IPProtoTCP,
			IP4Src: hdr.IP4(srcIP), IP4Dst: hdr.IP4(dstIP),
			TPSrc: sport, TPDst: dport,
		}
		c.Insert(base.Pack(), mask, "v")

		// Same masked fields, different unmasked fields: must hit.
		same := base
		same.IP4Dst ^= 0xffff
		same.TPSrc ^= 0x5555
		if e, _ := c.Lookup(same.Pack()); e == nil {
			return false
		}
		// Change a masked field: must miss.
		diff := base
		diff.TPDst ^= uint16(flip) | 1
		e, _ := c.Lookup(diff.Pack())
		return e == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestMaskIndexConsistency exercises the byMask index through the full
// subtable lifecycle: insert under many masks, remove until subtables drop,
// re-insert a dropped mask, and flush — the slice and the index must agree
// throughout.
func TestMaskIndexConsistency(t *testing.T) {
	c := New(0)
	var entries []*Entry
	masks := make([]flow.Mask, 16)
	for i := range masks {
		masks[i] = flow.NewMaskBuilder().InPort().EthType().IP4Src(8 + i).Build()
		for j := 0; j < 3; j++ {
			k := keyFor(hdr.MakeIP4(10, byte(i), byte(j), 1), uint16(1000+j))
			entries = append(entries, c.Insert(k, masks[i], "a"))
		}
	}
	if c.Subtables() != 16 {
		t.Fatalf("subtables = %d, want 16", c.Subtables())
	}
	// Removing every entry of a mask must drop its subtable from both the
	// probe order and the index; a later insert under the same mask must
	// create a fresh subtable, not resurrect state.
	for _, e := range entries {
		c.Remove(e)
	}
	if c.Subtables() != 0 || c.Len() != 0 {
		t.Fatalf("subtables=%d len=%d after removing all", c.Subtables(), c.Len())
	}
	k := keyFor(hdr.MakeIP4(10, 0, 0, 1), 1000)
	e := c.Insert(k, masks[0], "b")
	if got, _ := c.Lookup(k); got != e {
		t.Fatalf("lookup after reinsert = %v, want %v", got, e)
	}
	c.Flush()
	if got := c.Insert(k, masks[0], "c"); got == nil {
		t.Fatal("insert after flush failed")
	}
	if c.Subtables() != 1 {
		t.Fatalf("subtables after flush+insert = %d", c.Subtables())
	}
}
