// Package dpcls implements the datapath classifier: the megaflow cache that
// backs the EMC in the OVS userspace datapath.
//
// Megaflows are wildcarded flow entries produced by slow-path translation.
// The classifier is a tuple-space search: one hash subtable per distinct
// mask, probed in descending hit-count order (as OVS sorts subtables by
// usage). Megaflows installed by ofproto translation are disjoint by
// construction, so the first match wins and no priorities are needed.
//
// The paper's Section 2.2.2 explains why this structure could not move into
// eBPF ("the sandbox restrictions ... preclude implementing the OVS megaflow
// cache"), which is one of the reasons the AF_XDP userspace architecture
// won.
package dpcls

import (
	"fmt"
	"sort"

	"ovsxdp/internal/flow"
)

// Entry is one installed megaflow.
type Entry struct {
	// Mask selects the fields this megaflow constrains.
	Mask flow.Mask
	// MaskedKey is the key already masked (key.Apply(Mask)).
	MaskedKey flow.Key
	// Actions is the opaque action list the datapath executes; the
	// classifier does not interpret it.
	Actions any

	// Hits counts packets matched, for revalidator heuristics. With
	// hardware offload enabled, the periodic counter readback merges
	// hardware matches in here too, so offloaded flows keep looking alive
	// to the revalidator and the cache aliveness checks.
	Hits uint64

	// OffloadMark is the hardware-offload engine's per-flow flag: nonzero
	// while the engine classes this megaflow an elephant whose exact keys
	// should be pushed to the NIC. The classifier itself never reads it;
	// it lives here so the per-packet elephant check is one field load
	// instead of a map probe.
	OffloadMark uint8

	// dead marks an entry no longer installed in any classifier. Caches
	// that hold *Entry pointers (the EMC) consult it lazily on lookup
	// instead of being scanned eagerly on every delete — OVS's
	// emc_entry_alive discipline. Remove and Flush set it; an entry is
	// never resurrected (replacement updates the live entry in place, so
	// a dead pointer stays dead forever).
	dead bool
}

// MarkDead marks the entry as removed from the datapath. Idempotent.
func (e *Entry) MarkDead() { e.dead = true }

// Dead reports whether the entry has been removed from the datapath.
func (e *Entry) Dead() bool { return e.dead }

// String summarizes the entry.
func (e *Entry) String() string {
	return fmt.Sprintf("megaflow{bits=%d hits=%d %s}", e.Mask.Bits(), e.Hits, e.MaskedKey)
}

// subtable holds all megaflows sharing one mask.
type subtable struct {
	mask    flow.Mask
	entries map[flow.Key]*Entry
	hits    uint64
}

// Classifier is the tuple-space-search megaflow table. It is used from a
// single PMD thread (each PMD owns one, as in OVS) so it needs no locking.
type Classifier struct {
	// subtables stays a slice because Lookup probes it in descending
	// hit-count order; byMask indexes the same subtables so Insert and
	// Remove resolve a mask in O(1) instead of scanning.
	subtables []*subtable
	byMask    map[flow.Mask]*subtable
	basis     uint32
	count     int

	// Lookups and SubtableProbes feed the cost model: a lookup costs
	// per-subtable-probed.
	Lookups        uint64
	SubtableProbes uint64
	// resort counts down to the next usage-based reordering.
	resort int

	// OnInsert, when set, is called for every freshly allocated entry —
	// not for in-place replacements, whose pointer the caller already
	// holds. It is the flow-installed notification the incremental
	// (wheel-based) revalidator registers expiry timers from.
	OnInsert func(*Entry)
}

// New returns an empty classifier.
func New(hashBasis uint32) *Classifier {
	return &Classifier{
		byMask: make(map[flow.Mask]*subtable),
		basis:  hashBasis,
		resort: resortInterval,
	}
}

// resortInterval is how many lookups happen between subtable reorderings.
const resortInterval = 1024

// Lookup finds the megaflow matching key. It returns the entry and the
// number of subtables probed (for cost accounting), or nil and the full
// probe count on a miss.
func (c *Classifier) Lookup(key flow.Key) (*Entry, int) {
	c.Lookups++
	probes := 0
	for _, st := range c.subtables {
		probes++
		c.SubtableProbes++
		if e, ok := st.entries[key.Apply(st.mask)]; ok {
			e.Hits++
			st.hits++
			c.maybeResort()
			return e, probes
		}
	}
	c.maybeResort()
	return nil, probes
}

func (c *Classifier) maybeResort() {
	c.resort--
	if c.resort > 0 {
		return
	}
	c.resort = resortInterval
	sort.SliceStable(c.subtables, func(i, j int) bool {
		return c.subtables[i].hits > c.subtables[j].hits
	})
	for _, st := range c.subtables {
		st.hits = 0
	}
}

// Insert installs a megaflow for key under mask with the given actions and
// returns the entry. Inserting a key that matches an existing entry of the
// same mask replaces its actions in place: the existing *Entry (which the
// EMC and SMC may still point to) keeps its identity and hit count, so
// cached hits execute the new actions immediately instead of forwarding
// with the stale ones a freshly allocated entry would leave behind.
func (c *Classifier) Insert(key flow.Key, mask flow.Mask, actions any) *Entry {
	st := c.findSubtable(mask)
	if st == nil {
		st = &subtable{mask: mask, entries: make(map[flow.Key]*Entry)}
		c.subtables = append(c.subtables, st)
		c.byMask[mask] = st
	}
	masked := key.Apply(mask)
	if e, existed := st.entries[masked]; existed {
		e.Actions = actions
		return e
	}
	c.count++
	e := &Entry{Mask: mask, MaskedKey: masked, Actions: actions}
	st.entries[masked] = e
	if c.OnInsert != nil {
		c.OnInsert(e)
	}
	return e
}

// Remove deletes the megaflow that entry represents. It reports whether an
// entry was removed.
func (c *Classifier) Remove(e *Entry) bool {
	st := c.findSubtable(e.Mask)
	if st == nil {
		return false
	}
	if cur, ok := st.entries[e.MaskedKey]; !ok || cur != e {
		return false
	}
	delete(st.entries, e.MaskedKey)
	e.MarkDead()
	c.count--
	if len(st.entries) == 0 {
		c.dropSubtable(st)
	}
	return true
}

// Flush removes every megaflow (marking each dead for the pointer caches)
// and resets the lookup statistics and the resort countdown, so a reused
// classifier starts from the same state a fresh one would — AvgProbes and
// the cost model are not skewed by a previous table's history.
func (c *Classifier) Flush() {
	for _, st := range c.subtables {
		for _, e := range st.entries {
			e.MarkDead()
		}
	}
	c.subtables = nil
	c.byMask = make(map[flow.Mask]*subtable)
	c.count = 0
	c.Lookups = 0
	c.SubtableProbes = 0
	c.resort = resortInterval
}

// Len returns the number of installed megaflows.
func (c *Classifier) Len() int { return c.count }

// Subtables returns the number of distinct masks installed.
func (c *Classifier) Subtables() int { return len(c.subtables) }

// Entries returns all installed megaflows (for the revalidator); order is
// unspecified.
func (c *Classifier) Entries() []*Entry {
	return c.EntriesInto(make([]*Entry, 0, c.count))
}

// EntriesInto appends all installed megaflows into buf (truncated first)
// and returns it — the allocation-free dump the revalidator reuses its
// buffer across sweeps with. Order is unspecified.
func (c *Classifier) EntriesInto(buf []*Entry) []*Entry {
	buf = buf[:0]
	for _, st := range c.subtables {
		for _, e := range st.entries {
			buf = append(buf, e)
		}
	}
	return buf
}

// AvgProbes returns the mean subtables probed per lookup, the quantity the
// cost model charges DpclsLookupPerSubtable for.
func (c *Classifier) AvgProbes() float64 {
	if c.Lookups == 0 {
		return 0
	}
	return float64(c.SubtableProbes) / float64(c.Lookups)
}

func (c *Classifier) findSubtable(mask flow.Mask) *subtable {
	return c.byMask[mask]
}

func (c *Classifier) dropSubtable(st *subtable) {
	delete(c.byMask, st.mask)
	for i, s := range c.subtables {
		if s == st {
			c.subtables = append(c.subtables[:i], c.subtables[i+1:]...)
			return
		}
	}
}
