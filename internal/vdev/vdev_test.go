package vdev

import (
	"testing"

	"ovsxdp/internal/packet"
)

func pkt() *packet.Packet { return packet.New(make([]byte, 64)) }

func TestQueueFIFO(t *testing.T) {
	q := NewQueue("q", 4)
	a, b := pkt(), pkt()
	q.Push(a)
	q.Push(b)
	out := q.Pop(10)
	if len(out) != 2 || out[0] != a || out[1] != b {
		t.Fatal("FIFO order violated")
	}
	if q.Len() != 0 {
		t.Fatal("pop must drain")
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	q := NewQueue("q", 2)
	for i := 0; i < 5; i++ {
		q.Push(pkt())
	}
	if q.Len() != 2 || q.Dropped != 3 || q.Enqueued != 2 {
		t.Fatalf("len=%d dropped=%d enq=%d", q.Len(), q.Dropped, q.Enqueued)
	}
}

func TestQueueWakeupOnTransition(t *testing.T) {
	q := NewQueue("q", 8)
	fired := 0
	q.SetWakeup(func() { fired++ })
	q.ArmWakeup()
	q.Push(pkt())
	if fired != 1 {
		t.Fatalf("fired = %d", fired)
	}
	// Not armed anymore: second push is silent.
	q.Push(pkt())
	if fired != 1 {
		t.Fatal("wakeup must be one-shot")
	}
	// Arming with packets pending fires immediately.
	q.ArmWakeup()
	if fired != 2 {
		t.Fatal("arming a non-empty queue must fire immediately")
	}
}

func TestQueueWakeupOnlyOnEmptyTransition(t *testing.T) {
	q := NewQueue("q", 8)
	fired := 0
	q.SetWakeup(func() { fired++ })
	q.Push(pkt()) // not armed: no fire
	q.ArmWakeup() // non-empty: fires now
	if fired != 1 {
		t.Fatalf("fired = %d", fired)
	}
}

func TestQueueDefaultDepth(t *testing.T) {
	if NewQueue("q", 0).Cap() != DefaultQueueDepth {
		t.Fatal("default depth not applied")
	}
}

func TestTapQueuesAreDistinct(t *testing.T) {
	tap := NewTap("tap0")
	tap.ToKernel.Push(pkt())
	if tap.FromKernel.Len() != 0 {
		t.Fatal("tap directions must be independent")
	}
}

func TestVhostRings(t *testing.T) {
	v := NewVhostUser("vhost0")
	p := pkt()
	v.ToGuest.Push(p)
	got := v.ToGuest.Pop(1)
	if len(got) != 1 || got[0] != p {
		t.Fatal("vhost ring lost the packet")
	}
}

func TestVethPairCrossing(t *testing.T) {
	v := NewVethPair("veth0")
	p := pkt()
	if !v.SendA(p) {
		t.Fatal("send failed")
	}
	got := v.AtoB.Pop(1)
	if len(got) != 1 || got[0] != p {
		t.Fatal("A->B crossing failed")
	}
	v.SendB(p)
	if v.BtoA.Len() != 1 {
		t.Fatal("B->A crossing failed")
	}
}
