// Package vdev provides the virtual devices of Sections 3.3 and 3.4: the
// building-block bounded packet queue with wakeup signalling, and on top of
// it the tap device (kernel-mediated, one system call per send from
// userspace), the vhostuser ring pair (shared memory, no kernel crossing),
// and the veth pair (two queues back-to-back across namespaces).
//
// Costs are charged by the layers that drive these devices; vdev itself
// only implements the mechanics (bounded queues, loss on overflow, wakeup
// callbacks for interrupt-style consumers).
package vdev

import (
	"fmt"

	"ovsxdp/internal/packet"
)

// DefaultQueueDepth bounds a device queue.
const DefaultQueueDepth = 1024

// Queue is a bounded FIFO of packets with an optional armed wakeup: when a
// packet arrives while the queue is empty and a consumer armed the wakeup,
// the callback fires once (the consumer re-arms after draining, NAPI
// style).
type Queue struct {
	Name  string
	depth int
	items []*packet.Packet

	wakeFn    func()
	wakeArmed bool

	// head is the consume index into items; scratch is the reusable
	// slice Pop returns (consumed synchronously by the single-threaded
	// simulation, never retained across events).
	head    int
	scratch []*packet.Packet

	// Gate, when set and returning true, refuses the push (fault
	// injection: a detached backend or downed device).
	Gate func() bool

	// Stats.
	Enqueued uint64
	Dropped  uint64
	// GateDrops counts pushes refused by an injected gate fault.
	GateDrops uint64
}

// NewQueue builds a queue with the given depth (<=0 selects the default).
func NewQueue(name string, depth int) *Queue {
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	return &Queue{Name: name, depth: depth}
}

// Len returns the number of queued packets.
func (q *Queue) Len() int { return len(q.items) - q.head }

// Cap returns the queue depth.
func (q *Queue) Cap() int { return q.depth }

// Push enqueues a packet, dropping (and counting) on overflow. It fires the
// armed wakeup when the queue transitions from empty.
func (q *Queue) Push(p *packet.Packet) bool {
	if q.Gate != nil && q.Gate() {
		q.GateDrops++
		return false
	}
	if q.Len() >= q.depth {
		q.Dropped++
		return false
	}
	wasEmpty := q.Len() == 0
	q.items = append(q.items, p)
	q.Enqueued++
	if wasEmpty && q.wakeArmed && q.wakeFn != nil {
		q.wakeArmed = false
		q.wakeFn()
	}
	return true
}

// Pop dequeues up to max packets. The returned slice is reused by the next
// Pop; callers must finish with it before yielding to the engine.
func (q *Queue) Pop(max int) []*packet.Packet {
	n := max
	if avail := q.Len(); n > avail {
		n = avail
	}
	if n == 0 {
		return nil
	}
	q.scratch = append(q.scratch[:0], q.items[q.head:q.head+n]...)
	for i := q.head; i < q.head+n; i++ {
		q.items[i] = nil
	}
	q.head += n
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return q.scratch
}

// SetWakeup installs the wakeup callback.
func (q *Queue) SetWakeup(fn func()) { q.wakeFn = fn }

// ArmWakeup requests a callback at the next empty-to-nonempty transition;
// if packets are already waiting the callback fires immediately.
func (q *Queue) ArmWakeup() {
	if q.Len() > 0 && q.wakeFn != nil {
		q.wakeFn()
		return
	}
	q.wakeArmed = true
}

// String summarizes occupancy.
func (q *Queue) String() string {
	return fmt.Sprintf("%s{%d/%d, drop=%d}", q.Name, q.Len(), q.depth, q.Dropped)
}

// Tap is the kernel tap device of Section 3.3 path A: userspace writes
// packets with a sendto() system call into ToKernel; the kernel stack (or a
// VM via QEMU) reads from it, and injects packets back through FromKernel.
type Tap struct {
	Name string
	// ToKernel carries packets from OVS userspace into the kernel/VM.
	ToKernel *Queue
	// FromKernel carries packets from the kernel/VM to OVS userspace.
	FromKernel *Queue
}

// NewTap builds a tap device.
func NewTap(name string) *Tap {
	return &Tap{
		Name:       name,
		ToKernel:   NewQueue(name+":to-kernel", 0),
		FromKernel: NewQueue(name+":from-kernel", 0),
	}
}

// VhostUser is the shared-memory virtio ring pair of Section 3.3 path B:
// OVS userspace and the VM exchange packets without any kernel crossing.
type VhostUser struct {
	Name string
	// ToGuest is the ring OVS produces into (guest rx).
	ToGuest *Queue
	// FromGuest is the ring the guest produces into (guest tx).
	FromGuest *Queue
}

// NewVhostUser builds a vhostuser device.
func NewVhostUser(name string) *VhostUser {
	return &VhostUser{
		Name:      name,
		ToGuest:   NewQueue(name+":to-guest", 0),
		FromGuest: NewQueue(name+":from-guest", 0),
	}
}

// VethPair is the namespace-crossing device of Section 3.4: what one end
// sends, the other end receives, with no data copy.
type VethPair struct {
	Name string
	// AtoB carries host-side sends to the container; BtoA the reverse.
	AtoB *Queue
	BtoA *Queue
}

// NewVethPair builds a veth pair.
func NewVethPair(name string) *VethPair {
	return &VethPair{
		Name: name,
		AtoB: NewQueue(name+":a-to-b", 0),
		BtoA: NewQueue(name+":b-to-a", 0),
	}
}

// SendA transmits from the A (host) end.
func (v *VethPair) SendA(p *packet.Packet) bool { return v.AtoB.Push(p) }

// SendB transmits from the B (container) end.
func (v *VethPair) SendB(p *packet.Packet) bool { return v.BtoA.Push(p) }
