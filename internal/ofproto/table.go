package ofproto

import (
	"fmt"
	"sort"

	"ovsxdp/internal/flow"
)

// Match is an OpenFlow match: field values plus the mask saying which bits
// participate.
type Match struct {
	Key  flow.Key
	Mask flow.Mask
}

// NewMatch packs fields and masks them (values outside the mask are
// cleared so equal matches compare equal).
func NewMatch(f flow.Fields, m flow.Mask) Match {
	return Match{Key: f.Pack().Apply(m), Mask: m}
}

// MatchAny matches every packet.
func MatchAny() Match { return Match{} }

// Matches reports whether key satisfies the match.
func (m Match) Matches(key flow.Key) bool {
	return key.Apply(m.Mask) == m.Key
}

// Rule is one OpenFlow rule.
type Rule struct {
	TableID  uint8
	Priority int
	Match    Match
	Actions  []Action
	Cookie   uint64

	// Stats.
	PacketCount uint64
}

// String summarizes the rule.
func (r *Rule) String() string {
	return fmt.Sprintf("table=%d priority=%d cookie=%#x actions=%v",
		r.TableID, r.Priority, r.Match.Mask.Bits(), r.Actions)
}

// subtable groups rules sharing a mask within one table.
type subtable struct {
	mask    flow.Mask
	rules   map[flow.Key][]*Rule // masked key -> rules (priority desc)
	maxPrio int
}

// Table is one OpenFlow table: a priority-aware tuple-space classifier.
// Lookup probes subtables in descending max-priority order and exits as
// soon as no remaining subtable can beat the best match found.
type Table struct {
	ID        uint8
	subtables []*subtable

	// Stats, as `ovs-ofctl dump-tables` would show.
	Lookups uint64
	Matches uint64
	ruleCnt int
}

// NewTable builds an empty table.
func NewTable(id uint8) *Table { return &Table{ID: id} }

// Len returns the rule count.
func (t *Table) Len() int { return t.ruleCnt }

// Insert adds a rule. Rules with identical table, match, and priority
// replace (OpenFlow flow-mod semantics).
func (t *Table) Insert(r *Rule) {
	st := t.findSubtable(r.Match.Mask)
	if st == nil {
		st = &subtable{mask: r.Match.Mask, rules: make(map[flow.Key][]*Rule)}
		t.subtables = append(t.subtables, st)
	}
	bucket := st.rules[r.Match.Key]
	for i, old := range bucket {
		if old.Priority == r.Priority {
			bucket[i] = r
			st.rules[r.Match.Key] = bucket
			return
		}
	}
	bucket = append(bucket, r)
	sort.SliceStable(bucket, func(i, j int) bool { return bucket[i].Priority > bucket[j].Priority })
	st.rules[r.Match.Key] = bucket
	t.ruleCnt++
	if r.Priority > st.maxPrio {
		st.maxPrio = r.Priority
		t.sortSubtables()
	}
}

// Remove deletes a rule matching (match, priority); it reports whether one
// was removed.
func (t *Table) Remove(m Match, priority int) bool {
	st := t.findSubtable(m.Mask)
	if st == nil {
		return false
	}
	bucket := st.rules[m.Key]
	for i, r := range bucket {
		if r.Priority == priority {
			bucket = append(bucket[:i], bucket[i+1:]...)
			if len(bucket) == 0 {
				delete(st.rules, m.Key)
			} else {
				st.rules[m.Key] = bucket
			}
			t.ruleCnt--
			if len(st.rules) == 0 {
				t.dropSubtable(st)
			}
			return true
		}
	}
	return false
}

// Lookup returns the highest-priority rule matching key, along with the
// union of subtable masks probed (the wildcarding information translation
// folds into the megaflow mask) and the number of subtables probed.
func (t *Table) Lookup(key flow.Key) (*Rule, flow.Mask, int) {
	t.Lookups++
	var best *Rule
	var probedMask flow.Mask
	probes := 0
	for _, st := range t.subtables {
		if best != nil && best.Priority >= st.maxPrio {
			break // no remaining subtable can win
		}
		probes++
		probedMask = probedMask.Union(st.mask)
		if bucket, ok := st.rules[key.Apply(st.mask)]; ok {
			top := bucket[0]
			if best == nil || top.Priority > best.Priority {
				best = top
			}
		}
	}
	if best != nil {
		t.Matches++
		best.PacketCount++
	}
	return best, probedMask, probes
}

// Rules lists all rules (order unspecified).
func (t *Table) Rules() []*Rule {
	var out []*Rule
	for _, st := range t.subtables {
		for _, bucket := range st.rules {
			out = append(out, bucket...)
		}
	}
	return out
}

// DistinctMasks returns the number of subtables (distinct match shapes),
// one of the Table 3 statistics.
func (t *Table) DistinctMasks() int { return len(t.subtables) }

func (t *Table) findSubtable(m flow.Mask) *subtable {
	for _, st := range t.subtables {
		if st.mask == m {
			return st
		}
	}
	return nil
}

func (t *Table) dropSubtable(st *subtable) {
	for i, s := range t.subtables {
		if s == st {
			t.subtables = append(t.subtables[:i], t.subtables[i+1:]...)
			return
		}
	}
}

func (t *Table) sortSubtables() {
	sort.SliceStable(t.subtables, func(i, j int) bool {
		return t.subtables[i].maxPrio > t.subtables[j].maxPrio
	})
}
