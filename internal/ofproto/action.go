// Package ofproto implements the OpenFlow processing layer of OVS: the
// multi-table rule pipeline NSX programs (Section 4), the priority-aware
// tuple-space classifier each table uses, and slow-path translation
// ("xlate") that turns a packet's walk through the pipeline into a
// wildcarded megaflow plus a concrete datapath action list — the mechanism
// that makes the megaflow cache of the userspace datapath work.
package ofproto

import (
	"fmt"

	"ovsxdp/internal/conntrack"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/tunnel"
)

// ActionType discriminates OpenFlow actions (the subset NSX's pipelines
// use).
type ActionType int

// Action types.
const (
	// ActionOutput sends the packet to a port.
	ActionOutput ActionType = iota
	// ActionGoto continues processing in a later table (resubmit).
	ActionGoto
	// ActionCT runs the packet through conntrack in a zone, optionally
	// committing, then recirculates into a table with ct_state set.
	ActionCT
	// ActionPushVLAN / ActionPopVLAN manage 802.1Q tags.
	ActionPushVLAN
	ActionPopVLAN
	// ActionSetEthSrc / ActionSetEthDst rewrite Ethernet addresses
	// (L3 gateway behaviour).
	ActionSetEthSrc
	ActionSetEthDst
	// ActionDecTTL decrements the IP TTL.
	ActionDecTTL
	// ActionSetTunnel attaches tunnel metadata; a following
	// ActionOutput to a tunnel port encapsulates.
	ActionSetTunnel
	// ActionTunnelPop decapsulates the packet and re-injects the inner
	// frame with the tunnel port as its input port (the datapath
	// tnl_pop).
	ActionTunnelPop
	// ActionMeter applies a rate limiter.
	ActionMeter
	// ActionSetCtMark sets the connection mark at commit.
	ActionSetCtMark
	// ActionDrop ends processing (explicit drop; an empty action list
	// drops too).
	ActionDrop
)

// Action is one OpenFlow action.
type Action struct {
	Type ActionType

	Port     uint32        // Output
	Table    uint8         // Goto, CT recirculation target
	VLAN     uint16        // PushVLAN: vid
	VLANPrio uint8         // PushVLAN: priority
	MAC      hdr.MAC       // SetEthSrc/SetEthDst
	Zone     uint16        // CT
	Commit   bool          // CT
	NAT      conntrack.NAT // CT
	Tunnel   tunnel.Config // SetTunnel
	MeterID  uint32        // Meter
	CtMark   uint32        // SetCtMark / CT commit
}

// String names the action for flow dumps.
func (a Action) String() string {
	switch a.Type {
	case ActionOutput:
		return fmt.Sprintf("output:%d", a.Port)
	case ActionGoto:
		return fmt.Sprintf("goto_table:%d", a.Table)
	case ActionCT:
		s := fmt.Sprintf("ct(zone=%d,table=%d", a.Zone, a.Table)
		if a.Commit {
			s += ",commit"
		}
		return s + ")"
	case ActionPushVLAN:
		return fmt.Sprintf("push_vlan:%d", a.VLAN)
	case ActionPopVLAN:
		return "pop_vlan"
	case ActionSetEthSrc:
		return fmt.Sprintf("set_eth_src:%s", a.MAC)
	case ActionSetEthDst:
		return fmt.Sprintf("set_eth_dst:%s", a.MAC)
	case ActionDecTTL:
		return "dec_ttl"
	case ActionSetTunnel:
		return fmt.Sprintf("set_tunnel:%d", a.Tunnel.VNI)
	case ActionTunnelPop:
		return fmt.Sprintf("tnl_pop:%d", a.Port)
	case ActionMeter:
		return fmt.Sprintf("meter:%d", a.MeterID)
	case ActionSetCtMark:
		return fmt.Sprintf("set_ct_mark:%#x", a.CtMark)
	case ActionDrop:
		return "drop"
	default:
		return fmt.Sprintf("action(%d)", int(a.Type))
	}
}

// Convenience constructors.

// Output builds an output action.
func Output(port uint32) Action { return Action{Type: ActionOutput, Port: port} }

// GotoTable builds a resubmit action.
func GotoTable(t uint8) Action { return Action{Type: ActionGoto, Table: t} }

// CT builds a conntrack action recirculating into table t.
func CT(zone uint16, commit bool, t uint8) Action {
	return Action{Type: ActionCT, Zone: zone, Commit: commit, Table: t}
}

// CTNat builds a conntrack action with NAT.
func CTNat(zone uint16, t uint8, nat conntrack.NAT) Action {
	return Action{Type: ActionCT, Zone: zone, Commit: true, Table: t, NAT: nat}
}

// PushVLAN builds a VLAN push.
func PushVLAN(vid uint16, prio uint8) Action {
	return Action{Type: ActionPushVLAN, VLAN: vid, VLANPrio: prio}
}

// PopVLAN builds a VLAN pop.
func PopVLAN() Action { return Action{Type: ActionPopVLAN} }

// SetEthSrc rewrites the source MAC.
func SetEthSrc(m hdr.MAC) Action { return Action{Type: ActionSetEthSrc, MAC: m} }

// SetEthDst rewrites the destination MAC.
func SetEthDst(m hdr.MAC) Action { return Action{Type: ActionSetEthDst, MAC: m} }

// DecTTL decrements the TTL.
func DecTTL() Action { return Action{Type: ActionDecTTL} }

// SetTunnel attaches tunnel output metadata.
func SetTunnel(cfg tunnel.Config) Action { return Action{Type: ActionSetTunnel, Tunnel: cfg} }

// TunnelPop decapsulates and re-injects with in_port = port.
func TunnelPop(port uint32) Action { return Action{Type: ActionTunnelPop, Port: port} }

// Meter applies meter id m.
func Meter(m uint32) Action { return Action{Type: ActionMeter, MeterID: m} }

// Drop ends processing.
func Drop() Action { return Action{Type: ActionDrop} }

// --- Datapath actions --------------------------------------------------------
//
// Translation compiles OpenFlow actions into this flat list, which is what
// megaflows store and what the datapath executes without consulting the
// OpenFlow tables again.

// DPActionType discriminates datapath actions.
type DPActionType int

// Datapath action types.
const (
	DPOutput DPActionType = iota
	DPCT                  // run conntrack then recirculate
	DPPushVLAN
	DPPopVLAN
	DPSetEthSrc
	DPSetEthDst
	DPDecTTL
	DPTunnelPush
	DPTunnelPop // decapsulate and reprocess with in_port = Port
	DPMeter
)

// DPAction is one datapath action.
type DPAction struct {
	Type DPActionType

	Port     uint32
	VLAN     uint16
	VLANPrio uint8
	MAC      hdr.MAC
	Zone     uint16
	Commit   bool
	NAT      conntrack.NAT
	RecircID uint32
	Tunnel   tunnel.Config
	MeterID  uint32
	CtMark   uint32
}

// String names the datapath action.
func (a DPAction) String() string {
	switch a.Type {
	case DPOutput:
		return fmt.Sprintf("out(%d)", a.Port)
	case DPCT:
		return fmt.Sprintf("ct(zone=%d,recirc=%d)", a.Zone, a.RecircID)
	case DPPushVLAN:
		return fmt.Sprintf("push_vlan(%d)", a.VLAN)
	case DPPopVLAN:
		return "pop_vlan"
	case DPSetEthSrc:
		return fmt.Sprintf("set_src(%s)", a.MAC)
	case DPSetEthDst:
		return fmt.Sprintf("set_dst(%s)", a.MAC)
	case DPDecTTL:
		return "dec_ttl"
	case DPTunnelPush:
		return fmt.Sprintf("tnl_push(vni=%d)", a.Tunnel.VNI)
	case DPTunnelPop:
		return fmt.Sprintf("tnl_pop(%d)", a.Port)
	case DPMeter:
		return fmt.Sprintf("meter(%d)", a.MeterID)
	default:
		return fmt.Sprintf("dp(%d)", int(a.Type))
	}
}
