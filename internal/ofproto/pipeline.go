package ofproto

import (
	"fmt"
	"sort"

	"ovsxdp/internal/flow"
	"ovsxdp/internal/sim"
)

// MaxTranslationDepth bounds goto chains during translation.
const MaxTranslationDepth = 64

// Megaflow is the result of slow-path translation: a wildcarded mask (the
// union of everything the pipeline examined while deciding) plus the
// concrete datapath actions. Installing (key.Apply(Mask), Mask, Actions)
// into the datapath classifier lets every packet that would have made the
// same decisions skip the OpenFlow tables entirely.
type Megaflow struct {
	Mask    flow.Mask
	Actions []DPAction
}

// Pipeline is the OpenFlow pipeline plus the recirculation registry and
// meters.
type Pipeline struct {
	tables map[uint8]*Table
	meters map[uint32]*TokenBucket

	// Recirculation: ct() allocates an id that maps back to the table
	// translation resumes in after the datapath re-injects the packet.
	recircByTable map[uint8]uint32
	recircTable   map[uint32]uint8
	nextRecirc    uint32

	// Translations counts slow-path upcalls translated.
	Translations uint64
}

// NewPipeline returns an empty pipeline.
func NewPipeline() *Pipeline {
	return &Pipeline{
		tables:        make(map[uint8]*Table),
		meters:        make(map[uint32]*TokenBucket),
		recircByTable: make(map[uint8]uint32),
		recircTable:   make(map[uint32]uint8),
		nextRecirc:    1,
	}
}

// Table returns (creating if needed) table id.
func (p *Pipeline) Table(id uint8) *Table {
	t, ok := p.tables[id]
	if !ok {
		t = NewTable(id)
		p.tables[id] = t
	}
	return t
}

// AddRule inserts a rule into its table.
func (p *Pipeline) AddRule(r *Rule) { p.Table(r.TableID).Insert(r) }

// RuleCount sums rules across tables (Table 3's "OpenFlow rules").
func (p *Pipeline) RuleCount() int {
	n := 0
	for _, t := range p.tables {
		n += t.Len()
	}
	return n
}

// TableCount returns the number of non-empty tables (Table 3's "OpenFlow
// tables").
func (p *Pipeline) TableCount() int {
	n := 0
	for _, t := range p.tables {
		if t.Len() > 0 {
			n++
		}
	}
	return n
}

// TableIDs lists non-empty table ids in order.
func (p *Pipeline) TableIDs() []uint8 {
	var ids []uint8
	for id, t := range p.tables {
		if t.Len() > 0 {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// RecircTable resolves a recirculation id to its continuation table.
func (p *Pipeline) RecircTable(id uint32) (uint8, bool) {
	t, ok := p.recircTable[id]
	return t, ok
}

func (p *Pipeline) recircIDFor(table uint8) uint32 {
	if id, ok := p.recircByTable[table]; ok {
		return id
	}
	id := p.nextRecirc
	p.nextRecirc++
	p.recircByTable[table] = id
	p.recircTable[id] = table
	return id
}

// ErrTranslation reports a pipeline translation failure.
type ErrTranslation struct{ Reason string }

func (e ErrTranslation) Error() string { return "ofproto: translation failed: " + e.Reason }

// Translate runs slow-path translation for a flow key: walk the tables from
// the key's context (table 0, or the recirculation continuation), fold
// every mask the classifiers probed into the megaflow mask, and compile the
// matched rules' actions to datapath actions. A ct() action ends the walk —
// the post-conntrack passes are translated by their own upcalls, which is
// how each Figure 8 packet ends up traversing the datapath three times.
func (p *Pipeline) Translate(key flow.Key) (Megaflow, error) {
	p.Translations++
	// Every megaflow pins the input port and recirculation id, as OVS
	// does unconditionally.
	mask := flow.NewMaskBuilder().InPort().RecircID().Build()
	var actions []DPAction

	fields := key.Unpack()
	cur := uint8(0)
	if fields.RecircID != 0 {
		t, ok := p.RecircTable(fields.RecircID)
		if !ok {
			return Megaflow{}, ErrTranslation{fmt.Sprintf("unknown recirc id %d", fields.RecircID)}
		}
		cur = t
	}

	for depth := 0; ; depth++ {
		if depth >= MaxTranslationDepth {
			return Megaflow{}, ErrTranslation{"goto chain exceeds maximum depth"}
		}
		table, ok := p.tables[cur]
		if !ok {
			// Missing table: OpenFlow table-miss, drop.
			return Megaflow{Mask: mask, Actions: actions}, nil
		}
		rule, probed, _ := table.Lookup(key)
		mask = mask.Union(probed)
		if rule == nil {
			// Table-miss: drop (NSX installs explicit low-priority
			// rules where other behaviour is wanted).
			return Megaflow{Mask: mask, Actions: nil}, nil
		}

		next, done, err := p.compile(rule, &actions, &mask)
		if err != nil {
			return Megaflow{}, err
		}
		if done {
			return Megaflow{Mask: mask, Actions: actions}, nil
		}
		cur = next
	}
}

// compile appends rule's actions to out. It returns the next table for a
// goto, or done=true when translation ends (output/drop/ct).
func (p *Pipeline) compile(rule *Rule, out *[]DPAction, mask *flow.Mask) (next uint8, done bool, err error) {
	var pendingTunnel *Action
	gotoNext := -1
	for i := range rule.Actions {
		a := &rule.Actions[i]
		switch a.Type {
		case ActionOutput:
			if pendingTunnel != nil {
				*out = append(*out, DPAction{Type: DPTunnelPush, Tunnel: pendingTunnel.Tunnel})
				pendingTunnel = nil
			}
			*out = append(*out, DPAction{Type: DPOutput, Port: a.Port})
		case ActionGoto:
			gotoNext = int(a.Table)
		case ActionCT:
			id := p.recircIDFor(a.Table)
			*out = append(*out, DPAction{
				Type: DPCT, Zone: a.Zone, Commit: a.Commit,
				NAT: a.NAT, RecircID: id, CtMark: a.CtMark,
			})
			// ct() ends this translation pass.
			return 0, true, nil
		case ActionPushVLAN:
			*out = append(*out, DPAction{Type: DPPushVLAN, VLAN: a.VLAN, VLANPrio: a.VLANPrio})
		case ActionPopVLAN:
			// Popping requires knowing a tag is present.
			*mask = mask.Union(flow.NewMaskBuilder().VLAN().Build())
			*out = append(*out, DPAction{Type: DPPopVLAN})
		case ActionSetEthSrc:
			*out = append(*out, DPAction{Type: DPSetEthSrc, MAC: a.MAC})
		case ActionSetEthDst:
			*out = append(*out, DPAction{Type: DPSetEthDst, MAC: a.MAC})
		case ActionDecTTL:
			*mask = mask.Union(flow.NewMaskBuilder().IPTTL().Build())
			*out = append(*out, DPAction{Type: DPDecTTL})
		case ActionSetTunnel:
			cfg := *a
			pendingTunnel = &cfg
		case ActionTunnelPop:
			// Decapsulation ends this pass: the inner frame is
			// re-injected and translated by its own upcall.
			*out = append(*out, DPAction{Type: DPTunnelPop, Port: a.Port})
			return 0, true, nil
		case ActionMeter:
			*out = append(*out, DPAction{Type: DPMeter, MeterID: a.MeterID})
		case ActionSetCtMark:
			// Applied by the next DPCT commit; stash in mask only.
		case ActionDrop:
			*out = nil
			return 0, true, nil
		default:
			return 0, true, ErrTranslation{fmt.Sprintf("unhandled action %v", a)}
		}
	}
	if gotoNext >= 0 {
		return uint8(gotoNext), false, nil
	}
	return 0, true, nil
}

// --- Meters -------------------------------------------------------------------

// TokenBucket is a meter: a rate limiter in packets/s or bits/s with a
// burst allowance. Section 6 notes traffic shaping is still missing from
// the userspace datapath and OVS "currently use[s] the OpenFlow meter
// action to support rate limiting".
type TokenBucket struct {
	// RatePerSec is the sustained rate (packets/s when PerPacket, else
	// bits/s).
	RatePerSec float64
	// Burst is the bucket depth, in the same unit.
	Burst float64
	// PerPacket selects packet-rate metering over bit-rate.
	PerPacket bool

	tokens float64
	last   sim.Time

	// Drops counts packets the meter rejected.
	Drops uint64
}

// SetMeter installs (or replaces) meter id.
func (p *Pipeline) SetMeter(id uint32, m *TokenBucket) {
	m.tokens = m.Burst
	p.meters[id] = m
}

// MeterAllow charges one packet of size bytes against meter id at virtual
// time now; it reports whether the packet conforms. Unknown meters allow
// everything.
func (p *Pipeline) MeterAllow(id uint32, bytes int, now sim.Time) bool {
	m, ok := p.meters[id]
	if !ok {
		return true
	}
	elapsed := now - m.last
	m.last = now
	m.tokens += elapsed.Seconds() * m.RatePerSec
	if m.tokens > m.Burst {
		m.tokens = m.Burst
	}
	cost := 1.0
	if !m.PerPacket {
		cost = float64(bytes) * 8
	}
	if m.tokens < cost {
		m.Drops++
		return false
	}
	m.tokens -= cost
	return true
}
