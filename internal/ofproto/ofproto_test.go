package ofproto

import (
	"testing"

	"ovsxdp/internal/flow"
	"ovsxdp/internal/packet/hdr"
	"ovsxdp/internal/sim"
	"ovsxdp/internal/tunnel"
)

var (
	macA = hdr.MAC{0x02, 0, 0, 0, 0, 0x0a}
	macB = hdr.MAC{0x02, 0, 0, 0, 0, 0x0b}
)

func keyWith(port uint32, dstPort uint16) flow.Key {
	return (&flow.Fields{
		InPort: port, EthSrc: macA, EthDst: macB, EthType: hdr.EtherTypeIPv4,
		IP4Src: hdr.MakeIP4(10, 0, 0, 1), IP4Dst: hdr.MakeIP4(10, 0, 0, 2),
		IPProto: hdr.IPProtoTCP, TPDst: dstPort,
	}).Pack()
}

func TestTablePriorityWins(t *testing.T) {
	tbl := NewTable(0)
	mWide := flow.NewMaskBuilder().EthType().Build()
	mNarrow := flow.NewMaskBuilder().EthType().IPProto().TPDst().Build()
	tbl.Insert(&Rule{Priority: 10, Match: NewMatch(flow.Fields{EthType: hdr.EtherTypeIPv4}, mWide),
		Actions: []Action{Output(1)}})
	tbl.Insert(&Rule{Priority: 100, Match: NewMatch(flow.Fields{EthType: hdr.EtherTypeIPv4,
		IPProto: hdr.IPProtoTCP, TPDst: 22}, mNarrow), Actions: []Action{Drop()}})

	r, _, _ := tbl.Lookup(keyWith(1, 22))
	if r == nil || r.Priority != 100 {
		t.Fatalf("ssh key matched %+v", r)
	}
	r, _, _ = tbl.Lookup(keyWith(1, 80))
	if r == nil || r.Priority != 10 {
		t.Fatalf("http key matched %+v", r)
	}
	if tbl.Len() != 2 || tbl.DistinctMasks() != 2 {
		t.Fatalf("len=%d masks=%d", tbl.Len(), tbl.DistinctMasks())
	}
}

func TestTableEarlyExitByPriority(t *testing.T) {
	tbl := NewTable(0)
	// High-priority subtable matches; the low-priority one must not be
	// probed.
	hi := flow.NewMaskBuilder().InPort().Build()
	lo := flow.NewMaskBuilder().EthType().Build()
	tbl.Insert(&Rule{Priority: 100, Match: NewMatch(flow.Fields{InPort: 1}, hi), Actions: []Action{Output(2)}})
	tbl.Insert(&Rule{Priority: 1, Match: NewMatch(flow.Fields{EthType: hdr.EtherTypeIPv4}, lo), Actions: []Action{Drop()}})
	_, _, probes := tbl.Lookup(keyWith(1, 80))
	if probes != 1 {
		t.Fatalf("probes = %d, want 1 (early exit)", probes)
	}
}

func TestTableReplaceSamePriority(t *testing.T) {
	tbl := NewTable(0)
	m := flow.NewMaskBuilder().InPort().Build()
	match := NewMatch(flow.Fields{InPort: 1}, m)
	tbl.Insert(&Rule{Priority: 5, Match: match, Actions: []Action{Output(1)}})
	tbl.Insert(&Rule{Priority: 5, Match: match, Actions: []Action{Output(9)}})
	if tbl.Len() != 1 {
		t.Fatalf("len = %d after replace", tbl.Len())
	}
	r, _, _ := tbl.Lookup(keyWith(1, 80))
	if r.Actions[0].Port != 9 {
		t.Fatal("replacement not effective")
	}
}

func TestTableRemove(t *testing.T) {
	tbl := NewTable(0)
	m := flow.NewMaskBuilder().InPort().Build()
	match := NewMatch(flow.Fields{InPort: 1}, m)
	tbl.Insert(&Rule{Priority: 5, Match: match, Actions: []Action{Output(1)}})
	if !tbl.Remove(match, 5) {
		t.Fatal("remove failed")
	}
	if tbl.Remove(match, 5) {
		t.Fatal("double remove must fail")
	}
	if tbl.Len() != 0 || tbl.DistinctMasks() != 0 {
		t.Fatal("empty subtable must be dropped")
	}
}

func TestTranslateSimpleForward(t *testing.T) {
	p := NewPipeline()
	m := flow.NewMaskBuilder().InPort().Build()
	p.AddRule(&Rule{TableID: 0, Priority: 10,
		Match: NewMatch(flow.Fields{InPort: 1}, m), Actions: []Action{Output(2)}})

	mf, err := p.Translate(keyWith(1, 80))
	if err != nil {
		t.Fatal(err)
	}
	if len(mf.Actions) != 1 || mf.Actions[0].Type != DPOutput || mf.Actions[0].Port != 2 {
		t.Fatalf("actions = %v", mf.Actions)
	}
	// The megaflow must be wildcarded: it pins in_port (probed) but not
	// the TCP port (never examined).
	probe := flow.NewMaskBuilder().TPDst().Build()
	if mf.Mask.Covers(probe) {
		t.Fatal("megaflow must not pin unexamined fields")
	}
	inport := flow.NewMaskBuilder().InPort().Build()
	if !mf.Mask.Covers(inport) {
		t.Fatal("megaflow must pin the input port")
	}
	// A different flow on the same port must satisfy the same megaflow.
	other := keyWith(1, 443)
	if other.Apply(mf.Mask) != keyWith(1, 80).Apply(mf.Mask) {
		t.Fatal("wildcarding failed: same-decision flows must share the megaflow")
	}
}

func TestTranslateGotoChain(t *testing.T) {
	p := NewPipeline()
	mIn := flow.NewMaskBuilder().InPort().Build()
	mTCP := flow.NewMaskBuilder().IPProto().Build()
	p.AddRule(&Rule{TableID: 0, Priority: 1,
		Match: NewMatch(flow.Fields{InPort: 1}, mIn), Actions: []Action{GotoTable(10)}})
	p.AddRule(&Rule{TableID: 10, Priority: 1,
		Match: NewMatch(flow.Fields{IPProto: hdr.IPProtoTCP}, mTCP), Actions: []Action{Output(5)}})

	mf, err := p.Translate(keyWith(1, 80))
	if err != nil {
		t.Fatal(err)
	}
	if len(mf.Actions) != 1 || mf.Actions[0].Port != 5 {
		t.Fatalf("actions = %v", mf.Actions)
	}
	// Both tables' probes contribute to the mask.
	if !mf.Mask.Covers(mTCP) {
		t.Fatal("mask must include table 10's probe")
	}
}

func TestTranslateTableMissDrops(t *testing.T) {
	p := NewPipeline()
	p.Table(0) // empty table
	mf, err := p.Translate(keyWith(1, 80))
	if err != nil {
		t.Fatal(err)
	}
	if len(mf.Actions) != 0 {
		t.Fatalf("miss actions = %v", mf.Actions)
	}
}

func TestTranslateCTStopsAndRegistersRecirc(t *testing.T) {
	p := NewPipeline()
	mIn := flow.NewMaskBuilder().InPort().Build()
	p.AddRule(&Rule{TableID: 0, Priority: 1,
		Match:   NewMatch(flow.Fields{InPort: 1}, mIn),
		Actions: []Action{CT(7, false, 20), Output(99)}})

	mf, err := p.Translate(keyWith(1, 80))
	if err != nil {
		t.Fatal(err)
	}
	if len(mf.Actions) != 1 || mf.Actions[0].Type != DPCT || mf.Actions[0].Zone != 7 {
		t.Fatalf("actions = %v (output after ct must not leak into this pass)", mf.Actions)
	}
	recircID := mf.Actions[0].RecircID
	if recircID == 0 {
		t.Fatal("recirc id not allocated")
	}
	if tbl, ok := p.RecircTable(recircID); !ok || tbl != 20 {
		t.Fatalf("recirc registry = %d,%v", tbl, ok)
	}

	// Second pass: a recirculated key translates from table 20.
	mEst := flow.NewMaskBuilder().CtState(0xff).Build()
	p.AddRule(&Rule{TableID: 20, Priority: 1,
		Match:   NewMatch(flow.Fields{CtState: 0x05}, mEst), // trk|est
		Actions: []Action{Output(3)}})
	f := keyWith(1, 80).Unpack()
	f.RecircID = recircID
	f.CtState = 0x05
	mf2, err := p.Translate(f.Pack())
	if err != nil {
		t.Fatal(err)
	}
	if len(mf2.Actions) != 1 || mf2.Actions[0].Port != 3 {
		t.Fatalf("recirc pass actions = %v", mf2.Actions)
	}
}

func TestTranslateUnknownRecircFails(t *testing.T) {
	p := NewPipeline()
	f := keyWith(1, 80).Unpack()
	f.RecircID = 999
	if _, err := p.Translate(f.Pack()); err == nil {
		t.Fatal("unknown recirc id must fail translation")
	}
}

func TestTranslateGotoLoopBounded(t *testing.T) {
	p := NewPipeline()
	mIn := flow.NewMaskBuilder().InPort().Build()
	// Table 0 -> table 0 forever.
	p.AddRule(&Rule{TableID: 0, Priority: 1,
		Match: NewMatch(flow.Fields{InPort: 1}, mIn), Actions: []Action{GotoTable(0)}})
	if _, err := p.Translate(keyWith(1, 80)); err == nil {
		t.Fatal("infinite goto chain must fail translation")
	}
}

func TestTranslateTunnelOutput(t *testing.T) {
	p := NewPipeline()
	mIn := flow.NewMaskBuilder().InPort().Build()
	p.AddRule(&Rule{TableID: 0, Priority: 1,
		Match: NewMatch(flow.Fields{InPort: 1}, mIn),
		Actions: []Action{
			SetTunnel(tunnelConfigForTest()),
			Output(100),
		}})
	mf, err := p.Translate(keyWith(1, 80))
	if err != nil {
		t.Fatal(err)
	}
	if len(mf.Actions) != 2 || mf.Actions[0].Type != DPTunnelPush || mf.Actions[1].Type != DPOutput {
		t.Fatalf("actions = %v", mf.Actions)
	}
	if mf.Actions[0].Tunnel.VNI != 4096 {
		t.Fatal("tunnel config lost")
	}
}

func TestTranslateVLANAndRewrites(t *testing.T) {
	p := NewPipeline()
	mIn := flow.NewMaskBuilder().InPort().Build()
	p.AddRule(&Rule{TableID: 0, Priority: 1,
		Match: NewMatch(flow.Fields{InPort: 1}, mIn),
		Actions: []Action{
			PopVLAN(), SetEthDst(macB), DecTTL(), PushVLAN(100, 0), Output(4),
		}})
	mf, err := p.Translate(keyWith(1, 80))
	if err != nil {
		t.Fatal(err)
	}
	want := []DPActionType{DPPopVLAN, DPSetEthDst, DPDecTTL, DPPushVLAN, DPOutput}
	if len(mf.Actions) != len(want) {
		t.Fatalf("actions = %v", mf.Actions)
	}
	for i, w := range want {
		if mf.Actions[i].Type != w {
			t.Fatalf("action %d = %v, want %v", i, mf.Actions[i], w)
		}
	}
	// DecTTL unwildcards the TTL; PopVLAN unwildcards the VLAN.
	if !mf.Mask.Covers(flow.NewMaskBuilder().IPTTL().Build()) {
		t.Fatal("dec_ttl must pin the TTL")
	}
	if !mf.Mask.Covers(flow.NewMaskBuilder().VLAN().Build()) {
		t.Fatal("pop_vlan must pin the VLAN")
	}
}

func TestMeterTokenBucket(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewPipeline()
	p.SetMeter(1, &TokenBucket{RatePerSec: 1000, Burst: 10, PerPacket: true})

	// Burst of 10 passes, the 11th at t=0 drops.
	for i := 0; i < 10; i++ {
		if !p.MeterAllow(1, 64, eng.Now()) {
			t.Fatalf("packet %d should conform", i)
		}
	}
	if p.MeterAllow(1, 64, eng.Now()) {
		t.Fatal("burst exhausted: must drop")
	}
	// After 10ms, 10 more tokens accumulated.
	eng.Schedule(10*sim.Millisecond, func() {})
	eng.Run()
	allowed := 0
	for i := 0; i < 20; i++ {
		if p.MeterAllow(1, 64, eng.Now()) {
			allowed++
		}
	}
	if allowed != 10 {
		t.Fatalf("allowed %d after refill, want 10", allowed)
	}
	// Unknown meters pass everything.
	if !p.MeterAllow(99, 64, eng.Now()) {
		t.Fatal("unknown meter must allow")
	}
}

func TestPipelineCounts(t *testing.T) {
	p := NewPipeline()
	mIn := flow.NewMaskBuilder().InPort().Build()
	for table := uint8(0); table < 5; table++ {
		for i := uint32(1); i <= 10; i++ {
			p.AddRule(&Rule{TableID: table, Priority: int(i),
				Match:   NewMatch(flow.Fields{InPort: i}, mIn),
				Actions: []Action{Output(i)}})
		}
	}
	if p.RuleCount() != 50 {
		t.Fatalf("rules = %d", p.RuleCount())
	}
	if p.TableCount() != 5 {
		t.Fatalf("tables = %d", p.TableCount())
	}
	if len(p.TableIDs()) != 5 {
		t.Fatal("table ids wrong")
	}
}

func tunnelConfigForTest() tunnel.Config {
	return tunnel.Config{Kind: tunnel.Geneve,
		LocalIP:  hdr.MakeIP4(172, 16, 0, 1),
		RemoteIP: hdr.MakeIP4(172, 16, 0, 2),
		VNI:      4096}
}
