package measure

import (
	"math"
	"testing"

	"ovsxdp/internal/sim"
)

// fakeSystem sustains capacity pps losslessly and drops everything beyond.
func fakeSystem(capacity float64) Probe {
	return func(rate float64) ProbeResult {
		offered := uint64(rate / 100) // arbitrary window scaling
		if rate <= capacity {
			return ProbeResult{Offered: offered, Delivered: offered}
		}
		delivered := uint64(capacity / 100)
		return ProbeResult{Offered: offered, Delivered: delivered, Dropped: offered - delivered}
	}
}

func TestLosslessRateConverges(t *testing.T) {
	cfg := SearchConfig{LoPPS: 1e4, HiPPS: 20e6, LossTolerance: 0, Iterations: 20}
	rate, res, found := LosslessRate(cfg, fakeSystem(7.1e6))
	if !found {
		t.Fatal("a sustainable rate exists in the bracket")
	}
	if math.Abs(rate-7.1e6) > 0.02e6 {
		t.Fatalf("converged to %.3f Mpps, want 7.1", Mpps(rate))
	}
	if res.Dropped != 0 {
		t.Fatal("result trial must be lossless")
	}
}

func TestLosslessRateWholeBracketSustainable(t *testing.T) {
	cfg := SearchConfig{LoPPS: 1e4, HiPPS: 5e6, Iterations: 12}
	rate, _, found := LosslessRate(cfg, fakeSystem(50e6))
	if !found || rate != 5e6 {
		t.Fatalf("rate = %v found = %v, want the bracket top", rate, found)
	}
}

// Regression: an empty bracket used to come back as (cfg.LoPPS, fresh
// lossless-looking probe), indistinguishable from "floor sustainable". Now
// found must be false, the rate zero, and the reported trial a failed one.
func TestLosslessRateNothingSustainable(t *testing.T) {
	probes := 0
	probe := func(rate float64) ProbeResult {
		probes++
		return ProbeResult{Offered: 100, Delivered: 0, Dropped: 100}
	}
	cfg := SearchConfig{LoPPS: 1e4, HiPPS: 1e6, Iterations: 8}
	rate, res, found := LosslessRate(cfg, probe)
	if found {
		t.Fatal("found = true with nothing sustainable")
	}
	if rate != 0 {
		t.Fatalf("rate = %v, want 0 when nothing is sustainable", rate)
	}
	if res.Dropped == 0 {
		t.Fatal("reported trial must be a real failed probe, not a synthetic lossless one")
	}
	if probes != 1+cfg.Iterations {
		t.Fatalf("ran %d probes, want quick-accept + %d bisections with no extra floor probe",
			probes, cfg.Iterations)
	}
}

// Regression: the failed quick-accept probe used to be discarded; its loss
// fraction now tightens the bracket, so the first bisection midpoint must
// sit below (lo+hi)/2.
func TestLosslessRateReusesFailedQuickAccept(t *testing.T) {
	var rates []float64
	capacity := 2e6
	probe := func(rate float64) ProbeResult {
		rates = append(rates, rate)
		return fakeSystem(capacity)(rate)
	}
	cfg := SearchConfig{LoPPS: 1e4, HiPPS: 20e6, Iterations: 12}
	rate, _, found := LosslessRate(cfg, probe)
	if !found || math.Abs(rate-capacity) > 0.02e6 {
		t.Fatalf("rate = %.3f Mpps found = %v, want ~%.1f", Mpps(rate), found, Mpps(capacity))
	}
	if len(rates) < 2 || rates[0] != cfg.HiPPS {
		t.Fatalf("first probe must be the quick accept at hi, got %v", rates)
	}
	// The hi probe lost 90% of its load, so the bracket should shrink to
	// about hi*0.1*1.1 before bisection; an untightened search would probe
	// (lo+hi)/2 = 10 Mpps first.
	naiveMid := (cfg.LoPPS + cfg.HiPPS) / 2
	if rates[1] >= naiveMid {
		t.Fatalf("first bisection at %.2f Mpps; failed hi probe was not reused to tighten the bracket",
			Mpps(rates[1]))
	}
}

func TestLossToleranceAllowsWarmupDrops(t *testing.T) {
	// A system with a constant tiny drop count must still find its rate.
	probe := func(rate float64) ProbeResult {
		offered := uint64(rate / 100)
		drops := uint64(1) // one warmup drop regardless
		if rate > 3e6 {
			drops = offered / 2
		}
		return ProbeResult{Offered: offered, Delivered: offered - drops, Dropped: drops}
	}
	cfg := SearchConfig{LoPPS: 1e5, HiPPS: 10e6, LossTolerance: 0.01, Iterations: 16}
	rate, _, _ := LosslessRate(cfg, probe)
	if math.Abs(rate-3e6) > 0.05e6 {
		t.Fatalf("rate = %.3f Mpps, want ~3.0", Mpps(rate))
	}
}

func TestProbeResultLossFraction(t *testing.T) {
	r := ProbeResult{Offered: 100, Dropped: 5}
	if r.LossFraction() != 0.05 {
		t.Fatalf("loss = %v", r.LossFraction())
	}
	if (ProbeResult{}).LossFraction() != 0 {
		t.Fatal("zero offered must not divide by zero")
	}
}

func TestFormatRow(t *testing.T) {
	var u sim.Usage
	u[sim.User] = 1.0
	if FormatRow("afxdp", 7.1e6, u) == "" {
		t.Fatal("empty row")
	}
}
