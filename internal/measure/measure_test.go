package measure

import (
	"math"
	"testing"

	"ovsxdp/internal/sim"
)

// fakeSystem sustains capacity pps losslessly and drops everything beyond.
func fakeSystem(capacity float64) Probe {
	return func(rate float64) ProbeResult {
		offered := uint64(rate / 100) // arbitrary window scaling
		if rate <= capacity {
			return ProbeResult{Offered: offered, Delivered: offered}
		}
		delivered := uint64(capacity / 100)
		return ProbeResult{Offered: offered, Delivered: delivered, Dropped: offered - delivered}
	}
}

func TestLosslessRateConverges(t *testing.T) {
	cfg := SearchConfig{LoPPS: 1e4, HiPPS: 20e6, LossTolerance: 0, Iterations: 20}
	rate, res := LosslessRate(cfg, fakeSystem(7.1e6))
	if math.Abs(rate-7.1e6) > 0.02e6 {
		t.Fatalf("converged to %.3f Mpps, want 7.1", Mpps(rate))
	}
	if res.Dropped != 0 {
		t.Fatal("result trial must be lossless")
	}
}

func TestLosslessRateWholeBracketSustainable(t *testing.T) {
	cfg := SearchConfig{LoPPS: 1e4, HiPPS: 5e6, Iterations: 12}
	rate, _ := LosslessRate(cfg, fakeSystem(50e6))
	if rate != 5e6 {
		t.Fatalf("rate = %v, want the bracket top", rate)
	}
}

func TestLosslessRateNothingSustainable(t *testing.T) {
	probe := func(rate float64) ProbeResult {
		return ProbeResult{Offered: 100, Delivered: 0, Dropped: 100}
	}
	cfg := SearchConfig{LoPPS: 1e4, HiPPS: 1e6, Iterations: 8}
	rate, _ := LosslessRate(cfg, probe)
	if rate != 1e4 {
		t.Fatalf("rate = %v, want the floor", rate)
	}
}

func TestLossToleranceAllowsWarmupDrops(t *testing.T) {
	// A system with a constant tiny drop count must still find its rate.
	probe := func(rate float64) ProbeResult {
		offered := uint64(rate / 100)
		drops := uint64(1) // one warmup drop regardless
		if rate > 3e6 {
			drops = offered / 2
		}
		return ProbeResult{Offered: offered, Delivered: offered - drops, Dropped: drops}
	}
	cfg := SearchConfig{LoPPS: 1e5, HiPPS: 10e6, LossTolerance: 0.01, Iterations: 16}
	rate, _ := LosslessRate(cfg, probe)
	if math.Abs(rate-3e6) > 0.05e6 {
		t.Fatalf("rate = %.3f Mpps, want ~3.0", Mpps(rate))
	}
}

func TestProbeResultLossFraction(t *testing.T) {
	r := ProbeResult{Offered: 100, Dropped: 5}
	if r.LossFraction() != 0.05 {
		t.Fatalf("loss = %v", r.LossFraction())
	}
	if (ProbeResult{}).LossFraction() != 0 {
		t.Fatal("zero offered must not divide by zero")
	}
}

func TestFormatRow(t *testing.T) {
	var u sim.Usage
	u[sim.User] = 1.0
	if FormatRow("afxdp", 7.1e6, u) == "" {
		t.Fatal("empty row")
	}
}
