// Package measure implements the paper's measurement methodology: the
// maximum-lossless-rate binary search of Section 5.2 ("we measured the
// maximum lossless packet rate and the corresponding CPU utilization") and
// helpers for reporting CPU usage in Table 4's hyperthread units.
package measure

import (
	"fmt"

	"ovsxdp/internal/sim"
)

// ProbeResult is one offered-load trial.
type ProbeResult struct {
	Offered   uint64
	Delivered uint64
	Dropped   uint64
	Usage     sim.Usage
}

// LossFraction returns dropped/offered.
func (r ProbeResult) LossFraction() float64 {
	if r.Offered == 0 {
		return 0
	}
	return float64(r.Dropped) / float64(r.Offered)
}

// Probe runs one trial at ratePPS and reports delivery/drops/CPU over the
// measurement window. Each call must build a fresh testbed so trials are
// independent.
type Probe func(ratePPS float64) ProbeResult

// SearchConfig tunes the lossless search.
type SearchConfig struct {
	// LoPPS/HiPPS bracket the search.
	LoPPS, HiPPS float64
	// LossTolerance is the drop fraction treated as lossless (TRex-style
	// measurements tolerate a handful of warmup drops).
	LossTolerance float64
	// Iterations of bisection (12 gives ~0.05% precision).
	Iterations int
}

// DefaultSearch brackets 10 kpps to 40 Mpps.
func DefaultSearch() SearchConfig {
	return SearchConfig{LoPPS: 1e4, HiPPS: 40e6, LossTolerance: 0.001, Iterations: 12}
}

// LosslessRate bisects to the maximum rate the system sustains without
// loss, returning that rate and the trial measured at it.
func LosslessRate(cfg SearchConfig, probe Probe) (float64, ProbeResult) {
	lo, hi := cfg.LoPPS, cfg.HiPPS
	if cfg.Iterations <= 0 {
		cfg.Iterations = 12
	}
	// Quick accept: the whole bracket may be sustainable.
	best := probe(hi)
	if best.LossFraction() <= cfg.LossTolerance && best.Delivered > 0 {
		return hi, best
	}
	var bestRate float64
	var bestRes ProbeResult
	ok := false
	for i := 0; i < cfg.Iterations; i++ {
		mid := (lo + hi) / 2
		res := probe(mid)
		if res.LossFraction() <= cfg.LossTolerance && res.Delivered > 0 {
			bestRate, bestRes, ok = mid, res, true
			lo = mid
		} else {
			hi = mid
		}
	}
	if !ok {
		// Nothing sustainable in the bracket; report the floor trial.
		return cfg.LoPPS, probe(cfg.LoPPS)
	}
	return bestRate, bestRes
}

// Mpps formats packets/s as the paper's Mpps.
func Mpps(pps float64) float64 { return pps / 1e6 }

// FormatRow renders "rate Mpps, usage" like the Figure 9 bar + Table 4 row
// pair.
func FormatRow(name string, ratePPS float64, usage sim.Usage) string {
	return fmt.Sprintf("%-28s %6.2f Mpps   %s", name, Mpps(ratePPS), usage)
}
