// Package measure implements the paper's measurement methodology: the
// maximum-lossless-rate binary search of Section 5.2 ("we measured the
// maximum lossless packet rate and the corresponding CPU utilization") and
// helpers for reporting CPU usage in Table 4's hyperthread units.
package measure

import (
	"fmt"

	"ovsxdp/internal/sim"
)

// ProbeResult is one offered-load trial.
type ProbeResult struct {
	Offered   uint64
	Delivered uint64
	Dropped   uint64
	Usage     sim.Usage
}

// LossFraction returns dropped/offered.
func (r ProbeResult) LossFraction() float64 {
	if r.Offered == 0 {
		return 0
	}
	return float64(r.Dropped) / float64(r.Offered)
}

// Probe runs one trial at ratePPS and reports delivery/drops/CPU over the
// measurement window. Each call must build a fresh testbed so trials are
// independent.
type Probe func(ratePPS float64) ProbeResult

// SearchConfig tunes the lossless search.
type SearchConfig struct {
	// LoPPS/HiPPS bracket the search.
	LoPPS, HiPPS float64
	// LossTolerance is the drop fraction treated as lossless (TRex-style
	// measurements tolerate a handful of warmup drops).
	LossTolerance float64
	// Iterations of bisection (12 gives ~0.05% precision).
	Iterations int
}

// DefaultSearch brackets 10 kpps to 40 Mpps.
func DefaultSearch() SearchConfig {
	return SearchConfig{LoPPS: 1e4, HiPPS: 40e6, LossTolerance: 0.001, Iterations: 12}
}

// LosslessRate bisects to the maximum rate the system sustains without
// loss. It returns that rate, the trial measured at it, and whether any
// rate in the bracket was sustainable; when found is false the rate is 0
// and the trial is the failed probe closest to the floor (so callers still
// see what the system did, without mistaking it for a lossless point).
func LosslessRate(cfg SearchConfig, probe Probe) (rate float64, res ProbeResult, found bool) {
	lo, hi := cfg.LoPPS, cfg.HiPPS
	if cfg.Iterations <= 0 {
		cfg.Iterations = 12
	}
	// Quick accept: the whole bracket may be sustainable.
	hiRes := probe(hi)
	if hiRes.LossFraction() <= cfg.LossTolerance && hiRes.Delivered > 0 {
		return hi, hiRes, true
	}
	// The failed probe is not wasted: its loss fraction bounds the
	// sustainable rate at roughly hi*(1-loss), so shrink the bracket to
	// that (plus headroom) before bisecting.
	lastFail := hiRes
	if f := hiRes.LossFraction(); f > 0 {
		if bound := hi * (1 - f) * 1.1; bound > lo && bound < hi {
			hi = bound
		}
	}
	var bestRate float64
	var bestRes ProbeResult
	for i := 0; i < cfg.Iterations; i++ {
		mid := (lo + hi) / 2
		r := probe(mid)
		if r.LossFraction() <= cfg.LossTolerance && r.Delivered > 0 {
			bestRate, bestRes, found = mid, r, true
			lo = mid
		} else {
			lastFail = r
			hi = mid
		}
	}
	if !found {
		// Nothing sustainable in the bracket: report the lowest failed
		// trial rather than pretending the floor was lossless.
		return 0, lastFail, false
	}
	return bestRate, bestRes, true
}

// Mpps formats packets/s as the paper's Mpps.
func Mpps(pps float64) float64 { return pps / 1e6 }

// FormatRow renders "rate Mpps, usage" like the Figure 9 bar + Table 4 row
// pair.
func FormatRow(name string, ratePPS float64, usage sim.Usage) string {
	return fmt.Sprintf("%-28s %6.2f Mpps   %s", name, Mpps(ratePPS), usage)
}
