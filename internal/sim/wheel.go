package sim

import "math/bits"

// The event queue is a hierarchical timer wheel over a slab of typed event
// records, with a small sorted "near" ring holding the imminent horizon.
//
// The previous implementation was a container/heap of closures: every
// ScheduleAt paid an interface boxing allocation in heap.Push plus O(log n)
// comparisons, and rearming callbacks (PMD iterate, NAPI poll) allocated a
// fresh method-value closure per event. This structure allocates nothing in
// steady state: records live in a free-listed slab, Timers bind their
// callback once, and ScheduleArg threads a pointer-sized argument through a
// pre-bound function without capturing.
//
// Determinism contract: events are delivered in exactly the same
// (at, seq) order as the heap — seq increments once per schedule call, the
// near ring is kept sorted by (at, seq), and the wheel only feeds the near
// ring whole level-0 slots at a time (sorted on entry), so all same-seed
// outputs are byte-identical to the heap implementation's.
//
// Geometry: level-0 slots are 2^10 ns (~1 µs) wide, each level is 256 slots,
// and three levels cover ~17 s of lookahead; anything beyond sits in an
// unsorted far list whose minimum is tracked. Invariants:
//
//   - every live record with at < horizon is in the near ring (sorted);
//   - every record in a wheel level or the far list has at >= horizon;
//   - refill() only runs when the near ring is empty, so the horizon may
//     jump to the earliest remaining event time.
const (
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 3
	// shift0 is the log2 of the level-0 slot width in nanoseconds.
	shift0 = 10
)

// evRecord is one scheduled event in the slab.
type evRecord struct {
	at  Time
	seq uint64
	// fn is the no-argument callback (one-shot closures, Timer firings).
	fn func()
	// argFn/arg are the typed-callback form used by ScheduleArg: a
	// pre-bound function plus a pointer-sized argument, so per-event
	// scheduling captures nothing.
	argFn func(any)
	arg   any
	// timer backlinks to the owning Timer so firing disarms it.
	timer *Timer
	// next chains records within a wheel slot or on the free list.
	next int32
	// dead marks a cancelled record awaiting reclamation.
	dead bool
}

// wheelLevel is one ring of 256 slots; chains are unordered (sorted when a
// slot is flushed to the near ring).
type wheelLevel struct {
	slots  [wheelSlots]int32
	bitmap [wheelSlots / 64]uint64
	count  int
}

func (w *wheelLevel) push(slot int, slab []evRecord, idx int32) {
	slab[idx].next = w.slots[slot]
	w.slots[slot] = idx
	w.bitmap[slot>>6] |= 1 << uint(slot&63)
	w.count++
}

// take removes and returns a slot's chain head.
func (w *wheelLevel) take(slot int) int32 {
	head := w.slots[slot]
	w.slots[slot] = -1
	w.bitmap[slot>>6] &^= 1 << uint(slot&63)
	return head
}

// earliestOffset returns the circular distance from startBit to the first
// occupied slot, searching startBit, startBit+1, ... mod 256. The caller
// guarantees the level is non-empty.
func (w *wheelLevel) earliestOffset(startBit int) int {
	const words = wheelSlots / 64
	wi := startBit >> 6
	// First word: bits at and above startBit.
	if word := w.bitmap[wi] &^ ((1 << uint(startBit&63)) - 1); word != 0 {
		return wi<<6 + bits.TrailingZeros64(word) - startBit
	}
	for k := 1; k < words; k++ {
		i := (wi + k) & (words - 1)
		if word := w.bitmap[i]; word != 0 {
			off := i<<6 + bits.TrailingZeros64(word) - startBit
			if off < 0 {
				off += wheelSlots
			}
			return off
		}
	}
	// Wrapped back to the start word: bits below startBit.
	word := w.bitmap[wi] & ((1 << uint(startBit&63)) - 1)
	return wi<<6 + bits.TrailingZeros64(word) - startBit + wheelSlots
}

// evQueue is the full event structure.
type evQueue struct {
	slab    []evRecord
	freeTop int32

	// near is the sorted imminent ring, consumed from nearHead.
	near     []int32
	nearHead int
	// horizon bounds the near ring: live events below it are in near.
	horizon Time

	levels [wheelLevels]wheelLevel

	// far holds events beyond the top level's window, unsorted.
	far    []int32
	farMin Time

	// count is records resident anywhere (including cancelled ones not
	// yet reclaimed); live excludes cancelled records.
	count int
	live  int
}

func newEvQueue() *evQueue {
	q := &evQueue{freeTop: -1}
	for l := range q.levels {
		for s := range q.levels[l].slots {
			q.levels[l].slots[s] = -1
		}
	}
	return q
}

// alloc takes a record from the free list or grows the slab.
func (q *evQueue) alloc() int32 {
	if q.freeTop >= 0 {
		idx := q.freeTop
		q.freeTop = q.slab[idx].next
		return idx
	}
	q.slab = append(q.slab, evRecord{})
	return int32(len(q.slab) - 1)
}

// freeRec clears a record's references and returns it to the free list.
func (q *evQueue) freeRec(idx int32) {
	r := &q.slab[idx]
	r.fn = nil
	r.argFn = nil
	r.arg = nil
	r.timer = nil
	r.dead = false
	r.next = q.freeTop
	q.freeTop = idx
	q.count--
}

// insert registers a freshly filled record (count accounting plus
// placement).
func (q *evQueue) insert(idx int32) {
	q.count++
	q.live++
	q.place(idx)
}

// place files a record into the near ring, a wheel level, or the far list
// according to its timestamp relative to the horizon.
func (q *evQueue) place(idx int32) {
	at := q.slab[idx].at
	if at < q.horizon {
		q.nearInsert(idx)
		return
	}
	for l := 0; l < wheelLevels; l++ {
		shift := uint(shift0 + l*wheelBits)
		if uint64(at>>shift)-uint64(q.horizon>>shift) < wheelSlots {
			q.levels[l].push(int((at>>shift)&wheelMask), q.slab, idx)
			return
		}
	}
	if len(q.far) == 0 || at < q.farMin {
		q.farMin = at
	}
	q.far = append(q.far, idx)
}

// nearInsert adds a record to the sorted near ring (binary search; equal
// timestamps order by seq, and seq is monotonic, so a new event lands after
// existing equal-time ones).
func (q *evQueue) nearInsert(idx int32) {
	r := &q.slab[idx]
	lo, hi := q.nearHead, len(q.near)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		m := &q.slab[q.near[mid]]
		if m.at < r.at || (m.at == r.at && m.seq < r.seq) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	q.near = append(q.near, 0)
	copy(q.near[lo+1:], q.near[lo:])
	q.near[lo] = idx
}

// next pops the earliest live record, refilling the near ring from the
// wheel as needed. Returns -1 when no events remain. The caller owns the
// returned record and must freeRec it.
func (q *evQueue) next() int32 {
	for {
		for q.nearHead < len(q.near) {
			idx := q.near[q.nearHead]
			q.nearHead++
			if q.nearHead == len(q.near) {
				q.near = q.near[:0]
				q.nearHead = 0
			}
			if q.slab[idx].dead {
				q.freeRec(idx)
				continue
			}
			return idx
		}
		if q.count == 0 {
			return -1
		}
		q.refill()
	}
}

// peek returns the earliest pending timestamp without consuming the event.
func (q *evQueue) peek() (Time, bool) {
	for {
		for q.nearHead < len(q.near) {
			idx := q.near[q.nearHead]
			if !q.slab[idx].dead {
				return q.slab[idx].at, true
			}
			q.freeRec(idx)
			q.nearHead++
			if q.nearHead == len(q.near) {
				q.near = q.near[:0]
				q.nearHead = 0
			}
		}
		if q.count == 0 {
			return 0, false
		}
		q.refill()
	}
}

// refill advances the wheel by one step: drain the far list, cascade a
// higher-level slot, or flush the earliest level-0 slot into the near ring.
// Only called with the near ring empty, so the horizon may move freely up
// to the earliest remaining event.
func (q *evQueue) refill() {
	// Candidate start times: the far minimum and each level's earliest
	// occupied slot start. Ties prefer the far list, then higher levels,
	// so members scatter downward before a lower slot is flushed.
	const winnerFar = -1
	winner := -2
	var m Time
	if len(q.far) > 0 {
		winner, m = winnerFar, q.farMin
	}
	for l := wheelLevels - 1; l >= 0; l-- {
		if q.levels[l].count == 0 {
			continue
		}
		shift := uint(shift0 + l*wheelBits)
		frontier := q.horizon >> shift
		off := q.levels[l].earliestOffset(int(frontier & wheelMask))
		t := (frontier + Time(off)) << shift
		if winner == -2 || t < m {
			winner, m = l, t
		}
	}
	switch {
	case winner == -2:
		// Only cancelled records can remain; they live in near and are
		// reclaimed by the pop loop. Nothing to refill.
	case winner == winnerFar:
		// The far list holds the minimum: jump the horizon to it and
		// re-place everything (the minimum record is guaranteed to land
		// in level 0).
		if m > q.horizon {
			q.horizon = m
		}
		q.drainFar()
	case winner == 0:
		end := m + (1 << shift0)
		if len(q.far) > 0 && q.farMin < end {
			// A far event falls inside the slot about to be flushed:
			// fold the far list into the wheel first (no horizon
			// move), then re-evaluate.
			q.drainFar()
			return
		}
		q.flushLevel0(int((m >> shift0) & wheelMask))
		q.horizon = end
	default:
		// Cascade the winning higher-level slot: advance the horizon to
		// its start (safe: it is the global minimum and near is empty),
		// then re-place members — each lands in a lower level.
		if m > q.horizon {
			q.horizon = m
		}
		l := winner
		shift := uint(shift0 + l*wheelBits)
		idx := q.levels[l].take(int((m >> shift) & wheelMask))
		for idx >= 0 {
			nxt := q.slab[idx].next
			q.levels[l].count--
			if q.slab[idx].dead {
				q.freeRec(idx)
			} else {
				q.place(idx)
			}
			idx = nxt
		}
	}
}

// drainFar re-places every far-list record against the current horizon.
func (q *evQueue) drainFar() {
	list := q.far
	q.far = q.far[:0]
	q.farMin = 0
	// Collect survivors back via place(); iterate over the detached list.
	for _, idx := range list {
		if q.slab[idx].dead {
			q.freeRec(idx)
			continue
		}
		q.place(idx)
	}
}

// flushLevel0 moves one level-0 slot's chain into the (empty) near ring and
// sorts it by (at, seq).
func (q *evQueue) flushLevel0(slot int) {
	idx := q.levels[0].take(slot)
	for idx >= 0 {
		nxt := q.slab[idx].next
		q.levels[0].count--
		if q.slab[idx].dead {
			q.freeRec(idx)
		} else {
			q.near = append(q.near, idx)
		}
		idx = nxt
	}
	// Insertion sort: slots hold few events and chains arrive in roughly
	// reverse scheduling order; avoids sort.Slice's closure allocation.
	near, slab := q.near, q.slab
	for i := 1; i < len(near); i++ {
		x := near[i]
		at, seq := slab[x].at, slab[x].seq
		j := i - 1
		for j >= 0 && (slab[near[j]].at > at || (slab[near[j]].at == at && slab[near[j]].seq > seq)) {
			near[j+1] = near[j]
			j--
		}
		near[j+1] = x
	}
}
