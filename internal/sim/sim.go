// Package sim provides the deterministic discrete-event simulation engine
// that underpins every experiment in this repository.
//
// The paper's evaluation measures nanosecond-scale packet-processing paths on
// real hardware. Timing real Go code at that scale is unreliable (garbage
// collection, scheduler noise), so instead the datapaths in this repository
// execute their real data-structure logic while *charging* calibrated costs
// in virtual nanoseconds to simulated CPUs. The engine orders all work on a
// single virtual clock, which makes every run bit-for-bit reproducible.
//
// The engine is intentionally single-goroutine: events run one at a time in
// timestamp order (ties broken by scheduling order), so simulated code needs
// no locking and experiments are deterministic for a given seed.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. Durations are also expressed as Time.
type Time int64

// Common durations, mirroring time.Duration conventions.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts t to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String formats the time with an adaptive unit, e.g. "1.5ms".
func (t Time) String() string {
	switch abs := math.Abs(float64(t)); {
	case abs >= float64(Second):
		return fmt.Sprintf("%.3fs", t.Seconds())
	case abs >= float64(Millisecond):
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case abs >= float64(Microsecond):
		return fmt.Sprintf("%.3fus", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among events with equal timestamps
	fn  func()
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Engine is a discrete-event simulator with a virtual clock.
//
// An Engine also owns the simulation's CPUs and its deterministic random
// number generator, so that a single seed fully determines an experiment.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool
	cpus    []*CPU
	rng     *Rand
}

// NewEngine returns an engine whose clock starts at zero and whose random
// stream is derived from seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRand(seed)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *Rand { return e.rng }

// Schedule runs fn after delay d. A negative delay is treated as zero.
func (e *Engine) Schedule(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.ScheduleAt(e.now+d, fn)
}

// ScheduleAt runs fn at absolute virtual time t. Scheduling in the past is an
// error in the simulation logic and panics to surface the bug immediately.
func (e *Engine) ScheduleAt(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// Run executes events until none remain or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		ev.fn()
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t. Events scheduled beyond t remain pending.
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		if e.events[0].at > t {
			break
		}
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		ev.fn()
	}
	if e.now < t {
		e.now = t
	}
}

// Stop halts Run or RunUntil after the current event completes. Pending
// events are retained and a subsequent Run resumes them.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of events waiting to run.
func (e *Engine) Pending() int { return len(e.events) }

// NewCPU allocates a simulated CPU (one hardware hyperthread) and registers
// it with the engine for utilization reporting.
func (e *Engine) NewCPU(name string) *CPU {
	c := &CPU{engine: e, id: len(e.cpus), name: name}
	e.cpus = append(e.cpus, c)
	return c
}

// CPUs returns all CPUs created on this engine, in creation order.
func (e *Engine) CPUs() []*CPU { return e.cpus }

// CPUReport sums busy time per category across all CPUs and divides by the
// elapsed window, yielding "units of a hyperthread" exactly as the paper's
// Table 4 reports CPU consumption.
func (e *Engine) CPUReport(elapsed Time) Usage {
	var u Usage
	if elapsed <= 0 {
		return u
	}
	for _, c := range e.cpus {
		for cat := Category(0); cat < NumCategories; cat++ {
			u[cat] += float64(c.busy[cat]) / float64(elapsed)
		}
	}
	return u
}
