// Package sim provides the deterministic discrete-event simulation engine
// that underpins every experiment in this repository.
//
// The paper's evaluation measures nanosecond-scale packet-processing paths on
// real hardware. Timing real Go code at that scale is unreliable (garbage
// collection, scheduler noise), so instead the datapaths in this repository
// execute their real data-structure logic while *charging* calibrated costs
// in virtual nanoseconds to simulated CPUs. The engine orders all work on a
// single virtual clock, which makes every run bit-for-bit reproducible.
//
// The engine is intentionally single-goroutine: events run one at a time in
// timestamp order (ties broken by scheduling order), so simulated code needs
// no locking and experiments are deterministic for a given seed.
package sim

import (
	"fmt"
	"math"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. Durations are also expressed as Time.
type Time int64

// Common durations, mirroring time.Duration conventions.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts t to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String formats the time with an adaptive unit, e.g. "1.5ms".
func (t Time) String() string {
	switch abs := math.Abs(float64(t)); {
	case abs >= float64(Second):
		return fmt.Sprintf("%.3fs", t.Seconds())
	case abs >= float64(Millisecond):
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case abs >= float64(Microsecond):
		return fmt.Sprintf("%.3fus", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Engine is a discrete-event simulator with a virtual clock. Events live in
// a slab-backed hierarchical timer wheel (see wheel.go); scheduling and
// dispatch allocate nothing in steady state.
//
// An Engine also owns the simulation's CPUs and its deterministic random
// number generator, so that a single seed fully determines an experiment.
type Engine struct {
	now      Time
	seq      uint64
	q        *evQueue
	executed uint64
	stopped  bool
	cpus     []*CPU
	rng      *Rand
}

// NewEngine returns an engine whose clock starts at zero and whose random
// stream is derived from seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{q: newEvQueue(), rng: NewRand(seed)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *Rand { return e.rng }

// Schedule runs fn after delay d. A negative delay is treated as zero.
func (e *Engine) Schedule(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.ScheduleAt(e.now+d, fn)
}

// ScheduleAt runs fn at absolute virtual time t. Scheduling in the past is an
// error in the simulation logic and panics to surface the bug immediately.
func (e *Engine) ScheduleAt(t Time, fn func()) {
	idx := e.newRecord(t)
	e.q.slab[idx].fn = fn
	e.q.insert(idx)
}

// ScheduleArg runs fn(arg) after delay d. Unlike Schedule with a capturing
// closure, the callback is a pre-bound function plus a pointer-sized
// argument, so hot paths (per-packet wire delivery) schedule without
// allocating. A negative delay is treated as zero.
func (e *Engine) ScheduleArg(d Time, fn func(any), arg any) {
	if d < 0 {
		d = 0
	}
	e.ScheduleArgAt(e.now+d, fn, arg)
}

// ScheduleArgAt runs fn(arg) at absolute virtual time t.
func (e *Engine) ScheduleArgAt(t Time, fn func(any), arg any) {
	idx := e.newRecord(t)
	e.q.slab[idx].argFn = fn
	e.q.slab[idx].arg = arg
	e.q.insert(idx)
}

// newRecord validates t, draws a sequence number, and returns a fresh slab
// record with (at, seq) filled in. Every schedule variant draws exactly one
// sequence number, which is what keeps same-seed runs byte-identical across
// queue implementations.
func (e *Engine) newRecord(t Time) int32 {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	idx := e.q.alloc()
	r := &e.q.slab[idx]
	r.at = t
	r.seq = e.seq
	return idx
}

// dispatch runs the record at idx: it advances the clock, frees the record
// before invoking the callback (so the callback can rearm or reuse it), and
// disarms any owning Timer.
func (e *Engine) dispatch(idx int32) {
	r := &e.q.slab[idx]
	at := r.at
	fn := r.fn
	argFn := r.argFn
	arg := r.arg
	if r.timer != nil {
		r.timer.idx = -1
	}
	e.q.freeRec(idx)
	e.q.live--
	e.now = at
	e.executed++
	if argFn != nil {
		argFn(arg)
	} else {
		fn()
	}
}

// Run executes events until none remain or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped {
		idx := e.q.next()
		if idx < 0 {
			return
		}
		e.dispatch(idx)
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t. Events scheduled beyond t remain pending.
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for !e.stopped {
		at, ok := e.q.peek()
		if !ok || at > t {
			break
		}
		e.dispatch(e.q.next())
	}
	if e.now < t {
		e.now = t
	}
}

// Stop halts Run or RunUntil after the current event completes. Pending
// events are retained and a subsequent Run resumes them.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of events waiting to run (cancelled timers
// excluded).
func (e *Engine) Pending() int { return e.q.live }

// Executed reports the total number of events run so far (simulator
// throughput accounting for the simspeed benchmark).
func (e *Engine) Executed() uint64 { return e.executed }

// NewCPU allocates a simulated CPU (one hardware hyperthread) and registers
// it with the engine for utilization reporting.
func (e *Engine) NewCPU(name string) *CPU {
	c := &CPU{engine: e, id: len(e.cpus), name: name}
	e.cpus = append(e.cpus, c)
	return c
}

// CPUs returns all CPUs created on this engine, in creation order.
func (e *Engine) CPUs() []*CPU { return e.cpus }

// CPUReport sums busy time per category across all CPUs and divides by the
// elapsed window, yielding "units of a hyperthread" exactly as the paper's
// Table 4 reports CPU consumption.
func (e *Engine) CPUReport(elapsed Time) Usage {
	var u Usage
	if elapsed <= 0 {
		return u
	}
	for _, c := range e.cpus {
		for cat := Category(0); cat < NumCategories; cat++ {
			u[cat] += float64(c.busy[cat]) / float64(elapsed)
		}
	}
	return u
}
