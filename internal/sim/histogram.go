package sim

import (
	"fmt"
	"sort"
)

// Histogram records samples (typically latencies in virtual nanoseconds) and
// reports percentiles the way netperf does in the paper's Figures 10 and 11
// (P50/P90/P99).
type Histogram struct {
	samples []float64
	sorted  bool
	sum     float64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Record adds one sample.
func (h *Histogram) Record(v float64) {
	h.samples = append(h.samples, v)
	h.sum += v
	h.sorted = false
}

// RecordTime adds one virtual-time sample.
func (h *Histogram) RecordTime(t Time) { h.Record(float64(t)) }

// Count returns the number of samples recorded.
func (h *Histogram) Count() int { return len(h.samples) }

// Mean returns the arithmetic mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / float64(len(h.samples))
}

// Percentile returns the p-th percentile (p in [0,100]) using linear
// interpolation between closest ranks, or 0 with no samples.
func (h *Histogram) Percentile(p float64) float64 {
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	if p <= 0 {
		return h.samples[0]
	}
	if p >= 100 {
		return h.samples[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= n {
		return h.samples[n-1]
	}
	return h.samples[lo]*(1-frac) + h.samples[lo+1]*frac
}

// Min returns the smallest sample, or 0 with no samples.
func (h *Histogram) Min() float64 { return h.Percentile(0) }

// Max returns the largest sample, or 0 with no samples.
func (h *Histogram) Max() float64 { return h.Percentile(100) }

// Summary holds the three percentiles the paper reports.
type Summary struct {
	P50, P90, P99 float64
}

// Summarize returns the P50/P90/P99 summary.
func (h *Histogram) Summarize() Summary {
	return Summary{h.Percentile(50), h.Percentile(90), h.Percentile(99)}
}

// String formats the summary with microsecond units, matching the paper's
// figures.
func (s Summary) String() string {
	return fmt.Sprintf("P50=%.1fus P90=%.1fus P99=%.1fus",
		s.P50/float64(Microsecond), s.P90/float64(Microsecond), s.P99/float64(Microsecond))
}

// Counter is a monotonically increasing event tally with a helper for
// computing rates over a virtual-time window.
type Counter struct {
	n uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.n += d }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current tally.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// RatePerSec returns events per second of virtual time across the window.
func (c *Counter) RatePerSec(window Time) float64 {
	if window <= 0 {
		return 0
	}
	return float64(c.n) / window.Seconds()
}
