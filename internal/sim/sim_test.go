package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran out of order: %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %v, want 30", e.Now())
	}
}

func TestEngineFIFOAmongEqualTimestamps(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-broken order wrong at %d: %v", i, order)
		}
	}
}

func TestEngineScheduleFromWithinEvent(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	e.Schedule(10, func() {
		fired = append(fired, e.Now())
		e.Schedule(5, func() { fired = append(fired, e.Now()) })
	})
	e.Run()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Fatalf("nested scheduling wrong: %v", fired)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.Schedule(10, func() { ran++ })
	e.Schedule(100, func() { ran++ })
	e.RunUntil(50)
	if ran != 1 {
		t.Fatalf("ran %d events, want 1", ran)
	}
	if e.Now() != 50 {
		t.Fatalf("clock = %v, want 50", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.Run()
	if ran != 2 || e.Now() != 100 {
		t.Fatalf("resume failed: ran=%d now=%v", ran, e.Now())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.Schedule(1, func() { ran++; e.Stop() })
	e.Schedule(2, func() { ran++ })
	e.Run()
	if ran != 1 {
		t.Fatalf("Stop did not halt the loop: ran=%d", ran)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.ScheduleAt(5, func() {})
	})
	e.Run()
}

func TestCPUSerializesWork(t *testing.T) {
	e := NewEngine(1)
	c := e.NewCPU("test")
	var done []Time
	e.Schedule(0, func() {
		c.Exec(User, 100, func() { done = append(done, e.Now()) })
		c.Exec(User, 50, func() { done = append(done, e.Now()) })
	})
	e.Run()
	if len(done) != 2 || done[0] != 100 || done[1] != 150 {
		t.Fatalf("CPU did not serialize: %v", done)
	}
	if c.Busy(User) != 150 {
		t.Fatalf("busy = %v, want 150", c.Busy(User))
	}
}

func TestCPUStartsNoEarlierThanNow(t *testing.T) {
	e := NewEngine(1)
	c := e.NewCPU("test")
	e.Schedule(500, func() {
		end := c.Exec(Softirq, 10, nil)
		if end != 510 {
			t.Errorf("end = %v, want 510", end)
		}
	})
	e.Run()
}

func TestCPUCategories(t *testing.T) {
	e := NewEngine(1)
	c := e.NewCPU("mixed")
	c.Consume(User, 10)
	c.Consume(System, 20)
	c.Consume(Softirq, 30)
	c.Consume(Guest, 40)
	if c.BusyTotal() != 100 {
		t.Fatalf("total busy = %v, want 100", c.BusyTotal())
	}
	u := e.CPUReport(1000)
	if math.Abs(u[User]-0.01) > 1e-9 || math.Abs(u[Guest]-0.04) > 1e-9 {
		t.Fatalf("report wrong: %+v", u)
	}
	if math.Abs(u.Total()-0.1) > 1e-9 {
		t.Fatalf("total = %v, want 0.1", u.Total())
	}
}

func TestUsageString(t *testing.T) {
	var u Usage
	u[User] = 1.9
	u[Softirq] = 0.8
	got := u.String()
	want := "system=0.0 softirq=0.8 guest=0.0 user=1.9 total=2.7"
	if got != want {
		t.Fatalf("got %q want %q", got, want)
	}
}

func TestNegativeCostPanics(t *testing.T) {
	e := NewEngine(1)
	c := e.NewCPU("x")
	defer func() {
		if recover() == nil {
			t.Error("negative cost did not panic")
		}
	}()
	c.Consume(User, -1)
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	if NewRand(1).Uint64() == NewRand(2).Uint64() {
		t.Fatal("different seeds produced identical first values")
	}
}

func TestRandUniformity(t *testing.T) {
	r := NewRand(7)
	const n = 100000
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		buckets[r.Intn(10)]++
	}
	for i, b := range buckets {
		if b < n/10-n/50 || b > n/10+n/50 {
			t.Fatalf("bucket %d has %d hits, want ~%d", i, b, n/10)
		}
	}
}

func TestRandExpMean(t *testing.T) {
	r := NewRand(9)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(5.0)
	}
	mean := sum / n
	if mean < 4.9 || mean > 5.1 {
		t.Fatalf("Exp mean = %v, want ~5.0", mean)
	}
}

func TestRandNormalMoments(t *testing.T) {
	r := NewRand(11)
	var sum, sumsq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if mean < 9.95 || mean > 10.05 {
		t.Fatalf("Normal mean = %v, want ~10", mean)
	}
	if variance < 3.8 || variance > 4.2 {
		t.Fatalf("Normal variance = %v, want ~4", variance)
	}
}

func TestRandFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed)
		for i := 0; i < 50; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Record(float64(i))
	}
	if p := h.Percentile(50); math.Abs(p-50.5) > 0.01 {
		t.Fatalf("P50 = %v, want 50.5", p)
	}
	if p := h.Percentile(99); math.Abs(p-99.01) > 0.01 {
		t.Fatalf("P99 = %v, want 99.01", p)
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if m := h.Mean(); math.Abs(m-50.5) > 0.01 {
		t.Fatalf("mean = %v, want 50.5", m)
	}
}

func TestHistogramRecordAfterQuery(t *testing.T) {
	h := NewHistogram()
	h.Record(10)
	_ = h.Percentile(50)
	h.Record(1) // must re-sort
	if h.Min() != 1 {
		t.Fatalf("min = %v after interleaved record, want 1", h.Min())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Percentile(50) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramPercentileMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed)
		h := NewHistogram()
		for i := 0; i < 200; i++ {
			h.Record(r.Float64() * 1000)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := h.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCounterRate(t *testing.T) {
	var c Counter
	c.Add(1000)
	c.Inc()
	if c.Value() != 1001 {
		t.Fatalf("value = %d", c.Value())
	}
	if r := c.RatePerSec(Second); math.Abs(r-1001) > 1e-9 {
		t.Fatalf("rate = %v, want 1001", r)
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("reset failed")
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.500us"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}
