package sim

// Timer is a reusable handle for a callback that is scheduled repeatedly —
// the PMD iterate loop, NAPI polling, tx-drain kicks. The callback is bound
// once at construction; each (re)arm files a slab record and draws one
// sequence number, exactly like Schedule with a fresh closure would, so
// switching a call site from Schedule to a Timer leaves same-seed event
// order unchanged while eliminating the per-arm closure allocation.
//
// A Timer is single-shot per arm: firing disarms it, and the callback may
// immediately rearm. Arming an already-armed timer cancels the previous
// arm first (last schedule wins).
type Timer struct {
	eng *Engine
	fn  func()
	// idx is the armed slab record, or -1 when idle.
	idx int32
}

// NewTimer binds fn to a new idle timer on e.
func (e *Engine) NewTimer(fn func()) *Timer {
	return &Timer{eng: e, fn: fn, idx: -1}
}

// Schedule arms the timer to fire after delay d (negative treated as zero).
func (t *Timer) Schedule(d Time) {
	if d < 0 {
		d = 0
	}
	t.ScheduleAt(t.eng.now + d)
}

// ScheduleAt arms the timer to fire at absolute virtual time at.
func (t *Timer) ScheduleAt(at Time) {
	t.Stop()
	idx := t.eng.newRecord(at)
	r := &t.eng.q.slab[idx]
	r.fn = t.fn
	r.timer = t
	t.idx = idx
	t.eng.q.insert(idx)
}

// Stop cancels a pending arm; firing is suppressed. Stopping an idle timer
// is a no-op. The cancelled record is reclaimed lazily by the queue.
func (t *Timer) Stop() {
	if t.idx < 0 {
		return
	}
	r := &t.eng.q.slab[t.idx]
	r.dead = true
	r.timer = nil
	t.eng.q.live--
	t.idx = -1
}

// Armed reports whether the timer has a pending arm.
func (t *Timer) Armed() bool { return t.idx >= 0 }
