package sim

import "math"

// Rand is a small, deterministic pseudo-random source (SplitMix64 core).
// Experiments derive every random decision — flow 5-tuples, RSS spreading,
// latency jitter — from one of these so a single seed reproduces a run
// exactly. It deliberately avoids math/rand's global state.
type Rand struct{ state uint64 }

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand {
	// Avoid the all-zeroes fixed point.
	return &Rand{state: seed + 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns 32 random bits.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Exp returns an exponentially distributed value with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Normal returns a normally distributed value (Box-Muller).
func (r *Rand) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns exp(Normal(mu, sigma)); heavy-tailed jitter such as
// scheduler wakeup latency is modelled with this distribution.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Fork derives an independent generator; streams from parent and child do
// not overlap in practice because the child is re-keyed.
func (r *Rand) Fork() *Rand {
	return NewRand(r.Uint64() ^ 0xd1b54a32d192ed03)
}
