package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// collect runs the engine to completion and returns the order in which the
// labelled events fired.
func collect(t *testing.T, schedule func(e *Engine, emit func(id int))) []int {
	t.Helper()
	e := NewEngine(1)
	var got []int
	schedule(e, func(id int) { got = append(got, id) })
	e.Run()
	return got
}

func TestWheelRandomizedMatchesSortedOrder(t *testing.T) {
	// Property test against the reference semantics: events fire in
	// (at, seq) order regardless of where they land in the wheel.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		e := NewEngine(1)
		type ev struct {
			at  Time
			seq int
		}
		var want []ev
		var got []int
		n := 500
		for i := 0; i < n; i++ {
			// Mix scales so all wheel levels and the far list are hit:
			// sub-microsecond, per-level windows, and multi-minute.
			var at Time
			switch rng.Intn(5) {
			case 0:
				at = Time(rng.Int63n(1 << 10))
			case 1:
				at = Time(rng.Int63n(1 << 18))
			case 2:
				at = Time(rng.Int63n(1 << 26))
			case 3:
				at = Time(rng.Int63n(1 << 34))
			default:
				at = Time(rng.Int63n(120 * int64(Second)))
			}
			// Force collisions so the seq tie-break is exercised.
			at &^= 0x3f
			id := i
			want = append(want, ev{at, i})
			e.ScheduleAt(at, func() { got = append(got, id) })
		}
		sort.SliceStable(want, func(i, j int) bool { return want[i].at < want[j].at })
		e.Run()
		if len(got) != n {
			t.Fatalf("trial %d: ran %d of %d events", trial, len(got), n)
		}
		for i, id := range got {
			if want[i].seq != id {
				t.Fatalf("trial %d: position %d fired event %d, want %d (at=%v)",
					trial, i, id, want[i].seq, want[i].at)
			}
		}
	}
}

func TestWheelCascadeBoundaries(t *testing.T) {
	// Events straddling level boundaries: the end of level 0's window
	// (256*1024 ns), level 1's (2^26 ns), and level 2's (2^34 ns), each
	// ±1 slot width, must still fire in timestamp order.
	boundaries := []Time{1 << (shift0 + wheelBits), 1 << (shift0 + 2*wheelBits), 1 << (shift0 + 3*wheelBits)}
	var ats []Time
	for _, b := range boundaries {
		for _, d := range []Time{-1025, -1, 0, 1, 1023, 1024, 4096} {
			ats = append(ats, b+d)
		}
	}
	got := collect(t, func(e *Engine, emit func(int)) {
		for i, at := range ats {
			id := i
			e.ScheduleAt(at, func() { emit(id) })
		}
	})
	if len(got) != len(ats) {
		t.Fatalf("ran %d of %d events", len(got), len(ats))
	}
	for i := 1; i < len(got); i++ {
		if ats[got[i-1]] > ats[got[i]] {
			t.Fatalf("order violation at %d: %v before %v", i, ats[got[i-1]], ats[got[i]])
		}
	}
}

func TestWheelFarFutureEvents(t *testing.T) {
	// An event far beyond the level-2 window, plus one just inside it,
	// plus a near one; verify order and that the far event actually runs.
	got := collect(t, func(e *Engine, emit func(int)) {
		e.ScheduleAt(90*Second, func() { emit(2) })
		e.ScheduleAt(100, func() { emit(0) })
		e.ScheduleAt(10*Second, func() { emit(1) })
	})
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("got order %v, want [0 1 2]", got)
	}
}

func TestWheelFarEventInsideFlushedSlot(t *testing.T) {
	// Regression shape for the far-vs-level-0 interaction: a far-future
	// event whose timestamp, once the clock approaches, falls inside the
	// same level-0 slot as an already-wheeled event with a later offset.
	e := NewEngine(1)
	var got []Time
	base := 60 * Second
	e.ScheduleAt(base+512, func() { got = append(got, base+512) })
	// Drive the clock close to base with a chain so the first event sits
	// in the far list while the chain churns the wheel.
	var step func()
	next := Time(0)
	step = func() {
		next += 200 * Millisecond
		if next < base {
			e.Schedule(200*Millisecond, step)
		}
	}
	e.Schedule(0, step)
	e.ScheduleAt(base+300, func() { got = append(got, base+300) })
	e.Run()
	if len(got) != 2 || got[0] != base+300 || got[1] != base+512 {
		t.Fatalf("got %v, want [%v %v]", got, base+300, base+512)
	}
}

func TestWheelEqualTimesAcrossLevelsFIFO(t *testing.T) {
	// Equal timestamps scheduled at different clock positions (so they
	// enter via different levels) must still fire in scheduling order.
	e := NewEngine(1)
	var got []int
	target := 50 * Millisecond // lands in level 2 initially
	e.ScheduleAt(target, func() { got = append(got, 0) })
	e.Schedule(40*Millisecond, func() { // by now target is in a lower level
		e.ScheduleAt(target, func() { got = append(got, 1) })
	})
	e.ScheduleAt(target-Microsecond, func() { // near the end, enters level 0/near
		e.ScheduleAt(target, func() { got = append(got, 2) })
	})
	e.Run()
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("got order %v, want [0 1 2]", got)
	}
}

func TestTimerStopCancels(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	tm := e.NewTimer(func() { fired++ })
	tm.Schedule(100)
	if !tm.Armed() {
		t.Fatal("timer should be armed")
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	tm.Stop()
	if tm.Armed() {
		t.Fatal("timer should be disarmed after Stop")
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after Stop, want 0", e.Pending())
	}
	e.Run()
	if fired != 0 {
		t.Fatalf("cancelled timer fired %d times", fired)
	}
	if e.Now() != 0 {
		t.Fatalf("clock advanced to %v running only a cancelled event", e.Now())
	}
}

func TestTimerRearmReplacesPending(t *testing.T) {
	e := NewEngine(1)
	var firedAt []Time
	tm := e.NewTimer(func() { firedAt = append(firedAt, e.Now()) })
	tm.Schedule(100)
	tm.Schedule(50) // replaces the 100ns arm
	e.Run()
	if len(firedAt) != 1 || firedAt[0] != 50 {
		t.Fatalf("firedAt = %v, want [50ns]", firedAt)
	}
}

func TestTimerRearmFromCallback(t *testing.T) {
	e := NewEngine(1)
	n := 0
	var tm *Timer
	tm = e.NewTimer(func() {
		n++
		if n < 5 {
			tm.Schedule(10)
		}
	})
	tm.Schedule(10)
	e.Run()
	if n != 5 {
		t.Fatalf("timer fired %d times, want 5", n)
	}
	if e.Now() != 50 {
		t.Fatalf("Now = %v, want 50ns", e.Now())
	}
	if tm.Armed() {
		t.Fatal("timer should be idle after the chain ends")
	}
}

func TestTimerStopFarFuture(t *testing.T) {
	// Cancel an event sitting in the far list; the queue must still
	// terminate and reclaim it without running it.
	e := NewEngine(1)
	tm := e.NewTimer(func() { t.Fatal("should not fire") })
	tm.ScheduleAt(120 * Second)
	e.ScheduleAt(10, func() {})
	tm.Stop()
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", e.Pending())
	}
	if e.Now() != 10 {
		t.Fatalf("Now = %v, want 10ns (cancelled far event must not advance clock)", e.Now())
	}
}

func TestScheduleArgOrderAndDelivery(t *testing.T) {
	e := NewEngine(1)
	var got []int
	sink := func(v any) { got = append(got, v.(int)) }
	x, y, z := 0, 1, 2
	e.ScheduleArg(20, sink, y)
	e.ScheduleArg(10, sink, x)
	e.ScheduleArgAt(20, sink, z) // same time as y, scheduled later → after
	e.Run()
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("got %v, want [0 1 2]", got)
	}
}

func TestWheelMidDrainInsert(t *testing.T) {
	// Insert an event for the near window while the near ring is being
	// consumed: it must slot into the correct position.
	e := NewEngine(1)
	var got []int
	e.ScheduleAt(10, func() {
		got = append(got, 0)
		e.ScheduleAt(15, func() { got = append(got, 1) })
	})
	e.ScheduleAt(20, func() { got = append(got, 2) })
	e.ScheduleAt(30, func() { got = append(got, 3) })
	e.Run()
	for i, want := range []int{0, 1, 2, 3} {
		if got[i] != want {
			t.Fatalf("got %v", got)
		}
	}
}

func TestSteadyStateSchedulingDoesNotAllocate(t *testing.T) {
	e := NewEngine(1)
	tm := e.NewTimer(func() {})
	sink := func(any) {}
	arg := &struct{}{}
	// Prime the slab and near ring.
	for i := 0; i < 64; i++ {
		e.ScheduleArg(Time(i), sink, arg)
	}
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		tm.Schedule(100)
		e.ScheduleArg(50, sink, arg)
		e.RunUntil(e.Now() + 200)
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule+run allocated %.1f allocs/op, want 0", allocs)
	}
}
