package sim

import "fmt"

// Category classifies where CPU time is spent, mirroring the columns of the
// paper's Table 4: time in host system calls, host softirq packet processing,
// guest (VM) execution, and host userspace.
type Category int

// CPU time categories.
const (
	User    Category = iota // host userspace (OVS PMD threads, DPDK)
	System                  // host kernel, system-call context
	Softirq                 // host kernel, softirq/NAPI context (XDP runs here)
	Guest                   // inside a virtual machine
	NumCategories
)

// String returns the lowercase column name used in Table 4.
func (c Category) String() string {
	switch c {
	case User:
		return "user"
	case System:
		return "system"
	case Softirq:
		return "softirq"
	case Guest:
		return "guest"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Usage is CPU consumption per category in units of a hyperthread, the same
// unit as Table 4 ("Each column reports CPU time in units of a CPU
// hyperthread").
type Usage [NumCategories]float64

// Total sums consumption across all categories.
func (u Usage) Total() float64 {
	var t float64
	for _, v := range u {
		t += v
	}
	return t
}

// Add returns the element-wise sum of u and v.
func (u Usage) Add(v Usage) Usage {
	for i := range u {
		u[i] += v[i]
	}
	return u
}

// String formats the usage like a Table 4 row.
func (u Usage) String() string {
	return fmt.Sprintf("system=%.1f softirq=%.1f guest=%.1f user=%.1f total=%.1f",
		u[System], u[Softirq], u[Guest], u[User], u.Total())
}

// CPU models one hardware hyperthread. Work submitted to a CPU is serialized:
// if the CPU is busy, new work queues behind it. Each completed slice of work
// is accounted to a Category so experiments can report the Table 4 breakdown.
type CPU struct {
	engine *Engine
	id     int
	name   string
	freeAt Time
	busy   [NumCategories]Time
}

// ID returns the CPU's index in creation order.
func (c *CPU) ID() int { return c.id }

// Name returns the name given at creation (e.g. "pmd0", "softirq3").
func (c *CPU) Name() string { return c.name }

// Busy returns the accumulated busy time for one category.
func (c *CPU) Busy(cat Category) Time { return c.busy[cat] }

// BusyTotal returns the accumulated busy time across all categories.
func (c *CPU) BusyTotal() Time {
	var t Time
	for _, b := range c.busy {
		t += b
	}
	return t
}

// FreeAt returns the earliest virtual time at which the CPU can begin new
// work.
func (c *CPU) FreeAt() Time { return c.freeAt }

// Exec queues work of duration d in category cat. The work begins as soon as
// the CPU is free (but not before now) and done, if non-nil, runs when it
// completes. Exec returns the completion time.
func (c *CPU) Exec(cat Category, d Time, done func()) Time {
	if d < 0 {
		panic("sim: negative execution cost")
	}
	start := c.freeAt
	if now := c.engine.Now(); start < now {
		start = now
	}
	end := start + d
	c.freeAt = end
	c.busy[cat] += d
	if done != nil {
		c.engine.ScheduleAt(end, done)
	}
	return end
}

// Consume charges duration d to category cat without scheduling a completion
// callback. It is the common case inside a processing loop that strings many
// cost components together before scheduling one continuation.
func (c *CPU) Consume(cat Category, d Time) Time { return c.Exec(cat, d, nil) }

// Idle reports whether the CPU has no queued work at the current time.
func (c *CPU) Idle() bool { return c.freeAt <= c.engine.Now() }

// Utilization returns the fraction of the elapsed window this CPU was busy,
// summed over categories. It can exceed 1.0 only if the caller passes a
// window shorter than the simulation actually ran.
func (c *CPU) Utilization(elapsed Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(c.BusyTotal()) / float64(elapsed)
}

// ResetAccounting zeroes the busy counters, typically after a warm-up phase
// so that steady-state windows are measured alone.
func (c *CPU) ResetAccounting() { c.busy = [NumCategories]Time{} }
