package netlinksim

import (
	"errors"
	"testing"

	"ovsxdp/internal/packet/hdr"
)

var macX = hdr.MAC{0x02, 0, 0, 0, 0, 1}

func TestLinkLifecycle(t *testing.T) {
	k := NewKernel()
	idx, err := k.AddLink("eth0", "mlx5_core", macX, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.AddLink("eth0", "x", macX, 1500); err == nil {
		t.Fatal("duplicate name must fail")
	}
	l, err := k.LinkByName("eth0")
	if err != nil || l.Index != idx || l.Driver != "mlx5_core" {
		t.Fatalf("link = %+v, %v", l, err)
	}
	if l.State != LinkDown {
		t.Fatal("new links start down")
	}
	if err := k.SetLinkState("eth0", LinkUp); err != nil {
		t.Fatal(err)
	}
	if l.State != LinkUp {
		t.Fatal("state change lost")
	}
	if err := k.DelLink("eth0"); err != nil {
		t.Fatal(err)
	}
	if _, err := k.LinkByName("eth0"); err == nil {
		t.Fatal("deleted link must be gone")
	}
	var nd ErrNoDevice
	if err := k.DelLink("eth0"); !errors.As(err, &nd) {
		t.Fatalf("want ErrNoDevice, got %v", err)
	}
}

func TestAddrInstallsConnectedRoute(t *testing.T) {
	k := NewKernel()
	k.AddLink("eth0", "ixgbe", macX, 1500)
	if err := k.AddAddr("eth0", hdr.MakeIP4(10, 1, 2, 3), 24); err != nil {
		t.Fatal(err)
	}
	addrs, err := k.Addrs("eth0")
	if err != nil || len(addrs) != 1 {
		t.Fatalf("addrs = %v, %v", addrs, err)
	}
	r, ok := k.LookupRoute(hdr.MakeIP4(10, 1, 2, 99))
	if !ok || r.PrefixLen != 24 || r.Gateway != 0 {
		t.Fatalf("connected route = %+v, %v", r, ok)
	}
}

func TestLongestPrefixMatch(t *testing.T) {
	k := NewKernel()
	idx, _ := k.AddLink("eth0", "x", macX, 1500)
	k.AddRoute(Route{Dst: 0, PrefixLen: 0, Gateway: hdr.MakeIP4(10, 0, 0, 254), LinkIndex: idx})
	k.AddRoute(Route{Dst: hdr.MakeIP4(10, 2, 0, 0), PrefixLen: 16, LinkIndex: idx})
	k.AddRoute(Route{Dst: hdr.MakeIP4(10, 2, 3, 0), PrefixLen: 24, Gateway: hdr.MakeIP4(10, 2, 3, 1), LinkIndex: idx})

	r, ok := k.LookupRoute(hdr.MakeIP4(10, 2, 3, 50))
	if !ok || r.PrefixLen != 24 {
		t.Fatalf("LPM picked /%d", r.PrefixLen)
	}
	r, _ = k.LookupRoute(hdr.MakeIP4(10, 2, 9, 1))
	if r.PrefixLen != 16 {
		t.Fatalf("LPM picked /%d, want 16", r.PrefixLen)
	}
	r, _ = k.LookupRoute(hdr.MakeIP4(8, 8, 8, 8))
	if r.PrefixLen != 0 || r.Gateway != hdr.MakeIP4(10, 0, 0, 254) {
		t.Fatal("default route not used")
	}
}

func TestNeighReplaceAndLookup(t *testing.T) {
	k := NewKernel()
	idx, _ := k.AddLink("eth0", "x", macX, 1500)
	ip := hdr.MakeIP4(10, 0, 0, 9)
	k.AddNeigh(Neigh{IP: ip, MAC: hdr.MAC{1}, LinkIndex: idx})
	k.AddNeigh(Neigh{IP: ip, MAC: hdr.MAC{2}, LinkIndex: idx})
	n, ok := k.LookupNeigh(ip)
	if !ok || n.MAC != (hdr.MAC{2}) {
		t.Fatalf("neigh = %+v", n)
	}
	if len(k.Neighs()) != 1 {
		t.Fatal("replace must not duplicate")
	}
	if err := k.AddNeigh(Neigh{IP: ip, LinkIndex: 99}); err == nil {
		t.Fatal("neigh on unknown device must fail")
	}
}

func TestDelLinkCascades(t *testing.T) {
	k := NewKernel()
	idx, _ := k.AddLink("eth0", "x", macX, 1500)
	k.AddAddr("eth0", hdr.MakeIP4(10, 0, 0, 1), 24)
	k.AddNeigh(Neigh{IP: hdr.MakeIP4(10, 0, 0, 2), MAC: hdr.MAC{5}, LinkIndex: idx})
	k.DelLink("eth0")
	if len(k.Routes()) != 0 || len(k.Neighs()) != 0 {
		t.Fatal("cascade delete incomplete")
	}
	if addrs, _ := k.Addrs(""); len(addrs) != 0 {
		t.Fatal("addresses must cascade")
	}
}

// TestDPDKBindBreaksTooling reproduces Table 1's central claim: after a NIC
// is handed to DPDK the kernel tools stop working on it, while an
// AF_XDP-managed NIC keeps responding.
func TestDPDKBindBreaksTooling(t *testing.T) {
	k := NewKernel()
	k.AddLink("eth0", "mlx5_core", macX, 1500)
	k.AddAddr("eth0", hdr.MakeIP4(10, 0, 0, 1), 24)

	// AF_XDP attachment keeps the kernel driver: everything still works.
	if _, err := k.LinkByName("eth0"); err != nil {
		t.Fatal("AF_XDP-managed device must stay visible")
	}

	hw, err := k.BindDPDK("eth0")
	if err != nil {
		t.Fatal(err)
	}
	if hw.Name != "eth0" {
		t.Fatal("bind must return the hardware details")
	}
	// Every Table 1 operation now fails.
	if _, err := k.LinkByName("eth0"); err == nil {
		t.Fatal("ip link must fail on a DPDK device")
	}
	if _, err := k.Addrs("eth0"); err == nil {
		t.Fatal("ip address must fail on a DPDK device")
	}
	if err := k.SetLinkState("eth0", LinkUp); err == nil {
		t.Fatal("ip link set must fail on a DPDK device")
	}
	if _, ok := k.LookupRoute(hdr.MakeIP4(10, 0, 0, 9)); ok {
		t.Fatal("routes via the stolen device must be gone")
	}
}

func TestCacheReplicatesAndConverges(t *testing.T) {
	k := NewKernel()
	idx, _ := k.AddLink("eth0", "x", macX, 1500)
	k.AddAddr("eth0", hdr.MakeIP4(192, 168, 1, 1), 24)

	// Late subscription: existing state replays.
	c := NewCache(k)
	if _, ok := c.LookupRoute(hdr.MakeIP4(192, 168, 1, 7)); !ok {
		t.Fatal("cache must bootstrap existing routes")
	}

	// Live update propagates.
	k.AddNeigh(Neigh{IP: hdr.MakeIP4(192, 168, 1, 7), MAC: hdr.MAC{7}, LinkIndex: idx})
	if n, ok := c.LookupNeigh(hdr.MakeIP4(192, 168, 1, 7)); !ok || n.MAC != (hdr.MAC{7}) {
		t.Fatal("cache missed a neigh notification")
	}

	// Delete propagates (cascade through DelLink).
	k.DelLink("eth0")
	if _, ok := c.LookupRoute(hdr.MakeIP4(192, 168, 1, 7)); ok {
		t.Fatal("cache must drop routes of deleted links")
	}
	if _, ok := c.Link(idx); ok {
		t.Fatal("cache must drop deleted links")
	}
}

func TestCacheResolveNextHop(t *testing.T) {
	k := NewKernel()
	idx, _ := k.AddLink("uplink", "mlx5_core", macX, 1500)
	k.AddAddr("uplink", hdr.MakeIP4(172, 16, 0, 10), 16)
	gw := hdr.MakeIP4(172, 16, 0, 1)
	k.AddRoute(Route{Dst: 0, PrefixLen: 0, Gateway: gw, LinkIndex: idx})
	gwMAC := hdr.MAC{0xde, 0xad, 0, 0, 0, 1}
	k.AddNeigh(Neigh{IP: gw, MAC: gwMAC, LinkIndex: idx})
	peerMAC := hdr.MAC{0xbe, 0xef, 0, 0, 0, 2}
	k.AddNeigh(Neigh{IP: hdr.MakeIP4(172, 16, 0, 20), MAC: peerMAC, LinkIndex: idx})

	c := NewCache(k)

	// On-subnet destination: resolved directly.
	l, mac, ok := c.ResolveNextHop(hdr.MakeIP4(172, 16, 0, 20))
	if !ok || mac != peerMAC || l.Name != "uplink" {
		t.Fatalf("direct resolve = %v %v %v", l.Name, mac, ok)
	}
	// Off-subnet: via the gateway.
	_, mac, ok = c.ResolveNextHop(hdr.MakeIP4(8, 8, 8, 8))
	if !ok || mac != gwMAC {
		t.Fatalf("gateway resolve = %v %v", mac, ok)
	}
	// Unresolvable next hop.
	k.DelLink("uplink")
	if _, _, ok := c.ResolveNextHop(hdr.MakeIP4(8, 8, 8, 8)); ok {
		t.Fatal("resolve must fail with no routes")
	}
}

func TestSubscriberSeesLiveEvents(t *testing.T) {
	k := NewKernel()
	var events []Event
	k.Subscribe(func(e Event) { events = append(events, e) })
	k.AddLink("eth0", "x", macX, 1500)
	if len(events) != 1 || events[0].Link == nil {
		t.Fatalf("events = %d", len(events))
	}
}
