// Package netlinksim models the kernel's network configuration tables —
// links, addresses, routes, neighbors — together with the rtnetlink-style
// operations the Table 1 tools (ip link/address/route/neigh, nstat) perform
// against them, and the notification machinery OVS uses to keep a
// userspace replica of each table (Section 4: "OVS caches a userspace
// replica of each kernel table using Netlink").
//
// The package also captures the paper's central compatibility argument:
// a NIC handed to DPDK unbinds its kernel driver and vanishes from these
// tables, which is exactly why the Table 1 commands "do not work on a NIC
// managed by DPDK". AF_XDP ports keep their kernel driver, so every
// operation keeps working.
package netlinksim

import (
	"fmt"
	"sort"

	"ovsxdp/internal/packet/hdr"
)

// LinkState is the administrative state of a link.
type LinkState int

// Link states.
const (
	LinkDown LinkState = iota
	LinkUp
)

// String formats like `ip link`.
func (s LinkState) String() string {
	if s == LinkUp {
		return "UP"
	}
	return "DOWN"
}

// Link is one network device known to the kernel.
type Link struct {
	Index uint32
	Name  string
	MAC   hdr.MAC
	MTU   int
	State LinkState
	// Driver names the kernel driver ("mlx5_core", "ixgbe", "veth",
	// "tun"). A link bound to DPDK has no kernel driver and no Link.
	Driver string

	// Stats mirror what nstat / ip -s report.
	RxPackets, TxPackets uint64
	RxBytes, TxBytes     uint64
	RxDropped            uint64
}

// Addr is an IPv4 address assignment.
type Addr struct {
	LinkIndex uint32
	IP        hdr.IP4
	PrefixLen int
}

// Route is one IPv4 route.
type Route struct {
	Dst       hdr.IP4 // network address
	PrefixLen int
	Gateway   hdr.IP4 // 0 for directly connected
	LinkIndex uint32
}

// Neigh is one ARP table entry.
type Neigh struct {
	IP        hdr.IP4
	MAC       hdr.MAC
	LinkIndex uint32
}

// EventOp discriminates notifications.
type EventOp int

// Notification operations.
const (
	OpAdd EventOp = iota
	OpDel
)

// Event is one netlink notification.
type Event struct {
	Op    EventOp
	Link  *Link
	Addr  *Addr
	Route *Route
	Neigh *Neigh
}

// ErrNoDevice is returned for operations on unknown (or DPDK-stolen)
// devices, the error a user sees when pointing `ip` at a DPDK NIC.
type ErrNoDevice struct{ Name string }

func (e ErrNoDevice) Error() string {
	return fmt.Sprintf("netlink: device %q does not exist", e.Name)
}

// Kernel is one host's set of tables.
type Kernel struct {
	nextIndex uint32
	links     map[uint32]*Link
	byName    map[string]uint32
	addrs     []Addr
	routes    []Route
	neighs    []Neigh
	subs      []func(Event)
}

// NewKernel returns empty tables.
func NewKernel() *Kernel {
	return &Kernel{
		nextIndex: 1,
		links:     make(map[uint32]*Link),
		byName:    make(map[string]uint32),
	}
}

// Subscribe registers a notification callback (an rtnetlink multicast
// group subscription). Existing state is replayed as Add events so a
// late-starting subscriber converges, which is how the OVS replica
// bootstraps.
func (k *Kernel) Subscribe(fn func(Event)) {
	k.subs = append(k.subs, fn)
	for _, l := range k.links {
		fn(Event{Op: OpAdd, Link: l})
	}
	for i := range k.addrs {
		fn(Event{Op: OpAdd, Addr: &k.addrs[i]})
	}
	for i := range k.routes {
		fn(Event{Op: OpAdd, Route: &k.routes[i]})
	}
	for i := range k.neighs {
		fn(Event{Op: OpAdd, Neigh: &k.neighs[i]})
	}
}

func (k *Kernel) notify(e Event) {
	for _, fn := range k.subs {
		fn(e)
	}
}

// --- ip link ----------------------------------------------------------------

// AddLink registers a device and returns its ifindex.
func (k *Kernel) AddLink(name, driver string, mac hdr.MAC, mtu int) (uint32, error) {
	if _, dup := k.byName[name]; dup {
		return 0, fmt.Errorf("netlink: device %q already exists", name)
	}
	idx := k.nextIndex
	k.nextIndex++
	l := &Link{Index: idx, Name: name, MAC: mac, MTU: mtu, Driver: driver}
	k.links[idx] = l
	k.byName[name] = idx
	k.notify(Event{Op: OpAdd, Link: l})
	return idx, nil
}

// DelLink removes a device and everything referencing it.
func (k *Kernel) DelLink(name string) error {
	idx, ok := k.byName[name]
	if !ok {
		return ErrNoDevice{name}
	}
	l := k.links[idx]
	delete(k.links, idx)
	delete(k.byName, name)
	// Cascade: addresses, routes, neighbors on the device go too.
	k.addrs = filter(k.addrs, func(a Addr) bool { return a.LinkIndex != idx },
		func(a Addr) { k.notify(Event{Op: OpDel, Addr: &a}) })
	k.routes = filter(k.routes, func(r Route) bool { return r.LinkIndex != idx },
		func(r Route) { k.notify(Event{Op: OpDel, Route: &r}) })
	k.neighs = filter(k.neighs, func(n Neigh) bool { return n.LinkIndex != idx },
		func(n Neigh) { k.notify(Event{Op: OpDel, Neigh: &n}) })
	k.notify(Event{Op: OpDel, Link: l})
	return nil
}

func filter[T any](in []T, keep func(T) bool, onDrop func(T)) []T {
	out := in[:0]
	for _, v := range in {
		if keep(v) {
			out = append(out, v)
		} else {
			onDrop(v)
		}
	}
	return out
}

// LinkByName looks a device up, as `ip link show dev X` does.
func (k *Kernel) LinkByName(name string) (*Link, error) {
	idx, ok := k.byName[name]
	if !ok {
		return nil, ErrNoDevice{name}
	}
	return k.links[idx], nil
}

// LinkByIndex looks a device up by ifindex.
func (k *Kernel) LinkByIndex(idx uint32) (*Link, error) {
	l, ok := k.links[idx]
	if !ok {
		return nil, ErrNoDevice{fmt.Sprintf("ifindex %d", idx)}
	}
	return l, nil
}

// Links lists devices sorted by index.
func (k *Kernel) Links() []*Link {
	out := make([]*Link, 0, len(k.links))
	for _, l := range k.links {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// SetLinkState brings a device up or down.
func (k *Kernel) SetLinkState(name string, s LinkState) error {
	l, err := k.LinkByName(name)
	if err != nil {
		return err
	}
	l.State = s
	k.notify(Event{Op: OpAdd, Link: l})
	return nil
}

// BindDPDK detaches a device from its kernel driver and hands it to DPDK:
// the device disappears from the kernel tables, which is why none of the
// Table 1 commands work on it afterwards. The link details are returned so
// the DPDK layer can keep using the hardware.
func (k *Kernel) BindDPDK(name string) (Link, error) {
	l, err := k.LinkByName(name)
	if err != nil {
		return Link{}, err
	}
	snapshot := *l
	if err := k.DelLink(name); err != nil {
		return Link{}, err
	}
	return snapshot, nil
}

// --- ip address -------------------------------------------------------------

// AddAddr assigns an address and installs the connected route.
func (k *Kernel) AddAddr(linkName string, ip hdr.IP4, prefixLen int) error {
	l, err := k.LinkByName(linkName)
	if err != nil {
		return err
	}
	a := Addr{LinkIndex: l.Index, IP: ip, PrefixLen: prefixLen}
	k.addrs = append(k.addrs, a)
	k.notify(Event{Op: OpAdd, Addr: &a})
	// Connected route for the subnet.
	network := ip & hdr.IP4(prefixMask(prefixLen))
	return k.AddRoute(Route{Dst: network, PrefixLen: prefixLen, LinkIndex: l.Index})
}

// Addrs lists addresses, optionally filtered by device name ("" for all).
func (k *Kernel) Addrs(linkName string) ([]Addr, error) {
	if linkName == "" {
		return append([]Addr(nil), k.addrs...), nil
	}
	l, err := k.LinkByName(linkName)
	if err != nil {
		return nil, err
	}
	var out []Addr
	for _, a := range k.addrs {
		if a.LinkIndex == l.Index {
			out = append(out, a)
		}
	}
	return out, nil
}

// --- ip route ---------------------------------------------------------------

// AddRoute installs a route.
func (k *Kernel) AddRoute(r Route) error {
	if _, ok := k.links[r.LinkIndex]; !ok {
		return ErrNoDevice{fmt.Sprintf("ifindex %d", r.LinkIndex)}
	}
	k.routes = append(k.routes, r)
	k.notify(Event{Op: OpAdd, Route: &r})
	return nil
}

// Routes lists the routing table.
func (k *Kernel) Routes() []Route { return append([]Route(nil), k.routes...) }

// LookupRoute performs longest-prefix-match routing for dst.
func (k *Kernel) LookupRoute(dst hdr.IP4) (Route, bool) {
	return lookupRoute(k.routes, dst)
}

func lookupRoute(routes []Route, dst hdr.IP4) (Route, bool) {
	best := -1
	var out Route
	for _, r := range routes {
		if dst&hdr.IP4(prefixMask(r.PrefixLen)) == r.Dst && r.PrefixLen > best {
			best = r.PrefixLen
			out = r
		}
	}
	return out, best >= 0
}

// --- ip neigh ---------------------------------------------------------------

// AddNeigh installs an ARP entry.
func (k *Kernel) AddNeigh(n Neigh) error {
	if _, ok := k.links[n.LinkIndex]; !ok {
		return ErrNoDevice{fmt.Sprintf("ifindex %d", n.LinkIndex)}
	}
	// Replace any existing entry for the IP on the same link.
	for i := range k.neighs {
		if k.neighs[i].IP == n.IP && k.neighs[i].LinkIndex == n.LinkIndex {
			k.neighs[i] = n
			k.notify(Event{Op: OpAdd, Neigh: &n})
			return nil
		}
	}
	k.neighs = append(k.neighs, n)
	k.notify(Event{Op: OpAdd, Neigh: &n})
	return nil
}

// Neighs lists the ARP table.
func (k *Kernel) Neighs() []Neigh { return append([]Neigh(nil), k.neighs...) }

// LookupNeigh resolves an IP to a MAC.
func (k *Kernel) LookupNeigh(ip hdr.IP4) (Neigh, bool) {
	for _, n := range k.neighs {
		if n.IP == ip {
			return n, true
		}
	}
	return Neigh{}, false
}

func prefixMask(n int) uint32 {
	switch {
	case n <= 0:
		return 0
	case n >= 32:
		return ^uint32(0)
	default:
		return ^uint32(0) << (32 - n)
	}
}

// --- Userspace replica (Section 4) -------------------------------------------

// Cache is the userspace replica OVS keeps of the kernel tables, updated by
// netlink notifications so that tunnel encapsulation can resolve routes and
// next hops without syscalls on the fast path. "Using kernel facilities for
// this purpose does not cause performance problems because these tables are
// only updated by slow control plane operations."
type Cache struct {
	links  map[uint32]Link
	routes []Route
	neighs []Neigh
	// Updates counts notifications applied (observability for tests).
	Updates uint64
}

// NewCache builds a replica subscribed to k.
func NewCache(k *Kernel) *Cache {
	c := &Cache{links: make(map[uint32]Link)}
	k.Subscribe(c.apply)
	return c
}

func (c *Cache) apply(e Event) {
	c.Updates++
	switch {
	case e.Link != nil:
		if e.Op == OpAdd {
			c.links[e.Link.Index] = *e.Link
		} else {
			delete(c.links, e.Link.Index)
		}
	case e.Route != nil:
		if e.Op == OpAdd {
			c.routes = append(c.routes, *e.Route)
		} else {
			c.routes = filter(c.routes, func(r Route) bool { return r != *e.Route }, func(Route) {})
		}
	case e.Neigh != nil:
		if e.Op == OpAdd {
			replaced := false
			for i := range c.neighs {
				if c.neighs[i].IP == e.Neigh.IP && c.neighs[i].LinkIndex == e.Neigh.LinkIndex {
					c.neighs[i] = *e.Neigh
					replaced = true
				}
			}
			if !replaced {
				c.neighs = append(c.neighs, *e.Neigh)
			}
		} else {
			c.neighs = filter(c.neighs, func(n Neigh) bool { return n != *e.Neigh }, func(Neigh) {})
		}
	}
}

// LookupRoute is LPM against the replica (no syscall).
func (c *Cache) LookupRoute(dst hdr.IP4) (Route, bool) { return lookupRoute(c.routes, dst) }

// LookupNeigh resolves a next hop against the replica.
func (c *Cache) LookupNeigh(ip hdr.IP4) (Neigh, bool) {
	for _, n := range c.neighs {
		if n.IP == ip {
			return n, true
		}
	}
	return Neigh{}, false
}

// Link returns the replicated link state.
func (c *Cache) Link(idx uint32) (Link, bool) {
	l, ok := c.links[idx]
	return l, ok
}

// ResolveNextHop combines route and ARP lookup: the tunnel layer's slow
// path for finding the outer destination MAC and egress device.
func (c *Cache) ResolveNextHop(dst hdr.IP4) (Link, hdr.MAC, bool) {
	r, ok := c.LookupRoute(dst)
	if !ok {
		return Link{}, hdr.MAC{}, false
	}
	hop := dst
	if r.Gateway != 0 {
		hop = r.Gateway
	}
	n, ok := c.LookupNeigh(hop)
	if !ok {
		return Link{}, hdr.MAC{}, false
	}
	l, ok := c.Link(r.LinkIndex)
	if !ok {
		return Link{}, hdr.MAC{}, false
	}
	return l, n.MAC, true
}
