package ebpf

import (
	"encoding/binary"
	"fmt"
)

// Program is a loadable eBPF program: instructions plus references to the
// maps it uses (by small integer id, the analog of a map fd embedded at load
// time).
type Program struct {
	Name  string
	Insns []Insn
	maps  map[int64]Map

	verified bool
}

// NewProgram builds a program from instructions.
func NewProgram(name string, insns ...Insn) *Program {
	return &Program{Name: name, Insns: insns, maps: make(map[int64]Map)}
}

// AttachMap registers m under id so instructions can reference it. It must
// be called before Verify.
func (p *Program) AttachMap(id int64, m Map) *Program {
	p.maps[id] = m
	return p
}

// MapByID exposes an attached map (for control-plane updates).
func (p *Program) MapByID(id int64) Map { return p.mapByID(id) }

func (p *Program) mapByID(id int64) Map {
	if p.maps == nil {
		return nil
	}
	return p.maps[id]
}

// Load verifies the program, marking it runnable — the analog of the BPF
// syscall passing the in-kernel verifier in the paper's Figure 4 workflow.
func (p *Program) Load() error {
	if err := Verify(p); err != nil {
		return err
	}
	p.verified = true
	return nil
}

// Verified reports whether Load has succeeded.
func (p *Program) Verified() bool { return p.verified }

// Disassemble returns the program listing, one instruction per line.
func (p *Program) Disassemble() string {
	out := ""
	for i, in := range p.Insns {
		out += fmt.Sprintf("%3d: %s\n", i, in)
	}
	return out
}

// Context is the XDP execution context (struct xdp_md analog). Packet is
// mutable: programs may rewrite headers in place.
type Context struct {
	Packet       []byte
	IngressIface uint32
	RxQueue      uint32
}

// Result summarizes one program execution. The counters feed the
// simulation's cost model (Table 5 charges per instruction, per map lookup,
// and per first packet touch).
type Result struct {
	// Action is the XDP action code in R0 at exit.
	Action int64
	// Redirect describes the redirect_map target when Action is
	// XDPRedirect.
	RedirectMap   Map
	RedirectIndex uint32

	// Execution counters for cost metering.
	Insns         int
	HashLookups   int
	ArrayLookups  int
	OtherHelpers  int
	TouchedPacket bool
	WrotePacket   bool
}

// Virtual address-space bases used by the interpreter. Verified programs
// never fabricate addresses, but the interpreter still range-checks every
// access and fails closed.
const (
	vaPacket   = 0x1000_0000
	vaStackTop = 0x2000_0000 // stack grows down from here
	vaCtx      = 0x3000_0000
	vaMapVal   = 0x4000_0000
	mapValStep = 0x0001_0000
)

// ErrRuntime reports a fault during execution (impossible for verified
// programs unless the harness mutates state underneath them).
type ErrRuntime struct {
	PC     int
	Reason string
}

func (e *ErrRuntime) Error() string {
	return fmt.Sprintf("ebpf: runtime fault at insn %d: %s", e.PC, e.Reason)
}

// Run executes the program against ctx. The program must have been Loaded.
//
// Memory model: loads and stores through packet pointers are big-endian
// (network byte order, as if the program applied ntohs/ntohl at each load);
// stack and map-value accesses are little-endian (host order). This spares
// the sample programs explicit byte-swap instructions without changing
// their structure or cost.
func (p *Program) Run(ctx *Context) (Result, error) {
	var res Result
	if !p.verified {
		return res, fmt.Errorf("ebpf: program %q not loaded", p.Name)
	}

	var regs [NumRegs]uint64
	var stack [StackSize]byte
	regs[R1] = vaCtx
	regs[R10] = vaStackTop

	// Map-value regions handed out by map_lookup during this run.
	var mapVals [][]byte

	resolve := func(addr uint64, size int, pc int) ([]byte, bool, error) {
		switch {
		case addr >= vaPacket && addr+uint64(size) <= vaPacket+uint64(len(ctx.Packet)):
			off := addr - vaPacket
			return ctx.Packet[off : off+uint64(size)], true, nil
		case addr <= vaStackTop && addr >= vaStackTop-StackSize && addr+uint64(size) <= vaStackTop:
			off := StackSize - (vaStackTop - addr)
			return stack[off : off+uint64(size)], false, nil
		case addr >= vaMapVal:
			idx := (addr - vaMapVal) / mapValStep
			if int(idx) < len(mapVals) {
				off := (addr - vaMapVal) % mapValStep
				v := mapVals[idx]
				if off+uint64(size) <= uint64(len(v)) {
					return v[off : off+uint64(size)], false, nil
				}
			}
		}
		return nil, false, &ErrRuntime{pc, fmt.Sprintf("bad memory access at %#x size %d", addr, size)}
	}

	const maxExec = 2 * MaxInsns // loop-free programs can't exceed len(Insns)
	pc := 0
	for steps := 0; ; steps++ {
		if steps > maxExec {
			return res, &ErrRuntime{pc, "instruction budget exceeded"}
		}
		if pc < 0 || pc >= len(p.Insns) {
			return res, &ErrRuntime{pc, "pc out of range"}
		}
		in := p.Insns[pc]
		res.Insns++

		src := regs[0] // placeholder
		if in.UseImm {
			src = uint64(in.Imm)
		} else {
			src = regs[in.Src]
		}

		switch in.Op {
		case OpMov:
			regs[in.Dst] = src
		case OpAdd:
			regs[in.Dst] += src
		case OpSub:
			regs[in.Dst] -= src
		case OpMul:
			regs[in.Dst] *= src
		case OpDiv:
			if src == 0 {
				regs[in.Dst] = 0
			} else {
				regs[in.Dst] /= src
			}
		case OpMod:
			if src == 0 {
				regs[in.Dst] = 0
			} else {
				regs[in.Dst] %= src
			}
		case OpAnd:
			regs[in.Dst] &= src
		case OpOr:
			regs[in.Dst] |= src
		case OpXor:
			regs[in.Dst] ^= src
		case OpLsh:
			regs[in.Dst] <<= src & 63
		case OpRsh:
			regs[in.Dst] >>= src & 63
		case OpNeg:
			regs[in.Dst] = -regs[in.Dst]

		case OpLdx:
			if regs[in.Src] == vaCtx {
				switch int64(in.Off) {
				case CtxData:
					regs[in.Dst] = vaPacket
				case CtxDataEnd:
					regs[in.Dst] = vaPacket + uint64(len(ctx.Packet))
				case CtxIngressIface:
					regs[in.Dst] = uint64(ctx.IngressIface)
				case CtxRxQueue:
					regs[in.Dst] = uint64(ctx.RxQueue)
				default:
					return res, &ErrRuntime{pc, "bad ctx offset"}
				}
				break
			}
			addr := regs[in.Src] + uint64(int64(in.Off))
			mem, isPkt, err := resolve(addr, int(in.Size), pc)
			if err != nil {
				return res, err
			}
			if isPkt {
				res.TouchedPacket = true
				regs[in.Dst] = loadBE(mem)
			} else {
				regs[in.Dst] = loadLE(mem)
			}

		case OpStx, OpSt:
			addr := regs[in.Dst] + uint64(int64(in.Off))
			mem, isPkt, err := resolve(addr, int(in.Size), pc)
			if err != nil {
				return res, err
			}
			val := src
			if in.Op == OpStx {
				val = regs[in.Src]
			} else {
				val = uint64(in.Imm)
			}
			if isPkt {
				res.WrotePacket = true
				storeBE(mem, val)
			} else {
				storeLE(mem, val)
			}

		case OpJa:
			pc += int(in.Off)
		case OpJeq:
			if regs[in.Dst] == src {
				pc += int(in.Off)
			}
		case OpJne:
			if regs[in.Dst] != src {
				pc += int(in.Off)
			}
		case OpJgt:
			if regs[in.Dst] > src {
				pc += int(in.Off)
			}
		case OpJge:
			if regs[in.Dst] >= src {
				pc += int(in.Off)
			}
		case OpJlt:
			if regs[in.Dst] < src {
				pc += int(in.Off)
			}
		case OpJle:
			if regs[in.Dst] <= src {
				pc += int(in.Off)
			}
		case OpJset:
			if regs[in.Dst]&src != 0 {
				pc += int(in.Off)
			}

		case OpCall:
			if err := p.call(ctx, Helper(in.Imm), &regs, stack[:], &mapVals, &res, pc); err != nil {
				return res, err
			}

		case OpExit:
			res.Action = int64(regs[R0])
			return res, nil

		default:
			return res, &ErrRuntime{pc, "bad opcode"}
		}
		pc++
	}
}

// call dispatches a helper.
func (p *Program) call(ctx *Context, h Helper, regs *[NumRegs]uint64, stack []byte, mapVals *[][]byte, res *Result, pc int) error {
	readMem := func(addr uint64, n int) ([]byte, error) {
		switch {
		case addr >= vaPacket && addr+uint64(n) <= vaPacket+uint64(len(ctx.Packet)):
			off := addr - vaPacket
			res.TouchedPacket = true
			return ctx.Packet[off : off+uint64(n)], nil
		case addr <= vaStackTop && addr >= vaStackTop-StackSize && addr+uint64(n) <= vaStackTop:
			off := StackSize - (vaStackTop - addr)
			return stack[off : off+uint64(n)], nil
		}
		return nil, &ErrRuntime{pc, fmt.Sprintf("helper pointer %#x out of range", addr)}
	}
	clobber := func(r0 uint64) {
		regs[R0] = r0
		for r := R1; r <= R5; r++ {
			regs[r] = 0xdead // poison, matching the ABI
		}
	}

	switch h {
	case HelperMapLookup:
		m := p.mapByID(int64(regs[R1]))
		if m == nil {
			return &ErrRuntime{pc, "map_lookup on unknown map"}
		}
		key, err := readMem(regs[R2], m.KeySize())
		if err != nil {
			return err
		}
		switch m.Type() {
		case MapTypeArray:
			res.ArrayLookups++
		default:
			res.HashLookups++
		}
		v := m.Lookup(key)
		if v == nil {
			clobber(0)
			return nil
		}
		*mapVals = append(*mapVals, v)
		clobber(vaMapVal + uint64(len(*mapVals)-1)*mapValStep)
		return nil

	case HelperMapUpdate:
		m := p.mapByID(int64(regs[R1]))
		if m == nil {
			return &ErrRuntime{pc, "map_update on unknown map"}
		}
		key, err := readMem(regs[R2], m.KeySize())
		if err != nil {
			return err
		}
		val, err := readMem(regs[R3], m.ValueSize())
		if err != nil {
			return err
		}
		res.OtherHelpers++
		if err := m.Update(key, val); err != nil {
			clobber(^uint64(0)) // -1
		} else {
			clobber(0)
		}
		return nil

	case HelperMapDelete:
		m := p.mapByID(int64(regs[R1]))
		if m == nil {
			return &ErrRuntime{pc, "map_delete on unknown map"}
		}
		key, err := readMem(regs[R2], m.KeySize())
		if err != nil {
			return err
		}
		res.OtherHelpers++
		if err := m.Delete(key); err != nil {
			clobber(^uint64(0))
		} else {
			clobber(0)
		}
		return nil

	case HelperRedirectMap:
		m := p.mapByID(int64(regs[R1]))
		if m == nil {
			return &ErrRuntime{pc, "redirect_map on unknown map"}
		}
		tm, ok := m.(*TargetMap)
		if !ok {
			return &ErrRuntime{pc, "redirect_map on non-target map"}
		}
		res.OtherHelpers++
		idx := uint32(regs[R2])
		if _, ok := tm.Target(idx); !ok {
			// Kernel behaviour: fall back to the flags value
			// (commonly XDP_ABORTED or XDP_PASS).
			clobber(uint64(regs[R3]))
			return nil
		}
		res.RedirectMap = m
		res.RedirectIndex = idx
		clobber(XDPRedirect)
		return nil

	case HelperCsumReplace:
		res.OtherHelpers++
		clobber(0)
		return nil

	default:
		return &ErrRuntime{pc, fmt.Sprintf("unknown helper %d", int64(h))}
	}
}

func loadBE(b []byte) uint64 {
	switch len(b) {
	case 1:
		return uint64(b[0])
	case 2:
		return uint64(binary.BigEndian.Uint16(b))
	case 4:
		return uint64(binary.BigEndian.Uint32(b))
	default:
		return binary.BigEndian.Uint64(b)
	}
}

func storeBE(b []byte, v uint64) {
	switch len(b) {
	case 1:
		b[0] = byte(v)
	case 2:
		binary.BigEndian.PutUint16(b, uint16(v))
	case 4:
		binary.BigEndian.PutUint32(b, uint32(v))
	default:
		binary.BigEndian.PutUint64(b, v)
	}
}

func loadLE(b []byte) uint64 {
	switch len(b) {
	case 1:
		return uint64(b[0])
	case 2:
		return uint64(binary.LittleEndian.Uint16(b))
	case 4:
		return uint64(binary.LittleEndian.Uint32(b))
	default:
		return binary.LittleEndian.Uint64(b)
	}
}

func storeLE(b []byte, v uint64) {
	switch len(b) {
	case 1:
		b[0] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(b, uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(b, uint32(v))
	default:
		binary.LittleEndian.PutUint64(b, v)
	}
}
