package ebpf

import (
	"encoding/binary"
	"fmt"
)

// Program is a loadable eBPF program: instructions plus references to the
// maps it uses (by small integer id, the analog of a map fd embedded at load
// time).
type Program struct {
	Name  string
	Insns []Insn
	maps  map[int64]Map

	verified bool

	// scratch is the per-execution memory reused across Run calls. The
	// simulator is single-goroutine and programs never run reentrantly, so
	// one scratch per program suffices; reusing it keeps the per-packet hot
	// path allocation-free.
	scratch runScratch
}

// runScratch holds the interpreter's per-run mutable state: the BPF stack
// and the map-value regions handed out by map_lookup during the run. The
// stack is re-zeroed at the top of every Run so programs still observe a
// fresh stack, exactly as when it was a local variable.
type runScratch struct {
	stack   [StackSize]byte
	mapVals [][]byte
}

// NewProgram builds a program from instructions.
func NewProgram(name string, insns ...Insn) *Program {
	return &Program{Name: name, Insns: insns, maps: make(map[int64]Map)}
}

// AttachMap registers m under id so instructions can reference it. It must
// be called before Verify.
func (p *Program) AttachMap(id int64, m Map) *Program {
	p.maps[id] = m
	return p
}

// MapByID exposes an attached map (for control-plane updates).
func (p *Program) MapByID(id int64) Map { return p.mapByID(id) }

func (p *Program) mapByID(id int64) Map {
	if p.maps == nil {
		return nil
	}
	return p.maps[id]
}

// Load verifies the program, marking it runnable — the analog of the BPF
// syscall passing the in-kernel verifier in the paper's Figure 4 workflow.
func (p *Program) Load() error {
	if err := Verify(p); err != nil {
		return err
	}
	p.verified = true
	return nil
}

// Verified reports whether Load has succeeded.
func (p *Program) Verified() bool { return p.verified }

// Disassemble returns the program listing, one instruction per line.
func (p *Program) Disassemble() string {
	out := ""
	for i, in := range p.Insns {
		out += fmt.Sprintf("%3d: %s\n", i, in)
	}
	return out
}

// Context is the XDP execution context (struct xdp_md analog). Packet is
// mutable: programs may rewrite headers in place.
type Context struct {
	Packet       []byte
	IngressIface uint32
	RxQueue      uint32
}

// Result summarizes one program execution. The counters feed the
// simulation's cost model (Table 5 charges per instruction, per map lookup,
// and per first packet touch).
type Result struct {
	// Action is the XDP action code in R0 at exit.
	Action int64
	// Redirect describes the redirect_map target when Action is
	// XDPRedirect.
	RedirectMap   Map
	RedirectIndex uint32

	// Execution counters for cost metering.
	Insns         int
	HashLookups   int
	ArrayLookups  int
	OtherHelpers  int
	TouchedPacket bool
	WrotePacket   bool
}

// Virtual address-space bases used by the interpreter. Verified programs
// never fabricate addresses, but the interpreter still range-checks every
// access and fails closed.
const (
	vaPacket   = 0x1000_0000
	vaStackTop = 0x2000_0000 // stack grows down from here
	vaCtx      = 0x3000_0000
	vaMapVal   = 0x4000_0000
	mapValStep = 0x0001_0000
)

// ErrRuntime reports a fault during execution (impossible for verified
// programs unless the harness mutates state underneath them).
type ErrRuntime struct {
	PC     int
	Reason string
}

func (e *ErrRuntime) Error() string {
	return fmt.Sprintf("ebpf: runtime fault at insn %d: %s", e.PC, e.Reason)
}

// Run executes the program against ctx. The program must have been Loaded.
//
// Memory model: loads and stores through packet pointers are big-endian
// (network byte order, as if the program applied ntohs/ntohl at each load);
// stack and map-value accesses are little-endian (host order). This spares
// the sample programs explicit byte-swap instructions without changing
// their structure or cost.
func (p *Program) Run(ctx *Context) (Result, error) {
	var res Result
	if !p.verified {
		return res, fmt.Errorf("ebpf: program %q not loaded", p.Name)
	}

	var regs [NumRegs]uint64
	regs[R1] = vaCtx
	regs[R10] = vaStackTop

	// Reset the reusable scratch: a freshly zeroed stack (the range-clear
	// compiles to a memclr) and an empty map-value table.
	sc := &p.scratch
	for i := range sc.stack {
		sc.stack[i] = 0
	}
	sc.mapVals = sc.mapVals[:0]

	const maxExec = 2 * MaxInsns // loop-free programs can't exceed len(Insns)
	pc := 0
	for steps := 0; ; steps++ {
		if steps > maxExec {
			return res, &ErrRuntime{pc, "instruction budget exceeded"}
		}
		if pc < 0 || pc >= len(p.Insns) {
			return res, &ErrRuntime{pc, "pc out of range"}
		}
		in := p.Insns[pc]
		res.Insns++

		src := regs[0] // placeholder
		if in.UseImm {
			src = uint64(in.Imm)
		} else {
			src = regs[in.Src]
		}

		switch in.Op {
		case OpMov:
			regs[in.Dst] = src
		case OpAdd:
			regs[in.Dst] += src
		case OpSub:
			regs[in.Dst] -= src
		case OpMul:
			regs[in.Dst] *= src
		case OpDiv:
			if src == 0 {
				regs[in.Dst] = 0
			} else {
				regs[in.Dst] /= src
			}
		case OpMod:
			if src == 0 {
				regs[in.Dst] = 0
			} else {
				regs[in.Dst] %= src
			}
		case OpAnd:
			regs[in.Dst] &= src
		case OpOr:
			regs[in.Dst] |= src
		case OpXor:
			regs[in.Dst] ^= src
		case OpLsh:
			regs[in.Dst] <<= src & 63
		case OpRsh:
			regs[in.Dst] >>= src & 63
		case OpNeg:
			regs[in.Dst] = -regs[in.Dst]

		case OpLdx:
			if regs[in.Src] == vaCtx {
				switch int64(in.Off) {
				case CtxData:
					regs[in.Dst] = vaPacket
				case CtxDataEnd:
					regs[in.Dst] = vaPacket + uint64(len(ctx.Packet))
				case CtxIngressIface:
					regs[in.Dst] = uint64(ctx.IngressIface)
				case CtxRxQueue:
					regs[in.Dst] = uint64(ctx.RxQueue)
				default:
					return res, &ErrRuntime{pc, "bad ctx offset"}
				}
				break
			}
			addr := regs[in.Src] + uint64(int64(in.Off))
			mem, isPkt, err := p.resolve(ctx, addr, int(in.Size), pc)
			if err != nil {
				return res, err
			}
			if isPkt {
				res.TouchedPacket = true
				regs[in.Dst] = loadBE(mem)
			} else {
				regs[in.Dst] = loadLE(mem)
			}

		case OpStx, OpSt:
			addr := regs[in.Dst] + uint64(int64(in.Off))
			mem, isPkt, err := p.resolve(ctx, addr, int(in.Size), pc)
			if err != nil {
				return res, err
			}
			val := src
			if in.Op == OpStx {
				val = regs[in.Src]
			} else {
				val = uint64(in.Imm)
			}
			if isPkt {
				res.WrotePacket = true
				storeBE(mem, val)
			} else {
				storeLE(mem, val)
			}

		case OpJa:
			pc += int(in.Off)
		case OpJeq:
			if regs[in.Dst] == src {
				pc += int(in.Off)
			}
		case OpJne:
			if regs[in.Dst] != src {
				pc += int(in.Off)
			}
		case OpJgt:
			if regs[in.Dst] > src {
				pc += int(in.Off)
			}
		case OpJge:
			if regs[in.Dst] >= src {
				pc += int(in.Off)
			}
		case OpJlt:
			if regs[in.Dst] < src {
				pc += int(in.Off)
			}
		case OpJle:
			if regs[in.Dst] <= src {
				pc += int(in.Off)
			}
		case OpJset:
			if regs[in.Dst]&src != 0 {
				pc += int(in.Off)
			}

		case OpCall:
			if err := p.call(ctx, Helper(in.Imm), &regs, &res, pc); err != nil {
				return res, err
			}

		case OpExit:
			res.Action = int64(regs[R0])
			return res, nil

		default:
			return res, &ErrRuntime{pc, "bad opcode"}
		}
		pc++
	}
}

// resolve maps a virtual address to interpreter memory (packet, stack, or a
// map value handed out this run). It is a method rather than a closure so
// the hot loop captures nothing and the stack array never escapes.
func (p *Program) resolve(ctx *Context, addr uint64, size int, pc int) ([]byte, bool, error) {
	switch {
	case addr >= vaPacket && addr+uint64(size) <= vaPacket+uint64(len(ctx.Packet)):
		off := addr - vaPacket
		return ctx.Packet[off : off+uint64(size)], true, nil
	case addr <= vaStackTop && addr >= vaStackTop-StackSize && addr+uint64(size) <= vaStackTop:
		off := StackSize - (vaStackTop - addr)
		return p.scratch.stack[off : off+uint64(size)], false, nil
	case addr >= vaMapVal:
		idx := (addr - vaMapVal) / mapValStep
		if int(idx) < len(p.scratch.mapVals) {
			off := (addr - vaMapVal) % mapValStep
			v := p.scratch.mapVals[idx]
			if off+uint64(size) <= uint64(len(v)) {
				return v[off : off+uint64(size)], false, nil
			}
		}
	}
	return nil, false, &ErrRuntime{pc, fmt.Sprintf("bad memory access at %#x size %d", addr, size)}
}

// readMem resolves a helper argument pointer (packet or stack only).
func (p *Program) readMem(ctx *Context, res *Result, addr uint64, n int, pc int) ([]byte, error) {
	switch {
	case addr >= vaPacket && addr+uint64(n) <= vaPacket+uint64(len(ctx.Packet)):
		off := addr - vaPacket
		res.TouchedPacket = true
		return ctx.Packet[off : off+uint64(n)], nil
	case addr <= vaStackTop && addr >= vaStackTop-StackSize && addr+uint64(n) <= vaStackTop:
		off := StackSize - (vaStackTop - addr)
		return p.scratch.stack[off : off+uint64(n)], nil
	}
	return nil, &ErrRuntime{pc, fmt.Sprintf("helper pointer %#x out of range", addr)}
}

// call dispatches a helper.
func (p *Program) call(ctx *Context, h Helper, regs *[NumRegs]uint64, res *Result, pc int) error {
	clobber := func(r0 uint64) {
		regs[R0] = r0
		for r := R1; r <= R5; r++ {
			regs[r] = 0xdead // poison, matching the ABI
		}
	}

	switch h {
	case HelperMapLookup:
		m := p.mapByID(int64(regs[R1]))
		if m == nil {
			return &ErrRuntime{pc, "map_lookup on unknown map"}
		}
		key, err := p.readMem(ctx, res, regs[R2], m.KeySize(), pc)
		if err != nil {
			return err
		}
		switch m.Type() {
		case MapTypeArray:
			res.ArrayLookups++
		default:
			res.HashLookups++
		}
		v := m.Lookup(key)
		if v == nil {
			clobber(0)
			return nil
		}
		p.scratch.mapVals = append(p.scratch.mapVals, v)
		clobber(vaMapVal + uint64(len(p.scratch.mapVals)-1)*mapValStep)
		return nil

	case HelperMapUpdate:
		m := p.mapByID(int64(regs[R1]))
		if m == nil {
			return &ErrRuntime{pc, "map_update on unknown map"}
		}
		key, err := p.readMem(ctx, res, regs[R2], m.KeySize(), pc)
		if err != nil {
			return err
		}
		val, err := p.readMem(ctx, res, regs[R3], m.ValueSize(), pc)
		if err != nil {
			return err
		}
		res.OtherHelpers++
		if err := m.Update(key, val); err != nil {
			clobber(^uint64(0)) // -1
		} else {
			clobber(0)
		}
		return nil

	case HelperMapDelete:
		m := p.mapByID(int64(regs[R1]))
		if m == nil {
			return &ErrRuntime{pc, "map_delete on unknown map"}
		}
		key, err := p.readMem(ctx, res, regs[R2], m.KeySize(), pc)
		if err != nil {
			return err
		}
		res.OtherHelpers++
		if err := m.Delete(key); err != nil {
			clobber(^uint64(0))
		} else {
			clobber(0)
		}
		return nil

	case HelperRedirectMap:
		m := p.mapByID(int64(regs[R1]))
		if m == nil {
			return &ErrRuntime{pc, "redirect_map on unknown map"}
		}
		tm, ok := m.(*TargetMap)
		if !ok {
			return &ErrRuntime{pc, "redirect_map on non-target map"}
		}
		res.OtherHelpers++
		idx := uint32(regs[R2])
		if _, ok := tm.Target(idx); !ok {
			// Kernel behaviour: fall back to the flags value
			// (commonly XDP_ABORTED or XDP_PASS).
			clobber(uint64(regs[R3]))
			return nil
		}
		res.RedirectMap = m
		res.RedirectIndex = idx
		clobber(XDPRedirect)
		return nil

	case HelperCsumReplace:
		res.OtherHelpers++
		clobber(0)
		return nil

	default:
		return &ErrRuntime{pc, fmt.Sprintf("unknown helper %d", int64(h))}
	}
}

func loadBE(b []byte) uint64 {
	switch len(b) {
	case 1:
		return uint64(b[0])
	case 2:
		return uint64(binary.BigEndian.Uint16(b))
	case 4:
		return uint64(binary.BigEndian.Uint32(b))
	default:
		return binary.BigEndian.Uint64(b)
	}
}

func storeBE(b []byte, v uint64) {
	switch len(b) {
	case 1:
		b[0] = byte(v)
	case 2:
		binary.BigEndian.PutUint16(b, uint16(v))
	case 4:
		binary.BigEndian.PutUint32(b, uint32(v))
	default:
		binary.BigEndian.PutUint64(b, v)
	}
}

func loadLE(b []byte) uint64 {
	switch len(b) {
	case 1:
		return uint64(b[0])
	case 2:
		return uint64(binary.LittleEndian.Uint16(b))
	case 4:
		return uint64(binary.LittleEndian.Uint32(b))
	default:
		return binary.LittleEndian.Uint64(b)
	}
}

func storeLE(b []byte, v uint64) {
	switch len(b) {
	case 1:
		b[0] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(b, uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(b, uint32(v))
	default:
		binary.LittleEndian.PutUint64(b, v)
	}
}
