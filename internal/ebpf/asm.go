package ebpf

import "fmt"

// Asm is a small two-pass assembler that resolves symbolic labels to jump
// offsets, so program authors do not hand-count instruction distances.
//
//	prog, err := NewAsm().
//		I(Ldx(SizeW, R2, R1, CtxData)).
//		I(Ldx(SizeW, R3, R1, CtxDataEnd)).
//		I(Mov(R4, R2)).
//		I(AddImm(R4, 14)).
//		Jmp(Jgt(R4, R3, 0), "drop").
//		I(MovImm(R0, XDPPass)).
//		I(Exit()).
//		Label("drop").
//		I(MovImm(R0, XDPDrop)).
//		I(Exit()).
//		Assemble("my-prog")
type Asm struct {
	insns  []Insn
	labels map[string]int // label -> instruction index
	fixups map[int]string // instruction index -> label
	errs   []error
}

// NewAsm returns an empty assembler.
func NewAsm() *Asm {
	return &Asm{labels: make(map[string]int), fixups: make(map[int]string)}
}

// I appends a literal instruction.
func (a *Asm) I(in Insn) *Asm {
	a.insns = append(a.insns, in)
	return a
}

// Label defines a label at the current position.
func (a *Asm) Label(name string) *Asm {
	if _, dup := a.labels[name]; dup {
		a.errs = append(a.errs, fmt.Errorf("ebpf: duplicate label %q", name))
	}
	a.labels[name] = len(a.insns)
	return a
}

// Jmp appends a jump whose offset is resolved to label at assembly time
// (the Off field of in is ignored).
func (a *Asm) Jmp(in Insn, label string) *Asm {
	a.fixups[len(a.insns)] = label
	a.insns = append(a.insns, in)
	return a
}

// Assemble resolves labels and returns the finished program (not yet
// loaded/verified).
func (a *Asm) Assemble(name string) (*Program, error) {
	if len(a.errs) > 0 {
		return nil, a.errs[0]
	}
	insns := append([]Insn(nil), a.insns...)
	for idx, label := range a.fixups {
		target, ok := a.labels[label]
		if !ok {
			return nil, fmt.Errorf("ebpf: undefined label %q", label)
		}
		off := target - (idx + 1)
		if off < -32768 || off > 32767 {
			return nil, fmt.Errorf("ebpf: jump to %q out of range", label)
		}
		insns[idx].Off = int16(off)
	}
	return NewProgram(name, insns...), nil
}

// MustAssemble is Assemble for statically-known-good programs; it panics on
// error.
func (a *Asm) MustAssemble(name string) *Program {
	p, err := a.Assemble(name)
	if err != nil {
		panic(err)
	}
	return p
}
