package ebpf

import (
	"strings"
	"testing"
)

// Additional verifier and interpreter edge cases beyond the core suite.

func TestVerifyBranchMergeLosesDivergentState(t *testing.T) {
	// R2 is a packet pointer on one path and a scalar on the other; after
	// the join it must be unusable as a pointer.
	p := NewProgram("merge",
		Ldx(SizeW, R2, R1, CtxData),    // r2 = pkt
		Ldx(SizeW, R3, R1, CtxDataEnd), // r3 = end
		Mov(R4, R2),
		AddImm(R4, 14),
		Jgt(R4, R3, 1),        // taken -> skip the next insn
		MovImm(R2, 1234),      // fall-through: r2 becomes a scalar
		Ldx(SizeB, R0, R2, 0), // join: load through r2 — must be rejected
		Exit(),
	)
	err := p.Load()
	if err == nil || !strings.Contains(err.Error(), "non-pointer") &&
		!strings.Contains(err.Error(), "uninitialized") {
		t.Fatalf("divergent-state load error = %v", err)
	}
}

func TestVerifyCheckedLenMergesToMinimum(t *testing.T) {
	// One path proves 34 bytes, the other only 14; after the merge a load
	// at offset 20 must be rejected.
	p := NewProgram("minmerge",
		Ldx(SizeW, R2, R1, CtxData),
		Ldx(SizeW, R3, R1, CtxDataEnd),
		Mov(R4, R2),
		AddImm(R4, 14),
		Jgt(R4, R3, 8), // not enough for even 14 -> drop (off to insn 13)
		Mov(R4, R2),
		AddImm(R4, 34),
		Jgt(R4, R3, 1), // if no 34 bytes, skip nothing extra (both paths join)
		MovImm(R5, 0),  // path with 34 bytes verified
		// join point: only 14 bytes are guaranteed here.
		Ldx(SizeW, R0, R2, 20),
		Exit(),
		MovImm(R0, 1),
		Exit(),
		MovImm(R0, 1), // drop:
		Exit(),
	)
	if err := p.Load(); err == nil {
		t.Fatal("load beyond merged checked length must be rejected")
	}
}

func TestVerifyJsetOnScalar(t *testing.T) {
	p := NewProgram("jset",
		Ldx(SizeW, R2, R1, CtxRxQueue),
		JsetImm(R2, 0x4, 1),
		MovImm(R0, 0),
		MovImm(R0, 1),
		Exit(),
	)
	if err := p.Load(); err != nil {
		t.Fatalf("jset program rejected: %v", err)
	}
}

func TestVerifyStackLoadBeforeStore(t *testing.T) {
	p := NewProgram("stackread",
		Ldx(SizeW, R0, R10, -8), // never written
		Exit(),
	)
	err := p.Load()
	if err == nil || !strings.Contains(err.Error(), "uninitialized stack") {
		t.Fatalf("stack read error = %v", err)
	}
}

func TestVerifyPartialStackInit(t *testing.T) {
	// Write 4 bytes, read 8: the upper half is uninitialized.
	p := NewProgram("partial",
		St(SizeW, R10, -8, 7),
		Ldx(SizeDW, R0, R10, -8),
		Exit(),
	)
	if err := p.Load(); err == nil {
		t.Fatal("partially initialized stack read must be rejected")
	}
}

func TestVerifyPointerStoreToStackRejected(t *testing.T) {
	p := NewProgram("spill",
		Ldx(SizeW, R2, R1, CtxData),
		Stx(SizeDW, R10, -8, R2), // spilling a pkt pointer
		MovImm(R0, 0),
		Exit(),
	)
	err := p.Load()
	if err == nil || !strings.Contains(err.Error(), "spill") {
		t.Fatalf("pointer spill error = %v", err)
	}
}

func TestVerifyMapValueBounds(t *testing.T) {
	m := NewHashMap(4, 8, 4)
	p := NewProgram("mvbounds",
		St(SizeW, R10, -4, 1),
		MovImm(R1, 1),
		Mov(R2, R10),
		AddImm(R2, -4),
		Call(HelperMapLookup),
		JeqImm(R0, 0, 2),
		Ldx(SizeDW, R3, R0, 8), // value is 8 bytes; offset 8 overruns
		Mov(R0, R3),
		Exit(),
	).AttachMap(1, m)
	err := p.Load()
	if err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Fatalf("map value bounds error = %v", err)
	}
}

func TestVerifyMapValueWriteInBounds(t *testing.T) {
	m := NewHashMap(4, 8, 4)
	p := NewProgram("mvwrite",
		St(SizeW, R10, -4, 1),
		MovImm(R1, 1),
		Mov(R2, R10),
		AddImm(R2, -4),
		Call(HelperMapLookup),
		JeqImm(R0, 0, 2),
		St(SizeDW, R0, 0, 99), // write within the 8-byte value
		Ja(0),
		MovImm(R0, 0),
		Exit(),
	).AttachMap(1, m)
	if err := p.Load(); err != nil {
		t.Fatalf("in-bounds map write rejected: %v", err)
	}
}

func TestVerifyComparePktEndReversed(t *testing.T) {
	// "if data_end > data+N goto ok" — the reversed form drivers emit.
	p := NewProgram("revcmp",
		Ldx(SizeW, R2, R1, CtxData),
		Ldx(SizeW, R3, R1, CtxDataEnd),
		Mov(R4, R2),
		AddImm(R4, 14),
		Jgt(R3, R4, 1), // end > data+14 -> 14 bytes available at target
		Ja(2),          // not enough: drop
		Ldx(SizeH, R0, R2, 12),
		Exit(),
		MovImm(R0, 1),
		Exit(),
	)
	if err := p.Load(); err != nil {
		t.Fatalf("reversed comparison rejected: %v", err)
	}
}

func TestVerifyCtxStoreRejected(t *testing.T) {
	p := NewProgram("ctxstore",
		St(SizeW, R1, 0, 7),
		MovImm(R0, 0),
		Exit(),
	)
	if err := p.Load(); err == nil {
		t.Fatal("store through ctx must be rejected")
	}
}

func TestVerifyHelperMissingKeyPointer(t *testing.T) {
	m := NewHashMap(4, 4, 4)
	p := NewProgram("badptr",
		MovImm(R1, 1),
		MovImm(R2, 1234), // scalar, not a pointer
		Call(HelperMapLookup),
		MovImm(R0, 0),
		Exit(),
	).AttachMap(1, m)
	err := p.Load()
	if err == nil || !strings.Contains(err.Error(), "key must point") {
		t.Fatalf("bad key pointer error = %v", err)
	}
}

func TestRunDivModByZeroRegisterYieldsZero(t *testing.T) {
	// Runtime division by a zero register returns 0, as eBPF defines.
	p := NewProgram("div",
		Ldx(SizeW, R2, R1, CtxRxQueue), // 0 at runtime
		MovImm(R0, 100),
		Insn{Op: OpDiv, Dst: R0, Src: R2},
		Exit(),
	)
	if err := p.Load(); err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(&Context{Packet: make([]byte, 64), RxQueue: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != 0 {
		t.Fatalf("div by zero = %d, want 0", res.Action)
	}
}

func TestRunALUCoverage(t *testing.T) {
	// Exercise the remaining ALU ops end to end.
	p := NewProgram("alu",
		MovImm(R0, 7),
		MulImm(R0, 3),  // 21
		OrImm(R0, 8),   // 29
		AndImm(R0, 28), // 28
		LshImm(R0, 2),  // 112
		RshImm(R0, 1),  // 56
		Insn{Op: OpMod, Dst: R0, Imm: 10, UseImm: true}, // 6
		Insn{Op: OpNeg, Dst: R0},                        // -6
		Insn{Op: OpNeg, Dst: R0},                        // 6
		MovImm(R2, 3),
		XorReg(R0, R2), // 5
		SubImm(R0, 1),  // 4
		Exit(),
	)
	if err := p.Load(); err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(&Context{Packet: make([]byte, 64)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != 4 {
		t.Fatalf("ALU chain = %d, want 4", res.Action)
	}
}

func TestRunMapDeleteAndUpdateHelpers(t *testing.T) {
	m := NewHashMap(4, 4, 8)
	p := NewProgram("upd",
		St(SizeW, R10, -4, 7),  // key
		St(SizeW, R10, -8, 42), // value
		MovImm(R1, 1),
		Mov(R2, R10),
		AddImm(R2, -4),
		Mov(R3, R10),
		AddImm(R3, -8),
		Call(HelperMapUpdate),
		Mov(R6, R0), // save rc
		// Now delete it.
		MovImm(R1, 1),
		Mov(R2, R10),
		AddImm(R2, -4),
		Call(HelperMapDelete),
		Mov(R0, R6),
		Exit(),
	).AttachMap(1, m)
	if err := p.Load(); err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(&Context{Packet: make([]byte, 64)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != 0 {
		t.Fatalf("update rc = %d", res.Action)
	}
	if m.Len() != 0 {
		t.Fatalf("map len = %d after delete", m.Len())
	}
	if res.OtherHelpers != 2 {
		t.Fatalf("helper count = %d", res.OtherHelpers)
	}
}

func TestVerifyEmptyJumpTargetBounds(t *testing.T) {
	p := NewProgram("oob", Ja(5), Exit())
	if err := p.Load(); err == nil {
		t.Fatal("jump past the end must be rejected")
	}
}
