// Package ebpf implements a register-machine virtual machine modeled on
// Linux eBPF: eleven registers, a 512-byte stack, hash/array/device maps,
// helper calls, and — centrally for this paper — a verifier that enforces
// the sandbox restrictions Section 2.2.2 discusses: bounded program size,
// no loops, initialized registers, bounds-checked packet access, and
// null-checked map values.
//
// Programs are built with the assembler constructors in this file (the
// moral equivalent of the Clang/LLVM step in the paper's Figure 4), pass
// through Verify (the in-kernel verifier step), and execute in a VM attached
// to an XDP hook (package xdp). Execution cost is metered per instruction
// and per helper so the simulation can charge realistic XDP processing
// costs (Table 5).
package ebpf

import "fmt"

// Reg is a VM register.
type Reg uint8

// The eBPF register file. R0 holds return values, R1-R5 are caller-saved
// helper arguments, R6-R9 are callee-saved, R10 is the read-only frame
// pointer.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	NumRegs
)

// Op is an instruction opcode.
type Op uint8

// Opcodes. ALU operations come in register and immediate forms selected by
// Insn.UseImm.
const (
	OpInvalid Op = iota
	// ALU64.
	OpMov
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpAnd
	OpOr
	OpXor
	OpLsh
	OpRsh
	OpNeg
	// Memory. Size selects width.
	OpLdx // dst = *(src + off)
	OpStx // *(dst + off) = src
	OpSt  // *(dst + off) = imm
	// Jumps. Off is the relative target (pc += off + 1 semantics are NOT
	// used; Off is relative to the next instruction, i.e. Off=0 falls
	// through).
	OpJa
	OpJeq
	OpJne
	OpJgt
	OpJge
	OpJlt
	OpJle
	OpJset
	// Control.
	OpCall
	OpExit
)

// String returns the mnemonic.
func (o Op) String() string {
	names := map[Op]string{
		OpMov: "mov", OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div",
		OpMod: "mod", OpAnd: "and", OpOr: "or", OpXor: "xor", OpLsh: "lsh",
		OpRsh: "rsh", OpNeg: "neg", OpLdx: "ldx", OpStx: "stx", OpSt: "st",
		OpJa: "ja", OpJeq: "jeq", OpJne: "jne", OpJgt: "jgt", OpJge: "jge",
		OpJlt: "jlt", OpJle: "jle", OpJset: "jset", OpCall: "call", OpExit: "exit",
	}
	if s, ok := names[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Size is a memory access width.
type Size uint8

// Access widths.
const (
	SizeB  Size = 1
	SizeH  Size = 2
	SizeW  Size = 4
	SizeDW Size = 8
)

// Insn is one instruction. Fields are interpreted per opcode; see the
// assembler constructors for the valid combinations.
type Insn struct {
	Op     Op
	Dst    Reg
	Src    Reg
	Off    int16
	Imm    int64
	Size   Size
	UseImm bool
}

// String disassembles the instruction.
func (i Insn) String() string {
	switch i.Op {
	case OpExit:
		return "exit"
	case OpCall:
		return fmt.Sprintf("call %s", Helper(i.Imm))
	case OpJa:
		return fmt.Sprintf("ja +%d", i.Off)
	case OpJeq, OpJne, OpJgt, OpJge, OpJlt, OpJle, OpJset:
		if i.UseImm {
			return fmt.Sprintf("%s r%d, %d, +%d", i.Op, i.Dst, i.Imm, i.Off)
		}
		return fmt.Sprintf("%s r%d, r%d, +%d", i.Op, i.Dst, i.Src, i.Off)
	case OpLdx:
		return fmt.Sprintf("ldx%s r%d, [r%d%+d]", sizeSuffix(i.Size), i.Dst, i.Src, i.Off)
	case OpStx:
		return fmt.Sprintf("stx%s [r%d%+d], r%d", sizeSuffix(i.Size), i.Dst, i.Off, i.Src)
	case OpSt:
		return fmt.Sprintf("st%s [r%d%+d], %d", sizeSuffix(i.Size), i.Dst, i.Off, i.Imm)
	case OpNeg:
		return fmt.Sprintf("neg r%d", i.Dst)
	default:
		if i.UseImm {
			return fmt.Sprintf("%s r%d, %d", i.Op, i.Dst, i.Imm)
		}
		return fmt.Sprintf("%s r%d, r%d", i.Op, i.Dst, i.Src)
	}
}

func sizeSuffix(s Size) string {
	switch s {
	case SizeB:
		return "b"
	case SizeH:
		return "h"
	case SizeW:
		return "w"
	default:
		return "dw"
	}
}

// Helper identifies a callable VM helper function (the bpf_* kernel
// helpers).
type Helper int64

// Helper identifiers.
const (
	HelperMapLookup   Helper = 1  // r1=map id, r2=key ptr -> r0=value ptr or 0
	HelperMapUpdate   Helper = 2  // r1=map id, r2=key ptr, r3=value ptr -> r0=0/err
	HelperMapDelete   Helper = 3  // r1=map id, r2=key ptr -> r0=0/err
	HelperRedirectMap Helper = 51 // r1=map id, r2=index, r3=flags -> r0=XDP action
	HelperCsumReplace Helper = 10 // modeled checksum fixup; r0=0
)

// String names the helper.
func (h Helper) String() string {
	switch h {
	case HelperMapLookup:
		return "map_lookup_elem"
	case HelperMapUpdate:
		return "map_update_elem"
	case HelperMapDelete:
		return "map_delete_elem"
	case HelperRedirectMap:
		return "redirect_map"
	case HelperCsumReplace:
		return "l3_csum_replace"
	default:
		return fmt.Sprintf("helper(%d)", int64(h))
	}
}

// XDP context field offsets, for loads through the context register (R1 at
// entry). Mirrors struct xdp_md.
const (
	CtxData         = 0  // 32-bit: packet data start
	CtxDataEnd      = 4  // 32-bit: packet data end
	CtxIngressIface = 8  // 32-bit: ingress ifindex
	CtxRxQueue      = 12 // 32-bit: receive queue index
)

// XDP program return codes (enum xdp_action).
const (
	XDPAborted  = 0
	XDPDrop     = 1
	XDPPass     = 2
	XDPTx       = 3
	XDPRedirect = 4
)

// --- Assembler constructors -------------------------------------------------

// Mov sets dst = src.
func Mov(dst, src Reg) Insn { return Insn{Op: OpMov, Dst: dst, Src: src} }

// MovImm sets dst = imm.
func MovImm(dst Reg, imm int64) Insn { return Insn{Op: OpMov, Dst: dst, Imm: imm, UseImm: true} }

// Add sets dst += src.
func Add(dst, src Reg) Insn { return Insn{Op: OpAdd, Dst: dst, Src: src} }

// AddImm sets dst += imm.
func AddImm(dst Reg, imm int64) Insn { return Insn{Op: OpAdd, Dst: dst, Imm: imm, UseImm: true} }

// Sub sets dst -= src.
func Sub(dst, src Reg) Insn { return Insn{Op: OpSub, Dst: dst, Src: src} }

// SubImm sets dst -= imm.
func SubImm(dst Reg, imm int64) Insn { return Insn{Op: OpSub, Dst: dst, Imm: imm, UseImm: true} }

// MulImm sets dst *= imm.
func MulImm(dst Reg, imm int64) Insn { return Insn{Op: OpMul, Dst: dst, Imm: imm, UseImm: true} }

// AndImm sets dst &= imm.
func AndImm(dst Reg, imm int64) Insn { return Insn{Op: OpAnd, Dst: dst, Imm: imm, UseImm: true} }

// OrImm sets dst |= imm.
func OrImm(dst Reg, imm int64) Insn { return Insn{Op: OpOr, Dst: dst, Imm: imm, UseImm: true} }

// XorReg sets dst ^= src.
func XorReg(dst, src Reg) Insn { return Insn{Op: OpXor, Dst: dst, Src: src} }

// LshImm sets dst <<= imm.
func LshImm(dst Reg, imm int64) Insn { return Insn{Op: OpLsh, Dst: dst, Imm: imm, UseImm: true} }

// RshImm sets dst >>= imm (logical).
func RshImm(dst Reg, imm int64) Insn { return Insn{Op: OpRsh, Dst: dst, Imm: imm, UseImm: true} }

// Ldx loads size bytes at src+off into dst (zero-extended, big-endian for
// packet data to match network byte order semantics used by the programs).
func Ldx(size Size, dst, src Reg, off int16) Insn {
	return Insn{Op: OpLdx, Size: size, Dst: dst, Src: src, Off: off}
}

// Stx stores size bytes of src at dst+off.
func Stx(size Size, dst Reg, off int16, src Reg) Insn {
	return Insn{Op: OpStx, Size: size, Dst: dst, Src: src, Off: off}
}

// St stores an immediate at dst+off.
func St(size Size, dst Reg, off int16, imm int64) Insn {
	return Insn{Op: OpSt, Size: size, Dst: dst, Off: off, Imm: imm, UseImm: true}
}

// Ja jumps unconditionally; off is relative to the next instruction.
func Ja(off int16) Insn { return Insn{Op: OpJa, Off: off} }

// JeqImm jumps if dst == imm.
func JeqImm(dst Reg, imm int64, off int16) Insn {
	return Insn{Op: OpJeq, Dst: dst, Imm: imm, Off: off, UseImm: true}
}

// JneImm jumps if dst != imm.
func JneImm(dst Reg, imm int64, off int16) Insn {
	return Insn{Op: OpJne, Dst: dst, Imm: imm, Off: off, UseImm: true}
}

// Jgt jumps if dst > src (unsigned).
func Jgt(dst, src Reg, off int16) Insn { return Insn{Op: OpJgt, Dst: dst, Src: src, Off: off} }

// Jge jumps if dst >= src (unsigned).
func Jge(dst, src Reg, off int16) Insn { return Insn{Op: OpJge, Dst: dst, Src: src, Off: off} }

// Jlt jumps if dst < src (unsigned).
func Jlt(dst, src Reg, off int16) Insn { return Insn{Op: OpJlt, Dst: dst, Src: src, Off: off} }

// Jle jumps if dst <= src (unsigned).
func Jle(dst, src Reg, off int16) Insn { return Insn{Op: OpJle, Dst: dst, Src: src, Off: off} }

// JsetImm jumps if dst & imm != 0.
func JsetImm(dst Reg, imm int64, off int16) Insn {
	return Insn{Op: OpJset, Dst: dst, Imm: imm, Off: off, UseImm: true}
}

// Call invokes a helper.
func Call(h Helper) Insn { return Insn{Op: OpCall, Imm: int64(h), UseImm: true} }

// Exit returns from the program with R0 as the result.
func Exit() Insn { return Insn{Op: OpExit} }
