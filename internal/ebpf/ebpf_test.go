package ebpf

import (
	"strings"
	"testing"
)

// progDrop is the minimal valid program: return XDP_DROP.
func progDrop() *Program {
	return NewProgram("drop", MovImm(R0, XDPDrop), Exit())
}

// progParseEth bounds-checks 14 bytes and reads the EtherType.
func progParseEth() *Program {
	return NewProgram("parse-eth",
		Ldx(SizeW, R2, R1, CtxData),    // r2 = data
		Ldx(SizeW, R3, R1, CtxDataEnd), // r3 = data_end
		Mov(R4, R2),
		AddImm(R4, 14),
		Jgt(R4, R3, 3), // if data+14 > data_end goto drop
		Ldx(SizeH, R5, R2, 12),
		MovImm(R0, XDPPass),
		Exit(),
		MovImm(R0, XDPDrop), // drop:
		Exit(),
	)
}

func TestVerifyAcceptsMinimal(t *testing.T) {
	p := progDrop()
	if err := p.Load(); err != nil {
		t.Fatalf("minimal program rejected: %v", err)
	}
	if !p.Verified() {
		t.Fatal("Verified must be true after Load")
	}
}

func TestVerifyAcceptsBoundsCheckedParse(t *testing.T) {
	if err := progParseEth().Load(); err != nil {
		t.Fatalf("bounds-checked parse rejected: %v", err)
	}
}

func TestVerifyRejectsEmptyProgram(t *testing.T) {
	if err := NewProgram("empty").Load(); err == nil {
		t.Fatal("empty program must be rejected")
	}
}

func TestVerifyRejectsOversizedProgram(t *testing.T) {
	insns := make([]Insn, 0, MaxInsns+2)
	for i := 0; i < MaxInsns+1; i++ {
		insns = append(insns, MovImm(R0, 0))
	}
	insns = append(insns, Exit())
	err := NewProgram("big", insns...).Load()
	if err == nil || !strings.Contains(err.Error(), "too large") {
		t.Fatalf("oversized program error = %v", err)
	}
}

func TestVerifyRejectsLoop(t *testing.T) {
	p := NewProgram("loop",
		MovImm(R0, 0),
		AddImm(R0, 1),
		Ja(-2), // back to the add
		Exit(),
	)
	err := p.Load()
	if err == nil || !strings.Contains(err.Error(), "back-edge") {
		t.Fatalf("loop error = %v", err)
	}
}

func TestVerifyRejectsUninitializedRegister(t *testing.T) {
	p := NewProgram("uninit",
		Mov(R0, R5), // r5 never written
		Exit(),
	)
	err := p.Load()
	if err == nil || !strings.Contains(err.Error(), "uninitialized") {
		t.Fatalf("uninit error = %v", err)
	}
}

func TestVerifyRejectsUncheckedPacketLoad(t *testing.T) {
	p := NewProgram("unchecked",
		Ldx(SizeW, R2, R1, CtxData),
		Ldx(SizeH, R3, R2, 12), // no data_end check
		MovImm(R0, XDPPass),
		Exit(),
	)
	err := p.Load()
	if err == nil || !strings.Contains(err.Error(), "data_end") {
		t.Fatalf("unchecked load error = %v", err)
	}
}

func TestVerifyRejectsLoadBeyondCheckedBounds(t *testing.T) {
	p := NewProgram("beyond",
		Ldx(SizeW, R2, R1, CtxData),
		Ldx(SizeW, R3, R1, CtxDataEnd),
		Mov(R4, R2),
		AddImm(R4, 14),
		Jgt(R4, R3, 3),
		Ldx(SizeW, R5, R2, 14), // needs 18 bytes, only 14 checked
		MovImm(R0, XDPPass),
		Exit(),
		MovImm(R0, XDPDrop),
		Exit(),
	)
	if err := p.Load(); err == nil {
		t.Fatal("load beyond verified bounds must be rejected")
	}
}

func TestVerifyRejectsFallOffEnd(t *testing.T) {
	p := NewProgram("falloff", MovImm(R0, 0)) // no exit
	if err := p.Load(); err == nil {
		t.Fatal("program without exit must be rejected")
	}
}

func TestVerifyRejectsWriteToR10(t *testing.T) {
	p := NewProgram("r10", MovImm(R10, 0), MovImm(R0, 0), Exit())
	err := p.Load()
	if err == nil || !strings.Contains(err.Error(), "r10") {
		t.Fatalf("r10 write error = %v", err)
	}
}

func TestVerifyRejectsVariablePacketOffset(t *testing.T) {
	p := NewProgram("varoff",
		Ldx(SizeW, R2, R1, CtxData),
		Ldx(SizeW, R3, R1, CtxDataEnd),
		Ldx(SizeW, R5, R1, CtxRxQueue), // unknown scalar
		Add(R2, R5),                    // pkt += variable
		MovImm(R0, XDPPass),
		Exit(),
	)
	err := p.Load()
	if err == nil || !strings.Contains(err.Error(), "constant") {
		t.Fatalf("variable offset error = %v", err)
	}
}

func TestVerifyRejectsUnNullCheckedMapValue(t *testing.T) {
	m := NewHashMap(4, 8, 16)
	p := NewProgram("nullderef",
		St(SizeW, R10, -4, 7), // key on stack
		MovImm(R1, 1),
		Mov(R2, R10),
		AddImm(R2, -4),
		Call(HelperMapLookup),
		Ldx(SizeW, R3, R0, 0), // deref without null check
		MovImm(R0, XDPPass),
		Exit(),
	).AttachMap(1, m)
	err := p.Load()
	if err == nil || !strings.Contains(err.Error(), "null") {
		t.Fatalf("null deref error = %v", err)
	}
}

func TestVerifyAcceptsNullCheckedMapValue(t *testing.T) {
	m := NewHashMap(4, 8, 16)
	p := NewProgram("nullok",
		St(SizeW, R10, -4, 7),
		MovImm(R1, 1),
		Mov(R2, R10),
		AddImm(R2, -4),
		Call(HelperMapLookup),
		JeqImm(R0, 0, 2), // null check
		Ldx(SizeW, R3, R0, 0),
		Mov(R0, R3),
		Exit(),
	).AttachMap(1, m)
	if err := p.Load(); err != nil {
		t.Fatalf("null-checked program rejected: %v", err)
	}
}

func TestVerifyRejectsUninitializedStackKey(t *testing.T) {
	m := NewHashMap(4, 8, 16)
	p := NewProgram("badkey",
		MovImm(R1, 1),
		Mov(R2, R10),
		AddImm(R2, -4), // key bytes never written
		Call(HelperMapLookup),
		MovImm(R0, 0),
		Exit(),
	).AttachMap(1, m)
	err := p.Load()
	if err == nil || !strings.Contains(err.Error(), "uninitialized stack") {
		t.Fatalf("bad key error = %v", err)
	}
}

func TestVerifyRejectsUnknownMap(t *testing.T) {
	p := NewProgram("nomap",
		St(SizeW, R10, -4, 7),
		MovImm(R1, 99),
		Mov(R2, R10),
		AddImm(R2, -4),
		Call(HelperMapLookup),
		MovImm(R0, 0),
		Exit(),
	)
	if err := p.Load(); err == nil {
		t.Fatal("unknown map id must be rejected")
	}
}

func TestVerifyRejectsRedirectOnHashMap(t *testing.T) {
	m := NewHashMap(4, 4, 4)
	p := NewProgram("badredirect",
		MovImm(R1, 1),
		MovImm(R2, 0),
		MovImm(R3, 0),
		Call(HelperRedirectMap),
		Exit(),
	).AttachMap(1, m)
	err := p.Load()
	if err == nil || !strings.Contains(err.Error(), "devmap") {
		t.Fatalf("redirect on hash error = %v", err)
	}
}

func TestVerifyRejectsStackOutOfBounds(t *testing.T) {
	p := NewProgram("stackoob",
		St(SizeW, R10, -(StackSize+8), 1),
		MovImm(R0, 0),
		Exit(),
	)
	if err := p.Load(); err == nil {
		t.Fatal("stack store below the frame must be rejected")
	}
}

func TestVerifyRejectsDivByZeroImm(t *testing.T) {
	p := NewProgram("div0",
		MovImm(R0, 10),
		Insn{Op: OpDiv, Dst: R0, Imm: 0, UseImm: true},
		Exit(),
	)
	if err := p.Load(); err == nil {
		t.Fatal("division by zero immediate must be rejected")
	}
}

func TestVerifyRejectsHelperArgClobberUse(t *testing.T) {
	// R1-R5 are clobbered by a call; using R2 afterwards is an error.
	m := NewHashMap(4, 4, 4)
	p := NewProgram("clobber",
		St(SizeW, R10, -4, 7),
		MovImm(R1, 1),
		Mov(R2, R10),
		AddImm(R2, -4),
		Call(HelperMapLookup),
		Mov(R0, R2), // R2 was clobbered
		Exit(),
	).AttachMap(1, m)
	err := p.Load()
	if err == nil || !strings.Contains(err.Error(), "uninitialized") {
		t.Fatalf("clobber use error = %v", err)
	}
}

// --- Execution ---------------------------------------------------------------

func mustLoad(t *testing.T, p *Program) *Program {
	t.Helper()
	if err := p.Load(); err != nil {
		t.Fatalf("load %s: %v", p.Name, err)
	}
	return p
}

func TestRunDrop(t *testing.T) {
	p := mustLoad(t, progDrop())
	res, err := p.Run(&Context{Packet: make([]byte, 64)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != XDPDrop {
		t.Fatalf("action = %d", res.Action)
	}
	if res.Insns != 2 {
		t.Fatalf("insns = %d, want 2", res.Insns)
	}
	if res.TouchedPacket {
		t.Fatal("drop-only program must not touch the packet")
	}
}

func TestRunUnloadedFails(t *testing.T) {
	if _, err := progDrop().Run(&Context{}); err == nil {
		t.Fatal("running an unloaded program must fail")
	}
}

func TestRunParsePassAndDrop(t *testing.T) {
	p := mustLoad(t, progParseEth())
	// 64-byte packet: bounds check passes.
	res, err := p.Run(&Context{Packet: make([]byte, 64)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != XDPPass {
		t.Fatalf("action = %d, want pass", res.Action)
	}
	if !res.TouchedPacket {
		t.Fatal("parse must touch the packet")
	}
	// 10-byte runt: bounds check fails -> drop.
	res, err = p.Run(&Context{Packet: make([]byte, 10)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != XDPDrop {
		t.Fatalf("runt action = %d, want drop", res.Action)
	}
}

func TestRunPacketLoadIsBigEndian(t *testing.T) {
	p := mustLoad(t, NewProgram("ethertype",
		Ldx(SizeW, R2, R1, CtxData),
		Ldx(SizeW, R3, R1, CtxDataEnd),
		Mov(R4, R2),
		AddImm(R4, 14),
		Jgt(R4, R3, 2),
		Ldx(SizeH, R0, R2, 12), // return EtherType
		Exit(),
		MovImm(R0, 0),
		Exit(),
	))
	pkt := make([]byte, 64)
	pkt[12], pkt[13] = 0x08, 0x00 // IPv4
	res, err := p.Run(&Context{Packet: pkt})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != 0x0800 {
		t.Fatalf("ethertype = %#x, want 0x0800", res.Action)
	}
}

func TestRunPacketWrite(t *testing.T) {
	// Swap the first two bytes of the destination MAC.
	p := mustLoad(t, NewProgram("rewrite",
		Ldx(SizeW, R2, R1, CtxData),
		Ldx(SizeW, R3, R1, CtxDataEnd),
		Mov(R4, R2),
		AddImm(R4, 14),
		Jgt(R4, R3, 4),
		St(SizeB, R2, 0, 0xaa),
		St(SizeB, R2, 1, 0xbb),
		MovImm(R0, XDPTx),
		Exit(),
		MovImm(R0, XDPDrop),
		Exit(),
	))
	pkt := make([]byte, 64)
	res, err := p.Run(&Context{Packet: pkt})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != XDPTx || !res.WrotePacket {
		t.Fatalf("res = %+v", res)
	}
	if pkt[0] != 0xaa || pkt[1] != 0xbb {
		t.Fatal("packet rewrite not visible")
	}
}

func TestRunMapLookupHitAndMiss(t *testing.T) {
	m := NewHashMap(4, 8, 16)
	if err := m.Update([]byte{7, 0, 0, 0}, []byte{42, 0, 0, 0, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	p := mustLoad(t, NewProgram("lookup",
		St(SizeW, R10, -4, 7), // key = 7 (LE on stack)
		MovImm(R1, 1),
		Mov(R2, R10),
		AddImm(R2, -4),
		Call(HelperMapLookup),
		JeqImm(R0, 0, 2),
		Ldx(SizeB, R0, R0, 0), // return first value byte
		Exit(),
		MovImm(R0, 0xff), // miss marker
		Exit(),
	).AttachMap(1, m))
	res, err := p.Run(&Context{Packet: make([]byte, 64)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != 42 {
		t.Fatalf("hit action = %d, want 42", res.Action)
	}
	if res.HashLookups != 1 {
		t.Fatalf("hash lookups = %d", res.HashLookups)
	}

	// Remove the key: lookup now misses.
	if err := m.Delete([]byte{7, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	res, err = p.Run(&Context{Packet: make([]byte, 64)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != 0xff {
		t.Fatalf("miss action = %d, want 0xff", res.Action)
	}
}

func TestRunMapValueWriteThrough(t *testing.T) {
	// Programs can increment counters in map values in place.
	m := NewArrayMap(8, 4)
	p := mustLoad(t, NewProgram("counter",
		St(SizeW, R10, -4, 0), // index 0
		MovImm(R1, 1),
		Mov(R2, R10),
		AddImm(R2, -4),
		Call(HelperMapLookup),
		JeqImm(R0, 0, 4),
		Ldx(SizeDW, R3, R0, 0),
		AddImm(R3, 1),
		Stx(SizeDW, R0, 0, R3),
		Mov(R0, R3),
		Exit(),
	).AttachMap(1, m))
	for i := 1; i <= 3; i++ {
		res, err := p.Run(&Context{Packet: make([]byte, 64)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Action != int64(i) {
			t.Fatalf("counter = %d, want %d", res.Action, i)
		}
		if res.ArrayLookups != 1 {
			t.Fatalf("array lookups = %d", res.ArrayLookups)
		}
	}
}

func TestRunRedirectMap(t *testing.T) {
	xsk := NewXskMap(4)
	if err := xsk.SetTarget(0, 100); err != nil {
		t.Fatal(err)
	}
	p := mustLoad(t, NewProgram("to-xsk",
		Ldx(SizeW, R2, R1, CtxRxQueue),
		MovImm(R1, 1),
		Mov(R3, R2), // index = rx queue
		Mov(R2, R3),
		MovImm(R3, XDPPass), // flags/fallback
		Call(HelperRedirectMap),
		Exit(),
	).AttachMap(1, xsk))
	res, err := p.Run(&Context{Packet: make([]byte, 64), RxQueue: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != XDPRedirect || res.RedirectIndex != 0 || res.RedirectMap != Map(xsk) {
		t.Fatalf("redirect result = %+v", res)
	}
	// Queue with no socket: fallback action.
	res, err = p.Run(&Context{Packet: make([]byte, 64), RxQueue: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != XDPPass {
		t.Fatalf("fallback action = %d", res.Action)
	}
}

func TestDisassemble(t *testing.T) {
	text := progParseEth().Disassemble()
	for _, want := range []string{"ldxw", "jgt", "exit", "mov"} {
		if !strings.Contains(text, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, text)
		}
	}
}

// --- Maps --------------------------------------------------------------------

func TestHashMapBasics(t *testing.T) {
	m := NewHashMap(2, 2, 2)
	if err := m.Update([]byte{1, 2}, []byte{3, 4}); err != nil {
		t.Fatal(err)
	}
	if v := m.Lookup([]byte{1, 2}); v == nil || v[0] != 3 {
		t.Fatalf("lookup = %v", v)
	}
	if m.Lookup([]byte{9, 9}) != nil {
		t.Fatal("missing key must return nil")
	}
	if err := m.Update([]byte{1}, []byte{3, 4}); err == nil {
		t.Fatal("bad key size must fail")
	}
	if err := m.Update([]byte{1, 2}, []byte{3}); err == nil {
		t.Fatal("bad value size must fail")
	}
	if err := m.Update([]byte{5, 6}, []byte{7, 8}); err != nil {
		t.Fatal(err)
	}
	if err := m.Update([]byte{7, 8}, []byte{9, 9}); err == nil {
		t.Fatal("full map must reject new keys")
	}
	if err := m.Update([]byte{1, 2}, []byte{9, 9}); err != nil {
		t.Fatal("replacing existing key in full map must work")
	}
	if err := m.Delete([]byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete([]byte{1, 2}); err == nil {
		t.Fatal("double delete must fail")
	}
	if m.Len() != 1 {
		t.Fatalf("len = %d", m.Len())
	}
}

func TestArrayMapBasics(t *testing.T) {
	m := NewArrayMap(4, 8)
	if m.Len() != 8 || m.MaxEntries() != 8 {
		t.Fatal("array map must be fully populated")
	}
	key := []byte{2, 0, 0, 0}
	if err := m.Update(key, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if v := m.Lookup(key); v[2] != 3 {
		t.Fatalf("lookup = %v", v)
	}
	if m.Lookup([]byte{200, 0, 0, 0}) != nil {
		t.Fatal("out-of-range index must return nil")
	}
	if err := m.Delete(key); err == nil {
		t.Fatal("array delete must fail")
	}
}

func TestTargetMapBasics(t *testing.T) {
	m := NewDevMap(4)
	if m.Type() != MapTypeDevMap {
		t.Fatal("type wrong")
	}
	if err := m.SetTarget(1, 99); err != nil {
		t.Fatal(err)
	}
	if tgt, ok := m.Target(1); !ok || tgt != 99 {
		t.Fatalf("target = %d,%v", tgt, ok)
	}
	if _, ok := m.Target(0); ok {
		t.Fatal("unset slot must be absent")
	}
	if m.Len() != 1 {
		t.Fatalf("len = %d", m.Len())
	}
	if err := m.Delete([]byte{1, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Target(1); ok {
		t.Fatal("deleted slot must be absent")
	}
	if err := m.SetTarget(9, 1); err == nil {
		t.Fatal("out-of-range set must fail")
	}
}

func BenchmarkRunParse(b *testing.B) {
	p := progParseEth()
	if err := p.Load(); err != nil {
		b.Fatal(err)
	}
	ctx := &Context{Packet: make([]byte, 64)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Run(ctx)
	}
}
