package ebpf

import (
	"errors"
	"fmt"
)

// MaxInsns is the program size limit the verifier enforces ("the sandbox
// limits the size of an eBPF program", Section 2.2.2).
const MaxInsns = 4096

// StackSize is the per-program stack, as in the kernel.
const StackSize = 512

// VerifierError describes a program rejection with the offending
// instruction index.
type VerifierError struct {
	PC     int
	Reason string
}

func (e *VerifierError) Error() string {
	return fmt.Sprintf("ebpf: verifier rejected program at insn %d: %s", e.PC, e.Reason)
}

// ErrNoExit is returned when control can fall off the end of the program.
var ErrNoExit = errors.New("ebpf: verifier: control may fall off the end of the program")

// regKind is the abstract type of a register during verification.
type regKind uint8

const (
	kindUninit regKind = iota
	kindScalar
	kindCtx
	kindPktPtr
	kindPktEnd
	kindStackPtr
	kindMapValueOrNull
	kindMapValue
)

func (k regKind) String() string {
	switch k {
	case kindUninit:
		return "uninitialized"
	case kindScalar:
		return "scalar"
	case kindCtx:
		return "ctx"
	case kindPktPtr:
		return "pkt"
	case kindPktEnd:
		return "pkt_end"
	case kindStackPtr:
		return "stack"
	case kindMapValueOrNull:
		return "map_value_or_null"
	case kindMapValue:
		return "map_value"
	default:
		return "?"
	}
}

// regState is the abstract value of one register.
type regState struct {
	kind  regKind
	off   int64 // pktPtr / stackPtr offset
	known bool  // scalar with compile-time-known value
	val   int64 // the known scalar value
	mapID int64 // map whose value this points into
}

// absState is the abstract machine state at one program point.
type absState struct {
	regs       [NumRegs]regState
	checkedLen int64 // packet bytes proven available
	stackInit  [StackSize]bool
	live       bool
}

func entryState() absState {
	var s absState
	s.live = true
	s.regs[R1] = regState{kind: kindCtx}
	s.regs[R10] = regState{kind: kindStackPtr, off: 0}
	return s
}

// merge folds o into s at a join point, keeping only facts true on both
// paths.
func (s *absState) merge(o *absState) {
	if !s.live {
		*s = *o
		return
	}
	for i := range s.regs {
		a, b := s.regs[i], o.regs[i]
		if a.kind != b.kind || a.off != b.off || a.mapID != b.mapID {
			s.regs[i] = regState{kind: kindUninit}
			continue
		}
		if a.known && (!b.known || a.val != b.val) {
			a.known = false
		}
		s.regs[i] = a
	}
	if o.checkedLen < s.checkedLen {
		s.checkedLen = o.checkedLen
	}
	for i := range s.stackInit {
		s.stackInit[i] = s.stackInit[i] && o.stackInit[i]
	}
}

// Verify checks prog against the sandbox rules and returns nil if the
// program is safe to run. The rules enforced are the ones the paper calls
// out: program size cap, loop prohibition (forward jumps only), initialized
// registers, bounds-checked packet access against data_end, null-checked
// map values, and in-bounds stack and map-value access.
func Verify(prog *Program) error {
	insns := prog.Insns
	if len(insns) == 0 {
		return &VerifierError{0, "empty program"}
	}
	if len(insns) > MaxInsns {
		return &VerifierError{0, fmt.Sprintf("program too large: %d insns > %d", len(insns), MaxInsns)}
	}

	states := make([]absState, len(insns)+1)
	states[0] = entryState()

	for pc := 0; pc < len(insns); pc++ {
		st := states[pc]
		if !st.live {
			continue // unreachable
		}
		in := insns[pc]
		next, jumped, err := step(prog, &st, pc, in)
		if err != nil {
			return err
		}
		// Propagate fall-through state.
		if next != nil {
			if pc+1 >= len(insns) {
				if in.Op != OpExit && in.Op != OpJa {
					return ErrNoExit
				}
			} else {
				mergeInto(&states[pc+1], next)
			}
		}
		// Propagate jump-taken state.
		if jumped != nil {
			target := pc + 1 + int(in.Off)
			if target <= pc {
				return &VerifierError{pc, "back-edge detected: loops are forbidden"}
			}
			if target >= len(insns) {
				return &VerifierError{pc, fmt.Sprintf("jump target %d out of range", target)}
			}
			mergeInto(&states[target], jumped)
		}
	}
	// Check that the final instruction cannot fall through.
	last := insns[len(insns)-1]
	if states[len(insns)-1].live && last.Op != OpExit && last.Op != OpJa {
		return ErrNoExit
	}
	return nil
}

func mergeInto(dst, src *absState) {
	if !dst.live {
		*dst = *src
		dst.live = true
		return
	}
	dst.merge(src)
}

// step abstractly executes one instruction. It returns the fall-through
// state (nil if control never falls through) and the jump-taken state (nil
// for non-jumps).
func step(prog *Program, st *absState, pc int, in Insn) (fall, jump *absState, err error) {
	bad := func(format string, args ...any) (*absState, *absState, error) {
		return nil, nil, &VerifierError{pc, fmt.Sprintf(format, args...)}
	}
	readable := func(r Reg) bool { return st.regs[r].kind != kindUninit }

	switch in.Op {
	case OpMov, OpAdd, OpSub, OpMul, OpDiv, OpMod, OpAnd, OpOr, OpXor, OpLsh, OpRsh, OpNeg:
		if in.Dst == R10 {
			return bad("write to frame pointer r10")
		}
		if !in.UseImm && in.Op != OpNeg && !readable(in.Src) {
			return bad("read of uninitialized register r%d", in.Src)
		}
		out := *st
		if err := stepALU(&out, pc, in); err != nil {
			return nil, nil, err
		}
		return &out, nil, nil

	case OpLdx:
		if in.Dst == R10 {
			return bad("write to frame pointer r10")
		}
		src := st.regs[in.Src]
		out := *st
		switch src.kind {
		case kindCtx:
			if in.Size != SizeW {
				return bad("ctx load must be 32-bit")
			}
			switch int64(in.Off) {
			case CtxData:
				out.regs[in.Dst] = regState{kind: kindPktPtr, off: 0}
			case CtxDataEnd:
				out.regs[in.Dst] = regState{kind: kindPktEnd}
			case CtxIngressIface, CtxRxQueue:
				out.regs[in.Dst] = regState{kind: kindScalar}
			default:
				return bad("invalid ctx offset %d", in.Off)
			}
		case kindPktPtr:
			start := src.off + int64(in.Off)
			end := start + int64(in.Size)
			if start < 0 {
				return bad("negative packet offset %d", start)
			}
			if end > st.checkedLen {
				return bad("packet load of bytes [%d,%d) exceeds verified length %d: add a data_end check", start, end, st.checkedLen)
			}
			out.regs[in.Dst] = regState{kind: kindScalar}
		case kindStackPtr:
			start := src.off + int64(in.Off)
			if start < -StackSize || start+int64(in.Size) > 0 {
				return bad("stack load out of bounds at offset %d", start)
			}
			for i := start; i < start+int64(in.Size); i++ {
				if !st.stackInit[-i-1] {
					return bad("read of uninitialized stack byte at offset %d", i)
				}
			}
			out.regs[in.Dst] = regState{kind: kindScalar}
		case kindMapValue:
			m := prog.mapByID(src.mapID)
			if m == nil {
				return bad("load through unknown map value")
			}
			start := src.off + int64(in.Off)
			if start < 0 || start+int64(in.Size) > int64(m.ValueSize()) {
				return bad("map value load out of bounds: offset %d size %d value %d", start, in.Size, m.ValueSize())
			}
			out.regs[in.Dst] = regState{kind: kindScalar}
		case kindMapValueOrNull:
			return bad("map value must be null-checked before use")
		default:
			return bad("load through non-pointer register r%d (%s)", in.Src, src.kind)
		}
		return &out, nil, nil

	case OpStx, OpSt:
		dst := st.regs[in.Dst]
		if in.Op == OpStx {
			src := st.regs[in.Src]
			if src.kind == kindUninit {
				return bad("store of uninitialized register r%d", in.Src)
			}
			if src.kind != kindScalar {
				return bad("pointer spill is not supported (storing %s)", src.kind)
			}
		}
		out := *st
		switch dst.kind {
		case kindPktPtr:
			start := dst.off + int64(in.Off)
			if start < 0 || start+int64(in.Size) > st.checkedLen {
				return bad("packet store out of verified bounds at offset %d", start)
			}
		case kindStackPtr:
			start := dst.off + int64(in.Off)
			if start < -StackSize || start+int64(in.Size) > 0 {
				return bad("stack store out of bounds at offset %d", start)
			}
			for i := start; i < start+int64(in.Size); i++ {
				out.stackInit[-i-1] = true
			}
		case kindMapValue:
			m := prog.mapByID(dst.mapID)
			if m == nil {
				return bad("store through unknown map value")
			}
			start := dst.off + int64(in.Off)
			if start < 0 || start+int64(in.Size) > int64(m.ValueSize()) {
				return bad("map value store out of bounds")
			}
		case kindMapValueOrNull:
			return bad("map value must be null-checked before use")
		default:
			return bad("store through non-pointer register r%d (%s)", in.Dst, dst.kind)
		}
		return &out, nil, nil

	case OpJa:
		out := *st
		return nil, &out, nil

	case OpJeq, OpJne, OpJgt, OpJge, OpJlt, OpJle, OpJset:
		if !readable(in.Dst) {
			return bad("jump on uninitialized register r%d", in.Dst)
		}
		if !in.UseImm && !readable(in.Src) {
			return bad("jump on uninitialized register r%d", in.Src)
		}
		fallSt, jumpSt := *st, *st
		if err := refineBranch(prog, &fallSt, &jumpSt, pc, in, st); err != nil {
			return nil, nil, err
		}
		return &fallSt, &jumpSt, nil

	case OpCall:
		out := *st
		if err := checkCall(prog, st, &out, pc, Helper(in.Imm)); err != nil {
			return nil, nil, err
		}
		return &out, nil, nil

	case OpExit:
		if !readable(R0) {
			return bad("exit with uninitialized r0")
		}
		return nil, nil, nil

	default:
		return bad("unknown opcode %d", in.Op)
	}
}

func stepALU(st *absState, pc int, in Insn) error {
	bad := func(format string, args ...any) error {
		return &VerifierError{pc, fmt.Sprintf(format, args...)}
	}
	dst := &st.regs[in.Dst]
	var src regState
	if in.UseImm {
		src = regState{kind: kindScalar, known: true, val: in.Imm}
	} else if in.Op != OpNeg {
		src = st.regs[in.Src]
	}

	switch in.Op {
	case OpMov:
		*dst = src
		return nil
	case OpAdd, OpSub:
		// Pointer arithmetic: pktPtr/stackPtr ± known scalar.
		if dst.kind == kindPktPtr || dst.kind == kindStackPtr || dst.kind == kindMapValue {
			if src.kind != kindScalar || !src.known {
				return bad("pointer arithmetic requires a constant (variable packet offsets are rejected)")
			}
			if in.Op == OpAdd {
				dst.off += src.val
			} else {
				dst.off -= src.val
			}
			return nil
		}
		if dst.kind != kindScalar {
			return bad("arithmetic on %s register", dst.kind)
		}
		if src.kind != kindScalar {
			return bad("arithmetic with %s operand", src.kind)
		}
		if dst.known && src.known {
			if in.Op == OpAdd {
				dst.val += src.val
			} else {
				dst.val -= src.val
			}
		} else {
			dst.known = false
		}
		return nil
	case OpNeg:
		if dst.kind != kindScalar {
			return bad("neg on %s register", dst.kind)
		}
		if dst.known {
			dst.val = -dst.val
		}
		return nil
	default: // mul/div/mod/and/or/xor/lsh/rsh
		if dst.kind != kindScalar || src.kind != kindScalar {
			return bad("%s requires scalar operands", in.Op)
		}
		if (in.Op == OpDiv || in.Op == OpMod) && in.UseImm && in.Imm == 0 {
			return bad("division by zero immediate")
		}
		if dst.known && src.known {
			switch in.Op {
			case OpMul:
				dst.val *= src.val
			case OpDiv:
				if src.val == 0 {
					dst.known = false
				} else {
					dst.val = int64(uint64(dst.val) / uint64(src.val))
				}
			case OpMod:
				if src.val == 0 {
					dst.known = false
				} else {
					dst.val = int64(uint64(dst.val) % uint64(src.val))
				}
			case OpAnd:
				dst.val &= src.val
			case OpOr:
				dst.val |= src.val
			case OpXor:
				dst.val ^= src.val
			case OpLsh:
				dst.val <<= uint64(src.val) & 63
			case OpRsh:
				dst.val = int64(uint64(dst.val) >> (uint64(src.val) & 63))
			}
		} else {
			dst.known = false
		}
		return nil
	}
}

// refineBranch applies branch-condition knowledge to the two successor
// states: packet bounds checks against pkt_end, and map-value null checks.
func refineBranch(prog *Program, fallSt, jumpSt *absState, pc int, in Insn, st *absState) error {
	d := st.regs[in.Dst]

	// Packet bounds pattern: comparison between pkt ptr and pkt_end.
	if !in.UseImm {
		s := st.regs[in.Src]
		if d.kind == kindPktPtr && s.kind == kindPktEnd {
			switch in.Op {
			case OpJgt: // if pkt+N > end goto: fall-through has N bytes
				if d.off > fallSt.checkedLen {
					fallSt.checkedLen = d.off
				}
			case OpJge: // if pkt+N >= end goto: fall-through has N bytes
				if d.off > fallSt.checkedLen {
					fallSt.checkedLen = d.off
				}
			case OpJle: // if pkt+N <= end goto: jump-taken has N bytes
				if d.off > jumpSt.checkedLen {
					jumpSt.checkedLen = d.off
				}
			case OpJlt:
				if d.off > jumpSt.checkedLen {
					jumpSt.checkedLen = d.off
				}
			}
			return nil
		}
		if d.kind == kindPktEnd && s.kind == kindPktPtr {
			switch in.Op {
			case OpJlt, OpJle: // if end < pkt+N goto: fall-through has N bytes
				if s.off > fallSt.checkedLen {
					fallSt.checkedLen = s.off
				}
			case OpJgt, OpJge: // if end > pkt+N goto: jump-taken has N bytes
				if s.off > jumpSt.checkedLen {
					jumpSt.checkedLen = s.off
				}
			}
			return nil
		}
		// Other pointer comparisons: both scalars required.
		if d.kind != kindScalar || s.kind != kindScalar {
			return &VerifierError{pc, fmt.Sprintf("comparison between %s and %s", d.kind, s.kind)}
		}
		return nil
	}

	// Null-check pattern on map values.
	if d.kind == kindMapValueOrNull && in.Imm == 0 {
		switch in.Op {
		case OpJeq: // if v == 0 goto: fall-through is non-null
			fallSt.regs[in.Dst].kind = kindMapValue
			jumpSt.regs[in.Dst] = regState{kind: kindScalar, known: true, val: 0}
		case OpJne: // if v != 0 goto: jump-taken is non-null
			jumpSt.regs[in.Dst].kind = kindMapValue
			fallSt.regs[in.Dst] = regState{kind: kindScalar, known: true, val: 0}
		}
		return nil
	}
	if d.kind != kindScalar {
		return &VerifierError{pc, fmt.Sprintf("immediate comparison on %s register", d.kind)}
	}
	return nil
}

// checkCall validates helper arguments and applies the calling convention:
// R0 receives the result, R1-R5 are clobbered.
func checkCall(prog *Program, st *absState, out *absState, pc int, h Helper) error {
	bad := func(format string, args ...any) error {
		return &VerifierError{pc, fmt.Sprintf(format, args...)}
	}
	mapArg := func() (Map, error) {
		r1 := st.regs[R1]
		if r1.kind != kindScalar || !r1.known {
			return nil, bad("%s: r1 must be a constant map id", h)
		}
		m := prog.mapByID(r1.val)
		if m == nil {
			return nil, bad("%s: unknown map id %d", h, r1.val)
		}
		return m, nil
	}
	keyArg := func(m Map, r Reg) error {
		k := st.regs[r]
		switch k.kind {
		case kindStackPtr:
			start := k.off
			if start < -StackSize || start+int64(m.KeySize()) > 0 {
				return bad("%s: key pointer out of stack bounds", h)
			}
			for i := start; i < start+int64(m.KeySize()); i++ {
				if !st.stackInit[-i-1] {
					return bad("%s: key includes uninitialized stack byte %d", h, i)
				}
			}
			return nil
		case kindPktPtr:
			if k.off < 0 || k.off+int64(m.KeySize()) > st.checkedLen {
				return bad("%s: packet key pointer exceeds verified bounds", h)
			}
			return nil
		default:
			return bad("%s: key must point to stack or packet, got %s", h, k.kind)
		}
	}

	clobber := func(result regState) {
		out.regs[R0] = result
		for r := R1; r <= R5; r++ {
			out.regs[r] = regState{kind: kindUninit}
		}
	}

	switch h {
	case HelperMapLookup:
		m, err := mapArg()
		if err != nil {
			return err
		}
		if err := keyArg(m, R2); err != nil {
			return err
		}
		r1 := st.regs[R1]
		clobber(regState{kind: kindMapValueOrNull, mapID: r1.val})
		return nil
	case HelperMapUpdate:
		m, err := mapArg()
		if err != nil {
			return err
		}
		if err := keyArg(m, R2); err != nil {
			return err
		}
		v := st.regs[R3]
		if v.kind != kindStackPtr && v.kind != kindPktPtr && v.kind != kindMapValue {
			return bad("map_update: value must be a pointer, got %s", v.kind)
		}
		clobber(regState{kind: kindScalar})
		return nil
	case HelperMapDelete:
		m, err := mapArg()
		if err != nil {
			return err
		}
		if err := keyArg(m, R2); err != nil {
			return err
		}
		clobber(regState{kind: kindScalar})
		return nil
	case HelperRedirectMap:
		m, err := mapArg()
		if err != nil {
			return err
		}
		if m.Type() != MapTypeDevMap && m.Type() != MapTypeXskMap {
			return bad("redirect_map: map must be a devmap or xskmap, got %s", m.Type())
		}
		if st.regs[R2].kind != kindScalar {
			return bad("redirect_map: r2 index must be a scalar")
		}
		clobber(regState{kind: kindScalar})
		return nil
	case HelperCsumReplace:
		clobber(regState{kind: kindScalar})
		return nil
	default:
		return bad("unknown helper %d", int64(h))
	}
}
