package ebpf

import (
	"encoding/binary"
	"fmt"
)

// MapType discriminates the map implementations, mirroring the subset of
// bpf_map_type the OVS XDP programs use.
type MapType int

// Map types.
const (
	MapTypeHash MapType = iota
	MapTypeArray
	MapTypeDevMap // redirect targets: index -> ifindex
	MapTypeXskMap // redirect targets: queue -> AF_XDP socket
)

// String names the map type.
func (t MapType) String() string {
	switch t {
	case MapTypeHash:
		return "hash"
	case MapTypeArray:
		return "array"
	case MapTypeDevMap:
		return "devmap"
	case MapTypeXskMap:
		return "xskmap"
	default:
		return fmt.Sprintf("maptype(%d)", int(t))
	}
}

// Map is the interface all map kinds implement. Keys and values are
// fixed-size byte strings, as in the kernel.
type Map interface {
	Type() MapType
	KeySize() int
	ValueSize() int
	MaxEntries() int
	// Lookup returns the live value slice (writable in place) or nil.
	Lookup(key []byte) []byte
	// Update inserts or replaces the value for key.
	Update(key, value []byte) error
	// Delete removes key; deleting a missing key is an error, as in the
	// kernel.
	Delete(key []byte) error
	// Len reports the number of entries present.
	Len() int
}

// HashMap is MapTypeHash.
type HashMap struct {
	keySize, valueSize, maxEntries int
	m                              map[string][]byte
}

// NewHashMap builds a hash map with the given key/value sizes and capacity.
func NewHashMap(keySize, valueSize, maxEntries int) *HashMap {
	return &HashMap{keySize: keySize, valueSize: valueSize, maxEntries: maxEntries,
		m: make(map[string][]byte)}
}

// Type implements Map.
func (h *HashMap) Type() MapType { return MapTypeHash }

// KeySize implements Map.
func (h *HashMap) KeySize() int { return h.keySize }

// ValueSize implements Map.
func (h *HashMap) ValueSize() int { return h.valueSize }

// MaxEntries implements Map.
func (h *HashMap) MaxEntries() int { return h.maxEntries }

// Len implements Map.
func (h *HashMap) Len() int { return len(h.m) }

// Lookup implements Map.
func (h *HashMap) Lookup(key []byte) []byte {
	if len(key) != h.keySize {
		return nil
	}
	return h.m[string(key)]
}

// Update implements Map.
func (h *HashMap) Update(key, value []byte) error {
	if len(key) != h.keySize {
		return fmt.Errorf("ebpf: hash update: key size %d, want %d", len(key), h.keySize)
	}
	if len(value) != h.valueSize {
		return fmt.Errorf("ebpf: hash update: value size %d, want %d", len(value), h.valueSize)
	}
	if _, ok := h.m[string(key)]; !ok && len(h.m) >= h.maxEntries {
		return fmt.Errorf("ebpf: hash map full (%d entries)", h.maxEntries)
	}
	h.m[string(key)] = append([]byte(nil), value...)
	return nil
}

// Delete implements Map.
func (h *HashMap) Delete(key []byte) error {
	if _, ok := h.m[string(key)]; !ok {
		return fmt.Errorf("ebpf: hash delete: no such key")
	}
	delete(h.m, string(key))
	return nil
}

// ArrayMap is MapTypeArray: uint32 keys indexing preallocated values.
type ArrayMap struct {
	valueSize int
	values    [][]byte
}

// NewArrayMap builds an array map of maxEntries values.
func NewArrayMap(valueSize, maxEntries int) *ArrayMap {
	vals := make([][]byte, maxEntries)
	for i := range vals {
		vals[i] = make([]byte, valueSize)
	}
	return &ArrayMap{valueSize: valueSize, values: vals}
}

// Type implements Map.
func (a *ArrayMap) Type() MapType { return MapTypeArray }

// KeySize implements Map: array keys are always 4 bytes.
func (a *ArrayMap) KeySize() int { return 4 }

// ValueSize implements Map.
func (a *ArrayMap) ValueSize() int { return a.valueSize }

// MaxEntries implements Map.
func (a *ArrayMap) MaxEntries() int { return len(a.values) }

// Len implements Map: arrays are always fully populated.
func (a *ArrayMap) Len() int { return len(a.values) }

func (a *ArrayMap) index(key []byte) (int, bool) {
	if len(key) != 4 {
		return 0, false
	}
	i := int(binary.LittleEndian.Uint32(key))
	if i >= len(a.values) {
		return 0, false
	}
	return i, true
}

// Lookup implements Map.
func (a *ArrayMap) Lookup(key []byte) []byte {
	i, ok := a.index(key)
	if !ok {
		return nil
	}
	return a.values[i]
}

// Update implements Map.
func (a *ArrayMap) Update(key, value []byte) error {
	i, ok := a.index(key)
	if !ok {
		return fmt.Errorf("ebpf: array update: bad index")
	}
	if len(value) != a.valueSize {
		return fmt.Errorf("ebpf: array update: value size %d, want %d", len(value), a.valueSize)
	}
	copy(a.values[i], value)
	return nil
}

// Delete implements Map: arrays do not support deletion, as in the kernel.
func (a *ArrayMap) Delete(key []byte) error {
	return fmt.Errorf("ebpf: array maps do not support delete")
}

// TargetMap is the shared implementation of DevMap and XskMap: an array of
// redirect targets. A zero slot is empty.
type TargetMap struct {
	typ     MapType
	targets []uint32
	present []bool
}

// NewDevMap builds a device-redirect map.
func NewDevMap(maxEntries int) *TargetMap {
	return &TargetMap{typ: MapTypeDevMap, targets: make([]uint32, maxEntries), present: make([]bool, maxEntries)}
}

// NewXskMap builds an AF_XDP socket redirect map.
func NewXskMap(maxEntries int) *TargetMap {
	return &TargetMap{typ: MapTypeXskMap, targets: make([]uint32, maxEntries), present: make([]bool, maxEntries)}
}

// Type implements Map.
func (t *TargetMap) Type() MapType { return t.typ }

// KeySize implements Map.
func (t *TargetMap) KeySize() int { return 4 }

// ValueSize implements Map.
func (t *TargetMap) ValueSize() int { return 4 }

// MaxEntries implements Map.
func (t *TargetMap) MaxEntries() int { return len(t.targets) }

// Len implements Map.
func (t *TargetMap) Len() int {
	n := 0
	for _, p := range t.present {
		if p {
			n++
		}
	}
	return n
}

// Lookup implements Map.
func (t *TargetMap) Lookup(key []byte) []byte {
	if len(key) != 4 {
		return nil
	}
	i := int(binary.LittleEndian.Uint32(key))
	if i >= len(t.targets) || !t.present[i] {
		return nil
	}
	v := make([]byte, 4)
	binary.LittleEndian.PutUint32(v, t.targets[i])
	return v
}

// Update implements Map.
func (t *TargetMap) Update(key, value []byte) error {
	if len(key) != 4 || len(value) != 4 {
		return fmt.Errorf("ebpf: target map update: key/value must be 4 bytes")
	}
	i := int(binary.LittleEndian.Uint32(key))
	if i >= len(t.targets) {
		return fmt.Errorf("ebpf: target map update: index %d out of range", i)
	}
	t.targets[i] = binary.LittleEndian.Uint32(value)
	t.present[i] = true
	return nil
}

// Delete implements Map.
func (t *TargetMap) Delete(key []byte) error {
	if len(key) != 4 {
		return fmt.Errorf("ebpf: target map delete: bad key")
	}
	i := int(binary.LittleEndian.Uint32(key))
	if i >= len(t.targets) || !t.present[i] {
		return fmt.Errorf("ebpf: target map delete: no such entry")
	}
	t.present[i] = false
	t.targets[i] = 0
	return nil
}

// Target returns the redirect target at index, if set. The XDP runtime uses
// this on the redirect fast path.
func (t *TargetMap) Target(index uint32) (uint32, bool) {
	if int(index) >= len(t.targets) || !t.present[index] {
		return 0, false
	}
	return t.targets[index], true
}

// SetTarget is a convenience for Update with native integers.
func (t *TargetMap) SetTarget(index, target uint32) error {
	k := make([]byte, 4)
	v := make([]byte, 4)
	binary.LittleEndian.PutUint32(k, index)
	binary.LittleEndian.PutUint32(v, target)
	return t.Update(k, v)
}
