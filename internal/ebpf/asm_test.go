package ebpf

import "testing"

func TestAsmResolvesLabels(t *testing.T) {
	p, err := NewAsm().
		I(Ldx(SizeW, R2, R1, CtxData)).
		I(Ldx(SizeW, R3, R1, CtxDataEnd)).
		I(Mov(R4, R2)).
		I(AddImm(R4, 14)).
		Jmp(Jgt(R4, R3, 0), "drop").
		I(MovImm(R0, XDPPass)).
		I(Exit()).
		Label("drop").
		I(MovImm(R0, XDPDrop)).
		I(Exit()).
		Assemble("labeled")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Load(); err != nil {
		t.Fatalf("assembled program rejected: %v", err)
	}
	// Jump at index 4 must point to index 7: off = 7 - 5 = 2.
	if p.Insns[4].Off != 2 {
		t.Fatalf("resolved offset = %d, want 2", p.Insns[4].Off)
	}
	// Execution: short packet drops, long packet passes.
	res, err := p.Run(&Context{Packet: make([]byte, 8)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != XDPDrop {
		t.Fatalf("short packet action = %d", res.Action)
	}
	res, _ = p.Run(&Context{Packet: make([]byte, 64)})
	if res.Action != XDPPass {
		t.Fatalf("long packet action = %d", res.Action)
	}
}

func TestAsmUndefinedLabel(t *testing.T) {
	_, err := NewAsm().Jmp(Ja(0), "nowhere").I(Exit()).Assemble("bad")
	if err == nil {
		t.Fatal("undefined label must fail")
	}
}

func TestAsmDuplicateLabel(t *testing.T) {
	_, err := NewAsm().Label("x").I(MovImm(R0, 0)).Label("x").I(Exit()).Assemble("dup")
	if err == nil {
		t.Fatal("duplicate label must fail")
	}
}

func TestAsmForwardAndFallthrough(t *testing.T) {
	// A label on the immediately following instruction yields offset 0.
	p, err := NewAsm().
		I(MovImm(R0, 1)).
		Jmp(Ja(0), "next").
		Label("next").
		I(Exit()).
		Assemble("fall")
	if err != nil {
		t.Fatal(err)
	}
	if p.Insns[1].Off != 0 {
		t.Fatalf("offset = %d, want 0", p.Insns[1].Off)
	}
	if err := p.Load(); err != nil {
		t.Fatal(err)
	}
}

func TestMustAssemblePanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAssemble must panic on bad input")
		}
	}()
	NewAsm().Jmp(Ja(0), "missing").MustAssemble("boom")
}
